//! # lat-fpga
//!
//! Umbrella crate of the lat-fpga workspace: a pure-Rust reproduction of
//! the DAC'22 paper *"A Length Adaptive Algorithm-Hardware Co-design of
//! Transformer on FPGA Through Sparse Attention and Dynamic Pipelining"*
//! (Peng, Huang, et al., arXiv:2208.03646).
//!
//! The workspace splits into the paper's contribution and the substrates
//! it needs:
//!
//! | Re-export | Crate | Contents |
//! |---|---|---|
//! | [`core`] | `lat-core` | sparse attention (quantized pre-selection → Top-k → exact), the Fig. 4 fused kernel, Algorithm 1 stage allocation, the length-aware pipeline scheduler, DAG scheduling, batch runtime, related-work baselines |
//! | [`tensor`] | `lat-tensor` | checked f32 matrices, softmax/LayerNorm/GELU, tiled matmul, 8-bit fixed point, 1/4/8-bit quantization, product LUT, seeded RNG, stats |
//! | [`model`] | `lat-model` | BERT-family encoder with pluggable attention, operator graph `W(v, s)`, embeddings, pooling/classifier heads, 8-bit quantized datapath |
//! | [`hwsim`] | `lat-hwsim` | Alveo U280 simulator: kernel cycle models, stage timing with compute/memory overlap, state machine + double buffers, HBM channels, roofline/CTC, DSE, serving simulation, energy |
//! | [`platforms`] | `lat-platforms` | calibrated CPU / edge-GPU / GPU-server roofline models |
//! | [`workloads`] | `lat-workloads` | dataset length distributions, the attention-retrieval accuracy task, workload mixes |
//!
//! # Quick tour
//!
//! Swap the paper's sparse attention into a transformer encoder:
//!
//! ```
//! use lat_fpga::core::sparse::{SparseAttention, SparseAttentionConfig};
//! use lat_fpga::model::{attention::DenseAttention, config::ModelConfig, encoder::Encoder};
//! use lat_fpga::tensor::rng::SplitMix64;
//!
//! # fn main() -> Result<(), lat_fpga::model::ModelError> {
//! let cfg = ModelConfig::tiny();
//! let mut rng = SplitMix64::new(1);
//! let encoder = Encoder::random(&cfg, &mut rng);
//! let x = rng.gaussian_matrix(48, cfg.hidden_dim, 1.0);
//!
//! let dense = encoder.forward(&x, &DenseAttention)?;
//! let sparse_op = SparseAttention::new(SparseAttentionConfig::paper_default());
//! let sparse = encoder.forward(&x, &sparse_op)?; // O(n·k) instead of O(n²)
//! assert_eq!(dense.shape(), sparse.shape());
//! # Ok(())
//! # }
//! ```
//!
//! Simulate a variable-length batch on the modeled Alveo U280:
//!
//! ```
//! use lat_fpga::core::pipeline::SchedulingPolicy;
//! use lat_fpga::hwsim::{accelerator::AcceleratorDesign, spec::FpgaSpec};
//! use lat_fpga::model::{config::ModelConfig, graph::AttentionMode};
//!
//! let design = AcceleratorDesign::new(
//!     &ModelConfig::bert_base(),
//!     AttentionMode::paper_sparse(),
//!     FpgaSpec::alveo_u280(),
//!     177,
//! );
//! let adaptive = design.run_batch(&[140, 100, 82, 78, 72], SchedulingPolicy::LengthAware);
//! let padded = design.run_batch(&[140, 100, 82, 78, 72], SchedulingPolicy::PadToMax);
//! assert!(adaptive.seconds < padded.seconds); // dynamic pipelining wins
//! ```
//!
//! Every table and figure of the paper's evaluation regenerates from a
//! `lat-bench` binary; see `EXPERIMENTS.md` at the repository root for the
//! paper-vs-measured record and `DESIGN.md` for the substitution table
//! (what replaced the FPGA, the datasets and the comparison hardware).

pub use lat_core as core;
pub use lat_hwsim as hwsim;
pub use lat_model as model;
pub use lat_platforms as platforms;
pub use lat_tensor as tensor;
pub use lat_workloads as workloads;
