//! Determinism regression: running a figure scenario twice with the same
//! `HARNESS_SEED` must yield bit-identical reports and rendered tables.
//! Every figure binary's reproducibility rests on this property.

use lat_bench::scenarios::{Scenario, HARNESS_SEED};
use lat_bench::tables;
use lat_fpga::core::pipeline::SchedulingPolicy;
use lat_fpga::hwsim::accelerator::AcceleratorDesign;
use lat_fpga::hwsim::fleet::{
    homogeneous_fleet, poisson_trace, simulate_fleet, BatcherConfig, DispatchPolicy,
};
use lat_fpga::hwsim::serving::{simulate_serving, ServingConfig};
use lat_fpga::hwsim::spec::FpgaSpec;
use lat_fpga::model::graph::AttentionMode;
use lat_fpga::workloads::datasets::MixedWorkload;

fn scenario_design(scenario: &Scenario) -> AcceleratorDesign {
    AcceleratorDesign::new(
        &scenario.model,
        AttentionMode::paper_sparse(),
        FpgaSpec::alveo_u280(),
        scenario.dataset.avg_len,
    )
}

#[test]
fn scenario_batches_are_bit_identical_across_runs() {
    for scenario in Scenario::hardware_eval() {
        assert_eq!(
            scenario.sample_batches(4),
            scenario.sample_batches(4),
            "batch sampling diverged for {}",
            scenario.label()
        );
    }
}

#[test]
fn serving_report_is_bit_identical_across_runs() {
    let scenario = &Scenario::hardware_eval()[0];
    let design = scenario_design(scenario);
    let cfg = ServingConfig {
        num_requests: 80,
        ..ServingConfig::default()
    };
    let run = || {
        simulate_serving(
            &design,
            &scenario.dataset,
            SchedulingPolicy::LengthAware,
            &cfg,
            HARNESS_SEED,
        )
    };
    let first = run();
    let second = run();
    // ServingReport is PartialEq over f64 fields: equality here is bitwise,
    // not approximate.
    assert_eq!(first, second, "serving simulation diverged between runs");
}

#[test]
fn fleet_report_is_bit_identical_across_runs() {
    // The event-driven engine has tie-breaking rules (same-instant arrivals,
    // window closes, completions); this guards that they are deterministic
    // end to end, per-shard stats included.
    let scenario = &Scenario::hardware_eval()[1]; // BERT-base / RTE
    let design = scenario_design(scenario);
    let fleet = homogeneous_fleet(&design, 2);
    let trace = poisson_trace(&MixedWorkload::paper_mix(), 150.0, 60, HARNESS_SEED);
    let run = || {
        simulate_fleet(
            &fleet,
            &trace,
            SchedulingPolicy::LengthAware,
            DispatchPolicy::LengthBinned,
            &BatcherConfig::default(),
        )
    };
    let first = run();
    let second = run();
    assert_eq!(first, second, "fleet simulation diverged between runs");
    assert_eq!(first.completed, 60);
}

#[test]
fn batch_timing_and_rendered_table_are_bit_identical_across_runs() {
    let run_once = || {
        let mut rows = Vec::new();
        for scenario in Scenario::hardware_eval() {
            let design = scenario_design(&scenario);
            let batches = scenario.sample_batches(2);
            for batch in &batches {
                let adaptive = design.run_batch(batch, SchedulingPolicy::LengthAware);
                let padded = design.run_batch(batch, SchedulingPolicy::PadToMax);
                rows.push(vec![
                    scenario.label(),
                    format!("{:.9e}", adaptive.seconds),
                    format!("{:.9e}", padded.seconds),
                    tables::speedup(padded.seconds / adaptive.seconds),
                ]);
            }
        }
        tables::render(&["scenario", "adaptive_s", "padded_s", "speedup"], &rows)
    };
    let first = run_once();
    let second = run_once();
    assert_eq!(first, second, "figure table output diverged between runs");
    // Sanity: the table actually carries data for all four scenarios.
    assert_eq!(first.lines().count(), 2 + 4 * 2);
}
