//! Property-based tests of the FPGA simulator's invariants.

use lat_fpga::core::pipeline::SchedulingPolicy;
use lat_fpga::hwsim::accelerator::AcceleratorDesign;
use lat_fpga::hwsim::hbm::HbmModel;
use lat_fpga::hwsim::spec::FpgaSpec;
use lat_fpga::model::config::ModelConfig;
use lat_fpga::model::graph::AttentionMode;
use proptest::prelude::*;

fn design() -> AcceleratorDesign {
    AcceleratorDesign::new(
        &ModelConfig::bert_base(),
        AttentionMode::paper_sparse(),
        FpgaSpec::alveo_u280(),
        177,
    )
}

fn batch_strategy() -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec(16usize..512, 1..12)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Stage cycle counts grow monotonically with sequence length.
    #[test]
    fn stage_cycles_monotone(len_a in 16usize..400, delta in 1usize..100) {
        let d = design();
        for stage in 0..d.allocation().num_stages() {
            prop_assert!(
                d.stage_cycles(stage, len_a + delta, 16) >= d.stage_cycles(stage, len_a, 16)
            );
        }
    }

    /// Run reports are internally consistent: positive time/energy,
    /// utilizations in [0,1], tokens and sequences preserved.
    #[test]
    fn run_report_consistency(batch in batch_strategy()) {
        let d = design();
        let r = d.run_batch(&batch, SchedulingPolicy::LengthAware);
        prop_assert_eq!(r.sequences, batch.len());
        prop_assert_eq!(r.tokens, batch.iter().map(|&l| l as u64).sum::<u64>());
        prop_assert!(r.seconds > 0.0);
        prop_assert!(r.energy_j > 0.0);
        prop_assert!(r.stage_utilization.iter().all(|&u| (0.0..=1.0).contains(&u)));
        prop_assert!(r.padded_dense_ops >= r.actual_ops);
    }

    /// Adding a sequence to a batch never shortens the makespan.
    #[test]
    fn more_work_never_faster(batch in batch_strategy(), extra in 16usize..512) {
        let d = design();
        let base = d.run_batch(&batch, SchedulingPolicy::LengthAware).seconds;
        let mut bigger = batch.clone();
        bigger.push(extra);
        let more = d.run_batch(&bigger, SchedulingPolicy::LengthAware).seconds;
        prop_assert!(more >= base);
    }

    /// Length-aware is never slower than pad-to-max on the simulator.
    #[test]
    fn adaptive_never_slower_on_hardware(batch in batch_strategy()) {
        let d = design();
        let a = d.run_batch(&batch, SchedulingPolicy::LengthAware).seconds;
        let p = d.run_batch(&batch, SchedulingPolicy::PadToMax).seconds;
        prop_assert!(a <= p + 1e-12);
    }

    /// Actual datapath throughput never exceeds the chip's peak.
    #[test]
    fn actual_gops_below_peak(batch in batch_strategy()) {
        let d = design();
        let r = d.run_batch(&batch, SchedulingPolicy::LengthAware);
        let peak_gops = d.spec().peak_ops_per_s() / 1e9;
        prop_assert!(
            r.actual_gops() <= peak_gops * 1.01,
            "{} GOPS exceeds peak {}", r.actual_gops(), peak_gops
        );
    }

    /// HBM: using more channels never slows a transfer; round-robin
    /// makespan is never better than the ideal stripe.
    #[test]
    fn hbm_channel_monotonicity(bytes in 1u64..10_000_000, used in 1u32..32) {
        let h = HbmModel::u280();
        prop_assert!(h.transfer_cycles(bytes, used + 1) <= h.transfer_cycles(bytes, used));
        prop_assert!(h.transfer_cycles(bytes, 32) >= 1);
    }

    /// Round-robin placement conserves bytes and its makespan dominates
    /// the ideal split.
    #[test]
    fn hbm_round_robin_conservation(buffers in proptest::collection::vec(0u64..1_000_000, 0..64)) {
        let h = HbmModel::u280();
        let per_channel = h.place_round_robin(&buffers);
        prop_assert_eq!(per_channel.iter().sum::<u64>(), buffers.iter().sum::<u64>());
        let total: u64 = buffers.iter().sum();
        prop_assert!(h.round_robin_makespan(&buffers) >= h.transfer_cycles(total, h.channels));
        let eff = h.round_robin_efficiency(&buffers);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&eff));
    }
}
