//! Property tests of the software batch runtime
//! (`lat_fpga::core::runtime::BatchRunner`): outputs come back in caller
//! order, the processing order is a decreasing-length permutation, and the
//! token accounting never includes padding.

use lat_fpga::core::runtime::{BatchRunner, RunnerAttention};
use lat_fpga::core::sparse::SparseAttentionConfig;
use lat_fpga::model::attention::DenseAttention;
use lat_fpga::model::config::ModelConfig;
use lat_fpga::model::encoder::Encoder;
use lat_fpga::tensor::rng::SplitMix64;
use lat_fpga::tensor::Matrix;
use proptest::prelude::*;

fn make_batch(cfg: &ModelConfig, rng: &mut SplitMix64, lens: &[usize]) -> Vec<Matrix> {
    lens.iter()
        .map(|&n| rng.gaussian_matrix(n, cfg.hidden_dim, 1.0))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Each output is the encoder's forward of the *same-position* input:
    /// the runner restores caller order regardless of how it reorders work
    /// internally.
    #[test]
    fn outputs_return_in_caller_order(
        seed in 0u64..10_000,
        lens in proptest::collection::vec(1usize..24, 0..6),
    ) {
        let cfg = ModelConfig::tiny();
        let mut rng = SplitMix64::new(seed);
        let encoder = Encoder::random(&cfg, &mut rng);
        let batch = make_batch(&cfg, &mut rng, &lens);
        let runner = BatchRunner::new(encoder.clone(), RunnerAttention::Dense);

        let out = runner.run(&batch).expect("batch runs");
        prop_assert_eq!(out.outputs.len(), batch.len());
        for (i, (output, input)) in out.outputs.iter().zip(&batch).enumerate() {
            prop_assert_eq!(output.shape(), (lens[i], cfg.hidden_dim));
            let direct = encoder.forward(input, &DenseAttention).expect("forward");
            prop_assert_eq!(output, &direct);
        }
    }

    /// `processing_order` is a permutation of `0..n` visiting sequences in
    /// non-increasing length order (stable on ties).
    #[test]
    fn processing_order_is_decreasing_length_permutation(
        seed in 0u64..10_000,
        lens in proptest::collection::vec(1usize..24, 0..6),
        sparse in any::<bool>(),
    ) {
        let cfg = ModelConfig::tiny();
        let mut rng = SplitMix64::new(seed ^ 0xBA7C);
        let encoder = Encoder::random(&cfg, &mut rng);
        let batch = make_batch(&cfg, &mut rng, &lens);
        let attention = if sparse {
            RunnerAttention::Sparse(SparseAttentionConfig::paper_default().with_k(8))
        } else {
            RunnerAttention::Dense
        };
        let out = BatchRunner::new(encoder, attention).run(&batch).expect("batch runs");

        let mut sorted_order = out.processing_order.clone();
        sorted_order.sort_unstable();
        let identity: Vec<usize> = (0..batch.len()).collect();
        prop_assert_eq!(sorted_order, identity, "not a permutation");

        for w in out.processing_order.windows(2) {
            prop_assert!(
                lens[w[0]] >= lens[w[1]],
                "order not decreasing: len[{}]={} before len[{}]={}",
                w[0], lens[w[0]], w[1], lens[w[1]]
            );
            if lens[w[0]] == lens[w[1]] {
                prop_assert!(w[0] < w[1], "tie broken unstably: {} before {}", w[0], w[1]);
            }
        }
    }

    /// `tokens` is exactly the sum of the input lengths — the runner never
    /// pads a sequence to a bucket or batch maximum.
    #[test]
    fn tokens_equal_sum_of_lengths_without_padding(
        seed in 0u64..10_000,
        lens in proptest::collection::vec(1usize..24, 0..6),
    ) {
        let cfg = ModelConfig::tiny();
        let mut rng = SplitMix64::new(seed ^ 0x70C3);
        let encoder = Encoder::random(&cfg, &mut rng);
        let batch = make_batch(&cfg, &mut rng, &lens);
        let out = BatchRunner::new(encoder, RunnerAttention::Dense)
            .run(&batch)
            .expect("batch runs");
        let expected: u64 = lens.iter().map(|&l| l as u64).sum();
        prop_assert_eq!(out.tokens, expected);
    }
}
