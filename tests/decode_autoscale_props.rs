//! Property-based tests of the decode autoscaling layer's invariants
//! under nonstationary load: request/token conservation across scaling
//! events with KV residents in flight, the pinned (and clamped) min==max
//! autoscaler reproducing `simulate_decode` bit-for-bit, drain never
//! dropping a resident, migration re-prefilling every evicted resident
//! exactly once, warm-up never admitting work to a cold shard, and
//! `HARNESS_SEED` determinism of the full `DecodeAutoscaleReport` —
//! including the predictive policy, whose rate estimator must consume
//! only the simulation-time observation path (mirrors
//! `tests/autoscale_props.rs` on the decode engine).

use lat_bench::scenarios::harness_seed;
use lat_fpga::core::pipeline::SchedulingPolicy;
use lat_fpga::hwsim::accelerator::AcceleratorDesign;
use lat_fpga::hwsim::autoscale::{
    simulate_decode_autoscale, DecodeAutoscaleConfig, DecodeAutoscaleReport, DecodeScaleDown,
    ScaleEventKind, ScalePolicy, SchedulePhase,
};
use lat_fpga::hwsim::decode::{
    nonstationary_decode_trace, simulate_decode, DecodeConfig, DecodeRequest, DecodeScheduler,
};
use lat_fpga::hwsim::fleet::{homogeneous_fleet, DispatchPolicy, RatePhase, RateProfile};
use lat_fpga::hwsim::spec::FpgaSpec;
use lat_fpga::model::config::ModelConfig;
use lat_fpga::model::graph::AttentionMode;
use lat_fpga::workloads::datasets::DatasetSpec;
use proptest::prelude::*;

fn tiny_design(s_avg: usize) -> AcceleratorDesign {
    AcceleratorDesign::new(
        &ModelConfig::tiny(),
        AttentionMode::paper_sparse(),
        FpgaSpec::alveo_u280(),
        s_avg,
    )
}

fn dispatch_from_index(i: usize) -> DispatchPolicy {
    DispatchPolicy::ALL[i % DispatchPolicy::ALL.len()]
}

fn scheduler_from_index(i: usize) -> DecodeScheduler {
    DecodeScheduler::ALL[i % DecodeScheduler::ALL.len()]
}

fn scale_down_from_index(i: usize) -> DecodeScaleDown {
    [DecodeScaleDown::Drain, DecodeScaleDown::Migrate][i % 2]
}

/// A scaling policy that will actually act under the bursty test traffic
/// (a tiny 4-slot shard sustains ~48k decode seq/s).
fn policy_from_index(i: usize, min_shards: usize, max_shards: usize) -> ScalePolicy {
    match i % 4 {
        0 => ScalePolicy::Reactive {
            scale_up_depth: 4.0,
            scale_down_depth: 0.5,
        },
        1 => ScalePolicy::UtilizationTarget {
            low: 0.2,
            high: 0.8,
        },
        2 => ScalePolicy::Scheduled(vec![
            SchedulePhase {
                start_s: 0.102,
                shards: max_shards,
            },
            SchedulePhase {
                start_s: 0.2,
                shards: min_shards,
            },
        ]),
        _ => ScalePolicy::Predictive {
            shard_capacity: 2000.0,
            horizon_s: 0.004,
            alpha: 0.5,
            period_s: None,
        },
    }
}

/// Trickle → saturating burst → trickle: the burst phase dumps a backlog
/// that spans many 2 ms controller ticks, so scaling decisions land while
/// KV residents are mid-generation.
fn burst_trace(n: usize, burst_rate: f64, seed: u64) -> Vec<DecodeRequest> {
    let spec = DatasetSpec::mrpc();
    nonstationary_decode_trace(
        &spec,
        &spec.decode_output(),
        0.15,
        &RateProfile::Piecewise(vec![
            RatePhase {
                duration_s: 0.1,
                rate: 1000.0,
            },
            RatePhase {
                duration_s: 0.005,
                rate: burst_rate,
            },
            RatePhase {
                duration_s: 1.0,
                rate: 1000.0,
            },
        ]),
        n,
        seed,
    )
}

/// Every iteration must run inside one of its shard's membership windows:
/// initially-active shards are allowed until their first `Retired`, later
/// shards only between `Join` and `Retired` — at once the "warm-up never
/// admits work to a cold shard" and the "retired means retired"
/// invariant.
fn assert_iterations_within_membership(r: &DecodeAutoscaleReport, initial_shards: usize) {
    for b in &r.decode.fleet.batch_log {
        let mut allowed = b.shard < initial_shards;
        for e in r.scale_events.iter().filter(|e| e.shard == b.shard) {
            if e.time_s > b.start_s + 1e-12 {
                break;
            }
            match e.kind {
                ScaleEventKind::Join => allowed = true,
                ScaleEventKind::Retired | ScaleEventKind::Failed => allowed = false,
                ScaleEventKind::Launch
                | ScaleEventKind::RetireStart
                | ScaleEventKind::Recovered => {}
            }
        }
        assert!(
            allowed,
            "iteration on shard {} at t={} outside its membership windows",
            b.shard, b.start_s
        );
    }
}

/// Per shard, the event log must be a well-formed lifecycle sequence
/// (Launch → Join → RetireStart → Retired, with bare Joins as recalls of
/// a retiring shard), in time order.
fn assert_event_log_well_formed(
    r: &DecodeAutoscaleReport,
    initial_shards: usize,
    max_shards: usize,
) {
    for s in 0..max_shards {
        let mut state = if s < initial_shards { 2u8 } else { 0 };
        for e in r.scale_events.iter().filter(|e| e.shard == s) {
            state = match (state, e.kind) {
                (0, ScaleEventKind::Launch) => 1,
                (1, ScaleEventKind::Join) => 2,
                (2, ScaleEventKind::RetireStart) => 3,
                (3, ScaleEventKind::Retired) => 0,
                (3, ScaleEventKind::Join) => 2, // recall of a retiring shard
                _ => panic!("shard {s}: {:?} out of order (state {state})", e.kind),
            };
        }
    }
    assert!(
        r.scale_events
            .windows(2)
            .all(|w| w[0].time_s <= w[1].time_s),
        "scale events out of time order"
    );
}

/// Replaying the event log, the count of shards committed going forward
/// (warming or active) must never fall below `min_shards`.
fn assert_min_floor(
    r: &DecodeAutoscaleReport,
    initial_shards: usize,
    min_shards: usize,
    max_shards: usize,
) {
    let mut state: Vec<u8> = (0..max_shards)
        .map(|s| if s < initial_shards { 2 } else { 0 })
        .collect();
    for e in &r.scale_events {
        state[e.shard] = match e.kind {
            ScaleEventKind::Launch => 1,
            ScaleEventKind::Join => 2,
            ScaleEventKind::RetireStart => 3,
            ScaleEventKind::Retired | ScaleEventKind::Failed => 0,
            ScaleEventKind::Recovered => state[e.shard],
        };
        let staying = state.iter().filter(|&&x| x == 1 || x == 2).count();
        assert!(
            staying >= min_shards,
            "committed fleet fell to {staying} < min {min_shards} after {:?} of shard {} at t={}",
            e.kind,
            e.shard,
            e.time_s
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Scaling events re-route, drain, or migrate work but never drop or
    /// duplicate it: every request completes exactly once and generates
    /// exactly its sampled tokens, whatever the policy, scale-down mode,
    /// scheduler, dispatch, warm-up, or load shape — and every re-prefill
    /// is accounted to a preemption or a migration.
    #[test]
    fn conservation_under_scaling_with_residents_in_flight(
        max_shards in 3usize..5,
        min_shards in 1usize..3,
        policy_idx in 0usize..4,
        scale_down_idx in 0usize..2,
        scheduler_idx in 0usize..3,
        dispatch_idx in 0usize..3,
        burst_rate in 100_000.0f64..400_000.0,
        warmup_s in 0.0f64..0.01,
        n in 300usize..800,
        seed in 0u64..1_000_000,
    ) {
        let fleet = homogeneous_fleet(&tiny_design(64), max_shards);
        let trace = burst_trace(n, burst_rate, seed);
        let cfg = DecodeAutoscaleConfig {
            min_shards,
            initial_shards: min_shards,
            policy: policy_from_index(policy_idx, min_shards, max_shards),
            scale_down: scale_down_from_index(scale_down_idx),
            eval_interval_s: 0.002,
            warmup_s,
            cooldown_s: 0.0,
            ..DecodeAutoscaleConfig::default()
        };
        let r = simulate_decode_autoscale(
            &fleet,
            &trace,
            SchedulingPolicy::LengthAware,
            dispatch_from_index(dispatch_idx),
            scheduler_from_index(scheduler_idx),
            &DecodeConfig { max_slots: 4, ttft_deadline_s: 0.001 },
            &cfg,
        );
        prop_assert_eq!(r.decode.fleet.completed, n);
        prop_assert_eq!(
            r.decode.fleet.shards.iter().map(|s| s.completed).sum::<usize>(),
            n
        );
        prop_assert_eq!(
            r.decode.generated_tokens,
            trace.iter().map(|q| q.output_len as u64).sum::<u64>()
        );
        for (req, out) in trace.iter().zip(&r.decode.requests) {
            prop_assert_eq!(out.tokens, req.output_len);
            prop_assert!(out.ttft_s > 0.0);
            prop_assert!(out.ttft_s <= out.completion_s - req.arrival_s + 1e-12);
        }
        // Every priced re-prefill pass traces back to a preemption or a
        // migration — and with no migrations they match preemptions.
        prop_assert_eq!(r.re_prefills, r.decode.preemptions + r.migrations);
        if r.decode.preemptions == 0 {
            prop_assert_eq!(r.re_prefills, r.migrations);
        }
        prop_assert!(r.peak_active_shards <= max_shards);
        prop_assert!(r.mean_active_shards >= 1.0 - 1e-9);
        prop_assert!(r.mean_active_shards <= max_shards as f64 + 1e-9);
        prop_assert!(r.shard_seconds > 0.0);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&r.slo_attainment));
        assert_event_log_well_formed(&r, min_shards, max_shards);
        assert_iterations_within_membership(&r, min_shards);
        assert_min_floor(&r, min_shards, min_shards, max_shards);
    }

    /// A pinned autoscaler at min == max == fleet size is bit-for-bit
    /// `simulate_decode`: same decode report, no scale events, cost =
    /// shards × makespan. Reactive AND predictive policies clamped by
    /// min == max must coincide too — the clamp leaves them nothing to
    /// do, and the predictive estimator must not perturb the engine.
    #[test]
    fn min_eq_max_reproduces_simulate_decode_bit_for_bit(
        shards in 1usize..4,
        scheduler_idx in 0usize..3,
        dispatch_idx in 0usize..3,
        burst_rate in 50_000.0f64..300_000.0,
        n in 100usize..300,
        seed in 0u64..1_000_000,
    ) {
        let fleet = homogeneous_fleet(&tiny_design(64), shards);
        let trace = burst_trace(n, burst_rate, seed);
        let dispatch = dispatch_from_index(dispatch_idx);
        let scheduler = scheduler_from_index(scheduler_idx);
        let decode_cfg = DecodeConfig { max_slots: 4, ttft_deadline_s: 0.001 };
        let fixed = simulate_decode(
            &fleet,
            &trace,
            SchedulingPolicy::LengthAware,
            dispatch,
            scheduler,
            &decode_cfg,
        );
        for policy in [
            ScalePolicy::Pinned,
            ScalePolicy::Reactive { scale_up_depth: 4.0, scale_down_depth: 1.0 },
            ScalePolicy::Predictive {
                shard_capacity: 1000.0,
                horizon_s: 0.004,
                alpha: 0.5,
                period_s: Some(0.1),
            },
        ] {
            let auto = simulate_decode_autoscale(
                &fleet,
                &trace,
                SchedulingPolicy::LengthAware,
                dispatch,
                scheduler,
                &decode_cfg,
                &DecodeAutoscaleConfig {
                    min_shards: shards,
                    initial_shards: shards,
                    policy,
                    eval_interval_s: 0.002,
                    ..DecodeAutoscaleConfig::default()
                },
            );
            prop_assert_eq!(&auto.decode, &fixed);
            prop_assert!(auto.scale_events.is_empty());
            prop_assert_eq!(auto.migrations, 0);
            prop_assert_eq!(auto.peak_active_shards, shards);
            prop_assert!(
                (auto.shard_seconds - shards as f64 * fixed.fleet.makespan_s).abs() < 1e-9
            );
        }
    }

    /// Scheduled scale-down lands mid-burst with residents in flight:
    /// Drain never evicts (no migrations, no re-prefills beyond
    /// preemptions) and the retiring shards' residents complete on the
    /// retiring shard; Migrate evicts and re-prefills each evicted
    /// resident exactly once. Either way nothing is dropped.
    #[test]
    fn drain_never_drops_and_migrate_re_prefills_exactly_once(
        max_shards in 2usize..5,
        scale_down_idx in 0usize..2,
        burst_rate in 150_000.0f64..400_000.0,
        n in 400usize..800,
        seed in 0u64..1_000_000,
    ) {
        let scale_down = scale_down_from_index(scale_down_idx);
        let fleet = homogeneous_fleet(&tiny_design(64), max_shards);
        let trace = burst_trace(n, burst_rate, seed);
        let r = simulate_decode_autoscale(
            &fleet,
            &trace,
            SchedulingPolicy::LengthAware,
            DispatchPolicy::JoinShortestQueue,
            DecodeScheduler::Continuous,
            &DecodeConfig { max_slots: 4, ttft_deadline_s: 0.001 },
            &DecodeAutoscaleConfig {
                min_shards: 1,
                initial_shards: max_shards, // start big: guarantees retires
                policy: ScalePolicy::Scheduled(vec![SchedulePhase {
                    start_s: 0.102, // mid-burst backlog: residents in flight
                    shards: 1,
                }]),
                scale_down,
                eval_interval_s: 0.002,
                warmup_s: 0.004,
                cooldown_s: 0.0,
                ..DecodeAutoscaleConfig::default()
            },
        );
        prop_assert_eq!(r.decode.fleet.completed, n);
        prop_assert_eq!(
            r.decode.generated_tokens,
            trace.iter().map(|q| q.output_len as u64).sum::<u64>()
        );
        prop_assert_eq!(r.decode.preemptions, 0); // continuous never preempts
        match scale_down {
            DecodeScaleDown::Drain => {
                prop_assert_eq!(r.migrations, 0);
                prop_assert_eq!(r.re_prefills, 0);
            }
            DecodeScaleDown::Migrate => {
                prop_assert_eq!(r.re_prefills, r.migrations);
                let per_req: usize =
                    r.decode.requests.iter().map(|q| q.re_prefills as usize).sum();
                prop_assert_eq!(per_req, r.re_prefills);
            }
        }
        assert_event_log_well_formed(&r, max_shards, max_shards);
        assert_iterations_within_membership(&r, max_shards);
    }

    /// The warm-up delay is real: a launched shard runs no iteration
    /// before its join, and every join trails its launch by exactly the
    /// warm-up.
    #[test]
    fn warmup_never_admits_work_to_a_cold_shard(
        max_shards in 2usize..5,
        scale_down_idx in 0usize..2,
        warmup_s in 0.002f64..0.01,
        burst_rate in 150_000.0f64..400_000.0,
        n in 400usize..800,
        seed in 0u64..1_000_000,
    ) {
        let fleet = homogeneous_fleet(&tiny_design(64), max_shards);
        let trace = burst_trace(n, burst_rate, seed);
        let r = simulate_decode_autoscale(
            &fleet,
            &trace,
            SchedulingPolicy::LengthAware,
            DispatchPolicy::JoinShortestQueue,
            DecodeScheduler::Continuous,
            &DecodeConfig { max_slots: 4, ttft_deadline_s: 0.001 },
            &DecodeAutoscaleConfig {
                min_shards: 1,
                initial_shards: 1,
                policy: ScalePolicy::Reactive { scale_up_depth: 4.0, scale_down_depth: 0.5 },
                scale_down: scale_down_from_index(scale_down_idx),
                eval_interval_s: 0.002,
                warmup_s,
                cooldown_s: 0.0,
                ..DecodeAutoscaleConfig::default()
            },
        );
        assert_iterations_within_membership(&r, 1);
        let events = &r.scale_events;
        for (i, e) in events.iter().enumerate() {
            if e.kind != ScaleEventKind::Join {
                continue;
            }
            let launch = events[..i]
                .iter()
                .rev()
                .find(|l| l.shard == e.shard && l.kind == ScaleEventKind::Launch);
            if let Some(launch) = launch {
                // A bare Join with no preceding Launch is a recall of a
                // retiring shard — no warm-up owed. A launched shard's
                // join must trail by exactly the warm-up.
                let retire_between = events[..i].iter().any(|x| {
                    x.shard == e.shard
                        && x.kind == ScaleEventKind::RetireStart
                        && x.time_s >= launch.time_s
                });
                if !retire_between {
                    prop_assert!(
                        (e.time_s - launch.time_s - warmup_s).abs() < 1e-9,
                        "join at {} after launch at {} != warm-up {}",
                        e.time_s,
                        launch.time_s,
                        warmup_s
                    );
                }
            }
        }
    }

    /// Bit-identical `DecodeAutoscaleReport`s when re-run from
    /// `HARNESS_SEED`-derived traces (the CI seed matrix overrides the
    /// seed via the environment): no hidden nondeterminism in the
    /// controller, the engine, or — the satellite pin — the predictive
    /// policy's rate estimator, which consumes only the simulation-time
    /// arrival stream (no wall clock).
    #[test]
    fn deterministic_under_harness_seed(
        max_shards in 2usize..5,
        policy_idx in 0usize..4,
        scale_down_idx in 0usize..2,
        scheduler_idx in 0usize..3,
        dispatch_idx in 0usize..3,
        n in 300usize..600,
    ) {
        let fleet = homogeneous_fleet(&tiny_design(64), max_shards);
        let trace = burst_trace(n, 250_000.0, harness_seed());
        let cfg = DecodeAutoscaleConfig {
            min_shards: 1,
            initial_shards: 2.min(max_shards),
            policy: policy_from_index(policy_idx, 1, max_shards),
            scale_down: scale_down_from_index(scale_down_idx),
            eval_interval_s: 0.002,
            warmup_s: 0.004,
            cooldown_s: 0.002,
            phase_bounds_s: vec![0.1, 0.2],
            ..DecodeAutoscaleConfig::default()
        };
        let go = || simulate_decode_autoscale(
            &fleet,
            &trace,
            SchedulingPolicy::LengthAware,
            dispatch_from_index(dispatch_idx),
            scheduler_from_index(scheduler_idx),
            &DecodeConfig { max_slots: 4, ttft_deadline_s: 0.001 },
            &cfg,
        );
        prop_assert_eq!(go(), go());
    }
}
