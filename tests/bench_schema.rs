//! Schema-2 validation of the committed `BENCH_fleet.json`: every entry
//! the perf-trajectory bins append must stay machine-readable, and the
//! single-core speedup regression (a meaningless sub-1.0 ratio recorded
//! when serial and "parallel" runs time-slice one core) must never come
//! back. Parsed with the vendored `serde::json` reader — the same code
//! path the bins use to migrate the file.

use lat_bench::benchfile::SPEEDUP_NOTE;
use serde::json::{self, Value};

fn load() -> std::collections::BTreeMap<String, Value> {
    let text = std::fs::read_to_string("BENCH_fleet.json").expect("BENCH_fleet.json is committed");
    match json::parse(&text).expect("BENCH_fleet.json parses") {
        Value::Obj(map) => map,
        other => panic!("top level must be an object, got {other:?}"),
    }
}

fn str_field<'a>(e: &'a std::collections::BTreeMap<String, Value>, k: &str) -> &'a str {
    match e.get(k) {
        Some(Value::Str(s)) => s,
        other => panic!("field {k} must be a string, got {other:?}"),
    }
}

/// Positive finite number (the bins write counts as UInt and wall-clock
/// rates as Float; both shapes are legal schema-2 numbers).
fn positive_number(e: &std::collections::BTreeMap<String, Value>, k: &str) -> f64 {
    match e.get(k) {
        Some(Value::Float(f)) if f.is_finite() && *f > 0.0 => *f,
        Some(Value::UInt(u)) if *u > 0 => *u as f64,
        other => panic!("field {k} must be a positive number, got {other:?}"),
    }
}

#[test]
fn bench_fleet_json_is_valid_schema_2() {
    let top = load();
    assert_eq!(top.get("schema"), Some(&Value::UInt(2)), "schema version");
    assert!(
        matches!(top.get("bench"), Some(Value::Str(_))),
        "top-level bench name"
    );
    let Some(Value::Arr(entries)) = top.get("entries") else {
        panic!("entries must be an array");
    };
    assert!(!entries.is_empty(), "trajectory must not be empty");

    let mut saw_streaming_1m = false;
    for (i, entry) in entries.iter().enumerate() {
        let Value::Obj(e) = entry else {
            panic!("entry {i} must be an object");
        };
        let bench = str_field(e, "bench");
        let scenario = str_field(e, "scenario");
        assert!(!scenario.is_empty(), "entry {i} ({bench}): empty scenario");
        let seed = str_field(e, "seed");
        let hex = seed
            .strip_prefix("0x")
            .unwrap_or_else(|| panic!("entry {i} ({bench}): seed {seed:?} is not 0x-hex"));
        u64::from_str_radix(hex, 16)
            .unwrap_or_else(|_| panic!("entry {i} ({bench}): seed {seed:?} is not a u64"));

        // Every wall-clock / rate field present must be a positive number.
        for k in [
            "wall_s",
            "wall_s_exact",
            "wall_s_serial",
            "wall_s_parallel",
            "events_per_s",
            "requests",
            "batches",
            "cells",
            "workers",
        ] {
            if e.contains_key(k) {
                positive_number(e, k);
            }
        }

        match bench {
            "parallel-sweep" => {
                let host = positive_number(e, "host_parallelism");
                if host <= 1.0 {
                    // The regression this suite pins: a single-core host
                    // must record the annotation, never a speedup ratio.
                    assert!(
                        !e.contains_key("speedup"),
                        "entry {i}: single-core host recorded a speedup"
                    );
                    assert_eq!(
                        e.get("speedup_note"),
                        Some(&Value::Str(SPEEDUP_NOTE.into())),
                        "entry {i}: single-core sweep missing the annotation"
                    );
                } else {
                    positive_number(e, "speedup");
                }
            }
            "fleet-streaming-1m" => {
                saw_streaming_1m = true;
                let stream = positive_number(e, "peak_tracked_bytes");
                let exact = positive_number(e, "peak_tracked_bytes_exact");
                assert!(
                    stream < exact,
                    "entry {i}: streaming proxy {stream} B not below exact {exact} B"
                );
                assert!(
                    positive_number(e, "requests") >= 1_000_000.0,
                    "entry {i}: the 1M smoke ran fewer than a million requests"
                );
            }
            _ => {}
        }
    }
    assert!(
        saw_streaming_1m,
        "BENCH_fleet.json must record the million-request streaming smoke"
    );
}
