//! Property-based tests of the fault-injection layer's invariants:
//! request conservation when all but one shard is killed (residents in
//! flight included), the empty plan + patient client reproducing the
//! plain engines bit-for-bit, crashes never admitting work to a cold or
//! dead shard, retry counts bounded by the client's deadline budget,
//! zero-completion outage reports staying NaN-free, and `HARNESS_SEED`
//! determinism of the full `FailureReport` (mirrors
//! `tests/autoscale_props.rs` and `tests/decode_props.rs`).

use lat_bench::scenarios::harness_seed;
use lat_fpga::core::pipeline::SchedulingPolicy;
use lat_fpga::hwsim::accelerator::AcceleratorDesign;
use lat_fpga::hwsim::autoscale::{
    AutoscaleConfig, DecodeScaleDown, RetirePolicy, ScaleEventKind, ScalePolicy,
};
use lat_fpga::hwsim::decode::{decode_trace, DecodeConfig, DecodeScheduler};
use lat_fpga::hwsim::failure::{
    simulate_autoscale_failure, simulate_decode_failure, simulate_fleet_failure,
    AutoscaleFailureReport, ClientConfig, Disposition, Fault, FaultKind, FaultPlan,
};
use lat_fpga::hwsim::fleet::{
    homogeneous_fleet, poisson_trace, simulate_fleet, BatcherConfig, DispatchPolicy,
};
use lat_fpga::hwsim::spec::FpgaSpec;
use lat_fpga::model::config::ModelConfig;
use lat_fpga::model::graph::AttentionMode;
use lat_fpga::workloads::datasets::DatasetSpec;
use proptest::prelude::*;

fn tiny_design(s_avg: usize) -> AcceleratorDesign {
    AcceleratorDesign::new(
        &ModelConfig::tiny(),
        AttentionMode::paper_sparse(),
        FpgaSpec::alveo_u280(),
        s_avg,
    )
}

fn dispatch_from_index(i: usize) -> DispatchPolicy {
    DispatchPolicy::ALL[i % DispatchPolicy::ALL.len()]
}

/// Every batch must start inside one of its shard's membership windows:
/// initially-active shards until their first `Retired`/`Failed`, later
/// (or recovered) shards only between a `Join` and the next
/// `Retired`/`Failed`. `Recovered` alone reopens nothing — a revived
/// shard readmits only through the normal launch + warm-up path, which
/// is exactly the "crash during warm-up never admits work to a cold
/// shard" invariant.
fn assert_batches_within_membership(r: &AutoscaleFailureReport, initial_shards: usize) {
    for b in &r.failure.fleet.batch_log {
        let mut allowed = b.shard < initial_shards;
        for e in r.scale_events.iter().filter(|e| e.shard == b.shard) {
            if e.time_s > b.start_s + 1e-12 {
                break;
            }
            match e.kind {
                ScaleEventKind::Join => allowed = true,
                ScaleEventKind::Retired | ScaleEventKind::Failed => allowed = false,
                ScaleEventKind::Launch
                | ScaleEventKind::RetireStart
                | ScaleEventKind::Recovered => {}
            }
        }
        assert!(
            allowed,
            "batch on shard {} at t={} outside its membership windows",
            b.shard, b.start_s
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Killing every decode shard but one — with queued work and KV
    /// residents in flight — never drops a request: the survivor inherits
    /// and finishes every generation in full.
    #[test]
    fn killing_all_but_one_decode_shard_never_drops_a_request(
        shards in 2usize..5,
        dispatch_idx in 0usize..3,
        rate in 1000.0f64..4000.0,
        n in 40usize..120,
        crash_scale in 0.002f64..0.02,
        seed in 0u64..1_000_000,
    ) {
        let fleet = homogeneous_fleet(&tiny_design(64), shards);
        let trace = decode_trace(
            &DatasetSpec::mrpc(),
            &DatasetSpec::rte(),
            0.2,
            rate,
            n,
            seed,
        );
        // Stagger the kills so work re-routes through shrinking
        // survivors; the last shard stays up (the decode engine cannot
        // park work).
        let plan = FaultPlan {
            faults: (0..shards - 1)
                .map(|s| Fault {
                    shard: s,
                    kind: FaultKind::Crash {
                        at_s: crash_scale * (s + 1) as f64,
                        recover_s: None,
                    },
                })
                .collect(),
        };
        let r = simulate_decode_failure(
            &fleet,
            &trace,
            SchedulingPolicy::LengthAware,
            dispatch_from_index(dispatch_idx),
            DecodeScheduler::Continuous,
            &DecodeConfig::default(),
            &plan,
            &ClientConfig::patient(),
            DecodeScaleDown::Migrate,
            0.25,
        );
        prop_assert_eq!(r.completed, n, "a patient client must lose nothing");
        prop_assert_eq!(r.timed_out, 0);
        prop_assert_eq!(r.outcomes.len(), n);
        // Every generation ran to its full length — tokens from the
        // crashed shards' residents included.
        let want: u64 = trace.iter().map(|q| q.output_len as u64).sum();
        prop_assert_eq!(r.decode.generated_tokens, want);
        prop_assert!(r.outcomes.iter().all(|o| o.completion_s.is_finite()));
    }

    /// The empty fault plan with the patient client is the plain fleet
    /// engine bit-for-bit: the failure layer charges nothing for merely
    /// existing.
    #[test]
    fn empty_plan_patient_client_is_the_plain_engine(
        shards in 1usize..4,
        dispatch_idx in 0usize..3,
        rate in 500.0f64..4000.0,
        n in 16usize..64,
        seed in 0u64..1_000_000,
    ) {
        let fleet = homogeneous_fleet(&tiny_design(64), shards);
        let trace = poisson_trace(&DatasetSpec::rte(), rate, n, seed);
        let dispatch = dispatch_from_index(dispatch_idx);
        let batcher = BatcherConfig::default();
        let plain = simulate_fleet(
            &fleet,
            &trace,
            SchedulingPolicy::LengthAware,
            dispatch,
            &batcher,
        );
        let r = simulate_fleet_failure(
            &fleet,
            &trace,
            SchedulingPolicy::LengthAware,
            dispatch,
            &batcher,
            &FaultPlan::none(),
            &ClientConfig::patient(),
            0.25,
        );
        prop_assert_eq!(r.fleet, plain);
        prop_assert_eq!(r.completed, n);
        prop_assert_eq!(r.timed_out + r.retried + r.retries, 0);
    }

    /// A crash mid-run under the autoscaler: no batch ever starts on a
    /// cold, warming, or dead shard — a `Recovered` shard readmits work
    /// only after a fresh launch + warm-up (`Join`) — and the books stay
    /// conserved.
    #[test]
    fn crash_during_warmup_never_admits_to_cold_shard(
        max_shards in 3usize..5,
        dispatch_idx in 0usize..3,
        rate in 2000.0f64..8000.0,
        n in 60usize..140,
        warmup_s in 0.05f64..0.2,
        crash_at in 0.005f64..0.05,
        recovers_idx in 0usize..2,
        seed in 0u64..1_000_000,
    ) {
        let fleet = homogeneous_fleet(&tiny_design(64), max_shards);
        let trace = poisson_trace(&DatasetSpec::mrpc(), rate, n, seed);
        let cfg = AutoscaleConfig {
            min_shards: 1,
            initial_shards: 1,
            policy: ScalePolicy::Reactive {
                scale_up_depth: 4.0,
                scale_down_depth: 0.5,
            },
            retire: RetirePolicy::Evict,
            eval_interval_s: 0.01,
            warmup_s,
            cooldown_s: 0.0,
            ..AutoscaleConfig::default()
        };
        let plan = FaultPlan {
            faults: vec![Fault {
                shard: 0,
                kind: FaultKind::Crash {
                    at_s: crash_at,
                    recover_s: if recovers_idx == 1 { Some(crash_at * 2.0) } else { None },
                },
            }],
        };
        let r = simulate_autoscale_failure(
            &fleet,
            &trace,
            SchedulingPolicy::LengthAware,
            dispatch_from_index(dispatch_idx),
            &BatcherConfig::default(),
            &cfg,
            &plan,
            &ClientConfig::patient(),
        );
        prop_assert_eq!(r.failure.completed + r.failure.timed_out, n);
        // A patient client is only ever stranded by an *unrecovered*
        // outage, which a >1-shard reactive fleet here never reaches.
        prop_assert_eq!(r.failure.completed, n);
        assert_batches_within_membership(&r, cfg.initial_shards);
        prop_assert!(r.shard_seconds > 0.0);
        prop_assert!(r.peak_active_shards <= max_shards);
    }

    /// Retry accounting under a dead fleet: every request spends at most
    /// `attempt_bound()` attempts (the deadline clamps the retry
    /// ladder), the retry ledger is exactly the sum of per-request
    /// attempts, and nothing is double-counted.
    #[test]
    fn retry_counts_bounded_by_deadline_budget(
        n in 4usize..32,
        gap in 0.001f64..0.01,
        timeout_s in 0.005f64..0.05,
        max_retries in 0u32..6,
        backoff_s in 0.0f64..0.02,
        deadline_s in 0.02f64..0.2,
    ) {
        let fleet = homogeneous_fleet(&tiny_design(64), 1);
        let trace: Vec<_> = (0..n)
            .map(|i| lat_fpga::hwsim::fleet::Request {
                arrival_s: i as f64 * gap,
                len: 64,
            })
            .collect();
        let plan = FaultPlan {
            faults: vec![Fault {
                shard: 0,
                kind: FaultKind::Crash { at_s: 0.0, recover_s: None },
            }],
        };
        let client = ClientConfig { timeout_s, max_retries, backoff_s, deadline_s };
        let r = simulate_fleet_failure(
            &fleet,
            &trace,
            SchedulingPolicy::LengthAware,
            DispatchPolicy::RoundRobin,
            &BatcherConfig::default(),
            &plan,
            &client,
            0.25,
        );
        let bound = client.attempt_bound();
        prop_assert!(
            r.outcomes.iter().all(|o| o.attempts <= bound),
            "an outcome exceeded the attempt bound {bound}"
        );
        prop_assert_eq!(
            r.outcomes.iter().map(|o| o.attempts as usize).sum::<usize>(),
            r.retries,
            "retry ledger disagrees with per-request attempts"
        );
        // Total outage from t = 0: nothing completes, everything is an
        // explicit timeout — and the report stays NaN-free (the
        // zero-completion regression, property-sized).
        prop_assert_eq!(r.completed, 0);
        prop_assert_eq!(r.timed_out, n);
        prop_assert!(r.outcomes.iter().all(|o| o.disposition == Disposition::TimedOut));
        prop_assert_eq!(r.fleet.completed, 0);
        prop_assert!(!r.fleet.mean_latency_s.is_nan());
        prop_assert!(!r.fleet.mean_batch_size.is_nan());
        prop_assert!(!r.slo_attainment.is_nan());
        prop_assert!(r.phases.iter().all(
            |p| !p.slo_attainment.is_nan() && !p.goodput_seq_s.is_nan() && !p.p95_latency_s.is_nan()
        ));
    }

    /// The full failure pipeline — burst-free trace, crash + straggler
    /// plan, retrying client — is a pure function of the seed: identical
    /// seeds give identical reports (the whole struct, `PartialEq`),
    /// under whatever seed the `HARNESS_SEED` matrix supplies.
    #[test]
    fn deterministic_under_harness_seed(
        shards in 2usize..4,
        n in 30usize..80,
        rate in 1000.0f64..4000.0,
    ) {
        let fleet = homogeneous_fleet(&tiny_design(64), shards);
        let trace = poisson_trace(&DatasetSpec::rte(), rate, n, harness_seed());
        let plan = FaultPlan {
            faults: vec![
                Fault {
                    shard: 0,
                    kind: FaultKind::Crash { at_s: 0.01, recover_s: Some(0.03) },
                },
                Fault {
                    shard: shards - 1,
                    kind: FaultKind::Straggler { from_s: 0.005, until_s: 0.04, slowdown: 8.0 },
                },
            ],
        };
        let client = ClientConfig {
            timeout_s: 0.05,
            max_retries: 2,
            backoff_s: 0.005,
            deadline_s: 0.5,
        };
        let run = || simulate_fleet_failure(
            &fleet,
            &trace,
            SchedulingPolicy::LengthAware,
            DispatchPolicy::JoinShortestQueue,
            &BatcherConfig::default(),
            &plan,
            &client,
            0.25,
        );
        let a = run();
        let b = run();
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.completed + a.timed_out, n);
    }
}
