//! Properties of the deterministic work pool (`lat_core::pool`): worker
//! count must never change any output. Generic `par_map_indexed`
//! properties first, then the contract the ablation binaries rely on —
//! for each ablation bin's sweep grid, a 1-worker (serial) pool and a
//! 4-worker pool produce bit-identical report vectors under
//! `HARNESS_SEED` (and the `PROPTEST_SEED` matrix CI drives).

use lat_bench::scenarios::harness_seed;
use lat_fpga::core::pipeline::SchedulingPolicy;
use lat_fpga::core::pool::Scheduler;
use lat_fpga::hwsim::accelerator::AcceleratorDesign;
use lat_fpga::hwsim::autoscale::{
    simulate_autoscale, simulate_decode_autoscale, AutoscaleConfig, DecodeAutoscaleConfig,
    DecodeScaleDown, RetirePolicy, ScalePolicy,
};
use lat_fpga::hwsim::decode::{
    decode_trace, simulate_decode, DecodeConfig, DecodeScheduler, KvTransfer,
};
use lat_fpga::hwsim::disagg::{simulate_disaggregated, DisaggConfig};
use lat_fpga::hwsim::failure::{simulate_fleet_failure, ClientConfig, Fault, FaultKind, FaultPlan};
use lat_fpga::hwsim::fleet::{
    homogeneous_fleet, poisson_trace, simulate_fleet, BatcherConfig, DispatchPolicy,
};
use lat_fpga::hwsim::spec::FpgaSpec;
use lat_fpga::model::config::ModelConfig;
use lat_fpga::model::graph::AttentionMode;
use lat_fpga::workloads::datasets::DatasetSpec;
use lat_fpga::workloads::prefix::PrefixProfile;
use proptest::prelude::*;

fn tiny_design(s_avg: usize) -> AcceleratorDesign {
    AcceleratorDesign::new(
        &ModelConfig::tiny(),
        AttentionMode::paper_sparse(),
        FpgaSpec::alveo_u280(),
        s_avg,
    )
}

/// Worker counts the bin sweeps are pinned at: serial and the 4-worker
/// pool the acceptance bench times.
const PINNED_WORKERS: usize = 4;

// ── Generic pool properties ─────────────────────────────────────────────

proptest::proptest! {
    #![proptest_config(proptest::test_runner::ProptestConfig::with_cases(48))]

    /// `par_map_indexed` is a map: same length, same index→result
    /// mapping as the serial iterator, for any worker count.
    #[test]
    fn par_map_is_order_preserving_for_any_worker_count(
        items in proptest::collection::vec(0u64..1_000_000, 0..64),
        workers in 1usize..9,
    ) {
        let f = |&x: &u64| x.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17);
        let serial: Vec<u64> = items.iter().map(f).collect();
        let pooled = Scheduler::new(workers).par_map_indexed(&items, f);
        prop_assert_eq!(pooled, serial);
    }

    /// Work skew (index-dependent cost) must not reorder results.
    #[test]
    fn par_map_survives_skewed_work(workers in 2usize..8) {
        let items: Vec<usize> = (0..31).collect();
        let f = |&i: &usize| -> usize {
            // Early indices do ~1000× the work of late ones.
            let spins = if i < 4 { 20_000 } else { 20 };
            let mut acc = i;
            for k in 0..spins {
                acc = acc.wrapping_mul(31).wrapping_add(k);
            }
            // Result depends only on the index, not the spin count.
            std::hint::black_box(acc);
            i * i
        };
        let serial: Vec<usize> = items.iter().map(f).collect();
        prop_assert_eq!(Scheduler::new(workers).par_map_indexed(&items, f), serial);
    }
}

// ── Per-bin sweep grids: serial ≡ 4 workers, bit-identical ──────────────

fn run_with<T: Sync, R: Send, F: Fn(&T) -> R + Sync>(cells: &[T], f: F) -> (Vec<R>, Vec<R>) {
    (
        Scheduler::serial().par_map_indexed(cells, &f),
        Scheduler::new(PINNED_WORKERS).par_map_indexed(cells, &f),
    )
}

#[test]
fn fleet_sweep_is_identical_serial_and_parallel() {
    let design = tiny_design(64);
    let fleet = homogeneous_fleet(&design, 2);
    let mix = DatasetSpec::mrpc();
    let cells: Vec<(f64, DispatchPolicy)> = [120.0f64, 400.0]
        .iter()
        .flat_map(|&rate| DispatchPolicy::ALL.iter().map(move |&d| (rate, d)))
        .collect();
    let (serial, parallel) = run_with(&cells, |&(rate, d)| {
        let trace = poisson_trace(&mix, rate, 60, harness_seed());
        simulate_fleet(
            &fleet,
            &trace,
            SchedulingPolicy::LengthAware,
            d,
            &BatcherConfig::default(),
        )
    });
    assert_eq!(serial, parallel, "fleet sweep diverged under 4 workers");
    assert!(serial.iter().all(|r| r.completed == 60));
}

#[test]
fn decode_sweep_is_identical_serial_and_parallel() {
    let design = tiny_design(64);
    let mix = DatasetSpec::mrpc();
    let trace = decode_trace(&mix, &mix.decode_output(), 0.2, 300.0, 48, harness_seed());
    let cells: Vec<(usize, DecodeScheduler)> = [1usize, 3]
        .iter()
        .flat_map(|&n| DecodeScheduler::ALL.into_iter().map(move |s| (n, s)))
        .collect();
    let (serial, parallel) = run_with(&cells, |&(n, scheduler)| {
        simulate_decode(
            &homogeneous_fleet(&design, n),
            &trace,
            SchedulingPolicy::LengthAware,
            DispatchPolicy::JoinShortestQueue,
            scheduler,
            &DecodeConfig::default(),
        )
    });
    assert_eq!(serial, parallel, "decode sweep diverged under 4 workers");
    assert!(serial.iter().all(|r| r.fleet.completed == 48));
}

#[test]
fn autoscale_sweep_is_identical_serial_and_parallel() {
    let design = tiny_design(64);
    let fleet = homogeneous_fleet(&design, 3);
    let trace = poisson_trace(&DatasetSpec::mrpc(), 500.0, 60, harness_seed());
    let cfg = |policy| AutoscaleConfig {
        min_shards: 1,
        initial_shards: 1,
        policy,
        retire: RetirePolicy::Drain,
        eval_interval_s: 0.05,
        warmup_s: 0.05,
        cooldown_s: 0.1,
        slo_latency_s: 0.25,
        phase_bounds_s: Vec::new(),
    };
    let cells = [
        cfg(ScalePolicy::Reactive {
            scale_up_depth: 4.0,
            scale_down_depth: 1.0,
        }),
        cfg(ScalePolicy::UtilizationTarget {
            low: 0.2,
            high: 0.8,
        }),
    ];
    let (serial, parallel) = run_with(&cells, |c| {
        simulate_autoscale(
            &fleet,
            &trace,
            SchedulingPolicy::LengthAware,
            DispatchPolicy::JoinShortestQueue,
            &BatcherConfig::default(),
            c,
        )
    });
    assert_eq!(serial, parallel, "autoscale sweep diverged under 4 workers");
}

#[test]
fn decode_autoscale_sweep_is_identical_serial_and_parallel() {
    let design = tiny_design(64);
    let fleet = homogeneous_fleet(&design, 3);
    let mix = DatasetSpec::mrpc();
    let trace = decode_trace(&mix, &mix.decode_output(), 0.2, 400.0, 48, harness_seed());
    let cells = [DecodeScaleDown::Drain, DecodeScaleDown::Migrate].map(|scale_down| {
        DecodeAutoscaleConfig {
            scale_down,
            ..DecodeAutoscaleConfig::default()
        }
    });
    let (serial, parallel) = run_with(&cells, |c| {
        simulate_decode_autoscale(
            &fleet,
            &trace,
            SchedulingPolicy::LengthAware,
            DispatchPolicy::JoinShortestQueue,
            DecodeScheduler::Continuous,
            &DecodeConfig::default(),
            c,
        )
    });
    assert_eq!(
        serial, parallel,
        "decode-autoscale sweep diverged under 4 workers"
    );
}

#[test]
fn failure_sweep_is_identical_serial_and_parallel() {
    let design = tiny_design(64);
    let fleet = homogeneous_fleet(&design, 2);
    let trace = poisson_trace(&DatasetSpec::mrpc(), 300.0, 60, harness_seed());
    let plan = FaultPlan {
        faults: vec![Fault {
            shard: 0,
            kind: FaultKind::Crash {
                at_s: 0.05,
                recover_s: Some(0.12),
            },
        }],
    };
    let retrying = ClientConfig {
        timeout_s: 0.4,
        max_retries: 2,
        backoff_s: 0.01,
        deadline_s: 3.0,
    };
    let cells: Vec<(DispatchPolicy, ClientConfig)> = DispatchPolicy::ALL
        .iter()
        .flat_map(|&d| [(d, ClientConfig::patient()), (d, retrying)])
        .collect();
    let (serial, parallel) = run_with(&cells, |(d, client)| {
        simulate_fleet_failure(
            &fleet,
            &trace,
            SchedulingPolicy::LengthAware,
            *d,
            &BatcherConfig::default(),
            &plan,
            client,
            0.25,
        )
    });
    assert_eq!(serial, parallel, "failure sweep diverged under 4 workers");
    // The crash is observable (phases partition the trace) in every cell.
    for r in &serial {
        assert_eq!(r.phases.iter().map(|p| p.arrivals).sum::<usize>(), 60);
    }
}

#[test]
fn disagg_sweep_is_identical_serial_and_parallel() {
    let design = tiny_design(64);
    let prefill = homogeneous_fleet(&design, 2);
    let decode_pool = homogeneous_fleet(&design, 2);
    let mix = DatasetSpec::rte();
    let trace = decode_trace(&mix, &mix.decode_output(), 0.0, 800.0, 48, harness_seed());
    let prefixes = PrefixProfile {
        num_groups: 3,
        prefix_len: 32,
        grouped_fraction: 0.8,
    }
    .assign(trace.len(), harness_seed());
    let cheap = KvTransfer::Copy {
        base_s: 1e-5,
        per_token_s: 1e-8,
    };
    let costly = KvTransfer::Copy {
        base_s: 5e-3,
        per_token_s: 1e-5,
    };
    let cells: Vec<DisaggConfig> = [cheap, costly, KvTransfer::Reprefill]
        .iter()
        .flat_map(|&transfer| {
            [0usize, 3].iter().map(move |&capacity| DisaggConfig {
                transfer,
                prefix_cache_capacity: capacity,
            })
        })
        .collect();
    let (serial, parallel) = run_with(&cells, |dcfg| {
        simulate_disaggregated(
            &prefill,
            &decode_pool,
            &trace,
            &prefixes,
            SchedulingPolicy::LengthAware,
            DispatchPolicy::JoinShortestQueue,
            DecodeScheduler::Continuous,
            &DecodeConfig::default(),
            dcfg,
        )
    });
    assert_eq!(serial, parallel, "disagg sweep diverged under 4 workers");
    assert!(serial.iter().all(|r| r.decode.fleet.completed == 48));
}
