//! Property-based tests of the generative-decode engine's invariants:
//! request/token conservation, slot-capacity respect, TTFT ordering,
//! degenerate equivalence of static and continuous batching at one slot,
//! determinism under `HARNESS_SEED`, the shared arrival process between
//! the encoder and decode trace generators, and the single-step
//! cross-check that pins the decode engine to `simulate_fleet`'s cost
//! model (mirrors `tests/fleet_props.rs`).

use lat_bench::scenarios::harness_seed;
use lat_fpga::core::pipeline::SchedulingPolicy;
use lat_fpga::hwsim::accelerator::AcceleratorDesign;
use lat_fpga::hwsim::decode::nonstationary_decode_trace;
use lat_fpga::hwsim::decode::{
    decode_trace, simulate_decode, DecodeConfig, DecodeScheduler, Priority,
};
use lat_fpga::hwsim::fleet::{
    homogeneous_fleet, nonstationary_poisson_trace, poisson_trace, simulate_fleet, BatcherConfig,
    DispatchPolicy, RatePhase, RateProfile,
};
use lat_fpga::hwsim::spec::FpgaSpec;
use lat_fpga::model::config::ModelConfig;
use lat_fpga::model::graph::AttentionMode;
use lat_fpga::tensor::rng::SplitMix64;
use lat_fpga::workloads::datasets::{DatasetSpec, LengthSampler};
use proptest::prelude::*;

fn tiny_design(s_avg: usize) -> AcceleratorDesign {
    AcceleratorDesign::new(
        &ModelConfig::tiny(),
        AttentionMode::paper_sparse(),
        FpgaSpec::alveo_u280(),
        s_avg,
    )
}

fn scheduler_from_index(i: usize) -> DecodeScheduler {
    DecodeScheduler::ALL[i % DecodeScheduler::ALL.len()]
}

fn dispatch_from_index(i: usize) -> DispatchPolicy {
    DispatchPolicy::ALL[i % DispatchPolicy::ALL.len()]
}

/// Output sampler fixed at one token: a decode request degenerates to a
/// pure prefill, i.e. an encoder request.
struct SingleToken;

impl LengthSampler for SingleToken {
    fn sample_length(&self, _rng: &mut SplitMix64) -> usize {
        1
    }

    fn label(&self) -> String {
        "1-token".into()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every admitted request completes exactly once and generates exactly
    /// its sampled output tokens; TTFT never exceeds end-to-end latency;
    /// no iteration exceeds the slot cap; per-shard iterations never
    /// overlap in time — whatever the scheduler, fleet shape, or load.
    #[test]
    fn conservation_capacity_and_ttft_ordering(
        shards in 1usize..4,
        scheduler_idx in 0usize..3,
        dispatch_idx in 0usize..3,
        rate in 50.0f64..5000.0,
        max_slots in 1usize..10,
        high_pct in 0u32..50,
        n in 8usize..32,
        seed in 0u64..1_000_000,
    ) {
        let fleet = homogeneous_fleet(&tiny_design(64), shards);
        let trace = decode_trace(
            &DatasetSpec::mrpc(),
            &DatasetSpec::mrpc().decode_output(),
            high_pct as f64 / 100.0,
            rate,
            n,
            seed,
        );
        let r = simulate_decode(
            &fleet,
            &trace,
            SchedulingPolicy::LengthAware,
            dispatch_from_index(dispatch_idx),
            scheduler_from_index(scheduler_idx),
            &DecodeConfig { max_slots, ttft_deadline_s: 0.02 },
        );
        // Request and token conservation.
        prop_assert_eq!(r.fleet.completed, n);
        prop_assert_eq!(r.fleet.shards.iter().map(|s| s.completed).sum::<usize>(), n);
        prop_assert_eq!(
            r.generated_tokens,
            trace.iter().map(|q| q.output_len as u64).sum::<u64>()
        );
        for (req, out) in trace.iter().zip(&r.requests) {
            prop_assert_eq!(out.tokens, req.output_len);
            prop_assert!(out.shard < shards);
            // First token can't land after the last one.
            prop_assert!(out.ttft_s > 0.0);
            prop_assert!(out.ttft_s <= out.completion_s - req.arrival_s + 1e-12);
        }
        // Slot capacity: no iteration holds more live sequences than the
        // cap, and a shard never runs two iterations at once.
        prop_assert!(r.fleet.batch_log.iter().all(|b| b.size >= 1 && b.size <= max_slots));
        for s in 0..shards {
            let mut last_end = 0.0f64;
            for b in r.fleet.batch_log.iter().filter(|b| b.shard == s) {
                prop_assert!(b.start_s >= last_end - 1e-12, "overlapping iterations");
                prop_assert!(b.completion_s > b.start_s);
                last_end = b.completion_s;
            }
        }
        // Metrics sanity.
        prop_assert!(r.slot_utilization > 0.0 && r.slot_utilization <= 1.0 + 1e-12);
        prop_assert!(r.ttft_p50_s <= r.ttft_p95_s && r.ttft_p95_s <= r.ttft_p99_s);
        prop_assert!(r.fleet.p50_latency_s <= r.fleet.p95_latency_s);
        prop_assert!(r.goodput_tok_s > 0.0);
        if scheduler_from_index(scheduler_idx) != DecodeScheduler::ContinuousPreempt {
            prop_assert_eq!(r.preemptions, 0);
            prop_assert!(r.requests.iter().all(|q| q.preemptions == 0));
        }
    }

    /// With a single slot there is nothing to backfill: static and
    /// continuous batching are the same serial schedule and must produce
    /// bit-identical reports.
    #[test]
    fn static_equals_continuous_at_one_slot(
        shards in 1usize..4,
        rate in 50.0f64..3000.0,
        n in 8usize..24,
        seed in 0u64..1_000_000,
    ) {
        let fleet = homogeneous_fleet(&tiny_design(64), shards);
        let trace = decode_trace(
            &DatasetSpec::mrpc(),
            &DatasetSpec::mrpc().decode_output(),
            0.25,
            rate,
            n,
            seed,
        );
        let run = |scheduler| simulate_decode(
            &fleet,
            &trace,
            SchedulingPolicy::LengthAware,
            DispatchPolicy::JoinShortestQueue,
            scheduler,
            &DecodeConfig { max_slots: 1, ttft_deadline_s: 0.02 },
        );
        prop_assert_eq!(run(DecodeScheduler::Static), run(DecodeScheduler::Continuous));
    }

    /// Bit-identical reports when re-run from `HARNESS_SEED`-derived
    /// traces: the engine has no hidden nondeterminism.
    #[test]
    fn deterministic_under_harness_seed(
        shards in 1usize..4,
        scheduler_idx in 0usize..3,
        rate in 100.0f64..2000.0,
        n in 8usize..24,
    ) {
        let fleet = homogeneous_fleet(&tiny_design(64), shards);
        let trace = decode_trace(
            &DatasetSpec::rte(),
            &DatasetSpec::rte().decode_output(),
            0.2,
            rate,
            n,
            harness_seed(),
        );
        let run = || simulate_decode(
            &fleet,
            &trace,
            SchedulingPolicy::LengthAware,
            DispatchPolicy::JoinShortestQueue,
            scheduler_from_index(scheduler_idx),
            &DecodeConfig { max_slots: 4, ttft_deadline_s: 0.01 },
        );
        prop_assert_eq!(run(), run());
    }

    /// The decode trace generator and the encoder fleet's `poisson_trace`
    /// share one trace-building helper: for the same `(sampler, rate, n,
    /// seed)` they emit identical arrival times and identical
    /// prefill/sequence lengths — the arrival processes cannot drift
    /// apart.
    #[test]
    fn arrival_process_shared_with_poisson_trace(
        rate in 10.0f64..5000.0,
        n in 1usize..64,
        seed in 0u64..u64::MAX,
        high_pct in 0u32..=100,
    ) {
        let spec = DatasetSpec::squad_v1();
        let enc = poisson_trace(&spec, rate, n, seed);
        let dec = decode_trace(
            &spec,
            &spec.decode_output(),
            high_pct as f64 / 100.0,
            rate,
            n,
            seed,
        );
        prop_assert_eq!(enc.len(), dec.len());
        for (e, d) in enc.iter().zip(&dec) {
            prop_assert_eq!(e.arrival_s, d.arrival_s);
            prop_assert_eq!(e.len, d.prefill_len);
        }
    }

    /// The nonstationary mirror of the shared-arrival pinning: for the
    /// same `(profile, n, seed)`, the piecewise/diurnal decode trace
    /// generator and the fleet's nonstationary Poisson generator emit
    /// bit-identical arrival times and prefill/sequence lengths — both
    /// are thin payloads over `nonstationary_poisson_process`, so the
    /// arrival processes cannot drift apart.
    #[test]
    fn nonstationary_arrival_process_shared_with_poisson_trace(
        profile_idx in 0usize..2,
        rate_a in 20.0f64..3000.0,
        rate_b in 20.0f64..3000.0,
        dur_a in 0.05f64..2.0,
        swing in 1.0f64..8.0,
        period in 0.5f64..20.0,
        n in 1usize..64,
        seed in 0u64..u64::MAX,
        high_pct in 0u32..=100,
    ) {
        let profile = if profile_idx == 0 {
            RateProfile::Piecewise(vec![
                RatePhase { duration_s: dur_a, rate: rate_a },
                RatePhase { duration_s: 1.0, rate: rate_b },
            ])
        } else {
            RateProfile::Diurnal { mean_rate: rate_a, swing, period_s: period }
        };
        let spec = DatasetSpec::squad_v1();
        let enc = nonstationary_poisson_trace(&spec, &profile, n, seed);
        let dec = nonstationary_decode_trace(
            &spec,
            &spec.decode_output(),
            high_pct as f64 / 100.0,
            &profile,
            n,
            seed,
        );
        prop_assert_eq!(enc.len(), dec.len());
        for (e, d) in enc.iter().zip(&dec) {
            prop_assert_eq!(e.arrival_s, d.arrival_s);
            prop_assert_eq!(e.len, d.prefill_len);
        }
        prop_assert!(dec.windows(2).all(|w| w[0].arrival_s <= w[1].arrival_s));
        prop_assert!(dec.iter().all(|r| r.output_len >= 1));
    }

    /// Cross-check: a single-step decode workload (every `output_len` = 1)
    /// is a stream of pure prefills, so the decode engine must reproduce
    /// `simulate_fleet`'s throughput on the same trace — the two engines
    /// answer to one cost model.
    #[test]
    fn single_step_decode_matches_fleet_throughput(
        max_batch in 2usize..8,
        n in 16usize..48,
        seed in 0u64..1_000_000,
    ) {
        // Saturating arrivals: both engines run full back-to-back batches,
        // so batch formation differences stay in the noise.
        let rate = 50_000.0;
        let design = tiny_design(64);
        let dec = decode_trace(&DatasetSpec::rte(), &SingleToken, 0.0, rate, n, seed);
        let enc = poisson_trace(&DatasetSpec::rte(), rate, n, seed);
        let d = simulate_decode(
            std::slice::from_ref(&design),
            &dec,
            SchedulingPolicy::LengthAware,
            DispatchPolicy::JoinShortestQueue,
            DecodeScheduler::Continuous,
            &DecodeConfig { max_slots: max_batch, ttft_deadline_s: 0.02 },
        );
        // Zero batching window: the fleet dispatches as eagerly as the
        // decode engine admits, so neither side idles on a timer.
        let f = simulate_fleet(
            std::slice::from_ref(&design),
            &enc,
            SchedulingPolicy::LengthAware,
            DispatchPolicy::JoinShortestQueue,
            &BatcherConfig { batch_window_s: 0.0, max_batch },
        );
        prop_assert_eq!(d.generated_tokens as usize, n);
        let rel = (d.fleet.throughput_seq_s - f.throughput_seq_s).abs() / f.throughput_seq_s;
        prop_assert!(
            rel < 0.10,
            "decode {} vs fleet {} seq/s (rel {:.3})",
            d.fleet.throughput_seq_s,
            f.throughput_seq_s,
            rel
        );
    }

    /// The continuous scheduler is priority-blind: rewriting every request
    /// to normal priority must not change its schedule.
    #[test]
    fn continuous_ignores_priorities(
        rate in 100.0f64..3000.0,
        n in 8usize..24,
        seed in 0u64..1_000_000,
    ) {
        let fleet = homogeneous_fleet(&tiny_design(64), 2);
        let trace = decode_trace(
            &DatasetSpec::mrpc(),
            &DatasetSpec::mrpc().decode_output(),
            0.5,
            rate,
            n,
            seed,
        );
        let mut flattened = trace.clone();
        for q in &mut flattened {
            q.priority = Priority::Normal;
        }
        let run = |t: &[lat_fpga::hwsim::decode::DecodeRequest]| simulate_decode(
            &fleet,
            t,
            SchedulingPolicy::LengthAware,
            DispatchPolicy::JoinShortestQueue,
            DecodeScheduler::Continuous,
            &DecodeConfig { max_slots: 4, ttft_deadline_s: 0.02 },
        );
        let (a, b) = (run(&trace), run(&flattened));
        // Everything but the per-class TTFT slice (which by construction
        // reads the trace's priority labels) must be bit-identical.
        prop_assert_eq!(&a.fleet, &b.fleet);
        prop_assert_eq!(&a.requests, &b.requests);
        prop_assert_eq!(a.ttft_p99_s, b.ttft_p99_s);
        prop_assert_eq!(a.itl_p99_s, b.itl_p99_s);
        prop_assert_eq!(a.preemptions + b.preemptions, 0);
    }
}
