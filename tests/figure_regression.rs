//! Regression tests pinning the calibrated figure-level results to the
//! bands recorded in EXPERIMENTS.md. If a refactor moves any of these, the
//! reproduction claims need re-checking.

use lat_fpga::core::pipeline::SchedulingPolicy;
use lat_fpga::hwsim::accelerator::AcceleratorDesign;
use lat_fpga::hwsim::spec::FpgaSpec;
use lat_fpga::model::config::ModelConfig;
use lat_fpga::model::graph::AttentionMode;
use lat_fpga::platforms::Platform;
use lat_fpga::tensor::rng::SplitMix64;
use lat_fpga::workloads::datasets::DatasetSpec;

struct ScenarioTimes {
    cpu: f64,
    tx2: f64,
    gpu: f64,
    fpga_base: f64,
    fpga_ours: f64,
}

fn measure(model: &ModelConfig, dataset: &DatasetSpec, batches: usize, seed: u64) -> ScenarioTimes {
    let platforms = Platform::all_presets();
    let ours = AcceleratorDesign::new(
        model,
        AttentionMode::paper_sparse(),
        FpgaSpec::alveo_u280(),
        dataset.avg_len,
    );
    let baseline = AcceleratorDesign::new(
        model,
        AttentionMode::Dense,
        FpgaSpec::alveo_u280(),
        dataset.max_len,
    );
    let mut rng = SplitMix64::new(seed);
    let mut t = [0.0f64; 5];
    for _ in 0..batches {
        let batch = dataset.sample_batch(&mut rng, 16);
        for (i, p) in platforms.iter().enumerate() {
            t[i] += p.batch_seconds(model, &batch);
        }
        t[3] += baseline
            .run_batch(&batch, SchedulingPolicy::PadToMax)
            .seconds;
        t[4] += ours
            .run_batch(&batch, SchedulingPolicy::LengthAware)
            .seconds;
    }
    ScenarioTimes {
        cpu: t[0],
        tx2: t[1],
        gpu: t[2],
        fpga_base: t[3],
        fpga_ours: t[4],
    }
}

fn geomean(xs: &[f64]) -> f64 {
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Fig. 7(a) calibration bands: the geomean speedups must stay within
/// ±40 % of the values EXPERIMENTS.md records (85.6 / 39.3 / 2.6 / 3.1).
#[test]
fn fig7a_geomean_speedups_in_band() {
    let scenarios = [
        (ModelConfig::bert_base(), DatasetSpec::squad_v1()),
        (ModelConfig::bert_base(), DatasetSpec::rte()),
        (ModelConfig::bert_base(), DatasetSpec::mrpc()),
        (ModelConfig::bert_large(), DatasetSpec::squad_v1()),
    ];
    let mut vs_cpu = Vec::new();
    let mut vs_tx2 = Vec::new();
    let mut vs_gpu = Vec::new();
    let mut vs_base = Vec::new();
    for (i, (model, dataset)) in scenarios.iter().enumerate() {
        let t = measure(model, dataset, 4, 0x000F_167A + i as u64);
        vs_cpu.push(t.cpu / t.fpga_ours);
        vs_tx2.push(t.tx2 / t.fpga_ours);
        vs_gpu.push(t.gpu / t.fpga_ours);
        vs_base.push(t.fpga_base / t.fpga_ours);
    }
    let checks = [
        ("CPU", geomean(&vs_cpu), 85.6),
        ("TX2", geomean(&vs_tx2), 39.3),
        ("GPU", geomean(&vs_gpu), 2.6),
        ("FPGA baseline", geomean(&vs_base), 3.1),
    ];
    for (name, measured, expected) in checks {
        assert!(
            measured > expected * 0.6 && measured < expected * 1.4,
            "{name}: geomean speedup {measured:.1} drifted from calibrated {expected}"
        );
    }
}

/// The per-scenario ordering of Fig. 7(a) holds everywhere:
/// CPU > TX2 > {GPU, FPGA-baseline} > FPGA-ours (in latency).
#[test]
fn fig7a_ordering_every_scenario() {
    let scenarios = [
        (ModelConfig::bert_base(), DatasetSpec::squad_v1()),
        (ModelConfig::bert_base(), DatasetSpec::rte()),
        (ModelConfig::bert_base(), DatasetSpec::mrpc()),
        (ModelConfig::bert_large(), DatasetSpec::squad_v1()),
    ];
    for (i, (model, dataset)) in scenarios.iter().enumerate() {
        let t = measure(model, dataset, 3, 0x0D0E + i as u64);
        let label = format!("{} / {}", model.name, dataset.name);
        assert!(t.cpu > t.tx2, "{label}: CPU !slowest");
        assert!(t.tx2 > t.gpu, "{label}: TX2 !> GPU");
        assert!(t.gpu > t.fpga_ours, "{label}: GPU !> ours");
        assert!(t.fpga_base > t.fpga_ours, "{label}: baseline !> ours");
    }
}

/// Fig. 1(c) anchor: the self-attention workflow (including its linear
/// transforms, as the paper's box draws it) takes 55–70 % of encoder time
/// on the GPU profile at n = 128.
#[test]
fn fig1c_attention_share_anchor() {
    use lat_fpga::model::graph::{OpKind, OperatorGraph};
    let cfg = ModelConfig::bert_base();
    let graph = OperatorGraph::encoder(&cfg);
    let gpu = Platform::preset(lat_fpga::platforms::PlatformKind::RtxQuadro6000);
    let scale = gpu.length_efficiency(128);
    let mut attn_time = 0.0;
    let mut total = 0.0;
    for op in graph.operators() {
        let fl = graph.flops(op.kind, 128, AttentionMode::Dense) as f64;
        let eff = if op.kind.is_attention() {
            gpu.attention_efficiency
        } else {
            gpu.gemm_efficiency
        };
        let t = fl / (gpu.peak_flops * eff * scale);
        total += t;
        let in_attention_box =
            op.kind.is_attention() || matches!(op.kind, OpKind::QkvLinear | OpKind::OutLinear);
        if in_attention_box {
            attn_time += t;
        }
    }
    let share = attn_time / total;
    assert!(
        (0.55..0.70).contains(&share),
        "attention-box share {share:.3} outside the ~60% anchor"
    );
}

/// Table 2 anchor: equivalent throughput and energy efficiency of "Ours"
/// stay in the recorded bands (2.8–5.2 TOPS, 60–150 GOP/J).
#[test]
fn table2_ours_bands() {
    let design = AcceleratorDesign::new(
        &ModelConfig::bert_base(),
        AttentionMode::paper_sparse(),
        FpgaSpec::alveo_u280(),
        177,
    );
    let mut rng = SplitMix64::new(0x7AB2E);
    let mut teq = Vec::new();
    let mut eff = Vec::new();
    for _ in 0..4 {
        let batch = DatasetSpec::squad_v1().sample_batch(&mut rng, 16);
        let r = design.run_batch(&batch, SchedulingPolicy::LengthAware);
        teq.push(r.equivalent_gops() / 1000.0);
        eff.push(r.equivalent_gop_per_j());
    }
    let teq = geomean(&teq);
    let eff = geomean(&eff);
    assert!(
        (2.0..6.5).contains(&teq),
        "equivalent TOPS {teq:.2} out of band"
    );
    assert!((60.0..150.0).contains(&eff), "GOP/J {eff:.1} out of band");
}
