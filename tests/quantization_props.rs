//! Property-based tests of the quantization and LUT substrate — the §3.2
//! invariants the sparse attention algorithm relies on.

use lat_fpga::tensor::fixed::{dot_fx8, quantize_slice};
use lat_fpga::tensor::lut::ProductLut;
use lat_fpga::tensor::quant::{rank_correlation, BitWidth, QuantizedMatrix};
use lat_fpga::tensor::Matrix;
use proptest::prelude::*;

fn small_matrix() -> impl Strategy<Value = Matrix> {
    (1usize..12, 1usize..12).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-10.0f32..10.0, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data).expect("shape matches"))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Dequantization error is bounded by half a quantization step for
    /// affine widths.
    #[test]
    fn quantization_error_bounded(m in small_matrix(), wide in any::<bool>()) {
        let bits = if wide { BitWidth::Eight } else { BitWidth::Four };
        let q = QuantizedMatrix::quantize(&m, bits);
        let back = q.dequantize();
        let half_step = q.scale() / 2.0 + 1e-6;
        for (&a, &b) in m.as_slice().iter().zip(back.as_slice()) {
            prop_assert!((a - b).abs() <= half_step);
        }
    }

    /// Quantized levels never exceed the representable range.
    #[test]
    fn levels_in_range(m in small_matrix()) {
        for bits in BitWidth::all() {
            let q = QuantizedMatrix::quantize(&m, bits);
            let max = bits.max_level() as i8;
            prop_assert!(q.levels().iter().all(|&l| l >= -max - 1 && l <= max));
        }
    }

    /// The LUT multiplier agrees exactly with integer multiplication over
    /// its full operand domain.
    #[test]
    fn lut_equals_integer_multiply(a in -8i32..=7, b in -8i32..=7) {
        let lut = ProductLut::new(BitWidth::Four);
        prop_assert_eq!(lut.multiply(a, b), a * b);
    }

    /// LUT score matrices equal the i32 reference matmul on quantized
    /// operands (hardware/software bit-parity).
    #[test]
    fn lut_scores_match_reference(
        q in small_matrix(),
        seed in 0u64..1000,
    ) {
        let mut k_data = Vec::new();
        let mut s = seed;
        for _ in 0..(5 * q.cols()) {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            k_data.push(((s >> 33) as i32 % 2000) as f32 / 100.0 - 10.0);
        }
        let k = Matrix::from_vec(5, q.cols(), k_data).expect("shape matches");
        for bits in [BitWidth::One, BitWidth::Four] {
            let qq = QuantizedMatrix::quantize(&q, bits);
            let qk = QuantizedMatrix::quantize(&k, bits);
            let lut = ProductLut::new(bits);
            prop_assert_eq!(
                lut.score_matrix(&qq, &qk).expect("shapes agree"),
                qq.matmul_transposed_i32(&qk).expect("shapes agree")
            );
        }
    }

    /// 8-bit quantized scores preserve the rank of exact scores to high
    /// correlation (the monotonicity argument of §3.2).
    #[test]
    fn eight_bit_preserves_rank(seed in 0u64..10_000) {
        use lat_fpga::tensor::rng::SplitMix64;
        let mut rng = SplitMix64::new(seed);
        let q = rng.gaussian_matrix(1, 32, 1.0);
        let k = rng.gaussian_matrix(24, 32, 1.0);
        let exact = q.matmul_transposed(&k).expect("shapes agree");
        let qq = QuantizedMatrix::quantize(&q, BitWidth::Eight);
        let qk = QuantizedMatrix::quantize(&k, BitWidth::Eight);
        let approx: Vec<f32> = qq
            .matmul_transposed_i32(&qk)
            .expect("shapes agree")
            .iter()
            .map(|&x| x as f32)
            .collect();
        let rho = rank_correlation(exact.row(0), &approx);
        prop_assert!(rho > 0.97, "rank correlation {}", rho);
    }

    /// Fixed-point dot product tracks the float dot product within the
    /// accumulated quantization error bound.
    #[test]
    fn fx8_dot_tracks_float(xs in proptest::collection::vec(-1.0f32..1.0, 1..64)) {
        let ys: Vec<f32> = xs.iter().map(|x| 1.0 - x.abs()).collect();
        let (qx, fx) = quantize_slice(&xs);
        let (qy, fy) = quantize_slice(&ys);
        let exact: f32 = xs.iter().zip(&ys).map(|(a, b)| a * b).sum();
        let fixed = dot_fx8(&qx, &qy);
        // Each product may err by roughly (|x| step_y + |y| step_x).
        let step = 1.0 / (1u32 << fx.min(fy)) as f32;
        let bound = xs.len() as f32 * step * 2.0 + 1e-4;
        prop_assert!((exact - fixed).abs() <= bound, "err {} > {}", (exact - fixed).abs(), bound);
    }
}
