//! Property-based tests of the length-aware pipeline scheduler (§4.2).

use lat_fpga::core::pipeline::{
    schedule_batch, sequential_makespan, LinearStageTiming, SchedulingPolicy,
};
use proptest::prelude::*;

fn timing_strategy() -> impl Strategy<Value = LinearStageTiming> {
    (2usize..5).prop_flat_map(|stages| {
        proptest::collection::vec(1.0f64..20.0, stages)
            .prop_map(move |coeffs| LinearStageTiming::new(coeffs, vec![0; stages]))
    })
}

fn batch_strategy() -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec(8usize..512, 1..20)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// No two jobs ever occupy the same stage simultaneously, and per-job
    /// stage order is respected — for every policy.
    #[test]
    fn schedule_is_feasible(
        lengths in batch_strategy(),
        timing in timing_strategy(),
        layers in 1usize..4,
        which in 0usize..3,
    ) {
        use lat_fpga::core::pipeline::StageTiming;
        let policy = match which {
            0 => SchedulingPolicy::LengthAware,
            1 => SchedulingPolicy::PadToMax,
            _ => SchedulingPolicy::MicroBatch { size: 3 },
        };
        let s = schedule_batch(&lengths, layers, &timing, policy);
        // Stage exclusivity.
        for stage in 0..timing.num_stages() {
            let mut spans: Vec<(u64, u64)> = s
                .entries()
                .iter()
                .filter(|e| e.stage == stage)
                .map(|e| (e.start, e.end))
                .collect();
            spans.sort_unstable();
            for w in spans.windows(2) {
                prop_assert!(w[0].1 <= w[1].0, "overlap in stage {}", stage);
            }
        }
        // Intra-job precedence.
        for e in s.entries() {
            if e.stage > 0 {
                let prev = s
                    .entries()
                    .iter()
                    .find(|p| p.seq == e.seq && p.layer == e.layer && p.stage == e.stage - 1)
                    .expect("predecessor exists");
                prop_assert!(prev.end <= e.start);
            }
        }
    }

    /// Makespan lower bounds: at least the bottleneck stage's total work,
    /// and at least one job's full path; upper bound: sequential execution.
    #[test]
    fn makespan_bounds(
        lengths in batch_strategy(),
        timing in timing_strategy(),
        layers in 1usize..4,
    ) {
        use lat_fpga::core::pipeline::StageTiming;
        let s = schedule_batch(&lengths, layers, &timing, SchedulingPolicy::LengthAware);
        for stage in 0..timing.num_stages() {
            prop_assert!(s.makespan() >= s.stage_busy(stage));
        }
        let max_len = *lengths.iter().max().expect("non-empty");
        let path: u64 = (0..timing.num_stages())
            .map(|k| timing.stage_cycles(k, max_len))
            .sum();
        prop_assert!(s.makespan() >= path);
        prop_assert!(s.makespan() <= sequential_makespan(&lengths, layers, &timing));
    }

    /// Length-aware scheduling never loses to pad-to-max on the same
    /// timing model.
    #[test]
    fn adaptive_never_worse_than_padded(
        lengths in batch_strategy(),
        timing in timing_strategy(),
        layers in 1usize..4,
    ) {
        let a = schedule_batch(&lengths, layers, &timing, SchedulingPolicy::LengthAware);
        let p = schedule_batch(&lengths, layers, &timing, SchedulingPolicy::PadToMax);
        prop_assert!(a.makespan() <= p.makespan());
    }

    /// The bottleneck stage of a sorted (length-aware) schedule is
    /// bubble-free — the paper's central scheduling claim.
    ///
    /// Restricted to a single encoder layer: across layer boundaries the
    /// `(layer+1, seq)` → `(layer, seq)` dependency can starve the
    /// bottleneck for extreme length skew with small batches (e.g. one
    /// 512-token sequence followed by 8-token ones), which is a real
    /// property of the hardware too; within a sorted layer the guarantee
    /// is unconditional.
    #[test]
    fn bottleneck_stage_bubble_free(
        lengths in batch_strategy(),
        timing in timing_strategy(),
    ) {
        use lat_fpga::core::pipeline::StageTiming;
        let s = schedule_batch(&lengths, 1, &timing, SchedulingPolicy::LengthAware);
        // Identify the strictly slowest stage, if any.
        let per_token: Vec<u64> = (0..timing.num_stages())
            .map(|k| timing.stage_cycles(k, 1000))
            .collect();
        let max = *per_token.iter().max().expect("non-empty");
        let slowest: Vec<usize> = (0..per_token.len())
            .filter(|&k| per_token[k] == max)
            .collect();
        if slowest.len() == 1 {
            prop_assert_eq!(
                s.bubble_cycles(slowest[0]),
                0,
                "bottleneck stage {} has bubbles", slowest[0]
            );
        }
    }

    /// Padding overhead accounting: length-aware is exactly 1.0, padded is
    /// max/mean of the batch.
    #[test]
    fn padding_overhead_accounting(
        lengths in batch_strategy(),
        timing in timing_strategy(),
    ) {
        let a = schedule_batch(&lengths, 1, &timing, SchedulingPolicy::LengthAware);
        prop_assert!((a.padding_overhead() - 1.0).abs() < 1e-9);
        let p = schedule_batch(&lengths, 1, &timing, SchedulingPolicy::PadToMax);
        let max = *lengths.iter().max().expect("non-empty") as f64;
        let mean = lengths.iter().sum::<usize>() as f64 / lengths.len() as f64;
        prop_assert!((p.padding_overhead() - max / mean).abs() < 1e-6);
    }
}
