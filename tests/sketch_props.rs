//! Property suite for the P² streaming quantile sketch — isolated and
//! fast so a sketch regression fails here first, before the engine-level
//! streaming suites run.
//!
//! Three property families from the PR contract:
//!
//! 1. **ε-bound vs the exact reference**: sketch p50/p95/p99 stay pinned
//!    (relative ε *or* a ±4-rank-point window) against
//!    `lat_tensor::stats::percentiles` on uniform, heavy-tailed and
//!    adversarial (sorted / reversed / spiked / bimodal) streams.
//! 2. **Merge-order invariance under Scheduler fan-out**: per-chunk
//!    sketches built through `Scheduler::par_map_indexed` fold to
//!    bit-identical results for any worker count, a single pairwise
//!    merge is bit-symmetric, and chunk-order permutations agree with
//!    the exact reference within the same pinned bound.
//! 3. **Seed-matrix determinism**: rebuilding the sketch from the same
//!    `HARNESS_SEED`-derived stream is bit-identical, for every seed in
//!    the matrix.

use lat_bench::scenarios::harness_seed;
use lat_fpga::core::pool::Scheduler;
use lat_fpga::core::sketch::QuantileSketch;
use lat_fpga::tensor::rng::SplitMix64;
use lat_fpga::tensor::stats;

/// Relative tolerance for the value arm of the pinned assert — same
/// contract the engine-level streaming suites pin.
const QUANTILE_EPS: f64 = 0.25;
/// Rank half-window for the rank arm: the sketch value must fall between
/// the exact sample values at ranks p ± this.
const RANK_WINDOW: f64 = 0.04;
/// Stream length — long enough that P² converges, short enough that the
/// whole suite stays in the fast tier.
const STREAM_LEN: usize = 20_000;
/// The quantiles every report pins.
const PS: [f64; 3] = [0.50, 0.95, 0.99];

/// Sketch value is acceptable if it is within `QUANTILE_EPS` (relative)
/// of the exact rank, OR lands inside the exact sample values at ranks
/// `p ± RANK_WINDOW` (cliffy populations make tiny value windows; dense
/// bulks make tiny rank windows — either arm passing is the contract).
fn assert_quantile_pinned(tag: &str, p: f64, sketch: f64, sorted: &[f64]) {
    let exact = stats::percentile(sorted, p).expect("non-empty stream");
    let tol = exact.abs().max(1e-12) * QUANTILE_EPS + 1e-12;
    if (sketch - exact).abs() <= tol {
        return;
    }
    let rank = |q: f64| {
        let idx = ((sorted.len() as f64 - 1.0) * q.clamp(0.0, 1.0)).round() as usize;
        sorted[idx]
    };
    let (lo, hi) = (rank(p - RANK_WINDOW), rank(p + RANK_WINDOW));
    let slack = hi.abs().max(1e-12) * 1e-6;
    assert!(
        sketch >= lo - slack && sketch <= hi + slack,
        "{tag} q{p}: sketch {sketch} vs exact {exact} — outside ε {QUANTILE_EPS} \
         and rank window [{lo}, {hi}]"
    );
}

fn assert_sketch_pinned(tag: &str, sketch: &QuantileSketch, stream: &[f64]) {
    let mut sorted = stream.to_vec();
    sorted.sort_by(f64::total_cmp);
    for &p in &PS {
        assert_quantile_pinned(tag, p, sketch.quantile(p), &sorted);
    }
    // The exact moments ride along for free: count and mean are not
    // estimates, so they must match the reference bit-for-bit.
    assert_eq!(sketch.count(), stream.len() as u64, "{tag}: count");
    let exact_mean = stream.iter().sum::<f64>() / stream.len() as f64;
    assert!(
        (sketch.mean() - exact_mean).abs() <= exact_mean.abs() * 1e-12 + 1e-12,
        "{tag}: mean {} vs {exact_mean}",
        sketch.mean()
    );
}

fn build(stream: &[f64]) -> QuantileSketch {
    let mut sk = QuantileSketch::p50_p95_p99();
    for &x in stream {
        sk.observe(x);
    }
    sk
}

// ---- deterministic stream generators -----------------------------------

fn uniform(seed: u64, n: usize) -> Vec<f64> {
    let mut rng = SplitMix64::new(seed);
    (0..n).map(|_| rng.next_f64()).collect()
}

/// Exponential(1) via inverse CDF — a mild heavy tail.
fn exponential(seed: u64, n: usize) -> Vec<f64> {
    let mut rng = SplitMix64::new(seed);
    (0..n).map(|_| -(1.0 - rng.next_f64()).ln()).collect()
}

/// Pareto with α = 1.5 — infinite variance, the hostile heavy tail.
fn pareto(seed: u64, n: usize) -> Vec<f64> {
    let mut rng = SplitMix64::new(seed);
    (0..n)
        .map(|_| (1.0 - rng.next_f64()).powf(-1.0 / 1.5))
        .collect()
}

/// Latency-shaped bimodal mix: a 2 ms bulk with a 30% retried cohort one
/// decade slower (modes in adjacent decades, the shape the engine
/// produces under partial faults).
fn bimodal(seed: u64, n: usize) -> Vec<f64> {
    let mut rng = SplitMix64::new(seed);
    (0..n)
        .map(|_| {
            let jitter = 1.0 + 0.2 * rng.next_f64();
            if rng.next_f64() < 0.7 {
                0.002 * jitter
            } else {
                0.020 * jitter
            }
        })
        .collect()
}

/// Constant stream with rare large spikes — the degenerate-width case
/// (equal marker heights) plus an extreme-order-statistic tail.
fn constant_with_spikes(seed: u64, n: usize) -> Vec<f64> {
    let mut rng = SplitMix64::new(seed);
    (0..n)
        .map(|_| if rng.next_f64() < 0.01 { 100.0 } else { 1.0 })
        .collect()
}

// ---- 1. ε-bound vs stats::percentiles ----------------------------------

#[test]
fn sketch_pinned_on_uniform_and_heavy_tailed_streams() {
    let seed = harness_seed();
    for (tag, stream) in [
        ("uniform", uniform(seed, STREAM_LEN)),
        ("exponential", exponential(seed ^ 1, STREAM_LEN)),
        ("pareto-1.5", pareto(seed ^ 2, STREAM_LEN)),
        ("bimodal", bimodal(seed ^ 3, STREAM_LEN)),
    ] {
        assert_sketch_pinned(tag, &build(&stream), &stream);
    }
}

#[test]
fn sketch_pinned_on_adversarial_orderings() {
    let seed = harness_seed();
    // Same population, hostile arrival orders. An ascending feed keeps
    // the pinned bound (upper markers chase the stream); a *descending*
    // feed is P²'s canonical worst case — the upper markers are seeded
    // from the early (largest) samples and then starve, so only sanity
    // and determinism are asserted there, not the ε bound.
    let mut ascending = uniform(seed, STREAM_LEN);
    ascending.sort_by(f64::total_cmp);
    let descending: Vec<f64> = ascending.iter().rev().copied().collect();
    assert_sketch_pinned("sorted-ascending", &build(&ascending), &ascending);
    let desc = build(&descending);
    let (lo, hi) = (ascending[0], ascending[ascending.len() - 1]);
    let mut prev = f64::NEG_INFINITY;
    for &p in &PS {
        let q = desc.quantile(p);
        assert!(
            (lo..=hi).contains(&q),
            "sorted-descending q{p}: {q} escaped the sample range [{lo}, {hi}]"
        );
        assert!(
            q >= prev,
            "sorted-descending: quantiles not monotone at q{p}"
        );
        prev = q;
        assert_eq!(
            q.to_bits(),
            build(&descending).quantile(p).to_bits(),
            "sorted-descending q{p}: not reproducible"
        );
    }

    let spiky = constant_with_spikes(seed ^ 4, STREAM_LEN);
    let sk = build(&spiky);
    // 99% of the mass sits exactly at 1.0; the median must sit on the
    // constant (up to parabolic-interpolation dust), not drift toward
    // the spikes.
    let p50 = sk.quantile(0.50);
    assert!(
        (p50 - 1.0).abs() <= 1e-6,
        "constant bulk median drifted: {p50}"
    );
    assert_sketch_pinned("constant+spikes", &sk, &spiky);
}

#[test]
fn nan_poisons_the_sketch() {
    let mut sk = build(&uniform(harness_seed(), 512));
    assert!(!sk.is_poisoned());
    sk.observe(f64::NAN);
    assert!(sk.is_poisoned(), "NaN input must poison, not vanish");
    assert!(sk.quantile(0.95).is_nan(), "poisoned quantiles surface NaN");
}

// ---- 2. merge-order invariance under Scheduler fan-out ------------------

const CHUNKS: usize = 16;

fn chunked(stream: &[f64]) -> Vec<&[f64]> {
    let size = stream.len().div_ceil(CHUNKS);
    stream.chunks(size).collect()
}

fn fan_out_merge(pool: &Scheduler, chunks: &[&[f64]]) -> QuantileSketch {
    let parts = pool.par_map_indexed(chunks, |c| build(c));
    let mut acc = QuantileSketch::p50_p95_p99();
    for part in &parts {
        acc.merge(part);
    }
    acc
}

#[test]
fn fan_out_merge_is_worker_count_invariant() {
    let stream = exponential(harness_seed(), STREAM_LEN);
    let chunks = chunked(&stream);
    let serial = fan_out_merge(&Scheduler::serial(), &chunks);
    for workers in [2, 4, 8] {
        let parallel = fan_out_merge(&Scheduler::new(workers), &chunks);
        assert_eq!(parallel.count(), serial.count(), "{workers} workers");
        for &p in &PS {
            assert_eq!(
                parallel.quantile(p).to_bits(),
                serial.quantile(p).to_bits(),
                "{workers} workers: q{p} drifted from the serial fold"
            );
        }
    }
    // And the fan-out result is still a valid estimate of the stream.
    assert_sketch_pinned("fan-out-merge", &serial, &stream);
}

#[test]
fn pairwise_merge_is_bit_symmetric() {
    let seed = harness_seed();
    let a = build(&pareto(seed, STREAM_LEN / 2));
    let b = build(&uniform(seed ^ 5, STREAM_LEN / 4));
    let mut ab = a.clone();
    ab.merge(&b);
    let mut ba = b.clone();
    ba.merge(&a);
    assert_eq!(ab.count(), ba.count());
    for &p in &PS {
        assert_eq!(
            ab.quantile(p).to_bits(),
            ba.quantile(p).to_bits(),
            "q{p}: a∪b differs from b∪a"
        );
    }
}

#[test]
fn chunk_permutations_stay_pinned() {
    let stream = bimodal(harness_seed(), STREAM_LEN);
    let chunks = chunked(&stream);
    // Chained merges are associative only up to the sketch's ε, so each
    // permutation is held to the exact reference, not to each other.
    let mut rotated: Vec<&[f64]> = chunks.clone();
    rotated.rotate_left(CHUNKS / 3);
    let reversed: Vec<&[f64]> = chunks.iter().rev().copied().collect();
    for (tag, order) in [
        ("in-order", &chunks),
        ("rotated", &rotated),
        ("reversed", &reversed),
    ] {
        let merged = fan_out_merge(&Scheduler::serial(), order);
        assert_eq!(merged.count(), stream.len() as u64, "{tag}: count");
        assert_sketch_pinned(tag, &merged, &stream);
    }
}

// ---- 3. HARNESS_SEED-matrix determinism ---------------------------------

#[test]
fn seed_matrix_rebuilds_are_bit_identical() {
    for seed in [harness_seed(), 1, 42, 7, 2026] {
        let stream = pareto(seed, STREAM_LEN / 2);
        let first = build(&stream);
        let second = build(&stream);
        assert_eq!(first.count(), second.count(), "seed {seed:#x}");
        for &p in &PS {
            assert_eq!(
                first.quantile(p).to_bits(),
                second.quantile(p).to_bits(),
                "seed {seed:#x}: q{p} not reproducible"
            );
        }
        // Fan-out path reproduces too — the property CI leans on.
        let chunks = chunked(&stream);
        let fanned = fan_out_merge(&Scheduler::new(4), &chunks);
        let fanned2 = fan_out_merge(&Scheduler::new(4), &chunks);
        for &p in &PS {
            assert_eq!(
                fanned.quantile(p).to_bits(),
                fanned2.quantile(p).to_bits(),
                "seed {seed:#x}: fan-out q{p} not reproducible"
            );
        }
    }
}
