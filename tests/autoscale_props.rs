//! Property-based tests of the autoscaling layer's invariants under
//! nonstationary load: request conservation across scaling events, the
//! pinned min==max autoscaler reproducing `simulate_fleet` bit-for-bit,
//! warm-up never admitting work to a cold shard, drain-on-retire never
//! dropping work, and `HARNESS_SEED` determinism of the full
//! `AutoscaleReport` (mirrors `tests/fleet_props.rs` and
//! `tests/decode_props.rs`).

use lat_bench::scenarios::harness_seed;
use lat_fpga::core::pipeline::SchedulingPolicy;
use lat_fpga::hwsim::accelerator::AcceleratorDesign;
use lat_fpga::hwsim::autoscale::{
    simulate_autoscale, AutoscaleConfig, AutoscaleReport, RetirePolicy, ScaleEventKind,
    ScalePolicy, SchedulePhase,
};
use lat_fpga::hwsim::fleet::{
    homogeneous_fleet, nonstationary_poisson_trace, poisson_trace, simulate_fleet, BatcherConfig,
    DispatchPolicy, RatePhase, RateProfile,
};
use lat_fpga::hwsim::spec::FpgaSpec;
use lat_fpga::model::config::ModelConfig;
use lat_fpga::model::graph::AttentionMode;
use lat_fpga::workloads::datasets::DatasetSpec;
use proptest::prelude::*;

fn tiny_design(s_avg: usize) -> AcceleratorDesign {
    AcceleratorDesign::new(
        &ModelConfig::tiny(),
        AttentionMode::paper_sparse(),
        FpgaSpec::alveo_u280(),
        s_avg,
    )
}

fn dispatch_from_index(i: usize) -> DispatchPolicy {
    DispatchPolicy::ALL[i % DispatchPolicy::ALL.len()]
}

fn retire_from_index(i: usize) -> RetirePolicy {
    [RetirePolicy::Drain, RetirePolicy::Evict][i % 2]
}

/// A scaling policy that will actually act under the bursty test traffic.
fn policy_from_index(i: usize, min_shards: usize, max_shards: usize) -> ScalePolicy {
    match i % 4 {
        0 => ScalePolicy::Reactive {
            scale_up_depth: 6.0,
            scale_down_depth: 1.0,
        },
        1 => ScalePolicy::UtilizationTarget {
            low: 0.2,
            high: 0.8,
        },
        2 => ScalePolicy::Scheduled(vec![
            SchedulePhase {
                start_s: 0.3,
                shards: max_shards,
            },
            SchedulePhase {
                start_s: 1.1,
                shards: min_shards,
            },
        ]),
        // Forecast-driven: the declared capacity is far below the burst
        // rate, so the EWMA forecast drives both scale directions.
        _ => ScalePolicy::Predictive {
            shard_capacity: 500.0,
            horizon_s: 0.1,
            alpha: 0.5,
            period_s: None,
        },
    }
}

/// Quiet → burst → quiet: rates that force both scale directions on tiny
/// shards (a tiny shard sustains ~78k seq/s, so queues come from the
/// batching window, not service saturation).
fn bursty_profile(burst_rate: f64) -> RateProfile {
    RateProfile::Piecewise(vec![
        RatePhase {
            duration_s: 0.5,
            rate: 40.0,
        },
        RatePhase {
            duration_s: 0.5,
            rate: burst_rate,
        },
        RatePhase {
            duration_s: 1.0,
            rate: 40.0,
        },
    ])
}

/// Every batch must run inside one of its shard's membership windows:
/// initially-active shards are allowed until their first `Retired`, later
/// shards only between `Join` and `Retired`. This is at once the
/// "warm-up never admits work to a cold shard" and the "retired means
/// retired" invariant.
fn assert_batches_within_membership(r: &AutoscaleReport, initial_shards: usize) {
    for b in &r.fleet.batch_log {
        let mut allowed = b.shard < initial_shards;
        for e in r.scale_events.iter().filter(|e| e.shard == b.shard) {
            if e.time_s > b.start_s + 1e-12 {
                break;
            }
            match e.kind {
                ScaleEventKind::Join => allowed = true,
                ScaleEventKind::Retired | ScaleEventKind::Failed => allowed = false,
                ScaleEventKind::Launch
                | ScaleEventKind::RetireStart
                | ScaleEventKind::Recovered => {}
            }
        }
        assert!(
            allowed,
            "batch on shard {} at t={} outside its membership windows",
            b.shard, b.start_s
        );
    }
}

/// Per shard, the event log must be a well-formed lifecycle sequence:
/// Launch → Join → RetireStart → (Retired → Launch → … | Join → …); a
/// bare Join from the retiring state is a recall (the shard rejoined
/// dispatch without draining out).
fn assert_event_log_well_formed(r: &AutoscaleReport, initial_shards: usize, max_shards: usize) {
    for s in 0..max_shards {
        // Initially-active shards start life already joined.
        let mut state = if s < initial_shards { 2u8 } else { 0 };
        for e in r.scale_events.iter().filter(|e| e.shard == s) {
            state = match (state, e.kind) {
                (0, ScaleEventKind::Launch) => 1,
                (1, ScaleEventKind::Join) => 2,
                (2, ScaleEventKind::RetireStart) => 3,
                (3, ScaleEventKind::Retired) => 0,
                (3, ScaleEventKind::Join) => 2, // recall of a draining shard
                _ => panic!("shard {s}: {:?} out of order (state {state})", e.kind),
            };
        }
    }
    assert!(
        r.scale_events
            .windows(2)
            .all(|w| w[0].time_s <= w[1].time_s),
        "scale events out of time order"
    );
}

/// Replaying the event log, the count of shards committed *going forward*
/// (warming or active — not draining) must never fall below `min_shards`:
/// in-progress drains must not stack further retires past the floor.
fn assert_min_floor(
    r: &AutoscaleReport,
    initial_shards: usize,
    min_shards: usize,
    max_shards: usize,
) {
    let mut state: Vec<u8> = (0..max_shards)
        .map(|s| if s < initial_shards { 2 } else { 0 })
        .collect();
    for e in &r.scale_events {
        state[e.shard] = match e.kind {
            ScaleEventKind::Launch => 1,
            ScaleEventKind::Join => 2,
            ScaleEventKind::RetireStart => 3,
            ScaleEventKind::Retired | ScaleEventKind::Failed => 0,
            ScaleEventKind::Recovered => state[e.shard],
        };
        let staying = state.iter().filter(|&&x| x == 1 || x == 2).count();
        assert!(
            staying >= min_shards,
            "committed fleet fell to {staying} < min {min_shards} after {:?} of shard {} at t={}",
            e.kind,
            e.shard,
            e.time_s
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Scaling events re-route and delay work but never drop or duplicate
    /// it: every request completes exactly once, whatever the policy,
    /// retire semantics, dispatch, warm-up, or load shape.
    #[test]
    fn conservation_under_scaling_events(
        max_shards in 3usize..5,
        min_shards in 1usize..3,
        policy_idx in 0usize..4,
        retire_idx in 0usize..2,
        dispatch_idx in 0usize..3,
        burst_rate in 1000.0f64..8000.0,
        warmup_s in 0.0f64..0.2,
        n in 40usize..140,
        seed in 0u64..1_000_000,
    ) {
        let fleet = homogeneous_fleet(&tiny_design(64), max_shards);
        let trace = nonstationary_poisson_trace(
            &DatasetSpec::mrpc(),
            &bursty_profile(burst_rate),
            n,
            seed,
        );
        let cfg = AutoscaleConfig {
            min_shards,
            initial_shards: min_shards,
            policy: policy_from_index(policy_idx, min_shards, max_shards),
            retire: retire_from_index(retire_idx),
            eval_interval_s: 0.05,
            warmup_s,
            cooldown_s: 0.0,
            ..AutoscaleConfig::default()
        };
        let r = simulate_autoscale(
            &fleet,
            &trace,
            SchedulingPolicy::LengthAware,
            dispatch_from_index(dispatch_idx),
            &BatcherConfig::default(),
            &cfg,
        );
        prop_assert_eq!(r.fleet.completed, n);
        prop_assert_eq!(r.fleet.shards.iter().map(|s| s.completed).sum::<usize>(), n);
        prop_assert_eq!(r.fleet.batch_log.iter().map(|b| b.size).sum::<usize>(), n);
        prop_assert!(r.peak_active_shards <= max_shards);
        prop_assert!(r.mean_active_shards >= 1.0 - 1e-9);
        prop_assert!(r.mean_active_shards <= max_shards as f64 + 1e-9);
        prop_assert!(r.shard_seconds > 0.0);
        // Cost can never exceed the whole fleet running the whole time
        // (shard-seconds may close slightly past the makespan when a
        // retire lands on a post-completion tick, hence the epsilon).
        prop_assert!(
            r.shard_seconds
                <= max_shards as f64 * r.fleet.makespan_s + max_shards as f64 * 0.1 + 1e-9
        );
        prop_assert!((0.0..=1.0 + 1e-12).contains(&r.slo_attainment));
        assert_event_log_well_formed(&r, min_shards, max_shards);
        assert_batches_within_membership(&r, min_shards);
        assert_min_floor(&r, min_shards, min_shards, max_shards);
    }

    /// A pinned autoscaler at min == max == fleet size is bit-for-bit
    /// `simulate_fleet`: same report, no scale events, cost = shards ×
    /// makespan. A *reactive* policy clamped by min == max must coincide
    /// too — the clamp leaves it nothing to do.
    #[test]
    fn min_eq_max_reproduces_simulate_fleet_bit_for_bit(
        shards in 1usize..4,
        dispatch_idx in 0usize..3,
        rate in 100.0f64..4000.0,
        n in 16usize..64,
        seed in 0u64..1_000_000,
    ) {
        let fleet = homogeneous_fleet(&tiny_design(64), shards);
        let trace = poisson_trace(&DatasetSpec::rte(), rate, n, seed);
        let dispatch = dispatch_from_index(dispatch_idx);
        let batcher = BatcherConfig::default();
        let fixed = simulate_fleet(
            &fleet,
            &trace,
            SchedulingPolicy::LengthAware,
            dispatch,
            &batcher,
        );
        for policy in [
            ScalePolicy::Pinned,
            ScalePolicy::Reactive { scale_up_depth: 4.0, scale_down_depth: 1.0 },
        ] {
            let auto = simulate_autoscale(
                &fleet,
                &trace,
                SchedulingPolicy::LengthAware,
                dispatch,
                &batcher,
                &AutoscaleConfig {
                    min_shards: shards,
                    initial_shards: shards,
                    policy,
                    eval_interval_s: 0.05,
                    ..AutoscaleConfig::default()
                },
            );
            prop_assert_eq!(&auto.fleet, &fixed);
            prop_assert!(auto.scale_events.is_empty());
            prop_assert_eq!(auto.peak_active_shards, shards);
            prop_assert!(
                (auto.shard_seconds - shards as f64 * fixed.makespan_s).abs() < 1e-9
            );
        }
    }

    /// The warm-up delay is real: a launched shard runs no batch before
    /// its join, and every join trails its launch by exactly the warm-up.
    #[test]
    fn warmup_never_admits_work_to_a_cold_shard(
        max_shards in 2usize..5,
        retire_idx in 0usize..2,
        warmup_s in 0.05f64..0.3,
        burst_rate in 2000.0f64..8000.0,
        n in 60usize..140,
        seed in 0u64..1_000_000,
    ) {
        let fleet = homogeneous_fleet(&tiny_design(64), max_shards);
        let trace = nonstationary_poisson_trace(
            &DatasetSpec::mrpc(),
            &bursty_profile(burst_rate),
            n,
            seed,
        );
        let r = simulate_autoscale(
            &fleet,
            &trace,
            SchedulingPolicy::LengthAware,
            DispatchPolicy::JoinShortestQueue,
            &BatcherConfig::default(),
            &AutoscaleConfig {
                min_shards: 1,
                initial_shards: 1,
                policy: ScalePolicy::Reactive { scale_up_depth: 4.0, scale_down_depth: 1.0 },
                retire: retire_from_index(retire_idx),
                eval_interval_s: 0.05,
                warmup_s,
                cooldown_s: 0.0,
                ..AutoscaleConfig::default()
            },
        );
        assert_batches_within_membership(&r, 1);
        let events = &r.scale_events;
        for (i, e) in events.iter().enumerate() {
            if e.kind != ScaleEventKind::Join {
                continue;
            }
            let launch = events[..i]
                .iter()
                .rev()
                .find(|l| l.shard == e.shard && l.kind == ScaleEventKind::Launch)
                .expect("join without a preceding launch");
            prop_assert!(
                (e.time_s - launch.time_s - warmup_s).abs() < 1e-9,
                "join at {} after launch at {} != warm-up {}",
                e.time_s,
                launch.time_s,
                warmup_s
            );
        }
    }

    /// Drain-on-retire never drops work: whatever was queued on a
    /// retiring shard completes (on that shard), and the shard only
    /// reports `Retired` once no further batch runs on it.
    #[test]
    fn drain_on_retire_never_drops_residents(
        max_shards in 2usize..5,
        policy_idx in 0usize..4,
        burst_rate in 2000.0f64..8000.0,
        n in 60usize..140,
        seed in 0u64..1_000_000,
    ) {
        let fleet = homogeneous_fleet(&tiny_design(64), max_shards);
        let trace = nonstationary_poisson_trace(
            &DatasetSpec::mrpc(),
            &bursty_profile(burst_rate),
            n,
            seed,
        );
        let r = simulate_autoscale(
            &fleet,
            &trace,
            SchedulingPolicy::LengthAware,
            DispatchPolicy::JoinShortestQueue,
            &BatcherConfig::default(),
            &AutoscaleConfig {
                min_shards: 1,
                initial_shards: max_shards, // start big: guarantees retires
                policy: policy_from_index(policy_idx, 1, max_shards),
                retire: RetirePolicy::Drain,
                eval_interval_s: 0.05,
                warmup_s: 0.1,
                cooldown_s: 0.0,
                ..AutoscaleConfig::default()
            },
        );
        // Conservation is the "nothing dropped" half…
        prop_assert_eq!(r.fleet.completed, n);
        prop_assert_eq!(r.fleet.batch_log.iter().map(|b| b.size).sum::<usize>(), n);
        // …and the membership windows are the "drained before retired"
        // half: no batch may start on a shard after its Retired event.
        assert_event_log_well_formed(&r, max_shards, max_shards);
        assert_batches_within_membership(&r, max_shards);
    }

    /// Bit-identical `AutoscaleReport`s when re-run from
    /// `HARNESS_SEED`-derived traces: no hidden nondeterminism in the
    /// controller or the engine.
    #[test]
    fn deterministic_under_harness_seed(
        max_shards in 2usize..5,
        policy_idx in 0usize..4,
        retire_idx in 0usize..2,
        dispatch_idx in 0usize..3,
        n in 40usize..100,
    ) {
        let fleet = homogeneous_fleet(&tiny_design(64), max_shards);
        let trace = nonstationary_poisson_trace(
            &DatasetSpec::rte(),
            &bursty_profile(4000.0),
            n,
            harness_seed(),
        );
        let cfg = AutoscaleConfig {
            min_shards: 1,
            initial_shards: 2.min(max_shards),
            policy: policy_from_index(policy_idx, 1, max_shards),
            retire: retire_from_index(retire_idx),
            eval_interval_s: 0.05,
            warmup_s: 0.1,
            cooldown_s: 0.05,
            phase_bounds_s: vec![0.5, 1.0],
            ..AutoscaleConfig::default()
        };
        let go = || simulate_autoscale(
            &fleet,
            &trace,
            SchedulingPolicy::LengthAware,
            dispatch_from_index(dispatch_idx),
            &BatcherConfig::default(),
            &cfg,
        );
        prop_assert_eq!(go(), go());
    }
}
