//! End-to-end integration tests asserting the paper's qualitative results
//! hold in this reproduction (the EXPERIMENTS.md claims, as tests).

use lat_fpga::core::pipeline::SchedulingPolicy;
use lat_fpga::core::sparse::{SparseAttention, SparseAttentionConfig};
use lat_fpga::hwsim::accelerator::AcceleratorDesign;
use lat_fpga::hwsim::spec::FpgaSpec;
use lat_fpga::model::attention::DenseAttention;
use lat_fpga::model::config::ModelConfig;
use lat_fpga::model::graph::{AttentionMode, OperatorGraph};
use lat_fpga::platforms::{Platform, PlatformKind};
use lat_fpga::tensor::rng::SplitMix64;
use lat_fpga::workloads::accuracy::evaluate_on_dataset;
use lat_fpga::workloads::datasets::DatasetSpec;
use lat_fpga::workloads::task::{TaskConfig, TaskGenerator};

fn squad_batch(seed: u64) -> Vec<usize> {
    let mut rng = SplitMix64::new(seed);
    DatasetSpec::squad_v1().sample_batch(&mut rng, 16)
}

fn paper_design(cfg: &ModelConfig, avg: usize) -> AcceleratorDesign {
    AcceleratorDesign::new(
        cfg,
        AttentionMode::paper_sparse(),
        FpgaSpec::alveo_u280(),
        avg,
    )
}

/// Fig. 7(a) ordering: CPU slowest, then TX2, then FPGA baseline / GPU,
/// FPGA length-aware fastest.
#[test]
fn end_to_end_platform_ordering() {
    let cfg = ModelConfig::bert_base();
    let batch = squad_batch(11);
    let cpu = Platform::preset(PlatformKind::XeonGold5218).batch_seconds(&cfg, &batch);
    let tx2 = Platform::preset(PlatformKind::JetsonTx2).batch_seconds(&cfg, &batch);
    let gpu = Platform::preset(PlatformKind::RtxQuadro6000).batch_seconds(&cfg, &batch);
    let ours = paper_design(&cfg, 177)
        .run_batch(&batch, SchedulingPolicy::LengthAware)
        .seconds;
    let base = AcceleratorDesign::new(
        &cfg,
        AttentionMode::Dense,
        FpgaSpec::alveo_u280(),
        DatasetSpec::squad_v1().max_len,
    )
    .run_batch(&batch, SchedulingPolicy::PadToMax)
    .seconds;

    assert!(cpu > tx2, "CPU {cpu} !> TX2 {tx2}");
    assert!(tx2 > gpu, "TX2 {tx2} !> GPU {gpu}");
    assert!(gpu > ours, "GPU {gpu} !> ours {ours}");
    assert!(base > ours, "FPGA baseline {base} !> ours {ours}");
    // Rough factors: ours beats CPU by tens of times, GPU by small factor.
    let cpu_speedup = cpu / ours;
    assert!(
        (20.0..400.0).contains(&cpu_speedup),
        "CPU speedup {cpu_speedup:.1} out of band"
    );
    let gpu_speedup = gpu / ours;
    assert!(
        (1.2..10.0).contains(&gpu_speedup),
        "GPU speedup {gpu_speedup:.1} out of band"
    );
}

/// The co-design beats the FPGA dense baseline by roughly the paper's ~3×.
#[test]
fn co_design_factor_over_fpga_baseline() {
    let cfg = ModelConfig::bert_base();
    let batch = squad_batch(12);
    let ours = paper_design(&cfg, 177)
        .run_batch(&batch, SchedulingPolicy::LengthAware)
        .seconds;
    let base = AcceleratorDesign::new(
        &cfg,
        AttentionMode::Dense,
        FpgaSpec::alveo_u280(),
        DatasetSpec::squad_v1().max_len,
    )
    .run_batch(&batch, SchedulingPolicy::PadToMax)
    .seconds;
    let factor = base / ours;
    assert!(
        (1.8..8.0).contains(&factor),
        "co-design factor {factor:.2} out of band (paper: 3.1x)"
    );
}

/// Fig. 6 headline: Top-30 sparse attention loses < 2 accuracy points
/// relative to dense on the short/medium datasets and < 3 on SQuAD.
#[test]
fn top30_accuracy_drop_small() {
    let generator = TaskGenerator::new(TaskConfig::default(), 31);
    let sparse = SparseAttention::new(SparseAttentionConfig::paper_default());
    for (spec, budget) in [
        (DatasetSpec::mrpc(), 0.02),
        (DatasetSpec::rte(), 0.02),
        (DatasetSpec::squad_v1(), 0.03),
    ] {
        let dense = evaluate_on_dataset(&DenseAttention, &generator, &spec, 150, 7)
            .expect("dense eval")
            .accuracy;
        let sp = evaluate_on_dataset(&sparse, &generator, &spec, 150, 7)
            .expect("sparse eval")
            .accuracy;
        assert!(
            dense - sp <= budget + 1e-9,
            "{}: drop {:.3} exceeds budget {budget}",
            spec.name,
            dense - sp
        );
    }
}

/// Fig. 6 knee: Top-10 degrades clearly more than Top-30.
#[test]
fn top10_has_visible_knee() {
    let generator = TaskGenerator::new(TaskConfig::default(), 32);
    let spec = DatasetSpec::squad_v1();
    let k30 = SparseAttention::new(SparseAttentionConfig::paper_default().with_k(30));
    let k10 = SparseAttention::new(SparseAttentionConfig::paper_default().with_k(10));
    let a30 = evaluate_on_dataset(&k30, &generator, &spec, 150, 8)
        .expect("k30 eval")
        .accuracy;
    let a10 = evaluate_on_dataset(&k10, &generator, &spec, 150, 8)
        .expect("k10 eval")
        .accuracy;
    assert!(
        a30 - a10 > 0.10,
        "knee too shallow: k30 {a30:.3} vs k10 {a10:.3}"
    );
}

/// §5.1: >80 % attention-complexity reduction at Top-30 on SQuAD-average
/// lengths.
#[test]
fn complexity_reduction_over_80_percent() {
    let graph = OperatorGraph::encoder(&ModelConfig::bert_base());
    let dense = graph.attention_flops(177, AttentionMode::Dense);
    let sparse = graph.attention_flops(177, AttentionMode::paper_sparse());
    // FLOP-model view (includes the cheap pre-selection pass):
    assert!(1.0 - sparse as f64 / dense as f64 > 0.6);

    // Measured exact-path view on real data:
    let mut rng = SplitMix64::new(33);
    let q = rng.gaussian_matrix(177, 64, 1.0);
    let k = rng.gaussian_matrix(177, 64, 1.0);
    let v = rng.gaussian_matrix(177, 64, 1.0);
    let out = SparseAttention::new(SparseAttentionConfig::paper_default())
        .attend_with_details(&q, &k, &v)
        .expect("attend");
    assert!(out.complexity_reduction(177, 177, 64) > 0.8);
}

/// Table 2 band: equivalent throughput in the TOPS range and energy
/// efficiency far above the GPU's 8 GOP/J.
#[test]
fn energy_efficiency_beats_gpu() {
    let cfg = ModelConfig::bert_base();
    let batch = squad_batch(13);
    let r = paper_design(&cfg, 177).run_batch(&batch, SchedulingPolicy::LengthAware);
    let teq = r.equivalent_gops();
    assert!(
        (1000.0..10_000.0).contains(&teq),
        "equivalent GOPS {teq:.0} out of band (paper: 3600)"
    );
    let eff = r.equivalent_gop_per_j();
    assert!(eff > 4.0 * 8.0, "GOP/J {eff:.1} not >4x GPU's 8");
    assert!(
        eff < 382.0,
        "GOP/J {eff:.1} should not beat the SpAtten ASIC"
    );
}

/// Stage utilization of the length-aware pipeline approaches 100 %
/// (the "no pipeline bubble" claim) on large batches.
#[test]
fn utilization_near_full() {
    let cfg = ModelConfig::bert_base();
    let mut rng = SplitMix64::new(14);
    let batch = DatasetSpec::rte().sample_batch(&mut rng, 32);
    let r = paper_design(&cfg, 68).run_batch(&batch, SchedulingPolicy::LengthAware);
    assert!(
        r.mean_utilization() > 0.85,
        "mean utilization {:.3}",
        r.mean_utilization()
    );
}

/// The full encoder forward pass with sparse attention stays close to the
/// dense forward (output fidelity through 2 layers).
#[test]
fn encoder_fidelity_with_sparse_attention() {
    use lat_fpga::model::encoder::Encoder;
    use lat_fpga::tensor::ops;
    let cfg = ModelConfig::tiny();
    let mut rng = SplitMix64::new(15);
    let enc = Encoder::random(&cfg, &mut rng);
    let x = rng.gaussian_matrix(48, cfg.hidden_dim, 1.0);
    let dense = enc.forward(&x, &DenseAttention).expect("dense forward");
    let sparse_op = SparseAttention::new(SparseAttentionConfig::paper_default().with_k(24));
    let sparse = enc.forward(&x, &sparse_op).expect("sparse forward");
    let mut cos = 0.0;
    for i in 0..dense.rows() {
        cos += ops::cosine_similarity(dense.row(i), sparse.row(i));
    }
    cos /= dense.rows() as f32;
    assert!(cos > 0.85, "encoder cosine fidelity {cos:.3}");
}

/// Scheduling ablation on real accelerator timing: length-aware beats
/// micro-batching beats nothing; padding overhead matches Table 1's
/// max/avg pattern across datasets.
#[test]
fn scheduling_ablation_and_padding_pattern() {
    let cfg = ModelConfig::bert_base();
    let design = paper_design(&cfg, 177);
    let batch = squad_batch(16);
    let adaptive = design.run_batch(&batch, SchedulingPolicy::LengthAware);
    let micro = design.run_batch(&batch, SchedulingPolicy::MicroBatch { size: 4 });
    let padded = design.run_batch(&batch, SchedulingPolicy::PadToMax);
    assert!(adaptive.seconds < micro.seconds);
    assert!(adaptive.seconds < padded.seconds);

    // Padding overhead ordering across datasets follows Table 1 max/avg.
    let mut overheads = Vec::new();
    for spec in DatasetSpec::paper_datasets() {
        let mut rng = SplitMix64::new(17);
        let b = spec.sample_batch(&mut rng, 64);
        let max = *b.iter().max().expect("non-empty") as f64;
        let mean = b.iter().sum::<usize>() as f64 / b.len() as f64;
        overheads.push(max / mean);
    }
    assert!(overheads[0] > overheads[1], "SQuAD > RTE padding overhead");
    assert!(overheads[1] > overheads[2], "RTE > MRPC padding overhead");
}
