//! Property-based tests of the event-driven fleet engine's invariants:
//! request conservation, determinism under `HARNESS_SEED`, and exact
//! agreement between the refactored serving simulator and the fleet
//! engine's 1-shard join-shortest-queue case.

use lat_bench::scenarios::harness_seed;
use lat_fpga::core::pipeline::SchedulingPolicy;
use lat_fpga::hwsim::accelerator::AcceleratorDesign;
use lat_fpga::hwsim::fleet::{
    homogeneous_fleet, poisson_trace, simulate_fleet, BatcherConfig, DispatchPolicy,
};
use lat_fpga::hwsim::serving::{simulate_serving, ServingConfig};
use lat_fpga::hwsim::spec::FpgaSpec;
use lat_fpga::model::config::ModelConfig;
use lat_fpga::model::graph::AttentionMode;
use lat_fpga::workloads::datasets::DatasetSpec;
use proptest::prelude::*;

fn tiny_design(s_avg: usize) -> AcceleratorDesign {
    AcceleratorDesign::new(
        &ModelConfig::tiny(),
        AttentionMode::paper_sparse(),
        FpgaSpec::alveo_u280(),
        s_avg,
    )
}

fn dispatch_from_index(i: usize) -> DispatchPolicy {
    DispatchPolicy::ALL[i % DispatchPolicy::ALL.len()]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every request completes exactly once, whatever the shard count,
    /// dispatch policy, batching parameters, or load.
    #[test]
    fn conservation_across_fleet_configs(
        shards in 1usize..5,
        dispatch_idx in 0usize..3,
        rate in 20.0f64..3000.0,
        max_batch in 1usize..24,
        window_ms in 0.0f64..80.0,
        n in 10usize..50,
        seed in 0u64..1_000_000,
    ) {
        let fleet = homogeneous_fleet(&tiny_design(64), shards);
        let trace = poisson_trace(&DatasetSpec::rte(), rate, n, seed);
        let cfg = BatcherConfig {
            batch_window_s: window_ms / 1e3,
            max_batch,
        };
        let r = simulate_fleet(
            &fleet,
            &trace,
            SchedulingPolicy::LengthAware,
            dispatch_from_index(dispatch_idx),
            &cfg,
        );
        prop_assert_eq!(r.completed, n);
        prop_assert_eq!(r.shards.iter().map(|s| s.completed).sum::<usize>(), n);
        prop_assert_eq!(r.batch_log.iter().map(|b| b.size).sum::<usize>(), n);
        // No shard exceeds the cap, utilizations and percentiles sane.
        prop_assert!(r.batch_log.iter().all(|b| b.size <= max_batch && b.size > 0));
        prop_assert!(r.shards.iter().all(|s| (0.0..=1.0).contains(&s.utilization)));
        prop_assert!(r.mean_latency_s > 0.0);
        prop_assert!(r.p50_latency_s <= r.p95_latency_s && r.p95_latency_s <= r.p99_latency_s);
    }

    /// Bit-identical reports when re-run from `HARNESS_SEED`-derived
    /// traces: the engine has no hidden nondeterminism.
    #[test]
    fn deterministic_under_harness_seed(
        shards in 1usize..4,
        dispatch_idx in 0usize..3,
        rate in 50.0f64..1500.0,
        n in 10usize..40,
    ) {
        let fleet = homogeneous_fleet(&tiny_design(64), shards);
        let trace = poisson_trace(&DatasetSpec::mrpc(), rate, n, harness_seed());
        let run = || simulate_fleet(
            &fleet,
            &trace,
            SchedulingPolicy::LengthAware,
            dispatch_from_index(dispatch_idx),
            &BatcherConfig::default(),
        );
        prop_assert_eq!(run(), run());
    }

    /// The refactored `simulate_serving` IS the 1-shard JSQ fleet: every
    /// report field agrees bit-for-bit (same trace, same batcher, same
    /// percentile convention).
    #[test]
    fn serving_equals_one_shard_jsq_fleet(
        rate in 20.0f64..800.0,
        max_batch in 1usize..20,
        window_ms in 1.0f64..80.0,
        n in 8usize..40,
        seed in 0u64..1_000_000,
    ) {
        let design = tiny_design(64);
        let scfg = ServingConfig {
            arrival_rate: rate,
            batch_window_s: window_ms / 1e3,
            max_batch,
            num_requests: n,
        };
        let serving = simulate_serving(
            &design,
            &DatasetSpec::rte(),
            SchedulingPolicy::LengthAware,
            &scfg,
            seed,
        );
        let trace = poisson_trace(&DatasetSpec::rte(), rate, n, seed);
        let fleet = simulate_fleet(
            std::slice::from_ref(&design),
            &trace,
            SchedulingPolicy::LengthAware,
            DispatchPolicy::JoinShortestQueue,
            &BatcherConfig {
                batch_window_s: window_ms / 1e3,
                max_batch,
            },
        );
        prop_assert_eq!(serving.completed, fleet.completed);
        prop_assert_eq!(serving.mean_latency_s, fleet.mean_latency_s);
        prop_assert_eq!(serving.p50_latency_s, fleet.p50_latency_s);
        prop_assert_eq!(serving.p95_latency_s, fleet.p95_latency_s);
        prop_assert_eq!(serving.p99_latency_s, fleet.p99_latency_s);
        prop_assert_eq!(serving.throughput_seq_s, fleet.throughput_seq_s);
        prop_assert_eq!(serving.mean_batch_size, fleet.mean_batch_size);
    }

    /// Arrivals are never lost to routing: per-shard completions partition
    /// the trace under length-binned dispatch on a heterogeneous fleet.
    #[test]
    fn length_binned_partitions_requests(
        rate in 50.0f64..2000.0,
        n in 10usize..40,
        seed in 0u64..1_000_000,
    ) {
        let fleet = vec![tiny_design(64), tiny_design(256)];
        let trace = poisson_trace(&DatasetSpec::squad_v1(), rate, n, seed);
        let r = simulate_fleet(
            &fleet,
            &trace,
            SchedulingPolicy::LengthAware,
            DispatchPolicy::LengthBinned,
            &BatcherConfig::default(),
        );
        prop_assert_eq!(r.shards[0].completed + r.shards[1].completed, n);
        // Short requests (≤64) are exactly the short shard's share.
        let short = trace.iter().filter(|q| q.len <= 64).count();
        prop_assert_eq!(r.shards[0].completed, short);
    }
}
