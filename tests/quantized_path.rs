//! Integration test of the §5.1 premise: 8-bit fixed-point inference with
//! the sparse attention operator loses no task accuracy relative to the
//! f32 reference path.

use lat_fpga::core::sparse::{SparseAttention, SparseAttentionConfig};
use lat_fpga::model::attention::DenseAttention;
use lat_fpga::model::config::ModelConfig;
use lat_fpga::model::encoder::EncoderLayer;
use lat_fpga::model::quantized::QuantizedLayer;
use lat_fpga::model::ModelError;
use lat_fpga::tensor::ops;
use lat_fpga::tensor::rng::SplitMix64;
use lat_fpga::tensor::Matrix;

fn mean_row_cosine(a: &Matrix, b: &Matrix) -> f32 {
    let mut cos = 0.0;
    for i in 0..a.rows() {
        cos += ops::cosine_similarity(a.row(i), b.row(i));
    }
    cos / a.rows() as f32
}

/// 8-bit layer forward ≈ f32 layer forward, with dense attention.
#[test]
fn quantized_layer_matches_f32_dense() -> Result<(), ModelError> {
    let cfg = ModelConfig::tiny();
    let mut rng = SplitMix64::new(201);
    let layer = EncoderLayer::random(&cfg, &mut rng);
    let qlayer = QuantizedLayer::from_layer(&layer);
    let x = rng.gaussian_matrix(32, cfg.hidden_dim, 1.0);
    let f = layer.forward(&x, &DenseAttention)?;
    let q = qlayer.forward(&x, &DenseAttention)?;
    let cos = mean_row_cosine(&f, &q);
    assert!(cos > 0.99, "8-bit vs f32 cosine {cos}");
    Ok(())
}

/// The full accelerator arithmetic stack — 8-bit GEMMs *and* sparse
/// Top-30 attention — still tracks the f32 dense reference.
#[test]
fn quantized_sparse_stack_tracks_reference() -> Result<(), ModelError> {
    let cfg = ModelConfig::tiny();
    let mut rng = SplitMix64::new(202);
    let layer = EncoderLayer::random(&cfg, &mut rng);
    let qlayer = QuantizedLayer::from_layer(&layer);
    let x = rng.gaussian_matrix(48, cfg.hidden_dim, 1.0);

    let reference = layer.forward(&x, &DenseAttention)?;
    let sparse_op = SparseAttention::new(SparseAttentionConfig::paper_default());
    let accelerated = qlayer.forward(&x, &sparse_op)?;
    let cos = mean_row_cosine(&reference, &accelerated);
    assert!(cos > 0.85, "accelerator stack cosine {cos}");
    Ok(())
}

/// Quantized QKV projections feed the pre-selection with scores whose
/// top-k matches the f32 projections' top-k closely (the accelerator
/// computes Stage 1 at 8 bits before quantizing further to 1 bit).
#[test]
fn quantized_projections_preserve_candidates() -> Result<(), ModelError> {
    use lat_fpga::core::preselect::{preselect, PreselectConfig};
    use lat_fpga::core::topk::recall;

    let cfg = ModelConfig::tiny();
    let mut rng = SplitMix64::new(203);
    let layer = EncoderLayer::random(&cfg, &mut rng);
    let qlayer = QuantizedLayer::from_layer(&layer);
    let x = rng.gaussian_matrix(64, cfg.hidden_dim, 1.0);

    let (qf, kf, _) = layer.project_qkv(&x)?;
    let (qq, kq, _) = qlayer.project_qkv(&x)?;
    let sel_f = preselect(
        &qf,
        &kf,
        PreselectConfig {
            bits: lat_fpga::tensor::quant::BitWidth::Four,
            k: 16,
        },
    )?;
    let sel_q = preselect(
        &qq,
        &kq,
        PreselectConfig {
            bits: lat_fpga::tensor::quant::BitWidth::Four,
            k: 16,
        },
    )?;
    let mut mean_recall = 0.0;
    for (a, b) in sel_f.candidates.iter().zip(&sel_q.candidates) {
        mean_recall += recall(b, a);
    }
    mean_recall /= sel_f.candidates.len() as f64;
    assert!(
        mean_recall > 0.8,
        "candidate recall across datapaths {mean_recall}"
    );
    Ok(())
}

/// 8-bit weights occupy exactly 1 byte per parameter — the storage model
/// the HBM traffic estimates use.
#[test]
fn quantized_storage_matches_memory_model() {
    let cfg = ModelConfig::tiny();
    let mut rng = SplitMix64::new(204);
    let layer = EncoderLayer::random(&cfg, &mut rng);
    let qlayer = QuantizedLayer::from_layer(&layer);
    let d = cfg.hidden_dim;
    let f = cfg.ffn_dim;
    assert_eq!(qlayer.weight_bytes(), 4 * d * d + 2 * d * f);
}
