//! Property-based pins of the disaggregated prefill/decode serving
//! layer: the two containment reductions (an infinite transfer cost with
//! the cache disabled reduces to colocated `simulate_decode` bit-for-bit;
//! a zero-capacity cache is bit-identical to running with no prefix
//! assignment at all), the hit → evict → miss repricing of the LRU prefix
//! table, and `HARNESS_SEED` determinism of the full `DisaggReport` and
//! `DisaggAutoscaleReport` (mirrors `tests/decode_autoscale_props.rs` on
//! the disaggregated engine).

use lat_bench::scenarios::harness_seed;
use lat_fpga::core::pipeline::SchedulingPolicy;
use lat_fpga::hwsim::accelerator::AcceleratorDesign;
use lat_fpga::hwsim::autoscale::ScalePolicy;
use lat_fpga::hwsim::decode::{
    decode_trace, simulate_decode, DecodeConfig, DecodeRequest, DecodeScheduler, KvTransfer,
    Priority,
};
use lat_fpga::hwsim::disagg::{
    simulate_disagg_autoscale, simulate_disaggregated, DisaggAutoscaleConfig, DisaggConfig,
    DisaggReport, PoolPolicy,
};
use lat_fpga::hwsim::fleet::{homogeneous_fleet, DispatchPolicy};
use lat_fpga::hwsim::spec::FpgaSpec;
use lat_fpga::model::config::ModelConfig;
use lat_fpga::model::graph::AttentionMode;
use lat_fpga::workloads::datasets::DatasetSpec;
use lat_fpga::workloads::prefix::{PrefixGroup, PrefixProfile};
use proptest::prelude::*;

fn tiny_design(s_avg: usize) -> AcceleratorDesign {
    AcceleratorDesign::new(
        &ModelConfig::tiny(),
        AttentionMode::paper_sparse(),
        FpgaSpec::alveo_u280(),
        s_avg,
    )
}

/// A finite-priced wire cheap enough that handoffs never dominate.
fn cheap_wire() -> KvTransfer {
    KvTransfer::Copy {
        base_s: 1e-5,
        per_token_s: 1e-8,
    }
}

/// "Never hand off": the legal non-finite copy price.
fn infinite_wire() -> KvTransfer {
    KvTransfer::Copy {
        base_s: f64::INFINITY,
        per_token_s: 0.0,
    }
}

fn rte_trace(rate: f64, n: usize, seed: u64) -> Vec<DecodeRequest> {
    let spec = DatasetSpec::rte();
    decode_trace(&spec, &spec.decode_output(), 0.0, rate, n, seed)
}

fn profile() -> PrefixProfile {
    PrefixProfile {
        num_groups: 3,
        prefix_len: 32,
        grouped_fraction: 0.8,
    }
}

fn run_disagg(
    prefill: usize,
    decode: usize,
    trace: &[DecodeRequest],
    prefixes: &[Option<PrefixGroup>],
    dcfg: &DisaggConfig,
) -> DisaggReport {
    simulate_disaggregated(
        &homogeneous_fleet(&tiny_design(64), prefill),
        &homogeneous_fleet(&tiny_design(64), decode),
        trace,
        prefixes,
        SchedulingPolicy::LengthAware,
        DispatchPolicy::JoinShortestQueue,
        DecodeScheduler::Continuous,
        &DecodeConfig::default(),
        dcfg,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Containment pin #1: with an infinite transfer price and the
    /// prefix cache disabled, the decode pool is dead weight and the
    /// prefill pool IS a colocated `simulate_decode` fleet — per-request
    /// outcomes, per-shard reports and the headline metrics must match
    /// bit-for-bit (JSQ dispatch, whose shard choice is index-stable
    /// under the trailing always-empty shards).
    #[test]
    fn infinite_transfer_and_zero_cache_reduce_to_colocated(
        prefill_shards in 1usize..4,
        decode_shards in 1usize..3,
        rate in 500.0f64..3000.0,
        n in 40usize..120,
        seed in 0u64..1_000_000,
    ) {
        let trace = rte_trace(rate, n, seed);
        // A live prefix assignment proves the cache is inert at capacity
        // 0, not merely unexercised.
        let prefixes = profile().assign(n, seed);
        let d = run_disagg(
            prefill_shards,
            decode_shards,
            &trace,
            &prefixes,
            &DisaggConfig { transfer: infinite_wire(), prefix_cache_capacity: 0 },
        );
        let plain = simulate_decode(
            &homogeneous_fleet(&tiny_design(64), prefill_shards),
            &trace,
            SchedulingPolicy::LengthAware,
            DispatchPolicy::JoinShortestQueue,
            DecodeScheduler::Continuous,
            &DecodeConfig::default(),
        );
        prop_assert_eq!(d.transfers, 0);
        prop_assert_eq!(d.decode_pool.iterations, 0);
        prop_assert_eq!(d.decode_pool.completed, 0);
        prop_assert_eq!(d.prefix.hits, 0);
        prop_assert_eq!(&d.decode.requests, &plain.requests);
        prop_assert_eq!(
            &d.decode.fleet.shards[..prefill_shards],
            &plain.fleet.shards[..]
        );
        prop_assert_eq!(d.decode.fleet.completed, plain.fleet.completed);
        prop_assert_eq!(d.decode.fleet.makespan_s, plain.fleet.makespan_s);
        prop_assert_eq!(d.decode.generated_tokens, plain.generated_tokens);
        prop_assert_eq!(d.decode.goodput_tok_s, plain.goodput_tok_s);
        prop_assert_eq!(d.decode.ttft_p95_s, plain.ttft_p95_s);
    }

    /// Containment pin #2: a zero-capacity cache prices every request at
    /// full prefill, so the whole simulation — not just the headline
    /// numbers — is bit-identical to running with no prefix assignment at
    /// all. Only the miss counter may differ (capacity 0 still counts the
    /// lookups it refuses).
    #[test]
    fn zero_capacity_cache_is_bit_identical_to_no_prefixes(
        prefill_shards in 1usize..3,
        decode_shards in 1usize..3,
        rate in 500.0f64..3000.0,
        n in 40usize..120,
        seed in 0u64..1_000_000,
    ) {
        let trace = rte_trace(rate, n, seed);
        let prefixes = profile().assign(n, seed);
        let dcfg = DisaggConfig { transfer: cheap_wire(), prefix_cache_capacity: 0 };
        let with = run_disagg(prefill_shards, decode_shards, &trace, &prefixes, &dcfg);
        let without = run_disagg(prefill_shards, decode_shards, &trace, &[], &dcfg);
        prop_assert_eq!(&with.decode, &without.decode);
        prop_assert_eq!(with.prefill_pool, without.prefill_pool);
        prop_assert_eq!(with.decode_pool, without.decode_pool);
        prop_assert_eq!(with.transfers, without.transfers);
        prop_assert_eq!(with.transfer_time_s, without.transfer_time_s);
        prop_assert_eq!(with.transferred_tokens, without.transferred_tokens);
        prop_assert_eq!(with.prefix.hits, 0);
        prop_assert_eq!(with.prefix.evictions, 0);
        prop_assert_eq!(with.prefix.tokens_saved, 0);
        prop_assert_eq!(
            with.prefix.misses,
            prefixes.iter().filter(|p| p.is_some()).count()
        );
        prop_assert_eq!(without.prefix.misses, 0);
    }
}

/// Three well-separated requests sharing prefill length 64, prefix
/// groups A, B, A at prefix length 48.
fn aba_trace_and_prefixes() -> (Vec<DecodeRequest>, Vec<Option<PrefixGroup>>) {
    let trace: Vec<DecodeRequest> = (0..3)
        .map(|i| DecodeRequest {
            arrival_s: i as f64 * 0.01,
            prefill_len: 64,
            output_len: 4,
            priority: Priority::Normal,
        })
        .collect();
    let prefixes = [0u64, 1, 0]
        .iter()
        .map(|&group| {
            Some(PrefixGroup {
                group,
                prefix_len: 48,
            })
        })
        .collect();
    (trace, prefixes)
}

/// The LRU repricing pin: under capacity 1 the A–B–A group pattern
/// thrashes (B evicts A, A's return evicts B and pays full prefill
/// again); under capacity 2 both groups stay resident and A's return
/// hits, skipping the shared 48 tokens — observable as a strictly
/// smaller TTFT for that request and nowhere else.
#[test]
fn hit_then_evict_then_miss_reprices_full_prefill() {
    let (trace, prefixes) = aba_trace_and_prefixes();
    let run = |capacity| {
        run_disagg(
            1,
            1,
            &trace,
            &prefixes,
            &DisaggConfig {
                transfer: cheap_wire(),
                prefix_cache_capacity: capacity,
            },
        )
    };
    let thrash = run(1);
    assert_eq!(thrash.prefix.hits, 0);
    assert_eq!(thrash.prefix.misses, 3);
    assert_eq!(thrash.prefix.evictions, 2);
    assert_eq!(thrash.prefix.tokens_saved, 0);

    let warm = run(2);
    assert_eq!(warm.prefix.hits, 1);
    assert_eq!(warm.prefix.misses, 2);
    assert_eq!(warm.prefix.evictions, 0);
    assert_eq!(warm.prefix.tokens_saved, 48);

    // Requests 0 and 1 never hit in either run: identical outcomes.
    for r in 0..2 {
        assert_eq!(thrash.decode.requests[r], warm.decode.requests[r]);
    }
    // Request 2 is repriced: full 64-token prefill when its entry was
    // evicted, 16 tokens after the capacity-2 hit.
    assert!(
        warm.decode.requests[2].ttft_s < thrash.decode.requests[2].ttft_s,
        "cache hit did not speed up the re-arriving group (warm {} !< thrashed {})",
        warm.decode.requests[2].ttft_s,
        thrash.decode.requests[2].ttft_s
    );
    // And the discount is the only difference: re-running either
    // configuration reproduces it bit-for-bit.
    assert_eq!(run(1), thrash);
    assert_eq!(run(2), warm);
}

/// `HARNESS_SEED`-matrix determinism: under whatever seed CI exports,
/// both disaggregated entry points are pure functions of their inputs —
/// the full report structs (per-request vectors, pool rollups, cache
/// counters, scale events) must be identical across repeated runs.
#[test]
fn disagg_reports_are_deterministic_under_harness_seed() {
    let seed = harness_seed();
    let trace = rte_trace(1500.0, 80, seed);
    let prefixes = profile().assign(trace.len(), seed);
    let dcfg = DisaggConfig {
        transfer: cheap_wire(),
        prefix_cache_capacity: 2,
    };
    let a = run_disagg(2, 2, &trace, &prefixes, &dcfg);
    let b = run_disagg(2, 2, &trace, &prefixes, &dcfg);
    assert_eq!(a, b);

    let acfg = DisaggAutoscaleConfig {
        prefill: PoolPolicy::pinned(2),
        decode: PoolPolicy {
            min_shards: 1,
            initial_shards: 1,
            policy: ScalePolicy::Reactive {
                scale_up_depth: 0.5,
                scale_down_depth: 0.0,
            },
        },
        eval_interval_s: 0.005,
        warmup_s: 0.002,
        cooldown_s: 0.0,
    };
    let run = || {
        simulate_disagg_autoscale(
            &homogeneous_fleet(&tiny_design(64), 2),
            &homogeneous_fleet(&tiny_design(64), 2),
            &trace,
            &prefixes,
            SchedulingPolicy::LengthAware,
            DispatchPolicy::JoinShortestQueue,
            DecodeScheduler::Continuous,
            &DecodeConfig::default(),
            &dcfg,
            &acfg,
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a, b);
    assert_eq!(a.disagg.decode.fleet.completed, trace.len());
}
