//! Property-based tests of the sparse attention operator (§3) against the
//! dense reference.

use lat_fpga::core::sparse::{SparseAttention, SparseAttentionConfig};
use lat_fpga::core::topk::{top_k_heap, top_k_merge_network};
use lat_fpga::model::attention::{AttentionOp, DenseAttention};
use lat_fpga::tensor::quant::BitWidth;
use lat_fpga::tensor::rng::SplitMix64;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// With k ≥ n and exact-rank (8-bit) pre-selection, sparse attention
    /// equals dense attention.
    #[test]
    fn sparse_equals_dense_when_k_covers(seed in 0u64..10_000, n in 2usize..24, d in 2usize..24) {
        let mut rng = SplitMix64::new(seed);
        let q = rng.gaussian_matrix(n, d, 1.0);
        let k = rng.gaussian_matrix(n, d, 1.0);
        let v = rng.gaussian_matrix(n, d, 1.0);
        let sparse = SparseAttention::new(SparseAttentionConfig {
            bits: BitWidth::Eight,
            k: n,
            causal: false,
        });
        let a = sparse.attend(&q, &k, &v).expect("sparse attend");
        let b = DenseAttention.attend(&q, &k, &v).expect("dense attend");
        let mse = a.mse(&b).expect("same shape");
        prop_assert!(mse < 1e-7, "mse {}", mse);
    }

    /// Sparse attention outputs are convex combinations of value rows:
    /// every output element lies within the min/max of its value column.
    #[test]
    fn outputs_are_convex_combinations(seed in 0u64..10_000, k in 1usize..16) {
        let mut rng = SplitMix64::new(seed ^ 0xABCD);
        let n = 20;
        let d = 8;
        let q = rng.gaussian_matrix(n, d, 1.0);
        let km = rng.gaussian_matrix(n, d, 1.0);
        let v = rng.gaussian_matrix(n, d, 1.0);
        let sparse = SparseAttention::new(SparseAttentionConfig {
            bits: BitWidth::One,
            k,
            causal: false,
        });
        let out = sparse.attend(&q, &km, &v).expect("attend");
        for j in 0..d {
            let col = v.col(j);
            let lo = col.iter().cloned().fold(f32::INFINITY, f32::min) - 1e-4;
            let hi = col.iter().cloned().fold(f32::NEG_INFINITY, f32::max) + 1e-4;
            for i in 0..n {
                prop_assert!(out[(i, j)] >= lo && out[(i, j)] <= hi);
            }
        }
    }

    /// Exact-path MAC count is exactly `n·(kept·d_k + kept·d_v)` — the
    /// O(n·k) complexity claim, measured not assumed.
    #[test]
    fn mac_count_is_linear(seed in 0u64..10_000, n in 8usize..40, k in 1usize..8) {
        let mut rng = SplitMix64::new(seed ^ 0x77);
        let d = 16;
        let q = rng.gaussian_matrix(n, d, 1.0);
        let km = rng.gaussian_matrix(n, d, 1.0);
        let v = rng.gaussian_matrix(n, d, 1.0);
        let sparse = SparseAttention::new(SparseAttentionConfig {
            bits: BitWidth::One,
            k,
            causal: false,
        });
        let out = sparse.attend_with_details(&q, &km, &v).expect("attend");
        let kept = k.min(n);
        prop_assert_eq!(out.exact_macs, (n * (kept * d + kept * d)) as u64);
    }

    /// The two top-k implementations (software heap, hardware merge-sort
    /// network) agree exactly, including tie handling.
    #[test]
    fn topk_implementations_agree(
        scores in proptest::collection::vec(-100i32..100, 0..200),
        k in 0usize..64,
    ) {
        prop_assert_eq!(top_k_heap(&scores, k), top_k_merge_network(&scores, k));
    }

    /// Top-k results are sorted by descending score with index tiebreak.
    #[test]
    fn topk_sorted_descending(
        scores in proptest::collection::vec(-50i32..50, 1..100),
        k in 1usize..32,
    ) {
        let idx = top_k_heap(&scores, k);
        for w in idx.windows(2) {
            let better = scores[w[0]] > scores[w[1]]
                || (scores[w[0]] == scores[w[1]] && w[0] < w[1]);
            prop_assert!(better, "not sorted at {:?}", w);
        }
        // And nothing outside the set beats anything inside it.
        if let Some(&worst) = idx.last() {
            for (j, &s) in scores.iter().enumerate() {
                if !idx.contains(&j) {
                    prop_assert!(
                        s < scores[worst] || (s == scores[worst] && j > worst),
                        "excluded {} beats included {}", j, worst
                    );
                }
            }
        }
    }
}
