//! Golden test of the paper's Fig. 3 worked example: the 4-bit
//! quantization levels and the Top-2 candidate choice printed in the
//! figure must come out of our implementation exactly.

use lat_fpga::core::preselect::{preselect, PreselectConfig};
use lat_fpga::tensor::quant::{BitWidth, QuantizedMatrix};
use lat_fpga::tensor::Matrix;

/// The figure's K matrix (one key per row), chosen so its max-abs element
/// is exactly the 0.77 scaling factor the paper quotes.
fn fig3_k() -> Matrix {
    Matrix::from_rows(&[
        &[0.7, -0.5, 0.3, 0.4],
        &[0.4, 0.1, -0.3, 0.4],
        &[0.4, 0.4, 0.4, 0.1],
        &[-0.2, -0.3, -0.6, 0.1],
    ])
    .expect("rectangular literal")
}

fn fig3_q() -> Matrix {
    Matrix::from_rows(&[&[0.3, 0.7, 1.2, 0.5]]).expect("rectangular literal")
}

/// Fig. 3 step 2: the published 4-bit K' levels.
#[test]
fn fig3_k_levels_match_figure() {
    // Max-abs element of this K is 0.7; the figure's scale M = 0.77 comes
    // from the full matrix in the paper — what must match exactly is the
    // level pattern: round(x · 7 / max_abs).
    let q = QuantizedMatrix::quantize(&fig3_k(), BitWidth::Four);
    assert_eq!(q.level_row(0), &[7, -5, 3, 4]);
    assert_eq!(q.level_row(1), &[4, 1, -3, 4]);
    assert_eq!(q.level_row(2), &[4, 4, 4, 1]);
    assert_eq!(q.level_row(3), &[-2, -3, -6, 1]);
}

/// Fig. 3 steps 3–4: quantized scores rank k1 and k3 (0-indexed 0 and 2)
/// top-2, in that order, matching the figure's selection.
#[test]
fn fig3_top2_selection_matches_figure() {
    let sel = preselect(&fig3_q(), &fig3_k(), PreselectConfig::fig3()).expect("preselect");
    assert_eq!(
        sel.candidates[0],
        vec![2, 0],
        "figure keeps k3 (highest) and k1"
    );
    // The exact scores confirm the same ranking (monotonicity claim).
    let exact = fig3_q().matmul_transposed(&fig3_k()).expect("shapes agree");
    let row = exact.row(0);
    assert!(row[2] > row[0] && row[0] > row[1] && row[1] > row[3]);
}

/// Fig. 3 step 1 anchor: softmax over the figure's exact scores puts most
/// mass on the two selected keys — the premise that Top-2 suffices here.
#[test]
fn fig3_selected_keys_carry_dominant_mass() {
    let exact = fig3_q().matmul_transposed(&fig3_k()).expect("shapes agree");
    let mut probs: Vec<f32> = exact.row(0).to_vec();
    lat_fpga::tensor::ops::softmax_in_place(&mut probs);
    let kept = probs[0] + probs[2];
    assert!(kept > 0.6, "top-2 mass only {kept}");
}
