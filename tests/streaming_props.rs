//! Streaming-vs-exact report equivalence across the serving engines, plus
//! the PR's two client/report regression pins.
//!
//! `ReportMode::Streaming` must change *representation*, never *events*:
//! every counter, makespan, throughput, and batch-size mean is asserted
//! bit-identical to the exact run of the same scenario, while the
//! percentile fields — the only sketch-estimated values — are pinned to
//! `|sketch − exact| ≤ ε`. The suite covers the healthy fleet and decode
//! engines and all three failure entry points (fixed fleet, autoscaled
//! fleet, decode), so the sketch path is exercised through crashes,
//! stragglers, client retries, and re-priced in-flight work.

use lat_bench::scenarios::{
    harness_seed, FAILURE_BACKOFF_S, FAILURE_DEADLINE_S, FAILURE_MAX_RETRIES, FAILURE_TIMEOUT_S,
};
use lat_fpga::core::pipeline::SchedulingPolicy;
use lat_fpga::core::sketch::ReportMode;
use lat_fpga::hwsim::accelerator::AcceleratorDesign;
use lat_fpga::hwsim::autoscale::{AutoscaleConfig, DecodeScaleDown, RetirePolicy, ScalePolicy};
use lat_fpga::hwsim::decode::{decode_trace, simulate_decode_mode, DecodeConfig, DecodeScheduler};
use lat_fpga::hwsim::failure::{
    simulate_autoscale_failure, simulate_autoscale_failure_mode, simulate_decode_failure,
    simulate_decode_failure_mode, simulate_fleet_failure, simulate_fleet_failure_mode,
    ClientConfig, Fault, FaultKind, FaultPlan, RetryDecision,
};
use lat_fpga::hwsim::fleet::{
    homogeneous_fleet, poisson_trace, simulate_fleet, simulate_fleet_mode, BatcherConfig,
    DispatchPolicy, FleetReport,
};
use lat_fpga::hwsim::spec::FpgaSpec;
use lat_fpga::model::config::ModelConfig;
use lat_fpga::model::graph::AttentionMode;
use lat_fpga::workloads::datasets::DatasetSpec;

/// Relative tolerance pinned for every sketch-estimated percentile. The
/// P² estimator is far tighter than this on the smooth latency
/// populations the engines produce; the pin is deliberately loose enough
/// to stay seed-robust under the `HARNESS_SEED` matrix.
const QUANTILE_EPS: f64 = 0.25;

fn tiny_design(s_avg: usize) -> AcceleratorDesign {
    AcceleratorDesign::new(
        &ModelConfig::tiny(),
        AttentionMode::paper_sparse(),
        FpgaSpec::alveo_u280(),
        s_avg,
    )
}

fn batcher() -> BatcherConfig {
    BatcherConfig {
        max_batch: 8,
        batch_window_s: 0.002,
    }
}

fn client() -> ClientConfig {
    ClientConfig {
        timeout_s: FAILURE_TIMEOUT_S,
        max_retries: FAILURE_MAX_RETRIES,
        backoff_s: FAILURE_BACKOFF_S,
        deadline_s: FAILURE_DEADLINE_S,
    }
}

/// A client impatient enough to act inside the blackout window below:
/// 50 ms per-attempt timeout, two backoff-doubled retries, and a 250 ms
/// end-to-end deadline that expires well before the outage lifts.
fn impatient_client() -> ClientConfig {
    ClientConfig {
        timeout_s: 0.05,
        max_retries: 2,
        backoff_s: 0.02,
        deadline_s: 0.25,
    }
}

/// Total outage: every shard crashes at 0.1 s and recovers at 0.7 s.
/// Arrivals inside the window park, so the impatient client's timeouts
/// actually fire — retries pile up and the 250 ms deadline abandons the
/// early cohort, exercising retry/abandonment accounting in both report
/// modes. (Partial faults never make this fleet slow enough for a
/// client-visible queue; see the straggler-only [`stormy_plan`].)
fn blackout_plan() -> FaultPlan {
    FaultPlan {
        faults: (0..3)
            .map(|shard| Fault {
                shard,
                kind: FaultKind::Crash {
                    at_s: 0.1,
                    recover_s: Some(0.7),
                },
            })
            .collect(),
    }
}

/// A surge scenario that produces client retries *without* a latency
/// cliff: shard 0 crashes for 0.9 s and shard 1 drags ×100 while a
/// heavy arrival stream keeps the survivors saturated, so some queued
/// requests outlive the 10 ms timeout and re-enter — but the retried
/// cohort's latencies stay within the same decade as the bulk (deadline
/// 30 ms), keeping the population smooth enough for value-space pins.
fn surge_plan() -> FaultPlan {
    FaultPlan {
        faults: vec![
            Fault {
                shard: 0,
                kind: FaultKind::Crash {
                    at_s: 0.1,
                    recover_s: Some(1.0),
                },
            },
            Fault {
                shard: 1,
                kind: FaultKind::Straggler {
                    from_s: 0.05,
                    until_s: 0.8,
                    slowdown: 100.0,
                },
            },
        ],
    }
}

/// The client paired with [`surge_plan`]: fires fast, gives up fast.
fn hasty_client() -> ClientConfig {
    ClientConfig {
        timeout_s: 0.01,
        max_retries: 3,
        backoff_s: 0.005,
        deadline_s: 0.03,
    }
}

/// Crash-with-recovery on shard 0 plus a straggler window on shard 1 —
/// exercises batch-record removal and in-flight re-pricing.
fn stormy_plan() -> FaultPlan {
    FaultPlan {
        faults: vec![
            Fault {
                shard: 0,
                kind: FaultKind::Crash {
                    at_s: 1.0,
                    recover_s: Some(2.5),
                },
            },
            Fault {
                shard: 1,
                kind: FaultKind::Straggler {
                    from_s: 0.5,
                    until_s: 3.0,
                    slowdown: 20.0,
                },
            },
        ],
    }
}

fn assert_quantile_close(tag: &str, sketch: f64, exact: f64) {
    let tol = exact.abs().max(1e-9) * QUANTILE_EPS + 1e-9;
    assert!(
        (sketch - exact).abs() <= tol,
        "{tag}: sketch {sketch} vs exact {exact} (tol {tol})"
    );
}

/// Rank-space pin for quantiles of *cliffy* populations. A value-space ε
/// is meaningless at a CDF discontinuity (here the exact distribution can
/// jump ~25× between q0.93 and q0.97, right where p95 sits), so instead
/// the sketch estimate must land inside the exact sample values at ranks
/// `p ± 0.04` — the standard accuracy contract for streaming quantile
/// estimators on atom-heavy data.
fn assert_quantile_in_rank_window(tag: &str, sketch: f64, sorted: &[f64], p: f64) {
    assert!(!sorted.is_empty(), "{tag}: no exact samples to pin against");
    let at = |q: f64| {
        let idx = ((sorted.len() as f64 - 1.0) * q.clamp(0.0, 1.0)).round() as usize;
        sorted[idx.min(sorted.len() - 1)]
    };
    let (lo, hi) = (at(p - 0.04), at(p + 0.04));
    let slack = hi.abs().max(1e-9) * 1e-6;
    assert!(
        sketch >= lo - slack && sketch <= hi + slack,
        "{tag}: sketch {sketch} outside exact rank window [{lo}, {hi}] around p{p}"
    );
}

/// Combined pin: close in value space (the smooth-population contract)
/// *or* inside the exact rank window (the cliff contract). A dense bulk
/// makes the rank window a hair's width in value space while value-ε is
/// generous; a CDF cliff makes value-ε impossible while the rank window
/// is the meaningful bound — every population satisfies one of the two.
fn assert_quantile_pinned(tag: &str, sketch: f64, exact: f64, sorted: &[f64], p: f64) {
    let tol = exact.abs().max(1e-9) * QUANTILE_EPS + 1e-9;
    if (sketch - exact).abs() <= tol {
        return;
    }
    assert_quantile_in_rank_window(tag, sketch, sorted, p);
}

/// Finite latencies from an exact run's client outcomes, ascending —
/// the reference population for rank-window percentile pins. `filter`
/// selects which requests belong (e.g. one incident phase's arrivals).
fn sorted_latencies(
    outcomes: &[lat_fpga::hwsim::failure::ClientOutcome],
    filter: impl Fn(usize) -> bool,
) -> Vec<f64> {
    let mut lat: Vec<f64> = outcomes
        .iter()
        .enumerate()
        .filter(|(r, o)| filter(*r) && o.latency_s.is_finite())
        .map(|(_, o)| o.latency_s)
        .collect();
    lat.sort_by(f64::total_cmp);
    lat
}

/// The bit-identical portion of the streaming contract: every counter,
/// the makespan, throughput, batch-size mean, and per-shard stats must
/// match the exact run exactly — `ReportMode::Streaming` changes
/// representation, never events.
fn assert_fleet_counters_equal(stream: &FleetReport, exact: &FleetReport) {
    assert_eq!(stream.completed, exact.completed);
    assert_eq!(stream.makespan_s.to_bits(), exact.makespan_s.to_bits());
    assert_eq!(
        stream.throughput_seq_s.to_bits(),
        exact.throughput_seq_s.to_bits()
    );
    assert_eq!(
        stream.mean_batch_size.to_bits(),
        exact.mean_batch_size.to_bits()
    );
    assert_eq!(stream.shards, exact.shards, "per-shard stats diverged");
    assert!(
        stream.batch_log.is_empty(),
        "streaming retained a batch log"
    );
}

/// Everything in a [`FleetReport`] except the three percentile fields,
/// the (summation-order-sensitive) mean, and the batch log must be
/// bit-identical between modes.
fn assert_fleet_reports_equivalent(stream: &FleetReport, exact: &FleetReport) {
    assert_fleet_counters_equal(stream, exact);
    assert_quantile_close("mean latency", stream.mean_latency_s, exact.mean_latency_s);
    assert_quantile_close("p50", stream.p50_latency_s, exact.p50_latency_s);
    assert_quantile_close("p95", stream.p95_latency_s, exact.p95_latency_s);
    assert_quantile_close("p99", stream.p99_latency_s, exact.p99_latency_s);
}

#[test]
fn fleet_streaming_matches_exact() {
    let fleet = homogeneous_fleet(&tiny_design(64), 3);
    let trace = poisson_trace(&DatasetSpec::rte(), 120.0, 800, harness_seed());
    let cfg = batcher();
    let run = |mode| {
        simulate_fleet_mode(
            &fleet,
            &trace,
            SchedulingPolicy::LengthAware,
            DispatchPolicy::JoinShortestQueue,
            &cfg,
            mode,
        )
    };
    let exact = run(ReportMode::Exact);
    let stream = run(ReportMode::Streaming);
    assert_eq!(
        exact,
        simulate_fleet(
            &fleet,
            &trace,
            SchedulingPolicy::LengthAware,
            DispatchPolicy::JoinShortestQueue,
            &cfg,
        ),
        "Exact mode must be simulate_fleet verbatim"
    );
    assert_fleet_reports_equivalent(&stream, &exact);
}

#[test]
fn decode_streaming_matches_exact() {
    let fleet = homogeneous_fleet(&tiny_design(64), 3);
    let trace = decode_trace(
        &DatasetSpec::mrpc(),
        &DatasetSpec::mrpc().decode_output(),
        0.3,
        60.0,
        400,
        harness_seed(),
    );
    let cfg = DecodeConfig {
        max_slots: 6,
        ttft_deadline_s: 0.05,
    };
    let run = |mode| {
        simulate_decode_mode(
            &fleet,
            &trace,
            SchedulingPolicy::LengthAware,
            DispatchPolicy::JoinShortestQueue,
            DecodeScheduler::ContinuousPreempt,
            &cfg,
            mode,
        )
    };
    let exact = run(ReportMode::Exact);
    let stream = run(ReportMode::Streaming);
    assert_fleet_reports_equivalent(&stream.fleet, &exact.fleet);
    assert_eq!(stream.generated_tokens, exact.generated_tokens);
    assert_eq!(
        stream.goodput_tok_s.to_bits(),
        exact.goodput_tok_s.to_bits()
    );
    assert_eq!(
        stream.slot_utilization.to_bits(),
        exact.slot_utilization.to_bits()
    );
    assert_eq!(stream.preemptions, exact.preemptions);
    assert_eq!(stream.shards, exact.shards);
    assert!(stream.requests.is_empty(), "streaming retained outcomes");
    assert_quantile_close("ttft mean", stream.ttft_mean_s, exact.ttft_mean_s);
    assert_quantile_close("ttft p50", stream.ttft_p50_s, exact.ttft_p50_s);
    assert_quantile_close("ttft p95", stream.ttft_p95_s, exact.ttft_p95_s);
    assert_quantile_close("ttft p99", stream.ttft_p99_s, exact.ttft_p99_s);
    assert_quantile_close("itl p50", stream.itl_p50_s, exact.itl_p50_s);
    assert_quantile_close("itl p95", stream.itl_p95_s, exact.itl_p95_s);
    assert_quantile_close("itl p99", stream.itl_p99_s, exact.itl_p99_s);
    let (se, ee) = (stream.high_ttft_p95_s, exact.high_ttft_p95_s);
    assert_eq!(se.is_some(), ee.is_some(), "high-priority presence");
    if let (Some(s), Some(e)) = (se, ee) {
        assert_quantile_close("high ttft p95", s, e);
    }
}

#[test]
fn fleet_failure_streaming_matches_exact() {
    let fleet = homogeneous_fleet(&tiny_design(64), 3);
    let trace = poisson_trace(&DatasetSpec::rte(), 8000.0, 3000, harness_seed());
    let cfg = batcher();
    let plan = surge_plan();
    let cl = hasty_client();
    let run = |mode| {
        simulate_fleet_failure_mode(
            &fleet,
            &trace,
            SchedulingPolicy::LengthAware,
            DispatchPolicy::JoinShortestQueue,
            &cfg,
            &plan,
            &cl,
            0.25,
            mode,
        )
    };
    let exact = run(ReportMode::Exact);
    let stream = run(ReportMode::Streaming);
    assert!(exact.retries > 0, "scenario too calm to exercise retries");
    assert_eq!(stream.completed, exact.completed);
    assert_eq!(stream.timed_out, exact.timed_out);
    assert_eq!(stream.retried, exact.retried);
    assert_eq!(stream.retries, exact.retries);
    assert_eq!(
        stream.slo_attainment.to_bits(),
        exact.slo_attainment.to_bits(),
        "SLO attainment is a count ratio — identical in both modes"
    );
    assert_eq!(
        stream.goodput_seq_s.to_bits(),
        exact.goodput_seq_s.to_bits()
    );
    assert!(stream.outcomes.is_empty(), "streaming retained outcomes");
    assert_fleet_counters_equal(&stream.fleet, &exact.fleet);
    let all = sorted_latencies(&exact.outcomes, |_| true);
    let (sf, ef) = (&stream.fleet, &exact.fleet);
    assert_quantile_close("surge mean latency", sf.mean_latency_s, ef.mean_latency_s);
    assert_quantile_pinned("surge p50", sf.p50_latency_s, ef.p50_latency_s, &all, 0.50);
    assert_quantile_pinned("surge p95", sf.p95_latency_s, ef.p95_latency_s, &all, 0.95);
    assert_quantile_pinned("surge p99", sf.p99_latency_s, ef.p99_latency_s, &all, 0.99);
    assert_eq!(stream.phases.len(), exact.phases.len());
    for (sp, ep) in stream.phases.iter().zip(&exact.phases) {
        assert_eq!(sp.arrivals, ep.arrivals);
        assert_eq!(sp.completed, ep.completed);
        assert_eq!(sp.timed_out, ep.timed_out);
        assert_eq!(sp.scale_events, ep.scale_events);
        assert_eq!(sp.slo_attainment.to_bits(), ep.slo_attainment.to_bits());
        assert_eq!(sp.goodput_seq_s.to_bits(), ep.goodput_seq_s.to_bits());
        // Phase populations are arrival-bucketed slices of the exact
        // outcomes; pin each phase's p95 against its own slice so a
        // phase whose window straddles the fault cliff still has a
        // meaningful bound.
        let phase = sorted_latencies(&exact.outcomes, |r| {
            trace[r].arrival_s >= sp.start_s && trace[r].arrival_s < sp.end_s
        });
        if !phase.is_empty() {
            assert_quantile_pinned(
                "phase p95",
                sp.p95_latency_s,
                ep.p95_latency_s,
                &phase,
                0.95,
            );
        }
    }
}

#[test]
fn autoscale_failure_streaming_matches_exact() {
    let fleet = homogeneous_fleet(&tiny_design(64), 4);
    let trace = poisson_trace(&DatasetSpec::rte(), 150.0, 600, harness_seed());
    let cfg = batcher();
    let auto_cfg = AutoscaleConfig {
        min_shards: 1,
        initial_shards: 2,
        policy: ScalePolicy::Reactive {
            scale_up_depth: 4.0,
            scale_down_depth: 0.5,
        },
        retire: RetirePolicy::Evict,
        eval_interval_s: 0.05,
        warmup_s: 0.2,
        cooldown_s: 0.0,
        ..AutoscaleConfig::default()
    };
    let plan = stormy_plan();
    let cl = client();
    let run = |mode| {
        simulate_autoscale_failure_mode(
            &fleet,
            &trace,
            SchedulingPolicy::LengthAware,
            DispatchPolicy::JoinShortestQueue,
            &cfg,
            &auto_cfg,
            &plan,
            &cl,
            mode,
        )
    };
    let exact = run(ReportMode::Exact);
    let stream = run(ReportMode::Streaming);
    assert_eq!(
        exact,
        simulate_autoscale_failure(
            &fleet,
            &trace,
            SchedulingPolicy::LengthAware,
            DispatchPolicy::JoinShortestQueue,
            &cfg,
            &auto_cfg,
            &plan,
            &cl,
        ),
        "Exact mode must be simulate_autoscale_failure verbatim"
    );
    assert_eq!(
        stream.shard_seconds.to_bits(),
        exact.shard_seconds.to_bits()
    );
    assert_eq!(
        stream.mean_active_shards.to_bits(),
        exact.mean_active_shards.to_bits()
    );
    assert_eq!(stream.peak_active_shards, exact.peak_active_shards);
    assert_eq!(stream.scale_events, exact.scale_events);
    assert_eq!(stream.failure.completed, exact.failure.completed);
    assert_eq!(stream.failure.timed_out, exact.failure.timed_out);
    assert_eq!(stream.failure.retries, exact.failure.retries);
    assert!(stream.failure.outcomes.is_empty());
    assert_fleet_counters_equal(&stream.failure.fleet, &exact.failure.fleet);
    // The autoscaled incident produces a *cliff* latency population: a
    // warm-up-delayed cohort sits orders of magnitude above the healthy
    // bulk, and the CDF jump lands right at p95. Pin those percentiles in
    // rank space against the exact per-request latencies instead of the
    // value-space ε the smooth scenarios use.
    let lat = sorted_latencies(&exact.failure.outcomes, |_| true);
    let (sf, ef) = (&stream.failure.fleet, &exact.failure.fleet);
    assert_quantile_close(
        "autoscale mean latency",
        sf.mean_latency_s,
        ef.mean_latency_s,
    );
    assert_quantile_pinned(
        "autoscale p50",
        sf.p50_latency_s,
        ef.p50_latency_s,
        &lat,
        0.50,
    );
    assert_quantile_pinned(
        "autoscale p95",
        sf.p95_latency_s,
        ef.p95_latency_s,
        &lat,
        0.95,
    );
    assert_quantile_pinned(
        "autoscale p99",
        sf.p99_latency_s,
        ef.p99_latency_s,
        &lat,
        0.99,
    );
}

#[test]
fn decode_failure_streaming_matches_exact() {
    let fleet = homogeneous_fleet(&tiny_design(64), 3);
    let trace = decode_trace(
        &DatasetSpec::mrpc(),
        &DatasetSpec::mrpc().decode_output(),
        0.2,
        50.0,
        300,
        harness_seed(),
    );
    let cfg = DecodeConfig {
        max_slots: 4,
        ttft_deadline_s: 0.05,
    };
    let plan = stormy_plan();
    let cl = client();
    let run = |mode| {
        simulate_decode_failure_mode(
            &fleet,
            &trace,
            SchedulingPolicy::LengthAware,
            DispatchPolicy::JoinShortestQueue,
            DecodeScheduler::Continuous,
            &cfg,
            &plan,
            &cl,
            DecodeScaleDown::Migrate,
            0.1,
            mode,
        )
    };
    let exact = run(ReportMode::Exact);
    let stream = run(ReportMode::Streaming);
    assert_eq!(
        exact,
        simulate_decode_failure(
            &fleet,
            &trace,
            SchedulingPolicy::LengthAware,
            DispatchPolicy::JoinShortestQueue,
            DecodeScheduler::Continuous,
            &cfg,
            &plan,
            &cl,
            DecodeScaleDown::Migrate,
            0.1,
        ),
        "Exact mode must be simulate_decode_failure verbatim"
    );
    assert_eq!(stream.completed, exact.completed);
    assert_eq!(stream.timed_out, exact.timed_out);
    assert_eq!(stream.retried, exact.retried);
    assert_eq!(stream.retries, exact.retries);
    assert_eq!(
        stream.slo_attainment.to_bits(),
        exact.slo_attainment.to_bits()
    );
    assert_eq!(
        stream.affected_drain_s.to_bits(),
        exact.affected_drain_s.to_bits()
    );
    assert!(stream.outcomes.is_empty());
    assert_fleet_reports_equivalent(&stream.decode.fleet, &exact.decode.fleet);
    for (sp, ep) in stream.phases.iter().zip(&exact.phases) {
        assert_eq!(sp.arrivals, ep.arrivals);
        assert_eq!(sp.completed, ep.completed);
        assert_eq!(sp.slo_attainment.to_bits(), ep.slo_attainment.to_bits());
        assert_quantile_close("decode phase p95", sp.p95_latency_s, ep.p95_latency_s);
    }
}

/// Regression pin for the deduplicated client-retry scheduling: the
/// fleet and decode fault injectors once carried verbatim copies of the
/// backoff/timeout arithmetic and could drift apart. Both now route
/// through [`ClientConfig::on_timeout`]; this pins the exact
/// `retry_at`/`timeout_at` ladder that shared helper schedules for a full
/// timed-out-every-attempt disposition history.
#[test]
fn retry_schedule_pinned_for_both_client_layers() {
    let cl = client();
    let arrival = 0.0;
    let mut now = arrival + cl.timeout_s; // first timeout fires
    let mut ladder = Vec::new();
    let mut attempts = 0u32;
    while let RetryDecision::Retry {
        retry_at,
        timeout_at,
    } = cl.on_timeout(now, arrival, attempts)
    {
        // The exact arithmetic both injectors used before the
        // dedupe — any drift in the shared helper breaks this.
        let expect_retry = now + cl.backoff_s * 2f64.powi(attempts as i32);
        assert_eq!(retry_at.to_bits(), expect_retry.to_bits());
        assert_eq!(timeout_at.to_bits(), (retry_at + cl.timeout_s).to_bits());
        ladder.push((retry_at, timeout_at));
        attempts += 1;
        now = timeout_at;
    }
    assert_eq!(attempts, cl.max_retries, "full retry budget consumed");
    assert!(attempts <= cl.attempt_bound());
    // FAILURE_* client: timeout 1s, backoff 0.05s doubling, 3 retries.
    let expected = [(1.05, 2.05), (2.15, 3.15), (3.35, 4.35)];
    assert_eq!(ladder.len(), expected.len());
    for ((r, t), (er, et)) in ladder.iter().zip(expected) {
        assert!((r - er).abs() < 1e-12 && (t - et).abs() < 1e-12);
    }
    // Past the deadline the helper abandons even with retries left.
    let late = arrival + cl.deadline_s + 1.0;
    assert_eq!(cl.on_timeout(late, arrival, 0), RetryDecision::Abandon);
    // A timeout-free client arms no next timeout.
    let patient_backoff = ClientConfig {
        timeout_s: f64::INFINITY,
        max_retries: 1,
        backoff_s: 0.5,
        deadline_s: f64::INFINITY,
    };
    match patient_backoff.on_timeout(2.0, 0.0, 0) {
        RetryDecision::Retry { timeout_at, .. } => assert!(timeout_at.is_infinite()),
        RetryDecision::Abandon => panic!("budget allowed a retry"),
    }
}

/// Regression pin for the fleet-level `mean_batch_size` fix: the report
/// must equal Σ logged batch sizes / batch count — computed from the
/// batch log itself — in a crash + straggler + timeout scenario where
/// clients abandon work, and the per-shard means must be consistent with
/// the per-shard slices of the same log.
#[test]
fn fleet_mean_batch_size_matches_batch_log() {
    let fleet = homogeneous_fleet(&tiny_design(64), 3);
    let trace = poisson_trace(&DatasetSpec::rte(), 800.0, 700, harness_seed());
    let r = simulate_fleet_failure(
        &fleet,
        &trace,
        SchedulingPolicy::LengthAware,
        DispatchPolicy::JoinShortestQueue,
        &batcher(),
        &blackout_plan(),
        &impatient_client(),
        0.25,
    );
    assert!(r.timed_out > 0, "scenario too calm to exercise abandonment");
    let log = &r.fleet.batch_log;
    assert!(!log.is_empty());
    let total: usize = log.iter().map(|b| b.size).sum();
    assert_eq!(
        r.fleet.mean_batch_size.to_bits(),
        (total as f64 / log.len() as f64).to_bits(),
        "fleet mean_batch_size must come from logged batch sizes"
    );
    for sh in &r.fleet.shards {
        let sizes: Vec<usize> = log
            .iter()
            .filter(|b| b.shard == sh.shard)
            .map(|b| b.size)
            .collect();
        assert_eq!(sh.batches, sizes.len());
        let expect = if sizes.is_empty() {
            0.0
        } else {
            sizes.iter().sum::<usize>() as f64 / sizes.len() as f64
        };
        assert_eq!(
            sh.mean_batch_size.to_bits(),
            expect.to_bits(),
            "shard {} mean_batch_size inconsistent with its log slice",
            sh.shard
        );
    }
}
