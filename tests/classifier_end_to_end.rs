//! Full software stack integration: tokens → embeddings → encoder (dense
//! and sparse attention) → pooling → classifier head, across a
//! variable-length batch run through the sorted batch runtime.

use lat_fpga::core::runtime::{BatchRunner, RunnerAttention};
use lat_fpga::core::sparse::SparseAttentionConfig;
use lat_fpga::model::config::ModelConfig;
use lat_fpga::model::embedding::EmbeddingTable;
use lat_fpga::model::encoder::Encoder;
use lat_fpga::model::head::{mean_pool, ClassifierHead};
use lat_fpga::model::ModelError;
use lat_fpga::tensor::rng::SplitMix64;
use lat_fpga::tensor::Matrix;
use lat_fpga::workloads::datasets::DatasetSpec;

fn embed_batch(
    embeddings: &EmbeddingTable,
    rng: &mut SplitMix64,
    lengths: &[usize],
) -> Vec<Matrix> {
    lengths
        .iter()
        .map(|&n| {
            let tokens: Vec<u32> = (0..n).map(|_| rng.next_below(500) as u32).collect();
            embeddings.embed_with_positions(&tokens)
        })
        .collect()
}

/// The sparse and dense stacks predict the same classes for most inputs —
/// the end-to-end expression of the small Fig. 6 drop.
#[test]
fn sparse_stack_agrees_with_dense_predictions() -> Result<(), ModelError> {
    let cfg = ModelConfig::tiny();
    let mut rng = SplitMix64::new(0xC1A55);
    let encoder = Encoder::random(&cfg, &mut rng);
    let embeddings = EmbeddingTable::new(cfg.hidden_dim, 0xE3B);
    let head = ClassifierHead::random(cfg.hidden_dim, 4, &mut rng);

    let lengths = DatasetSpec::mrpc().sample_batch(&mut rng, 12);
    let batch = embed_batch(&embeddings, &mut rng, &lengths);

    let dense = BatchRunner::new(encoder.clone(), RunnerAttention::Dense);
    let sparse = BatchRunner::new(
        encoder,
        RunnerAttention::Sparse(SparseAttentionConfig::paper_default()),
    );

    let dense_out = dense.run(&batch)?;
    let sparse_out = sparse.run(&batch)?;

    let mut agree = 0usize;
    for (d, s) in dense_out.outputs.iter().zip(&sparse_out.outputs) {
        let pd = head.predict(&mean_pool(d))?;
        let ps = head.predict(&mean_pool(s))?;
        if pd == ps {
            agree += 1;
        }
    }
    assert!(
        agree * 10 >= batch.len() * 9,
        "only {agree}/{} predictions agree between dense and sparse stacks",
        batch.len()
    );
    Ok(())
}

/// The pooled-batch convenience path produces the same classifier inputs
/// as pooling the raw outputs.
#[test]
fn pooled_batch_equals_manual_pooling() -> Result<(), ModelError> {
    let cfg = ModelConfig::tiny();
    let mut rng = SplitMix64::new(0xC1A56);
    let encoder = Encoder::random(&cfg, &mut rng);
    let embeddings = EmbeddingTable::new(cfg.hidden_dim, 0xE3C);
    let lengths = [20usize, 35, 15];
    let batch = embed_batch(&embeddings, &mut rng, &lengths);

    let runner = BatchRunner::new(
        encoder,
        RunnerAttention::Sparse(SparseAttentionConfig::paper_default().with_k(12)),
    );
    let outputs = runner.run(&batch)?;
    let pooled = runner.encode_pooled_batch(&batch)?;
    for (m, p) in outputs.outputs.iter().zip(&pooled) {
        let manual = mean_pool(m);
        for (a, b) in manual.iter().zip(p) {
            assert!((a - b).abs() < 1e-6);
        }
    }
    Ok(())
}

/// Classifier heads reject mismatched widths all the way through the
/// stack (error propagation sanity).
#[test]
fn width_errors_surface_cleanly() {
    let mut rng = SplitMix64::new(0xC1A57);
    let head = ClassifierHead::random(64, 4, &mut rng);
    let err = head.logits(&[0.0; 32]).unwrap_err();
    assert!(err.to_string().contains("pooled width"));
}
