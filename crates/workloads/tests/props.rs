//! Property-based tests of the workload generators.

use lat_tensor::rng::SplitMix64;
use lat_workloads::accuracy::anchored_score;
use lat_workloads::datasets::DatasetSpec;
use lat_workloads::task::{TaskConfig, TaskGenerator};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Sampled lengths always respect the dataset bounds, for arbitrary
    /// (consistent) specs.
    #[test]
    fn sampler_respects_bounds(
        min in 5usize..50,
        avg_off in 1usize..100,
        max_off in 1usize..500,
        seed in 0u64..10_000,
    ) {
        let spec = DatasetSpec {
            name: "prop".into(),
            min_len: min,
            avg_len: min + avg_off,
            max_len: min + avg_off + max_off,
        };
        let mut rng = SplitMix64::new(seed);
        for _ in 0..50 {
            let l = spec.sample_length(&mut rng);
            prop_assert!(l >= spec.min_len && l <= spec.max_len);
        }
    }

    /// The sampled mean tracks the spec's average within tolerance when
    /// the average sits comfortably inside the bounds.
    #[test]
    fn sampler_mean_tracks_average(seed in 0u64..1000) {
        let spec = DatasetSpec {
            name: "prop".into(),
            min_len: 20,
            avg_len: 80,
            max_len: 400,
        };
        let mut rng = SplitMix64::new(seed);
        let n = 4000;
        let sum: usize = (0..n).map(|_| spec.sample_length(&mut rng)).sum();
        let mean = sum as f64 / n as f64;
        prop_assert!((mean - 80.0).abs() / 80.0 < 0.10, "mean {mean}");
    }

    /// Task instances always have consistent labels and shapes.
    #[test]
    fn task_instances_well_formed(seed in 0u64..10_000, n in 30usize..200) {
        let g = TaskGenerator::new(TaskConfig::default(), 5);
        let mut rng = SplitMix64::new(seed);
        let inst = g.generate(&mut rng, n);
        prop_assert_eq!(inst.q.shape(), (n, 64));
        prop_assert_eq!(inst.k.shape(), (n, 64));
        prop_assert_eq!(inst.v.shape(), (n, 64));
        prop_assert!(inst.label < 4);
        prop_assert_ne!(inst.label, inst.decoy_label);
        prop_assert!(inst.q.as_slice().iter().all(|x| x.is_finite()));
    }

    /// Anchored scores are always within [0, anchor] and decrease with the
    /// measured drop.
    #[test]
    fn anchoring_bounds(anchor in 50.0f64..95.0, dense in 0.5f64..1.0, drop in 0.0f64..0.5) {
        let sparse = (dense - drop).max(0.0);
        let s = anchored_score(anchor, dense, sparse);
        prop_assert!((0.0..=anchor).contains(&s));
        let s_less = anchored_score(anchor, dense, (sparse - 0.05).max(0.0));
        prop_assert!(s_less <= s + 1e-9);
    }
}
