//! The synthetic *attention-retrieval* classification task behind the
//! Fig. 6 accuracy sweep.
//!
//! Construction (per instance, see DESIGN.md substitution table):
//!
//! - A fixed unit *probe* direction `p` and one unit *prototype* vector per
//!   class.
//! - The classification query (row 0) points along `p`.
//! - `m_true` **evidence** keys align strongly with `p` (high *exact*
//!   attention score) and carry the true class's prototype as their value.
//! - `m_decoy` **decoy** keys are *sign-matched* to `p` but with small
//!   component magnitudes: their exact attention score is modest, but a
//!   1-bit (sign) quantizer sees a perfect match and ranks them at the very
//!   top. They carry a different class's prototype.
//! - All remaining keys are **fillers**: random directions with a weak
//!   positive probe alignment and weak random-class values.
//!
//! Full attention weights the true evidence above the decoys (exact scores
//! rule), so the output classifies correctly with a healthy margin. Top-k
//! truncation hurts through the *real* failure mode of the paper's 1-bit
//! pre-selection — magnitude blindness: the quantized ranking puts the
//! sign-matched decoys first, so at small `k` true-evidence slots are
//! displaced by decoys and the retained softmax mass flips the prediction.
//! At `k ≈ 30` all evidence (true + decoy) fits and accuracy recovers to
//! the dense level, reproducing the Fig. 6 knee. Longer sequences add
//! filler competitors at the pre-selection margin, so long-sequence
//! datasets (SQuAD) degrade faster than short ones (MRPC).

use lat_model::attention::AttentionOp;
use lat_model::ModelError;
use lat_tensor::rng::SplitMix64;
use lat_tensor::Matrix;
use serde::{Deserialize, Serialize};

/// Parameters of the attention-retrieval task.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskConfig {
    /// Number of classes (prototype vectors).
    pub num_classes: usize,
    /// Head dimension of Q/K/V.
    pub head_dim: usize,
    /// Number of true-evidence tokens per instance.
    pub evidence_true: usize,
    /// Number of sign-matched decoy tokens per instance.
    pub evidence_decoy: usize,
    /// Alignment strength of true evidence keys with the probe.
    pub align_true: f32,
    /// Per-component magnitude of the sign-matched decoy keys (small, so
    /// their exact score stays below the true evidence).
    pub decoy_magnitude: f32,
    /// Std-dev of the Gaussian noise added to evidence keys.
    pub key_noise: f32,
    /// Scale of filler key vectors.
    pub filler_scale: f32,
    /// Mean positive probe alignment of filler keys (length-dependent
    /// pre-selection pressure).
    pub filler_align: f32,
    /// Value-vector noise std-dev.
    pub value_noise: f32,
    /// Strength of filler values (weak random-class confusers).
    pub filler_value_scale: f32,
}

impl Default for TaskConfig {
    fn default() -> Self {
        Self {
            num_classes: 4,
            head_dim: 64,
            evidence_true: 16,
            evidence_decoy: 6,
            align_true: 2.6,
            decoy_magnitude: 0.24,
            key_noise: 0.9,
            filler_scale: 0.8,
            filler_align: 0.55,
            value_noise: 0.2,
            filler_value_scale: 0.2,
        }
    }
}

/// One generated task instance: per-head Q/K/V plus the ground truth.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskInstance {
    /// Query matrix (`n × d`); row 0 is the classification probe.
    pub q: Matrix,
    /// Key matrix (`n × d`).
    pub k: Matrix,
    /// Value matrix (`n × d`).
    pub v: Matrix,
    /// Ground-truth class.
    pub label: usize,
    /// The decoy class planted in this instance.
    pub decoy_label: usize,
}

/// Deterministic generator of task instances sharing one probe and one
/// prototype set.
#[derive(Debug, Clone)]
pub struct TaskGenerator {
    cfg: TaskConfig,
    probe: Vec<f32>,
    prototypes: Matrix,
}

impl TaskGenerator {
    /// Creates a generator with probe/prototypes drawn from `seed`.
    pub fn new(cfg: TaskConfig, seed: u64) -> Self {
        let mut rng = SplitMix64::new(seed ^ 0x7A5_0001);
        let probe = unit_vector(&mut rng, cfg.head_dim);
        let prototypes = Matrix::from_fn(cfg.num_classes, cfg.head_dim, |_, _| 0.0);
        let mut prototypes = prototypes;
        for c in 0..cfg.num_classes {
            let v = unit_vector(&mut rng, cfg.head_dim);
            prototypes.row_mut(c).copy_from_slice(&v);
        }
        Self {
            cfg,
            probe,
            prototypes,
        }
    }

    /// The task configuration.
    pub fn config(&self) -> &TaskConfig {
        &self.cfg
    }

    /// The class prototype matrix (`num_classes × head_dim`).
    pub fn prototypes(&self) -> &Matrix {
        &self.prototypes
    }

    /// Generates one instance of sequence length `seq_len`.
    ///
    /// # Panics
    ///
    /// Panics if `seq_len` cannot hold the evidence tokens plus the probe
    /// row.
    pub fn generate(&self, rng: &mut SplitMix64, seq_len: usize) -> TaskInstance {
        let c = &self.cfg;
        let d = c.head_dim;
        let need = 1 + c.evidence_true + c.evidence_decoy;
        assert!(
            seq_len >= need,
            "seq_len {seq_len} too short for {need} structured tokens"
        );
        let label = rng.next_below(c.num_classes);
        let decoy_label = (label + 1 + rng.next_below(c.num_classes - 1)) % c.num_classes;

        // Token roles: positions 1.. hold evidence at random slots.
        let mut positions: Vec<usize> = (1..seq_len).collect();
        rng.shuffle(&mut positions);
        let true_pos = &positions[..c.evidence_true];
        let decoy_pos = &positions[c.evidence_true..c.evidence_true + c.evidence_decoy];

        let mut q = rng.gaussian_matrix(seq_len, d, c.filler_scale);
        let mut k = rng.gaussian_matrix(seq_len, d, c.filler_scale);
        let mut v = Matrix::zeros(seq_len, d);

        // Row 0: the probe query.
        for (j, x) in q.row_mut(0).iter_mut().enumerate() {
            *x = 4.0 * self.probe[j] + 0.2 * rng.next_gaussian();
        }
        // Fillers: weak positive probe alignment (pre-selection pressure
        // that grows with sequence count) and weak random-class values.
        for i in 0..seq_len {
            let boost = c.filler_align * rng.next_gaussian().abs();
            for (j, x) in k.row_mut(i).iter_mut().enumerate() {
                *x += boost * self.probe[j];
            }
            let cls = rng.next_below(c.num_classes);
            let row = v.row_mut(i);
            for (j, x) in row.iter_mut().enumerate() {
                *x = c.filler_value_scale * self.prototypes[(cls, j)] + 0.3 * rng.next_gaussian();
            }
        }
        // True evidence: strongly probe-aligned keys, true-class values.
        for &pos in true_pos {
            for (j, x) in k.row_mut(pos).iter_mut().enumerate() {
                *x = c.align_true * self.probe[j] + c.key_noise * rng.next_gaussian();
            }
            self.set_value(&mut v, pos, label, rng);
        }
        // Decoys: sign-matched to the probe with small magnitude — perfect
        // 1-bit match, modest exact score — carrying the decoy class.
        for &pos in decoy_pos {
            for (j, x) in k.row_mut(pos).iter_mut().enumerate() {
                let sign = if self.probe[j] >= 0.0 { 1.0 } else { -1.0 };
                *x = c.decoy_magnitude * sign + 0.02 * rng.next_gaussian();
            }
            self.set_value(&mut v, pos, decoy_label, rng);
        }
        TaskInstance {
            q,
            k,
            v,
            label,
            decoy_label,
        }
    }

    fn set_value(&self, v: &mut Matrix, pos: usize, class: usize, rng: &mut SplitMix64) {
        let c = &self.cfg;
        for (j, x) in v.row_mut(pos).iter_mut().enumerate() {
            *x = self.prototypes[(class, j)] + c.value_noise * rng.next_gaussian();
        }
    }

    /// Classifies an attention output row by nearest prototype (dot
    /// product; prototypes are unit vectors).
    pub fn classify(&self, output_row: &[f32]) -> usize {
        let mut best = 0usize;
        let mut best_dot = f32::NEG_INFINITY;
        for cls in 0..self.cfg.num_classes {
            let dot: f32 = output_row
                .iter()
                .zip(self.prototypes.row(cls))
                .map(|(a, b)| a * b)
                .sum();
            if dot > best_dot {
                best_dot = dot;
                best = cls;
            }
        }
        best
    }

    /// Runs `op` on `instance` and returns the predicted class.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] if the operator fails.
    pub fn predict(
        &self,
        op: &dyn AttentionOp,
        instance: &TaskInstance,
    ) -> Result<usize, ModelError> {
        let out = op.attend(&instance.q, &instance.k, &instance.v)?;
        Ok(self.classify(out.row(0)))
    }
}

fn unit_vector(rng: &mut SplitMix64, d: usize) -> Vec<f32> {
    let mut v: Vec<f32> = (0..d).map(|_| rng.next_gaussian()).collect();
    let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt().max(1e-9);
    for x in &mut v {
        *x /= norm;
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use lat_model::attention::DenseAttention;

    fn generator() -> TaskGenerator {
        TaskGenerator::new(TaskConfig::default(), 1234)
    }

    #[test]
    fn instance_shapes_and_labels() {
        let g = generator();
        let mut rng = SplitMix64::new(1);
        let inst = g.generate(&mut rng, 100);
        assert_eq!(inst.q.shape(), (100, 64));
        assert_eq!(inst.k.shape(), (100, 64));
        assert_eq!(inst.v.shape(), (100, 64));
        assert!(inst.label < 4);
        assert_ne!(inst.label, inst.decoy_label);
    }

    #[test]
    #[should_panic(expected = "too short")]
    fn too_short_sequence_panics() {
        let g = generator();
        let mut rng = SplitMix64::new(2);
        let _ = g.generate(&mut rng, 5);
    }

    #[test]
    fn dense_attention_solves_the_task() {
        let g = generator();
        let mut rng = SplitMix64::new(3);
        let n = 120;
        let trials = 100;
        let mut correct = 0;
        for _ in 0..trials {
            let inst = g.generate(&mut rng, n);
            if g.predict(&DenseAttention, &inst).unwrap() == inst.label {
                correct += 1;
            }
        }
        let acc = correct as f64 / trials as f64;
        assert!(acc > 0.9, "dense accuracy {acc}");
    }

    #[test]
    fn dense_accuracy_holds_at_long_lengths() {
        let g = generator();
        let mut rng = SplitMix64::new(4);
        let trials = 50;
        let mut correct = 0;
        for _ in 0..trials {
            let inst = g.generate(&mut rng, 400);
            if g.predict(&DenseAttention, &inst).unwrap() == inst.label {
                correct += 1;
            }
        }
        let acc = correct as f64 / trials as f64;
        assert!(acc > 0.85, "dense accuracy at n=500: {acc}");
    }

    #[test]
    fn classify_picks_nearest_prototype() {
        let g = generator();
        for cls in 0..4 {
            let proto: Vec<f32> = g.prototypes().row(cls).to_vec();
            assert_eq!(g.classify(&proto), cls);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let g = generator();
        let a = g.generate(&mut SplitMix64::new(9), 80);
        let b = g.generate(&mut SplitMix64::new(9), 80);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_give_different_instances() {
        let g = generator();
        let a = g.generate(&mut SplitMix64::new(10), 80);
        let b = g.generate(&mut SplitMix64::new(11), 80);
        assert_ne!(a, b);
    }
}
