//! Accuracy evaluation harness: runs any attention operator over task
//! batches and reports accuracy, with anchoring helpers to present results
//! in the paper's F1/accuracy units.

use crate::datasets::DatasetSpec;
use crate::task::TaskGenerator;
use lat_model::attention::AttentionOp;
use lat_model::ModelError;
use lat_tensor::rng::SplitMix64;
use serde::{Deserialize, Serialize};

/// Result of one accuracy evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AccuracyReport {
    /// Fraction of correctly classified instances, in `[0, 1]`.
    pub accuracy: f64,
    /// Number of evaluated instances.
    pub trials: usize,
}

impl AccuracyReport {
    /// Accuracy in percent.
    pub fn percent(&self) -> f64 {
        self.accuracy * 100.0
    }
}

/// Evaluates `op` on `trials` instances with lengths drawn from `dataset`.
///
/// Sequence lengths are clamped below so every instance can hold the
/// structured tokens the task requires.
///
/// # Errors
///
/// Returns [`ModelError`] if the operator fails on any instance.
pub fn evaluate_on_dataset(
    op: &dyn AttentionOp,
    generator: &TaskGenerator,
    dataset: &DatasetSpec,
    trials: usize,
    seed: u64,
) -> Result<AccuracyReport, ModelError> {
    let mut rng = SplitMix64::new(seed);
    let min_len = 1 + generator.config().evidence_true + generator.config().evidence_decoy;
    let mut correct = 0usize;
    for _ in 0..trials {
        let len = dataset.sample_length(&mut rng).max(min_len);
        let inst = generator.generate(&mut rng, len);
        if generator.predict(op, &inst)? == inst.label {
            correct += 1;
        }
    }
    Ok(AccuracyReport {
        accuracy: correct as f64 / trials.max(1) as f64,
        trials,
    })
}

/// Presents a measured accuracy in the paper's units: the paper's baseline
/// score (F1 or accuracy, in points) minus the *drop* our sparse run shows
/// relative to our dense run.
///
/// `anchor_pts` is the published full-precision score (e.g. BERT-base on
/// SQuAD v1.1 ≈ 88.5 F1); `dense` and `sparse` are our measured task
/// accuracies in `[0, 1]`. Clamped to `[0, anchor]`.
pub fn anchored_score(anchor_pts: f64, dense: f64, sparse: f64) -> f64 {
    let drop_pts = (dense - sparse).max(0.0) * 100.0;
    (anchor_pts - drop_pts).clamp(0.0, anchor_pts)
}

/// Published baseline scores used as Fig. 6 anchors (model × dataset →
/// points). These are the well-known scores of the respective models; only
/// used for *presentation* of our measured drops.
pub fn baseline_anchor(model: &str, dataset: &str) -> f64 {
    let m = model.to_ascii_lowercase();
    let d = dataset.to_ascii_lowercase();
    let base: f64 = if d.contains("squad") {
        88.5
    } else if d.contains("rte") {
        66.4
    } else {
        // MRPC
        88.9
    };
    if m.contains("large") {
        base + 2.4
    } else if m.contains("distil") {
        base - 2.6
    } else if m.contains("roberta") {
        base + 1.6
    } else {
        base
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::TaskConfig;
    use lat_core::sparse::{SparseAttention, SparseAttentionConfig};
    use lat_model::attention::DenseAttention;

    fn generator() -> TaskGenerator {
        TaskGenerator::new(TaskConfig::default(), 777)
    }

    #[test]
    fn dense_beats_chance_on_all_datasets() {
        let g = generator();
        for spec in DatasetSpec::paper_datasets() {
            let r = evaluate_on_dataset(&DenseAttention, &g, &spec, 40, 42).unwrap();
            assert!(r.accuracy > 0.8, "{}: {}", spec.name, r.accuracy);
        }
    }

    #[test]
    fn sparse_k30_close_to_dense() {
        // The headline Fig. 6 claim: Top-30 loses < 2 points.
        let g = generator();
        let spec = DatasetSpec::mrpc();
        let dense = evaluate_on_dataset(&DenseAttention, &g, &spec, 120, 43)
            .unwrap()
            .accuracy;
        let sparse_op = SparseAttention::new(SparseAttentionConfig::paper_default());
        let sparse = evaluate_on_dataset(&sparse_op, &g, &spec, 120, 43)
            .unwrap()
            .accuracy;
        assert!(
            dense - sparse < 0.05,
            "k=30 drop too large: dense {dense} sparse {sparse}"
        );
    }

    #[test]
    fn sparse_k10_degrades_more_than_k50() {
        let g = generator();
        let spec = DatasetSpec::squad_v1();
        let k10 = SparseAttention::new(SparseAttentionConfig::paper_default().with_k(10));
        let k50 = SparseAttention::new(SparseAttentionConfig::paper_default().with_k(50));
        let a10 = evaluate_on_dataset(&k10, &g, &spec, 60, 44)
            .unwrap()
            .accuracy;
        let a50 = evaluate_on_dataset(&k50, &g, &spec, 60, 44)
            .unwrap()
            .accuracy;
        assert!(a50 > a10, "k=50 acc {a50} !> k=10 acc {a10}");
    }

    #[test]
    fn long_dataset_degrades_faster_at_small_k() {
        let g = generator();
        let k10 = SparseAttention::new(SparseAttentionConfig::paper_default().with_k(10));
        let squad = evaluate_on_dataset(&k10, &g, &DatasetSpec::squad_v1(), 60, 45)
            .unwrap()
            .accuracy;
        let mrpc = evaluate_on_dataset(&k10, &g, &DatasetSpec::mrpc(), 60, 45)
            .unwrap()
            .accuracy;
        assert!(
            mrpc >= squad,
            "short-sequence MRPC ({mrpc}) should resist small k better than SQuAD ({squad})"
        );
    }

    #[test]
    fn anchored_score_math() {
        assert_eq!(anchored_score(88.5, 0.95, 0.95), 88.5);
        assert!((anchored_score(88.5, 0.95, 0.93) - 86.5).abs() < 1e-9);
        // Improvement never exceeds the anchor.
        assert_eq!(anchored_score(88.5, 0.90, 0.95), 88.5);
    }

    #[test]
    fn anchors_are_distinct_by_model() {
        let squad_base = baseline_anchor("BERT-base", "SQuAD v1.1");
        let squad_large = baseline_anchor("BERT-large", "SQuAD v1.1");
        let squad_distil = baseline_anchor("DistilBERT", "SQuAD v1.1");
        assert!(squad_large > squad_base);
        assert!(squad_distil < squad_base);
        assert!(baseline_anchor("BERT-base", "RTE") < squad_base);
    }

    #[test]
    fn report_percent() {
        let r = AccuracyReport {
            accuracy: 0.925,
            trials: 200,
        };
        assert!((r.percent() - 92.5).abs() < 1e-9);
    }
}
