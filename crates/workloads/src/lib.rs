//! # lat-workloads
//!
//! Synthetic NLP workloads for the lat-fpga reproduction.
//!
//! The paper evaluates on SQuAD v1.1, RTE and MRPC. Without those datasets
//! (see DESIGN.md's substitution table) this crate provides:
//!
//! - [`datasets`]: sequence-*length* distributions matched to Table 1
//!   (avg/max per dataset) — lengths are all the hardware evaluation needs;
//! - [`prefix`]: trace-declared shared-prefix groups (chat-style system
//!   prompts) consumed by the disaggregated serving simulator's
//!   deterministic prefix cache;
//! - [`task`]: a synthetic *attention-retrieval* classification task whose
//!   labels are decided by which keys a query attends to. Full attention
//!   solves it near-perfectly by construction; truncating attention to the
//!   top-k candidates degrades accuracy through exactly the mechanism that
//!   degrades F1 in the paper (lost softmax mass on evidence tokens), which
//!   is what Fig. 6 sweeps;
//! - [`accuracy`]: evaluation helpers that run any
//!   [`lat_model::attention::AttentionOp`] over task batches and report
//!   accuracy, plus anchoring utilities to present results in the paper's
//!   F1/accuracy units.

#![warn(missing_docs)]

pub mod accuracy;
pub mod datasets;
pub mod prefix;
pub mod task;
