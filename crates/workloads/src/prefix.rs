//! Trace-declared shared-prefix groups for chat-style workloads.
//!
//! Chat and agent traffic reuses long system prompts: many requests share
//! a common prefix whose KV state a serving system can cache and skip
//! re-prefilling (RadixAttention-style prefix caching). This module
//! assigns each request of a trace to a *declared* prefix group — the
//! assignment is part of the workload, not something the engine infers —
//! so the disaggregated serving simulator
//! (`lat_hwsim::disagg`) can model cache hits deterministically.
//!
//! The assignment stream is an auxiliary RNG derived from the trace seed,
//! mirroring how decode traces draw output lengths: adding prefix groups
//! to a trace never perturbs its arrival process.

use lat_tensor::rng::SplitMix64;
use serde::{Deserialize, Serialize};

/// XOR'd into the trace seed to derive the prefix-assignment stream,
/// keeping it independent of both the primary (arrival) stream and the
/// decode auxiliary (output-length) stream.
const PREFIX_STREAM: u64 = 0xA076_1D64_78BD_642F;

/// One request's declared membership in a shared-prefix group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrefixGroup {
    /// Group identifier (`0..num_groups`); requests with equal `group`
    /// share one cacheable prefix.
    pub group: u64,
    /// Length of the shared prefix in tokens. A serving-side cache hit
    /// can skip at most this much of the request's prefill (engines clamp
    /// to the request's own prompt length).
    pub prefix_len: usize,
}

/// Workload-level description of prefix sharing: how many distinct
/// system prompts circulate, how long each is, and what fraction of
/// requests carry one.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PrefixProfile {
    /// Number of distinct shared prefixes in circulation (≥ 1).
    pub num_groups: usize,
    /// Shared-prefix length in tokens (≥ 1).
    pub prefix_len: usize,
    /// Fraction of requests that belong to *some* group; the rest have a
    /// unique, uncacheable prompt (`None` in the assignment).
    pub grouped_fraction: f64,
}

impl PrefixProfile {
    /// Panics unless the profile is well-formed.
    pub fn validate(&self) {
        assert!(self.num_groups >= 1, "prefix profile needs >= 1 group");
        assert!(self.prefix_len >= 1, "prefix length must be >= 1 token");
        assert!(
            (0.0..=1.0).contains(&self.grouped_fraction),
            "grouped_fraction outside [0, 1]"
        );
    }

    /// Deterministically assigns `n` requests to prefix groups. The
    /// result is aligned with a trace of the same length and seed:
    /// request `r` of the trace carries `assignments[r]`. Grouped
    /// requests draw a uniform group id; ungrouped requests get `None`.
    ///
    /// # Panics
    ///
    /// Panics if the profile is malformed (see
    /// [`PrefixProfile::validate`]).
    pub fn assign(&self, n: usize, seed: u64) -> Vec<Option<PrefixGroup>> {
        self.validate();
        let mut rng = SplitMix64::new(seed ^ PREFIX_STREAM);
        (0..n)
            .map(|_| {
                // Draw both values unconditionally so each request
                // consumes a fixed number of draws: request r's group
                // never depends on earlier grouped/ungrouped outcomes.
                let grouped = rng.next_f64() < self.grouped_fraction;
                let group = rng.next_below(self.num_groups) as u64;
                grouped.then_some(PrefixGroup {
                    group,
                    prefix_len: self.prefix_len,
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assignment_is_deterministic_and_aligned() {
        let p = PrefixProfile {
            num_groups: 4,
            prefix_len: 64,
            grouped_fraction: 0.75,
        };
        let a = p.assign(200, 42);
        let b = p.assign(200, 42);
        assert_eq!(a, b, "same seed must reproduce the same assignment");
        assert_eq!(a.len(), 200);
        assert!(a.iter().flatten().all(|g| g.group < 4));
        assert!(a.iter().flatten().all(|g| g.prefix_len == 64));
        // 75% grouped with 200 draws: both populations must be present.
        assert!(a.iter().any(|g| g.is_some()) && a.iter().any(|g| g.is_none()));
        assert_ne!(a, p.assign(200, 43), "seed must matter");
    }

    #[test]
    fn fraction_extremes_are_total() {
        let all = PrefixProfile {
            num_groups: 2,
            prefix_len: 32,
            grouped_fraction: 1.0,
        };
        assert!(all.assign(50, 7).iter().all(|g| g.is_some()));
        let none = PrefixProfile {
            grouped_fraction: 0.0,
            ..all
        };
        assert!(none.assign(50, 7).iter().all(|g| g.is_none()));
    }

    #[test]
    #[should_panic(expected = "grouped_fraction")]
    fn out_of_range_fraction_rejected() {
        PrefixProfile {
            num_groups: 1,
            prefix_len: 8,
            grouped_fraction: 1.5,
        }
        .assign(1, 0);
    }

    /// Fixed draws per request: truncating the assignment is a prefix of
    /// the longer one (stability under trace growth).
    #[test]
    fn assignment_is_prefix_stable() {
        let p = PrefixProfile {
            num_groups: 3,
            prefix_len: 16,
            grouped_fraction: 0.5,
        };
        let long = p.assign(120, 9);
        let short = p.assign(40, 9);
        assert_eq!(&long[..40], &short[..]);
    }
}
