//! Dataset sequence-length distributions (paper Table 1).
//!
//! | Dataset | Avg | Max | Max/Avg |
//! |---|---|---|---|
//! | SQuAD v1.1 | 177 | 821 | 4.6 |
//! | RTE | 68 | 253 | 3.7 |
//! | MRPC | 53 | 86 | 1.6 |
//!
//! Lengths are sampled from a truncated shifted-exponential distribution
//! calibrated to hit the dataset's average, with the maximum as a hard
//! clip — the right-skewed shape real NLP length histograms have, and the
//! property that drives the paper's padding-overhead analysis.

use lat_tensor::rng::SplitMix64;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A source of sequence lengths for traffic generation.
///
/// Both a single [`DatasetSpec`] and a [`MixedWorkload`] can feed a request
/// stream (e.g. the serving/fleet simulators in `lat-hwsim`), so consumers
/// take `impl LengthSampler` instead of hard-coding one of the two.
pub trait LengthSampler {
    /// Samples one sequence length.
    fn sample_length(&self, rng: &mut SplitMix64) -> usize;

    /// Display label for reports.
    fn label(&self) -> String;
}

impl LengthSampler for DatasetSpec {
    fn sample_length(&self, rng: &mut SplitMix64) -> usize {
        DatasetSpec::sample_length(self, rng)
    }

    fn label(&self) -> String {
        self.name.clone()
    }
}

impl LengthSampler for MixedWorkload {
    fn sample_length(&self, rng: &mut SplitMix64) -> usize {
        MixedWorkload::sample_length(self, rng)
    }

    fn label(&self) -> String {
        let names: Vec<String> = self
            .components
            .iter()
            .map(|(d, _)| d.name.clone())
            .collect();
        format!("mix({})", names.join("+"))
    }
}

/// A dataset's sequence-length statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetSpec {
    /// Dataset name as printed in the paper.
    pub name: String,
    /// Minimum sequence length.
    pub min_len: usize,
    /// Average sequence length (Table 1).
    pub avg_len: usize,
    /// Maximum sequence length (Table 1).
    pub max_len: usize,
}

impl DatasetSpec {
    /// SQuAD v1.1: avg 177, max 821.
    pub fn squad_v1() -> Self {
        Self {
            name: "SQuAD v1.1".into(),
            min_len: 40,
            avg_len: 177,
            max_len: 821,
        }
    }

    /// RTE: avg 68, max 253.
    pub fn rte() -> Self {
        Self {
            name: "RTE".into(),
            min_len: 15,
            avg_len: 68,
            max_len: 253,
        }
    }

    /// MRPC: avg 53, max 86.
    pub fn mrpc() -> Self {
        Self {
            name: "MRPC".into(),
            min_len: 25,
            avg_len: 53,
            max_len: 86,
        }
    }

    /// SQuAD v2.0: avg 171, max 975 (§1 — the example motivating the 5.7×
    /// padding overhead).
    pub fn squad_v2() -> Self {
        Self {
            name: "SQuAD v2.0".into(),
            min_len: 40,
            avg_len: 171,
            max_len: 975,
        }
    }

    /// WikiText-2 as used for the Fig. 1(c) profile (sequences around 128
    /// tokens; the paper measures at exactly 128).
    pub fn wikitext2() -> Self {
        Self {
            name: "WikiText-2".into(),
            min_len: 64,
            avg_len: 128,
            max_len: 512,
        }
    }

    /// The three evaluation datasets in Table 1 order.
    pub fn paper_datasets() -> Vec<DatasetSpec> {
        vec![Self::squad_v1(), Self::rte(), Self::mrpc()]
    }

    /// All datasets the paper mentions (Table 1 + SQuAD v2.0 + WikiText-2).
    pub fn all_datasets() -> Vec<DatasetSpec> {
        vec![
            Self::squad_v1(),
            Self::rte(),
            Self::mrpc(),
            Self::squad_v2(),
            Self::wikitext2(),
        ]
    }

    /// The padding overhead `max/avg` the paper reports per dataset.
    pub fn max_over_avg(&self) -> f64 {
        self.max_len as f64 / self.avg_len as f64
    }

    /// Samples one sequence length.
    ///
    /// Shifted exponential with rate tuned so the *truncated* mean lands on
    /// `avg_len`, clipped to `[min_len, max_len]`.
    pub fn sample_length(&self, rng: &mut SplitMix64) -> usize {
        let scale = self.calibrated_scale();
        let u = rng.next_f64().clamp(1e-12, 1.0 - 1e-12);
        let x = self.min_len as f64 - scale * (1.0 - u).ln();
        (x.round() as usize).clamp(self.min_len, self.max_len)
    }

    /// Samples a batch of lengths.
    pub fn sample_batch(&self, rng: &mut SplitMix64, batch_size: usize) -> Vec<usize> {
        (0..batch_size).map(|_| self.sample_length(rng)).collect()
    }

    /// Samples `n_batches` batches of `batch_size` lengths each.
    pub fn sample_batches(
        &self,
        rng: &mut SplitMix64,
        batch_size: usize,
        n_batches: usize,
    ) -> Vec<Vec<usize>> {
        (0..n_batches)
            .map(|_| self.sample_batch(rng, batch_size))
            .collect()
    }

    /// The output-length distribution paired with this dataset for
    /// generative (decoder) workloads: a continuation whose length mirrors
    /// the task's own profile (same average and maximum, 1-token floor),
    /// keeping the right-skewed shape — and with it the paper's `max/avg`
    /// skew — via the same truncated-exponential sampler. The skew is what
    /// makes iteration-level batching matter: a static batch strands its
    /// slots for `max/avg` × the typical service time.
    pub fn decode_output(&self) -> DatasetSpec {
        DatasetSpec {
            name: format!("{} decode", self.name),
            min_len: 1,
            avg_len: self.avg_len,
            max_len: self.max_len,
        }
    }

    /// Exponential scale whose `[min,max]`-truncated mean equals `avg_len`,
    /// found by bisection (the truncation pulls the mean below `min+scale`,
    /// so the naive `scale = avg - min` undershoots).
    fn calibrated_scale(&self) -> f64 {
        let target = self.avg_len as f64;
        let min = self.min_len as f64;
        let max = self.max_len as f64;
        let truncated_mean = |s: f64| -> f64 {
            // E[min(min + Exp(s), max)] = min + s(1 - e^{-(max-min)/s}).
            min + s * (1.0 - (-(max - min) / s).exp())
        };
        let (mut lo, mut hi) = (1.0f64, 16.0 * (max - min).max(1.0));
        for _ in 0..80 {
            let mid = 0.5 * (lo + hi);
            if truncated_mean(mid) < target {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        0.5 * (lo + hi)
    }
}

/// A traffic mix over several datasets (multi-tenant serving: one
/// accelerator fronting several tasks with different length profiles).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MixedWorkload {
    components: Vec<(DatasetSpec, f64)>,
}

impl MixedWorkload {
    /// Builds a mix from `(dataset, weight)` pairs; weights are
    /// normalized internally.
    ///
    /// # Panics
    ///
    /// Panics if `components` is empty or any weight is non-positive.
    pub fn new(components: Vec<(DatasetSpec, f64)>) -> Self {
        assert!(!components.is_empty(), "empty workload mix");
        assert!(
            components.iter().all(|&(_, w)| w > 0.0),
            "weights must be positive"
        );
        Self { components }
    }

    /// An equal-weight mix of the three Table 1 datasets.
    pub fn paper_mix() -> Self {
        Self::new(
            DatasetSpec::paper_datasets()
                .into_iter()
                .map(|d| (d, 1.0))
                .collect(),
        )
    }

    /// The mix's output-length distribution for generative workloads:
    /// every component replaced by its [`DatasetSpec::decode_output`],
    /// weights unchanged.
    pub fn decode_output(&self) -> MixedWorkload {
        MixedWorkload {
            components: self
                .components
                .iter()
                .map(|(d, w)| (d.decode_output(), *w))
                .collect(),
        }
    }

    /// The component datasets and normalized weights.
    pub fn components(&self) -> Vec<(&DatasetSpec, f64)> {
        let total: f64 = self.components.iter().map(|&(_, w)| w).sum();
        self.components
            .iter()
            .map(|(d, w)| (d, w / total))
            .collect()
    }

    /// Samples one length: picks a component by weight, then samples from
    /// it.
    pub fn sample_length(&self, rng: &mut SplitMix64) -> usize {
        let total: f64 = self.components.iter().map(|&(_, w)| w).sum();
        let mut x = rng.next_f64() * total;
        for (d, w) in &self.components {
            if x < *w {
                return d.sample_length(rng);
            }
            x -= w;
        }
        self.components
            .last()
            .expect("non-empty mix")
            .0
            .sample_length(rng)
    }

    /// Samples a batch of lengths from the mix.
    pub fn sample_batch(&self, rng: &mut SplitMix64, batch_size: usize) -> Vec<usize> {
        (0..batch_size).map(|_| self.sample_length(rng)).collect()
    }

    /// Weighted expected average length of the mix.
    pub fn expected_avg(&self) -> f64 {
        self.components()
            .iter()
            .map(|(d, w)| d.avg_len as f64 * w)
            .sum()
    }
}

impl fmt::Display for DatasetSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (avg {}, max {}, max/avg {:.1})",
            self.name,
            self.avg_len,
            self.max_len,
            self.max_over_avg()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_constants() {
        let sq = DatasetSpec::squad_v1();
        assert_eq!((sq.avg_len, sq.max_len), (177, 821));
        assert!((sq.max_over_avg() - 4.6).abs() < 0.1);
        let rte = DatasetSpec::rte();
        assert_eq!((rte.avg_len, rte.max_len), (68, 253));
        assert!((rte.max_over_avg() - 3.7).abs() < 0.1);
        let mrpc = DatasetSpec::mrpc();
        assert_eq!((mrpc.avg_len, mrpc.max_len), (53, 86));
        assert!((mrpc.max_over_avg() - 1.6).abs() < 0.1);
    }

    #[test]
    fn squad_v2_matches_intro_stats() {
        let v2 = DatasetSpec::squad_v2();
        assert_eq!((v2.avg_len, v2.max_len), (171, 975));
        // §1: "it causes 5.7× computational and memory bandwidth overhead".
        assert!((v2.max_over_avg() - 5.7).abs() < 0.1);
    }

    #[test]
    fn all_datasets_superset_of_paper() {
        let all = DatasetSpec::all_datasets();
        assert_eq!(all.len(), 5);
        for p in DatasetSpec::paper_datasets() {
            assert!(all.iter().any(|d| d.name == p.name));
        }
    }

    #[test]
    fn sampled_lengths_in_bounds() {
        let mut rng = SplitMix64::new(61);
        for spec in DatasetSpec::all_datasets() {
            for _ in 0..2000 {
                let l = spec.sample_length(&mut rng);
                assert!(l >= spec.min_len && l <= spec.max_len, "{}: {l}", spec.name);
            }
        }
    }

    #[test]
    fn sampled_mean_matches_table_average() {
        let mut rng = SplitMix64::new(62);
        for spec in DatasetSpec::paper_datasets() {
            let n = 20_000;
            let sum: usize = (0..n).map(|_| spec.sample_length(&mut rng)).sum();
            let mean = sum as f64 / n as f64;
            let err = (mean - spec.avg_len as f64).abs() / spec.avg_len as f64;
            assert!(
                err < 0.06,
                "{}: sampled mean {mean:.1} vs target {}",
                spec.name,
                spec.avg_len
            );
        }
    }

    #[test]
    fn distribution_is_right_skewed() {
        // Median below mean for all three datasets.
        let mut rng = SplitMix64::new(63);
        for spec in DatasetSpec::paper_datasets() {
            let mut xs: Vec<usize> = (0..4001).map(|_| spec.sample_length(&mut rng)).collect();
            xs.sort_unstable();
            let median = xs[xs.len() / 2] as f64;
            let mean = xs.iter().sum::<usize>() as f64 / xs.len() as f64;
            assert!(
                median <= mean,
                "{}: median {median} > mean {mean}",
                spec.name
            );
        }
    }

    #[test]
    fn batches_have_requested_shape() {
        let mut rng = SplitMix64::new(64);
        let spec = DatasetSpec::rte();
        let batches = spec.sample_batches(&mut rng, 16, 5);
        assert_eq!(batches.len(), 5);
        assert!(batches.iter().all(|b| b.len() == 16));
    }

    #[test]
    fn deterministic_for_seed() {
        let spec = DatasetSpec::squad_v1();
        let a = spec.sample_batch(&mut SplitMix64::new(7), 32);
        let b = spec.sample_batch(&mut SplitMix64::new(7), 32);
        assert_eq!(a, b);
    }

    #[test]
    fn display_contains_ratio() {
        assert!(DatasetSpec::squad_v1().to_string().contains("4.6"));
    }

    #[test]
    fn mixed_workload_bounds_and_mean() {
        let mix = MixedWorkload::paper_mix();
        let mut rng = SplitMix64::new(65);
        let n = 12_000;
        let mut sum = 0usize;
        let global_min = 15; // RTE min
        let global_max = 821; // SQuAD max
        for _ in 0..n {
            let l = mix.sample_length(&mut rng);
            assert!((global_min..=global_max).contains(&l));
            sum += l;
        }
        let mean = sum as f64 / n as f64;
        let expected = mix.expected_avg();
        assert!(
            (mean - expected).abs() / expected < 0.08,
            "mix mean {mean:.1} vs expected {expected:.1}"
        );
    }

    #[test]
    fn mixed_weights_normalized() {
        let mix = MixedWorkload::new(vec![(DatasetSpec::rte(), 3.0), (DatasetSpec::mrpc(), 1.0)]);
        let comps = mix.components();
        assert!((comps[0].1 - 0.75).abs() < 1e-12);
        assert!((comps[1].1 - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty workload mix")]
    fn empty_mix_panics() {
        let _ = MixedWorkload::new(vec![]);
    }

    #[test]
    fn length_sampler_trait_matches_inherent_methods() {
        // The trait must be a pure forwarding layer: same rng stream, same
        // lengths as the inherent methods.
        let spec = DatasetSpec::rte();
        let mix = MixedWorkload::paper_mix();
        let (mut a, mut b) = (SplitMix64::new(11), SplitMix64::new(11));
        for _ in 0..200 {
            assert_eq!(
                LengthSampler::sample_length(&spec, &mut a),
                spec.sample_length(&mut b)
            );
        }
        let (mut a, mut b) = (SplitMix64::new(12), SplitMix64::new(12));
        for _ in 0..200 {
            assert_eq!(
                LengthSampler::sample_length(&mix, &mut a),
                mix.sample_length(&mut b)
            );
        }
        assert_eq!(LengthSampler::label(&spec), "RTE");
        assert!(LengthSampler::label(&mix).contains("RTE"));
    }

    #[test]
    fn decode_output_profiles_are_valid_and_short() {
        let mut rng = SplitMix64::new(67);
        for spec in DatasetSpec::all_datasets() {
            let out = spec.decode_output();
            assert!(out.min_len == 1, "{}", out.name);
            assert!(
                out.min_len < out.avg_len && out.avg_len < out.max_len,
                "{out}"
            );
            assert!(out.avg_len <= spec.avg_len, "{}", out.name);
            assert!(out.name.contains(&spec.name));
            // Sampler stays in bounds and near the calibrated mean.
            let n = 8000;
            let mut sum = 0usize;
            for _ in 0..n {
                let l = out.sample_length(&mut rng);
                assert!((out.min_len..=out.max_len).contains(&l));
                sum += l;
            }
            let mean = sum as f64 / n as f64;
            let err = (mean - out.avg_len as f64).abs() / out.avg_len as f64;
            assert!(err < 0.1, "{}: mean {mean:.1} vs {}", out.name, out.avg_len);
        }
    }

    #[test]
    fn mix_decode_output_maps_components_and_keeps_weights() {
        let mix = MixedWorkload::new(vec![(DatasetSpec::rte(), 3.0), (DatasetSpec::mrpc(), 1.0)]);
        let out = mix.decode_output();
        let comps = out.components();
        assert_eq!(comps.len(), 2);
        assert!((comps[0].1 - 0.75).abs() < 1e-12);
        assert_eq!(comps[0].0.name, "RTE decode");
        assert_eq!(comps[1].0.name, "MRPC decode");
        // The mirrored profile keeps each component's average length.
        assert_eq!(out.expected_avg(), mix.expected_avg());
    }

    #[test]
    fn skewed_mix_prefers_heavy_component() {
        // A mix dominated by MRPC should have a mean near MRPC's.
        let mix = MixedWorkload::new(vec![
            (DatasetSpec::mrpc(), 9.0),
            (DatasetSpec::squad_v1(), 1.0),
        ]);
        let mut rng = SplitMix64::new(66);
        let mean: f64 = (0..8000)
            .map(|_| mix.sample_length(&mut rng) as f64)
            .sum::<f64>()
            / 8000.0;
        assert!(mean < 100.0, "mean {mean} too SQuAD-like");
    }
}
