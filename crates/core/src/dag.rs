//! Generic operator-DAG scheduling (the full-generality form of
//! Algorithm 1's priority machinery).
//!
//! The encoder chain in [`crate::stage_alloc`] is the production path; this
//! module handles arbitrary operator DAGs — in particular the *multi-head*
//! encoder graph, where the per-head attention branches run in parallel
//! between the QKV projection and the output projection (Fig. 2(a) shows
//! head₁/head₂ hardware operating side by side).
//!
//! Provided here:
//!
//! - [`TaskDag`]: a weighted DAG with cycle detection;
//! - Eq. 1 critical-path priorities over arbitrary DAGs;
//! - priority **list scheduling** onto `m` identical execution units — the
//!   intra-stage analogue of the coarse pipeline: once Algorithm 1 fixes
//!   the stage boundaries, the operators inside a stage are issued to the
//!   stage's parallel hardware units in priority order.

use lat_model::config::ModelConfig;
use lat_model::graph::{AttentionMode, OpKind, OperatorGraph};
use serde::{Deserialize, Serialize};

/// One node of a task DAG.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DagNode {
    /// Display name.
    pub name: String,
    /// Execution weight (cycles or FLOPs — any consistent unit).
    pub weight: u64,
}

/// A weighted directed acyclic graph of operators.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskDag {
    nodes: Vec<DagNode>,
    edges: Vec<(usize, usize)>,
}

/// Error returned when a [`TaskDag`] is malformed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DagError {
    /// An edge references a node index that does not exist.
    BadEdge(usize, usize),
    /// The graph contains a cycle.
    Cyclic,
}

impl std::fmt::Display for DagError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DagError::BadEdge(a, b) => write!(f, "edge ({a}, {b}) references a missing node"),
            DagError::Cyclic => write!(f, "graph contains a cycle"),
        }
    }
}

impl std::error::Error for DagError {}

impl TaskDag {
    /// Builds a DAG, validating edges and acyclicity.
    ///
    /// # Errors
    ///
    /// Returns [`DagError::BadEdge`] for out-of-range endpoints and
    /// [`DagError::Cyclic`] if a topological order does not exist.
    pub fn new(nodes: Vec<DagNode>, edges: Vec<(usize, usize)>) -> Result<Self, DagError> {
        let n = nodes.len();
        for &(a, b) in &edges {
            if a >= n || b >= n {
                return Err(DagError::BadEdge(a, b));
            }
        }
        let dag = Self { nodes, edges };
        dag.topological_order().ok_or(DagError::Cyclic)?;
        Ok(dag)
    }

    /// The nodes.
    pub fn nodes(&self) -> &[DagNode] {
        &self.nodes
    }

    /// The edges.
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the DAG has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Builds the multi-head encoder DAG for `cfg` at sequence length `s`:
    /// the per-head attention pipeline is split into `num_heads` parallel
    /// branches, each carrying `1/h` of the corresponding operator weight.
    pub fn encoder_multihead(cfg: &ModelConfig, s: usize, mode: AttentionMode) -> Self {
        let graph = OperatorGraph::encoder(cfg);
        let h = cfg.num_heads;
        let w = |kind: OpKind| graph.flops(kind, s, mode);
        let mut nodes = Vec::new();
        let mut edges = Vec::new();

        let qkv = nodes.len();
        nodes.push(DagNode {
            name: "QKV-Linear".into(),
            weight: w(OpKind::QkvLinear),
        });

        let mut head_tails = Vec::with_capacity(h);
        let per_head = [
            OpKind::AttnScores,
            OpKind::Scale,
            OpKind::Mask,
            OpKind::Softmax,
            OpKind::AttnApply,
        ];
        for head in 0..h {
            let mut prev = qkv;
            for kind in per_head {
                let id = nodes.len();
                nodes.push(DagNode {
                    name: format!("{}[h{head}]", kind.label()),
                    weight: (w(kind) / h as u64).max(1),
                });
                edges.push((prev, id));
                prev = id;
            }
            head_tails.push(prev);
        }

        let tail_kinds = [
            OpKind::OutLinear,
            OpKind::AddNorm1,
            OpKind::Ffn1,
            OpKind::Gelu,
            OpKind::Ffn2,
            OpKind::AddNorm2,
        ];
        let mut prev_tail: Option<usize> = None;
        for kind in tail_kinds {
            let id = nodes.len();
            nodes.push(DagNode {
                name: kind.label().into(),
                weight: w(kind),
            });
            match prev_tail {
                None => {
                    for &t in &head_tails {
                        edges.push((t, id));
                    }
                }
                Some(p) => edges.push((p, id)),
            }
            prev_tail = Some(id);
        }

        Self { nodes, edges }
    }

    /// Direct successors of node `id`.
    pub fn successors(&self, id: usize) -> Vec<usize> {
        self.edges
            .iter()
            .filter(|&&(a, _)| a == id)
            .map(|&(_, b)| b)
            .collect()
    }

    /// Direct predecessors of node `id`.
    pub fn predecessors(&self, id: usize) -> Vec<usize> {
        self.edges
            .iter()
            .filter(|&&(_, b)| b == id)
            .map(|&(a, _)| a)
            .collect()
    }

    /// Kahn topological order; `None` if cyclic.
    pub fn topological_order(&self) -> Option<Vec<usize>> {
        let n = self.nodes.len();
        let mut indeg = vec![0usize; n];
        for &(_, b) in &self.edges {
            indeg[b] += 1;
        }
        let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(&id) = queue.first() {
            queue.remove(0);
            order.push(id);
            for succ in self.successors(id) {
                indeg[succ] -= 1;
                if indeg[succ] == 0 {
                    queue.push(succ);
                }
            }
        }
        (order.len() == n).then_some(order)
    }

    /// Eq. 1 critical-path priorities:
    /// `P(v) = W(v) + max_{u ∈ Succ(v)} P(u)`.
    pub fn priorities(&self) -> Vec<u64> {
        let order = self.topological_order().expect("validated acyclic");
        let mut p = vec![0u64; self.nodes.len()];
        for &id in order.iter().rev() {
            let succ_max = self
                .successors(id)
                .into_iter()
                .map(|j| p[j])
                .max()
                .unwrap_or(0);
            p[id] = self.nodes[id].weight + succ_max;
        }
        p
    }

    /// Length of the critical path (max priority over source nodes).
    pub fn critical_path(&self) -> u64 {
        self.priorities().into_iter().max().unwrap_or(0)
    }

    /// Total weight of all nodes.
    pub fn total_weight(&self) -> u64 {
        self.nodes.iter().map(|n| n.weight).sum()
    }

    /// Priority list scheduling onto `units` identical execution units:
    /// ready nodes are issued in decreasing Eq. 1 priority to the earliest-
    /// free unit. Returns the schedule with per-node start/end times.
    ///
    /// # Panics
    ///
    /// Panics if `units == 0`.
    pub fn list_schedule(&self, units: usize) -> DagSchedule {
        assert!(units > 0, "need at least one execution unit");
        let n = self.nodes.len();
        let prio = self.priorities();
        let mut indeg = vec![0usize; n];
        for &(_, b) in &self.edges {
            indeg[b] += 1;
        }
        let mut ready: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut unit_free = vec![0u64; units];
        let mut node_done = vec![0u64; n];
        let mut starts = vec![0u64; n];
        let mut assigned_unit = vec![0usize; n];
        let mut scheduled = 0usize;

        while scheduled < n {
            // Highest-priority ready node (ties by id).
            ready.sort_by(|&a, &b| prio[b].cmp(&prio[a]).then(a.cmp(&b)));
            let id = ready.remove(0);
            // Earliest-free unit, respecting predecessors.
            let ready_at = self
                .predecessors(id)
                .into_iter()
                .map(|p| node_done[p])
                .max()
                .unwrap_or(0);
            let (unit, &free) = unit_free
                .iter()
                .enumerate()
                .min_by_key(|&(_, &f)| f)
                .expect("units > 0");
            let start = free.max(ready_at);
            let end = start + self.nodes[id].weight;
            unit_free[unit] = end;
            node_done[id] = end;
            starts[id] = start;
            assigned_unit[id] = unit;
            scheduled += 1;
            for succ in self.successors(id) {
                indeg[succ] -= 1;
                if indeg[succ] == 0 {
                    ready.push(succ);
                }
            }
        }

        let makespan = node_done.iter().copied().max().unwrap_or(0);
        DagSchedule {
            starts,
            ends: node_done,
            units: assigned_unit,
            makespan,
        }
    }
}

/// Result of [`TaskDag::list_schedule`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DagSchedule {
    /// Start time per node.
    pub starts: Vec<u64>,
    /// End time per node.
    pub ends: Vec<u64>,
    /// Execution unit per node.
    pub units: Vec<usize>,
    /// Completion time of the whole DAG.
    pub makespan: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> TaskDag {
        // a → {b, c} → d with weights 1, 2, 3, 4.
        TaskDag::new(
            vec![
                DagNode {
                    name: "a".into(),
                    weight: 1,
                },
                DagNode {
                    name: "b".into(),
                    weight: 2,
                },
                DagNode {
                    name: "c".into(),
                    weight: 3,
                },
                DagNode {
                    name: "d".into(),
                    weight: 4,
                },
            ],
            vec![(0, 1), (0, 2), (1, 3), (2, 3)],
        )
        .expect("valid dag")
    }

    #[test]
    fn rejects_bad_edges_and_cycles() {
        let nodes = vec![
            DagNode {
                name: "a".into(),
                weight: 1,
            },
            DagNode {
                name: "b".into(),
                weight: 1,
            },
        ];
        assert_eq!(
            TaskDag::new(nodes.clone(), vec![(0, 5)]).unwrap_err(),
            DagError::BadEdge(0, 5)
        );
        assert_eq!(
            TaskDag::new(nodes, vec![(0, 1), (1, 0)]).unwrap_err(),
            DagError::Cyclic
        );
    }

    #[test]
    fn diamond_priorities_follow_eq1() {
        let d = diamond();
        let p = d.priorities();
        // P(d)=4; P(b)=2+4=6; P(c)=3+4=7; P(a)=1+max(6,7)=8.
        assert_eq!(p, vec![8, 6, 7, 4]);
        assert_eq!(d.critical_path(), 8);
    }

    #[test]
    fn list_schedule_single_unit_is_serial() {
        let d = diamond();
        let s = d.list_schedule(1);
        assert_eq!(s.makespan, d.total_weight());
    }

    #[test]
    fn list_schedule_two_units_overlaps_branches() {
        let d = diamond();
        let s = d.list_schedule(2);
        // a(1) then b,c in parallel (max 3) then d(4) = 8 = critical path.
        assert_eq!(s.makespan, 8);
        assert!(s.makespan >= d.critical_path());
    }

    #[test]
    fn schedule_respects_dependencies() {
        let cfg = ModelConfig::tiny();
        let dag = TaskDag::encoder_multihead(&cfg, 64, AttentionMode::paper_sparse());
        for units in [1usize, 2, 4, 8] {
            let s = dag.list_schedule(units);
            for &(a, b) in dag.edges() {
                assert!(s.ends[a] <= s.starts[b], "edge ({a},{b}) violated");
            }
            assert!(s.makespan >= dag.critical_path());
        }
    }

    #[test]
    fn more_units_never_hurt() {
        let cfg = ModelConfig::bert_base();
        let dag = TaskDag::encoder_multihead(&cfg, 177, AttentionMode::paper_sparse());
        let mut prev = u64::MAX;
        for units in [1usize, 2, 4, 12] {
            let m = dag.list_schedule(units).makespan;
            assert!(m <= prev, "units={units}: {m} > {prev}");
            prev = m;
        }
    }

    #[test]
    fn multihead_dag_shape() {
        let cfg = ModelConfig::tiny(); // 4 heads
        let dag = TaskDag::encoder_multihead(&cfg, 64, AttentionMode::Dense);
        // 1 QKV + 4 heads × 5 ops + 6 tail ops.
        assert_eq!(dag.len(), 1 + 4 * 5 + 6);
        // QKV has one successor per head.
        assert_eq!(dag.successors(0).len(), 4);
        // OutLinear (first tail node) has one predecessor per head.
        let out_linear = 1 + 4 * 5;
        assert_eq!(dag.predecessors(out_linear).len(), 4);
    }

    #[test]
    fn multihead_total_weight_close_to_chain() {
        // Splitting per head preserves total work (up to per-head rounding).
        let cfg = ModelConfig::bert_base();
        let graph = OperatorGraph::encoder(&cfg);
        let mode = AttentionMode::paper_sparse();
        let dag = TaskDag::encoder_multihead(&cfg, 177, mode);
        let chain = graph.total_flops(177, mode);
        let ratio = dag.total_weight() as f64 / chain as f64;
        assert!((0.99..1.01).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn head_parallelism_shortens_critical_path() {
        // The multi-head DAG's critical path is shorter than the serial
        // chain's total work — the parallelism Fig. 2(a)'s replicated head
        // hardware exploits.
        let cfg = ModelConfig::bert_base();
        let mode = AttentionMode::Dense;
        let dag = TaskDag::encoder_multihead(&cfg, 177, mode);
        assert!(dag.critical_path() < dag.total_weight());
    }

    #[test]
    fn chain_priorities_match_stage_alloc() {
        // A chain built as a TaskDag reproduces stage_alloc::priorities.
        let cfg = ModelConfig::bert_base();
        let graph = OperatorGraph::encoder(&cfg);
        let mode = AttentionMode::paper_sparse();
        let nodes: Vec<DagNode> = graph
            .operators()
            .iter()
            .map(|o| DagNode {
                name: o.kind.label().into(),
                weight: graph.flops(o.kind, 177, mode),
            })
            .collect();
        let edges: Vec<(usize, usize)> = (0..nodes.len() - 1).map(|i| (i, i + 1)).collect();
        let dag = TaskDag::new(nodes, edges).expect("chain is acyclic");
        assert_eq!(
            dag.priorities(),
            crate::stage_alloc::priorities(&graph, 177, mode)
        );
    }
}
