//! Software batch runtime: the algorithm-side counterpart of the
//! length-aware hardware pipeline.
//!
//! §4.2: "The batch inputs are sorted and processed according to the
//! decreasing order of length". [`BatchRunner`] reproduces that flow in
//! software: it sorts a batch of variable-length sequences by decreasing
//! length, runs each through the encoder with the configured attention
//! operator — **no padding anywhere** — and returns outputs in the
//! caller's original order together with work accounting.

use crate::sparse::{SparseAttention, SparseAttentionConfig};
use lat_model::attention::DenseAttention;
use lat_model::encoder::Encoder;
use lat_model::ModelError;
use lat_tensor::Matrix;

/// Which attention operator the runner uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunnerAttention {
    /// Dense `O(n²)` reference.
    Dense,
    /// The paper's sparse operator with the given configuration.
    Sparse(SparseAttentionConfig),
}

/// Output of a batch run.
#[derive(Debug, Clone)]
pub struct BatchOutput {
    /// Encoder outputs, in the same order as the inputs.
    pub outputs: Vec<Matrix>,
    /// Total tokens processed (no padding is ever added).
    pub tokens: u64,
    /// The decreasing-length processing order used (indices into the
    /// original batch).
    pub processing_order: Vec<usize>,
}

/// Runs batches of variable-length sequences through an encoder in
/// decreasing-length order.
///
/// # Example
///
/// ```
/// use lat_core::runtime::{BatchRunner, RunnerAttention};
/// use lat_core::sparse::SparseAttentionConfig;
/// use lat_model::{config::ModelConfig, encoder::Encoder};
/// use lat_tensor::rng::SplitMix64;
///
/// # fn main() -> Result<(), lat_model::ModelError> {
/// let cfg = ModelConfig::tiny();
/// let mut rng = SplitMix64::new(1);
/// let encoder = Encoder::random(&cfg, &mut rng);
/// let runner = BatchRunner::new(
///     encoder,
///     RunnerAttention::Sparse(SparseAttentionConfig::paper_default()),
/// );
/// let batch = vec![
///     rng.gaussian_matrix(40, cfg.hidden_dim, 1.0),
///     rng.gaussian_matrix(25, cfg.hidden_dim, 1.0),
/// ];
/// let out = runner.run(&batch)?;
/// assert_eq!(out.outputs.len(), 2);
/// assert_eq!(out.outputs[1].rows(), 25); // original order preserved
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct BatchRunner {
    encoder: Encoder,
    attention: RunnerAttention,
}

impl BatchRunner {
    /// Creates a runner over `encoder` using `attention`.
    pub fn new(encoder: Encoder, attention: RunnerAttention) -> Self {
        Self { encoder, attention }
    }

    /// The encoder in use.
    pub fn encoder(&self) -> &Encoder {
        &self.encoder
    }

    /// Runs a batch; inputs may have any (per-sequence) number of rows.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] if any sequence has the wrong hidden width or
    /// an operator fails.
    pub fn run(&self, batch: &[Matrix]) -> Result<BatchOutput, ModelError> {
        // Decreasing-length processing order (stable on ties).
        let mut order: Vec<usize> = (0..batch.len()).collect();
        order.sort_by(|&a, &b| batch[b].rows().cmp(&batch[a].rows()).then(a.cmp(&b)));

        let mut outputs: Vec<Option<Matrix>> = vec![None; batch.len()];
        let mut tokens = 0u64;
        for &idx in &order {
            let x = &batch[idx];
            tokens += x.rows() as u64;
            let out = match self.attention {
                RunnerAttention::Dense => self.encoder.forward(x, &DenseAttention)?,
                RunnerAttention::Sparse(cfg) => {
                    self.encoder.forward(x, &SparseAttention::new(cfg))?
                }
            };
            outputs[idx] = Some(out);
        }
        Ok(BatchOutput {
            outputs: outputs
                .into_iter()
                .map(|o| o.expect("every index visited exactly once"))
                .collect(),
            tokens,
            processing_order: order,
        })
    }

    /// Mean-pooled sentence embeddings for a batch (classification heads
    /// consume these).
    ///
    /// # Errors
    ///
    /// As for [`BatchRunner::run`].
    pub fn encode_pooled_batch(&self, batch: &[Matrix]) -> Result<Vec<Vec<f32>>, ModelError> {
        let out = self.run(batch)?;
        Ok(out
            .outputs
            .iter()
            .map(|m| {
                let n = m.rows().max(1) as f32;
                let mut pooled = vec![0.0f32; m.cols()];
                for i in 0..m.rows() {
                    for (acc, &v) in pooled.iter_mut().zip(m.row(i)) {
                        *acc += v / n;
                    }
                }
                pooled
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lat_model::config::ModelConfig;
    use lat_tensor::rng::SplitMix64;

    fn setup(seed: u64) -> (ModelConfig, BatchRunner, SplitMix64) {
        let cfg = ModelConfig::tiny();
        let mut rng = SplitMix64::new(seed);
        let encoder = Encoder::random(&cfg, &mut rng);
        let runner = BatchRunner::new(
            encoder,
            RunnerAttention::Sparse(SparseAttentionConfig::paper_default().with_k(16)),
        );
        (cfg, runner, rng)
    }

    #[test]
    fn outputs_restored_to_input_order() {
        let (cfg, runner, mut rng) = setup(101);
        let batch: Vec<Matrix> = [10usize, 30, 20]
            .iter()
            .map(|&n| rng.gaussian_matrix(n, cfg.hidden_dim, 1.0))
            .collect();
        let out = runner.run(&batch).unwrap();
        assert_eq!(out.outputs[0].rows(), 10);
        assert_eq!(out.outputs[1].rows(), 30);
        assert_eq!(out.outputs[2].rows(), 20);
        assert_eq!(out.processing_order, vec![1, 2, 0]);
        assert_eq!(out.tokens, 60);
    }

    #[test]
    fn matches_unbatched_forward() {
        let (cfg, runner, mut rng) = setup(102);
        let x = rng.gaussian_matrix(18, cfg.hidden_dim, 1.0);
        let batched = runner.run(std::slice::from_ref(&x)).unwrap();
        let direct = runner
            .encoder()
            .forward(
                &x,
                &SparseAttention::new(SparseAttentionConfig::paper_default().with_k(16)),
            )
            .unwrap();
        assert_eq!(batched.outputs[0], direct);
    }

    #[test]
    fn dense_and_sparse_runners_agree_at_full_k() {
        let cfg = ModelConfig::tiny();
        let mut rng = SplitMix64::new(103);
        let encoder = Encoder::random(&cfg, &mut rng);
        let x = rng.gaussian_matrix(12, cfg.hidden_dim, 1.0);
        let dense = BatchRunner::new(encoder.clone(), RunnerAttention::Dense)
            .run(std::slice::from_ref(&x))
            .unwrap();
        let sparse = BatchRunner::new(
            encoder,
            RunnerAttention::Sparse(SparseAttentionConfig {
                bits: lat_tensor::quant::BitWidth::Eight,
                k: 12,
                causal: false,
            }),
        )
        .run(std::slice::from_ref(&x))
        .unwrap();
        let mse = dense.outputs[0].mse(&sparse.outputs[0]).unwrap();
        assert!(mse < 1e-6, "mse {mse}");
    }

    #[test]
    fn empty_batch_is_fine() {
        let (_, runner, _) = setup(104);
        let out = runner.run(&[]).unwrap();
        assert!(out.outputs.is_empty());
        assert_eq!(out.tokens, 0);
    }

    #[test]
    fn pooled_batch_shapes() {
        let (cfg, runner, mut rng) = setup(105);
        let batch: Vec<Matrix> = [8usize, 16]
            .iter()
            .map(|&n| rng.gaussian_matrix(n, cfg.hidden_dim, 1.0))
            .collect();
        let pooled = runner.encode_pooled_batch(&batch).unwrap();
        assert_eq!(pooled.len(), 2);
        assert!(pooled.iter().all(|p| p.len() == cfg.hidden_dim));
    }

    #[test]
    fn ties_processed_stably() {
        let (cfg, runner, mut rng) = setup(106);
        let batch: Vec<Matrix> = [20usize, 20, 20]
            .iter()
            .map(|&n| rng.gaussian_matrix(n, cfg.hidden_dim, 1.0))
            .collect();
        let out = runner.run(&batch).unwrap();
        assert_eq!(out.processing_order, vec![0, 1, 2]);
    }
}
