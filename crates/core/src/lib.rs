//! # lat-core
//!
//! The primary contribution of the DAC'22 paper *"A Length Adaptive
//! Algorithm-Hardware Co-design of Transformer on FPGA Through Sparse
//! Attention and Dynamic Pipelining"*, as a pure-Rust library:
//!
//! 1. **Sparse attention** (§3): [`preselect`] quantizes Q/K to 1 or 4 bits
//!    and ranks candidate keys with a LUT integer matmul; [`topk`] selects
//!    the Top-k per query row (heap reference + the hardware's merge-sort
//!    network model); [`sparse::SparseAttention`] then computes *exact*
//!    attention over only the selected candidates, dropping complexity from
//!    `O(n²)` to `O(n·k)`. [`fused`] provides the Fig. 4 fused kernel that
//!    folds scale/mask/exp into the score loop.
//! 2. **Stage allocation** (§4.2, Algorithm 1): [`stage_alloc`] partitions
//!    the encoder operator graph into coarse-grained pipeline stages by
//!    critical-path priority under a DSP budget, with per-operator
//!    parallelism rate-matching.
//! 3. **Length-aware dynamic pipelining** (§4.2): [`pipeline`] schedules a
//!    batch of variable-length sequences through the coarse stages in
//!    decreasing-length order, eliminating pipeline bubbles; padding and
//!    micro-batching baselines are provided for comparison.
//!
//! Supporting infrastructure: [`pool`] is the deterministic scoped-thread
//! work pool the evaluation harnesses fan their sweep grids across —
//! results land in input order regardless of worker count, so parallelism
//! never changes output. [`sketch`] provides the streaming (O(1)-state)
//! percentile and moment accumulators the serving engines use under
//! `ReportMode::Streaming` to survive million-request traces in bounded
//! memory.
//!
//! # Quickstart
//!
//! ```
//! use lat_core::sparse::{SparseAttention, SparseAttentionConfig};
//! use lat_model::attention::{AttentionOp, DenseAttention};
//! use lat_tensor::rng::SplitMix64;
//!
//! # fn main() -> Result<(), lat_model::ModelError> {
//! let mut rng = SplitMix64::new(1);
//! let q = rng.gaussian_matrix(64, 32, 1.0);
//! let k = rng.gaussian_matrix(64, 32, 1.0);
//! let v = rng.gaussian_matrix(64, 32, 1.0);
//!
//! let sparse = SparseAttention::new(SparseAttentionConfig::paper_default());
//! let approx = sparse.attend(&q, &k, &v)?;
//! let exact = DenseAttention.attend(&q, &k, &v)?;
//! assert_eq!(approx.shape(), exact.shape());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod baselines;
pub mod dag;
pub mod fused;
pub mod pipeline;
pub mod pool;
pub mod preselect;
pub mod runtime;
pub mod sketch;
pub mod sparse;
pub mod stage_alloc;
pub mod topk;
