//! Length-aware coarse-grained dynamic pipelining (§4.2, Fig. 5).
//!
//! A batch of variable-length sequences flows through the coarse pipeline
//! stages (Stage 1 `MM|At-Sel`, Stage 2 `At-Comp`, Stage 3 `FdFwd`, …) for
//! every encoder layer. Because every operator is `O(n)` under sparse
//! attention, sorting the batch by decreasing length and streaming it
//! through the stages leaves no pipeline bubbles: each stage finishes
//! sequence `i` no later than it would have started it under any other
//! order, and stages of consecutive layers patch together seamlessly.
//!
//! Three policies are modeled:
//!
//! - [`SchedulingPolicy::LengthAware`] — the paper's design;
//! - [`SchedulingPolicy::PadToMax`] — TensorRT-style padding of the whole
//!   batch to its maximum length;
//! - [`SchedulingPolicy::MicroBatch`] — TurboTransformer-style micro-batches
//!   padded internally, with a pipeline drain between micro-batches (the
//!   "significant pipeline bubbles" the paper observes on FPGA).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Provides the per-stage processing time of one sequence.
pub trait StageTiming {
    /// Number of coarse pipeline stages.
    fn num_stages(&self) -> usize;

    /// Cycles stage `stage` needs for a sequence of `len` tokens.
    fn stage_cycles(&self, stage: usize, len: usize) -> u64;
}

/// Linear `O(n)` stage timing: `cycles = fixed + per_token · len`.
///
/// This is the timing shape the paper's scheduling relies on; coefficients
/// are typically derived from a [`crate::stage_alloc::StageAllocation`].
///
/// # Example
///
/// ```
/// use lat_core::pipeline::{LinearStageTiming, StageTiming};
///
/// let t = LinearStageTiming::new(vec![100.0, 150.0, 120.0], vec![50, 50, 50]);
/// assert_eq!(t.num_stages(), 3);
/// assert_eq!(t.stage_cycles(0, 10), 50 + 1000);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinearStageTiming {
    per_token: Vec<f64>,
    fixed: Vec<u64>,
}

impl LinearStageTiming {
    /// Creates a timing model from per-stage cycles-per-token and fixed
    /// overhead.
    ///
    /// # Panics
    ///
    /// Panics if the vectors have different lengths or are empty.
    pub fn new(per_token: Vec<f64>, fixed: Vec<u64>) -> Self {
        assert_eq!(per_token.len(), fixed.len(), "coefficient length mismatch");
        assert!(!per_token.is_empty(), "at least one stage required");
        Self { per_token, fixed }
    }

    /// Uniform model: every stage costs `per_token` cycles per token.
    pub fn uniform(stages: usize, per_token: f64) -> Self {
        Self::new(vec![per_token; stages], vec![0; stages])
    }
}

impl StageTiming for LinearStageTiming {
    fn num_stages(&self) -> usize {
        self.per_token.len()
    }

    fn stage_cycles(&self, stage: usize, len: usize) -> u64 {
        self.fixed[stage] + (self.per_token[stage] * len as f64).ceil() as u64
    }
}

/// Batch scheduling policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SchedulingPolicy {
    /// Sort by decreasing length, stream every sequence at its true length.
    LengthAware,
    /// Pad every sequence to the batch maximum (TensorRT-style).
    PadToMax,
    /// Split the sorted batch into micro-batches of the given size, pad
    /// within each micro-batch, and drain the pipeline between them
    /// (TurboTransformer-style).
    MicroBatch {
        /// Sequences per micro-batch.
        size: usize,
    },
}

impl fmt::Display for SchedulingPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedulingPolicy::LengthAware => write!(f, "length-aware"),
            SchedulingPolicy::PadToMax => write!(f, "pad-to-max"),
            SchedulingPolicy::MicroBatch { size } => write!(f, "micro-batch({size})"),
        }
    }
}

/// One `(sequence, layer, stage)` occupancy interval in the schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScheduleEntry {
    /// Index of the sequence in the *sorted* batch.
    pub seq: usize,
    /// Encoder layer index.
    pub layer: usize,
    /// Coarse pipeline stage index.
    pub stage: usize,
    /// Start cycle.
    pub start: u64,
    /// End cycle (exclusive).
    pub end: u64,
}

/// A complete pipeline schedule for one batch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Schedule {
    entries: Vec<ScheduleEntry>,
    num_stages: usize,
    makespan: u64,
    stage_busy: Vec<u64>,
    /// Billed token count (includes padding waste under non-adaptive
    /// policies).
    billed_tokens: u64,
    /// Real token count of the batch.
    real_tokens: u64,
}

impl Schedule {
    /// All occupancy intervals, ordered by `(layer, seq, stage)` issue order.
    pub fn entries(&self) -> &[ScheduleEntry] {
        &self.entries
    }

    /// Number of coarse stages.
    pub fn num_stages(&self) -> usize {
        self.num_stages
    }

    /// Total cycles from batch start to last completion.
    pub fn makespan(&self) -> u64 {
        self.makespan
    }

    /// Busy cycles of stage `stage`.
    pub fn stage_busy(&self, stage: usize) -> u64 {
        self.stage_busy[stage]
    }

    /// Utilization of stage `stage` over the makespan, in `[0, 1]`.
    pub fn utilization(&self, stage: usize) -> f64 {
        if self.makespan == 0 {
            return 0.0;
        }
        self.stage_busy[stage] as f64 / self.makespan as f64
    }

    /// Idle (bubble) cycles of stage `stage` *between its first start and
    /// its last end* — the quantity the state-machine scheduling drives to
    /// zero.
    pub fn bubble_cycles(&self, stage: usize) -> u64 {
        let mut spans: Vec<(u64, u64)> = self
            .entries
            .iter()
            .filter(|e| e.stage == stage)
            .map(|e| (e.start, e.end))
            .collect();
        if spans.is_empty() {
            return 0;
        }
        spans.sort_unstable();
        let first = spans[0].0;
        let last = spans.iter().map(|&(_, e)| e).max().unwrap_or(first);
        let busy: u64 = spans.iter().map(|&(s, e)| e - s).sum();
        (last - first).saturating_sub(busy)
    }

    /// Padding overhead ratio: billed tokens / real tokens (1.0 for the
    /// length-aware policy).
    pub fn padding_overhead(&self) -> f64 {
        if self.real_tokens == 0 {
            return 1.0;
        }
        self.billed_tokens as f64 / self.real_tokens as f64
    }
}

/// Schedules a batch through the pipeline under `policy`.
///
/// `lengths` are the true sequence lengths (any order — the scheduler sorts
/// them descending, as the paper's state machine requires); `layers` is the
/// number of encoder layers each sequence traverses.
///
/// # Panics
///
/// Panics if `lengths` is empty, `layers == 0`, or a micro-batch size of 0
/// is requested.
pub fn schedule_batch<T: StageTiming>(
    lengths: &[usize],
    layers: usize,
    timing: &T,
    policy: SchedulingPolicy,
) -> Schedule {
    assert!(!lengths.is_empty(), "empty batch");
    assert!(layers > 0, "layers must be >= 1");
    let mut sorted: Vec<usize> = lengths.to_vec();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    let real_tokens: u64 = sorted.iter().map(|&l| l as u64).sum();

    match policy {
        SchedulingPolicy::LengthAware => {
            let billed = sorted.clone();
            flow_shop(&billed, layers, timing, 0, real_tokens)
        }
        SchedulingPolicy::PadToMax => {
            let max = *sorted.first().expect("non-empty");
            let billed = vec![max; sorted.len()];
            flow_shop(&billed, layers, timing, 0, real_tokens)
        }
        SchedulingPolicy::MicroBatch { size } => {
            assert!(size > 0, "micro-batch size must be >= 1");
            let mut merged_entries = Vec::new();
            let mut offset = 0u64;
            let mut stage_busy = vec![0u64; timing.num_stages()];
            let mut billed_tokens = 0u64;
            let mut seq_base = 0usize;
            for chunk in sorted.chunks(size) {
                let max = *chunk.iter().max().expect("non-empty chunk");
                let billed = vec![max; chunk.len()];
                let sub = flow_shop(&billed, layers, timing, offset, 0);
                for mut e in sub.entries.iter().copied() {
                    e.seq += seq_base;
                    merged_entries.push(e);
                }
                for (acc, &b) in stage_busy.iter_mut().zip(&sub.stage_busy) {
                    *acc += b;
                }
                billed_tokens += sub.billed_tokens;
                // Pipeline drains fully between micro-batches.
                offset = sub.makespan;
                seq_base += chunk.len();
            }
            let makespan = offset;
            Schedule {
                entries: merged_entries,
                num_stages: timing.num_stages(),
                makespan,
                stage_busy,
                billed_tokens,
                real_tokens,
            }
        }
    }
}

/// Permutation flow-shop schedule of `billed` lengths across
/// `layers × stages`, starting at cycle `start_offset`.
///
/// Jobs are issued layer-major (`layer 0: seq 0..B`, `layer 1: seq 0..B`,
/// …); stage `k` of job `j` starts when stage `k` is free (previous job
/// finished it) *and* stage `k-1` of job `j` finished; additionally layer
/// `l` of sequence `i` cannot enter stage 0 before layer `l-1` of the same
/// sequence left the last stage.
fn flow_shop<T: StageTiming>(
    billed: &[usize],
    layers: usize,
    timing: &T,
    start_offset: u64,
    real_tokens: u64,
) -> Schedule {
    let stages = timing.num_stages();
    let batch = billed.len();
    let mut stage_free = vec![start_offset; stages];
    // finish[(seq)] = completion time of the previous layer's last stage.
    let mut layer_done = vec![start_offset; batch];
    let mut entries = Vec::with_capacity(layers * batch * stages);
    let mut stage_busy = vec![0u64; stages];
    let mut makespan = start_offset;

    for layer in 0..layers {
        for (seq, &len) in billed.iter().enumerate() {
            let mut prev_stage_done = layer_done[seq];
            for stage in 0..stages {
                let t = timing.stage_cycles(stage, len);
                let start = prev_stage_done.max(stage_free[stage]);
                let end = start + t;
                entries.push(ScheduleEntry {
                    seq,
                    layer,
                    stage,
                    start,
                    end,
                });
                stage_free[stage] = end;
                stage_busy[stage] += t;
                prev_stage_done = end;
            }
            layer_done[seq] = prev_stage_done;
            makespan = makespan.max(prev_stage_done);
        }
    }

    let billed_tokens: u64 =
        billed.iter().map(|&l| l as u64).sum::<u64>() * layers as u64 / layers as u64;
    Schedule {
        entries,
        num_stages: stages,
        makespan: makespan - start_offset + start_offset, // absolute end
        stage_busy,
        billed_tokens,
        real_tokens,
    }
}

/// Schedules a batch whose sequences have *release times* (arrival
/// constraints): sequence `i` may not enter stage 0 of its first layer
/// before `releases[i]`. Within the released set, processing still follows
/// decreasing length (ties by release then index) — the online analogue of
/// the sorted batch, used by serving-style deployments where requests
/// trickle in while the pipeline runs.
///
/// # Panics
///
/// Panics if `lengths` and `releases` differ in length, the batch is
/// empty, or `layers == 0`.
pub fn schedule_batch_with_releases<T: StageTiming>(
    lengths: &[usize],
    releases: &[u64],
    layers: usize,
    timing: &T,
) -> Schedule {
    assert_eq!(lengths.len(), releases.len(), "lengths/releases mismatch");
    assert!(!lengths.is_empty(), "empty batch");
    assert!(layers > 0, "layers must be >= 1");
    // Sort by (release asc, length desc, index): a sequence cannot jump
    // ahead of one released before it if doing so would idle the pipe, but
    // among simultaneously-available work the longest goes first.
    let mut order: Vec<usize> = (0..lengths.len()).collect();
    order.sort_by(|&a, &b| {
        releases[a]
            .cmp(&releases[b])
            .then(lengths[b].cmp(&lengths[a]))
            .then(a.cmp(&b))
    });

    let stages = timing.num_stages();
    let mut stage_free = vec![0u64; stages];
    let mut layer_done: Vec<u64> = order.iter().map(|&i| releases[i]).collect();
    let mut entries = Vec::with_capacity(layers * lengths.len() * stages);
    let mut stage_busy = vec![0u64; stages];
    let mut makespan = 0u64;
    let real_tokens: u64 = lengths.iter().map(|&l| l as u64).sum();

    for layer in 0..layers {
        for (slot, &orig) in order.iter().enumerate() {
            let len = lengths[orig];
            let mut prev_done = layer_done[slot];
            for stage in 0..stages {
                let t = timing.stage_cycles(stage, len);
                let start = prev_done.max(stage_free[stage]);
                let end = start + t;
                entries.push(ScheduleEntry {
                    seq: slot,
                    layer,
                    stage,
                    start,
                    end,
                });
                stage_free[stage] = end;
                stage_busy[stage] += t;
                prev_done = end;
            }
            layer_done[slot] = prev_done;
            makespan = makespan.max(prev_done);
        }
    }

    Schedule {
        entries,
        num_stages: stages,
        makespan,
        stage_busy,
        billed_tokens: real_tokens,
        real_tokens,
    }
}

/// Makespan of fully sequential (un-pipelined) execution — the lower-end
/// baseline showing what coarse pipelining itself buys.
pub fn sequential_makespan<T: StageTiming>(lengths: &[usize], layers: usize, timing: &T) -> u64 {
    lengths
        .iter()
        .map(|&l| {
            (0..timing.num_stages())
                .map(|k| timing.stage_cycles(k, l))
                .sum::<u64>()
        })
        .sum::<u64>()
        * layers as u64
}

/// Renders an ASCII Gantt chart of the schedule (one row per stage), the
/// Fig. 5 timing-diagram view. `width` is the number of character cells the
/// makespan is compressed into.
pub fn render_gantt(schedule: &Schedule, width: usize) -> String {
    let width = width.max(10);
    let span = schedule.makespan().max(1) as f64;
    let mut out = String::new();
    for stage in 0..schedule.num_stages() {
        let mut row = vec![b'.'; width];
        for e in schedule.entries().iter().filter(|e| e.stage == stage) {
            let a = ((e.start as f64 / span) * width as f64) as usize;
            let b = (((e.end as f64) / span) * width as f64).ceil() as usize;
            let glyph = glyph_for(e.seq);
            for cell in row.iter_mut().take(b.min(width)).skip(a.min(width)) {
                *cell = glyph;
            }
        }
        out.push_str(&format!(
            "stage {stage} |{}| {:>5.1}%\n",
            String::from_utf8_lossy(&row),
            schedule.utilization(stage) * 100.0
        ));
    }
    out
}

fn glyph_for(seq: usize) -> u8 {
    const GLYPHS: &[u8] = b"0123456789abcdefghijklmnopqrstuvwxyz";
    GLYPHS[seq % GLYPHS.len()]
}

/// Renders the Fig. 5(a) view: one row per *sequence*, showing which
/// coarse stage processes it over time (`M` = stage 0 / MM|At-Sel,
/// `A` = stage 1 / At-Comp, `F` = stage 2 / FdFwd, digits for further
/// stages). `width` is the number of character cells.
pub fn render_sequence_gantt(schedule: &Schedule, width: usize) -> String {
    let width = width.max(10);
    let span = schedule.makespan().max(1) as f64;
    let num_seqs = schedule
        .entries()
        .iter()
        .map(|e| e.seq + 1)
        .max()
        .unwrap_or(0);
    let mut out = String::new();
    for seq in 0..num_seqs {
        let mut row = vec![b'.'; width];
        for e in schedule.entries().iter().filter(|e| e.seq == seq) {
            let a = ((e.start as f64 / span) * width as f64) as usize;
            let b = (((e.end as f64) / span) * width as f64).ceil() as usize;
            let glyph = stage_glyph(e.stage);
            for cell in row.iter_mut().take(b.min(width)).skip(a.min(width)) {
                *cell = glyph;
            }
        }
        out.push_str(&format!(
            "I{:<2} |{}|\n",
            seq + 1,
            String::from_utf8_lossy(&row)
        ));
    }
    out
}

fn stage_glyph(stage: usize) -> u8 {
    match stage {
        0 => b'M',
        1 => b'A',
        2 => b'F',
        s => b'0' + ((s % 10) as u8),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Fig. 5 batch: 5 sequences, lengths 140/100/82/78/72, 3 stages.
    fn fig5_setup() -> (Vec<usize>, LinearStageTiming) {
        let lengths = vec![72, 140, 82, 100, 78]; // unsorted on purpose
        let timing = LinearStageTiming::new(vec![10.0, 12.0, 9.0], vec![0, 0, 0]);
        (lengths, timing)
    }

    #[test]
    fn makespan_at_least_critical_path() {
        let (lengths, timing) = fig5_setup();
        let s = schedule_batch(&lengths, 1, &timing, SchedulingPolicy::LengthAware);
        // Lower bound: longest sequence through all stages.
        let lb: u64 = (0..3).map(|k| timing.stage_cycles(k, 140)).sum();
        assert!(s.makespan() >= lb);
    }

    #[test]
    fn makespan_at_least_bottleneck_stage_work() {
        let (lengths, timing) = fig5_setup();
        let s = schedule_batch(&lengths, 2, &timing, SchedulingPolicy::LengthAware);
        for k in 0..3 {
            assert!(s.makespan() >= s.stage_busy(k));
        }
    }

    #[test]
    fn entries_respect_stage_order_and_exclusivity() {
        let (lengths, timing) = fig5_setup();
        let s = schedule_batch(&lengths, 2, &timing, SchedulingPolicy::LengthAware);
        // Stage exclusivity: within one stage, intervals don't overlap.
        for stage in 0..3 {
            let mut spans: Vec<(u64, u64)> = s
                .entries()
                .iter()
                .filter(|e| e.stage == stage)
                .map(|e| (e.start, e.end))
                .collect();
            spans.sort_unstable();
            for w in spans.windows(2) {
                assert!(w[0].1 <= w[1].0, "overlap in stage {stage}: {w:?}");
            }
        }
        // Dependency: stage k starts after stage k-1 for the same (seq, layer).
        for e in s.entries() {
            if e.stage > 0 {
                let prev = s
                    .entries()
                    .iter()
                    .find(|p| p.seq == e.seq && p.layer == e.layer && p.stage == e.stage - 1)
                    .expect("predecessor entry exists");
                assert!(prev.end <= e.start);
            }
        }
    }

    #[test]
    fn layer_dependency_respected() {
        let (lengths, timing) = fig5_setup();
        let s = schedule_batch(&lengths, 3, &timing, SchedulingPolicy::LengthAware);
        for e in s.entries().iter().filter(|e| e.layer > 0 && e.stage == 0) {
            let prev_last = s
                .entries()
                .iter()
                .find(|p| p.seq == e.seq && p.layer == e.layer - 1 && p.stage == 2)
                .expect("previous layer entry");
            assert!(prev_last.end <= e.start);
        }
    }

    #[test]
    fn length_aware_beats_padding() {
        let (lengths, timing) = fig5_setup();
        let adaptive = schedule_batch(&lengths, 2, &timing, SchedulingPolicy::LengthAware);
        let padded = schedule_batch(&lengths, 2, &timing, SchedulingPolicy::PadToMax);
        assert!(
            adaptive.makespan() < padded.makespan(),
            "adaptive {} !< padded {}",
            adaptive.makespan(),
            padded.makespan()
        );
        // The saved latency is roughly the padding waste share.
        assert!(padded.padding_overhead() > 1.3);
        assert!((adaptive.padding_overhead() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn length_aware_beats_micro_batching() {
        let (lengths, timing) = fig5_setup();
        let adaptive = schedule_batch(&lengths, 2, &timing, SchedulingPolicy::LengthAware);
        let micro = schedule_batch(
            &lengths,
            2,
            &timing,
            SchedulingPolicy::MicroBatch { size: 2 },
        );
        assert!(adaptive.makespan() < micro.makespan());
        // Micro-batching pads fewer tokens than full padding, even though
        // its drain bubbles can make the *makespan* worse on FPGA (§2).
        let padded = schedule_batch(&lengths, 2, &timing, SchedulingPolicy::PadToMax);
        assert!(micro.padding_overhead() < padded.padding_overhead());
    }

    #[test]
    fn pipelining_beats_sequential() {
        let (lengths, timing) = fig5_setup();
        let s = schedule_batch(&lengths, 2, &timing, SchedulingPolicy::LengthAware);
        let seq = sequential_makespan(&lengths, 2, &timing);
        assert!(
            s.makespan() < seq,
            "pipeline {} !< sequential {seq}",
            s.makespan()
        );
    }

    #[test]
    fn bottleneck_stage_has_no_bubbles_with_sorted_batch() {
        // The headline claim: the slowest stage runs back-to-back.
        let (lengths, timing) = fig5_setup();
        let s = schedule_batch(&lengths, 2, &timing, SchedulingPolicy::LengthAware);
        // Stage 1 (12 cycles/token) is the bottleneck.
        assert_eq!(
            s.bubble_cycles(1),
            0,
            "bottleneck stage must be bubble-free, schedule:\n{}",
            render_gantt(&s, 80)
        );
    }

    #[test]
    fn near_full_utilization_on_bottleneck() {
        let (lengths, timing) = fig5_setup();
        let s = schedule_batch(&lengths, 4, &timing, SchedulingPolicy::LengthAware);
        // With 4 layers the pipeline is warm most of the time.
        assert!(
            s.utilization(1) > 0.9,
            "bottleneck utilization {:.3}",
            s.utilization(1)
        );
    }

    #[test]
    fn micro_batch_has_more_bubbles_than_adaptive() {
        let (lengths, timing) = fig5_setup();
        let adaptive = schedule_batch(&lengths, 2, &timing, SchedulingPolicy::LengthAware);
        let micro = schedule_batch(
            &lengths,
            2,
            &timing,
            SchedulingPolicy::MicroBatch { size: 2 },
        );
        let bubbles = |s: &Schedule| (0..3).map(|k| s.bubble_cycles(k)).sum::<u64>();
        assert!(bubbles(&micro) > bubbles(&adaptive));
    }

    #[test]
    fn single_sequence_single_layer() {
        let timing = LinearStageTiming::uniform(3, 5.0);
        let s = schedule_batch(&[10], 1, &timing, SchedulingPolicy::LengthAware);
        assert_eq!(s.makespan(), 150); // 3 stages × 50 cycles
        assert_eq!(s.entries().len(), 3);
    }

    #[test]
    fn entries_count_is_product() {
        let (lengths, timing) = fig5_setup();
        let s = schedule_batch(&lengths, 3, &timing, SchedulingPolicy::LengthAware);
        assert_eq!(s.entries().len(), 5 * 3 * 3);
    }

    #[test]
    #[should_panic(expected = "empty batch")]
    fn empty_batch_panics() {
        let timing = LinearStageTiming::uniform(3, 1.0);
        let _ = schedule_batch(&[], 1, &timing, SchedulingPolicy::LengthAware);
    }

    #[test]
    fn gantt_renders_all_stages() {
        let (lengths, timing) = fig5_setup();
        let s = schedule_batch(&lengths, 1, &timing, SchedulingPolicy::LengthAware);
        let g = render_gantt(&s, 60);
        assert_eq!(g.lines().count(), 3);
        assert!(g.contains("stage 0"));
        assert!(g.contains('%'));
    }

    #[test]
    fn release_times_respected() {
        let timing = LinearStageTiming::uniform(3, 10.0);
        let lengths = [50usize, 40, 30];
        let releases = [0u64, 5000, 100];
        let s = schedule_batch_with_releases(&lengths, &releases, 2, &timing);
        // The slot order is (release, length): seq0 (r=0), seq2 (r=100),
        // seq1 (r=5000). Slot 2 (original seq 1) must not start before 5000.
        let first_start = s
            .entries()
            .iter()
            .filter(|e| e.seq == 2 && e.layer == 0 && e.stage == 0)
            .map(|e| e.start)
            .min()
            .expect("entry exists");
        assert!(
            first_start >= 5000,
            "released-at-5000 started at {first_start}"
        );
        // Feasibility invariants still hold.
        for stage in 0..3 {
            let mut spans: Vec<(u64, u64)> = s
                .entries()
                .iter()
                .filter(|e| e.stage == stage)
                .map(|e| (e.start, e.end))
                .collect();
            spans.sort_unstable();
            for w in spans.windows(2) {
                assert!(w[0].1 <= w[1].0);
            }
        }
    }

    #[test]
    fn zero_releases_match_length_aware_schedule() {
        let (lengths, timing) = fig5_setup();
        let releases = vec![0u64; lengths.len()];
        let with_rel = schedule_batch_with_releases(&lengths, &releases, 2, &timing);
        let plain = schedule_batch(&lengths, 2, &timing, SchedulingPolicy::LengthAware);
        assert_eq!(with_rel.makespan(), plain.makespan());
    }

    #[test]
    fn late_release_extends_makespan() {
        let timing = LinearStageTiming::uniform(3, 10.0);
        let lengths = [50usize, 40];
        let early = schedule_batch_with_releases(&lengths, &[0, 0], 1, &timing);
        let late = schedule_batch_with_releases(&lengths, &[0, 10_000], 1, &timing);
        assert!(late.makespan() > early.makespan());
        assert!(late.makespan() >= 10_000);
    }

    #[test]
    fn sequence_gantt_has_one_row_per_sequence() {
        let (lengths, timing) = fig5_setup();
        let s = schedule_batch(&lengths, 2, &timing, SchedulingPolicy::LengthAware);
        let g = render_sequence_gantt(&s, 80);
        assert_eq!(g.lines().count(), 5);
        assert!(g.contains('M') && g.contains('A') && g.contains('F'));
        // The longest sequence (row I1) starts at the very left.
        let first = g.lines().next().unwrap();
        let bar = first.split('|').nth(1).unwrap();
        assert!(
            bar.starts_with('M'),
            "first row should start with MM: {bar}"
        );
    }

    #[test]
    fn policy_display() {
        assert_eq!(SchedulingPolicy::LengthAware.to_string(), "length-aware");
        assert_eq!(
            SchedulingPolicy::MicroBatch { size: 4 }.to_string(),
            "micro-batch(4)"
        );
    }

    #[test]
    fn padding_overhead_matches_max_over_mean() {
        let lengths = vec![100, 50, 50];
        let timing = LinearStageTiming::uniform(2, 1.0);
        let s = schedule_batch(&lengths, 1, &timing, SchedulingPolicy::PadToMax);
        assert!((s.padding_overhead() - 300.0 / 200.0).abs() < 1e-9);
    }
}
