//! Encoder coarse-grained stage allocation — Algorithm 1 of the paper.
//!
//! Algorithm 1 takes the encoder operator graph `G = (V, E)`, the operator
//! weights `W(v, s_avg)` (arithmetic complexity at the average sequence
//! length) and critical-path priorities `P(v, s_avg)` (Eq. 1), and greedily
//! packs operators into coarse pipeline stages:
//!
//! - operators are visited in decreasing priority (for the encoder chain
//!   this equals dataflow order);
//! - within a stage, per-operator parallelism is *rate-matched*:
//!   `N(v) = ceil(W(v) / W_ref)` with `W_ref` the smallest DSP-bearing
//!   weight in the stage, so every operator sustains the same token rate;
//! - when the rate-matched stage no longer fits the per-stage DSP budget,
//!   the current operator opens a new stage.
//!
//! After partitioning, [`StageAllocation::balance_to_budget`] applies the
//! paper's replication step (`R(G_k, s_i)`): all parallelisms are scaled up
//! by the largest uniform factor that still fits the full chip, which is
//! how the design "fully utilize\[s\] the resources of a certain FPGA chip".

use lat_model::graph::{AttentionMode, OpKind, OperatorGraph};
use serde::{Deserialize, Serialize};

/// Resource model for Algorithm 1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResourceModel {
    /// DSP slices one parallel GEMM/MAC instance occupies.
    pub dsp_per_instance: u32,
    /// DSP budget one coarse stage may occupy during partitioning.
    pub dsp_budget_per_stage: u32,
    /// Total chip DSP budget (Alveo U280 SLR0 = 3000).
    pub dsp_total: u32,
    /// Parallel lanes available to elementwise/LUT operators (these consume
    /// LUT/FF fabric, not DSPs, so they are not budget-constrained here).
    pub elementwise_lanes: u32,
}

impl Default for ResourceModel {
    fn default() -> Self {
        Self {
            dsp_per_instance: 16,
            dsp_budget_per_stage: 1000,
            dsp_total: 3000,
            elementwise_lanes: 64,
        }
    }
}

impl ResourceModel {
    /// Whether `kind` consumes DSP slices (matrix-multiply-class operators)
    /// as opposed to LUT/FF fabric (elementwise, softmax, normalization).
    pub fn uses_dsp(kind: OpKind) -> bool {
        use OpKind::*;
        matches!(
            kind,
            QkvLinear | AttnScores | AttnApply | OutLinear | Ffn1 | Ffn2
        )
    }
}

/// MACs operator `kind` performs *on the DSP datapath* at length `s`.
///
/// Under sparse attention the `AttnScores` operator's quantized
/// pre-selection pass runs on the LUT bit-selector fabric (XNOR/popcount
/// for 1-bit, table lookups for 4-bit), so only the exact top-k score
/// computation is charged to DSPs — this is what keeps every stage `O(n)`
/// on the DSP path, the precondition of the length-aware scheduler.
pub fn dsp_macs(graph: &OperatorGraph, kind: OpKind, s: usize, mode: AttentionMode) -> u64 {
    match (kind, mode) {
        (OpKind::AttnScores, AttentionMode::Sparse { .. }) => {
            let a = mode.attended(s) as u64;
            s as u64 * a * graph.hidden_dim() as u64
        }
        _ => graph.flops(kind, s, mode) / 2,
    }
}

/// Bit-operations the LUT pre-selection fabric performs for `kind` at
/// length `s` (zero for everything except sparse `AttnScores`).
pub fn lut_bitops(graph: &OperatorGraph, kind: OpKind, s: usize, mode: AttentionMode) -> u64 {
    match (kind, mode) {
        (OpKind::AttnScores, AttentionMode::Sparse { preselect_bits, .. }) => {
            (s as u64) * (s as u64) * graph.hidden_dim() as u64 * preselect_bits as u64
        }
        _ => 0,
    }
}

/// One coarse-grained pipeline stage produced by Algorithm 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Stage {
    /// Operators assigned to this stage, in dataflow order.
    pub ops: Vec<OpKind>,
    /// Rate-matched parallelism `N(v)` per operator (same order as `ops`).
    pub parallelism: Vec<u32>,
    /// DSP slices this stage occupies.
    pub dsp: u32,
}

impl Stage {
    /// Latency in cycles for this stage to process one sequence of length
    /// `s` under `mode`: the slowest operator bounds the stage (operators
    /// within a stage are pipelined, so the stage rate equals the slowest
    /// member's rate).
    pub fn latency_cycles(
        &self,
        graph: &OperatorGraph,
        s: usize,
        mode: AttentionMode,
        res: &ResourceModel,
    ) -> u64 {
        self.ops
            .iter()
            .zip(&self.parallelism)
            .map(|(&kind, &n)| {
                if ResourceModel::uses_dsp(kind) {
                    // Each instance performs dsp_per_instance MACs/cycle;
                    // the LUT pre-selection fabric (wide bit-parallel) runs
                    // concurrently, so the operator is bounded by the
                    // slower of the two paths.
                    let dsp_cycles = dsp_macs(graph, kind, s, mode)
                        .div_ceil((n as u64 * res.dsp_per_instance as u64).max(1));
                    let lut_cycles = lut_bitops(graph, kind, s, mode)
                        .div_ceil(res.elementwise_lanes as u64 * 64);
                    dsp_cycles.max(lut_cycles)
                } else {
                    (graph.flops(kind, s, mode) / 2).div_ceil(res.elementwise_lanes as u64)
                }
            })
            .max()
            .unwrap_or(0)
    }
}

/// The complete stage partition of one encoder layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageAllocation {
    stages: Vec<Stage>,
    res: ResourceModel,
}

impl StageAllocation {
    /// The stages in pipeline order.
    pub fn stages(&self) -> &[Stage] {
        &self.stages
    }

    /// Number of coarse stages.
    pub fn num_stages(&self) -> usize {
        self.stages.len()
    }

    /// The resource model used during allocation.
    pub fn resource_model(&self) -> &ResourceModel {
        &self.res
    }

    /// Total DSP slices across all stages.
    pub fn total_dsp(&self) -> u32 {
        self.stages.iter().map(|s| s.dsp).sum()
    }

    /// Per-stage latencies for a sequence of length `s`.
    pub fn stage_latencies(
        &self,
        graph: &OperatorGraph,
        s: usize,
        mode: AttentionMode,
    ) -> Vec<u64> {
        self.stages
            .iter()
            .map(|st| st.latency_cycles(graph, s, mode, &self.res))
            .collect()
    }

    /// The paper's replication/adjustment step (`N(v_i, s_i)` and
    /// `R(G_k, s_i)`): redistributes the *whole chip's* DSP lanes across all
    /// DSP-bearing operators proportionally to their work at `s_avg`, so
    /// that every operator — and therefore every stage — sustains the same
    /// token rate and the chip is fully utilized. Every DSP operator keeps
    /// at least one instance. Returns the total DSP count after balancing.
    pub fn balance_to_budget(
        &mut self,
        graph: &OperatorGraph,
        s_avg: usize,
        mode: AttentionMode,
    ) -> u32 {
        let lanes_total = (self.res.dsp_total / self.res.dsp_per_instance).max(1) as u64;
        let weights: Vec<Vec<u64>> = self
            .stages
            .iter()
            .map(|st| {
                st.ops
                    .iter()
                    .map(|&k| {
                        if ResourceModel::uses_dsp(k) {
                            dsp_macs(graph, k, s_avg, mode)
                        } else {
                            0
                        }
                    })
                    .collect()
            })
            .collect();
        let total_work: u64 = weights.iter().flatten().sum::<u64>().max(1);
        for (st, ws) in self.stages.iter_mut().zip(&weights) {
            let mut dsp = 0u32;
            for ((n, &k), &w) in st.parallelism.iter_mut().zip(&st.ops).zip(ws) {
                if ResourceModel::uses_dsp(k) {
                    let share = (w as u128 * lanes_total as u128 / total_work as u128) as u64;
                    *n = share.max(1).min(u32::MAX as u64) as u32;
                    dsp = dsp.saturating_add(*n * self.res.dsp_per_instance);
                } else {
                    *n = 1;
                }
            }
            st.dsp = dsp;
        }
        self.total_dsp()
    }

    /// Pipeline throughput bound: the slowest stage's latency at length `s`
    /// (the coarse pipeline's initiation interval).
    pub fn bottleneck_latency(&self, graph: &OperatorGraph, s: usize, mode: AttentionMode) -> u64 {
        self.stage_latencies(graph, s, mode)
            .into_iter()
            .max()
            .unwrap_or(0)
    }
}

/// Critical-path priorities `P(v, s_avg)` per Eq. 1:
/// `P(v) = W(v) + max_{u ∈ Succ(v)} P(u)`, `P(sink) = W(sink)`.
pub fn priorities(graph: &OperatorGraph, s_avg: usize, mode: AttentionMode) -> Vec<u64> {
    let n = graph.len();
    let mut p = vec![0u64; n];
    // Operators are stored in topological order; walk backwards.
    for id in (0..n).rev() {
        let w = graph.flops(graph.operators()[id].kind, s_avg, mode);
        let succ_max = graph
            .successors(id)
            .into_iter()
            .map(|j| p[j])
            .max()
            .unwrap_or(0);
        p[id] = w + succ_max;
    }
    p
}

/// Runs Algorithm 1: partitions the encoder graph into coarse stages.
///
/// # Example
///
/// ```
/// use lat_core::stage_alloc::{allocate_stages, ResourceModel};
/// use lat_model::config::ModelConfig;
/// use lat_model::graph::{AttentionMode, OperatorGraph};
///
/// let cfg = ModelConfig::bert_base();
/// let graph = OperatorGraph::encoder(&cfg);
/// let alloc = allocate_stages(
///     &graph,
///     177, // SQuAD average length
///     AttentionMode::paper_sparse(),
///     ResourceModel::default(),
/// );
/// assert!(alloc.num_stages() >= 2);
/// ```
pub fn allocate_stages(
    graph: &OperatorGraph,
    s_avg: usize,
    mode: AttentionMode,
    res: ResourceModel,
) -> StageAllocation {
    let prio = priorities(graph, s_avg, mode);
    // Visit operators in decreasing priority; stable on ties by id so the
    // dataflow order is preserved (required: stages must be contiguous).
    let mut order: Vec<usize> = (0..graph.len()).collect();
    order.sort_by(|&a, &b| prio[b].cmp(&prio[a]).then(a.cmp(&b)));

    let mut stages: Vec<Vec<OpKind>> = Vec::new();
    let mut current: Vec<OpKind> = Vec::new();
    for id in order {
        let kind = graph.operators()[id].kind;
        let mut tentative = current.clone();
        tentative.push(kind);
        let (_, dsp) = rate_match(graph, &tentative, s_avg, mode, &res);
        if dsp <= res.dsp_budget_per_stage || current.is_empty() {
            current = tentative;
        } else {
            stages.push(std::mem::take(&mut current));
            current.push(kind);
        }
    }
    if !current.is_empty() {
        stages.push(current);
    }

    let stages = stages
        .into_iter()
        .map(|ops| {
            let (parallelism, dsp) = rate_match(graph, &ops, s_avg, mode, &res);
            Stage {
                ops,
                parallelism,
                dsp,
            }
        })
        .collect();
    StageAllocation { stages, res }
}

/// Rate-matching inner step of Algorithm 1: `N(v) = ceil(W(v)/W_ref)` over
/// the DSP-bearing operators of a tentative stage (elementwise operators
/// stream at fabric rate with `N = 1`). Returns the parallelism vector and
/// the stage's DSP usage.
fn rate_match(
    graph: &OperatorGraph,
    ops: &[OpKind],
    s_avg: usize,
    mode: AttentionMode,
    res: &ResourceModel,
) -> (Vec<u32>, u32) {
    let w_ref = ops
        .iter()
        .filter(|&&k| ResourceModel::uses_dsp(k))
        .map(|&k| graph.flops(k, s_avg, mode))
        .min()
        .unwrap_or(1)
        .max(1);
    let mut parallelism = Vec::with_capacity(ops.len());
    let mut dsp = 0u32;
    for &k in ops {
        if ResourceModel::uses_dsp(k) {
            let w = graph.flops(k, s_avg, mode);
            let n = w.div_ceil(w_ref).min(u32::MAX as u64) as u32;
            parallelism.push(n);
            dsp = dsp.saturating_add(n.saturating_mul(res.dsp_per_instance));
        } else {
            parallelism.push(1);
        }
    }
    (parallelism, dsp)
}

/// A naive equal-count split of the operator chain into `k` stages — the
/// ablation baseline against Algorithm 1.
pub fn naive_split(graph: &OperatorGraph, k: usize, res: ResourceModel) -> StageAllocation {
    let n = graph.len();
    let k = k.clamp(1, n.max(1));
    let per = n.div_ceil(k);
    let mut stages = Vec::new();
    let mut ops: Vec<OpKind> = Vec::new();
    for (i, op) in graph.operators().iter().enumerate() {
        ops.push(op.kind);
        if ops.len() == per || i + 1 == n {
            stages.push(std::mem::take(&mut ops));
        }
    }
    // Naive baseline: the chip's DSP lanes are split *uniformly* across the
    // DSP-bearing operators instead of proportionally to their work.
    let num_dsp_ops = graph
        .operators()
        .iter()
        .filter(|o| ResourceModel::uses_dsp(o.kind))
        .count()
        .max(1) as u32;
    let lanes_each = (res.dsp_total / res.dsp_per_instance / num_dsp_ops).max(1);
    let stages = stages
        .into_iter()
        .map(|ops| {
            let parallelism: Vec<u32> = ops
                .iter()
                .map(|&k| {
                    if ResourceModel::uses_dsp(k) {
                        lanes_each
                    } else {
                        1
                    }
                })
                .collect();
            let dsp = ops.iter().filter(|&&k| ResourceModel::uses_dsp(k)).count() as u32
                * lanes_each
                * res.dsp_per_instance;
            Stage {
                ops,
                parallelism,
                dsp,
            }
        })
        .collect();
    StageAllocation { stages, res }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lat_model::config::ModelConfig;

    fn setup() -> (OperatorGraph, AttentionMode) {
        let cfg = ModelConfig::bert_base();
        (OperatorGraph::encoder(&cfg), AttentionMode::paper_sparse())
    }

    #[test]
    fn priorities_decrease_along_the_chain() {
        let (g, mode) = setup();
        let p = priorities(&g, 177, mode);
        for w in p.windows(2) {
            assert!(w[0] > w[1], "priorities must strictly decrease: {w:?}");
        }
    }

    #[test]
    fn priority_of_source_is_total_work() {
        let (g, mode) = setup();
        let p = priorities(&g, 128, mode);
        assert_eq!(p[0], g.total_flops(128, mode));
    }

    #[test]
    fn allocation_covers_all_ops_once_in_order() {
        let (g, mode) = setup();
        let alloc = allocate_stages(&g, 177, mode, ResourceModel::default());
        let flat: Vec<OpKind> = alloc
            .stages()
            .iter()
            .flat_map(|s| s.ops.iter().copied())
            .collect();
        let expect: Vec<OpKind> = g.operators().iter().map(|o| o.kind).collect();
        assert_eq!(flat, expect, "stages must partition the chain in order");
    }

    #[test]
    fn produces_a_plausible_number_of_coarse_stages() {
        let (g, mode) = setup();
        let alloc = allocate_stages(&g, 177, mode, ResourceModel::default());
        assert!(
            (2..=6).contains(&alloc.num_stages()),
            "got {} stages",
            alloc.num_stages()
        );
    }

    #[test]
    fn every_stage_respects_budget_or_is_singleton() {
        let (g, mode) = setup();
        let res = ResourceModel::default();
        let alloc = allocate_stages(&g, 177, mode, res);
        for st in alloc.stages() {
            assert!(
                st.dsp <= res.dsp_budget_per_stage || st.ops.len() == 1,
                "stage {:?} uses {} DSP",
                st.ops,
                st.dsp
            );
        }
    }

    #[test]
    fn rate_matching_gives_more_parallelism_to_heavier_ops() {
        let (g, mode) = setup();
        let alloc = allocate_stages(&g, 177, mode, ResourceModel::default());
        for st in alloc.stages() {
            let dsp_ops: Vec<(OpKind, u32)> = st
                .ops
                .iter()
                .zip(&st.parallelism)
                .filter(|(k, _)| ResourceModel::uses_dsp(**k))
                .map(|(&k, &n)| (k, n))
                .collect();
            for (a, na) in &dsp_ops {
                for (b, nb) in &dsp_ops {
                    let wa = g.flops(*a, 177, mode);
                    let wb = g.flops(*b, 177, mode);
                    if wa > wb {
                        assert!(na >= nb, "{a} (W={wa}) got {na} < {b} (W={wb}) {nb}");
                    }
                }
            }
        }
    }

    #[test]
    fn stage_latency_positive_and_length_monotone() {
        let (g, mode) = setup();
        let alloc = allocate_stages(&g, 177, mode, ResourceModel::default());
        for st in alloc.stages() {
            let l100 = st.latency_cycles(&g, 100, mode, alloc.resource_model());
            let l200 = st.latency_cycles(&g, 200, mode, alloc.resource_model());
            assert!(l100 > 0);
            assert!(l200 > l100, "latency must grow with length");
        }
    }

    #[test]
    fn sparse_stage_latency_is_linear_in_length() {
        // The §4.2 precondition: all operators O(n) under sparse attention.
        let (g, mode) = setup();
        let alloc = allocate_stages(&g, 177, mode, ResourceModel::default());
        for st in alloc.stages() {
            let l100 = st.latency_cycles(&g, 100, mode, alloc.resource_model()) as f64;
            let l400 = st.latency_cycles(&g, 400, mode, alloc.resource_model()) as f64;
            let ratio = l400 / l100;
            assert!(
                ratio < 4.6,
                "stage {:?} scales superlinearly: x4 length -> x{ratio:.2}",
                st.ops
            );
        }
    }

    #[test]
    fn balance_to_budget_fills_the_chip() {
        let (g, mode) = setup();
        let mut alloc = allocate_stages(&g, 177, mode, ResourceModel::default());
        let total = alloc.balance_to_budget(&g, 177, mode);
        let budget = alloc.resource_model().dsp_total;
        // Rounding can land slightly over/under; stay within one instance
        // per DSP op of the target.
        let slack = 6 * alloc.resource_model().dsp_per_instance;
        assert!(total <= budget + slack, "total {total} vs budget {budget}");
        assert!(
            total >= budget - slack,
            "chip underutilized: {total}/{budget}"
        );
        // Balancing twice is a fixed point.
        let again = alloc.balance_to_budget(&g, 177, mode);
        assert_eq!(total, again);
    }

    #[test]
    fn balancing_reduces_bottleneck_latency() {
        let (g, mode) = setup();
        let mut alloc = allocate_stages(&g, 177, mode, ResourceModel::default());
        let before = alloc.bottleneck_latency(&g, 177, mode);
        alloc.balance_to_budget(&g, 177, mode);
        let after = alloc.bottleneck_latency(&g, 177, mode);
        assert!(
            after < before,
            "balancing should cut latency: {after} !< {before}"
        );
    }

    #[test]
    fn balanced_stages_have_similar_latency() {
        // Proportional allocation equalizes operator rates, so stage
        // latencies should be within a small factor of each other.
        let (g, mode) = setup();
        let mut alloc = allocate_stages(&g, 177, mode, ResourceModel::default());
        alloc.balance_to_budget(&g, 177, mode);
        let lats = alloc.stage_latencies(&g, 177, mode);
        let max = *lats.iter().max().unwrap() as f64;
        let min = *lats.iter().min().unwrap() as f64;
        assert!(max / min < 4.0, "stage imbalance {max}/{min}");
    }

    #[test]
    fn algorithm1_beats_naive_split() {
        let (g, mode) = setup();
        let res = ResourceModel::default();
        let mut smart = allocate_stages(&g, 177, mode, res);
        smart.balance_to_budget(&g, 177, mode);
        // Naive baseline: same chip, uniform lane split across operators.
        let naive = naive_split(&g, smart.num_stages(), res);
        let smart_bound = smart.bottleneck_latency(&g, 177, mode);
        let naive_bound = naive.bottleneck_latency(&g, 177, mode);
        assert!(
            smart_bound < naive_bound,
            "Algorithm 1 bottleneck {smart_bound} !< naive {naive_bound}"
        );
    }

    #[test]
    fn naive_split_partitions_everything() {
        let (g, _) = setup();
        for k in [1usize, 2, 3, 5, 12, 20] {
            let alloc = naive_split(&g, k, ResourceModel::default());
            let count: usize = alloc.stages().iter().map(|s| s.ops.len()).sum();
            assert_eq!(count, g.len());
            assert!(alloc.num_stages() <= k.max(1));
        }
    }

    #[test]
    fn dense_mode_also_allocates() {
        let (g, _) = setup();
        let alloc = allocate_stages(&g, 128, AttentionMode::Dense, ResourceModel::default());
        assert!(alloc.num_stages() >= 2);
        assert!(alloc.bottleneck_latency(&g, 128, AttentionMode::Dense) > 0);
    }
}
