//! Sparse-attention *baselines* from the related work (§2), for
//! like-for-like comparison against the paper's quantized Top-k operator:
//!
//! - [`WindowedAttention`] — fixed-pattern sparse attention in the
//!   Big Bird / Longformer style: every query attends to a local window
//!   plus a few designated global tokens. The paper's critique: "such
//!   design requires a pre-determined attention mask that lacks
//!   generality".
//! - [`RandomSamplingAttention`] — each query attends to a random subset
//!   of keys (the degenerate approximation floor: any useful pre-selection
//!   must beat it at equal budget).
//!
//! Both implement [`AttentionOp`] with the same per-query budget `k` as
//! [`crate::sparse::SparseAttention`], so accuracy comparisons at equal
//! compute are one-liners (see the `ablate_baselines` bench binary).

use lat_model::attention::AttentionOp;
use lat_model::ModelError;
use lat_tensor::rng::SplitMix64;
use lat_tensor::{ops, Matrix};
use serde::{Deserialize, Serialize};

/// Fixed-pattern windowed + global sparse attention.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WindowedAttention {
    /// Local window half-width: query `i` attends to `i−w ..= i+w`.
    pub half_window: usize,
    /// Number of leading global tokens every query also attends to
    /// (and which attend everywhere — the summary tokens of §2).
    pub global_tokens: usize,
}

impl WindowedAttention {
    /// A configuration whose per-query budget matches Top-`k` selection:
    /// `2·half_window + 1 + global_tokens ≈ k`.
    pub fn with_budget(k: usize) -> Self {
        let global_tokens = (k / 8).max(1);
        let half_window = k.saturating_sub(global_tokens + 1) / 2;
        Self {
            half_window,
            global_tokens,
        }
    }

    /// The (maximum) number of keys one query attends to.
    pub fn budget(&self) -> usize {
        2 * self.half_window + 1 + self.global_tokens
    }

    /// The fixed candidate set for query `i` of a length-`n` sequence.
    pub fn candidates(&self, i: usize, n: usize) -> Vec<usize> {
        let mut set: Vec<usize> = (0..self.global_tokens.min(n)).collect();
        let lo = i.saturating_sub(self.half_window);
        let hi = (i + self.half_window).min(n.saturating_sub(1));
        for j in lo..=hi {
            if !set.contains(&j) {
                set.push(j);
            }
        }
        set.sort_unstable();
        set
    }
}

impl AttentionOp for WindowedAttention {
    fn attend(&self, q: &Matrix, k: &Matrix, v: &Matrix) -> Result<Matrix, ModelError> {
        attend_with_candidates(q, k, v, |i, n| self.candidates(i, n))
    }

    fn name(&self) -> &'static str {
        "windowed-global"
    }
}

/// Random-subset sparse attention (seeded, deterministic per instance).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RandomSamplingAttention {
    /// Keys sampled per query.
    pub k: usize,
    /// Seed of the sampling stream.
    pub seed: u64,
}

impl AttentionOp for RandomSamplingAttention {
    fn attend(&self, q: &Matrix, k: &Matrix, v: &Matrix) -> Result<Matrix, ModelError> {
        // One deterministic stream per call; each row forks its own
        // sub-stream so row results don't depend on row order.
        attend_with_candidates(q, k, v, |i, n| {
            let mut rng = SplitMix64::new(self.seed ^ ((i as u64 + 1) * 0x9E37));
            let mut idx = rng.sample_indices(n, self.k.min(n));
            idx.sort_unstable();
            idx
        })
    }

    fn name(&self) -> &'static str {
        "random-sampling"
    }
}

/// Shared skeleton: exact softmax attention restricted to a per-row
/// candidate set.
fn attend_with_candidates(
    q: &Matrix,
    k: &Matrix,
    v: &Matrix,
    candidates: impl Fn(usize, usize) -> Vec<usize>,
) -> Result<Matrix, ModelError> {
    if k.rows() != v.rows() {
        return Err(ModelError::InvalidInput(format!(
            "K has {} rows but V has {}",
            k.rows(),
            v.rows()
        )));
    }
    let n_keys = k.rows();
    let scale = 1.0 / (q.cols() as f32).sqrt();
    let mut out = Matrix::zeros(q.rows(), v.cols());
    for i in 0..q.rows() {
        let cands = candidates(i, n_keys);
        if cands.is_empty() {
            continue;
        }
        let ks = k.gather_rows(&cands);
        let vs = v.gather_rows(&cands);
        let qi = Matrix::from_vec(1, q.cols(), q.row(i).to_vec()).expect("row width matches");
        let scores = qi.matmul_transposed(&ks)?.scaled(scale);
        let probs = ops::softmax_rows(&scores);
        let z = probs.matmul(&vs)?;
        out.row_mut(i).copy_from_slice(z.row(0));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lat_model::attention::DenseAttention;

    #[test]
    fn windowed_budget_matches_k() {
        for k in [10usize, 30, 50] {
            let w = WindowedAttention::with_budget(k);
            let b = w.budget();
            assert!(
                (b as i64 - k as i64).unsigned_abs() <= 2,
                "budget {b} too far from k={k}"
            );
        }
    }

    #[test]
    fn windowed_candidates_contain_self_and_globals() {
        let w = WindowedAttention {
            half_window: 2,
            global_tokens: 2,
        };
        let c = w.candidates(10, 40);
        assert!(c.contains(&10), "self missing");
        assert!(c.contains(&0) && c.contains(&1), "globals missing");
        assert!(c.contains(&8) && c.contains(&12), "window edge missing");
        assert!(!c.contains(&13) && !c.contains(&7));
    }

    #[test]
    fn windowed_candidates_clamp_at_edges() {
        let w = WindowedAttention {
            half_window: 3,
            global_tokens: 1,
        };
        let c = w.candidates(0, 5);
        assert!(c.iter().all(|&j| j < 5));
        assert!(c.contains(&0) && c.contains(&3));
    }

    #[test]
    fn full_window_equals_dense() {
        let mut rng = SplitMix64::new(55);
        let q = rng.gaussian_matrix(8, 8, 1.0);
        let k = rng.gaussian_matrix(8, 8, 1.0);
        let v = rng.gaussian_matrix(8, 8, 1.0);
        let w = WindowedAttention {
            half_window: 8,
            global_tokens: 0,
        };
        let a = w.attend(&q, &k, &v).unwrap();
        let b = DenseAttention.attend(&q, &k, &v).unwrap();
        assert!(a.mse(&b).unwrap() < 1e-8);
    }

    #[test]
    fn random_sampling_full_budget_equals_dense() {
        let mut rng = SplitMix64::new(56);
        let q = rng.gaussian_matrix(6, 8, 1.0);
        let k = rng.gaussian_matrix(6, 8, 1.0);
        let v = rng.gaussian_matrix(6, 8, 1.0);
        let r = RandomSamplingAttention { k: 6, seed: 1 };
        let a = r.attend(&q, &k, &v).unwrap();
        let b = DenseAttention.attend(&q, &k, &v).unwrap();
        assert!(a.mse(&b).unwrap() < 1e-8);
    }

    #[test]
    fn random_sampling_is_deterministic_per_seed() {
        let mut rng = SplitMix64::new(57);
        let q = rng.gaussian_matrix(20, 8, 1.0);
        let k = rng.gaussian_matrix(20, 8, 1.0);
        let v = rng.gaussian_matrix(20, 8, 1.0);
        let r = RandomSamplingAttention { k: 5, seed: 9 };
        assert_eq!(r.attend(&q, &k, &v).unwrap(), r.attend(&q, &k, &v).unwrap());
        let r2 = RandomSamplingAttention { k: 5, seed: 10 };
        assert_ne!(
            r.attend(&q, &k, &v).unwrap(),
            r2.attend(&q, &k, &v).unwrap()
        );
    }

    #[test]
    fn operators_are_object_safe_and_named() {
        let ops: Vec<Box<dyn AttentionOp>> = vec![
            Box::new(WindowedAttention::with_budget(10)),
            Box::new(RandomSamplingAttention { k: 4, seed: 0 }),
        ];
        assert_eq!(ops[0].name(), "windowed-global");
        assert_eq!(ops[1].name(), "random-sampling");
    }

    #[test]
    fn mismatched_kv_rejected() {
        let q = Matrix::zeros(3, 4);
        let k = Matrix::zeros(3, 4);
        let v = Matrix::zeros(2, 4);
        assert!(WindowedAttention::with_budget(5)
            .attend(&q, &k, &v)
            .is_err());
    }
}
