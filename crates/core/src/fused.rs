//! The fused attention kernel of Fig. 4.
//!
//! Stage 2.2 of the accelerator fuses the operators *exact score MAC →
//! `1/√d` scale → mask → exponentiation* into a single `II=1` loop nest:
//!
//! ```text
//! for i in 1..=Ks.dim2:          // reduction over the head dimension
//!   for j in 1..=Ks.dim1:        // over the selected candidates
//!     S[j] += Qrow[i] * Ks[j][i]
//!     if i == Ks.dim2:           // last reduction step only
//!       S[j] *= 1/sqrt(d); S[j] = mask(S[j]); S[j] = exp(S[j])
//! ```
//!
//! The epilogue (scale/mask/exp) rides on the final reduction iteration, so
//! fusing removes three full passes over the score vector. This module
//! provides both the fused computation (numerically identical to the
//! unfused reference) and its cycle count under a `p`-way unrolled,
//! II=1 pipeline — the model the Fig. 4 bench and `lat-hwsim` charge.

use lat_model::ModelError;
use lat_tensor::Matrix;
use serde::{Deserialize, Serialize};

/// Result of running the fused kernel on one query row.
#[derive(Debug, Clone, PartialEq)]
pub struct FusedRowOutput {
    /// Exponentiated, scaled, masked scores for each candidate.
    pub exp_scores: Vec<f32>,
    /// Sum of the exponentiated scores (the softmax denominator Stage 2.3
    /// divides by).
    pub sum: f32,
    /// Cycles the II=1 hardware loop takes (see [`fused_cycles`]).
    pub cycles: u64,
}

/// Runs the fused score/scale/mask/exp loop for one query row against the
/// gathered candidate matrix `ks` (`k × d`).
///
/// `masked[j] = true` marks candidate `j` as masked out (its exp score
/// becomes 0, as `exp(-inf)`); pass an all-false slice when no mask applies.
/// `unroll` is the spatial unroll factor `p` of the inner loop.
///
/// # Errors
///
/// Returns [`ModelError::InvalidInput`] if dimensions are inconsistent or
/// `unroll == 0`.
///
/// # Example
///
/// ```
/// use lat_core::fused::fused_attention_row;
/// use lat_tensor::Matrix;
///
/// # fn main() -> Result<(), lat_model::ModelError> {
/// let ks = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]])?;
/// let out = fused_attention_row(&[1.0, 0.0], &ks, &[false, false], 1)?;
/// assert_eq!(out.exp_scores.len(), 2);
/// assert!(out.sum > 0.0);
/// # Ok(())
/// # }
/// ```
pub fn fused_attention_row(
    q_row: &[f32],
    ks: &Matrix,
    masked: &[bool],
    unroll: usize,
) -> Result<FusedRowOutput, ModelError> {
    if ks.cols() != q_row.len() {
        return Err(ModelError::InvalidInput(format!(
            "query width {} != candidate width {}",
            q_row.len(),
            ks.cols()
        )));
    }
    if masked.len() != ks.rows() {
        return Err(ModelError::InvalidInput(format!(
            "mask length {} != candidate count {}",
            masked.len(),
            ks.rows()
        )));
    }
    if unroll == 0 {
        return Err(ModelError::InvalidInput(
            "unroll factor must be >= 1".into(),
        ));
    }
    let d = q_row.len();
    let k = ks.rows();
    let scale = 1.0 / (d as f32).sqrt();

    let mut scores = vec![0.0f32; k];
    // The Fig. 4 loop nest: outer over the reduction dim, inner over
    // candidates, epilogue fused into the last outer iteration.
    for i in 0..d {
        for (j, s) in scores.iter_mut().enumerate() {
            *s += q_row[i] * ks[(j, i)];
            if i == d - 1 {
                *s *= scale;
                if masked[j] {
                    *s = f32::NEG_INFINITY;
                }
                *s = s.exp(); // exp(-inf) = 0 for masked lanes
            }
        }
    }
    let sum: f32 = scores.iter().sum();
    Ok(FusedRowOutput {
        exp_scores: scores,
        sum,
        cycles: fused_cycles(d, k, unroll),
    })
}

/// Unfused reference: separate score / scale / mask / exp passes. Produces
/// numerically identical output to [`fused_attention_row`] (modulo fp
/// associativity, which the loop orders here preserve exactly) and the
/// larger [`unfused_cycles`] count.
///
/// # Errors
///
/// As for [`fused_attention_row`].
pub fn unfused_attention_row(
    q_row: &[f32],
    ks: &Matrix,
    masked: &[bool],
    unroll: usize,
) -> Result<FusedRowOutput, ModelError> {
    if ks.cols() != q_row.len() {
        return Err(ModelError::InvalidInput(format!(
            "query width {} != candidate width {}",
            q_row.len(),
            ks.cols()
        )));
    }
    if masked.len() != ks.rows() {
        return Err(ModelError::InvalidInput(format!(
            "mask length {} != candidate count {}",
            masked.len(),
            ks.rows()
        )));
    }
    if unroll == 0 {
        return Err(ModelError::InvalidInput(
            "unroll factor must be >= 1".into(),
        ));
    }
    let d = q_row.len();
    let k = ks.rows();
    // Pass 1: MACs, same i-then-j order as the fused kernel.
    let mut scores = vec![0.0f32; k];
    for i in 0..d {
        for (j, s) in scores.iter_mut().enumerate() {
            *s += q_row[i] * ks[(j, i)];
        }
    }
    // Pass 2: scale.
    let scale = 1.0 / (d as f32).sqrt();
    for s in scores.iter_mut() {
        *s *= scale;
    }
    // Pass 3: mask.
    for (s, &m) in scores.iter_mut().zip(masked) {
        if m {
            *s = f32::NEG_INFINITY;
        }
    }
    // Pass 4: exp.
    for s in scores.iter_mut() {
        *s = s.exp();
    }
    let sum: f32 = scores.iter().sum();
    Ok(FusedRowOutput {
        exp_scores: scores,
        sum,
        cycles: unfused_cycles(d, k, unroll),
    })
}

/// Cycle count of the fused II=1 loop: `d · ceil(k/p)` beats (the epilogue
/// rides along on the last reduction step, costing nothing extra), plus a
/// fixed pipeline-fill latency.
pub fn fused_cycles(d: usize, k: usize, unroll: usize) -> u64 {
    let beats = d as u64 * k.div_ceil(unroll) as u64;
    beats + PIPELINE_FILL
}

/// Cycle count of the unfused version: the MAC loop plus three further
/// passes over the score vector (scale, mask, exp), each `ceil(k/p)` beats
/// with its own pipeline fill — the traffic Fig. 4's fusion eliminates.
pub fn unfused_cycles(d: usize, k: usize, unroll: usize) -> u64 {
    let per_pass = k.div_ceil(unroll) as u64;
    let mac = d as u64 * per_pass + PIPELINE_FILL;
    mac + 3 * (per_pass + PIPELINE_FILL)
}

/// Fixed pipeline fill/drain latency charged per loop launch (deep fp
/// adder/multiplier pipelines on the FPGA fabric).
pub const PIPELINE_FILL: u64 = 12;

/// Runs the fused kernel for the same query position across `h` heads in
/// one launch (Fig. 2(a) Stage 2.2 shows head₁/head₂ sharing the fused
/// pipeline; the heads' loop nests are concatenated so the pipeline fill
/// is paid once instead of `h` times).
///
/// `per_head` pairs each head's query row with its gathered candidate
/// matrix; all heads use an unmasked epilogue here (the pre-selection
/// already removed non-candidates).
///
/// # Errors
///
/// Returns [`ModelError::InvalidInput`] on any dimension mismatch or
/// `unroll == 0`.
pub fn fused_heads(
    per_head: &[(&[f32], &Matrix)],
    unroll: usize,
) -> Result<Vec<FusedRowOutput>, ModelError> {
    if unroll == 0 {
        return Err(ModelError::InvalidInput(
            "unroll factor must be >= 1".into(),
        ));
    }
    let mut outputs = Vec::with_capacity(per_head.len());
    for (q_row, ks) in per_head {
        let mask = vec![false; ks.rows()];
        let mut out = fused_attention_row(q_row, ks, &mask, unroll)?;
        // Head fusion: the per-launch fill is charged once for the whole
        // group (corrected below), so strip it from the per-head count.
        out.cycles -= PIPELINE_FILL;
        outputs.push(out);
    }
    if let Some(first) = outputs.first_mut() {
        first.cycles += PIPELINE_FILL;
    }
    Ok(outputs)
}

/// Total cycles of [`fused_heads`] versus launching each head separately.
pub fn head_fusion_gain(h: usize, d: usize, k: usize, unroll: usize) -> FusionGain {
    let beats = (d as u64) * (k as u64).div_ceil(unroll.max(1) as u64);
    FusionGain {
        fused: h as u64 * beats + PIPELINE_FILL,
        unfused: h as u64 * (beats + PIPELINE_FILL),
    }
}

/// Relative speedup of fused over unfused execution for given dimensions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FusionGain {
    /// Fused kernel cycles.
    pub fused: u64,
    /// Unfused (4-pass) cycles.
    pub unfused: u64,
}

impl FusionGain {
    /// Computes the gain for head dimension `d`, `k` candidates, unroll `p`.
    pub fn compute(d: usize, k: usize, unroll: usize) -> Self {
        Self {
            fused: fused_cycles(d, k, unroll),
            unfused: unfused_cycles(d, k, unroll),
        }
    }

    /// `unfused / fused` ratio.
    pub fn speedup(&self) -> f64 {
        self.unfused as f64 / self.fused.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lat_tensor::rng::SplitMix64;

    #[test]
    fn fused_equals_unfused_numerically() {
        let mut rng = SplitMix64::new(51);
        let d = 16;
        let k = 10;
        let ks = rng.gaussian_matrix(k, d, 1.0);
        let q: Vec<f32> = (0..d).map(|_| rng.next_gaussian()).collect();
        let mask = vec![false; k];
        let f = fused_attention_row(&q, &ks, &mask, 2).unwrap();
        let u = unfused_attention_row(&q, &ks, &mask, 2).unwrap();
        for (a, b) in f.exp_scores.iter().zip(&u.exp_scores) {
            assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
        assert!((f.sum - u.sum).abs() < 1e-4);
    }

    #[test]
    fn masked_lanes_contribute_zero() {
        let ks = Matrix::identity(3);
        let q = [1.0, 1.0, 1.0];
        let mask = [false, true, false];
        let out = fused_attention_row(&q, &ks, &mask, 1).unwrap();
        assert_eq!(out.exp_scores[1], 0.0);
        assert!(out.exp_scores[0] > 0.0);
    }

    #[test]
    fn fused_is_cheaper_in_cycles() {
        for (d, k, p) in [(64usize, 30usize, 1usize), (64, 30, 4), (16, 8, 2)] {
            let g = FusionGain::compute(d, k, p);
            assert!(g.fused < g.unfused, "d={d} k={k} p={p}");
            assert!(g.speedup() > 1.0);
        }
    }

    #[test]
    fn cycle_model_formulas() {
        // d=4, k=6, p=2: beats = 4*3 = 12, +fill.
        assert_eq!(fused_cycles(4, 6, 2), 12 + PIPELINE_FILL);
        // unfused adds 3 passes of 3 beats + fills.
        assert_eq!(
            unfused_cycles(4, 6, 2),
            12 + PIPELINE_FILL + 3 * (3 + PIPELINE_FILL)
        );
    }

    #[test]
    fn unroll_reduces_cycles() {
        assert!(fused_cycles(64, 32, 4) < fused_cycles(64, 32, 1));
        // Perfect 4x on the beat component.
        let c1 = fused_cycles(64, 32, 1) - PIPELINE_FILL;
        let c4 = fused_cycles(64, 32, 4) - PIPELINE_FILL;
        assert_eq!(c1, 4 * c4);
    }

    #[test]
    fn dimension_validation() {
        let ks = Matrix::zeros(3, 4);
        assert!(fused_attention_row(&[0.0; 5], &ks, &[false; 3], 1).is_err());
        assert!(fused_attention_row(&[0.0; 4], &ks, &[false; 2], 1).is_err());
        assert!(fused_attention_row(&[0.0; 4], &ks, &[false; 3], 0).is_err());
        assert!(unfused_attention_row(&[0.0; 5], &ks, &[false; 3], 1).is_err());
        assert!(unfused_attention_row(&[0.0; 4], &ks, &[false; 2], 1).is_err());
        assert!(unfused_attention_row(&[0.0; 4], &ks, &[false; 3], 0).is_err());
    }

    #[test]
    fn sum_matches_score_total() {
        let mut rng = SplitMix64::new(52);
        let ks = rng.gaussian_matrix(5, 8, 1.0);
        let q: Vec<f32> = (0..8).map(|_| rng.next_gaussian()).collect();
        let out = fused_attention_row(&q, &ks, &[false; 5], 1).unwrap();
        let manual: f32 = out.exp_scores.iter().sum();
        assert!((out.sum - manual).abs() < 1e-6);
    }

    #[test]
    fn all_masked_gives_zero_sum() {
        let ks = Matrix::identity(2);
        let out = fused_attention_row(&[1.0, 0.0], &ks, &[true, true], 1).unwrap();
        assert_eq!(out.sum, 0.0);
    }

    #[test]
    fn fused_heads_match_individual_launches() {
        let mut rng = SplitMix64::new(53);
        let d = 16;
        let k = 8;
        let ks1 = rng.gaussian_matrix(k, d, 1.0);
        let ks2 = rng.gaussian_matrix(k, d, 1.0);
        let q1: Vec<f32> = (0..d).map(|_| rng.next_gaussian()).collect();
        let q2: Vec<f32> = (0..d).map(|_| rng.next_gaussian()).collect();
        let grouped = fused_heads(&[(&q1, &ks1), (&q2, &ks2)], 1).unwrap();
        let solo1 = fused_attention_row(&q1, &ks1, &[false; 8], 1).unwrap();
        let solo2 = fused_attention_row(&q2, &ks2, &[false; 8], 1).unwrap();
        assert_eq!(grouped[0].exp_scores, solo1.exp_scores);
        assert_eq!(grouped[1].exp_scores, solo2.exp_scores);
        // One fill total instead of two.
        let grouped_cycles: u64 = grouped.iter().map(|o| o.cycles).sum();
        assert_eq!(grouped_cycles + PIPELINE_FILL, solo1.cycles + solo2.cycles);
    }

    #[test]
    fn head_fusion_gain_saves_fills() {
        let g = head_fusion_gain(12, 64, 30, 2);
        assert_eq!(g.unfused - g.fused, 11 * PIPELINE_FILL);
        assert!(g.speedup() > 1.0);
    }

    #[test]
    fn fused_heads_rejects_zero_unroll() {
        let ks = Matrix::identity(2);
        let q = [1.0f32, 0.0];
        assert!(fused_heads(&[(&q[..], &ks)], 0).is_err());
    }

    #[test]
    fn fusion_gain_grows_with_relative_epilogue_weight() {
        // Small d (short reduction) makes the extra passes relatively more
        // expensive, so fusion helps more.
        let small_d = FusionGain::compute(8, 30, 1).speedup();
        let large_d = FusionGain::compute(256, 30, 1).speedup();
        assert!(small_d > large_d);
    }
}
