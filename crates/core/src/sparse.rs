//! The sparse attention operator (§3, Fig. 3 steps 2–6).
//!
//! Pipeline per head:
//!
//! 1. Quantize `Q`, `K` to `bits` (1-bit sign or 4-bit affine).
//! 2. Approximate scores via the LUT integer matmul (step 2).
//! 3. Top-k candidate selection per query row (steps 3–4).
//! 4. *Exact* full-precision `q·Kₛᵀ/√d` over the selected candidates only
//!    (step 5).
//! 5. Softmax over the candidates and `Z = S·Vₛ/ΣS` (step 6).
//!
//! Complexity drops from `O(n²·d)` to `O(n·k·d)` while the retained scores
//! are computed at full precision — quantization only influences *which*
//! scores survive, never their values.

use crate::preselect::{preselect, PreselectConfig};
use lat_model::attention::AttentionOp;
use lat_model::ModelError;
use lat_tensor::quant::BitWidth;
use lat_tensor::{ops, Matrix};
use serde::{Deserialize, Serialize};

/// Configuration of the sparse attention operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SparseAttentionConfig {
    /// Pre-selection quantization width.
    pub bits: BitWidth,
    /// Candidates retained per query row.
    pub k: usize,
    /// Causal masking: query `i` may only attend to keys `j ≤ i`
    /// (decoder-style). Masked candidates are dropped *before* the Top-k
    /// selection, so the retained set is all-valid.
    pub causal: bool,
}

impl SparseAttentionConfig {
    /// The paper's evaluation sweet spot: 1-bit pre-selection, Top-30,
    /// bidirectional (encoder) attention.
    pub fn paper_default() -> Self {
        Self {
            bits: BitWidth::One,
            k: 30,
            causal: false,
        }
    }

    /// Builder-style override of `k`.
    pub fn with_k(mut self, k: usize) -> Self {
        self.k = k;
        self
    }

    /// Builder-style override of the bit-width.
    pub fn with_bits(mut self, bits: BitWidth) -> Self {
        self.bits = bits;
        self
    }

    /// Builder-style causal-masking toggle.
    pub fn with_causal(mut self, causal: bool) -> Self {
        self.causal = causal;
        self
    }

    fn preselect_config(&self) -> PreselectConfig {
        PreselectConfig {
            bits: self.bits,
            k: self.k,
        }
    }
}

impl Default for SparseAttentionConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// The paper's quantization-based sparse attention operator.
///
/// Implements [`AttentionOp`], so it drops into
/// [`lat_model::encoder::Encoder::forward`] wherever the dense baseline is
/// used.
///
/// # Example
///
/// ```
/// use lat_core::sparse::{SparseAttention, SparseAttentionConfig};
/// use lat_model::attention::AttentionOp;
/// use lat_tensor::rng::SplitMix64;
///
/// # fn main() -> Result<(), lat_model::ModelError> {
/// let mut rng = SplitMix64::new(5);
/// let q = rng.gaussian_matrix(40, 16, 1.0);
/// let op = SparseAttention::new(SparseAttentionConfig::paper_default().with_k(8));
/// let z = op.attend(&q, &q, &q)?;
/// assert_eq!(z.shape(), (40, 16));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SparseAttention {
    cfg: SparseAttentionConfig,
}

impl SparseAttention {
    /// Creates the operator from a configuration.
    pub fn new(cfg: SparseAttentionConfig) -> Self {
        Self { cfg }
    }

    /// The operator configuration.
    pub fn config(&self) -> SparseAttentionConfig {
        self.cfg
    }

    /// Full sparse attention with per-row candidate lists exposed —
    /// the entry point the FPGA pipeline simulator uses, since Stage 1
    /// (pre-selection) and Stage 2 (exact attention) run in different
    /// pipeline stages with an HBM buffer in between.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] on operand shape mismatch.
    pub fn attend_with_details(
        &self,
        q: &Matrix,
        k: &Matrix,
        v: &Matrix,
    ) -> Result<SparseAttentionOutput, ModelError> {
        if k.rows() != v.rows() {
            return Err(ModelError::InvalidInput(format!(
                "K has {} rows but V has {}",
                k.rows(),
                v.rows()
            )));
        }
        let mut sel = preselect(q, k, self.cfg.preselect_config())?;
        if self.cfg.causal {
            // Drop future positions, then refill up to k from the ranked
            // remainder (the merge-sort output is fully ordered, so the
            // next-best valid candidates follow naturally).
            let m = sel.num_keys;
            let k_keep = self.cfg.k;
            sel.candidates = (0..q.rows())
                .map(|i| {
                    crate::topk::top_k_merge_network(&sel.approx_scores[i * m..(i + 1) * m], m)
                        .into_iter()
                        .filter(|&j| j <= i)
                        .take(k_keep)
                        .collect()
                })
                .collect();
        }
        let sel = sel;
        let scale = 1.0 / (q.cols() as f32).sqrt();
        let mut out = Matrix::zeros(q.rows(), v.cols());
        let mut exact_macs: u64 = 0;
        for i in 0..q.rows() {
            let cands = &sel.candidates[i];
            if cands.is_empty() {
                continue;
            }
            // Stage 2.1: gather the selected K/V rows.
            let ks = k.gather_rows(cands);
            let vs = v.gather_rows(cands);
            // Stage 2.2 (steps 5–6.1): exact scores + scale + exp.
            let qi =
                Matrix::from_vec(1, q.cols(), q.row(i).to_vec()).expect("row buffer matches width");
            let scores = qi.matmul_transposed(&ks)?.scaled(scale);
            let expd = ops::exp_rows(&scores);
            // Stage 2.3 (step 6.2): Z_i = S_i · V_s / Σ S_i.
            let sum: f32 = expd.row(0).iter().sum();
            let z = expd.matmul(&vs)?;
            let inv = if sum > 0.0 { 1.0 / sum } else { 0.0 };
            for (dst, &src) in out.row_mut(i).iter_mut().zip(z.row(0)) {
                *dst = src * inv;
            }
            exact_macs += (cands.len() * q.cols()) as u64 // scores
                + (cands.len() * v.cols()) as u64; // S·V
        }
        Ok(SparseAttentionOutput {
            output: out,
            candidates: sel.candidates,
            exact_macs,
        })
    }

    /// MAC count of dense attention on the same shapes, for the complexity-
    /// reduction reports (`scores` + `S·V`).
    pub fn dense_macs(n: usize, m: usize, d: usize) -> u64 {
        (n * m * d) as u64 * 2
    }
}

impl AttentionOp for SparseAttention {
    fn attend(&self, q: &Matrix, k: &Matrix, v: &Matrix) -> Result<Matrix, ModelError> {
        Ok(self.attend_with_details(q, k, v)?.output)
    }

    fn name(&self) -> &'static str {
        "sparse-topk"
    }
}

/// Output of [`SparseAttention::attend_with_details`].
#[derive(Debug, Clone, PartialEq)]
pub struct SparseAttentionOutput {
    /// The attention output matrix (`n × d_v`).
    pub output: Matrix,
    /// Per-query-row candidate key indices actually attended.
    pub candidates: Vec<Vec<usize>>,
    /// Exact-path multiply-accumulate count actually spent.
    pub exact_macs: u64,
}

impl SparseAttentionOutput {
    /// Complexity reduction versus dense attention on the same shapes
    /// (1 − sparse/dense), in `[0, 1)`.
    pub fn complexity_reduction(&self, n: usize, m: usize, d: usize) -> f64 {
        let dense = SparseAttention::dense_macs(n, m, d);
        if dense == 0 {
            return 0.0;
        }
        1.0 - self.exact_macs as f64 / dense as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lat_model::attention::DenseAttention;
    use lat_tensor::rng::SplitMix64;

    fn random_qkv(seed: u64, n: usize, d: usize) -> (Matrix, Matrix, Matrix) {
        let mut rng = SplitMix64::new(seed);
        (
            rng.gaussian_matrix(n, d, 1.0),
            rng.gaussian_matrix(n, d, 1.0),
            rng.gaussian_matrix(n, d, 1.0),
        )
    }

    #[test]
    fn equals_dense_when_k_covers_all_keys() {
        // With k ≥ n every candidate survives and the exact path computes
        // full softmax attention — bitwise-equivalent math up to fp ordering.
        let (q, k, v) = random_qkv(41, 12, 8);
        let sparse = SparseAttention::new(SparseAttentionConfig {
            bits: BitWidth::Eight,
            k: 12,
            causal: false,
        });
        let a = sparse.attend(&q, &k, &v).unwrap();
        let b = DenseAttention.attend(&q, &k, &v).unwrap();
        let mse = a.mse(&b).unwrap();
        assert!(mse < 1e-8, "mse = {mse}");
    }

    #[test]
    fn close_to_dense_at_moderate_k() {
        let (q, k, v) = random_qkv(42, 64, 16);
        let sparse = SparseAttention::new(SparseAttentionConfig {
            bits: BitWidth::Four,
            k: 32,
            causal: false,
        });
        let a = sparse.attend(&q, &k, &v).unwrap();
        let b = DenseAttention.attend(&q, &k, &v).unwrap();
        // Cosine similarity per row should be high.
        for i in 0..a.rows() {
            let cs = ops::cosine_similarity(a.row(i), b.row(i));
            assert!(cs > 0.9, "row {i} cosine {cs}");
        }
    }

    #[test]
    fn error_decreases_with_k() {
        let (q, k, v) = random_qkv(43, 64, 16);
        let dense = DenseAttention.attend(&q, &k, &v).unwrap();
        let mut prev = f32::INFINITY;
        for kk in [8usize, 16, 32, 64] {
            let sparse = SparseAttention::new(SparseAttentionConfig {
                bits: BitWidth::Eight,
                k: kk,
                causal: false,
            });
            let out = sparse.attend(&q, &k, &v).unwrap();
            let mse = out.mse(&dense).unwrap();
            assert!(
                mse <= prev * 1.5 + 1e-9,
                "error should broadly decrease with k: k={kk} mse={mse} prev={prev}"
            );
            prev = mse;
        }
        assert!(prev < 1e-8, "k=n must be exact");
    }

    #[test]
    fn complexity_reduction_exceeds_80_percent() {
        // §5.1: with Top-30 the attention computation complexity is reduced
        // by more than 80% on average (sequences ≥ ~150 tokens).
        let (q, k, v) = random_qkv(44, 177, 32);
        let sparse = SparseAttention::new(SparseAttentionConfig::paper_default());
        let out = sparse.attend_with_details(&q, &k, &v).unwrap();
        let red = out.complexity_reduction(177, 177, 32);
        assert!(red > 0.8, "complexity reduction only {red:.3}");
    }

    #[test]
    fn candidates_respect_k() {
        let (q, k, v) = random_qkv(45, 50, 8);
        let sparse = SparseAttention::new(SparseAttentionConfig {
            bits: BitWidth::One,
            k: 7,
            causal: false,
        });
        let out = sparse.attend_with_details(&q, &k, &v).unwrap();
        assert!(out.candidates.iter().all(|c| c.len() == 7));
    }

    #[test]
    fn kv_mismatch_rejected() {
        let q = Matrix::zeros(4, 8);
        let k = Matrix::zeros(4, 8);
        let v = Matrix::zeros(5, 8);
        let sparse = SparseAttention::default();
        assert!(sparse.attend(&q, &k, &v).is_err());
    }

    #[test]
    fn rows_are_convex_combinations_of_values() {
        // Attention outputs are softmax-weighted averages of selected V
        // rows, so each output element is within [min, max] of V's column.
        let (q, k, v) = random_qkv(46, 30, 8);
        let sparse = SparseAttention::new(SparseAttentionConfig::paper_default().with_k(5));
        let out = sparse.attend(&q, &k, &v).unwrap();
        for j in 0..v.cols() {
            let col = v.col(j);
            let lo = col.iter().cloned().fold(f32::INFINITY, f32::min);
            let hi = col.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            for i in 0..out.rows() {
                let x = out[(i, j)];
                assert!(
                    x >= lo - 1e-4 && x <= hi + 1e-4,
                    "({i},{j}) = {x} ∉ [{lo},{hi}]"
                );
            }
        }
    }

    #[test]
    fn operator_name_and_default() {
        assert_eq!(SparseAttention::default().name(), "sparse-topk");
        assert_eq!(
            SparseAttention::default().config(),
            SparseAttentionConfig::paper_default()
        );
    }

    #[test]
    fn builder_overrides() {
        let cfg = SparseAttentionConfig::paper_default()
            .with_k(12)
            .with_bits(BitWidth::Four);
        assert_eq!(cfg.k, 12);
        assert_eq!(cfg.bits, BitWidth::Four);
    }

    #[test]
    fn causal_candidates_never_look_ahead() {
        let (q, k, v) = random_qkv(48, 40, 8);
        let sparse = SparseAttention::new(
            SparseAttentionConfig::paper_default()
                .with_k(6)
                .with_causal(true),
        );
        let out = sparse.attend_with_details(&q, &k, &v).unwrap();
        for (i, cands) in out.candidates.iter().enumerate() {
            assert!(
                cands.iter().all(|&j| j <= i),
                "row {i} attends ahead: {cands:?}"
            );
            // Rows with at least k history keep exactly k candidates.
            if i + 1 >= 6 {
                assert_eq!(cands.len(), 6, "row {i} under-filled");
            } else {
                assert_eq!(cands.len(), i + 1);
            }
        }
        // Row 0 can only attend to itself.
        assert_eq!(out.candidates[0], vec![0]);
    }

    #[test]
    fn causal_matches_dense_causal_at_full_k() {
        use lat_tensor::ops;
        let (q, k, v) = random_qkv(49, 16, 8);
        let sparse = SparseAttention::new(SparseAttentionConfig {
            bits: BitWidth::Eight,
            k: 16,
            causal: true,
        });
        let got = sparse.attend(&q, &k, &v).unwrap();
        // Dense causal reference.
        let scale = 1.0 / (8f32).sqrt();
        let scores = q.matmul_transposed(&k).unwrap().scaled(scale);
        let masked = ops::mask_causal(&scores, f32::NEG_INFINITY);
        let probs = ops::softmax_rows(&masked);
        let expect = probs.matmul(&v).unwrap();
        let mse = got.mse(&expect).unwrap();
        assert!(mse < 1e-8, "causal mse {mse}");
    }

    #[test]
    fn works_inside_full_encoder() {
        use lat_model::config::ModelConfig;
        use lat_model::encoder::Encoder;
        let cfg = ModelConfig::tiny();
        let mut rng = SplitMix64::new(47);
        let enc = Encoder::random(&cfg, &mut rng);
        let x = rng.gaussian_matrix(24, cfg.hidden_dim, 1.0);
        let dense = enc.forward(&x, &DenseAttention).unwrap();
        let sparse_op = SparseAttention::new(SparseAttentionConfig {
            bits: BitWidth::Four,
            k: 16,
            causal: false,
        });
        let sparse = enc.forward(&x, &sparse_op).unwrap();
        assert_eq!(dense.shape(), sparse.shape());
        // Outputs stay close through two full encoder layers.
        let mut sim = 0.0;
        for i in 0..dense.rows() {
            sim += ops::cosine_similarity(dense.row(i), sparse.row(i));
        }
        sim /= dense.rows() as f32;
        assert!(sim > 0.9, "mean cosine through encoder = {sim}");
    }
}
