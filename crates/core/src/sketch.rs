//! Streaming (single-pass, bounded-state) summary statistics for
//! million-request traces.
//!
//! The serving engines in `lat-hwsim` historically retained every
//! per-request latency sample and sorted the full population at report
//! time, so trace size was memory-bound long before it was compute-bound.
//! This module provides the on-line replacements the engines route through
//! when a report is built under `ReportMode::Streaming`:
//!
//! - [`StreamingStats`]: count/mean/min/max in O(1) state, NaN-poisoning
//!   exactly like `lat_tensor::stats::summarize` (one NaN observation
//!   poisons every moment uniformly — no finite min beside a NaN mean).
//! - [`P2Quantile`]: the Jain–Chlamtac P² estimator — five markers of
//!   O(1) state per tracked quantile, updated per observation with a
//!   piecewise-parabolic height adjustment. Exact (nearest-rank, matching
//!   `stats::percentile`) while fewer than five samples have been seen.
//! - [`QuantileSketch`]: a bundle of P² markers over a fixed quantile set
//!   plus a [`StreamingStats`], with a deterministic [`QuantileSketch::merge`]
//!   so per-chunk sketches produced under `Scheduler::par_map_indexed`
//!   fan-out can be combined in index order with results invariant to the
//!   worker count.
//!
//! Everything here is deterministic: no ambient RNG, no wall clock, no
//! hash-order iteration; identical observation sequences produce
//! bit-identical sketches. P² is *order-dependent* (observing a permuted
//! stream moves the estimate within its error bound), which is why the
//! engines feed it in simulated-event order — itself deterministic.

/// How an engine builds its report.
///
/// - [`ReportMode::Exact`] retains every per-request sample and computes
///   nearest-rank percentiles over the sorted population — bit-identical
///   to the historical reports, O(n) memory.
/// - [`ReportMode::Streaming`] feeds each sample into a [`QuantileSketch`]
///   as it is produced and drops it, so a million-request trace runs in
///   bounded memory. Percentiles are P² estimates within a pinned ε of
///   the exact path; per-request vectors in the report (`batch_log`,
///   decode `requests`, failure `outcomes`) are left empty.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReportMode {
    /// Retain all samples; reports are bit-identical to the pre-sketch era.
    #[default]
    Exact,
    /// O(1)-state streaming sketches; bounded memory, ε-approximate tails.
    Streaming,
}

/// Count/mean/min/max accumulator in O(1) state.
///
/// NaN observations poison the whole summary uniformly (mean, min and max
/// all become NaN), mirroring `lat_tensor::stats::summarize`; the count
/// still includes poisoned observations. Min/max use `total_cmp`, so a
/// clean stream containing signed zeros orders them deterministically.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamingStats {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    poisoned: bool,
}

impl Default for StreamingStats {
    fn default() -> Self {
        Self::new()
    }
}

impl StreamingStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            poisoned: false,
        }
    }

    /// Feeds one observation.
    pub fn observe(&mut self, x: f64) {
        self.count += 1;
        if x.is_nan() {
            self.poisoned = true;
            return;
        }
        self.sum += x;
        if x.total_cmp(&self.min) == std::cmp::Ordering::Less {
            self.min = x;
        }
        if x.total_cmp(&self.max) == std::cmp::Ordering::Greater {
            self.max = x;
        }
    }

    /// Observations seen (including NaN observations).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether a NaN observation has poisoned the summary.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// Arithmetic mean; NaN when empty or poisoned.
    pub fn mean(&self) -> f64 {
        if self.count == 0 || self.poisoned {
            f64::NAN
        } else {
            self.sum / self.count as f64
        }
    }

    /// Sum of the (non-NaN) observations; NaN when poisoned.
    pub fn sum(&self) -> f64 {
        if self.poisoned {
            f64::NAN
        } else {
            self.sum
        }
    }

    /// Minimum; NaN when empty or poisoned.
    pub fn min(&self) -> f64 {
        if self.count == 0 || self.poisoned {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Maximum; NaN when empty or poisoned.
    pub fn max(&self) -> f64 {
        if self.count == 0 || self.poisoned {
            f64::NAN
        } else {
            self.max
        }
    }

    /// Folds `other` in. Exact: the merged accumulator equals one fed the
    /// concatenated streams (sum re-association aside, which is the only
    /// way a merge order can show up — and only in the last bits of
    /// `mean`).
    pub fn merge(&mut self, other: &Self) {
        self.count += other.count;
        self.sum += other.sum;
        self.poisoned |= other.poisoned;
        if other.count > other.nan_count_proxy() {
            if other.min.total_cmp(&self.min) == std::cmp::Ordering::Less {
                self.min = other.min;
            }
            if other.max.total_cmp(&self.max) == std::cmp::Ordering::Greater {
                self.max = other.max;
            }
        }
    }

    /// `other.min/max` are the sentinels iff it never saw a non-NaN value;
    /// merging sentinels would be harmless (±inf never wins `total_cmp`
    /// against a finite value on the wrong side) but this keeps the
    /// intent explicit.
    fn nan_count_proxy(&self) -> u64 {
        if self.min == f64::INFINITY && self.max == f64::NEG_INFINITY {
            self.count
        } else {
            0
        }
    }
}

/// Number of markers the P² estimator maintains per tracked quantile.
const MARKERS: usize = 5;

/// Single-quantile P² (piecewise-parabolic) estimator: Jain & Chlamtac,
/// CACM 1985. Five markers (min, two flanks, the tracked quantile, max)
/// whose heights approximate the empirical quantile function; each
/// observation moves marker positions by O(1) work.
///
/// While fewer than `MARKERS` samples have been observed the estimate is
/// *exact* — nearest-rank over the buffered samples, bit-identical to
/// `lat_tensor::stats::percentile`.
///
/// Non-finite observations (NaN or ±∞) poison the estimator: the marker
/// arithmetic cannot represent them, so rather than silently corrupt the
/// estimate the sketch reports NaN from then on — the same uniform
/// poisoning contract as [`StreamingStats`] extended to infinities.
#[derive(Debug, Clone, PartialEq)]
pub struct P2Quantile {
    p: f64,
    /// Total finite observations fed to the markers.
    n: u64,
    /// Marker heights; for `n < MARKERS` the first `n` entries are the raw
    /// buffered samples (unsorted).
    q: [f64; MARKERS],
    /// Marker positions, 1-indexed (`pos[0] == 1`, `pos[4] == n`).
    pos: [f64; MARKERS],
    /// Desired marker positions.
    want: [f64; MARKERS],
    poisoned: bool,
}

impl P2Quantile {
    /// A fresh estimator for quantile `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]` or NaN.
    pub fn new(p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "quantile {p} outside [0,1]" // matches stats::percentile wording
        );
        Self {
            p,
            n: 0,
            q: [0.0; MARKERS],
            pos: [1.0, 2.0, 3.0, 4.0, 5.0],
            want: [0.0; MARKERS],
            poisoned: false,
        }
    }

    /// The tracked quantile.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Finite observations fed so far (poisoning observations excluded).
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Whether a non-finite observation has poisoned the estimate.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// Desired-position increments per observation for quantile `p`.
    fn want_step(p: f64) -> [f64; MARKERS] {
        [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0]
    }

    /// Feeds one observation.
    pub fn observe(&mut self, x: f64) {
        if !x.is_finite() {
            self.poisoned = true;
            return;
        }
        if self.n < MARKERS as u64 {
            self.q[self.n as usize] = x;
            self.n += 1;
            if self.n == MARKERS as u64 {
                self.q.sort_by(f64::total_cmp);
                let p = self.p;
                self.want = [1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0];
            }
            return;
        }
        self.n += 1;
        // Locate the cell containing x, clamping x into [q[0], q[4]].
        let k = if x < self.q[0] {
            self.q[0] = x;
            0
        } else if x >= self.q[MARKERS - 1] {
            self.q[MARKERS - 1] = x;
            MARKERS - 2
        } else {
            // q[k] <= x < q[k+1]
            let mut k = 0;
            while k + 1 < MARKERS - 1 && x >= self.q[k + 1] {
                k += 1;
            }
            k
        };
        for pos in self.pos.iter_mut().skip(k + 1) {
            *pos += 1.0;
        }
        for (want, step) in self.want.iter_mut().zip(Self::want_step(self.p)) {
            *want += step;
        }
        // Adjust the three interior markers toward their desired positions.
        for i in 1..MARKERS - 1 {
            let d = self.want[i] - self.pos[i];
            let up = self.pos[i + 1] - self.pos[i];
            let dn = self.pos[i - 1] - self.pos[i];
            if (d >= 1.0 && up > 1.0) || (d <= -1.0 && dn < -1.0) {
                let s = d.signum();
                let parab = self.parabolic(i, s);
                if self.q[i - 1] < parab && parab < self.q[i + 1] {
                    self.q[i] = parab;
                } else {
                    self.q[i] = self.linear(i, s);
                }
                self.pos[i] += s;
            }
        }
    }

    /// Piecewise-parabolic height prediction for marker `i` moved by `s`.
    fn parabolic(&self, i: usize, s: f64) -> f64 {
        let q = &self.q;
        let n = &self.pos;
        q[i] + s / (n[i + 1] - n[i - 1])
            * ((n[i] - n[i - 1] + s) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
                + (n[i + 1] - n[i] - s) * (q[i] - q[i - 1]) / (n[i] - n[i - 1]))
    }

    /// Linear fallback when the parabola overshoots a neighbour.
    fn linear(&self, i: usize, s: f64) -> f64 {
        let j = if s > 0.0 { i + 1 } else { i - 1 };
        self.q[i] + s * (self.q[j] - self.q[i]) / (self.pos[j] - self.pos[i])
    }

    /// The current estimate; NaN when empty or poisoned. Exact
    /// (nearest-rank) below `MARKERS` samples, P² beyond.
    pub fn quantile(&self) -> f64 {
        if self.poisoned || self.n == 0 {
            return f64::NAN;
        }
        if self.n < MARKERS as u64 {
            let mut buf = self.q;
            let buf = &mut buf[..self.n as usize];
            buf.sort_by(f64::total_cmp);
            let idx = ((buf.len() as f64 - 1.0) * self.p).round() as usize;
            return buf[idx];
        }
        self.q[2]
    }

    /// Empirical CDF implied by the markers of a *full* (`n >= MARKERS`)
    /// estimator: piecewise linear between marker heights, with
    /// `F(q[0]) = 0` and `F(q[4]) = 1`. Equal-height neighbours (duplicate
    /// sample values) produce a jump, resolved to the upper position.
    fn marker_cdf(&self, x: f64) -> f64 {
        debug_assert!(self.n >= MARKERS as u64);
        if x.total_cmp(&self.q[0]) != std::cmp::Ordering::Greater {
            return 0.0;
        }
        if x.total_cmp(&self.q[MARKERS - 1]) != std::cmp::Ordering::Less {
            return 1.0;
        }
        let span = self.pos[MARKERS - 1] - 1.0;
        for i in 0..MARKERS - 1 {
            if x < self.q[i + 1] {
                let width = self.q[i + 1] - self.q[i];
                let frac = if width > 0.0 {
                    (x - self.q[i]) / width
                } else {
                    1.0
                };
                let rank = (self.pos[i] - 1.0) + frac * (self.pos[i + 1] - self.pos[i]);
                return rank / span;
            }
        }
        1.0
    }

    /// Folds `other` into `self` in O(1): the merged markers are read off
    /// the *n*-weighted mixture of the two sketches' marker CDFs at the
    /// merged desired positions. Deterministic, and bit-symmetric for a
    /// single pairwise merge (IEEE addition commutes); chained merges are
    /// associative only up to the sketch's ε, like P² itself.
    pub fn merge(&mut self, other: &Self) {
        assert!(
            self.p.to_bits() == other.p.to_bits(),
            "cannot merge sketches tracking different quantiles"
        );
        self.poisoned |= other.poisoned;
        if other.n == 0 {
            return;
        }
        // Either side still in its exact buffer stage: replay the raw
        // samples (ascending, deterministic) into the other side.
        if other.n < MARKERS as u64 {
            let mut buf = other.q;
            let buf = &mut buf[..other.n as usize];
            buf.sort_by(f64::total_cmp);
            for &x in buf.iter() {
                self.observe(x);
            }
            return;
        }
        if self.n < MARKERS as u64 {
            let mut merged = other.clone();
            merged.poisoned |= self.poisoned;
            let mut buf = self.q;
            let buf = &mut buf[..self.n as usize];
            buf.sort_by(f64::total_cmp);
            for &x in buf.iter() {
                merged.observe(x);
            }
            *self = merged;
            return;
        }
        let n = self.n + other.n;
        let nf = n as f64;
        let wa = self.n as f64 / nf;
        let wb = other.n as f64 / nf;
        // The mixture CDF is piecewise linear with breakpoints at the
        // union of the two marker height sets, so it inverts exactly:
        // walk the breakpoints to the bracketing segment, interpolate.
        let mut hs = [0.0f64; 2 * MARKERS];
        hs[..MARKERS].copy_from_slice(&self.q);
        hs[MARKERS..].copy_from_slice(&other.q);
        hs.sort_by(f64::total_cmp);
        let mut fs = [0.0f64; 2 * MARKERS];
        for (f, &h) in fs.iter_mut().zip(hs.iter()) {
            *f = wa * self.marker_cdf(h) + wb * other.marker_cdf(h);
        }
        let invert = |u: f64| -> f64 {
            if u <= fs[0] {
                return hs[0];
            }
            for j in 1..hs.len() {
                if u <= fs[j] {
                    let df = fs[j] - fs[j - 1];
                    if df <= 0.0 {
                        return hs[j];
                    }
                    return hs[j - 1] + (u - fs[j - 1]) / df * (hs[j] - hs[j - 1]);
                }
            }
            hs[hs.len() - 1]
        };
        let p = self.p;
        let want = [
            1.0,
            1.0 + (nf - 1.0) * p / 2.0,
            1.0 + (nf - 1.0) * p,
            (nf + 1.0 + (nf - 1.0) * p) / 2.0,
            nf,
        ];
        let mut q = [0.0f64; MARKERS];
        for (qi, &wi) in q.iter_mut().zip(want.iter()) {
            *qi = invert((wi - 1.0) / (nf - 1.0));
        }
        for i in 1..MARKERS {
            if q[i] < q[i - 1] {
                q[i] = q[i - 1];
            }
        }
        // Positions: the desired positions rounded, pinned to pos[0] == 1
        // and pos[4] == n, kept strictly increasing (merged n >= 10, so
        // five distinct integer slots always fit).
        let mut pos = [0.0f64; MARKERS];
        for (pi, &wi) in pos.iter_mut().zip(want.iter()) {
            *pi = wi.round();
        }
        pos[0] = 1.0;
        pos[MARKERS - 1] = nf;
        for i in 1..MARKERS - 1 {
            let hi = nf - (MARKERS - 1 - i) as f64;
            pos[i] = pos[i].max(pos[i - 1] + 1.0).min(hi);
        }
        self.n = n;
        self.q = q;
        self.pos = pos;
        self.want = want;
    }
}

/// A report-ready bundle: P² estimators over a fixed quantile set plus a
/// [`StreamingStats`] for count/mean/min/max, all fed by one
/// [`QuantileSketch::observe`] call per sample.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantileSketch {
    stats: StreamingStats,
    marks: Vec<P2Quantile>,
}

impl QuantileSketch {
    /// A sketch tracking each quantile in `ps` (each in `[0, 1]`).
    ///
    /// # Panics
    ///
    /// Panics if any `p` is outside `[0, 1]`.
    pub fn new(ps: &[f64]) -> Self {
        Self {
            stats: StreamingStats::new(),
            marks: ps.iter().map(|&p| P2Quantile::new(p)).collect(),
        }
    }

    /// The p50/p95/p99 bundle every serving report uses.
    pub fn p50_p95_p99() -> Self {
        Self::new(&[0.50, 0.95, 0.99])
    }

    /// Feeds one observation into every tracked quantile and the moments.
    pub fn observe(&mut self, x: f64) {
        self.stats.observe(x);
        for m in &mut self.marks {
            m.observe(x);
        }
    }

    /// Observations seen (including poisoning ones).
    pub fn count(&self) -> u64 {
        self.stats.count()
    }

    /// Whether any observation poisoned the sketch.
    pub fn is_poisoned(&self) -> bool {
        self.stats.is_poisoned() || self.marks.iter().any(P2Quantile::is_poisoned)
    }

    /// Mean of the observations; NaN when empty or poisoned.
    pub fn mean(&self) -> f64 {
        self.stats.mean()
    }

    /// Minimum observation; NaN when empty or poisoned.
    pub fn min(&self) -> f64 {
        self.stats.min()
    }

    /// Maximum observation; NaN when empty or poisoned.
    pub fn max(&self) -> f64 {
        self.stats.max()
    }

    /// Sum of the observations; NaN when poisoned.
    pub fn sum(&self) -> f64 {
        self.stats.sum()
    }

    /// Estimate for tracked quantile `p` (matched bit-for-bit against the
    /// construction set).
    ///
    /// # Panics
    ///
    /// Panics if `p` was not passed to [`QuantileSketch::new`].
    pub fn quantile(&self, p: f64) -> f64 {
        self.marks
            .iter()
            .find(|m| m.p().to_bits() == p.to_bits())
            .unwrap_or_else(|| panic!("quantile {p} is not tracked by this sketch"))
            .quantile()
    }

    /// Estimates for every tracked quantile, in construction order.
    pub fn quantiles(&self) -> Vec<f64> {
        self.marks.iter().map(P2Quantile::quantile).collect()
    }

    /// Folds `other` in (deterministic; see [`P2Quantile::merge`]).
    ///
    /// # Panics
    ///
    /// Panics if the two sketches track different quantile sets.
    pub fn merge(&mut self, other: &Self) {
        assert_eq!(
            self.marks.len(),
            other.marks.len(),
            "cannot merge sketches tracking different quantile sets"
        );
        self.stats.merge(&other.stats);
        for (m, o) in self.marks.iter_mut().zip(&other.marks) {
            m.merge(o);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streaming_stats_matches_summarize() {
        let xs = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let mut s = StreamingStats::new();
        for &x in &xs {
            s.observe(x);
        }
        assert_eq!(s.count(), xs.len() as u64);
        assert!((s.mean() - xs.iter().sum::<f64>() / xs.len() as f64).abs() < 1e-12);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn streaming_stats_nan_poisons_uniformly() {
        let mut s = StreamingStats::new();
        s.observe(1.0);
        s.observe(f64::NAN);
        s.observe(3.0);
        assert_eq!(s.count(), 3);
        assert!(s.is_poisoned());
        assert!(s.mean().is_nan());
        assert!(s.min().is_nan());
        assert!(s.max().is_nan());
    }

    #[test]
    fn streaming_stats_empty_is_nan_not_garbage() {
        let s = StreamingStats::new();
        assert_eq!(s.count(), 0);
        assert!(s.mean().is_nan());
        assert!(s.min().is_nan());
        assert!(s.max().is_nan());
        assert!(!s.is_poisoned());
    }

    #[test]
    fn streaming_stats_signed_zero_total_cmp() {
        let mut s = StreamingStats::new();
        s.observe(0.0);
        s.observe(-0.0);
        assert_eq!(s.min().to_bits(), (-0.0f64).to_bits());
        assert_eq!(s.max().to_bits(), 0.0f64.to_bits());
    }

    #[test]
    fn streaming_stats_merge_is_exact() {
        let xs: Vec<f64> = (0..100).map(|i| ((i * 37) % 100) as f64).collect();
        let mut whole = StreamingStats::new();
        for &x in &xs {
            whole.observe(x);
        }
        let mut left = StreamingStats::new();
        let mut right = StreamingStats::new();
        for &x in &xs[..40] {
            left.observe(x);
        }
        for &x in &xs[40..] {
            right.observe(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert_eq!(left.min().to_bits(), whole.min().to_bits());
        assert_eq!(left.max().to_bits(), whole.max().to_bits());
        assert!((left.mean() - whole.mean()).abs() < 1e-12);
    }

    #[test]
    fn p2_exact_below_five_samples() {
        let mut q = P2Quantile::new(0.5);
        assert!(q.quantile().is_nan());
        for (i, &x) in [4.0, 1.0, 3.0, 2.0].iter().enumerate() {
            q.observe(x);
            let sorted = {
                let mut s = [4.0, 1.0, 3.0, 2.0][..=i].to_vec();
                s.sort_by(f64::total_cmp);
                s
            };
            let idx = ((sorted.len() as f64 - 1.0) * 0.5).round() as usize;
            assert_eq!(q.quantile(), sorted[idx], "sample {i}");
        }
    }

    #[test]
    fn p2_median_of_uniform_ramp() {
        let mut q = P2Quantile::new(0.5);
        for i in 0..10_001 {
            q.observe(i as f64 / 10.0);
        }
        // True median of 0.0..=1000.0 uniform grid is 500.
        assert!((q.quantile() - 500.0).abs() < 5.0, "got {}", q.quantile());
    }

    #[test]
    fn p2_p99_of_uniform_ramp() {
        let mut q = P2Quantile::new(0.99);
        for i in 0..10_001 {
            q.observe(i as f64 / 10.0);
        }
        assert!((q.quantile() - 990.0).abs() < 10.0, "got {}", q.quantile());
    }

    #[test]
    fn p2_poisons_on_non_finite() {
        let mut q = P2Quantile::new(0.5);
        for i in 0..100 {
            q.observe(i as f64);
        }
        q.observe(f64::NAN);
        assert!(q.is_poisoned());
        assert!(q.quantile().is_nan());
        let mut q = P2Quantile::new(0.5);
        q.observe(f64::INFINITY);
        assert!(q.quantile().is_nan());
    }

    #[test]
    fn p2_deterministic_replay() {
        let feed = |seed: u64| {
            let mut q = P2Quantile::new(0.95);
            let mut state = seed;
            for _ in 0..5000 {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                q.observe((state >> 11) as f64 / (1u64 << 53) as f64);
            }
            q
        };
        let a = feed(42);
        let b = feed(42);
        assert_eq!(a, b);
        assert_eq!(a.quantile().to_bits(), b.quantile().to_bits());
    }

    #[test]
    #[should_panic(expected = "outside [0,1]")]
    fn p2_range_checked() {
        let _ = P2Quantile::new(1.5);
    }

    #[test]
    fn sketch_merge_count_is_exact() {
        let xs: Vec<f64> = (0..1000).map(|i| ((i * 7919) % 1000) as f64).collect();
        let mut a = QuantileSketch::p50_p95_p99();
        let mut b = QuantileSketch::p50_p95_p99();
        for &x in &xs[..600] {
            a.observe(x);
        }
        for &x in &xs[600..] {
            b.observe(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), 1000);
        assert_eq!(a.min(), 0.0);
        assert_eq!(a.max(), 999.0);
        // Merged median of a 0..1000 permutation must land near 500.
        assert!((a.quantile(0.50) - 500.0).abs() < 25.0);
    }

    #[test]
    fn sketch_merge_with_empty_is_identity() {
        let mut a = QuantileSketch::p50_p95_p99();
        for i in 0..100 {
            a.observe(i as f64);
        }
        let before = a.clone();
        a.merge(&QuantileSketch::p50_p95_p99());
        assert_eq!(a, before);
        let mut empty = QuantileSketch::p50_p95_p99();
        empty.merge(&before);
        assert_eq!(
            empty.quantile(0.5).to_bits(),
            before.quantile(0.5).to_bits()
        );
        assert_eq!(empty.count(), before.count());
    }

    #[test]
    #[should_panic(expected = "not tracked")]
    fn sketch_untracked_quantile_panics() {
        let s = QuantileSketch::p50_p95_p99();
        let _ = s.quantile(0.25);
    }

    #[test]
    fn report_mode_default_is_exact() {
        assert_eq!(ReportMode::default(), ReportMode::Exact);
    }
}
