//! Top-k selection: heap-based software reference and the hardware's
//! merge-sort network model (§4.1 cites a high-throughput II=1 scalable
//! merge-sort unit for candidate ranking).
//!
//! Both selectors break score ties by *smaller index first*, so software and
//! hardware produce bit-identical candidate sets — a property the tests
//! rely on for cross-checking the simulator against the reference.

use std::cmp::Ordering;

/// A scored candidate (key index + approximate attention score).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Candidate {
    /// Index of the key row.
    pub index: usize,
    /// Integer score from the quantized pre-selection pass.
    pub score: i32,
}

impl Candidate {
    /// Ordering used everywhere: higher score first; ties → smaller index.
    fn ranking_cmp(&self, other: &Self) -> Ordering {
        other
            .score
            .cmp(&self.score)
            .then_with(|| self.index.cmp(&other.index))
    }
}

/// Selects the indices of the `k` largest scores using a bounded
/// binary-heap pass — the `O(n log k)` software reference.
///
/// Returns *at most* `k` indices sorted by descending score (ties by
/// ascending index). If `k >= scores.len()` all indices are returned.
///
/// # Example
///
/// ```
/// use lat_core::topk::top_k_heap;
///
/// let idx = top_k_heap(&[5, 1, 9, 7], 2);
/// assert_eq!(idx, vec![2, 3]);
/// ```
pub fn top_k_heap(scores: &[i32], k: usize) -> Vec<usize> {
    let mut cands: Vec<Candidate> = scores
        .iter()
        .enumerate()
        .map(|(index, &score)| Candidate { index, score })
        .collect();
    let k = k.min(cands.len());
    if k == 0 {
        return Vec::new();
    }
    // select_nth + sort of the head is O(n + k log k) and fully
    // deterministic under our total order.
    cands.select_nth_unstable_by(k - 1, Candidate::ranking_cmp);
    let mut head: Vec<Candidate> = cands[..k].to_vec();
    head.sort_by(Candidate::ranking_cmp);
    head.into_iter().map(|c| c.index).collect()
}

/// Software model of the hardware merge-sort network: a full bottom-up
/// merge sort over index/score pairs, after which the first `k` entries are
/// taken. This mirrors the streaming sorter the At-Sel unit uses and is the
/// structure the cycle model in `lat-hwsim` charges for.
///
/// Produces exactly the same output as [`top_k_heap`].
pub fn top_k_merge_network(scores: &[i32], k: usize) -> Vec<usize> {
    let mut cands: Vec<Candidate> = scores
        .iter()
        .enumerate()
        .map(|(index, &score)| Candidate { index, score })
        .collect();
    merge_sort(&mut cands);
    cands.truncate(k.min(scores.len()));
    cands.into_iter().map(|c| c.index).collect()
}

/// Bottom-up (iterative) merge sort, the shape a streaming hardware sorter
/// implements: `ceil(log2 n)` merge passes over the full array.
fn merge_sort(xs: &mut Vec<Candidate>) {
    let n = xs.len();
    if n < 2 {
        return;
    }
    let mut buf = xs.clone();
    let mut width = 1usize;
    while width < n {
        let mut lo = 0usize;
        while lo < n {
            let mid = (lo + width).min(n);
            let hi = (lo + 2 * width).min(n);
            merge(&xs[lo..mid], &xs[mid..hi], &mut buf[lo..hi]);
            lo = hi;
        }
        std::mem::swap(xs, &mut buf);
        width *= 2;
    }
}

fn merge(a: &[Candidate], b: &[Candidate], out: &mut [Candidate]) {
    let (mut i, mut j) = (0usize, 0usize);
    for slot in out.iter_mut() {
        let take_a = if i >= a.len() {
            false
        } else if j >= b.len() {
            true
        } else {
            a[i].ranking_cmp(&b[j]) != Ordering::Greater
        };
        if take_a {
            *slot = a[i];
            i += 1;
        } else {
            *slot = b[j];
            j += 1;
        }
    }
}

/// Number of merge passes the hardware sorter performs for `n` elements —
/// the latency driver in the cycle model (`ceil(log2 n)`, 0 for n ≤ 1).
pub fn merge_passes(n: usize) -> u32 {
    if n < 2 {
        0
    } else {
        usize::BITS - (n - 1).leading_zeros()
    }
}

/// Fraction of the reference set that a candidate set recovered
/// (`|candidates ∩ reference| / |reference|`, both as *sets*); 1.0 when
/// the reference is empty. This is the *recall* metric used throughout
/// the accuracy evaluation to measure pre-selection fidelity.
///
/// Duplicate indices on either side are collapsed before counting, so a
/// repeated reference index cannot be double-counted (recall is always in
/// `[0, 1]`); the intersection is a sorted merge, O((n+m) log) instead of
/// the old O(n·m) `contains` scan.
pub fn recall(candidates: &[usize], reference: &[usize]) -> f64 {
    let mut reference: Vec<usize> = reference.to_vec();
    reference.sort_unstable();
    reference.dedup();
    if reference.is_empty() {
        return 1.0;
    }
    let mut candidates: Vec<usize> = candidates.to_vec();
    candidates.sort_unstable();
    candidates.dedup();
    let (mut i, mut j, mut hits) = (0usize, 0usize, 0usize);
    while i < candidates.len() && j < reference.len() {
        match candidates[i].cmp(&reference[j]) {
            Ordering::Less => i += 1,
            Ordering::Greater => j += 1,
            Ordering::Equal => {
                hits += 1;
                i += 1;
                j += 1;
            }
        }
    }
    hits as f64 / reference.len() as f64
}

/// Top-k over float scores (used to derive the *exact* attention reference
/// set); same tie-breaking rule, NaNs rank last.
pub fn top_k_f32(scores: &[f32], k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    idx.sort_by(|&a, &b| {
        // NaNs rank strictly last; otherwise descending score, ties by index.
        match (scores[a].is_nan(), scores[b].is_nan()) {
            (true, true) => a.cmp(&b),
            (true, false) => Ordering::Greater,
            (false, true) => Ordering::Less,
            (false, false) => scores[b].total_cmp(&scores[a]).then_with(|| a.cmp(&b)),
        }
    });
    idx.truncate(k.min(scores.len()));
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use lat_tensor::rng::SplitMix64;

    #[test]
    fn heap_selects_largest() {
        assert_eq!(top_k_heap(&[1, 9, 3, 7], 2), vec![1, 3]);
    }

    #[test]
    fn heap_k_zero_and_oversized() {
        assert!(top_k_heap(&[1, 2], 0).is_empty());
        assert_eq!(top_k_heap(&[3, 1, 2], 10), vec![0, 2, 1]);
    }

    #[test]
    fn ties_break_by_smaller_index() {
        assert_eq!(top_k_heap(&[5, 5, 5], 2), vec![0, 1]);
        assert_eq!(top_k_merge_network(&[5, 5, 5], 2), vec![0, 1]);
    }

    #[test]
    fn merge_network_equals_heap_on_random_inputs() {
        let mut rng = SplitMix64::new(99);
        for trial in 0..50 {
            let n = rng.next_range(1, 200);
            let scores: Vec<i32> = (0..n).map(|_| rng.next_u64() as i32 % 100).collect();
            let k = rng.next_range(0, n);
            assert_eq!(
                top_k_heap(&scores, k),
                top_k_merge_network(&scores, k),
                "trial {trial} n={n} k={k}"
            );
        }
    }

    #[test]
    fn merge_network_is_fully_sorted_prefix() {
        let scores = vec![4, -1, 8, 0, 8, 3];
        let all = top_k_merge_network(&scores, 6);
        // Scores in descending order along the returned indices.
        for w in all.windows(2) {
            assert!(scores[w[0]] >= scores[w[1]]);
        }
    }

    #[test]
    fn merge_passes_counts() {
        assert_eq!(merge_passes(0), 0);
        assert_eq!(merge_passes(1), 0);
        assert_eq!(merge_passes(2), 1);
        assert_eq!(merge_passes(3), 2);
        assert_eq!(merge_passes(4), 2);
        assert_eq!(merge_passes(5), 3);
        assert_eq!(merge_passes(1024), 10);
    }

    #[test]
    fn recall_metrics() {
        assert_eq!(recall(&[1, 2, 3], &[2, 3]), 1.0);
        assert_eq!(recall(&[1, 2], &[2, 9]), 0.5);
        assert_eq!(recall(&[], &[]), 1.0);
        assert_eq!(recall(&[], &[1]), 0.0);
    }

    #[test]
    fn top_k_f32_matches_integer_behaviour() {
        let f = [1.5f32, 9.0, 3.25, 7.0];
        assert_eq!(top_k_f32(&f, 2), vec![1, 3]);
        // NaN ranks last.
        let with_nan = [f32::NAN, 1.0, 2.0];
        let got = top_k_f32(&with_nan, 2);
        assert_eq!(got, vec![2, 1]);
    }

    #[test]
    fn recall_ignores_duplicates_on_both_sides() {
        // Regression: a repeated reference index used to be counted once
        // per occurrence, so recall([2], [2, 2]) read 1.0 while only one
        // distinct index existed — and worse, [2, 2] vs reference [2, 9]
        // still counts as a single hit, not two.
        assert_eq!(recall(&[2], &[2, 2]), 1.0);
        assert_eq!(recall(&[2, 2], &[2, 9]), 0.5);
        assert_eq!(recall(&[7, 7, 7], &[7]), 1.0);
        assert_eq!(recall(&[1, 1], &[2, 2, 3]), 0.0);
        // Set semantics: order never matters.
        assert_eq!(recall(&[3, 1, 2], &[2, 3]), recall(&[1, 2, 3], &[3, 2]));
    }

    proptest::proptest! {
        #![proptest_config(proptest::test_runner::ProptestConfig::with_cases(64))]
        #[test]
        fn recall_is_always_a_fraction(
            candidates in proptest::collection::vec(0usize..32, 0..48),
            reference in proptest::collection::vec(0usize..32, 0..48),
        ) {
            let r = recall(&candidates, &reference);
            proptest::prop_assert!((0.0..=1.0).contains(&r), "recall {r} outside [0,1]");
            // Supersetting the candidates can only help.
            let mut superset = candidates.clone();
            superset.extend_from_slice(&reference);
            proptest::prop_assert!(recall(&superset, &reference) >= r);
            proptest::prop_assert_eq!(recall(&superset, &reference), 1.0);
        }
    }

    #[test]
    fn negative_scores_handled() {
        assert_eq!(top_k_heap(&[-5, -1, -9], 1), vec![1]);
    }

    #[test]
    fn empty_input() {
        assert!(top_k_heap(&[], 3).is_empty());
        assert!(top_k_merge_network(&[], 3).is_empty());
    }
}
