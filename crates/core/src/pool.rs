//! Deterministic scoped-thread work pool for embarrassingly parallel
//! sweeps.
//!
//! Every `ablate_*` grid and property-test case loop in this workspace is a
//! map over independent, seed-deterministic cells, so the only thing a
//! thread pool may change is wall-clock time — never output. This module
//! makes that guarantee structural:
//!
//! - [`Scheduler::par_map_indexed`] writes each result into a pre-sized
//!   slot keyed by the *item's index*, so the output order is the input
//!   order no matter which worker finished first (the `lat-audit` D4 rule:
//!   collect by index, never drain a channel in arrival order).
//! - Workers claim items through a shared atomic cursor; claiming order
//!   affects only load balance, not placement.
//! - `parallelism <= 1` (or a 0/1-item input) takes a plain serial loop —
//!   the parallel path degenerates to it bit-for-bit.
//!
//! The worker count is a declared, reproducible property of the plan
//! (the ASM exemplar's `Scheduler { parallelism }` shape), defaulted from
//! the host but overridable with the `LAT_POOL_WORKERS` environment
//! variable.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Environment variable overriding [`Scheduler::from_env`]'s worker count.
pub const POOL_WORKERS_ENV: &str = "LAT_POOL_WORKERS";

/// A declared parallelism plan: how many workers a sweep may use.
///
/// The scheduler is data, not a resident pool — threads are scoped to each
/// [`Scheduler::par_map_indexed`] call and joined before it returns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scheduler {
    parallelism: usize,
}

impl Scheduler {
    /// A plan using exactly `parallelism` workers (clamped to ≥ 1).
    pub fn new(parallelism: usize) -> Self {
        Self {
            parallelism: parallelism.max(1),
        }
    }

    /// The serial plan: `parallelism == 1`, no threads spawned.
    pub fn serial() -> Self {
        Self::new(1)
    }

    /// Worker count from `LAT_POOL_WORKERS` when set (must parse as a
    /// positive integer), else the host's available parallelism, else 1.
    ///
    /// # Panics
    ///
    /// Panics if `LAT_POOL_WORKERS` is set but not a positive integer —
    /// a silently ignored knob would be worse than a loud one.
    pub fn from_env() -> Self {
        match std::env::var(POOL_WORKERS_ENV) {
            Ok(s) => {
                let n: usize = s.trim().parse().unwrap_or_else(|_| {
                    panic!("{POOL_WORKERS_ENV} {s:?} is not a positive integer")
                });
                assert!(n > 0, "{POOL_WORKERS_ENV} must be >= 1, got {n}");
                Self::new(n)
            }
            Err(_) => Self::new(
                std::thread::available_parallelism()
                    .map(std::num::NonZeroUsize::get)
                    .unwrap_or(1),
            ),
        }
    }

    /// Declared worker count.
    pub fn parallelism(&self) -> usize {
        self.parallelism
    }

    /// Maps `f` over `items`, returning results in input order.
    ///
    /// The output is identical for every worker count — `Scheduler::new(8)`
    /// and [`Scheduler::serial`] produce the same `Vec` bit-for-bit,
    /// because result `i` always lands in slot `i` and `f` sees only the
    /// item (never a worker id, never a timestamp).
    ///
    /// `f` must be `Sync` (shared by reference across workers) and the
    /// items/results `Sync`/`Send` enough to cross the scope boundary;
    /// plain data and pure closures qualify.
    pub fn par_map_indexed<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        if self.parallelism <= 1 || items.len() <= 1 {
            return items.iter().map(f).collect();
        }
        let workers = self.parallelism.min(items.len());
        let cursor = AtomicUsize::new(0);
        // Each worker returns its (index, result) pairs through join();
        // the scatter below places them by index — arrival order of the
        // workers themselves is irrelevant (D4-clean by construction).
        let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
        slots.resize_with(items.len(), || None);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut done: Vec<(usize, R)> = Vec::new();
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            let Some(item) = items.get(i) else { break };
                            done.push((i, f(item)));
                        }
                        done
                    })
                })
                .collect();
            for handle in handles {
                let done = handle.join().expect("pool worker panicked");
                for (i, r) in done {
                    slots[i] = Some(r);
                }
            }
        });
        slots
            .into_iter()
            .map(|r| r.expect("every index claimed exactly once"))
            .collect()
    }
}

impl Default for Scheduler {
    fn default() -> Self {
        Self::from_env()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_and_parallel_agree_bit_for_bit() {
        let items: Vec<u64> = (0..257).collect();
        let f = |&x: &u64| {
            // A result whose low bits depend on every input bit, so any
            // misplacement or duplication would be visible.
            let mut h = x.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            h ^= h >> 29;
            (x, h, (x as f64).sin())
        };
        let serial = Scheduler::serial().par_map_indexed(&items, f);
        for workers in [2, 3, 4, 7, 64] {
            let par = Scheduler::new(workers).par_map_indexed(&items, f);
            assert_eq!(serial, par, "worker count {workers} changed the output");
        }
    }

    #[test]
    fn preserves_input_order_not_completion_order() {
        // Earlier items do strictly more work, so later items finish
        // first under any greedy scheduler — order must still hold.
        let items: Vec<usize> = (0..64).collect();
        let out = Scheduler::new(8).par_map_indexed(&items, |&i| {
            let spins = (64 - i) * 1000;
            let mut acc = 0u64;
            for k in 0..spins {
                acc = acc.wrapping_add(std::hint::black_box(k as u64));
            }
            (i, acc)
        });
        for (i, (idx, _)) in out.iter().enumerate() {
            assert_eq!(i, *idx);
        }
    }

    #[test]
    fn degenerate_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(Scheduler::new(4).par_map_indexed(&empty, |&x| x).is_empty());
        assert_eq!(
            Scheduler::new(4).par_map_indexed(&[41u32], |&x| x + 1),
            vec![42]
        );
    }

    #[test]
    fn parallelism_is_clamped_to_one() {
        assert_eq!(Scheduler::new(0).parallelism(), 1);
        assert_eq!(Scheduler::serial().parallelism(), 1);
    }

    #[test]
    fn borrows_environment_without_moving() {
        // The closure may borrow sweep fixtures (traces, fleets) shared
        // across workers.
        let base = [10.0f64, 20.0, 30.0];
        let items = [0usize, 1, 2];
        let out = Scheduler::new(2).par_map_indexed(&items, |&i| base[i] * 2.0);
        assert_eq!(out, vec![20.0, 40.0, 60.0]);
    }
}
