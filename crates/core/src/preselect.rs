//! Candidate pre-selection via Q/K quantization (§3.2, Fig. 3 steps 2–4).
//!
//! The full-precision `Q` and `K` are quantized to 1 or 4 bits; the
//! approximate score matrix `Q'·K'ᵀ` is computed through the LUT integer
//! multiplier; each query row keeps its Top-k highest-scoring key indices.
//! Because quantization and `exp` are monotone, the approximate ranking
//! tracks the exact attention-score ranking, and only the retained
//! candidates proceed to exact attention.

use crate::topk;
use lat_model::ModelError;
use lat_tensor::lut::ProductLut;
use lat_tensor::quant::{BitWidth, QuantizedMatrix};
use lat_tensor::Matrix;
use serde::{Deserialize, Serialize};

/// Configuration of the pre-selection pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PreselectConfig {
    /// Quantization bit-width for Q and K (1-bit in the paper's accuracy
    /// evaluation, 4-bit in the Fig. 3 walk-through).
    pub bits: BitWidth,
    /// Number of candidates to keep per query row.
    pub k: usize,
}

impl PreselectConfig {
    /// The paper's §5.1 configuration: 1-bit sign quantization, Top-30.
    pub fn paper_default() -> Self {
        Self {
            bits: BitWidth::One,
            k: 30,
        }
    }

    /// Fig. 3 walk-through configuration: 4-bit, Top-2.
    pub fn fig3() -> Self {
        Self {
            bits: BitWidth::Four,
            k: 2,
        }
    }
}

/// Result of pre-selection: the per-row candidate index lists plus the raw
/// approximate scores (exposed for diagnostics and the worked example).
#[derive(Debug, Clone, PartialEq)]
pub struct Preselection {
    /// `candidates[i]` = indices of the keys query row `i` will attend to,
    /// sorted by descending approximate score.
    pub candidates: Vec<Vec<usize>>,
    /// Row-major `n×m` integer approximate score matrix `Q'·K'ᵀ`.
    pub approx_scores: Vec<i32>,
    /// Number of key rows `m` (the row stride of `approx_scores`).
    pub num_keys: usize,
}

impl Preselection {
    /// The approximate score of query `i` against key `j`.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of range.
    pub fn score(&self, i: usize, j: usize) -> i32 {
        assert!(j < self.num_keys, "key index {j} out of range");
        self.approx_scores[i * self.num_keys + j]
    }

    /// Average number of candidates per row (≤ k; < k only for short rows).
    pub fn mean_candidates(&self) -> f64 {
        if self.candidates.is_empty() {
            return 0.0;
        }
        self.candidates.iter().map(|c| c.len()).sum::<usize>() as f64 / self.candidates.len() as f64
    }
}

/// Runs quantized candidate pre-selection for `q` against `k_mat`.
///
/// This is the software-exact model of the Stage 1 At-Sel hardware: bits
/// selector (quantization) → LUT distance → merge-sort Top-k.
///
/// # Errors
///
/// Returns [`ModelError::InvalidInput`] if `q` and `k_mat` have different
/// widths (head dimensions).
///
/// # Example
///
/// ```
/// use lat_core::preselect::{preselect, PreselectConfig};
/// use lat_tensor::Matrix;
///
/// # fn main() -> Result<(), lat_model::ModelError> {
/// let q = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]])?;
/// let k = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[-1.0, 0.0]])?;
/// let sel = preselect(&q, &k, PreselectConfig::fig3())?;
/// assert_eq!(sel.candidates.len(), 2);
/// assert_eq!(sel.candidates[0][0], 0); // q0 is most aligned with k0
/// # Ok(())
/// # }
/// ```
pub fn preselect(
    q: &Matrix,
    k_mat: &Matrix,
    cfg: PreselectConfig,
) -> Result<Preselection, ModelError> {
    if q.cols() != k_mat.cols() {
        return Err(ModelError::InvalidInput(format!(
            "Q width {} != K width {}",
            q.cols(),
            k_mat.cols()
        )));
    }
    let qq = QuantizedMatrix::quantize(q, cfg.bits);
    let qk = QuantizedMatrix::quantize(k_mat, cfg.bits);
    let lut = ProductLut::new(cfg.bits);
    let approx_scores = lut.score_matrix(&qq, &qk).map_err(ModelError::from)?;
    let m = k_mat.rows();
    let candidates = (0..q.rows())
        .map(|i| topk::top_k_merge_network(&approx_scores[i * m..(i + 1) * m], cfg.k))
        .collect();
    Ok(Preselection {
        candidates,
        approx_scores,
        num_keys: m,
    })
}

/// Measures how well pre-selection recovers the *exact* top-k attention
/// candidates: mean recall over all query rows, plus the mean retained
/// softmax mass (the fraction of exact attention probability that falls on
/// the kept candidates).
///
/// # Errors
///
/// Returns [`ModelError`] on shape mismatch.
pub fn preselect_fidelity(
    q: &Matrix,
    k_mat: &Matrix,
    cfg: PreselectConfig,
) -> Result<PreselectFidelity, ModelError> {
    let sel = preselect(q, k_mat, cfg)?;
    let exact = q.matmul_transposed(k_mat).map_err(ModelError::from)?;
    let scale = 1.0 / (q.cols() as f32).sqrt();
    let mut recall_sum = 0.0f64;
    let mut mass_sum = 0.0f64;
    let n = q.rows().max(1);
    for i in 0..q.rows() {
        let row = exact.row(i);
        let reference = topk::top_k_f32(row, cfg.k);
        recall_sum += topk::recall(&sel.candidates[i], &reference);

        // Retained softmax mass.
        let mut probs: Vec<f32> = row.iter().map(|&s| s * scale).collect();
        lat_tensor::ops::softmax_in_place(&mut probs);
        let kept: f32 = sel.candidates[i].iter().map(|&j| probs[j]).sum();
        mass_sum += kept as f64;
    }
    Ok(PreselectFidelity {
        mean_recall: recall_sum / n as f64,
        mean_retained_mass: mass_sum / n as f64,
    })
}

/// Fidelity metrics of a pre-selection configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PreselectFidelity {
    /// Mean fraction of the exact top-k candidate set recovered.
    pub mean_recall: f64,
    /// Mean exact-softmax probability mass carried by the kept candidates.
    pub mean_retained_mass: f64,
}

/// Head-shared candidate pre-selection (SpAtten-style token-level ablation):
/// the approximate scores of all heads are *summed* per (query, key) pair
/// and a single candidate set per query row is selected, shared by every
/// head.
///
/// Compared to per-head selection this loses per-head specialization but
/// means Stage 2.1 gathers each key/value row once instead of once per
/// head — an `h×` reduction in candidate-load traffic. The ablation bench
/// quantifies the accuracy side of that trade.
///
/// # Errors
///
/// Returns [`ModelError::InvalidInput`] if the slices are empty, have
/// unequal element counts, or any head's Q/K widths disagree.
pub fn preselect_shared_across_heads(
    q_heads: &[Matrix],
    k_heads: &[Matrix],
    cfg: PreselectConfig,
) -> Result<Preselection, ModelError> {
    if q_heads.is_empty() || q_heads.len() != k_heads.len() {
        return Err(ModelError::InvalidInput(format!(
            "need matching non-empty head lists, got {} and {}",
            q_heads.len(),
            k_heads.len()
        )));
    }
    let n = q_heads[0].rows();
    let m = k_heads[0].rows();
    let mut summed = vec![0i64; n * m];
    for (q, k) in q_heads.iter().zip(k_heads) {
        if q.rows() != n || k.rows() != m {
            return Err(ModelError::InvalidInput(
                "all heads must share sequence dimensions".into(),
            ));
        }
        let sel = preselect(q, k, cfg)?;
        for (acc, &s) in summed.iter_mut().zip(&sel.approx_scores) {
            *acc += s as i64;
        }
    }
    // Saturate back into i32 for the shared ranking (head counts are small
    // enough that this never saturates in practice).
    let approx_scores: Vec<i32> = summed
        .iter()
        .map(|&s| s.clamp(i32::MIN as i64, i32::MAX as i64) as i32)
        .collect();
    let candidates = (0..n)
        .map(|i| topk::top_k_merge_network(&approx_scores[i * m..(i + 1) * m], cfg.k))
        .collect();
    Ok(Preselection {
        candidates,
        approx_scores,
        num_keys: m,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lat_tensor::rng::SplitMix64;

    #[test]
    fn rejects_width_mismatch() {
        let q = Matrix::zeros(2, 4);
        let k = Matrix::zeros(3, 5);
        assert!(preselect(&q, &k, PreselectConfig::paper_default()).is_err());
    }

    #[test]
    fn candidate_counts_clamped_by_keys() {
        let mut rng = SplitMix64::new(31);
        let q = rng.gaussian_matrix(4, 8, 1.0);
        let k = rng.gaussian_matrix(5, 8, 1.0);
        let sel = preselect(
            &q,
            &k,
            PreselectConfig {
                bits: BitWidth::Four,
                k: 30,
            },
        )
        .unwrap();
        for c in &sel.candidates {
            assert_eq!(c.len(), 5); // k clamps to number of keys
        }
        assert_eq!(sel.mean_candidates(), 5.0);
    }

    #[test]
    fn fig3_example_selects_top2() {
        // The Fig. 3 matrices: q picks k1 and k3 (0-indexed: 0 and 2).
        let q = Matrix::from_rows(&[&[0.3, 0.7, 1.2, 0.5]]).unwrap();
        let k = Matrix::from_rows(&[
            &[0.7, -0.5, 0.3, 0.4],
            &[0.4, 0.1, -0.3, 0.4],
            &[0.4, 0.4, 0.4, 0.1],
            &[-0.2, -0.3, -0.6, 0.1],
        ])
        .unwrap();
        // Exact scores: qk1=1.17? close to paper's example (0.3*0.7-0.7*0.5+1.2*0.3+0.5*0.4=0.42-... ) —
        // the paper's exact numbers aren't recoverable from the figure; what we
        // verify is agreement between the 4-bit pre-selection and the exact top-2.
        let exact = q.matmul_transposed(&k).unwrap();
        let reference = topk::top_k_f32(exact.row(0), 2);
        let sel = preselect(&q, &k, PreselectConfig::fig3()).unwrap();
        assert_eq!(sel.candidates[0].len(), 2);
        assert_eq!(
            topk::recall(&sel.candidates[0], &reference),
            1.0,
            "4-bit preselect must recover the exact top-2 on the toy example"
        );
    }

    #[test]
    fn four_bit_recall_high_on_random_data() {
        let mut rng = SplitMix64::new(32);
        let q = rng.gaussian_matrix(32, 64, 1.0);
        let k = rng.gaussian_matrix(128, 64, 1.0);
        let fid = preselect_fidelity(
            &q,
            &k,
            PreselectConfig {
                bits: BitWidth::Four,
                k: 30,
            },
        )
        .unwrap();
        // On i.i.d. Gaussian data attention is maximally diffuse, so the
        // retained-mass floor is much lower than on real (concentrated)
        // attention; the workload crate tests the concentrated regime.
        assert!(fid.mean_recall > 0.80, "4-bit recall {}", fid.mean_recall);
        assert!(
            fid.mean_retained_mass > 0.50,
            "mass {}",
            fid.mean_retained_mass
        );
    }

    #[test]
    fn one_bit_retains_most_mass_at_k30() {
        // 1-bit is coarser but with k=30 of 128 keys still captures most of
        // the softmax mass — the mechanism behind the <2% accuracy drop.
        let mut rng = SplitMix64::new(33);
        let q = rng.gaussian_matrix(32, 64, 1.0);
        let k = rng.gaussian_matrix(128, 64, 1.0);
        let fid = preselect_fidelity(&q, &k, PreselectConfig::paper_default()).unwrap();
        // 1-bit on diffuse Gaussian scores: still comfortably above the
        // 30/128 ≈ 0.23 random-candidate baseline.
        assert!(
            fid.mean_retained_mass > 0.35,
            "mass {}",
            fid.mean_retained_mass
        );
    }

    #[test]
    fn wider_bits_never_hurt_recall() {
        let mut rng = SplitMix64::new(34);
        let q = rng.gaussian_matrix(16, 32, 1.0);
        let k = rng.gaussian_matrix(96, 32, 1.0);
        let r1 = preselect_fidelity(
            &q,
            &k,
            PreselectConfig {
                bits: BitWidth::One,
                k: 20,
            },
        )
        .unwrap()
        .mean_recall;
        let r4 = preselect_fidelity(
            &q,
            &k,
            PreselectConfig {
                bits: BitWidth::Four,
                k: 20,
            },
        )
        .unwrap()
        .mean_recall;
        let r8 = preselect_fidelity(
            &q,
            &k,
            PreselectConfig {
                bits: BitWidth::Eight,
                k: 20,
            },
        )
        .unwrap()
        .mean_recall;
        assert!(r4 >= r1 - 0.05, "4-bit {r4} vs 1-bit {r1}");
        assert!(r8 >= r4 - 0.02, "8-bit {r8} vs 4-bit {r4}");
        assert!(r8 > 0.95, "8-bit should be near-exact, got {r8}");
    }

    #[test]
    fn larger_k_improves_retained_mass() {
        let mut rng = SplitMix64::new(35);
        let q = rng.gaussian_matrix(16, 32, 1.0);
        let k = rng.gaussian_matrix(128, 32, 1.0);
        let mut prev = 0.0;
        for kk in [10usize, 20, 30, 50] {
            let fid = preselect_fidelity(
                &q,
                &k,
                PreselectConfig {
                    bits: BitWidth::One,
                    k: kk,
                },
            )
            .unwrap();
            assert!(
                fid.mean_retained_mass >= prev - 1e-9,
                "mass not monotone at k={kk}"
            );
            prev = fid.mean_retained_mass;
        }
    }

    #[test]
    fn shared_selection_is_single_set_per_row() {
        let mut rng = SplitMix64::new(37);
        let q_heads: Vec<Matrix> = (0..4).map(|_| rng.gaussian_matrix(10, 8, 1.0)).collect();
        let k_heads: Vec<Matrix> = (0..4).map(|_| rng.gaussian_matrix(20, 8, 1.0)).collect();
        let cfg = PreselectConfig {
            bits: BitWidth::Four,
            k: 5,
        };
        let shared = preselect_shared_across_heads(&q_heads, &k_heads, cfg).unwrap();
        assert_eq!(shared.candidates.len(), 10);
        assert!(shared.candidates.iter().all(|c| c.len() == 5));
    }

    #[test]
    fn shared_selection_single_head_equals_per_head() {
        let mut rng = SplitMix64::new(38);
        let q = rng.gaussian_matrix(6, 8, 1.0);
        let k = rng.gaussian_matrix(12, 8, 1.0);
        let cfg = PreselectConfig {
            bits: BitWidth::Four,
            k: 4,
        };
        let shared =
            preselect_shared_across_heads(std::slice::from_ref(&q), std::slice::from_ref(&k), cfg)
                .unwrap();
        let per_head = preselect(&q, &k, cfg).unwrap();
        assert_eq!(shared.candidates, per_head.candidates);
    }

    #[test]
    fn shared_selection_validates_inputs() {
        let m = Matrix::zeros(4, 8);
        let cfg = PreselectConfig::paper_default();
        assert!(preselect_shared_across_heads(&[], &[], cfg).is_err());
        assert!(preselect_shared_across_heads(
            std::slice::from_ref(&m),
            &[m.clone(), m.clone()],
            cfg
        )
        .is_err());
        let short = Matrix::zeros(3, 8);
        assert!(preselect_shared_across_heads(&[m.clone(), short], &[m.clone(), m], cfg).is_err());
    }

    #[test]
    fn shared_selection_tracks_summed_exact_scores() {
        // With 8-bit quantization the shared ranking should agree with the
        // ranking of summed exact scores.
        let mut rng = SplitMix64::new(39);
        let q_heads: Vec<Matrix> = (0..3).map(|_| rng.gaussian_matrix(4, 16, 1.0)).collect();
        let k_heads: Vec<Matrix> = (0..3).map(|_| rng.gaussian_matrix(24, 16, 1.0)).collect();
        let cfg = PreselectConfig {
            bits: BitWidth::Eight,
            k: 6,
        };
        let shared = preselect_shared_across_heads(&q_heads, &k_heads, cfg).unwrap();

        for row in 0..4 {
            let mut exact_sum = vec![0.0f32; 24];
            for (q, k) in q_heads.iter().zip(&k_heads) {
                let s = q.matmul_transposed(k).unwrap();
                for (acc, &v) in exact_sum.iter_mut().zip(s.row(row)) {
                    *acc += v;
                }
            }
            let reference = topk::top_k_f32(&exact_sum, 6);
            let r = topk::recall(&shared.candidates[row], &reference);
            assert!(r >= 0.5, "row {row} recall {r}");
        }
    }

    #[test]
    fn score_accessor_matches_matrix_layout() {
        let mut rng = SplitMix64::new(36);
        let q = rng.gaussian_matrix(3, 8, 1.0);
        let k = rng.gaussian_matrix(4, 8, 1.0);
        let sel = preselect(&q, &k, PreselectConfig::fig3()).unwrap();
        assert_eq!(sel.score(2, 3), sel.approx_scores[2 * 4 + 3]);
    }
}
