//! Stage-2 (At-Comp) intra-layer sub-stage pipeline (Fig. 2(a)).
//!
//! The attention-computation stage is itself split into three sub-stages
//! connected by double buffers and pipelined at *query-row* granularity:
//!
//! - **2.1** candidate load: gather the Top-k `Kₛ`/`Vₛ` rows selected by
//!   Stage 1 (buffer reads + HBM index fetch);
//! - **2.2** fused score kernel: exact `q·Kₛᵀ`, scale, mask, exp in one
//!   II=1 loop (see `lat_core::fused`);
//! - **2.3** output: `Z = S·Vₛ / ΣS`.
//!
//! With row-level pipelining the stage's steady-state rate is set by the
//! slowest sub-stage rather than their sum — the "intra-layer
//! coarse-grained pipeline to enhance hardware utilization" of §4.1.

use crate::kernels;
use serde::{Deserialize, Serialize};

/// Cycle costs of the three Stage-2 sub-stages for one query row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SubStageCosts {
    /// Stage 2.1: candidate load cycles.
    pub load: u64,
    /// Stage 2.2: fused score kernel cycles.
    pub score: u64,
    /// Stage 2.3: `S·V` + normalize cycles.
    pub apply: u64,
}

impl SubStageCosts {
    /// Costs for one query row with `k` candidates of head dimension `d`,
    /// `unroll`-way unrolled kernels and `lanes` MAC lanes in sub-stage
    /// 2.3.
    pub fn for_row(d: usize, k: usize, unroll: u32, lanes: u32) -> Self {
        // 2.1 loads k rows of K and V (2·k·d bytes at one element/lane/cycle)
        // plus the k index/value pairs.
        let load = kernels::KERNEL_FILL
            + (2 * k as u64 * d as u64).div_ceil(lanes.max(1) as u64)
            + k as u64;
        Self {
            load,
            score: kernels::fused_attention_row_cycles(d, k, unroll),
            apply: kernels::attention_apply_row_cycles(k, d, lanes),
        }
    }

    /// The slowest sub-stage (the pipeline's steady-state beat).
    pub fn bottleneck(&self) -> u64 {
        self.load.max(self.score).max(self.apply)
    }

    /// Total work if the sub-stages ran back-to-back per row.
    pub fn serial(&self) -> u64 {
        self.load + self.score + self.apply
    }
}

/// Makespan of processing `rows` query rows through the pipelined
/// sub-stages: fill with the first row's serial pass, then one bottleneck
/// beat per remaining row.
pub fn pipelined_cycles(costs: SubStageCosts, rows: usize) -> u64 {
    if rows == 0 {
        return 0;
    }
    costs.serial() + (rows as u64 - 1) * costs.bottleneck()
}

/// Makespan without sub-stage pipelining: every row pays the serial pass.
pub fn sequential_cycles(costs: SubStageCosts, rows: usize) -> u64 {
    rows as u64 * costs.serial()
}

/// Speedup of the intra-layer pipeline for a whole sequence.
pub fn substage_pipeline_speedup(d: usize, k: usize, unroll: u32, lanes: u32, rows: usize) -> f64 {
    let costs = SubStageCosts::for_row(d, k, unroll, lanes);
    sequential_cycles(costs, rows) as f64 / pipelined_cycles(costs, rows).max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn costs() -> SubStageCosts {
        SubStageCosts::for_row(64, 30, 2, 64)
    }

    #[test]
    fn all_substages_positive() {
        let c = costs();
        assert!(c.load > 0 && c.score > 0 && c.apply > 0);
        assert_eq!(c.serial(), c.load + c.score + c.apply);
        assert!(c.bottleneck() <= c.serial());
    }

    #[test]
    fn zero_rows_zero_cycles() {
        assert_eq!(pipelined_cycles(costs(), 0), 0);
        assert_eq!(sequential_cycles(costs(), 0), 0);
    }

    #[test]
    fn single_row_has_no_pipeline_benefit() {
        let c = costs();
        assert_eq!(pipelined_cycles(c, 1), sequential_cycles(c, 1));
    }

    #[test]
    fn pipelining_approaches_bottleneck_rate() {
        let c = costs();
        let n = 10_000;
        let per_row = pipelined_cycles(c, n) as f64 / n as f64;
        assert!(
            (per_row - c.bottleneck() as f64).abs() / (c.bottleneck() as f64) < 0.01,
            "steady-state rate {per_row} vs bottleneck {}",
            c.bottleneck()
        );
    }

    #[test]
    fn speedup_grows_with_rows_and_saturates() {
        let s10 = substage_pipeline_speedup(64, 30, 2, 64, 10);
        let s100 = substage_pipeline_speedup(64, 30, 2, 64, 100);
        let s10k = substage_pipeline_speedup(64, 30, 2, 64, 10_000);
        assert!(s100 > s10);
        assert!(s10k >= s100);
        // Saturation bound: serial/bottleneck.
        let c = costs();
        let bound = c.serial() as f64 / c.bottleneck() as f64;
        assert!(s10k <= bound + 1e-9);
        assert!(s10k > bound * 0.98, "s10k {s10k} vs bound {bound}");
    }

    #[test]
    fn score_substage_dominates_at_paper_shape() {
        // At d = 64 per head with k = 30 and modest unroll, the fused
        // score kernel is the bottleneck — the unit the paper spends its
        // loop-fusion effort on.
        let c = SubStageCosts::for_row(64, 30, 1, 64);
        assert_eq!(c.bottleneck(), c.score);
    }

    #[test]
    fn wider_unroll_shifts_bottleneck() {
        // Enough unroll makes 2.2 cheap; some other sub-stage binds.
        let c = SubStageCosts::for_row(64, 30, 32, 64);
        assert!(c.bottleneck() != c.score || c.score <= c.load.max(c.apply) + 40);
    }

    #[test]
    fn pipelined_never_slower() {
        for rows in [1usize, 2, 7, 50] {
            let c = costs();
            assert!(pipelined_cycles(c, rows) <= sequential_cycles(c, rows));
        }
    }
}
