//! Generative-decode serving on the fleet engine: iteration-level
//! (continuous) batching, priorities, and deadline-driven preemption.
//!
//! [`crate::fleet`] serves *encoder* requests: one service interval per
//! request, so window-or-cap batching is enough. Generative decode is a
//! different regime — a request occupies an accelerator slot for a
//! *variable number of dependent steps* (one per output token), so a batch
//! formed once and held to completion idles its slots while the longest
//! member finishes. This module simulates the three classic schedulers on
//! top of the same event-driven machinery and the same
//! [`AcceleratorDesign`] cost model:
//!
//! - [`DecodeScheduler::Static`] — request-level batching on a rigid
//!   engine: a batch is formed only when the shard is empty and every
//!   member is padded to the batch's longest output — finished sequences
//!   hold their slots AND the engine keeps paying the full formed-batch
//!   iteration cost until the last straggler drains (the
//!   FasterTransformer-style baseline iteration-level batching is
//!   measured against).
//! - [`DecodeScheduler::Continuous`] — iteration-level batching: finished
//!   requests free their slots at every step boundary and waiting requests
//!   are admitted immediately (ORCA-style admit-on-slot-free).
//! - [`DecodeScheduler::ContinuousPreempt`] — continuous batching plus
//!   priority-first admission and deadline-driven preemption: when a
//!   waiting high-priority request would miss its time-to-first-token
//!   deadline by waiting out one more iteration, the longest-running
//!   normal-priority resident is evicted (and pays a re-prefill of its
//!   grown context when it is re-admitted).
//!
//! ## Cost model
//!
//! Per-step latency derives from the encoder fleet's kernel model, keeping
//! the two engines pinned to one source of truth. An iteration is ONE
//! fused pass over the resident batch (ORCA-style selective batching):
//! newly admitted requests contribute their full context length (prefill,
//! priced exactly as today's encoder batch; the first output token falls
//! out of that pass) and already-resident requests contribute one token
//! each (decode, priced as 1-token members of the same batch). A single
//! `run_batch(contexts ++ [1; decoding])` prices the whole iteration, so
//! HBM weight streaming is amortized across prefill and decode members
//! alike — the physical reason iteration-level batching is cheap to admit
//! into. Every resident emits exactly one token per iteration. With
//! `output_len == 1` the engine degenerates to the encoder fleet's
//! per-batch cost, which `tests/decode_props.rs` cross-checks against
//! [`simulate_fleet`](crate::fleet::simulate_fleet).
//!
//! ## Controller hooks
//!
//! Mirroring the encoder fleet's `FleetCore`/`FleetController` split, the
//! engine's mutable state lives in a `DecodeCore` driven by a
//! `DecodeController`: [`simulate_decode`] runs the no-op
//! `NullDecodeController`, and
//! [`crate::autoscale::simulate_decode_autoscale`] drives the IDENTICAL
//! code path with a policy controller that joins/retires shards at
//! runtime — which is why a pinned `min == max` decode autoscaler
//! reproduces [`simulate_decode`] bit-for-bit.
//!
//! ## KV transfer
//!
//! Whenever a resident sequence leaves its shard mid-generation
//! (preemption, scale-down migration, straggler eviction, or a
//! prefill→decode pool handoff in [`crate::disagg`]), what happens to its
//! KV cache is a [`KvTransfer`]: [`KvTransfer::Reprefill`] discards the
//! cache and re-prefills the grown context at the destination (the PR 5
//! `Migrate` semantics, now the named default), while
//! [`KvTransfer::Copy`] models a wire copy whose latency grows with the
//! resident context length and lets the destination resume decoding
//! without a re-prefill.
//!
//! # Example
//!
//! A four-request burst through one shard under continuous batching:
//!
//! ```
//! use lat_core::pipeline::SchedulingPolicy;
//! use lat_hwsim::accelerator::AcceleratorDesign;
//! use lat_hwsim::decode::{decode_trace, simulate_decode, DecodeConfig, DecodeScheduler};
//! use lat_hwsim::fleet::{homogeneous_fleet, DispatchPolicy};
//! use lat_hwsim::spec::FpgaSpec;
//! use lat_model::config::ModelConfig;
//! use lat_model::graph::AttentionMode;
//! use lat_workloads::datasets::DatasetSpec;
//!
//! let design = AcceleratorDesign::new(
//!     &ModelConfig::tiny(),
//!     AttentionMode::paper_sparse(),
//!     FpgaSpec::alveo_u280(),
//!     64,
//! );
//! let fleet = homogeneous_fleet(&design, 1);
//! let spec = DatasetSpec::rte();
//! let trace = decode_trace(&spec, &spec.decode_output(), 0.25, 200.0, 4, 7);
//! let report = simulate_decode(
//!     &fleet,
//!     &trace,
//!     SchedulingPolicy::LengthAware,
//!     DispatchPolicy::JoinShortestQueue,
//!     DecodeScheduler::Continuous,
//!     &DecodeConfig::default(),
//! );
//! assert_eq!(report.fleet.completed, 4);
//! assert_eq!(
//!     report.generated_tokens,
//!     trace.iter().map(|r| r.output_len as u64).sum::<u64>(),
//! );
//! ```

use crate::accelerator::AcceleratorDesign;
use crate::fleet::{
    push_event, route, BatchRecord, DispatchPolicy, Event, FleetReport, RateProfile, ShardReport,
};
use lat_core::pipeline::SchedulingPolicy;
use lat_core::sketch::{P2Quantile, QuantileSketch, ReportMode};
use lat_tensor::rng::SplitMix64;
use lat_tensor::stats::{percentile, percentiles};
use lat_workloads::datasets::LengthSampler;
use serde::{Deserialize, Serialize};
use std::collections::{BinaryHeap, VecDeque};
use std::fmt;

/// XOR'd into the trace seed to derive the auxiliary RNG stream that draws
/// output lengths and priorities, keeping the primary stream (arrival gaps
/// + prefill lengths) bit-identical to [`crate::fleet::poisson_trace`].
const DECODE_AUX_STREAM: u64 = 0x9E37_79B9_7F4A_7C15;

/// Priority class of a decode request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Priority {
    /// Best-effort traffic; may be preempted under
    /// [`DecodeScheduler::ContinuousPreempt`].
    Normal,
    /// Latency-sensitive traffic with a time-to-first-token deadline.
    High,
}

/// One generative request in an arrival trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DecodeRequest {
    /// Arrival time in seconds since simulation start.
    pub arrival_s: f64,
    /// Prompt (context) length in tokens — the prefill workload.
    pub prefill_len: usize,
    /// Number of output tokens to generate (≥ 1); the first one falls out
    /// of the prefill pass.
    pub output_len: usize,
    /// Priority class (only [`DecodeScheduler::ContinuousPreempt`] looks
    /// at it).
    pub priority: Priority,
}

/// Generates a Poisson decode trace: prefill lengths from `prefill`,
/// output lengths from `output`, and a `high_fraction` share of
/// high-priority requests.
///
/// Arrival gaps and prefill lengths are drawn from the *primary* RNG
/// stream through the shared [`crate::fleet::poisson_process`] helper, so
/// for the same `(sampler, rate, n, seed)` this emits bit-identical
/// arrival times (and prefill lengths) to
/// [`crate::fleet::poisson_trace`]. Output lengths and priorities come
/// from an auxiliary stream derived from the seed, so adding them cannot
/// perturb the arrival process.
///
/// # Panics
///
/// Panics if `arrival_rate <= 0`, `num_requests == 0`, or `high_fraction`
/// is outside `[0, 1]`.
pub fn decode_trace<P: LengthSampler + ?Sized, O: LengthSampler + ?Sized>(
    prefill: &P,
    output: &O,
    high_fraction: f64,
    arrival_rate: f64,
    num_requests: usize,
    seed: u64,
) -> Vec<DecodeRequest> {
    crate::fleet::poisson_process(
        arrival_rate,
        num_requests,
        seed,
        decode_payload(prefill, output, high_fraction, seed),
    )
}

/// Nonstationary sibling of [`decode_trace`]: arrivals follow the
/// time-varying [`RateProfile`], per-request fields are drawn exactly as
/// [`decode_trace`] draws them. Built on the shared
/// [`crate::fleet::nonstationary_poisson_process`], so for the same
/// `(profile, n, seed)` it emits bit-identical arrival times (and prefill
/// lengths) to [`crate::fleet::nonstationary_poisson_trace`] — the
/// nonstationary mirror of the stationary pinning.
///
/// # Panics
///
/// Panics if the profile is malformed, `num_requests == 0`, or
/// `high_fraction` is outside `[0, 1]`.
pub fn nonstationary_decode_trace<P: LengthSampler + ?Sized, O: LengthSampler + ?Sized>(
    prefill: &P,
    output: &O,
    high_fraction: f64,
    profile: &RateProfile,
    num_requests: usize,
    seed: u64,
) -> Vec<DecodeRequest> {
    crate::fleet::nonstationary_poisson_process(
        profile,
        num_requests,
        seed,
        decode_payload(prefill, output, high_fraction, seed),
    )
}

/// The per-request payload closure shared by [`decode_trace`] and
/// [`nonstationary_decode_trace`]: one source of truth for the draw order,
/// so the stationary and nonstationary generators cannot drift apart.
fn decode_payload<'a, P: LengthSampler + ?Sized, O: LengthSampler + ?Sized>(
    prefill: &'a P,
    output: &'a O,
    high_fraction: f64,
    seed: u64,
) -> impl FnMut(&mut SplitMix64, f64) -> DecodeRequest + 'a {
    assert!(
        (0.0..=1.0).contains(&high_fraction),
        "high_fraction outside [0, 1]"
    );
    let mut aux = SplitMix64::new(seed ^ DECODE_AUX_STREAM);
    move |rng, t| {
        let prefill_len = prefill.sample_length(rng);
        let output_len = output.sample_length(&mut aux).max(1);
        let priority = if aux.next_f64() < high_fraction {
            Priority::High
        } else {
            Priority::Normal
        };
        DecodeRequest {
            arrival_s: t,
            prefill_len,
            output_len,
            priority,
        }
    }
}

/// Per-shard iteration-level scheduling policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DecodeScheduler {
    /// Form a batch only when the shard is empty; hold it — padded to its
    /// longest member at full formed-batch iteration cost — until every
    /// member finishes.
    Static,
    /// Admit waiting requests whenever a slot is free at an iteration
    /// boundary (continuous / iteration-level batching).
    Continuous,
    /// Continuous batching with priority-first admission and preemption of
    /// the longest-running normal resident when a high-priority arrival
    /// would otherwise miss its TTFT deadline.
    ContinuousPreempt,
}

impl DecodeScheduler {
    /// All schedulers, for sweeps.
    pub const ALL: [DecodeScheduler; 3] = [
        DecodeScheduler::Static,
        DecodeScheduler::Continuous,
        DecodeScheduler::ContinuousPreempt,
    ];
}

impl fmt::Display for DecodeScheduler {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeScheduler::Static => write!(f, "static"),
            DecodeScheduler::Continuous => write!(f, "continuous"),
            DecodeScheduler::ContinuousPreempt => write!(f, "continuous+preempt"),
        }
    }
}

/// Parameters of the decode engine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecodeConfig {
    /// Concurrent sequences a shard can hold (KV-cache slots).
    pub max_slots: usize,
    /// Time-to-first-token deadline of high-priority requests; only
    /// [`DecodeScheduler::ContinuousPreempt`] acts on it.
    pub ttft_deadline_s: f64,
}

impl Default for DecodeConfig {
    fn default() -> Self {
        Self {
            max_slots: 8,
            ttft_deadline_s: 0.25,
        }
    }
}

/// How a resident sequence's KV cache moves when the sequence leaves its
/// shard mid-generation — the first-class generalization of the scale-down
/// `Migrate` move (preemption, migration and straggler eviction all
/// behave as [`KvTransfer::Reprefill`]); [`crate::disagg`] prices its
/// prefill→decode pool handoffs with [`KvTransfer::Copy`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum KvTransfer {
    /// Discard the KV cache; the destination re-prefills the grown
    /// context (prompt + tokens emitted so far) on re-admission. Zero
    /// wire latency, one re-prefill pass of compute.
    Reprefill,
    /// Copy the KV cache over the interconnect. The modeled latency is
    /// `base_s + context_tokens * per_token_s` — linear in the resident
    /// context length, the KV footprint actually on the wire — and the
    /// destination resumes decoding without a re-prefill. An infinite
    /// cost means "never transfer": [`crate::disagg`] keeps such
    /// residents decoding in place, which is exactly the colocated
    /// engine.
    Copy {
        /// Fixed per-transfer setup latency in seconds (≥ 0).
        base_s: f64,
        /// Seconds per context token of KV state moved (≥ 0).
        per_token_s: f64,
    },
}

impl KvTransfer {
    /// Modeled transfer latency for a resident holding `context_tokens`
    /// of KV state (prompt length + tokens emitted so far).
    /// [`KvTransfer::Reprefill`] moves no KV, so its wire latency is 0 —
    /// the cost it pays is the re-prefill pass at the destination.
    pub fn latency_s(&self, context_tokens: usize) -> f64 {
        match self {
            KvTransfer::Reprefill => 0.0,
            KvTransfer::Copy {
                base_s,
                per_token_s,
            } => base_s + context_tokens as f64 * per_token_s,
        }
    }

    /// Whether the destination can resume decoding without a re-prefill
    /// (the KV cache survives the move).
    pub fn preserves_kv(&self) -> bool {
        matches!(self, KvTransfer::Copy { .. })
    }

    /// Panics unless the cost model is well-formed: both [`KvTransfer::Copy`]
    /// terms must be ≥ 0 and not NaN (`f64::INFINITY` is legal — it means
    /// "never transfer").
    pub fn validate(&self) {
        if let KvTransfer::Copy {
            base_s,
            per_token_s,
        } = self
        {
            assert!(
                *base_s >= 0.0 && !base_s.is_nan(),
                "negative or NaN KV-transfer base latency"
            );
            assert!(
                *per_token_s >= 0.0 && !per_token_s.is_nan(),
                "negative or NaN KV-transfer per-token latency"
            );
        }
    }
}

/// Outcome of one request (diagnostics / property tests).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RequestOutcome {
    /// Shard the request completed on.
    pub shard: usize,
    /// Time to first token (arrival → end of first prefill iteration);
    /// `f64::INFINITY` if the request never started (failure layer only).
    pub ttft_s: f64,
    /// Completion time in seconds (absolute, not latency);
    /// `f64::INFINITY` if the request never finished (failure layer only).
    pub completion_s: f64,
    /// Output tokens generated (== the request's `output_len` whenever it
    /// completed).
    pub tokens: usize,
    /// Times this request was preempted.
    pub preemptions: u32,
    /// Context (re-)prefill passes priced beyond the first admission —
    /// one per preemption or scale-down migration whose re-admission
    /// actually ran. Equals `preemptions` under a fixed fleet; the decode
    /// autoscaler's migrations add theirs on top.
    pub re_prefills: u32,
}

/// Per-shard decode statistics beyond the [`ShardReport`] slice.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DecodeShardReport {
    /// Shard index within the fleet.
    pub shard: usize,
    /// Preemptions performed on this shard.
    pub preemptions: usize,
    /// Occupied-slot time / (makespan × `max_slots`).
    pub slot_utilization: f64,
    /// Peak resident batch size.
    pub peak_resident: usize,
}

/// Result of a decode simulation: the fleet-level report (latency
/// percentiles, throughput, per-shard utilization, step log) extended with
/// decode-specific metrics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecodeReport {
    /// Fleet-level view. `batch_log` holds one record per *iteration*
    /// (size = resident sequences that step), `mean_batch_size` is the
    /// mean resident count per iteration, and the latency percentiles are
    /// end-to-end (arrival → last token).
    pub fleet: FleetReport,
    /// Mean time to first token.
    pub ttft_mean_s: f64,
    /// Median TTFT.
    pub ttft_p50_s: f64,
    /// 95th-percentile TTFT.
    pub ttft_p95_s: f64,
    /// 99th-percentile TTFT.
    pub ttft_p99_s: f64,
    /// 95th-percentile TTFT over high-priority requests only (`None` when
    /// the trace has none).
    pub high_ttft_p95_s: Option<f64>,
    /// Median inter-token latency (gaps between consecutive tokens of a
    /// request, TTFT excluded); 0 when no request decodes past one token.
    pub itl_p50_s: f64,
    /// 95th-percentile inter-token latency.
    pub itl_p95_s: f64,
    /// 99th-percentile inter-token latency.
    pub itl_p99_s: f64,
    /// Total output tokens actually generated (Σ emitted; equals
    /// Σ `output_len` whenever every request completes).
    pub generated_tokens: u64,
    /// Generated tokens per second of makespan — the goodput a generative
    /// deployment cares about (idle slots in a static batch lower it).
    pub goodput_tok_s: f64,
    /// Fleet-wide occupied-slot time / (makespan × total slots).
    pub slot_utilization: f64,
    /// Total preemptions across the fleet.
    pub preemptions: usize,
    /// Per-shard decode statistics (parallel to `fleet.shards`).
    pub shards: Vec<DecodeShardReport>,
    /// Per-request outcomes in trace order.
    pub requests: Vec<RequestOutcome>,
}

/// A resident sequence occupying one slot of a shard.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Slot {
    pub(crate) req: usize,
    /// The next iteration must run this request's prefill (first admission
    /// or re-admission after preemption).
    is_new: bool,
    /// Monotone admission counter — the tie-breaker that makes "longest
    /// running" deterministic.
    admit_seq: u64,
}

pub(crate) struct DecodeShard {
    pub(crate) queue: VecDeque<usize>,
    pub(crate) resident: Vec<Slot>,
    /// An iteration is in flight (its `StepEnd` event is scheduled).
    pub(crate) stepping: bool,
    /// Live count of the in-flight iteration (stale once `stepping`
    /// drops). Crash truncation and straggler re-pricing read the size
    /// from here rather than from the step log, which
    /// [`ReportMode::Streaming`] does not retain.
    stepping_live: usize,
    /// Bumped whenever scheduled step-end events become invalid (crash,
    /// straggler re-price); stale [`DecodeEventKind::StepEnd`] events
    /// carry the old epoch and are dropped.
    epoch: u64,
    iterations: usize,
    pub(crate) completed: usize,
    pub(crate) busy_time_s: f64,
    /// Completion time of the in-flight iteration (stale once `stepping`
    /// drops); lets a controller clip the charge-at-launch lump of
    /// `busy_time_s` to "busy time elapsed by `t`".
    pub(crate) busy_until_s: f64,
    /// Σ resident × iteration duration (occupied-slot seconds).
    slot_integral: f64,
    /// Σ resident count over iterations (mean-batch-size numerator).
    slot_steps: u64,
    peak_resident: usize,
    preemptions: usize,
    queue_integral: f64,
    max_queue_depth: usize,
    last_event_s: f64,
    /// Decode-iteration cost per resident count, computed once (index =
    /// batch size).
    decode_cost_cache: Vec<Option<f64>>,
}

impl DecodeShard {
    fn new(max_slots: usize) -> Self {
        Self {
            queue: VecDeque::new(),
            resident: Vec::new(),
            stepping: false,
            stepping_live: 0,
            epoch: 0,
            iterations: 0,
            completed: 0,
            busy_time_s: 0.0,
            busy_until_s: 0.0,
            slot_integral: 0.0,
            slot_steps: 0,
            peak_resident: 0,
            preemptions: 0,
            queue_integral: 0.0,
            max_queue_depth: 0,
            last_event_s: 0.0,
            decode_cost_cache: vec![None; max_slots + 1],
        }
    }

    /// Waiting + resident requests — the load metric dispatch balances.
    fn load(&self) -> usize {
        self.queue.len() + self.resident.len()
    }

    /// Advances the queue-depth integral to `now` (call before mutating).
    pub(crate) fn tick(&mut self, now: f64) {
        self.queue_integral += self.queue.len() as f64 * (now - self.last_event_s);
        self.last_event_s = now;
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum DecodeEventKind {
    /// Request index arrives and is routed to a shard.
    Arrival(usize),
    /// Shard finishes its in-flight iteration. `epoch` pins the event to
    /// the shard state it was scheduled against; a crash or a mid-flight
    /// re-price bumps the shard epoch and the stale event is dropped.
    StepEnd { shard: usize, epoch: u64 },
    /// Controller callback ([`DecodeController::on_control`]); lowest
    /// same-instant priority so arrivals and step ends settle first.
    /// [`simulate_decode`] never schedules one.
    Control,
}

/// Hooks a controller drives the decode engine through;
/// [`simulate_decode`] runs with the no-op `NullDecodeController`, the
/// decode autoscaler ([`crate::autoscale`]) with a policy-driven one.
pub(crate) trait DecodeController {
    /// A control event scheduled via [`DecodeCore::schedule_control`]
    /// fired.
    fn on_control(&mut self, _core: &mut DecodeCore<'_>, _now: f64) {}
    /// Request `r` popped as an arrival event (trace arrival or retry),
    /// before it is routed — the window in which [`crate::disagg`] looks
    /// up its shared-prefix group and sets the prefill discount.
    fn on_arrival(&mut self, _core: &mut DecodeCore<'_>, _r: usize, _now: f64) {}
    /// Shard `shard` finished an iteration: tokens are emitted and
    /// finished residents released, but the next iteration has NOT been
    /// launched yet — the window in which scale-down may evict residents.
    fn after_step(&mut self, _core: &mut DecodeCore<'_>, _shard: usize, _now: f64) {}
    /// The failure layer crashed `shard` (already marked dead and not
    /// accepting; orphaned work is re-routed by the caller).
    fn on_shard_down(&mut self, _core: &mut DecodeCore<'_>, _shard: usize, _now: f64) {}
    /// The failure layer revived `shard`. The default is a plain rejoin:
    /// the shard starts accepting routed work immediately.
    fn on_shard_up(&mut self, core: &mut DecodeCore<'_>, shard: usize, _now: f64) {
        core.accepting[shard] = true;
    }
}

/// Controller that never intervenes — the fixed-membership decode fleet.
pub(crate) struct NullDecodeController;

impl DecodeController for NullDecodeController {}

/// The decode engine's mutable core, shared by [`simulate_decode`] (fixed
/// membership, no control events) and
/// [`crate::autoscale::simulate_decode_autoscale`] (runtime shard
/// join/retire): per-shard queues and resident sets, the event heap, and
/// request bookkeeping.
///
/// `accepting[s]` gates *routing only* — a shard that stops accepting
/// still steps its resident sequences, which is exactly the
/// drain-on-retire semantics the decode autoscaler needs.
pub(crate) struct DecodeCore<'a> {
    designs: &'a [AcceleratorDesign],
    pub(crate) trace: &'a [DecodeRequest],
    policy: SchedulingPolicy,
    scheduler: DecodeScheduler,
    cfg: &'a DecodeConfig,
    pub(crate) shards: Vec<DecodeShard>,
    pub(crate) accepting: Vec<bool>,
    /// Crashed shards ([`DecodeCore::crash_shard`]): routing skips them
    /// and `start_iteration` refuses to launch on them until revived.
    pub(crate) dead: Vec<bool>,
    /// Per-shard iteration-cost multiplier (1.0 = healthy). Applied when
    /// an iteration launches; [`DecodeCore::set_slowdown`] also re-prices
    /// an in-flight iteration. Multiplying by exactly 1.0 is an IEEE
    /// identity, so healthy runs stay bit-identical.
    pub(crate) slowdown: Vec<f64>,
    /// Requests permanently given up on by a client layer (timed out with
    /// an exhausted retry budget). Termination checks count
    /// `completed() + abandoned` against the trace length.
    pub(crate) abandoned: usize,
    heap: BinaryHeap<Event<DecodeEventKind>>,
    seq: u64,
    admit_seq: u64,
    rr_next: usize,
    dispatch: DispatchPolicy,
    pub(crate) emitted: Vec<usize>,
    last_emit_s: Vec<f64>,
    pub(crate) ttft_s: Vec<f64>,
    pub(crate) completion_s: Vec<f64>,
    shard_of: Vec<usize>,
    preempt_of: Vec<u32>,
    /// Prefill passes actually priced per request (first admission +
    /// every re-admission after a preemption or migration).
    prefill_passes: Vec<u32>,
    /// Trace arrivals processed so far — the RNG-free, wall-clock-free
    /// observation stream predictive scaling policies consume.
    pub(crate) arrivals_seen: usize,
    /// Per-request one-shot "KV cache already materialized" flag: the next
    /// admission of a flagged request resumes decoding instead of
    /// re-prefilling (a completed [`KvTransfer::Copy`] handoff). Cleared
    /// at admission and whenever the KV state is lost (crash orphaning,
    /// eviction). All-false (the default) is bit-identical to the
    /// pre-transfer engine.
    pub(crate) kv_warm: Vec<bool>,
    /// Per-request prefill discount in tokens (shared-prefix cache hit):
    /// every prefill pass of request `r` is priced over
    /// `prefill_len - prefill_skip[r] + emitted` tokens (clamped to ≥ 1
    /// fresh token). All-zero (the default) prices exactly the full
    /// context.
    pub(crate) prefill_skip: Vec<usize>,
    itl_gaps: Vec<f64>,
    step_log: Vec<BatchRecord>,
    /// Report assembly mode. Under [`ReportMode::Streaming`] the
    /// token-proportional populations (`itl_gaps`, `step_log`) and the
    /// per-request outcome vector are never materialized; the sketches
    /// below absorb each observation as it happens.
    mode: ReportMode,
    lat_sketch: QuantileSketch,
    ttft_sketch: QuantileSketch,
    itl_sketch: QuantileSketch,
    high_ttft: P2Quantile,
    /// Running makespan under streaming: max over valid step-end pops and
    /// crash-truncation instants — exactly the final `completion_s`
    /// population the exact step-log fold reduces.
    stream_makespan_s: f64,
}

impl DecodeCore<'_> {
    /// Decode-iteration cost for `batch` resident sequences: a
    /// `batch`-sequence 1-token run through the shard's pipeline, cached
    /// per batch size.
    fn decode_cost(&mut self, s: usize, batch: usize) -> f64 {
        if let Some(c) = self.shards[s].decode_cost_cache[batch] {
            return c;
        }
        let c = self.designs[s]
            .run_batch(&vec![1usize; batch], self.policy)
            .seconds;
        self.shards[s].decode_cost_cache[batch] = Some(c);
        c
    }

    /// Moves the request at `queue[idx]` of shard `s` into a free slot.
    /// A KV-warm request (completed [`KvTransfer::Copy`]) resumes
    /// decoding; everyone else (re-)prefills. The warmth flag is one-shot:
    /// any later re-admission pays the re-prefill again.
    fn admit_at(&mut self, s: usize, idx: usize) {
        let req = self.shards[s]
            .queue
            .remove(idx)
            .expect("admit index in bounds");
        let admit_seq = self.admit_seq;
        self.admit_seq += 1;
        let is_new = !self.kv_warm[req];
        self.kv_warm[req] = false;
        self.shards[s].resident.push(Slot {
            req,
            is_new,
            admit_seq,
        });
    }

    /// Index into the shard's queue of the next request to admit: FIFO for
    /// static/continuous, high-priority-first (each class FIFO) under the
    /// preempting scheduler.
    fn next_admit_index(&self, s: usize) -> Option<usize> {
        let queue = &self.shards[s].queue;
        if queue.is_empty() {
            return None;
        }
        if self.scheduler == DecodeScheduler::ContinuousPreempt {
            if let Some(idx) = queue
                .iter()
                .position(|&r| self.trace[r].priority == Priority::High)
            {
                return Some(idx);
            }
        }
        Some(0)
    }

    /// Deadline check of the preempting scheduler: while the earliest
    /// waiting high-priority request would miss its TTFT deadline by
    /// waiting out one more decode iteration, evict the longest-running
    /// normal-priority resident (most tokens emitted; earliest admission
    /// breaks ties) and admit the high-priority request in its place. The
    /// victim returns to the queue front and re-prefills its grown context
    /// on re-admission.
    fn preempt_for_deadlines(&mut self, s: usize, now: f64) {
        loop {
            if self.shards[s].resident.len() < self.cfg.max_slots {
                return; // free slot: the admission loop already drained the queue
            }
            let Some(qidx) = self.shards[s]
                .queue
                .iter()
                .position(|&r| self.trace[r].priority == Priority::High)
            else {
                return;
            };
            let high = self.shards[s].queue[qidx];
            let next_step = self.decode_cost(s, self.shards[s].resident.len());
            let deadline = self.trace[high].arrival_s + self.cfg.ttft_deadline_s;
            if now + next_step <= deadline {
                return; // it can still make the deadline without a preemption
            }
            let victim_pos = self.shards[s]
                .resident
                .iter()
                .enumerate()
                .filter(|(_, sl)| self.trace[sl.req].priority == Priority::Normal)
                .max_by_key(|(_, sl)| (self.emitted[sl.req], std::cmp::Reverse(sl.admit_seq)))
                .map(|(i, _)| i);
            let Some(pos) = victim_pos else {
                return; // every resident is high-priority: nothing to evict
            };
            let victim = self.shards[s].resident.remove(pos);
            self.shards[s].queue.remove(qidx).expect("checked above");
            self.shards[s].queue.push_front(victim.req);
            self.shards[s].preemptions += 1;
            self.preempt_of[victim.req] += 1;
            let admit_seq = self.admit_seq;
            self.admit_seq += 1;
            let is_new = !self.kv_warm[high];
            self.kv_warm[high] = false;
            self.shards[s].resident.push(Slot {
                req: high,
                is_new,
                admit_seq,
            });
        }
    }

    /// Runs the scheduler's admission step and, if the shard holds any
    /// resident sequences, prices and launches the next iteration.
    pub(crate) fn start_iteration(&mut self, s: usize, now: f64) {
        if self.dead[s] || self.shards[s].stepping {
            return;
        }
        match self.scheduler {
            DecodeScheduler::Static => {
                if self.shards[s].resident.is_empty() {
                    while self.shards[s].resident.len() < self.cfg.max_slots {
                        match self.next_admit_index(s) {
                            Some(idx) => self.admit_at(s, idx),
                            None => break,
                        }
                    }
                }
            }
            DecodeScheduler::Continuous | DecodeScheduler::ContinuousPreempt => {
                while self.shards[s].resident.len() < self.cfg.max_slots {
                    match self.next_admit_index(s) {
                        Some(idx) => self.admit_at(s, idx),
                        None => break,
                    }
                }
                if self.scheduler == DecodeScheduler::ContinuousPreempt {
                    self.preempt_for_deadlines(s, now);
                }
            }
        }
        if self.shards[s].resident.is_empty() {
            return; // idle until the next arrival
        }
        // Price the iteration as ONE fused pass: full contexts for newly
        // (re-)admitted requests, one token for everyone already resident.
        // Under the static scheduler finished members stay resident
        // (padded), so `resident.len()` is the formed batch size and the
        // rigid engine keeps paying for it; `live` counts the sequences
        // that actually emit a token this iteration.
        let mut lens = Vec::new();
        for i in 0..self.shards[s].resident.len() {
            let sl = self.shards[s].resident[i];
            if sl.is_new {
                // A shared-prefix cache hit discounts the prompt by the
                // cached prefix (at least one fresh token always runs);
                // skip == 0 prices exactly `prefill_len + emitted`.
                let skip = self.prefill_skip[sl.req].min(self.trace[sl.req].prefill_len - 1);
                lens.push(self.trace[sl.req].prefill_len - skip + self.emitted[sl.req]);
                self.prefill_passes[sl.req] += 1;
            }
        }
        let size = self.shards[s].resident.len();
        let live = self.shards[s]
            .resident
            .iter()
            .filter(|sl| self.emitted[sl.req] < self.trace[sl.req].output_len)
            .count();
        let old = size - lens.len();
        lens.extend(std::iter::repeat_n(1, old));
        let cost = if lens.len() == old {
            self.decode_cost(s, old) // pure-decode iteration: cached
        } else {
            self.designs[s].run_batch(&lens, self.policy).seconds
        } * self.slowdown[s];
        let done = now + cost;
        let sh = &mut self.shards[s];
        for slot in sh.resident.iter_mut() {
            slot.is_new = false;
        }
        sh.stepping = true;
        sh.stepping_live = live;
        sh.iterations += 1;
        sh.busy_time_s += cost;
        sh.busy_until_s = done;
        sh.slot_integral += live as f64 * cost;
        sh.slot_steps += live as u64;
        sh.peak_resident = sh.peak_resident.max(size);
        let epoch = sh.epoch;
        if self.mode == ReportMode::Exact {
            self.step_log.push(BatchRecord {
                shard: s,
                start_s: now,
                completion_s: done,
                size: live,
            });
        }
        push_event(
            &mut self.heap,
            &mut self.seq,
            done,
            1,
            DecodeEventKind::StepEnd { shard: s, epoch },
        );
    }

    /// Routes request `r` among accepting shards and queues it; returns
    /// the destination shard. Used for fresh arrivals and for work a
    /// retiring shard hands back (queued requests and migrated
    /// residents).
    pub(crate) fn route_request(&mut self, r: usize, now: f64) -> usize {
        let s = {
            let shards = &self.shards;
            let accepting = &self.accepting;
            route(
                self.dispatch,
                self.designs,
                &|i| accepting[i],
                &|i| shards[i].load(),
                self.trace[r].prefill_len,
                &mut self.rr_next,
            )
        };
        self.shards[s].tick(now);
        self.shards[s].queue.push_back(r);
        let depth = self.shards[s].queue.len();
        self.shards[s].max_queue_depth = self.shards[s].max_queue_depth.max(depth);
        s
    }

    /// Routes request `r` among the shards `eligible` marks true, with the
    /// caller's own round-robin cursor — how [`crate::disagg`] lands
    /// completed handoffs in the decode pool while `accepting` keeps fresh
    /// arrivals in the prefill pool. Same dispatch policy and queueing as
    /// [`DecodeCore::route_request`], different shard mask.
    ///
    /// # Panics
    ///
    /// Panics (inside [`route`]) if no eligible shard exists.
    pub(crate) fn route_request_into(
        &mut self,
        r: usize,
        now: f64,
        eligible: &[bool],
        rr_next: &mut usize,
    ) -> usize {
        let s = {
            let shards = &self.shards;
            route(
                self.dispatch,
                self.designs,
                &|i| eligible[i],
                &|i| shards[i].load(),
                self.trace[r].prefill_len,
                rr_next,
            )
        };
        self.shards[s].tick(now);
        self.shards[s].queue.push_back(r);
        let depth = self.shards[s].queue.len();
        self.shards[s].max_queue_depth = self.shards[s].max_queue_depth.max(depth);
        s
    }

    /// Evicts shard `s`'s *unfinished* residents back into the accepting
    /// shards' queues and returns how many were evicted — the shared
    /// KV-transfer move ([`KvTransfer::Reprefill`] semantics: the KV cache
    /// is discarded, so each victim re-prefills its grown context on
    /// re-admission). Finished sequences a static batch still holds as
    /// padded slots have nothing left to generate — they are released,
    /// never migrated or re-priced. Touched survivor shards are collected
    /// into `touched` (deduplicated) for the caller to kick.
    pub(crate) fn evict_unfinished(
        &mut self,
        s: usize,
        now: f64,
        touched: &mut Vec<usize>,
    ) -> usize {
        let evicted: Vec<usize> = self.shards[s].resident.drain(..).map(|sl| sl.req).collect();
        let mut moved = 0;
        for r in evicted {
            if self.emitted[r] >= self.trace[r].output_len {
                continue; // padded static slot: generation already complete
            }
            self.kv_warm[r] = false;
            moved += 1;
            let s2 = self.route_request(r, now);
            if !touched.contains(&s2) {
                touched.push(s2);
            }
        }
        moved
    }

    /// Schedules a [`DecodeController::on_control`] callback at `time`.
    pub(crate) fn schedule_control(&mut self, time: f64) {
        push_event(
            &mut self.heap,
            &mut self.seq,
            time,
            2,
            DecodeEventKind::Control,
        );
    }

    /// Requests completed so far across the fleet.
    pub(crate) fn completed(&self) -> usize {
        self.shards.iter().map(|sh| sh.completed).sum()
    }

    /// Crashes shard `s` at `now`: marks it dead and non-accepting,
    /// truncates the in-flight iteration (its destroyed tail never counts
    /// as busy or occupied-slot time; tokens it would have emitted are
    /// lost), and returns every orphaned request — the waiting queue plus
    /// every *unfinished* KV resident, whose grown context re-prefills on
    /// re-admission exactly like a preemption victim. Finished padded
    /// residents of a static batch are simply dropped. The launch-time
    /// `iterations`/`slot_steps` charges of the aborted iteration stay
    /// (both sides of the mean-batch-size ratio keep counting it).
    ///
    /// # Panics
    ///
    /// Panics if the shard is already dead.
    pub(crate) fn crash_shard(&mut self, s: usize, now: f64) -> Vec<usize> {
        assert!(!self.dead[s], "shard crashed twice");
        self.dead[s] = true;
        self.accepting[s] = false;
        self.shards[s].tick(now);
        if self.shards[s].stepping {
            let size = self.shards[s].stepping_live;
            match self.mode {
                ReportMode::Exact => {
                    let rec_idx = self
                        .step_log
                        .iter()
                        .rposition(|b| b.shard == s)
                        .expect("stepping shard has a step record");
                    self.step_log[rec_idx].completion_s = now;
                }
                // The truncated record would have contributed `now` to the
                // makespan fold; fold it into the running max instead.
                ReportMode::Streaming => {
                    self.stream_makespan_s = self.stream_makespan_s.max(now);
                }
            }
            let sh = &mut self.shards[s];
            let remaining = (sh.busy_until_s - now).max(0.0);
            sh.stepping = false;
            sh.epoch += 1;
            sh.busy_time_s -= remaining;
            sh.slot_integral -= size as f64 * remaining;
            sh.busy_until_s = now;
        }
        let mut orphans: Vec<usize> = self.shards[s].queue.drain(..).collect();
        let residents: Vec<Slot> = self.shards[s].resident.drain(..).collect();
        for sl in residents {
            if self.emitted[sl.req] < self.trace[sl.req].output_len {
                orphans.push(sl.req);
            }
        }
        for &r in &orphans {
            // Any KV state the crash destroyed (including a queued warm
            // handoff that never got admitted) is gone: the orphan
            // re-prefills wherever it lands.
            self.kv_warm[r] = false;
        }
        orphans
    }

    /// Brings a crashed shard back. Routing eligibility is the
    /// controller's call ([`DecodeController::on_shard_up`]).
    pub(crate) fn revive_shard(&mut self, s: usize) {
        assert!(self.dead[s], "revived a live shard");
        self.dead[s] = false;
    }

    /// Sets shard `s`'s iteration-cost multiplier (straggler ×`factor`,
    /// recovery back to 1.0). An in-flight iteration is re-priced on the
    /// fly: its unexecuted remainder is scaled by `factor / old`, the
    /// shard epoch bumps so the stale step-end event is dropped, and a new
    /// one is scheduled at the re-priced completion time.
    pub(crate) fn set_slowdown(&mut self, s: usize, factor: f64, now: f64) {
        assert!(
            factor > 0.0 && factor.is_finite(),
            "slowdown factor must be positive and finite"
        );
        let old = self.slowdown[s];
        self.slowdown[s] = factor;
        if factor == old || !self.shards[s].stepping {
            return;
        }
        let size = self.shards[s].stepping_live;
        let done;
        let epoch;
        {
            let sh = &mut self.shards[s];
            let remaining = (sh.busy_until_s - now).max(0.0);
            let new_remaining = remaining * (factor / old);
            sh.busy_time_s += new_remaining - remaining;
            sh.slot_integral += size as f64 * (new_remaining - remaining);
            sh.busy_until_s = now + new_remaining;
            sh.epoch += 1;
            done = sh.busy_until_s;
            epoch = sh.epoch;
        }
        if self.mode == ReportMode::Exact {
            let rec_idx = self
                .step_log
                .iter()
                .rposition(|b| b.shard == s)
                .expect("stepping shard has a step record");
            self.step_log[rec_idx].completion_s = done;
        }
        push_event(
            &mut self.heap,
            &mut self.seq,
            done,
            1,
            DecodeEventKind::StepEnd { shard: s, epoch },
        );
    }

    /// Schedules an arrival event for request `r` at `time` — the
    /// re-entry path for client retries and for work orphaned by a crash.
    /// Indistinguishable from a trace arrival when it pops, so it
    /// re-counts in `arrivals_seen` (a retry *is* offered load).
    pub(crate) fn schedule_arrival(&mut self, r: usize, time: f64) {
        push_event(
            &mut self.heap,
            &mut self.seq,
            time,
            0,
            DecodeEventKind::Arrival(r),
        );
    }

    /// Removes request `r` from the shard queue it is waiting in so a
    /// client layer can retry or abandon it. Returns `false` if the
    /// request is not cancellable: already emitting tokens (its KV state
    /// is live — a timeout mid-generation is not a client abandon in this
    /// model), resident in a slot, or done.
    pub(crate) fn cancel_waiting(&mut self, r: usize, now: f64) -> bool {
        if self.emitted[r] > 0 || self.completion_s[r].is_finite() {
            return false;
        }
        if self
            .shards
            .iter()
            .any(|sh| sh.resident.iter().any(|sl| sl.req == r))
        {
            return false;
        }
        for s in 0..self.shards.len() {
            if let Some(i) = self.shards[s].queue.iter().position(|&x| x == r) {
                self.shards[s].tick(now);
                self.shards[s].queue.remove(i);
                return true;
            }
        }
        false
    }

    /// One token emitted per live resident at the end of an iteration.
    /// Continuous schedulers free finished slots immediately; the static
    /// scheduler holds every slot (padded) until the whole batch drains.
    /// Does NOT launch the next iteration — the run loop does, after the
    /// controller's [`DecodeController::after_step`] hook.
    fn on_step_end(&mut self, s: usize, now: f64) {
        self.shards[s].tick(now);
        self.shards[s].stepping = false;
        if self.mode == ReportMode::Streaming {
            // A valid (non-stale) step-end pops at its record's final
            // completion time, so this running max sees exactly the
            // values the exact step-log fold reduces.
            self.stream_makespan_s = self.stream_makespan_s.max(now);
        }
        let residents: Vec<usize> = self.shards[s].resident.iter().map(|sl| sl.req).collect();
        for r in residents {
            if self.emitted[r] >= self.trace[r].output_len {
                continue; // padded slot in a static batch: no live token
            }
            self.emitted[r] += 1;
            if self.emitted[r] == 1 {
                let ttft = now - self.trace[r].arrival_s;
                self.ttft_s[r] = ttft;
                if self.mode == ReportMode::Streaming {
                    self.ttft_sketch.observe(ttft);
                    if self.trace[r].priority == Priority::High {
                        self.high_ttft.observe(ttft);
                    }
                }
            } else {
                let gap = now - self.last_emit_s[r];
                match self.mode {
                    ReportMode::Exact => self.itl_gaps.push(gap),
                    ReportMode::Streaming => self.itl_sketch.observe(gap),
                }
            }
            self.last_emit_s[r] = now;
            if self.emitted[r] == self.trace[r].output_len {
                assert!(self.completion_s[r].is_nan(), "request completed twice");
                self.completion_s[r] = now;
                self.shard_of[r] = s;
                self.shards[s].completed += 1;
                if self.mode == ReportMode::Streaming {
                    self.lat_sketch.observe(now - self.trace[r].arrival_s);
                }
            }
        }
        let emitted = &self.emitted;
        let trace = self.trace;
        if self.scheduler == DecodeScheduler::Static {
            if self.shards[s]
                .resident
                .iter()
                .all(|sl| emitted[sl.req] >= trace[sl.req].output_len)
            {
                self.shards[s].resident.clear();
            }
        } else {
            self.shards[s]
                .resident
                .retain(|sl| emitted[sl.req] < trace[sl.req].output_len);
        }
    }
}

impl<'a> DecodeCore<'a> {
    /// Validates the inputs and seeds the heap with every arrival.
    ///
    /// # Panics
    ///
    /// Panics if `shards` or `trace` is empty, `cfg.max_slots == 0`,
    /// `cfg.ttft_deadline_s < 0`, any `output_len`/`prefill_len` is zero,
    /// the trace is unsorted / non-finite, or `accepting` has the wrong
    /// length / no accepting shard.
    pub(crate) fn new(
        shards: &'a [AcceleratorDesign],
        trace: &'a [DecodeRequest],
        policy: SchedulingPolicy,
        dispatch: DispatchPolicy,
        scheduler: DecodeScheduler,
        cfg: &'a DecodeConfig,
        accepting: Vec<bool>,
    ) -> Self {
        assert!(!shards.is_empty(), "fleet needs at least one shard");
        assert!(!trace.is_empty(), "empty arrival trace");
        assert!(cfg.max_slots > 0, "max_slots must be >= 1");
        assert!(cfg.ttft_deadline_s >= 0.0, "negative TTFT deadline");
        assert!(
            trace
                .iter()
                .all(|r| r.arrival_s.is_finite() && r.arrival_s >= 0.0),
            "arrival times must be finite and non-negative"
        );
        assert!(
            trace.windows(2).all(|w| w[0].arrival_s <= w[1].arrival_s),
            "trace must be sorted by arrival time"
        );
        assert!(
            trace.iter().all(|r| r.output_len > 0 && r.prefill_len > 0),
            "prefill_len and output_len must be >= 1"
        );
        assert_eq!(accepting.len(), shards.len(), "accepting mask length");
        assert!(
            accepting.iter().any(|&a| a),
            "at least one shard must accept work"
        );

        let n = trace.len();
        let mut heap: BinaryHeap<Event<DecodeEventKind>> = BinaryHeap::with_capacity(n * 2);
        let mut seq = 0u64;
        for (r, req) in trace.iter().enumerate() {
            push_event(
                &mut heap,
                &mut seq,
                req.arrival_s,
                0,
                DecodeEventKind::Arrival(r),
            );
        }
        Self {
            designs: shards,
            trace,
            policy,
            scheduler,
            cfg,
            shards: (0..shards.len())
                .map(|_| DecodeShard::new(cfg.max_slots))
                .collect(),
            accepting,
            dead: vec![false; shards.len()],
            slowdown: vec![1.0; shards.len()],
            abandoned: 0,
            heap,
            seq,
            admit_seq: 0,
            rr_next: 0,
            dispatch,
            emitted: vec![0; n],
            last_emit_s: vec![f64::NAN; n],
            ttft_s: vec![f64::NAN; n],
            completion_s: vec![f64::NAN; n],
            shard_of: vec![usize::MAX; n],
            preempt_of: vec![0; n],
            prefill_passes: vec![0; n],
            arrivals_seen: 0,
            kv_warm: vec![false; n],
            prefill_skip: vec![0; n],
            itl_gaps: Vec::new(),
            step_log: Vec::new(),
            mode: ReportMode::Exact,
            lat_sketch: QuantileSketch::p50_p95_p99(),
            ttft_sketch: QuantileSketch::p50_p95_p99(),
            itl_sketch: QuantileSketch::p50_p95_p99(),
            high_ttft: P2Quantile::new(0.95),
            stream_makespan_s: 0.0,
        }
    }

    /// Switches report assembly to `mode`. Call before [`DecodeCore::run`]
    /// — the streaming sketches only see observations made after the
    /// switch.
    pub(crate) fn set_mode(&mut self, mode: ReportMode) {
        self.mode = mode;
    }

    /// Runs the event loop to completion, calling `ctl`'s hooks.
    pub(crate) fn run<C: DecodeController>(&mut self, ctl: &mut C) {
        while let Some(ev) = self.heap.pop() {
            match ev.kind {
                DecodeEventKind::Arrival(r) => {
                    // Admit ALL same-instant arrivals before any iteration
                    // starts, so a simultaneous burst fills the batch slots
                    // instead of launching a singleton iteration.
                    self.arrivals_seen += 1;
                    ctl.on_arrival(self, r, ev.time);
                    let mut touched = vec![self.route_request(r, ev.time)];
                    while let Some(next) = self.heap.peek() {
                        match next.kind {
                            DecodeEventKind::Arrival(r2) if next.time == ev.time => {
                                self.heap.pop();
                                self.arrivals_seen += 1;
                                ctl.on_arrival(self, r2, ev.time);
                                let s = self.route_request(r2, ev.time);
                                if !touched.contains(&s) {
                                    touched.push(s);
                                }
                            }
                            _ => break,
                        }
                    }
                    for s in touched {
                        self.start_iteration(s, ev.time);
                    }
                }
                DecodeEventKind::StepEnd { shard: s, epoch } => {
                    // Stale if the shard crashed or was re-priced after
                    // this event was scheduled.
                    if epoch != self.shards[s].epoch {
                        continue;
                    }
                    self.on_step_end(s, ev.time);
                    ctl.after_step(self, s, ev.time);
                    self.start_iteration(s, ev.time);
                }
                DecodeEventKind::Control => ctl.on_control(self, ev.time),
            }
        }
    }

    /// Assembles the [`DecodeReport`] after the heap drained.
    ///
    /// Requests that never completed (timed out, lost to an unrecovered
    /// outage) are absent from the latency/TTFT populations, and their
    /// [`RequestOutcome`] carries `f64::INFINITY` sentinels (keeping the
    /// report `PartialEq`-comparable for determinism tests). Conservation
    /// is the *caller's* invariant — [`simulate_decode`] asserts it; the
    /// failure layer accounts shortfalls through client dispositions.
    pub(crate) fn into_report(self) -> DecodeReport {
        let n = self.trace.len();
        let cfg = self.cfg;
        let makespan = match self.mode {
            ReportMode::Exact => self
                .step_log
                .iter()
                .map(|b| b.completion_s)
                .fold(0.0f64, f64::max),
            // Bit-identical to the fold above: the running max saw every
            // record's final completion time (valid step-end pops plus
            // crash truncations), just in event order.
            ReportMode::Streaming => self.stream_makespan_s,
        };
        // One sort per sample for each p50/p95/p99 triple (bit-identical
        // to per-call `percentile`, which re-sorted the sample each time).
        let pct3 =
            |xs: &[f64]| percentiles(xs, &[0.50, 0.95, 0.99]).unwrap_or_else(|| vec![0.0; 3]);
        let sketch3 = |sk: &QuantileSketch| {
            if sk.count() == 0 {
                vec![0.0; 3]
            } else {
                sk.quantiles()
            }
        };
        let sketch_mean = |sk: &QuantileSketch| if sk.count() == 0 { 0.0 } else { sk.mean() };
        let (completed_n, lat_mean, lat_pcts) = match self.mode {
            ReportMode::Exact => {
                let latencies: Vec<f64> = self
                    .completion_s
                    .iter()
                    .zip(self.trace)
                    .filter(|(c, _)| c.is_finite())
                    .map(|(&c, req)| c - req.arrival_s)
                    .collect();
                let mean = if latencies.is_empty() {
                    0.0
                } else {
                    latencies.iter().sum::<f64>() / latencies.len() as f64
                };
                (latencies.len(), mean, pct3(&latencies))
            }
            ReportMode::Streaming => (
                self.lat_sketch.count() as usize,
                sketch_mean(&self.lat_sketch),
                sketch3(&self.lat_sketch),
            ),
        };
        let (ttft_mean, ttft_pcts, high_ttft_p95_s) = match self.mode {
            ReportMode::Exact => {
                let ttfts: Vec<f64> = self
                    .ttft_s
                    .iter()
                    .copied()
                    .filter(|t| t.is_finite())
                    .collect();
                let high_ttfts: Vec<f64> = self
                    .trace
                    .iter()
                    .zip(&self.ttft_s)
                    .filter(|(r, t)| r.priority == Priority::High && t.is_finite())
                    .map(|(_, &t)| t)
                    .collect();
                let mean = if ttfts.is_empty() {
                    0.0
                } else {
                    ttfts.iter().sum::<f64>() / ttfts.len() as f64
                };
                (mean, pct3(&ttfts), percentile(&high_ttfts, 0.95))
            }
            ReportMode::Streaming => (
                sketch_mean(&self.ttft_sketch),
                sketch3(&self.ttft_sketch),
                if self.high_ttft.count() == 0 {
                    None
                } else {
                    Some(self.high_ttft.quantile())
                },
            ),
        };
        let itl_pcts = match self.mode {
            ReportMode::Exact => pct3(&self.itl_gaps),
            ReportMode::Streaming => sketch3(&self.itl_sketch),
        };
        let total_iterations: usize = self.shards.iter().map(|sh| sh.iterations).sum();
        let total_slot_steps: u64 = self.shards.iter().map(|sh| sh.slot_steps).sum();
        let shard_reports: Vec<ShardReport> = self
            .shards
            .iter()
            .enumerate()
            .map(|(i, sh)| ShardReport {
                shard: i,
                tuned_length: self.designs[i].tuned_length(),
                completed: sh.completed,
                batches: sh.iterations,
                mean_batch_size: if sh.iterations == 0 {
                    0.0
                } else {
                    sh.slot_steps as f64 / sh.iterations as f64
                },
                utilization: sh.busy_time_s / makespan.max(1e-12),
                mean_queue_depth: sh.queue_integral / makespan.max(1e-12),
                max_queue_depth: sh.max_queue_depth,
            })
            .collect();
        let decode_shards: Vec<DecodeShardReport> = self
            .shards
            .iter()
            .enumerate()
            .map(|(i, sh)| DecodeShardReport {
                shard: i,
                preemptions: sh.preemptions,
                slot_utilization: sh.slot_integral / (makespan.max(1e-12) * cfg.max_slots as f64),
                peak_resident: sh.peak_resident,
            })
            .collect();
        // INFINITY (not NaN) sentinels for never-started / never-finished
        // requests keep the outcome vector PartialEq-comparable, which the
        // determinism suites rely on (`NaN != NaN` would break them).
        let finite_or_inf = |x: f64| if x.is_finite() { x } else { f64::INFINITY };
        let requests: Vec<RequestOutcome> = match self.mode {
            ReportMode::Exact => (0..n)
                .map(|r| RequestOutcome {
                    shard: self.shard_of[r],
                    ttft_s: finite_or_inf(self.ttft_s[r]),
                    completion_s: finite_or_inf(self.completion_s[r]),
                    tokens: self.emitted[r],
                    preemptions: self.preempt_of[r],
                    re_prefills: self.prefill_passes[r].saturating_sub(1),
                })
                .collect(),
            // Streaming drops the per-request outcome vector — the whole
            // point of the mode is not materializing O(n) report state.
            ReportMode::Streaming => Vec::new(),
        };
        let generated_tokens: u64 = self.emitted.iter().map(|&e| e as u64).sum();
        let fleet = FleetReport {
            completed: completed_n,
            mean_latency_s: lat_mean,
            p50_latency_s: lat_pcts[0],
            p95_latency_s: lat_pcts[1],
            p99_latency_s: lat_pcts[2],
            throughput_seq_s: completed_n as f64 / makespan.max(1e-12),
            makespan_s: makespan,
            mean_batch_size: if total_iterations == 0 {
                0.0
            } else {
                total_slot_steps as f64 / total_iterations as f64
            },
            shards: shard_reports,
            batch_log: self.step_log,
        };
        DecodeReport {
            ttft_mean_s: ttft_mean,
            ttft_p50_s: ttft_pcts[0],
            ttft_p95_s: ttft_pcts[1],
            ttft_p99_s: ttft_pcts[2],
            high_ttft_p95_s,
            itl_p50_s: itl_pcts[0],
            itl_p95_s: itl_pcts[1],
            itl_p99_s: itl_pcts[2],
            generated_tokens,
            goodput_tok_s: generated_tokens as f64 / makespan.max(1e-12),
            slot_utilization: self.shards.iter().map(|sh| sh.slot_integral).sum::<f64>()
                / (makespan.max(1e-12) * (cfg.max_slots * self.designs.len()) as f64),
            preemptions: self.shards.iter().map(|sh| sh.preemptions).sum(),
            shards: decode_shards,
            requests,
            fleet,
        }
    }
}

/// Simulates `trace` over a fleet of `shards`, each holding up to
/// `cfg.max_slots` concurrent sequences and stepping them under
/// `scheduler`; arrivals are routed by `dispatch` (length-binned routing
/// bins by prefill length).
///
/// Every request completes exactly once and generates exactly its
/// `output_len` tokens, preempted or not.
///
/// # Panics
///
/// Panics if `shards` or `trace` is empty, `cfg.max_slots == 0`,
/// `cfg.ttft_deadline_s < 0`, any `output_len`/`prefill_len` is zero, or
/// the trace is unsorted / non-finite.
pub fn simulate_decode(
    shards: &[AcceleratorDesign],
    trace: &[DecodeRequest],
    policy: SchedulingPolicy,
    dispatch: DispatchPolicy,
    scheduler: DecodeScheduler,
    cfg: &DecodeConfig,
) -> DecodeReport {
    simulate_decode_mode(
        shards,
        trace,
        policy,
        dispatch,
        scheduler,
        cfg,
        ReportMode::Exact,
    )
}

/// [`simulate_decode`] with an explicit [`ReportMode`].
///
/// `Exact` is [`simulate_decode`] verbatim. `Streaming` runs the
/// identical event sequence but feeds TTFT / inter-token gaps / latencies
/// into P² sketches as tokens are emitted instead of retaining the
/// token-proportional populations: the report's percentile fields are
/// sketch estimates (within the ε the property suites pin), its
/// `requests` and `fleet.batch_log` vectors are empty, and the counters,
/// makespan, throughput, and per-shard stats are bit-identical to
/// `Exact`.
///
/// # Panics
///
/// Same panics as [`simulate_decode`], including the conservation assert.
#[allow(clippy::too_many_arguments)]
pub fn simulate_decode_mode(
    shards: &[AcceleratorDesign],
    trace: &[DecodeRequest],
    policy: SchedulingPolicy,
    dispatch: DispatchPolicy,
    scheduler: DecodeScheduler,
    cfg: &DecodeConfig,
    mode: ReportMode,
) -> DecodeReport {
    let mut core = DecodeCore::new(
        shards,
        trace,
        policy,
        dispatch,
        scheduler,
        cfg,
        vec![true; shards.len()],
    );
    core.set_mode(mode);
    core.run(&mut NullDecodeController);
    let report = core.into_report();
    assert_eq!(
        report.fleet.completed,
        trace.len(),
        "request never completed (conservation bug in the healthy fleet)"
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::{homogeneous_fleet, poisson_trace, simulate_fleet, BatcherConfig};
    use crate::spec::FpgaSpec;
    use lat_model::config::ModelConfig;
    use lat_model::graph::AttentionMode;
    use lat_workloads::datasets::DatasetSpec;

    fn tiny_design(s_avg: usize) -> AcceleratorDesign {
        AcceleratorDesign::new(
            &ModelConfig::tiny(),
            AttentionMode::paper_sparse(),
            FpgaSpec::alveo_u280(),
            s_avg,
        )
    }

    fn burst(n: usize, at: f64, prefill: usize, output: usize) -> Vec<DecodeRequest> {
        vec![
            DecodeRequest {
                arrival_s: at,
                prefill_len: prefill,
                output_len: output,
                priority: Priority::Normal,
            };
            n
        ]
    }

    fn run(
        trace: &[DecodeRequest],
        scheduler: DecodeScheduler,
        slots: usize,
        n_shards: usize,
    ) -> DecodeReport {
        let fleet = homogeneous_fleet(&tiny_design(64), n_shards);
        simulate_decode(
            &fleet,
            trace,
            SchedulingPolicy::LengthAware,
            DispatchPolicy::JoinShortestQueue,
            scheduler,
            &DecodeConfig {
                max_slots: slots,
                ttft_deadline_s: 0.25,
            },
        )
    }

    #[test]
    fn decode_trace_matches_poisson_trace_arrivals() {
        let spec = DatasetSpec::rte();
        let enc = poisson_trace(&spec, 120.0, 40, 99);
        let dec = decode_trace(&spec, &spec.decode_output(), 0.2, 120.0, 40, 99);
        for (a, b) in enc.iter().zip(&dec) {
            assert_eq!(a.arrival_s, b.arrival_s, "arrival process drifted");
            assert_eq!(a.len, b.prefill_len, "prefill stream drifted");
        }
        assert!(dec.iter().all(|r| r.output_len >= 1));
        assert!(dec.iter().any(|r| r.priority == Priority::High));
        assert!(dec.iter().any(|r| r.priority == Priority::Normal));
    }

    #[test]
    fn every_request_generates_its_tokens_once() {
        let trace = decode_trace(
            &DatasetSpec::rte(),
            &DatasetSpec::rte().decode_output(),
            0.25,
            400.0,
            30,
            7,
        );
        for scheduler in DecodeScheduler::ALL {
            let r = run(&trace, scheduler, 4, 2);
            assert_eq!(r.fleet.completed, 30, "{scheduler}");
            assert_eq!(
                r.generated_tokens,
                trace.iter().map(|q| q.output_len as u64).sum::<u64>()
            );
            for (req, out) in trace.iter().zip(&r.requests) {
                assert_eq!(out.tokens, req.output_len, "{scheduler}");
                assert!(out.ttft_s > 0.0 && out.ttft_s <= out.completion_s - req.arrival_s);
            }
        }
    }

    #[test]
    fn static_batch_holds_slots_until_all_finish() {
        // Two requests, outputs 1 and 4: static runs them as one batch and
        // admits nothing until the long one drains, so a third arrival
        // waits. Continuous admits it as soon as the short one frees a
        // slot, finishing strictly earlier.
        let mut trace = burst(2, 0.0, 64, 1);
        trace[1].output_len = 4;
        trace.push(DecodeRequest {
            arrival_s: 1e-6,
            prefill_len: 64,
            output_len: 1,
            priority: Priority::Normal,
        });
        let st = run(&trace, DecodeScheduler::Static, 2, 1);
        let ct = run(&trace, DecodeScheduler::Continuous, 2, 1);
        assert!(
            ct.requests[2].completion_s < st.requests[2].completion_s,
            "continuous {} !< static {}",
            ct.requests[2].completion_s,
            st.requests[2].completion_s
        );
        assert!(ct.requests[2].ttft_s < st.requests[2].ttft_s);
        // Back-filling the freed slot keeps more slots busy.
        assert!(ct.slot_utilization > st.slot_utilization);
    }

    #[test]
    fn continuous_beats_static_goodput_under_saturating_load() {
        // The headline claim at unit scale: under saturating load with
        // skewed output lengths, slots idled by a static batch's
        // stragglers turn directly into lost goodput.
        let trace = decode_trace(
            &DatasetSpec::rte(),
            &DatasetSpec::rte().decode_output(),
            0.0,
            5000.0,
            48,
            13,
        );
        let st = run(&trace, DecodeScheduler::Static, 4, 1);
        let ct = run(&trace, DecodeScheduler::Continuous, 4, 1);
        assert!(
            ct.goodput_tok_s > st.goodput_tok_s,
            "continuous {} !> static {}",
            ct.goodput_tok_s,
            st.goodput_tok_s
        );
        assert!(ct.slot_utilization > st.slot_utilization);
    }

    #[test]
    fn continuous_admits_on_slot_free() {
        // 4 slots, 8 requests with output 2: continuous back-fills freed
        // slots; peak residency is the slot cap and every iteration after
        // the first runs full.
        let trace = burst(8, 0.0, 64, 2);
        let r = run(&trace, DecodeScheduler::Continuous, 4, 1);
        assert_eq!(r.shards[0].peak_resident, 4);
        assert!(r.fleet.batch_log.iter().all(|b| b.size <= 4));
        assert_eq!(r.fleet.completed, 8);
    }

    #[test]
    fn preemption_rescues_high_priority_ttft() {
        // Slots saturated by long normal requests; a high-priority arrival
        // with a tight deadline must preempt under ContinuousPreempt and
        // see a strictly lower TTFT than under plain continuous.
        let mut trace = burst(6, 0.0, 64, 40);
        trace.push(DecodeRequest {
            arrival_s: 1e-6, // lands inside the first prefill iteration
            prefill_len: 32,
            output_len: 4,
            priority: Priority::High,
        });
        let tight = |scheduler| {
            let fleet = homogeneous_fleet(&tiny_design(64), 1);
            simulate_decode(
                &fleet,
                &trace,
                SchedulingPolicy::LengthAware,
                DispatchPolicy::JoinShortestQueue,
                scheduler,
                &DecodeConfig {
                    max_slots: 2,
                    // Zero deadline: any waiting high-priority request is
                    // urgent at the very next iteration boundary.
                    ttft_deadline_s: 0.0,
                },
            )
        };
        let cont = tight(DecodeScheduler::Continuous);
        let pre = tight(DecodeScheduler::ContinuousPreempt);
        assert!(pre.preemptions > 0, "no preemption happened");
        assert!(
            pre.requests[6].ttft_s < cont.requests[6].ttft_s,
            "preempt TTFT {} !< continuous TTFT {}",
            pre.requests[6].ttft_s,
            cont.requests[6].ttft_s
        );
        // The victims still finish and still generate every token.
        assert_eq!(pre.fleet.completed, 7);
        assert!(pre.requests.iter().any(|q| q.preemptions > 0));
    }

    #[test]
    fn preempting_scheduler_without_high_traffic_matches_continuous() {
        let trace = decode_trace(
            &DatasetSpec::mrpc(),
            &DatasetSpec::mrpc().decode_output(),
            0.0,
            300.0,
            24,
            11,
        );
        let a = run(&trace, DecodeScheduler::Continuous, 4, 2);
        let b = run(&trace, DecodeScheduler::ContinuousPreempt, 4, 2);
        assert_eq!(a, b);
    }

    #[test]
    fn single_step_burst_reproduces_fleet_engine_exactly() {
        // output_len == 1 makes every request a pure prefill; on a burst
        // the decode engine forms the same full batches as the encoder
        // fleet's cap-fill path, and both price them with `run_batch`, so
        // throughput agrees to rounding error.
        let design = tiny_design(64);
        let lens = [64usize, 32, 48, 64, 16, 40, 56, 24];
        let dec: Vec<DecodeRequest> = lens
            .iter()
            .map(|&l| DecodeRequest {
                arrival_s: 0.0,
                prefill_len: l,
                output_len: 1,
                priority: Priority::Normal,
            })
            .collect();
        let enc: Vec<crate::fleet::Request> = lens
            .iter()
            .map(|&l| crate::fleet::Request {
                arrival_s: 0.0,
                len: l,
            })
            .collect();
        let d = simulate_decode(
            std::slice::from_ref(&design),
            &dec,
            SchedulingPolicy::LengthAware,
            DispatchPolicy::JoinShortestQueue,
            DecodeScheduler::Continuous,
            &DecodeConfig {
                max_slots: 4,
                ttft_deadline_s: 0.25,
            },
        );
        let f = simulate_fleet(
            std::slice::from_ref(&design),
            &enc,
            SchedulingPolicy::LengthAware,
            DispatchPolicy::JoinShortestQueue,
            &BatcherConfig {
                batch_window_s: 0.05,
                max_batch: 4,
            },
        );
        let rel = (d.fleet.throughput_seq_s - f.throughput_seq_s).abs() / f.throughput_seq_s;
        assert!(
            rel < 1e-9,
            "decode {} vs fleet {} throughput",
            d.fleet.throughput_seq_s,
            f.throughput_seq_s
        );
    }

    #[test]
    fn deterministic_for_identical_inputs() {
        let trace = decode_trace(
            &DatasetSpec::rte(),
            &DatasetSpec::rte().decode_output(),
            0.2,
            500.0,
            40,
            42,
        );
        let go = || run(&trace, DecodeScheduler::ContinuousPreempt, 4, 3);
        assert_eq!(go(), go());
    }

    #[test]
    #[should_panic(expected = "empty arrival trace")]
    fn zero_request_trace_rejected() {
        // The 0-request edge: an empty trace has no makespan to normalize
        // slot utilization by, so the engine must refuse it outright
        // rather than emit a report full of 0/0.
        let fleet = homogeneous_fleet(&tiny_design(64), 1);
        let _ = simulate_decode(
            &fleet,
            &[],
            SchedulingPolicy::LengthAware,
            DispatchPolicy::RoundRobin,
            DecodeScheduler::Continuous,
            &DecodeConfig::default(),
        );
    }

    #[test]
    fn single_request_single_slot_utilization_is_exact() {
        // 1 request × 1 slot arriving at t=0: the slot is live for every
        // iteration and iterations run back-to-back, so live-slot
        // utilization is exactly the busy fraction (= 1) and nothing can
        // be preempted. Exercises the smallest report the engine can emit.
        let trace = burst(1, 0.0, 64, 5);
        for scheduler in DecodeScheduler::ALL {
            let r = run(&trace, scheduler, 1, 1);
            assert_eq!(r.fleet.completed, 1, "{scheduler}");
            assert_eq!(r.generated_tokens, 5);
            assert!(
                (r.slot_utilization - 1.0).abs() < 1e-12,
                "{scheduler}: slot utilization {} != 1",
                r.slot_utilization
            );
            assert!((r.shards[0].slot_utilization - 1.0).abs() < 1e-12);
            assert_eq!(r.preemptions, 0, "{scheduler}");
            assert_eq!(r.shards[0].peak_resident, 1);
            // 5 output tokens = 1 prefill pass + 4 decode iterations.
            assert_eq!(r.fleet.batch_log.len(), 5);
            assert_eq!(r.itl_p50_s, r.itl_p95_s, "uniform decode-step gaps");
        }
    }

    #[test]
    fn one_slot_preemption_evicts_the_only_resident() {
        // 1 slot saturated by a long normal request; a high-priority
        // arrival with a zero deadline must evict that sole resident. Pins
        // the victim search at the resident.len() == 1 boundary.
        let mut trace = burst(1, 0.0, 64, 30);
        trace.push(DecodeRequest {
            arrival_s: 1e-6,
            prefill_len: 32,
            output_len: 2,
            priority: Priority::High,
        });
        let fleet = homogeneous_fleet(&tiny_design(64), 1);
        let r = simulate_decode(
            &fleet,
            &trace,
            SchedulingPolicy::LengthAware,
            DispatchPolicy::JoinShortestQueue,
            DecodeScheduler::ContinuousPreempt,
            &DecodeConfig {
                max_slots: 1,
                ttft_deadline_s: 0.0,
            },
        );
        assert!(r.preemptions >= 1, "no eviction at the 1-slot edge");
        assert_eq!(r.requests[0].preemptions as usize, r.preemptions);
        assert_eq!(r.requests[1].preemptions, 0, "high-priority never evicted");
        // The victim still completes with every token, after the high one.
        assert_eq!(r.fleet.completed, 2);
        assert_eq!(r.requests[0].tokens, 30);
        assert!(r.requests[1].completion_s < r.requests[0].completion_s);
        assert!(r.slot_utilization > 0.0 && r.slot_utilization <= 1.0 + 1e-12);
    }

    #[test]
    fn nonstationary_decode_trace_matches_nonstationary_poisson_trace() {
        // Unit-scale pin of the shared nonstationary arrival process (the
        // property version lives in tests/decode_props.rs).
        let spec = DatasetSpec::rte();
        let profile = RateProfile::Diurnal {
            mean_rate: 90.0,
            swing: 4.0,
            period_s: 6.0,
        };
        let enc = crate::fleet::nonstationary_poisson_trace(&spec, &profile, 48, 23);
        let dec = nonstationary_decode_trace(&spec, &spec.decode_output(), 0.2, &profile, 48, 23);
        for (a, b) in enc.iter().zip(&dec) {
            assert_eq!(a.arrival_s, b.arrival_s, "arrival process drifted");
            assert_eq!(a.len, b.prefill_len, "prefill stream drifted");
        }
        assert!(dec.iter().all(|r| r.output_len >= 1));
    }

    #[test]
    #[should_panic(expected = "max_slots")]
    fn zero_slots_rejected() {
        let fleet = homogeneous_fleet(&tiny_design(64), 1);
        let _ = simulate_decode(
            &fleet,
            &burst(1, 0.0, 64, 2),
            SchedulingPolicy::LengthAware,
            DispatchPolicy::RoundRobin,
            DecodeScheduler::Continuous,
            &DecodeConfig {
                max_slots: 0,
                ttft_deadline_s: 0.1,
            },
        );
    }

    #[test]
    #[should_panic(expected = "output_len")]
    fn zero_output_rejected() {
        let fleet = homogeneous_fleet(&tiny_design(64), 1);
        let _ = simulate_decode(
            &fleet,
            &burst(1, 0.0, 64, 0),
            SchedulingPolicy::LengthAware,
            DispatchPolicy::RoundRobin,
            DecodeScheduler::Continuous,
            &DecodeConfig::default(),
        );
    }

    /// Mirror of the fleet engine's zero-completion guard: every
    /// empty-population metric of the decode report degrades to a defined
    /// value, never NaN. Single-token outputs leave the inter-token-gap
    /// population empty, and an all-Normal trace leaves the high-priority
    /// TTFT population empty.
    #[test]
    fn empty_metric_populations_stay_defined_not_nan() {
        let r = run(&burst(3, 0.0, 64, 1), DecodeScheduler::Continuous, 4, 1);
        assert_eq!(r.fleet.completed, 3);
        // No request decodes past its first token → no inter-token gaps.
        assert_eq!(r.itl_p50_s, 0.0, "empty-ITL NaN regression");
        assert_eq!(r.itl_p95_s, 0.0);
        assert_eq!(r.itl_p99_s, 0.0);
        // No high-priority requests → no high-priority tail to report.
        assert_eq!(r.high_ttft_p95_s, None);
        assert!(!r.ttft_mean_s.is_nan() && !r.fleet.mean_batch_size.is_nan());
        assert!(!r.goodput_tok_s.is_nan() && !r.slot_utilization.is_nan());
        assert!(r.shards.iter().all(|s| !s.slot_utilization.is_nan()));
    }
}
