//! Cycle models of the individual hardware units of Fig. 2(a).
//!
//! Each function returns the number of clock cycles the unit occupies for
//! one invocation. The models are II=1 pipelines with a fixed fill latency:
//! `cycles = fill + ceil(work / lanes)`.

/// Pipeline fill/drain latency charged per kernel launch.
pub const KERNEL_FILL: u64 = 16;

/// Tiled matrix-multiply unit: `m×k · k×n` at 8-bit with `lanes` parallel
/// MACs per cycle.
///
/// # Example
///
/// ```
/// use lat_hwsim::kernels::matmul_cycles;
///
/// // 64×64·64×64 on 256 lanes: 64³/256 = 1024 beats + fill.
/// assert_eq!(matmul_cycles(64, 64, 64, 256), 1024 + lat_hwsim::kernels::KERNEL_FILL);
/// ```
pub fn matmul_cycles(m: usize, k: usize, n: usize, lanes: u32) -> u64 {
    let macs = (m as u64) * (k as u64) * (n as u64);
    KERNEL_FILL + macs.div_ceil(lanes.max(1) as u64)
}

/// Bits-selector unit: quantizes an `m×n` tile to `bits` (1 or 4).
/// One element per lane per cycle (comparison + shift, no DSP).
pub fn bit_select_cycles(m: usize, n: usize, lanes: u32) -> u64 {
    let elems = (m as u64) * (n as u64);
    KERNEL_FILL + elems.div_ceil(lanes.max(1) as u64)
}

/// LUT distance unit: computes the `nq×nk` quantized score matrix over
/// `d`-wide rows. The LUT fabric evaluates `lanes` low-bit products per
/// cycle, each `bits` wide (narrower products pack more per LUT).
pub fn lut_distance_cycles(nq: usize, nk: usize, d: usize, bits: u32, lanes: u32) -> u64 {
    let prods = (nq as u64) * (nk as u64) * (d as u64);
    // 1-bit products are XNOR+popcount: 8× denser than 8-bit equivalents.
    let density = (8 / bits.clamp(1, 8)) as u64;
    KERNEL_FILL + prods.div_ceil(lanes.max(1) as u64 * density)
}

/// Merge-sort top-k unit (II=1 streaming sorter, reference \[29\] of the paper): sorts
/// `n` candidates in `ceil(log2 n)` streaming passes of `n` elements each,
/// then drains the first `k`.
pub fn merge_sort_topk_cycles(n: usize, k: usize) -> u64 {
    if n <= 1 {
        return KERNEL_FILL;
    }
    let passes = (usize::BITS - (n - 1).leading_zeros()) as u64;
    KERNEL_FILL + passes * n as u64 + k.min(n) as u64
}

/// Fused Stage-2.2 attention kernel for one query row (see
/// `lat_core::fused`): `d · ceil(k/p)` beats, epilogue free.
pub fn fused_attention_row_cycles(d: usize, k: usize, unroll: u32) -> u64 {
    KERNEL_FILL + (d as u64) * (k as u64).div_ceil(unroll.max(1) as u64)
}

/// Stage-2.3 kernel: `Z_i = S_i·V_s / ΣS_i` for one row — `k·d` MACs on
/// `lanes` lanes plus one division pass.
pub fn attention_apply_row_cycles(k: usize, d: usize, lanes: u32) -> u64 {
    let macs = (k as u64) * (d as u64);
    KERNEL_FILL + macs.div_ceil(lanes.max(1) as u64) + d as u64
}

/// Softmax normalization over `n` elements on the exp/divide unit.
pub fn softmax_cycles(n: usize, lanes: u32) -> u64 {
    // exp pass + sum reduction + divide pass.
    let per_pass = (n as u64).div_ceil(lanes.max(1) as u64);
    KERNEL_FILL + 3 * per_pass
}

/// LayerNorm over an `n×d` tile: two reduction passes + one normalize pass.
pub fn layer_norm_cycles(n: usize, d: usize, lanes: u32) -> u64 {
    let elems = (n as u64) * (d as u64);
    KERNEL_FILL + 3 * elems.div_ceil(lanes.max(1) as u64)
}

/// HBM transfer of `bytes` at `bytes_per_cycle` (from
/// [`crate::spec::FpgaSpec::hbm_bytes_per_cycle`]).
pub fn hbm_transfer_cycles(bytes: u64, bytes_per_cycle: f64) -> u64 {
    if bytes == 0 {
        return 0;
    }
    (bytes as f64 / bytes_per_cycle.max(1.0)).ceil() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_scales_inverse_with_lanes() {
        let c1 = matmul_cycles(32, 32, 32, 64) - KERNEL_FILL;
        let c4 = matmul_cycles(32, 32, 32, 256) - KERNEL_FILL;
        assert_eq!(c1, 4 * c4);
    }

    #[test]
    fn matmul_zero_lane_guard() {
        // lanes=0 clamps to 1 rather than dividing by zero.
        assert!(matmul_cycles(4, 4, 4, 0) > KERNEL_FILL);
    }

    #[test]
    fn one_bit_lut_distance_8x_denser_than_8bit() {
        let c1 = lut_distance_cycles(64, 64, 64, 1, 128) - KERNEL_FILL;
        let c8 = lut_distance_cycles(64, 64, 64, 8, 128) - KERNEL_FILL;
        assert_eq!(c8, 8 * c1);
    }

    #[test]
    fn merge_sort_pass_structure() {
        // n=8: 3 passes of 8 + drain k.
        assert_eq!(merge_sort_topk_cycles(8, 2), KERNEL_FILL + 24 + 2);
        assert_eq!(merge_sort_topk_cycles(1, 5), KERNEL_FILL);
        // k larger than n drains only n.
        assert_eq!(merge_sort_topk_cycles(4, 100), KERNEL_FILL + 8 + 4);
    }

    #[test]
    fn fused_row_matches_core_model_shape() {
        // Same structural formula as lat_core::fused (different fill const
        // is fine; the *scaling* must agree).
        let a = fused_attention_row_cycles(64, 30, 1) - KERNEL_FILL;
        let b = fused_attention_row_cycles(64, 30, 2) - KERNEL_FILL;
        assert_eq!(a, 2 * b);
    }

    #[test]
    fn hbm_transfer_rounding() {
        assert_eq!(hbm_transfer_cycles(0, 2300.0), 0);
        assert_eq!(hbm_transfer_cycles(2300, 2300.0), 1);
        assert_eq!(hbm_transfer_cycles(2301, 2300.0), 2);
    }

    #[test]
    fn softmax_and_layernorm_positive() {
        assert!(softmax_cycles(128, 64) > KERNEL_FILL);
        assert!(layer_norm_cycles(128, 768, 64) > KERNEL_FILL);
    }

    #[test]
    fn apply_row_includes_divide_pass() {
        let c = attention_apply_row_cycles(30, 64, 64);
        assert_eq!(c, KERNEL_FILL + 30 * 64 / 64 + 64);
    }
}
