//! Run reports produced by the accelerator simulator.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Result of simulating one batch through the accelerator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FpgaRunReport {
    /// Scheduling policy used (display string).
    pub policy: String,
    /// Total makespan in clock cycles.
    pub makespan_cycles: u64,
    /// Makespan in seconds at the design clock.
    pub seconds: f64,
    /// Number of sequences processed.
    pub sequences: usize,
    /// Total real (unpadded) tokens processed.
    pub tokens: u64,
    /// Ops actually executed on the datapath (sparse, unpadded).
    pub actual_ops: u64,
    /// Dense-equivalent ops of the same workload padded to the batch
    /// maximum — the accounting CPUs/GPUs are billed at, used for the
    /// paper's "equivalent throughput" comparisons.
    pub padded_dense_ops: u64,
    /// Per-stage utilization over the makespan, in `[0, 1]`.
    pub stage_utilization: Vec<f64>,
    /// Energy consumed in joules.
    pub energy_j: f64,
}

impl FpgaRunReport {
    /// Sequences per second.
    pub fn seqs_per_s(&self) -> f64 {
        self.sequences as f64 / self.seconds.max(1e-12)
    }

    /// Real tokens per second.
    pub fn tokens_per_s(&self) -> f64 {
        self.tokens as f64 / self.seconds.max(1e-12)
    }

    /// Actual datapath throughput in GOPS.
    pub fn actual_gops(&self) -> f64 {
        self.actual_ops as f64 / self.seconds.max(1e-12) / 1e9
    }

    /// Padded-dense-equivalent throughput in GOPS (the paper's headline
    /// "3.6 TOPS equivalent" metric — what a padded dense platform would
    /// have to sustain to match this latency).
    pub fn equivalent_gops(&self) -> f64 {
        self.padded_dense_ops as f64 / self.seconds.max(1e-12) / 1e9
    }

    /// Energy efficiency in equivalent GOP/J.
    pub fn equivalent_gop_per_j(&self) -> f64 {
        self.padded_dense_ops as f64 / 1e9 / self.energy_j.max(1e-12)
    }

    /// Mean stage utilization.
    pub fn mean_utilization(&self) -> f64 {
        if self.stage_utilization.is_empty() {
            return 0.0;
        }
        self.stage_utilization.iter().sum::<f64>() / self.stage_utilization.len() as f64
    }
}

impl fmt::Display for FpgaRunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "[{}] {} seqs, {} tokens in {:.3} ms",
            self.policy,
            self.sequences,
            self.tokens,
            self.seconds * 1e3
        )?;
        writeln!(
            f,
            "  throughput: {:.1} seq/s, {:.0} tok/s, {:.0} GOPS actual, {:.0} GOPS equivalent",
            self.seqs_per_s(),
            self.tokens_per_s(),
            self.actual_gops(),
            self.equivalent_gops()
        )?;
        write!(
            f,
            "  energy: {:.3} J ({:.1} GOP/J equiv), mean stage utilization {:.1}%",
            self.energy_j,
            self.equivalent_gop_per_j(),
            self.mean_utilization() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FpgaRunReport {
        FpgaRunReport {
            policy: "length-aware".into(),
            makespan_cycles: 200_000_000,
            seconds: 1.0,
            sequences: 100,
            tokens: 17_700,
            actual_ops: 2_000_000_000_000,
            padded_dense_ops: 3_600_000_000_000,
            stage_utilization: vec![0.9, 1.0, 0.8],
            energy_j: 35.0,
        }
    }

    #[test]
    fn derived_metrics() {
        let r = sample();
        assert!((r.seqs_per_s() - 100.0).abs() < 1e-9);
        assert!((r.actual_gops() - 2000.0).abs() < 1e-6);
        assert!((r.equivalent_gops() - 3600.0).abs() < 1e-6);
        assert!((r.equivalent_gop_per_j() - 3600.0 / 35.0).abs() < 1e-6);
        assert!((r.mean_utilization() - 0.9).abs() < 1e-9);
    }

    #[test]
    fn display_is_informative() {
        let s = sample().to_string();
        assert!(s.contains("length-aware"));
        assert!(s.contains("GOP/J"));
    }

    #[test]
    fn zero_seconds_guarded() {
        let mut r = sample();
        r.seconds = 0.0;
        assert!(r.seqs_per_s().is_finite());
        assert!(r.actual_gops().is_finite());
    }
}
