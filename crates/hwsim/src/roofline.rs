//! Roofline / computation-to-communication (CTC) analysis.
//!
//! The paper's §4 argues the FPGA's large on-chip memory lets the design
//! reach a better CTC ratio and "push the hardware design to the
//! computation roof". This module quantifies that: per-operator arithmetic
//! intensity, the chip's roofline (peak ops vs HBM bandwidth), and whether
//! each stage of a design is compute- or memory-bound.

use crate::accelerator::AcceleratorDesign;
use crate::spec::FpgaSpec;
use lat_model::graph::{AttentionMode, OpKind, OperatorGraph};
use serde::{Deserialize, Serialize};

/// Which roof bounds an operator or stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Bound {
    /// Limited by the arithmetic peak (good: the design goal).
    Compute,
    /// Limited by HBM bandwidth.
    Memory,
}

impl std::fmt::Display for Bound {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Bound::Compute => write!(f, "compute-bound"),
            Bound::Memory => write!(f, "memory-bound"),
        }
    }
}

/// Roofline analysis of one operator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OpRoofline {
    /// The operator.
    pub kind: OpKind,
    /// Ops per byte of worst-case (no-reuse) off-chip traffic.
    pub intensity: f64,
    /// Which roof binds at that intensity.
    pub bound: Bound,
    /// Attainable ops/s under the roofline.
    pub attainable_ops_per_s: f64,
}

/// The machine balance point of a chip: ops per byte at which compute and
/// memory roofs intersect.
pub fn machine_balance(spec: &FpgaSpec) -> f64 {
    spec.peak_ops_per_s() / spec.hbm_bytes_per_s
}

/// Roofline classification of every encoder operator at sequence length
/// `s` under `mode`, assuming *no* on-chip reuse (worst case — on-chip
/// buffering only improves intensity).
pub fn operator_rooflines(
    graph: &OperatorGraph,
    spec: &FpgaSpec,
    s: usize,
    mode: AttentionMode,
) -> Vec<OpRoofline> {
    let balance = machine_balance(spec);
    OpKind::all()
        .into_iter()
        .map(|kind| {
            let ops = graph.flops(kind, s, mode) as f64;
            let bytes = graph.memory_bytes(kind, s, mode, 1).max(1) as f64;
            let intensity = ops / bytes;
            let bound = if intensity >= balance {
                Bound::Compute
            } else {
                Bound::Memory
            };
            let attainable = spec.peak_ops_per_s().min(intensity * spec.hbm_bytes_per_s);
            OpRoofline {
                kind,
                intensity,
                bound,
                attainable_ops_per_s: attainable,
            }
        })
        .collect()
}

/// Per-stage CTC report for a placed design at length `s` with `batch`
/// sequences amortizing the weight traffic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageCtc {
    /// Stage index.
    pub stage: usize,
    /// Compute cycles per sequence.
    pub compute_cycles: u64,
    /// HBM cycles per sequence.
    pub memory_cycles: u64,
    /// Compute-to-communication cycle ratio (`> 1` ⇒ compute-bound under
    /// overlap).
    pub ctc: f64,
    /// The binding roof.
    pub bound: Bound,
}

/// Computes the per-stage CTC profile of `design` for length `s`.
pub fn stage_ctc(design: &AcceleratorDesign, s: usize, batch: usize) -> Vec<StageCtc> {
    (0..design.allocation().num_stages())
        .map(|stage| {
            let compute = design.stage_compute_cycles(stage, s);
            let memory = design.stage_memory_cycles(stage, s, batch);
            let ctc = compute as f64 / memory.max(1) as f64;
            StageCtc {
                stage,
                compute_cycles: compute,
                memory_cycles: memory,
                ctc,
                bound: if compute >= memory {
                    Bound::Compute
                } else {
                    Bound::Memory
                },
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lat_model::config::ModelConfig;

    #[test]
    fn u280_balance_point() {
        // 1.2e12 ops/s over 460e9 B/s ≈ 2.6 ops/byte.
        let b = machine_balance(&FpgaSpec::alveo_u280());
        assert!((b - 1.2e12 / 460e9).abs() < 1e-9);
    }

    #[test]
    fn gemm_operators_are_compute_bound() {
        let graph = OperatorGraph::encoder(&ModelConfig::bert_base());
        let roofs = operator_rooflines(&graph, &FpgaSpec::alveo_u280(), 177, AttentionMode::Dense);
        for r in &roofs {
            match r.kind {
                OpKind::QkvLinear | OpKind::Ffn1 | OpKind::Ffn2 => {
                    assert_eq!(
                        r.bound,
                        Bound::Compute,
                        "{} should be compute-bound",
                        r.kind
                    )
                }
                OpKind::Scale | OpKind::Mask => {
                    assert_eq!(r.bound, Bound::Memory, "{} should be memory-bound", r.kind)
                }
                _ => {}
            }
        }
    }

    #[test]
    fn attainable_never_exceeds_peak() {
        let graph = OperatorGraph::encoder(&ModelConfig::bert_base());
        let spec = FpgaSpec::alveo_u280();
        for mode in [AttentionMode::Dense, AttentionMode::paper_sparse()] {
            for r in operator_rooflines(&graph, &spec, 256, mode) {
                assert!(r.attainable_ops_per_s <= spec.peak_ops_per_s() + 1.0);
                assert!(r.attainable_ops_per_s > 0.0);
            }
        }
    }

    #[test]
    fn placed_design_is_compute_bound_with_batching() {
        // The paper's CTC claim: with weights amortized over a batch of 16,
        // every coarse stage is compute-bound.
        let design = AcceleratorDesign::new(
            &ModelConfig::bert_base(),
            AttentionMode::paper_sparse(),
            FpgaSpec::alveo_u280(),
            177,
        );
        for c in stage_ctc(&design, 177, 16) {
            assert_eq!(c.bound, Bound::Compute, "stage {} memory-bound", c.stage);
            assert!(c.ctc > 1.0);
        }
    }

    #[test]
    fn tiny_batch_worsens_ctc() {
        let design = AcceleratorDesign::new(
            &ModelConfig::bert_base(),
            AttentionMode::paper_sparse(),
            FpgaSpec::alveo_u280(),
            177,
        );
        let big = stage_ctc(&design, 177, 16);
        let small = stage_ctc(&design, 177, 1);
        for (b, s) in big.iter().zip(&small) {
            assert!(
                s.ctc <= b.ctc,
                "stage {}: batching should raise CTC",
                b.stage
            );
        }
    }

    #[test]
    fn bound_display() {
        assert_eq!(Bound::Compute.to_string(), "compute-bound");
        assert_eq!(Bound::Memory.to_string(), "memory-bound");
    }
}
