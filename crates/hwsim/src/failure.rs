//! Failure-and-burst scenario layer over the fleet and decode engines.
//!
//! The serving engines ([`crate::fleet`], [`crate::decode`]) and the
//! autoscaler ([`crate::autoscale`]) model a *healthy* deployment: every
//! shard that is launched stays up, and every request eventually
//! completes. Real fleets lose shards mid-peak, develop stragglers, and
//! face clients that give up. This module injects exactly those events —
//! deterministically, from a seed-free declarative [`FaultPlan`] — through
//! the controller hooks the engines already expose
//! (`FleetController::on_shard_down` and friends), so a dead shard's
//! queued work and live KV residents re-route through the same
//! drain/migrate machinery scale-down uses, and a straggler's in-flight
//! batches are re-priced on the fly.
//!
//! Three layers compose here:
//!
//! - **Faults** ([`FaultPlan`]): shard crashes (with optional recovery)
//!   and straggler windows (service ×`slowdown` between two instants).
//!   Applied via control events, so a healthy run with an empty plan is
//!   *bit-identical* to the plain engine (multiplying by a slowdown of
//!   exactly 1.0 is an IEEE identity, and no extra events fire).
//! - **Clients** ([`ClientConfig`]): per-request timeout, bounded retry
//!   with exponential backoff, and an end-to-end deadline. A retried
//!   request re-enters the arrival stream as a new event; every request
//!   ends in a [`Disposition`] — completed, completed-after-retries, or
//!   timed out — so nothing is ever silently dropped.
//! - **Bursts**: flash crowds are a *trace* property, not a fault —
//!   [`crate::fleet::RateProfile::Burst`] generates them; this module
//!   reports how the fleet rode them out.
//!
//! Reporting slices the run into pre-incident / during-incident /
//! post-incident [`IncidentPhase`]s along the plan's
//! [`FaultPlan::incident_window`], each with SLO attainment, goodput, and
//! (for the autoscaled entry point) the scale-event count — the
//! time-to-recovery view the `ablate_failures` bin asserts on.
//!
//! Entry points: [`simulate_fleet_failure`] (fixed fleet),
//! [`simulate_autoscale_failure`] (autoscaled fleet — crashed capacity
//! stops billing immediately and recovered shards rejoin through the
//! normal launch/warm-up path), [`simulate_decode_failure`]
//! (generative decode, with [`DecodeScaleDown`] choosing what happens to
//! a straggler's KV residents), and [`simulate_disagg_failure`]
//! (disaggregated prefill/decode serving — faults may hit either pool;
//! a crashed decode shard's residents re-prefill on the prefill pool and
//! hand off again).
//!
//! # Example
//!
//! The containment pin, runnable: an empty [`FaultPlan`] with the
//! infinitely patient client adds no events and re-prices nothing, so
//! the engine-level report is bit-identical to the plain fleet and every
//! disposition is a zero-retry completion.
//!
//! ```
//! use lat_core::pipeline::SchedulingPolicy;
//! use lat_hwsim::accelerator::AcceleratorDesign;
//! use lat_hwsim::failure::{simulate_fleet_failure, ClientConfig, FaultPlan};
//! use lat_hwsim::fleet::{
//!     homogeneous_fleet, poisson_trace, simulate_fleet, BatcherConfig, DispatchPolicy,
//! };
//! use lat_hwsim::spec::FpgaSpec;
//! use lat_model::config::ModelConfig;
//! use lat_model::graph::AttentionMode;
//! use lat_workloads::datasets::DatasetSpec;
//!
//! let design = AcceleratorDesign::new(
//!     &ModelConfig::tiny(),
//!     AttentionMode::paper_sparse(),
//!     FpgaSpec::alveo_u280(),
//!     64,
//! );
//! let fleet = homogeneous_fleet(&design, 2);
//! let trace = poisson_trace(&DatasetSpec::rte(), 600.0, 10, 5);
//! let plain = simulate_fleet(
//!     &fleet,
//!     &trace,
//!     SchedulingPolicy::LengthAware,
//!     DispatchPolicy::JoinShortestQueue,
//!     &BatcherConfig::default(),
//! );
//! let healthy = simulate_fleet_failure(
//!     &fleet,
//!     &trace,
//!     SchedulingPolicy::LengthAware,
//!     DispatchPolicy::JoinShortestQueue,
//!     &BatcherConfig::default(),
//!     &FaultPlan::none(),
//!     &ClientConfig::patient(),
//!     0.25, // SLO used only for attainment reporting
//! );
//! assert_eq!(healthy.fleet, plain);
//! assert_eq!(healthy.completed, trace.len());
//! assert_eq!(healthy.timed_out + healthy.retried + healthy.retries, 0);
//! ```

use crate::accelerator::AcceleratorDesign;
use crate::autoscale::{AutoscaleConfig, Autoscaler, DecodeScaleDown, ScaleEvent};
use crate::decode::{
    DecodeConfig, DecodeController, DecodeCore, DecodeReport, DecodeRequest, DecodeScheduler,
    NullDecodeController,
};
use crate::disagg::{combined_fleet, DisaggConfig, DisaggController, DisaggReport};
use crate::fleet::{
    BatcherConfig, DispatchPolicy, FleetController, FleetCore, FleetReport, NullController, Request,
};
use lat_core::pipeline::SchedulingPolicy;
use lat_core::sketch::{P2Quantile, ReportMode};
use lat_tensor::stats::percentile;
use serde::{Deserialize, Serialize};
use std::fmt;

// ───────────────────────────── fault plans ─────────────────────────────

/// What goes wrong with one shard.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// The shard dies at `at_s`: its queued work and in-flight batch are
    /// orphaned and re-routed to survivors; with `recover_s` it comes
    /// back (a plain fleet re-admits it immediately, an autoscaled one
    /// relaunches it through warm-up), without it stays down forever.
    Crash {
        /// Crash instant in seconds.
        at_s: f64,
        /// Recovery instant, strictly after `at_s`; `None` = never.
        recover_s: Option<f64>,
    },
    /// The shard serves ×`slowdown` slower over `[from_s, until_s)`; an
    /// in-flight batch at either boundary is re-priced on the fly.
    Straggler {
        /// Slow-down onset in seconds.
        from_s: f64,
        /// Recovery instant, strictly after `from_s`.
        until_s: f64,
        /// Service-time multiplier while slow (e.g. `8.0`).
        slowdown: f64,
    },
}

/// One fault on one shard.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fault {
    /// Shard the fault hits.
    pub shard: usize,
    /// What happens to it.
    pub kind: FaultKind,
}

impl Fault {
    /// The `[start, end)` interval the shard is unhealthy (end is
    /// `f64::INFINITY` for an unrecovered crash).
    fn interval(&self) -> (f64, f64) {
        match self.kind {
            FaultKind::Crash { at_s, recover_s } => (at_s, recover_s.unwrap_or(f64::INFINITY)),
            FaultKind::Straggler {
                from_s, until_s, ..
            } => (from_s, until_s),
        }
    }
}

/// A deterministic failure scenario: every fault with its exact timing.
/// No randomness lives here — plans are data, so a scenario replays
/// bit-for-bit and property suites can perturb it systematically.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct FaultPlan {
    /// The faults, in any order (applied in time order).
    pub faults: Vec<Fault>,
}

impl FaultPlan {
    /// A plan with no faults: the healthy baseline (runs bit-identical to
    /// the plain engine).
    pub fn none() -> Self {
        Self::default()
    }

    /// Panics unless the plan is well-formed for a fleet of `max_shards`:
    /// shards in range, times finite and ordered, and per-shard fault
    /// intervals disjoint (a shard cannot crash while already down or
    /// straggle twice at once).
    pub fn validate(&self, max_shards: usize) {
        let mut per_shard: Vec<Vec<(f64, f64)>> = vec![Vec::new(); max_shards];
        for f in &self.faults {
            assert!(f.shard < max_shards, "fault shard out of range");
            match f.kind {
                FaultKind::Crash { at_s, recover_s } => {
                    assert!(
                        at_s.is_finite() && at_s >= 0.0,
                        "crash time must be finite and non-negative"
                    );
                    if let Some(rec) = recover_s {
                        assert!(
                            rec.is_finite() && rec > at_s,
                            "recovery must be finite and after the crash"
                        );
                    }
                }
                FaultKind::Straggler {
                    from_s,
                    until_s,
                    slowdown,
                } => {
                    assert!(
                        from_s.is_finite() && from_s >= 0.0,
                        "straggler start must be finite and non-negative"
                    );
                    assert!(
                        until_s.is_finite() && until_s > from_s,
                        "straggler window must be finite and non-empty"
                    );
                    assert!(
                        slowdown.is_finite() && slowdown > 0.0,
                        "slowdown factor must be positive and finite"
                    );
                }
            }
            per_shard[f.shard].push(f.interval());
        }
        for intervals in &mut per_shard {
            intervals.sort_by(|a, b| a.0.total_cmp(&b.0));
            for w in intervals.windows(2) {
                assert!(w[0].1 <= w[1].0, "overlapping fault intervals on one shard");
            }
        }
    }

    /// The `[start, end)` hull of every fault — the incident window the
    /// per-phase report slices on. `None` for an empty plan; the end is
    /// `f64::INFINITY` if any crash never recovers.
    pub fn incident_window(&self) -> Option<(f64, f64)> {
        let mut window: Option<(f64, f64)> = None;
        for f in &self.faults {
            let (lo, hi) = f.interval();
            window = Some(match window {
                None => (lo, hi),
                Some((a, b)) => (a.min(lo), b.max(hi)),
            });
        }
        window
    }

    /// The plan flattened into time-ordered injector actions (stable on
    /// ties, so two same-instant faults apply in declaration order).
    fn actions(&self) -> Vec<(f64, Action)> {
        let mut actions = Vec::new();
        for f in &self.faults {
            match f.kind {
                FaultKind::Crash { at_s, recover_s } => {
                    actions.push((at_s, Action::Down(f.shard)));
                    if let Some(rec) = recover_s {
                        actions.push((rec, Action::Up(f.shard)));
                    }
                }
                FaultKind::Straggler {
                    from_s,
                    until_s,
                    slowdown,
                } => {
                    actions.push((
                        from_s,
                        Action::Slow {
                            shard: f.shard,
                            factor: slowdown,
                        },
                    ));
                    actions.push((until_s, Action::Unslow(f.shard)));
                }
            }
        }
        actions.sort_by(|a, b| a.0.total_cmp(&b.0));
        actions
    }
}

/// A fault's primitive effect, applied at one instant.
#[derive(Debug, Clone, Copy)]
enum Action {
    Down(usize),
    Up(usize),
    Slow { shard: usize, factor: f64 },
    Unslow(usize),
}

// ─────────────────────────────── clients ───────────────────────────────

/// Client-side request semantics: how long a request waits before giving
/// up on an attempt, how often it retries, and the end-to-end budget.
///
/// The timeout clock is checked once per attempt: a request still
/// *waiting* (queued or outage-parked) at `arrival + timeout_s` is
/// cancelled and either retried or abandoned; a request already executing
/// is left to complete — in this model the client keeps the connection
/// once service starts. A retry re-enters the arrival stream
/// `backoff_s × 2^(attempt-1)` after the timeout fired, as a brand-new
/// arrival event (so forecasters see retry load — a retry *is* offered
/// load).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClientConfig {
    /// Per-attempt patience in seconds (`f64::INFINITY` = never time
    /// out).
    pub timeout_s: f64,
    /// Retries after the first attempt (0 = fail fast).
    pub max_retries: u32,
    /// Base backoff before the first retry; doubles per attempt.
    pub backoff_s: f64,
    /// End-to-end budget from the original arrival: a retry that would
    /// start after `arrival + deadline_s` is abandoned instead
    /// (`f64::INFINITY` = unbounded).
    pub deadline_s: f64,
}

impl ClientConfig {
    /// The infinitely patient client: no timeouts, no retries — every
    /// request waits forever. The failure layer with this client and an
    /// empty [`FaultPlan`] reproduces the plain engine bit-for-bit.
    pub fn patient() -> Self {
        Self {
            timeout_s: f64::INFINITY,
            max_retries: 0,
            backoff_s: 0.0,
            deadline_s: f64::INFINITY,
        }
    }

    /// Panics unless the configuration is well-formed.
    pub fn validate(&self) {
        assert!(self.timeout_s > 0.0, "timeout must be positive");
        assert!(
            self.backoff_s.is_finite() && self.backoff_s >= 0.0,
            "backoff must be finite and non-negative"
        );
        assert!(self.deadline_s > 0.0, "deadline must be positive");
    }

    /// The client's verdict when attempt number `attempts` (0-based)
    /// times out at `now` for a request that originally arrived at
    /// `arrival_s`: retry after exponential backoff if both the retry cap
    /// and the end-to-end deadline permit, else abandon.
    ///
    /// This is the *single* source of retry/timeout scheduling — the
    /// fleet and decode fault injectors both route through it, so the two
    /// client layers cannot drift apart (they once carried verbatim
    /// copies of this arithmetic).
    pub fn on_timeout(&self, now: f64, arrival_s: f64, attempts: u32) -> RetryDecision {
        let retry_at = now + self.backoff_s * 2f64.powi(attempts as i32);
        let within_deadline = retry_at <= arrival_s + self.deadline_s;
        if attempts < self.max_retries && within_deadline {
            RetryDecision::Retry {
                retry_at,
                timeout_at: if self.timeout_s.is_finite() {
                    retry_at + self.timeout_s
                } else {
                    f64::INFINITY
                },
            }
        } else {
            RetryDecision::Abandon
        }
    }

    /// Hard cap on attempts implied by the budget: `max_retries`, further
    /// clamped by how many timeout periods fit in the deadline. Property
    /// suites assert observed attempt counts against this.
    pub fn attempt_bound(&self) -> u32 {
        if self.timeout_s.is_infinite() {
            return self.max_retries;
        }
        if self.deadline_s.is_infinite() {
            return self.max_retries;
        }
        // Each retry only launches if it starts inside the deadline, and
        // every attempt consumes at least one timeout period first.
        let by_deadline = (self.deadline_s / self.timeout_s).ceil() as u32;
        self.max_retries.min(by_deadline)
    }
}

/// What a [`ClientConfig`] does about one timed-out attempt
/// ([`ClientConfig::on_timeout`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RetryDecision {
    /// Re-issue the request at `retry_at`; the next per-attempt timeout
    /// fires at `timeout_at` (`f64::INFINITY` for a client that never
    /// times out).
    Retry {
        /// Backoff-delayed re-arrival instant.
        retry_at: f64,
        /// When the re-issued attempt times out.
        timeout_at: f64,
    },
    /// Retry cap or deadline exhausted: give up on the request.
    Abandon,
}

/// How one request's story ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Disposition {
    /// Completed on the first attempt.
    Completed,
    /// Completed after this many retries.
    Retried(u32),
    /// Never completed: timed out with an exhausted retry budget, or
    /// stranded by an unrecovered outage.
    TimedOut,
}

impl fmt::Display for Disposition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Disposition::Completed => write!(f, "completed"),
            Disposition::Retried(n) => write!(f, "retried×{n}"),
            Disposition::TimedOut => write!(f, "timed-out"),
        }
    }
}

/// Client-side outcome of one request (parallel to the trace).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClientOutcome {
    /// How the request ended.
    pub disposition: Disposition,
    /// Retries performed (0 = served, or gave up, on the first attempt).
    pub attempts: u32,
    /// Absolute completion time; `f64::INFINITY` if it never completed
    /// (kept non-NaN so outcome vectors stay `PartialEq`-comparable).
    pub completion_s: f64,
    /// Completion − *original* arrival (retries included);
    /// `f64::INFINITY` if it never completed.
    pub latency_s: f64,
}

// ─────────────────────────────── reports ───────────────────────────────

/// One slice of the run relative to the incident window: pre-incident,
/// during, post-incident. Requests are bucketed by *original* arrival
/// time; goodput by completion time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IncidentPhase {
    /// Phase start (inclusive).
    pub start_s: f64,
    /// Phase end (exclusive); `f64::INFINITY` for the last phase.
    pub end_s: f64,
    /// Requests that arrived in the phase.
    pub arrivals: usize,
    /// Of those, how many eventually completed (whenever that happened).
    pub completed: usize,
    /// Of those, how many never completed.
    pub timed_out: usize,
    /// Fraction of the phase's arrivals that completed inside the SLO
    /// (timed-out requests count as misses); 1.0 for an empty phase.
    pub slo_attainment: f64,
    /// Completions landing *inside* the phase per second of phase (the
    /// delivery rate through the window, whoever's requests they were).
    pub goodput_seq_s: f64,
    /// 95th-percentile latency of the phase's completed arrivals (0 when
    /// none completed).
    pub p95_latency_s: f64,
    /// Autoscaler actions inside the phase (0 for fixed fleets).
    pub scale_events: usize,
}

/// Result of [`simulate_fleet_failure`]: the engine-level report plus the
/// client's view of every request.
///
/// Accounting invariant: `completed + timed_out == trace.len()` — a
/// request is never lost, only completed or explicitly given up on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FailureReport {
    /// Engine-level report (latency percentiles over the completed
    /// population, per-shard stats, batch log).
    pub fleet: FleetReport,
    /// Per-request client outcomes in trace order.
    pub outcomes: Vec<ClientOutcome>,
    /// Requests that completed (on any attempt).
    pub completed: usize,
    /// Requests that never completed.
    pub timed_out: usize,
    /// Completed requests that needed at least one retry.
    pub retried: usize,
    /// Total retry events across all requests (including those that
    /// still timed out).
    pub retries: usize,
    /// Fraction of *all* requests completed inside the SLO (timed-out
    /// requests are misses).
    pub slo_attainment: f64,
    /// Completed requests per second of makespan.
    pub goodput_seq_s: f64,
    /// Pre / during / post incident slices ([`FaultPlan::incident_window`];
    /// one all-run phase for an empty plan).
    pub phases: Vec<IncidentPhase>,
}

/// Result of [`simulate_autoscale_failure`]: the failure view plus the
/// autoscaler's cost books and event log. Crashed capacity is not billed
/// (`shard_seconds` stops accruing at the crash), and recovery shows up
/// as a `Recovered` scale event followed by a normal launch + warm-up.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AutoscaleFailureReport {
    /// The failure-layer view ([`FailureReport`]).
    pub failure: FailureReport,
    /// Σ paid shard-seconds (same books as
    /// [`crate::autoscale::AutoscaleReport::shard_seconds`]).
    pub shard_seconds: f64,
    /// Time-averaged committed shard count.
    pub mean_active_shards: f64,
    /// Peak committed shard count.
    pub peak_active_shards: usize,
    /// Every scaling action in time order, `Failed`/`Recovered`
    /// included.
    pub scale_events: Vec<ScaleEvent>,
}

/// Result of [`simulate_decode_failure`]: the decode report plus client
/// outcomes. SLO attainment here is over *TTFT* (the user-facing latency
/// of generative serving), and `affected_drain_s` is the
/// time-to-recovery metric the migrate-vs-drain ablation compares.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecodeFailureReport {
    /// Engine-level decode report (TTFT/ITL percentiles over the
    /// population that got tokens, goodput, per-shard stats).
    pub decode: DecodeReport,
    /// Per-request client outcomes in trace order.
    pub outcomes: Vec<ClientOutcome>,
    /// Requests that completed (on any attempt).
    pub completed: usize,
    /// Requests that never completed.
    pub timed_out: usize,
    /// Completed requests that needed at least one retry.
    pub retried: usize,
    /// Total retry events across all requests.
    pub retries: usize,
    /// Fraction of *all* requests whose TTFT met the SLO.
    pub slo_attainment: f64,
    /// Pre / during / post incident slices; the latency metric inside is
    /// TTFT, matching `slo_attainment`.
    pub phases: Vec<IncidentPhase>,
    /// Latest completion time among requests that were KV-resident on a
    /// faulty shard at fault onset (0 if none, `f64::INFINITY` if one
    /// never finished) — how long the incident's victims lingered.
    /// Migrating them off a straggler should beat draining in place.
    pub affected_drain_s: f64,
}

// ─────────────────────────── fleet injector ────────────────────────────

/// [`FleetController`] that applies a [`FaultPlan`] and enforces
/// [`ClientConfig`] timeouts, wrapping an inner controller (the no-op one
/// for fixed fleets, the [`Autoscaler`] for autoscaled ones) whose hooks
/// it forwards.
struct FleetFaultInjector<C: FleetController> {
    inner: C,
    actions: Vec<(f64, Action)>,
    next_action: usize,
    client: ClientConfig,
    /// Pending timeout instant per request (`f64::INFINITY` = none).
    timeout_at: Vec<f64>,
    /// Retries performed per request.
    attempts: Vec<u32>,
    /// Total retry events.
    retries: usize,
}

impl<C: FleetController> FleetFaultInjector<C> {
    fn new(inner: C, plan: &FaultPlan, client: ClientConfig, n_requests: usize) -> Self {
        Self {
            inner,
            actions: plan.actions(),
            next_action: 0,
            client,
            timeout_at: vec![f64::INFINITY; n_requests],
            attempts: vec![0; n_requests],
            retries: 0,
        }
    }

    /// Schedules a control event at every fault instant and every
    /// first-attempt timeout. Call once before `core.run`.
    fn prime(&mut self, core: &mut FleetCore<'_>) {
        for &(t, _) in &self.actions {
            core.schedule_control(t);
        }
        if self.client.timeout_s.is_finite() {
            for r in 0..core.trace.len() {
                self.timeout_at[r] = core.trace[r].arrival_s + self.client.timeout_s;
                core.schedule_control(self.timeout_at[r]);
            }
        }
    }

    /// Applies every action due at `now` (crash / revive / re-price).
    fn apply_due_actions(&mut self, core: &mut FleetCore<'_>, now: f64) {
        while self.next_action < self.actions.len() && self.actions[self.next_action].0 <= now {
            let action = self.actions[self.next_action].1;
            self.next_action += 1;
            match action {
                Action::Down(s) => {
                    let orphans = core.crash_shard(s, now);
                    self.inner.on_shard_down(core, s, now);
                    // Re-admit the dead shard's work among survivors; if
                    // none accepts (total outage) `admit` parks it until
                    // capacity returns. Orphans' batching windows have
                    // long expired, so survivors dispatch them at once.
                    let mut touched = Vec::new();
                    for r in orphans {
                        if let Some(s2) = core.admit(r, now) {
                            if !touched.contains(&s2) {
                                touched.push(s2);
                            }
                        }
                    }
                    for s2 in touched {
                        core.try_dispatch(s2, now);
                    }
                }
                Action::Up(s) => {
                    core.revive_shard(s);
                    self.inner.on_shard_up(core, s, now);
                }
                Action::Slow { shard, factor } => core.set_slowdown(shard, factor, now),
                Action::Unslow(s) => core.set_slowdown(s, 1.0, now),
            }
        }
    }

    /// Fires every client timeout due at `now`: a still-waiting request
    /// is cancelled, then retried (backoff-delayed, budget permitting) or
    /// abandoned. Requests already executing are left alone — their
    /// timeout simply lapses.
    fn apply_due_timeouts(&mut self, core: &mut FleetCore<'_>, now: f64) {
        for r in 0..self.timeout_at.len() {
            if self.timeout_at[r] > now {
                continue;
            }
            self.timeout_at[r] = f64::INFINITY;
            if core.completion_s[r].is_finite() {
                continue; // dispatched (or done): the client got service
            }
            if !core.cancel_waiting(r, now) {
                continue; // not waiting anywhere: nothing to give up on
            }
            match self
                .client
                .on_timeout(now, core.trace[r].arrival_s, self.attempts[r])
            {
                RetryDecision::Retry {
                    retry_at,
                    timeout_at,
                } => {
                    self.attempts[r] += 1;
                    self.retries += 1;
                    core.schedule_arrival(r, retry_at);
                    if timeout_at.is_finite() {
                        self.timeout_at[r] = timeout_at;
                        core.schedule_control(timeout_at);
                    }
                }
                RetryDecision::Abandon => core.abandoned += 1,
            }
        }
    }

    /// True when nothing can ever change again: every fault applied, no
    /// pending timeout, *every* shard dead with no recovery coming,
    /// nothing queued or in flight. Whatever is still parked is stranded
    /// — counted abandoned so an inner autoscaler's evaluation tick chain
    /// stops and the heap can drain (the
    /// unrecovered-total-outage-with-a-patient-client end state). A
    /// merely cold shard does NOT make a dead end: an autoscaler can
    /// relaunch it, so the run must keep ticking.
    fn fleet_dead_end(&self, core: &FleetCore<'_>) -> bool {
        self.next_action >= self.actions.len()
            && self.timeout_at.iter().all(|t| t.is_infinite())
            && core.dead.iter().all(|&d| d)
            && core.state.iter().all(|st| !st.busy && st.queue.is_empty())
    }
}

impl<C: FleetController> FleetController for FleetFaultInjector<C> {
    fn on_control(&mut self, core: &mut FleetCore<'_>, now: f64) {
        self.apply_due_actions(core, now);
        self.apply_due_timeouts(core, now);
        if !core.parked.is_empty() && self.fleet_dead_end(core) {
            core.abandoned = core.trace.len() - core.completed();
        }
        // The inner controller ticks after faults and timeouts settle, so
        // an autoscaler's same-instant warm-up completions see the
        // post-fault fleet …
        self.inner.on_control(core, now);
        // … and parked outage work re-enters as soon as any shard
        // accepts again (a revival above, or a warm-up that just
        // finished).
        if !core.parked.is_empty() && core.accepting.iter().any(|&a| a) {
            let parked = std::mem::take(&mut core.parked);
            let mut touched = Vec::new();
            for r in parked {
                if let Some(s) = core.admit(r, now) {
                    if !touched.contains(&s) {
                        touched.push(s);
                    }
                }
            }
            for s in touched {
                core.try_dispatch(s, now);
            }
        }
    }

    fn after_completion(&mut self, core: &mut FleetCore<'_>, shard: usize, now: f64) {
        self.inner.after_completion(core, shard, now);
    }

    fn on_shard_down(&mut self, core: &mut FleetCore<'_>, shard: usize, now: f64) {
        self.inner.on_shard_down(core, shard, now);
    }

    fn on_shard_up(&mut self, core: &mut FleetCore<'_>, shard: usize, now: f64) {
        self.inner.on_shard_up(core, shard, now);
    }
}

// ─────────────────────────── decode injector ───────────────────────────

/// `DecodeController` twin of `FleetFaultInjector`. Two decode
/// specifics: the engine cannot park work, so a plan must always leave a
/// survivor; and a straggler's KV residents follow `straggler_response` —
/// [`DecodeScaleDown::Drain`] decodes them in place at the slow rate,
/// [`DecodeScaleDown::Migrate`] evicts them at the next iteration
/// boundary to re-prefill on a healthy shard.
struct DecodeFaultInjector<C: DecodeController> {
    inner: C,
    actions: Vec<(f64, Action)>,
    next_action: usize,
    client: ClientConfig,
    timeout_at: Vec<f64>,
    attempts: Vec<u32>,
    retries: usize,
    straggler_response: DecodeScaleDown,
    /// Shards whose residents await eviction at the next step boundary.
    migrate_from: Vec<bool>,
    /// Requests KV-resident on a faulty shard at fault onset.
    affected: Vec<usize>,
}

impl<C: DecodeController> DecodeFaultInjector<C> {
    fn new(
        inner: C,
        plan: &FaultPlan,
        client: ClientConfig,
        n_requests: usize,
        n_shards: usize,
        straggler_response: DecodeScaleDown,
    ) -> Self {
        Self {
            inner,
            actions: plan.actions(),
            next_action: 0,
            client,
            timeout_at: vec![f64::INFINITY; n_requests],
            attempts: vec![0; n_requests],
            retries: 0,
            straggler_response,
            migrate_from: vec![false; n_shards],
            affected: Vec::new(),
        }
    }

    /// Schedules a control event at every fault instant and every
    /// first-attempt timeout. Call once before `core.run`.
    fn prime(&mut self, core: &mut DecodeCore<'_>) {
        for &(t, _) in &self.actions {
            core.schedule_control(t);
        }
        if self.client.timeout_s.is_finite() {
            for r in 0..core.trace.len() {
                self.timeout_at[r] = core.trace[r].arrival_s + self.client.timeout_s;
                core.schedule_control(self.timeout_at[r]);
            }
        }
    }

    /// Records the shard's unfinished residents as incident victims.
    fn record_affected(&mut self, core: &DecodeCore<'_>, s: usize) {
        for sl in &core.shards[s].resident {
            if core.emitted[sl.req] < core.trace[sl.req].output_len
                && !self.affected.contains(&sl.req)
            {
                self.affected.push(sl.req);
            }
        }
    }

    fn apply_due_actions(&mut self, core: &mut DecodeCore<'_>, now: f64) {
        while self.next_action < self.actions.len() && self.actions[self.next_action].0 <= now {
            let action = self.actions[self.next_action].1;
            self.next_action += 1;
            match action {
                Action::Down(s) => {
                    self.record_affected(core, s);
                    let orphans = core.crash_shard(s, now);
                    self.inner.on_shard_down(core, s, now);
                    assert!(
                        core.accepting.iter().any(|&a| a),
                        "decode fault plan killed every accepting shard \
                         (the decode engine cannot park work)"
                    );
                    let mut touched = Vec::new();
                    for r in orphans {
                        let s2 = core.route_request(r, now);
                        if !touched.contains(&s2) {
                            touched.push(s2);
                        }
                    }
                    for s2 in touched {
                        core.start_iteration(s2, now);
                    }
                }
                Action::Up(s) => {
                    core.revive_shard(s);
                    self.inner.on_shard_up(core, s, now);
                }
                Action::Slow { shard: s, factor } => {
                    self.record_affected(core, s);
                    core.set_slowdown(s, factor, now);
                    let has_other = core.accepting.iter().enumerate().any(|(i, &a)| a && i != s);
                    if !has_other {
                        continue; // sole shard: nowhere to shift work to
                    }
                    // Waiting work always flees a straggler; what happens
                    // to its residents is the drain-vs-migrate choice.
                    core.accepting[s] = false;
                    core.shards[s].tick(now);
                    let waiting: Vec<usize> = core.shards[s].queue.drain(..).collect();
                    let mut touched = Vec::new();
                    for r in waiting {
                        let s2 = core.route_request(r, now);
                        if !touched.contains(&s2) {
                            touched.push(s2);
                        }
                    }
                    if self.straggler_response == DecodeScaleDown::Migrate {
                        if core.shards[s].stepping {
                            self.migrate_from[s] = true; // evict at the boundary
                        } else {
                            core.evict_unfinished(s, now, &mut touched);
                        }
                    }
                    for s2 in touched {
                        core.start_iteration(s2, now);
                    }
                }
                Action::Unslow(s) => {
                    core.set_slowdown(s, 1.0, now);
                    self.migrate_from[s] = false;
                    if !core.dead[s] {
                        core.accepting[s] = true;
                    }
                }
            }
        }
    }

    /// Decode twin of the fleet injector's timeout pass. A request that
    /// already started emitting tokens is never abandoned — its KV state
    /// is live, and mid-generation timeouts are not part of this client
    /// model ([`DecodeCore::cancel_waiting`] refuses them).
    fn apply_due_timeouts(&mut self, core: &mut DecodeCore<'_>, now: f64) {
        for r in 0..self.timeout_at.len() {
            if self.timeout_at[r] > now {
                continue;
            }
            self.timeout_at[r] = f64::INFINITY;
            if core.completion_s[r].is_finite() || !core.cancel_waiting(r, now) {
                continue;
            }
            match self
                .client
                .on_timeout(now, core.trace[r].arrival_s, self.attempts[r])
            {
                RetryDecision::Retry {
                    retry_at,
                    timeout_at,
                } => {
                    self.attempts[r] += 1;
                    self.retries += 1;
                    core.schedule_arrival(r, retry_at);
                    if timeout_at.is_finite() {
                        self.timeout_at[r] = timeout_at;
                        core.schedule_control(timeout_at);
                    }
                }
                RetryDecision::Abandon => core.abandoned += 1,
            }
        }
    }
}

impl<C: DecodeController> DecodeController for DecodeFaultInjector<C> {
    fn on_arrival(&mut self, core: &mut DecodeCore<'_>, r: usize, now: f64) {
        self.inner.on_arrival(core, r, now);
    }

    fn on_control(&mut self, core: &mut DecodeCore<'_>, now: f64) {
        self.apply_due_actions(core, now);
        self.apply_due_timeouts(core, now);
        self.inner.on_control(core, now);
    }

    fn after_step(&mut self, core: &mut DecodeCore<'_>, shard: usize, now: f64) {
        if self.migrate_from[shard] {
            self.migrate_from[shard] = false;
            let mut touched = Vec::new();
            core.evict_unfinished(shard, now, &mut touched);
            for s2 in touched {
                core.start_iteration(s2, now);
            }
        }
        self.inner.after_step(core, shard, now);
    }

    fn on_shard_down(&mut self, core: &mut DecodeCore<'_>, shard: usize, now: f64) {
        self.inner.on_shard_down(core, shard, now);
    }

    fn on_shard_up(&mut self, core: &mut DecodeCore<'_>, shard: usize, now: f64) {
        self.inner.on_shard_up(core, shard, now);
    }
}

// ──────────────────────── outcome / phase assembly ─────────────────────

/// Builds per-request client outcomes from final completion times and
/// retry counts. `arrivals` are the *original* trace arrivals.
fn assemble_outcomes(
    arrivals: &[f64],
    completion_s: &[f64],
    attempts: &[u32],
) -> Vec<ClientOutcome> {
    (0..arrivals.len())
        .map(|r| {
            let done = completion_s[r].is_finite();
            ClientOutcome {
                disposition: if !done {
                    Disposition::TimedOut
                } else if attempts[r] > 0 {
                    Disposition::Retried(attempts[r])
                } else {
                    Disposition::Completed
                },
                attempts: attempts[r],
                completion_s: if done { completion_s[r] } else { f64::INFINITY },
                latency_s: if done {
                    completion_s[r] - arrivals[r]
                } else {
                    f64::INFINITY
                },
            }
        })
        .collect()
}

/// Slices the run into pre / during / post incident phases. With no
/// window the whole run is one phase; an unrecovered incident leaves the
/// post phase empty (`[∞, ∞)`), keeping the three-phase shape stable for
/// downstream indexing.
fn build_phases(
    window: Option<(f64, f64)>,
    arrivals: &[f64],
    outcomes: &[ClientOutcome],
    slo: f64,
    makespan: f64,
    scale_events: &[ScaleEvent],
) -> Vec<IncidentPhase> {
    let edges: Vec<f64> = match window {
        None => vec![0.0, f64::INFINITY],
        Some((w0, w1)) => vec![0.0, w0, w1, f64::INFINITY],
    };
    edges
        .windows(2)
        .map(|w| {
            let (lo, hi) = (w[0], w[1]);
            let in_phase: Vec<&ClientOutcome> = arrivals
                .iter()
                .zip(outcomes)
                .filter(|(&a, _)| a >= lo && a < hi)
                .map(|(_, o)| o)
                .collect();
            let completed_lat: Vec<f64> = in_phase
                .iter()
                .filter(|o| o.latency_s.is_finite())
                .map(|o| o.latency_s)
                .collect();
            let delivered = outcomes
                .iter()
                .filter(|o| o.completion_s >= lo && o.completion_s < hi)
                .count();
            let hi_eff = if hi.is_finite() { hi } else { makespan.max(lo) };
            IncidentPhase {
                start_s: lo,
                end_s: hi,
                arrivals: in_phase.len(),
                completed: completed_lat.len(),
                timed_out: in_phase.len() - completed_lat.len(),
                slo_attainment: if in_phase.is_empty() {
                    1.0
                } else {
                    completed_lat.iter().filter(|&&l| l <= slo).count() as f64
                        / in_phase.len() as f64
                },
                goodput_seq_s: delivered as f64 / (hi_eff - lo).max(1e-12),
                p95_latency_s: percentile(&completed_lat, 0.95).unwrap_or(0.0),
                scale_events: scale_events
                    .iter()
                    .filter(|e| e.time_s >= lo && e.time_s < hi)
                    .count(),
            }
        })
        .collect()
}

/// (completed, timed_out, retried) tallies over an outcome slice.
fn tally(outcomes: &[ClientOutcome]) -> (usize, usize, usize) {
    let completed = outcomes
        .iter()
        .filter(|o| o.completion_s.is_finite())
        .count();
    let retried = outcomes
        .iter()
        .filter(|o| matches!(o.disposition, Disposition::Retried(_)))
        .count();
    (completed, outcomes.len() - completed, retried)
}

/// Everything the exact path derives from a materialized
/// [`ClientOutcome`] vector, computed in streaming passes over the
/// engine's per-request state instead. `latency_of(r)` is the SLO/phase
/// latency metric (end-to-end for the fleet client, TTFT for the decode
/// client), `f64::INFINITY` when the request never got there.
struct StreamingAssembly {
    completed: usize,
    timed_out: usize,
    retried: usize,
    slo_attainment: f64,
    phases: Vec<IncidentPhase>,
}

/// Streaming twin of the [`assemble_outcomes`] / [`tally`] /
/// [`build_phases`] / SLO-fold chain: identical counting, but per-phase
/// p95 latency comes from a P² sketch fed in one pass, and no outcome
/// vector is ever materialized.
#[allow(clippy::too_many_arguments)]
fn assemble_streaming(
    window: Option<(f64, f64)>,
    arrivals: &[f64],
    completion_s: &[f64],
    attempts: &[u32],
    latency_of: &dyn Fn(usize) -> f64,
    slo: f64,
    makespan: f64,
    scale_events: &[ScaleEvent],
) -> StreamingAssembly {
    let n = arrivals.len();
    let completed = completion_s.iter().filter(|c| c.is_finite()).count();
    let retried = (0..n)
        .filter(|&r| completion_s[r].is_finite() && attempts[r] > 0)
        .count();
    let slo_attainment = (0..n).filter(|&r| latency_of(r) <= slo).count() as f64 / n.max(1) as f64;
    let edges: Vec<f64> = match window {
        None => vec![0.0, f64::INFINITY],
        Some((w0, w1)) => vec![0.0, w0, w1, f64::INFINITY],
    };
    let phases = edges
        .windows(2)
        .map(|w| {
            let (lo, hi) = (w[0], w[1]);
            let mut phase_arrivals = 0usize;
            let mut phase_completed = 0usize;
            let mut slo_hits = 0usize;
            let mut delivered = 0usize;
            let mut p95 = P2Quantile::new(0.95);
            for r in 0..n {
                let done = completion_s[r].is_finite();
                if done && completion_s[r] >= lo && completion_s[r] < hi {
                    delivered += 1;
                }
                if arrivals[r] >= lo && arrivals[r] < hi {
                    phase_arrivals += 1;
                    let l = latency_of(r);
                    if l.is_finite() {
                        phase_completed += 1;
                        p95.observe(l);
                        if l <= slo {
                            slo_hits += 1;
                        }
                    }
                }
            }
            let hi_eff = if hi.is_finite() { hi } else { makespan.max(lo) };
            IncidentPhase {
                start_s: lo,
                end_s: hi,
                arrivals: phase_arrivals,
                completed: phase_completed,
                timed_out: phase_arrivals - phase_completed,
                slo_attainment: if phase_arrivals == 0 {
                    1.0
                } else {
                    slo_hits as f64 / phase_arrivals as f64
                },
                goodput_seq_s: delivered as f64 / (hi_eff - lo).max(1e-12),
                p95_latency_s: if p95.count() == 0 {
                    0.0
                } else {
                    p95.quantile()
                },
                scale_events: scale_events
                    .iter()
                    .filter(|e| e.time_s >= lo && e.time_s < hi)
                    .count(),
            }
        })
        .collect();
    StreamingAssembly {
        completed,
        timed_out: n - completed,
        retried,
        slo_attainment,
        phases,
    }
}

// ───────────────────────────── entry points ────────────────────────────

/// Runs `trace` over a *fixed* fleet under `plan` and `client`,
/// reporting SLO attainment against `slo_latency_s` through the incident
/// window.
///
/// With [`FaultPlan::none`] and [`ClientConfig::patient`] the run is
/// bit-identical to [`crate::fleet::simulate_fleet`] (no extra events, no
/// arithmetic difference).
///
/// # Panics
///
/// Panics on the [`crate::fleet::simulate_fleet`] input errors, a
/// malformed plan or client, or a non-positive SLO.
#[allow(clippy::too_many_arguments)]
pub fn simulate_fleet_failure(
    shards: &[AcceleratorDesign],
    trace: &[Request],
    policy: SchedulingPolicy,
    dispatch: DispatchPolicy,
    batcher: &BatcherConfig,
    plan: &FaultPlan,
    client: &ClientConfig,
    slo_latency_s: f64,
) -> FailureReport {
    simulate_fleet_failure_mode(
        shards,
        trace,
        policy,
        dispatch,
        batcher,
        plan,
        client,
        slo_latency_s,
        ReportMode::Exact,
    )
}

/// [`simulate_fleet_failure`] with an explicit [`ReportMode`]. `Exact`
/// is the original verbatim; `Streaming` suppresses the per-request
/// `outcomes` vector and the engine's batch log, computing tallies, SLO
/// attainment, and per-phase p95 latencies in streaming passes (the p95s
/// are P² estimates within the pinned ε).
///
/// # Panics
///
/// Same panics as [`simulate_fleet_failure`].
#[allow(clippy::too_many_arguments)]
pub fn simulate_fleet_failure_mode(
    shards: &[AcceleratorDesign],
    trace: &[Request],
    policy: SchedulingPolicy,
    dispatch: DispatchPolicy,
    batcher: &BatcherConfig,
    plan: &FaultPlan,
    client: &ClientConfig,
    slo_latency_s: f64,
    mode: ReportMode,
) -> FailureReport {
    plan.validate(shards.len());
    client.validate();
    assert!(slo_latency_s > 0.0, "SLO latency must be positive");
    let mut core = FleetCore::new(
        shards,
        trace,
        policy,
        dispatch,
        batcher,
        vec![true; shards.len()],
    );
    core.set_mode(mode);
    let mut injector = FleetFaultInjector::new(NullController, plan, *client, trace.len());
    injector.prime(&mut core);
    core.run(&mut injector);

    let completion_s = core.completion_s.clone();
    let fleet = core.into_report();
    let arrivals: Vec<f64> = trace.iter().map(|r| r.arrival_s).collect();
    match mode {
        ReportMode::Exact => {
            let outcomes = assemble_outcomes(&arrivals, &completion_s, &injector.attempts);
            let (completed, timed_out, retried) = tally(&outcomes);
            let phases = build_phases(
                plan.incident_window(),
                &arrivals,
                &outcomes,
                slo_latency_s,
                fleet.makespan_s,
                &[],
            );
            let slo_attainment = outcomes
                .iter()
                .filter(|o| o.latency_s <= slo_latency_s)
                .count() as f64
                / trace.len() as f64;
            FailureReport {
                goodput_seq_s: completed as f64 / fleet.makespan_s.max(1e-12),
                fleet,
                outcomes,
                completed,
                timed_out,
                retried,
                retries: injector.retries,
                slo_attainment,
                phases,
            }
        }
        ReportMode::Streaming => {
            let latency_of = |r: usize| {
                if completion_s[r].is_finite() {
                    completion_s[r] - arrivals[r]
                } else {
                    f64::INFINITY
                }
            };
            let asm = assemble_streaming(
                plan.incident_window(),
                &arrivals,
                &completion_s,
                &injector.attempts,
                &latency_of,
                slo_latency_s,
                fleet.makespan_s,
                &[],
            );
            FailureReport {
                goodput_seq_s: asm.completed as f64 / fleet.makespan_s.max(1e-12),
                fleet,
                outcomes: Vec::new(),
                completed: asm.completed,
                timed_out: asm.timed_out,
                retried: asm.retried,
                retries: injector.retries,
                slo_attainment: asm.slo_attainment,
                phases: asm.phases,
            }
        }
    }
}

/// Runs `trace` over an *autoscaled* fleet under `plan` and `client`.
/// The policy keeps evaluating through the incident: a crash frees its
/// billing immediately ([`crate::autoscale::ScaleEventKind::Failed`]),
/// and a recovered shard is launchable again but only rejoins through
/// the normal launch + warm-up path — so post-incident capacity, and
/// with it SLO recovery, lags the recovery instant by about one warm-up.
///
/// # Panics
///
/// Panics on [`crate::autoscale::simulate_autoscale`] input errors or a
/// malformed plan / client.
#[allow(clippy::too_many_arguments)]
pub fn simulate_autoscale_failure(
    shards: &[AcceleratorDesign],
    trace: &[Request],
    policy: SchedulingPolicy,
    dispatch: DispatchPolicy,
    batcher: &BatcherConfig,
    cfg: &AutoscaleConfig,
    plan: &FaultPlan,
    client: &ClientConfig,
) -> AutoscaleFailureReport {
    simulate_autoscale_failure_mode(
        shards,
        trace,
        policy,
        dispatch,
        batcher,
        cfg,
        plan,
        client,
        ReportMode::Exact,
    )
}

/// [`simulate_autoscale_failure`] with an explicit [`ReportMode`] —
/// same `Exact`/`Streaming` contract as
/// [`simulate_fleet_failure_mode`]; the autoscaler's books and event log
/// are unaffected by the mode.
///
/// # Panics
///
/// Same panics as [`simulate_autoscale_failure`].
#[allow(clippy::too_many_arguments)]
pub fn simulate_autoscale_failure_mode(
    shards: &[AcceleratorDesign],
    trace: &[Request],
    policy: SchedulingPolicy,
    dispatch: DispatchPolicy,
    batcher: &BatcherConfig,
    cfg: &AutoscaleConfig,
    plan: &FaultPlan,
    client: &ClientConfig,
    mode: ReportMode,
) -> AutoscaleFailureReport {
    assert!(!shards.is_empty(), "fleet needs at least one shard");
    cfg.validate(shards.len());
    plan.validate(shards.len());
    client.validate();
    let accepting: Vec<bool> = (0..shards.len()).map(|s| s < cfg.initial_shards).collect();
    let mut core = FleetCore::new(shards, trace, policy, dispatch, batcher, accepting);
    core.set_mode(mode);
    let ctl = Autoscaler::new(cfg, shards.len());
    let mut injector = FleetFaultInjector::new(ctl, plan, *client, trace.len());
    injector.prime(&mut core);
    // Unlike the healthy entry point, the controller always runs — even a
    // pinned policy must observe crashes to keep its books truthful (for
    // Pinned, `evaluate` is a no-op, so only the books differ).
    core.schedule_control(cfg.eval_interval_s);
    core.run(&mut injector);

    let completion_s = core.completion_s.clone();
    let fleet = core.into_report();
    let (shard_seconds, mean_active_shards, peak_active_shards) =
        injector.inner.close_books(fleet.makespan_s);
    let arrivals: Vec<f64> = trace.iter().map(|r| r.arrival_s).collect();
    let scale_events = std::mem::take(&mut injector.inner.events);
    let failure = match mode {
        ReportMode::Exact => {
            let outcomes = assemble_outcomes(&arrivals, &completion_s, &injector.attempts);
            let (completed, timed_out, retried) = tally(&outcomes);
            let phases = build_phases(
                plan.incident_window(),
                &arrivals,
                &outcomes,
                cfg.slo_latency_s,
                fleet.makespan_s,
                &scale_events,
            );
            let slo_attainment = outcomes
                .iter()
                .filter(|o| o.latency_s <= cfg.slo_latency_s)
                .count() as f64
                / trace.len() as f64;
            FailureReport {
                goodput_seq_s: completed as f64 / fleet.makespan_s.max(1e-12),
                fleet,
                outcomes,
                completed,
                timed_out,
                retried,
                retries: injector.retries,
                slo_attainment,
                phases,
            }
        }
        ReportMode::Streaming => {
            let latency_of = |r: usize| {
                if completion_s[r].is_finite() {
                    completion_s[r] - arrivals[r]
                } else {
                    f64::INFINITY
                }
            };
            let asm = assemble_streaming(
                plan.incident_window(),
                &arrivals,
                &completion_s,
                &injector.attempts,
                &latency_of,
                cfg.slo_latency_s,
                fleet.makespan_s,
                &scale_events,
            );
            FailureReport {
                goodput_seq_s: asm.completed as f64 / fleet.makespan_s.max(1e-12),
                fleet,
                outcomes: Vec::new(),
                completed: asm.completed,
                timed_out: asm.timed_out,
                retried: asm.retried,
                retries: injector.retries,
                slo_attainment: asm.slo_attainment,
                phases: asm.phases,
            }
        }
    };
    AutoscaleFailureReport {
        failure,
        shard_seconds,
        mean_active_shards,
        peak_active_shards,
        scale_events,
    }
}

/// Runs a decode `trace` over a fixed generative fleet under `plan` and
/// `client`. `straggler_response` picks what happens to a straggler's KV
/// residents (drain in place at the slow rate vs migrate-and-re-prefill);
/// crashes always migrate, since a dead shard's KV is gone either way.
/// SLO attainment is over TTFT against `slo_ttft_s`.
///
/// # Panics
///
/// Panics on the [`crate::decode::simulate_decode`] input errors, a
/// malformed plan / client, a non-positive SLO, or a plan whose crashes
/// ever leave no accepting shard (the decode engine cannot park work).
#[allow(clippy::too_many_arguments)]
pub fn simulate_decode_failure(
    shards: &[AcceleratorDesign],
    trace: &[DecodeRequest],
    policy: SchedulingPolicy,
    dispatch: DispatchPolicy,
    scheduler: DecodeScheduler,
    cfg: &DecodeConfig,
    plan: &FaultPlan,
    client: &ClientConfig,
    straggler_response: DecodeScaleDown,
    slo_ttft_s: f64,
) -> DecodeFailureReport {
    simulate_decode_failure_mode(
        shards,
        trace,
        policy,
        dispatch,
        scheduler,
        cfg,
        plan,
        client,
        straggler_response,
        slo_ttft_s,
        ReportMode::Exact,
    )
}

/// [`simulate_decode_failure`] with an explicit [`ReportMode`] — same
/// `Exact`/`Streaming` contract as [`simulate_fleet_failure_mode`], with
/// TTFT as the phase/SLO latency metric either way.
///
/// # Panics
///
/// Same panics as [`simulate_decode_failure`].
#[allow(clippy::too_many_arguments)]
pub fn simulate_decode_failure_mode(
    shards: &[AcceleratorDesign],
    trace: &[DecodeRequest],
    policy: SchedulingPolicy,
    dispatch: DispatchPolicy,
    scheduler: DecodeScheduler,
    cfg: &DecodeConfig,
    plan: &FaultPlan,
    client: &ClientConfig,
    straggler_response: DecodeScaleDown,
    slo_ttft_s: f64,
    mode: ReportMode,
) -> DecodeFailureReport {
    plan.validate(shards.len());
    client.validate();
    assert!(slo_ttft_s > 0.0, "SLO TTFT must be positive");
    let mut core = DecodeCore::new(
        shards,
        trace,
        policy,
        dispatch,
        scheduler,
        cfg,
        vec![true; shards.len()],
    );
    core.set_mode(mode);
    let mut injector = DecodeFaultInjector::new(
        NullDecodeController,
        plan,
        *client,
        trace.len(),
        shards.len(),
        straggler_response,
    );
    injector.prime(&mut core);
    core.run(&mut injector);

    let completion_s = core.completion_s.clone();
    let ttft_s = core.ttft_s.clone();
    let decode = core.into_report();
    let arrivals: Vec<f64> = trace.iter().map(|r| r.arrival_s).collect();
    let affected_drain_s = injector
        .affected
        .iter()
        .map(|&r| {
            if completion_s[r].is_finite() {
                completion_s[r]
            } else {
                f64::INFINITY
            }
        })
        .fold(0.0f64, f64::max);
    match mode {
        ReportMode::Exact => {
            let outcomes = assemble_outcomes(&arrivals, &completion_s, &injector.attempts);
            let (completed, timed_out, retried) = tally(&outcomes);
            // The phase / SLO latency metric for decode is TTFT, not
            // end-to-end completion: it is what generative SLOs are
            // written against.
            let ttft_outcomes: Vec<ClientOutcome> = outcomes
                .iter()
                .enumerate()
                .map(|(r, o)| ClientOutcome {
                    latency_s: if ttft_s[r].is_finite() {
                        ttft_s[r]
                    } else {
                        f64::INFINITY
                    },
                    ..*o
                })
                .collect();
            let phases = build_phases(
                plan.incident_window(),
                &arrivals,
                &ttft_outcomes,
                slo_ttft_s,
                decode.fleet.makespan_s,
                &[],
            );
            let slo_attainment = ttft_outcomes
                .iter()
                .filter(|o| o.latency_s <= slo_ttft_s)
                .count() as f64
                / trace.len() as f64;
            DecodeFailureReport {
                decode,
                outcomes,
                completed,
                timed_out,
                retried,
                retries: injector.retries,
                slo_attainment,
                phases,
                affected_drain_s,
            }
        }
        ReportMode::Streaming => {
            let latency_of = |r: usize| {
                if ttft_s[r].is_finite() {
                    ttft_s[r]
                } else {
                    f64::INFINITY
                }
            };
            let asm = assemble_streaming(
                plan.incident_window(),
                &arrivals,
                &completion_s,
                &injector.attempts,
                &latency_of,
                slo_ttft_s,
                decode.fleet.makespan_s,
                &[],
            );
            DecodeFailureReport {
                decode,
                outcomes: Vec::new(),
                completed: asm.completed,
                timed_out: asm.timed_out,
                retried: asm.retried,
                retries: injector.retries,
                slo_attainment: asm.slo_attainment,
                phases: asm.phases,
                affected_drain_s,
            }
        }
    }
}

/// Result of a disaggregated failure simulation: the full
/// [`DisaggReport`] plus the same client-disposition and incident-phase
/// view as [`DecodeFailureReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DisaggFailureReport {
    /// Disaggregated-serving view (pools, transfers, prefix cache).
    pub disagg: DisaggReport,
    /// Per-request client outcomes in trace order (empty under
    /// [`ReportMode::Streaming`]).
    pub outcomes: Vec<ClientOutcome>,
    /// Requests that completed (on any attempt).
    pub completed: usize,
    /// Requests that never completed.
    pub timed_out: usize,
    /// Completed requests that needed at least one retry.
    pub retried: usize,
    /// Total retry events across all requests.
    pub retries: usize,
    /// Fraction of *all* requests whose TTFT met the SLO.
    pub slo_attainment: f64,
    /// Pre / during / post incident slices (TTFT as the latency metric).
    pub phases: Vec<IncidentPhase>,
    /// Latest completion time among the incident's KV-resident victims.
    pub affected_drain_s: f64,
}

/// [`simulate_disaggregated`](crate::disagg::simulate_disaggregated)
/// under a [`FaultPlan`] and a retrying client. Shard indices in the plan
/// are combined-fleet indices: `0..prefill_shards.len()` hits the prefill
/// pool, the rest the decode pool. A crashed decode shard's orphans (and
/// a straggler's migrated residents) lose their KV state, re-prefill on
/// the prefill pool, and hand off again; the controller re-closes the
/// decode pool to fresh arrivals after every recovery.
///
/// # Panics
///
/// Panics on the [`crate::disagg::simulate_disaggregated`] input errors,
/// a malformed plan / client, a non-positive SLO, or a plan whose crashes
/// leave no accepting prefill shard.
#[allow(clippy::too_many_arguments)]
pub fn simulate_disagg_failure(
    prefill_shards: &[AcceleratorDesign],
    decode_shards: &[AcceleratorDesign],
    trace: &[DecodeRequest],
    prefixes: &[Option<lat_workloads::prefix::PrefixGroup>],
    policy: SchedulingPolicy,
    dispatch: DispatchPolicy,
    scheduler: DecodeScheduler,
    cfg: &DecodeConfig,
    dcfg: &DisaggConfig,
    plan: &FaultPlan,
    client: &ClientConfig,
    straggler_response: DecodeScaleDown,
    slo_ttft_s: f64,
) -> DisaggFailureReport {
    simulate_disagg_failure_mode(
        prefill_shards,
        decode_shards,
        trace,
        prefixes,
        policy,
        dispatch,
        scheduler,
        cfg,
        dcfg,
        plan,
        client,
        straggler_response,
        slo_ttft_s,
        ReportMode::Exact,
    )
}

/// [`simulate_disagg_failure`] with an explicit [`ReportMode`] — same
/// `Exact`/`Streaming` contract as [`simulate_decode_failure_mode`].
///
/// # Panics
///
/// Same panics as [`simulate_disagg_failure`].
#[allow(clippy::too_many_arguments)]
pub fn simulate_disagg_failure_mode(
    prefill_shards: &[AcceleratorDesign],
    decode_shards: &[AcceleratorDesign],
    trace: &[DecodeRequest],
    prefixes: &[Option<lat_workloads::prefix::PrefixGroup>],
    policy: SchedulingPolicy,
    dispatch: DispatchPolicy,
    scheduler: DecodeScheduler,
    cfg: &DecodeConfig,
    dcfg: &DisaggConfig,
    plan: &FaultPlan,
    client: &ClientConfig,
    straggler_response: DecodeScaleDown,
    slo_ttft_s: f64,
    mode: ReportMode,
) -> DisaggFailureReport {
    let designs = combined_fleet(prefill_shards, decode_shards, trace, prefixes, dcfg);
    let n_prefill = prefill_shards.len();
    plan.validate(designs.len());
    client.validate();
    assert!(slo_ttft_s > 0.0, "SLO TTFT must be positive");
    let accepting: Vec<bool> = (0..designs.len()).map(|s| s < n_prefill).collect();
    let mut core = DecodeCore::new(&designs, trace, policy, dispatch, scheduler, cfg, accepting);
    core.set_mode(mode);
    let ctl = DisaggController::new(
        designs.len(),
        n_prefill,
        decode_shards.len(),
        prefixes,
        trace.len(),
        dcfg,
    );
    let mut injector = DecodeFaultInjector::new(
        ctl,
        plan,
        *client,
        trace.len(),
        designs.len(),
        straggler_response,
    );
    injector.prime(&mut core);
    core.run(&mut injector);

    let completion_s = core.completion_s.clone();
    let ttft_s = core.ttft_s.clone();
    let decode = core.into_report();
    let arrivals: Vec<f64> = trace.iter().map(|r| r.arrival_s).collect();
    let affected_drain_s = injector
        .affected
        .iter()
        .map(|&r| {
            if completion_s[r].is_finite() {
                completion_s[r]
            } else {
                f64::INFINITY
            }
        })
        .fold(0.0f64, f64::max);
    let retries = injector.retries;
    let attempts = injector.attempts.clone();
    let disagg = injector.inner.into_report(decode);
    match mode {
        ReportMode::Exact => {
            let outcomes = assemble_outcomes(&arrivals, &completion_s, &attempts);
            let (completed, timed_out, retried) = tally(&outcomes);
            let ttft_outcomes: Vec<ClientOutcome> = outcomes
                .iter()
                .enumerate()
                .map(|(r, o)| ClientOutcome {
                    latency_s: if ttft_s[r].is_finite() {
                        ttft_s[r]
                    } else {
                        f64::INFINITY
                    },
                    ..*o
                })
                .collect();
            let phases = build_phases(
                plan.incident_window(),
                &arrivals,
                &ttft_outcomes,
                slo_ttft_s,
                disagg.decode.fleet.makespan_s,
                &[],
            );
            let slo_attainment = ttft_outcomes
                .iter()
                .filter(|o| o.latency_s <= slo_ttft_s)
                .count() as f64
                / trace.len() as f64;
            DisaggFailureReport {
                disagg,
                outcomes,
                completed,
                timed_out,
                retried,
                retries,
                slo_attainment,
                phases,
                affected_drain_s,
            }
        }
        ReportMode::Streaming => {
            let latency_of = |r: usize| {
                if ttft_s[r].is_finite() {
                    ttft_s[r]
                } else {
                    f64::INFINITY
                }
            };
            let asm = assemble_streaming(
                plan.incident_window(),
                &arrivals,
                &completion_s,
                &attempts,
                &latency_of,
                slo_ttft_s,
                disagg.decode.fleet.makespan_s,
                &[],
            );
            DisaggFailureReport {
                disagg,
                outcomes: Vec::new(),
                completed: asm.completed,
                timed_out: asm.timed_out,
                retried: asm.retried,
                retries,
                slo_attainment: asm.slo_attainment,
                phases: asm.phases,
                affected_drain_s,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::autoscale::{RetirePolicy, ScaleEventKind, ScalePolicy};
    use crate::decode::Priority;
    use crate::fleet::{homogeneous_fleet, simulate_fleet};
    use crate::spec::FpgaSpec;
    use lat_model::config::ModelConfig;
    use lat_model::graph::AttentionMode;

    fn tiny_design(s_avg: usize) -> AcceleratorDesign {
        AcceleratorDesign::new(
            &ModelConfig::tiny(),
            AttentionMode::paper_sparse(),
            FpgaSpec::alveo_u280(),
            s_avg,
        )
    }

    /// `n` requests, one every `gap` seconds.
    fn steady_trace(n: usize, gap: f64, len: usize) -> Vec<Request> {
        (0..n)
            .map(|i| Request {
                arrival_s: i as f64 * gap,
                len,
            })
            .collect()
    }

    fn steady_decode_trace(
        n: usize,
        gap: f64,
        prefill: usize,
        output: usize,
    ) -> Vec<DecodeRequest> {
        (0..n)
            .map(|i| DecodeRequest {
                arrival_s: i as f64 * gap,
                prefill_len: prefill,
                output_len: output,
                priority: Priority::Normal,
            })
            .collect()
    }

    fn batcher() -> BatcherConfig {
        BatcherConfig {
            max_batch: 4,
            batch_window_s: 0.002,
        }
    }

    #[test]
    fn empty_plan_patient_client_matches_healthy_fleet_bit_for_bit() {
        let fleet = homogeneous_fleet(&tiny_design(64), 2);
        let trace = steady_trace(40, 0.003, 64);
        let healthy = simulate_fleet(
            &fleet,
            &trace,
            SchedulingPolicy::LengthAware,
            DispatchPolicy::RoundRobin,
            &batcher(),
        );
        let report = simulate_fleet_failure(
            &fleet,
            &trace,
            SchedulingPolicy::LengthAware,
            DispatchPolicy::RoundRobin,
            &batcher(),
            &FaultPlan::none(),
            &ClientConfig::patient(),
            0.25,
        );
        assert_eq!(report.fleet, healthy);
        assert_eq!(report.completed, trace.len());
        assert_eq!(report.timed_out, 0);
        assert_eq!(report.retries, 0);
        assert!(report
            .outcomes
            .iter()
            .all(|o| o.disposition == Disposition::Completed));
        assert_eq!(report.phases.len(), 1);
        assert_eq!(report.phases[0].arrivals, trace.len());
    }

    #[test]
    fn crash_with_recovery_loses_nothing() {
        let fleet = homogeneous_fleet(&tiny_design(64), 3);
        let trace = steady_trace(120, 0.002, 64);
        let plan = FaultPlan {
            faults: vec![Fault {
                shard: 0,
                kind: FaultKind::Crash {
                    at_s: 0.05,
                    recover_s: Some(0.15),
                },
            }],
        };
        let report = simulate_fleet_failure(
            &fleet,
            &trace,
            SchedulingPolicy::LengthAware,
            DispatchPolicy::JoinShortestQueue,
            &batcher(),
            &plan,
            &ClientConfig::patient(),
            0.25,
        );
        // A patient client over a recovering fleet completes everything:
        // the crash re-routes, never drops.
        assert_eq!(report.completed, trace.len());
        assert_eq!(report.timed_out, 0);
        assert_eq!(report.completed + report.timed_out, trace.len());
        assert_eq!(report.phases.len(), 3);
        assert_eq!(
            report.phases.iter().map(|p| p.arrivals).sum::<usize>(),
            trace.len()
        );
        // The revived shard serves again after recovery.
        assert!(report.fleet.shards[0].completed > 0);
    }

    #[test]
    fn unrecovered_total_outage_produces_valid_zero_completion_report() {
        let fleet = homogeneous_fleet(&tiny_design(64), 1);
        let trace = steady_trace(10, 0.01, 64);
        let plan = FaultPlan {
            faults: vec![Fault {
                shard: 0,
                kind: FaultKind::Crash {
                    at_s: 0.0,
                    recover_s: None,
                },
            }],
        };
        let report = simulate_fleet_failure(
            &fleet,
            &trace,
            SchedulingPolicy::LengthAware,
            DispatchPolicy::RoundRobin,
            &batcher(),
            &plan,
            &ClientConfig::patient(),
            0.25,
        );
        assert_eq!(report.completed, 0);
        assert_eq!(report.timed_out, trace.len());
        assert!(report
            .outcomes
            .iter()
            .all(|o| o.disposition == Disposition::TimedOut));
        // The report stays NaN-free all the way down to zero completions.
        assert_eq!(report.fleet.completed, 0);
        assert_eq!(report.fleet.mean_latency_s, 0.0);
        assert_eq!(report.fleet.p99_latency_s, 0.0);
        assert_eq!(report.slo_attainment, 0.0);
        assert!(report.goodput_seq_s == 0.0);
        for p in &report.phases {
            assert!(!p.slo_attainment.is_nan());
            assert!(!p.goodput_seq_s.is_nan());
        }
    }

    #[test]
    fn timeouts_retry_then_abandon_within_budget() {
        let fleet = homogeneous_fleet(&tiny_design(64), 1);
        let trace = steady_trace(8, 0.005, 64);
        let plan = FaultPlan {
            faults: vec![Fault {
                shard: 0,
                kind: FaultKind::Crash {
                    at_s: 0.0,
                    recover_s: None,
                },
            }],
        };
        let client = ClientConfig {
            timeout_s: 0.02,
            max_retries: 3,
            backoff_s: 0.01,
            deadline_s: f64::INFINITY,
        };
        let report = simulate_fleet_failure(
            &fleet,
            &trace,
            SchedulingPolicy::LengthAware,
            DispatchPolicy::RoundRobin,
            &batcher(),
            &plan,
            &client,
            0.25,
        );
        assert_eq!(report.completed, 0);
        assert_eq!(report.timed_out, trace.len());
        // Everyone exhausts exactly the retry budget, no more.
        assert!(report.outcomes.iter().all(|o| o.attempts == 3));
        assert_eq!(report.retries, 3 * trace.len());
    }

    #[test]
    fn deadline_caps_retries_before_max_retries() {
        let fleet = homogeneous_fleet(&tiny_design(64), 1);
        let trace = steady_trace(4, 0.005, 64);
        let plan = FaultPlan {
            faults: vec![Fault {
                shard: 0,
                kind: FaultKind::Crash {
                    at_s: 0.0,
                    recover_s: None,
                },
            }],
        };
        let client = ClientConfig {
            timeout_s: 0.02,
            max_retries: 100,
            backoff_s: 0.0,
            deadline_s: 0.05, // fits ~2 timeout periods
        };
        let report = simulate_fleet_failure(
            &fleet,
            &trace,
            SchedulingPolicy::LengthAware,
            DispatchPolicy::RoundRobin,
            &batcher(),
            &plan,
            &client,
            0.25,
        );
        let bound = client.attempt_bound();
        assert!(bound < 100);
        assert!(report.outcomes.iter().all(|o| o.attempts <= bound));
    }

    #[test]
    fn straggler_repricing_stretches_the_run_then_recovers() {
        let fleet = homogeneous_fleet(&tiny_design(64), 1);
        let trace = steady_trace(30, 0.004, 64);
        let healthy = simulate_fleet(
            &fleet,
            &trace,
            SchedulingPolicy::LengthAware,
            DispatchPolicy::RoundRobin,
            &batcher(),
        );
        let plan = FaultPlan {
            faults: vec![Fault {
                shard: 0,
                kind: FaultKind::Straggler {
                    from_s: 0.01,
                    until_s: 0.08,
                    slowdown: 10.0,
                },
            }],
        };
        let report = simulate_fleet_failure(
            &fleet,
            &trace,
            SchedulingPolicy::LengthAware,
            DispatchPolicy::RoundRobin,
            &batcher(),
            &plan,
            &ClientConfig::patient(),
            0.25,
        );
        assert_eq!(report.completed, trace.len());
        assert!(
            report.fleet.mean_latency_s > healthy.mean_latency_s,
            "batches dispatched inside a ×10 straggler window must cost \
             latency (straggler {} vs healthy {})",
            report.fleet.mean_latency_s,
            healthy.mean_latency_s
        );
    }

    #[test]
    fn autoscaled_crash_stops_billing_and_relaunches_through_warmup() {
        let fleet = homogeneous_fleet(&tiny_design(64), 4);
        let trace = steady_trace(400, 0.001, 64);
        let cfg = AutoscaleConfig {
            min_shards: 1,
            initial_shards: 2,
            policy: ScalePolicy::Reactive {
                scale_up_depth: 4.0,
                scale_down_depth: 0.5,
            },
            retire: RetirePolicy::Evict,
            eval_interval_s: 0.01,
            warmup_s: 0.02,
            cooldown_s: 0.0,
            slo_latency_s: 0.25,
            phase_bounds_s: Vec::new(),
        };
        let plan = FaultPlan {
            faults: vec![Fault {
                shard: 0,
                kind: FaultKind::Crash {
                    at_s: 0.1,
                    recover_s: Some(0.2),
                },
            }],
        };
        let report = simulate_autoscale_failure(
            &fleet,
            &trace,
            SchedulingPolicy::LengthAware,
            DispatchPolicy::JoinShortestQueue,
            &batcher(),
            &cfg,
            &plan,
            &ClientConfig::patient(),
        );
        assert_eq!(report.failure.completed, trace.len());
        let kinds: Vec<ScaleEventKind> = report.scale_events.iter().map(|e| e.kind).collect();
        assert!(kinds.contains(&ScaleEventKind::Failed));
        assert!(kinds.contains(&ScaleEventKind::Recovered));
        // Crashed capacity is not billed: the books never exceed what an
        // always-everything-on fleet would have paid.
        assert!(report.shard_seconds < fleet.len() as f64 * report.failure.fleet.makespan_s);
        assert!(report.shard_seconds > 0.0);
        assert_eq!(report.failure.phases.len(), 3);
    }

    #[test]
    fn decode_crash_reroutes_residents_and_finishes_generation() {
        let fleet = homogeneous_fleet(&tiny_design(64), 2);
        let trace = steady_decode_trace(24, 0.002, 48, 12);
        let plan = FaultPlan {
            faults: vec![Fault {
                shard: 0,
                kind: FaultKind::Crash {
                    at_s: 0.05,
                    recover_s: Some(0.2),
                },
            }],
        };
        let report = simulate_decode_failure(
            &fleet,
            &trace,
            SchedulingPolicy::LengthAware,
            DispatchPolicy::RoundRobin,
            DecodeScheduler::Continuous,
            &DecodeConfig::default(),
            &plan,
            &ClientConfig::patient(),
            DecodeScaleDown::Migrate,
            0.25,
        );
        assert_eq!(report.completed, trace.len());
        assert_eq!(report.timed_out, 0);
        // Every request generated its full output despite the crash.
        let want: u64 = trace.iter().map(|r| r.output_len as u64).sum();
        assert_eq!(report.decode.generated_tokens, want);
        assert!(report.affected_drain_s.is_finite());
    }

    #[test]
    fn decode_migrate_beats_drain_on_straggler_victims() {
        let fleet = homogeneous_fleet(&tiny_design(64), 3);
        // Long generations: the straggler's residents are the story.
        let trace = steady_decode_trace(18, 0.001, 48, 60);
        let plan = FaultPlan {
            faults: vec![Fault {
                shard: 0,
                kind: FaultKind::Straggler {
                    from_s: 0.02,
                    until_s: 2.0,
                    slowdown: 25.0,
                },
            }],
        };
        let run = |resp| {
            simulate_decode_failure(
                &fleet,
                &trace,
                SchedulingPolicy::LengthAware,
                DispatchPolicy::RoundRobin,
                DecodeScheduler::Continuous,
                &DecodeConfig::default(),
                &plan,
                &ClientConfig::patient(),
                resp,
                0.25,
            )
        };
        let migrate = run(DecodeScaleDown::Migrate);
        let drain = run(DecodeScaleDown::Drain);
        assert_eq!(migrate.completed, trace.len());
        assert_eq!(drain.completed, trace.len());
        assert!(
            migrate.affected_drain_s <= drain.affected_drain_s,
            "migrating victims off a ×25 straggler cannot be slower than \
             decoding them in place (migrate {} vs drain {})",
            migrate.affected_drain_s,
            drain.affected_drain_s
        );
    }

    #[test]
    fn incident_window_is_the_fault_hull() {
        let plan = FaultPlan {
            faults: vec![
                Fault {
                    shard: 0,
                    kind: FaultKind::Straggler {
                        from_s: 1.0,
                        until_s: 2.0,
                        slowdown: 4.0,
                    },
                },
                Fault {
                    shard: 1,
                    kind: FaultKind::Crash {
                        at_s: 0.5,
                        recover_s: Some(3.0),
                    },
                },
            ],
        };
        plan.validate(2);
        assert_eq!(plan.incident_window(), Some((0.5, 3.0)));
        assert_eq!(FaultPlan::none().incident_window(), None);
    }

    #[test]
    #[should_panic(expected = "overlapping fault intervals")]
    fn overlapping_faults_on_one_shard_rejected() {
        let plan = FaultPlan {
            faults: vec![
                Fault {
                    shard: 0,
                    kind: FaultKind::Crash {
                        at_s: 1.0,
                        recover_s: Some(2.0),
                    },
                },
                Fault {
                    shard: 0,
                    kind: FaultKind::Straggler {
                        from_s: 1.5,
                        until_s: 2.5,
                        slowdown: 2.0,
                    },
                },
            ],
        };
        plan.validate(1);
    }

    #[test]
    #[should_panic(expected = "fault shard out of range")]
    fn out_of_range_fault_shard_rejected() {
        let plan = FaultPlan {
            faults: vec![Fault {
                shard: 2,
                kind: FaultKind::Crash {
                    at_s: 1.0,
                    recover_s: None,
                },
            }],
        };
        plan.validate(2);
    }

    fn disagg_cfg() -> DisaggConfig {
        DisaggConfig {
            transfer: crate::decode::KvTransfer::Copy {
                base_s: 1e-5,
                per_token_s: 1e-8,
            },
            prefix_cache_capacity: 0,
        }
    }

    fn run_disagg_failure(
        n_prefill: usize,
        n_decode: usize,
        trace: &[DecodeRequest],
        plan: &FaultPlan,
    ) -> DisaggFailureReport {
        let fleet = homogeneous_fleet(&tiny_design(64), n_prefill.max(n_decode));
        simulate_disagg_failure(
            &fleet[..n_prefill],
            &fleet[..n_decode],
            trace,
            &[],
            SchedulingPolicy::LengthAware,
            DispatchPolicy::JoinShortestQueue,
            DecodeScheduler::Continuous,
            &DecodeConfig::default(),
            &disagg_cfg(),
            plan,
            &ClientConfig::patient(),
            DecodeScaleDown::Migrate,
            0.25,
        )
    }

    /// Empty plan + infinitely patient client: the failure layer adds no
    /// events, so the disagg run is bit-identical to the plain engine.
    #[test]
    fn disagg_healthy_failure_run_is_bit_identical_to_plain() {
        let trace = steady_decode_trace(20, 0.002, 48, 12);
        let healthy = run_disagg_failure(2, 2, &trace, &FaultPlan::none());
        let fleet = homogeneous_fleet(&tiny_design(64), 2);
        let plain = crate::disagg::simulate_disaggregated(
            &fleet,
            &fleet,
            &trace,
            &[],
            SchedulingPolicy::LengthAware,
            DispatchPolicy::JoinShortestQueue,
            DecodeScheduler::Continuous,
            &DecodeConfig::default(),
            &disagg_cfg(),
        );
        assert_eq!(healthy.disagg, plain);
        assert_eq!(healthy.completed, trace.len());
        assert_eq!(healthy.timed_out, 0);
        assert_eq!(healthy.retries, 0);
    }

    /// A decode-pool crash orphans in-flight generations; they re-prefill
    /// on the prefill pool, hand off again, and still all complete.
    #[test]
    fn disagg_decode_pool_crash_recovers_and_completes() {
        // Few, very long generations: the crash lands mid-decode for
        // certain instead of racing the (sub-millisecond) decode dwell.
        let trace = steady_decode_trace(4, 0.0002, 48, 4000);
        let plan = FaultPlan {
            faults: vec![Fault {
                shard: 2, // first decode shard of a 2+2 fleet
                kind: FaultKind::Crash {
                    at_s: 0.001,
                    recover_s: Some(0.05),
                },
            }],
        };
        let r = run_disagg_failure(2, 2, &trace, &plan);
        assert_eq!(r.completed, trace.len());
        assert_eq!(r.timed_out, 0);
        let want: u64 = trace.iter().map(|q| q.output_len as u64).sum();
        assert_eq!(r.disagg.decode.generated_tokens, want);
        // Orphaned generations crossed the interconnect a second time.
        assert!(r.disagg.transfers > trace.len());
        // The revived decode shard must NOT accept fresh arrivals: all
        // completions belong to a pool, none to a stray admission path.
        assert_eq!(
            r.disagg.prefill_pool.completed + r.disagg.decode_pool.completed,
            trace.len()
        );
        assert!(r.affected_drain_s.is_finite() && r.affected_drain_s > 0.0);
    }

    /// A prefill-pool crash re-routes queued prompts to the surviving
    /// prefill shard; nothing lands on the decode pool early.
    #[test]
    fn disagg_prefill_pool_crash_completes_on_survivor() {
        let trace = steady_decode_trace(14, 0.002, 48, 10);
        let plan = FaultPlan {
            faults: vec![Fault {
                shard: 0,
                kind: FaultKind::Crash {
                    at_s: 0.01,
                    recover_s: None,
                },
            }],
        };
        let r = run_disagg_failure(2, 2, &trace, &plan);
        assert_eq!(r.completed, trace.len());
        assert_eq!(r.timed_out, 0);
        let multi = trace.iter().filter(|q| q.output_len > 1).count();
        assert!(r.disagg.transfers >= multi);
    }
}
