//! Disaggregated prefill/decode serving with shared-prefix caching.
//!
//! The colocated decode engine ([`crate::decode`]) runs prefill and
//! decode on the same shards, so a long prompt's prefill pass stalls
//! every resident's next token and a deep decode batch queues incoming
//! prompts. The DistServe/Splitwise-style split gives each phase its own
//! pool: a **prefill pool** admits arrivals, runs each prompt's prefill
//! (emitting the first token), and hands the sequence's KV state to a
//! **decode pool** that steps it to completion. The handoff is priced by
//! a [`KvTransfer`] — latency linear in the resident context length —
//! and an infinite transfer cost degenerates to the colocated engine
//! bit-for-bit (residents simply decode where they prefilled, and the
//! decode pool idles).
//!
//! Chat-style workloads amplify the split with a **shared-prefix cache**
//! on the prefill pool: requests declare membership in a prefix group
//! ([`PrefixGroup`], assigned by
//! [`lat_workloads::prefix::PrefixProfile`]), and a hit skips the cached
//! prefix's share of the prefill pass. The cache is a deterministic,
//! capacity-bounded table evicting least-recently-used-by-sim-time; a
//! zero-capacity cache never hits and reproduces the uncached engine
//! bit-for-bit.
//!
//! Everything runs on the SAME `DecodeCore` event loop as
//! [`crate::decode::simulate_decode`] — the pools are one fleet whose
//! `accepting` mask confines fresh arrivals to the prefill shards, and
//! the handoff queue is a controller agenda — so the existing layers
//! compose: [`ReportMode::Streaming`] reporting, fault injection on
//! either pool ([`crate::failure::simulate_disagg_failure`]), and
//! per-pool autoscaling through the shared
//! [`crate::autoscale::ScalePolicy`] semantics
//! ([`simulate_disagg_autoscale`]).
//!
//! # Example
//!
//! One prefill shard feeding one decode shard over a cheap interconnect:
//!
//! ```
//! use lat_core::pipeline::SchedulingPolicy;
//! use lat_hwsim::accelerator::AcceleratorDesign;
//! use lat_hwsim::decode::{decode_trace, DecodeConfig, DecodeScheduler, KvTransfer};
//! use lat_hwsim::disagg::{simulate_disaggregated, DisaggConfig};
//! use lat_hwsim::fleet::{homogeneous_fleet, DispatchPolicy};
//! use lat_hwsim::spec::FpgaSpec;
//! use lat_model::config::ModelConfig;
//! use lat_model::graph::AttentionMode;
//! use lat_workloads::datasets::DatasetSpec;
//!
//! let design = AcceleratorDesign::new(
//!     &ModelConfig::tiny(),
//!     AttentionMode::paper_sparse(),
//!     FpgaSpec::alveo_u280(),
//!     64,
//! );
//! let pool = homogeneous_fleet(&design, 1);
//! let spec = DatasetSpec::rte();
//! let trace = decode_trace(&spec, &spec.decode_output(), 0.0, 150.0, 4, 11);
//! let report = simulate_disaggregated(
//!     &pool, // prefill pool
//!     &pool, // decode pool
//!     &trace,
//!     &[], // no declared prefix groups
//!     SchedulingPolicy::LengthAware,
//!     DispatchPolicy::JoinShortestQueue,
//!     DecodeScheduler::Continuous,
//!     &DecodeConfig::default(),
//!     &DisaggConfig {
//!         transfer: KvTransfer::Copy { base_s: 1e-4, per_token_s: 1e-7 },
//!         prefix_cache_capacity: 0,
//!     },
//! );
//! assert_eq!(report.decode.fleet.completed, 4);
//! // Every multi-token request crossed the interconnect exactly once.
//! let multi = trace.iter().filter(|r| r.output_len > 1).count();
//! assert_eq!(report.transfers, multi);
//! ```

use crate::accelerator::AcceleratorDesign;
use crate::autoscale::{
    Lifecycle, Observation, PolicyEngine, ScaleEvent, ScaleEventKind, ScalePolicy,
};
use crate::decode::{
    DecodeConfig, DecodeController, DecodeCore, DecodeReport, DecodeRequest, DecodeScheduler,
    KvTransfer,
};
use crate::fleet::DispatchPolicy;
use lat_core::pipeline::SchedulingPolicy;
use lat_core::sketch::ReportMode;
use lat_workloads::prefix::PrefixGroup;
use serde::{Deserialize, Serialize};

/// Parameters of the disaggregated serving layer (pool sizes are the two
/// design slices handed to [`simulate_disaggregated`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DisaggConfig {
    /// How KV state crosses from the prefill pool to the decode pool.
    /// [`KvTransfer::Reprefill`] hands off instantly but re-prefills the
    /// grown context on the decode shard; [`KvTransfer::Copy`] pays wire
    /// latency and resumes decoding. A non-finite copy cost means "never
    /// hand off" — sequences decode in place, colocated-style.
    pub transfer: KvTransfer,
    /// Shared-prefix cache capacity in *entries* (distinct prefix
    /// groups); 0 disables caching bit-for-bit.
    pub prefix_cache_capacity: usize,
}

impl Default for DisaggConfig {
    fn default() -> Self {
        Self {
            transfer: KvTransfer::Copy {
                base_s: 5e-4,
                per_token_s: 2e-6,
            },
            prefix_cache_capacity: 0,
        }
    }
}

impl DisaggConfig {
    /// Panics unless the configuration is well-formed.
    pub fn validate(&self) {
        self.transfer.validate();
    }
}

/// Aggregated view of one pool's shards in a [`DisaggReport`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PoolReport {
    /// Shards in the pool.
    pub shards: usize,
    /// Requests that *completed* on this pool's shards (a handed-off
    /// request completes on the decode pool).
    pub completed: usize,
    /// Iterations launched across the pool.
    pub iterations: usize,
    /// Mean busy-time utilization over the pool's shards (busy time /
    /// makespan, averaged).
    pub utilization: f64,
    /// Mean occupied-slot utilization over the pool's shards.
    pub slot_utilization: f64,
}

/// Shared-prefix cache counters of one run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PrefixCacheReport {
    /// Configured capacity in entries.
    pub capacity: usize,
    /// Lookups that found their group resident.
    pub hits: usize,
    /// Lookups that missed (including every lookup at capacity 0).
    pub misses: usize,
    /// Entries displaced by LRU capacity eviction.
    pub evictions: usize,
    /// Prefill tokens skipped across all hits (after clamping to each
    /// request's own prompt length).
    pub tokens_saved: u64,
}

/// Result of a disaggregated simulation: the combined-fleet
/// [`DecodeReport`] (shards = prefill pool ++ decode pool, in that
/// order) plus per-pool rollups, KV-transfer accounting, and the prefix
/// cache counters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DisaggReport {
    /// Combined-fleet decode report. Fleet-wide `slot_utilization`
    /// averages over BOTH pools; use the per-pool rollups when comparing
    /// against a colocated baseline.
    pub decode: DecodeReport,
    /// Rollup over the prefill shards (indices `0..prefill_shards`).
    pub prefill_pool: PoolReport,
    /// Rollup over the decode shards (indices `prefill_shards..`).
    pub decode_pool: PoolReport,
    /// Completed prefill→decode handoffs.
    pub transfers: usize,
    /// Σ modeled transfer latency over those handoffs.
    pub transfer_time_s: f64,
    /// Σ context tokens (KV state) moved across the interconnect.
    pub transferred_tokens: u64,
    /// Shared-prefix cache counters.
    pub prefix: PrefixCacheReport,
}

/// One resident entry of the deterministic shared-prefix cache.
#[derive(Debug, Clone, Copy)]
struct CacheEntry {
    group: u64,
    prefix_len: usize,
    last_used_s: f64,
    /// Monotone touch counter breaking `last_used_s` ties (same-instant
    /// arrivals), keeping eviction deterministic.
    lru_seq: u64,
}

/// Capacity-bounded prefix table, LRU by simulation time. Lookup order is
/// the arrival event order, so the whole cache history is a pure function
/// of the trace and the prefix assignment.
struct PrefixCache {
    capacity: usize,
    entries: Vec<CacheEntry>,
    seq: u64,
    hits: usize,
    misses: usize,
    evictions: usize,
}

impl PrefixCache {
    fn new(capacity: usize) -> Self {
        Self {
            capacity,
            entries: Vec::with_capacity(capacity.min(64)),
            seq: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Returns the cached prefix length on a hit (touching the entry);
    /// on a miss, inserts the group (evicting the LRU entry at capacity)
    /// and returns `None`. Capacity 0 records a miss and stores nothing.
    fn lookup(&mut self, g: PrefixGroup, now: f64) -> Option<usize> {
        if self.capacity == 0 {
            self.misses += 1;
            return None;
        }
        let seq = self.seq;
        self.seq += 1;
        if let Some(e) = self.entries.iter_mut().find(|e| e.group == g.group) {
            e.last_used_s = now;
            e.lru_seq = seq;
            self.hits += 1;
            return Some(e.prefix_len);
        }
        self.misses += 1;
        if self.entries.len() >= self.capacity {
            let lru = self
                .entries
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| {
                    a.last_used_s
                        .total_cmp(&b.last_used_s)
                        .then(a.lru_seq.cmp(&b.lru_seq))
                })
                .map(|(i, _)| i)
                .expect("non-empty cache at capacity");
            self.entries.swap_remove(lru);
            self.evictions += 1;
        }
        self.entries.push(CacheEntry {
            group: g.group,
            prefix_len: g.prefix_len,
            last_used_s: now,
            lru_seq: seq,
        });
        None
    }
}

/// The disaggregation controller: confines fresh arrivals to the prefill
/// pool (via the core's `accepting` mask), detaches first-token residents
/// from prefill shards at iteration boundaries, prices each handoff with
/// the [`KvTransfer`], and lands completed handoffs in the decode pool.
pub(crate) struct DisaggController<'a> {
    n_prefill: usize,
    transfer: KvTransfer,
    prefixes: &'a [Option<PrefixGroup>],
    cache: PrefixCache,
    /// One prefix lookup per request, at its first arrival event.
    looked_up: Vec<bool>,
    /// In-flight handoffs as `(ready_s, request)`; drained in insertion
    /// order among the due when the control event at `ready_s` fires.
    pending: Vec<(f64, usize)>,
    /// Decode-pool routing eligibility (autoscaling retires/launches flip
    /// this); indexed by combined-fleet shard, `false` on every prefill
    /// shard.
    open: Vec<bool>,
    /// Decode-pool round-robin cursor, separate from the core's
    /// fresh-arrival cursor.
    rr_decode: usize,
    transfers: usize,
    transfer_time_s: f64,
    transferred_tokens: u64,
    tokens_saved: u64,
}

impl<'a> DisaggController<'a> {
    /// `n_total` combined shards, the first `n_prefill` of which form the
    /// prefill pool; `open_decode` caps how many decode shards start
    /// routable (autoscaling starts below the ceiling).
    pub(crate) fn new(
        n_total: usize,
        n_prefill: usize,
        open_decode: usize,
        prefixes: &'a [Option<PrefixGroup>],
        n_requests: usize,
        cfg: &DisaggConfig,
    ) -> Self {
        let open = (0..n_total)
            .map(|s| s >= n_prefill && s < n_prefill + open_decode)
            .collect();
        Self {
            n_prefill,
            transfer: cfg.transfer,
            prefixes,
            cache: PrefixCache::new(cfg.prefix_cache_capacity),
            looked_up: vec![false; n_requests],
            pending: Vec::new(),
            open,
            rr_decode: 0,
            transfers: 0,
            transfer_time_s: 0.0,
            transferred_tokens: 0,
            tokens_saved: 0,
        }
    }

    /// Routable decode-pool mask right now (open, alive).
    fn decode_mask(&self, core: &DecodeCore<'_>) -> Vec<bool> {
        (0..self.open.len())
            .map(|s| self.open[s] && !core.dead[s])
            .collect()
    }

    /// Lands every due handoff in the decode pool. If the whole decode
    /// pool is unroutable (crashed/retired), the sequence falls back to
    /// the accepting shards and re-prefills there — the KV copy has no
    /// destination, so its warmth is forfeit.
    fn land_due_handoffs(&mut self, core: &mut DecodeCore<'_>, now: f64) {
        let mut touched = Vec::new();
        let mut i = 0;
        while i < self.pending.len() {
            if self.pending[i].0 <= now {
                let (_, r) = self.pending.remove(i);
                let mask = self.decode_mask(core);
                let s2 = if mask.iter().any(|&m| m) {
                    core.route_request_into(r, now, &mask, &mut self.rr_decode)
                } else {
                    core.kv_warm[r] = false;
                    core.route_request(r, now)
                };
                if !touched.contains(&s2) {
                    touched.push(s2);
                }
            } else {
                i += 1;
            }
        }
        for s2 in touched {
            core.start_iteration(s2, now);
        }
    }

    /// Re-asserts the pool boundary: no decode shard ever accepts fresh
    /// arrivals. The generic failure layer's recovery actions re-open
    /// `accepting` without knowing about pools; this runs on every
    /// control event, after those actions and before any later arrival.
    fn enforce_pools(&self, core: &mut DecodeCore<'_>) {
        for s in self.n_prefill..core.accepting.len() {
            core.accepting[s] = false;
        }
    }

    /// Consumes the controller into the disagg view of a finished run.
    pub(crate) fn into_report(self, decode: DecodeReport) -> DisaggReport {
        let n_prefill = self.n_prefill;
        let pool = |range: std::ops::Range<usize>| {
            let n = range.len().max(1) as f64;
            PoolReport {
                shards: range.len(),
                completed: decode.fleet.shards[range.clone()]
                    .iter()
                    .map(|s| s.completed)
                    .sum(),
                iterations: decode.fleet.shards[range.clone()]
                    .iter()
                    .map(|s| s.batches)
                    .sum(),
                utilization: decode.fleet.shards[range.clone()]
                    .iter()
                    .map(|s| s.utilization)
                    .sum::<f64>()
                    / n,
                slot_utilization: decode.shards[range]
                    .iter()
                    .map(|s| s.slot_utilization)
                    .sum::<f64>()
                    / n,
            }
        };
        let n_total = decode.fleet.shards.len();
        DisaggReport {
            prefill_pool: pool(0..n_prefill),
            decode_pool: pool(n_prefill..n_total),
            transfers: self.transfers,
            transfer_time_s: self.transfer_time_s,
            transferred_tokens: self.transferred_tokens,
            prefix: PrefixCacheReport {
                capacity: self.cache.capacity,
                hits: self.cache.hits,
                misses: self.cache.misses,
                evictions: self.cache.evictions,
                tokens_saved: self.tokens_saved,
            },
            decode,
        }
    }
}

impl DecodeController for DisaggController<'_> {
    fn on_arrival(&mut self, core: &mut DecodeCore<'_>, r: usize, now: f64) {
        if self.looked_up[r] {
            return; // a retry re-arrives; the lookup already happened
        }
        self.looked_up[r] = true;
        let Some(g) = self.prefixes.get(r).copied().flatten() else {
            return;
        };
        if let Some(cached_len) = self.cache.lookup(g, now) {
            // The discount can never consume the whole prompt: at least
            // one fresh token must run through prefill.
            let skip = cached_len.min(core.trace[r].prefill_len.saturating_sub(1));
            core.prefill_skip[r] = skip;
            self.tokens_saved += skip as u64;
        }
    }

    fn on_control(&mut self, core: &mut DecodeCore<'_>, now: f64) {
        self.enforce_pools(core);
        self.land_due_handoffs(core, now);
    }

    fn after_step(&mut self, core: &mut DecodeCore<'_>, shard: usize, now: f64) {
        if shard >= self.n_prefill {
            return; // decode-pool sequences finish in place
        }
        // Detach every resident whose prefill pass is done (first token
        // emitted) but whose generation is not: its KV state ships to the
        // decode pool. A non-finite transfer latency keeps it decoding
        // here — exactly the colocated engine.
        let mut detached: Vec<(usize, usize)> = Vec::new(); // (req, context)
        {
            let emitted = &core.emitted;
            let trace = core.trace;
            let transfer = self.transfer;
            core.shards[shard].resident.retain(|sl| {
                let r = sl.req;
                let decoding = emitted[r] >= 1 && emitted[r] < trace[r].output_len;
                if !decoding {
                    return true;
                }
                let context = trace[r].prefill_len + emitted[r];
                if !transfer.latency_s(context).is_finite() {
                    return true;
                }
                detached.push((r, context));
                false
            });
        }
        for (r, context) in detached {
            let latency = self.transfer.latency_s(context);
            self.transfers += 1;
            self.transfer_time_s += latency;
            self.transferred_tokens += context as u64;
            if self.transfer.preserves_kv() {
                core.kv_warm[r] = true;
            }
            let ready = now + latency;
            self.pending.push((ready, r));
            core.schedule_control(ready);
        }
    }

    fn on_shard_up(&mut self, core: &mut DecodeCore<'_>, shard: usize, _now: f64) {
        // A revived prefill shard rejoins dispatch; a revived decode
        // shard only rejoins handoff routing (`open` already covers it).
        core.accepting[shard] = shard < self.n_prefill;
    }
}

/// Simulates `trace` over a disaggregated fleet: `prefill_shards` admit
/// and prefill requests (with `prefixes`-driven cache discounts), then
/// hand KV state to `decode_shards` at the configured transfer cost.
/// `dispatch` routes fresh arrivals over the prefill pool and handoffs
/// over the decode pool (independent cursors); `scheduler` and `cfg`
/// apply to every shard.
///
/// `prefixes` must be empty (no declared groups) or one entry per trace
/// request, as produced by
/// [`lat_workloads::prefix::PrefixProfile::assign`].
///
/// Every request completes exactly once and generates exactly its
/// `output_len` tokens.
///
/// # Panics
///
/// Panics on the [`crate::decode::simulate_decode`] input errors, an
/// empty pool, a misaligned `prefixes` slice, or a malformed
/// [`DisaggConfig`].
#[allow(clippy::too_many_arguments)]
pub fn simulate_disaggregated(
    prefill_shards: &[AcceleratorDesign],
    decode_shards: &[AcceleratorDesign],
    trace: &[DecodeRequest],
    prefixes: &[Option<PrefixGroup>],
    policy: SchedulingPolicy,
    dispatch: DispatchPolicy,
    scheduler: DecodeScheduler,
    cfg: &DecodeConfig,
    dcfg: &DisaggConfig,
) -> DisaggReport {
    let report = simulate_disaggregated_mode(
        prefill_shards,
        decode_shards,
        trace,
        prefixes,
        policy,
        dispatch,
        scheduler,
        cfg,
        dcfg,
        ReportMode::Exact,
    );
    assert_eq!(
        report.decode.fleet.completed,
        trace.len(),
        "request never completed (conservation bug in the disaggregated fleet)"
    );
    report
}

/// [`simulate_disaggregated`] with an explicit [`ReportMode`] (and
/// without the conservation assert, mirroring
/// [`crate::decode::simulate_decode_mode`]'s streaming contract: equal
/// counters, sketch-estimated percentiles, empty per-request vectors).
#[allow(clippy::too_many_arguments)]
pub fn simulate_disaggregated_mode(
    prefill_shards: &[AcceleratorDesign],
    decode_shards: &[AcceleratorDesign],
    trace: &[DecodeRequest],
    prefixes: &[Option<PrefixGroup>],
    policy: SchedulingPolicy,
    dispatch: DispatchPolicy,
    scheduler: DecodeScheduler,
    cfg: &DecodeConfig,
    dcfg: &DisaggConfig,
    mode: ReportMode,
) -> DisaggReport {
    let designs = combined_fleet(prefill_shards, decode_shards, trace, prefixes, dcfg);
    let n_prefill = prefill_shards.len();
    let accepting: Vec<bool> = (0..designs.len()).map(|s| s < n_prefill).collect();
    let mut core = DecodeCore::new(&designs, trace, policy, dispatch, scheduler, cfg, accepting);
    core.set_mode(mode);
    let mut ctl = DisaggController::new(
        designs.len(),
        n_prefill,
        decode_shards.len(),
        prefixes,
        trace.len(),
        dcfg,
    );
    core.run(&mut ctl);
    ctl.into_report(core.into_report())
}

/// Validates the pool/trace/prefix inputs and concatenates the pools
/// (prefill first) into the combined fleet the `DecodeCore` runs.
pub(crate) fn combined_fleet(
    prefill_shards: &[AcceleratorDesign],
    decode_shards: &[AcceleratorDesign],
    trace: &[DecodeRequest],
    prefixes: &[Option<PrefixGroup>],
    dcfg: &DisaggConfig,
) -> Vec<AcceleratorDesign> {
    assert!(
        !prefill_shards.is_empty(),
        "prefill pool needs at least one shard"
    );
    assert!(
        !decode_shards.is_empty(),
        "decode pool needs at least one shard"
    );
    assert!(
        prefixes.is_empty() || prefixes.len() == trace.len(),
        "prefix assignment must be empty or one entry per request"
    );
    dcfg.validate();
    prefill_shards
        .iter()
        .chain(decode_shards)
        .cloned()
        .collect()
}

// ───────────────────────── per-pool autoscaling ─────────────────────────

/// Scaling envelope of one pool in [`simulate_disagg_autoscale`]; the
/// ceiling is the pool's design-slice length.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PoolPolicy {
    /// Floor on committed shards; never retires below.
    pub min_shards: usize,
    /// Shards active (already warm) at `t = 0`.
    pub initial_shards: usize,
    /// Scaling decision rule — the SAME [`ScalePolicy`] semantics as the
    /// fleet and decode autoscalers, evaluated against this pool's
    /// backlog and busy time.
    pub policy: ScalePolicy,
}

impl PoolPolicy {
    /// A pinned pool: all `n` shards on, no scaling.
    pub fn pinned(n: usize) -> Self {
        Self {
            min_shards: n,
            initial_shards: n,
            policy: ScalePolicy::Pinned,
        }
    }
}

/// Parameters of the per-pool autoscaling layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DisaggAutoscaleConfig {
    /// Prefill-pool envelope.
    pub prefill: PoolPolicy,
    /// Decode-pool envelope. Its reactive/predictive signals see the
    /// *handoff* stream as the arrival process.
    pub decode: PoolPolicy,
    /// Controller sampling period in seconds (shared by both pools; each
    /// decides independently at every tick).
    pub eval_interval_s: f64,
    /// Weight-streaming delay before a launched shard joins its pool.
    pub warmup_s: f64,
    /// Minimum time between scaling actions per pool (feedback policies).
    pub cooldown_s: f64,
}

impl Default for DisaggAutoscaleConfig {
    fn default() -> Self {
        Self {
            prefill: PoolPolicy::pinned(1),
            decode: PoolPolicy::pinned(1),
            eval_interval_s: 0.2,
            warmup_s: 0.3,
            cooldown_s: 0.4,
        }
    }
}

impl DisaggAutoscaleConfig {
    /// Panics unless the configuration is well-formed for the given pool
    /// ceilings.
    pub fn validate(&self, max_prefill: usize, max_decode: usize) {
        for (pool, max, name) in [
            (&self.prefill, max_prefill, "prefill"),
            (&self.decode, max_decode, "decode"),
        ] {
            assert!(pool.min_shards >= 1, "{name} pool min_shards must be >= 1");
            assert!(
                pool.min_shards <= max,
                "{name} pool min_shards exceeds the pool size"
            );
            assert!(
                (pool.min_shards..=max).contains(&pool.initial_shards),
                "{name} pool initial_shards outside [min_shards, pool size]"
            );
            pool.policy.validate(pool.min_shards, max);
        }
        assert!(self.eval_interval_s > 0.0, "eval interval must be positive");
        assert!(self.warmup_s >= 0.0, "negative warm-up");
        assert!(self.cooldown_s >= 0.0, "negative cooldown");
    }
}

/// Result of [`simulate_disagg_autoscale`]: the disagg view plus each
/// pool's cost and scaling history.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DisaggAutoscaleReport {
    /// The disaggregated serving report.
    pub disagg: DisaggReport,
    /// Σ paid shard-seconds of the prefill pool (warm-up included).
    pub prefill_shard_seconds: f64,
    /// Σ paid shard-seconds of the decode pool.
    pub decode_shard_seconds: f64,
    /// Peak committed prefill shards.
    pub peak_prefill_shards: usize,
    /// Peak committed decode shards.
    pub peak_decode_shards: usize,
    /// Every scaling action of both pools, in time order (prefill before
    /// decode at equal instants). Shard indices are combined-fleet
    /// indices.
    pub scale_events: Vec<ScaleEvent>,
}

/// One pool's scaling state: a [`PolicyEngine`] plus shard lifecycles
/// over a contiguous index range of the combined fleet.
struct PoolScaler {
    range: std::ops::Range<usize>,
    min_shards: usize,
    is_feedback: bool,
    engine: PolicyEngine,
    lifecycle: Vec<Lifecycle>,
    on_since: Vec<f64>,
    shard_seconds: f64,
    on_count: usize,
    peak_on: usize,
    last_action_s: f64,
    events: Vec<ScaleEvent>,
}

impl PoolScaler {
    fn new(pool: &PoolPolicy, range: std::ops::Range<usize>, eval_interval_s: f64) -> Self {
        let lifecycle = (0..range.len())
            .map(|i| {
                if i < pool.initial_shards {
                    Lifecycle::Active
                } else {
                    Lifecycle::Off
                }
            })
            .collect();
        Self {
            min_shards: pool.min_shards,
            is_feedback: pool.policy.is_feedback(),
            engine: PolicyEngine::new(&pool.policy, pool.initial_shards, eval_interval_s),
            lifecycle,
            on_since: vec![0.0; range.len()],
            shard_seconds: 0.0,
            on_count: pool.initial_shards,
            peak_on: pool.initial_shards,
            last_action_s: f64::NEG_INFINITY,
            events: Vec::new(),
            range,
        }
    }

    fn staying(&self) -> usize {
        self.lifecycle
            .iter()
            .filter(|l| matches!(l, Lifecycle::Active | Lifecycle::Warming { .. }))
            .count()
    }

    fn record(&mut self, now: f64, shard: usize, kind: ScaleEventKind) {
        self.events.push(ScaleEvent {
            time_s: now,
            shard,
            kind,
            on_after: self.on_count,
        });
    }
}

/// The per-pool autoscaling controller: one [`PolicyEngine`] per pool on
/// a shared tick, wrapping the [`DisaggController`] that keeps doing the
/// handoff/caching work.
struct DisaggAutoscaler<'a> {
    inner: DisaggController<'a>,
    cfg: &'a DisaggAutoscaleConfig,
    pools: [PoolScaler; 2],
    next_eval_s: f64,
    done_ticking: bool,
}

impl<'a> DisaggAutoscaler<'a> {
    fn new(
        inner: DisaggController<'a>,
        cfg: &'a DisaggAutoscaleConfig,
        n_prefill: usize,
        n_total: usize,
    ) -> Self {
        Self {
            inner,
            cfg,
            pools: [
                PoolScaler::new(&cfg.prefill, 0..n_prefill, cfg.eval_interval_s),
                PoolScaler::new(&cfg.decode, n_prefill..n_total, cfg.eval_interval_s),
            ],
            next_eval_s: cfg.eval_interval_s,
            done_ticking: false,
        }
    }

    /// Marks shard `s` routable for its pool: `accepting` for prefill,
    /// the handoff mask for decode.
    fn open_shard(&mut self, core: &mut DecodeCore<'_>, pool: usize, s: usize) {
        if pool == 0 {
            core.accepting[s] = true;
        } else {
            self.inner.open[s] = true;
        }
    }

    fn launch(&mut self, core: &mut DecodeCore<'_>, pool: usize, s: usize, now: f64) {
        let p = &mut self.pools[pool];
        p.on_count += 1;
        p.peak_on = p.peak_on.max(p.on_count);
        let local = s - p.range.start;
        p.on_since[local] = now;
        p.record(now, s, ScaleEventKind::Launch);
        if self.cfg.warmup_s <= 0.0 {
            self.pools[pool].lifecycle[local] = Lifecycle::Active;
            self.pools[pool].record(now, s, ScaleEventKind::Join);
            self.open_shard(core, pool, s);
        } else {
            let ready_s = now + self.cfg.warmup_s;
            self.pools[pool].lifecycle[local] = Lifecycle::Warming { ready_s };
            core.schedule_control(ready_s);
        }
    }

    /// Drain-style retirement: the shard leaves routing, hands its
    /// waiting queue back to its pool's survivors, and keeps stepping its
    /// residents to completion in place.
    fn retire(&mut self, core: &mut DecodeCore<'_>, pool: usize, s: usize, now: f64) {
        let local = s - self.pools[pool].range.start;
        self.pools[pool].lifecycle[local] = Lifecycle::Retiring;
        if pool == 0 {
            core.accepting[s] = false;
        } else {
            self.inner.open[s] = false;
        }
        self.pools[pool].record(now, s, ScaleEventKind::RetireStart);
        core.shards[s].tick(now);
        let waiting: Vec<usize> = core.shards[s].queue.drain(..).collect();
        let mut touched = Vec::new();
        for r in waiting {
            let s2 = if pool == 0 {
                core.route_request(r, now)
            } else {
                let mask = self.inner.decode_mask(core);
                if mask.iter().any(|&m| m) {
                    core.route_request_into(r, now, &mask, &mut self.inner.rr_decode)
                } else {
                    core.kv_warm[r] = false;
                    core.route_request(r, now)
                }
            };
            if !touched.contains(&s2) {
                touched.push(s2);
            }
        }
        for s2 in touched {
            core.start_iteration(s2, now);
        }
        self.maybe_finish_retire(core, pool, s, now);
    }

    fn maybe_finish_retire(&mut self, core: &mut DecodeCore<'_>, pool: usize, s: usize, now: f64) {
        let p = &mut self.pools[pool];
        let local = s - p.range.start;
        if p.lifecycle[local] == Lifecycle::Retiring
            && !core.shards[s].stepping
            && core.shards[s].resident.is_empty()
            && core.shards[s].queue.is_empty()
        {
            p.lifecycle[local] = Lifecycle::Off;
            p.on_count -= 1;
            p.shard_seconds += now - p.on_since[local];
            p.record(now, s, ScaleEventKind::Retired);
        }
    }

    /// Pool-local busy time actually elapsed by `t` (launch-time charges
    /// clipped, as in the decode autoscaler).
    fn busy_elapsed(&self, core: &DecodeCore<'_>, pool: usize, t: f64) -> f64 {
        core.shards[self.pools[pool].range.clone()]
            .iter()
            .map(|sh| {
                sh.busy_time_s
                    - if sh.stepping {
                        (sh.busy_until_s - t).max(0.0)
                    } else {
                        0.0
                    }
            })
            .sum()
    }

    fn evaluate_pool(&mut self, core: &mut DecodeCore<'_>, pool: usize, now: f64) {
        let range = self.pools[pool].range.clone();
        let staying = self.pools[pool].staying();
        let routable = if pool == 0 {
            core.accepting[range.clone()].iter().filter(|&&a| a).count()
        } else {
            range
                .clone()
                .filter(|&s| self.inner.open[s] && !core.dead[s])
                .count()
        };
        let obs = Observation {
            staying,
            waiting: core.shards[range.clone()]
                .iter()
                .map(|sh| sh.queue.len() + sh.resident.len())
                .sum(),
            accepting: routable,
            paid: self.pools[pool].on_count,
            busy_elapsed: self.busy_elapsed(core, pool, now),
            // The decode pool's offered load is the handoff stream, not
            // the trace arrivals.
            arrivals: if pool == 0 {
                core.arrivals_seen
            } else {
                self.inner.transfers
            },
        };
        let desired = self.pools[pool]
            .engine
            .desired(now, &obs)
            .clamp(self.pools[pool].min_shards, range.len());
        if desired == staying {
            return;
        }
        if self.pools[pool].is_feedback
            && now - self.pools[pool].last_action_s < self.cfg.cooldown_s
        {
            return;
        }
        let mut acted = false;
        if desired > staying {
            let mut need = desired - staying;
            for s in range.clone().rev() {
                if need == 0 {
                    break;
                }
                let local = s - range.start;
                if self.pools[pool].lifecycle[local] == Lifecycle::Retiring {
                    self.pools[pool].lifecycle[local] = Lifecycle::Active;
                    self.pools[pool].record(now, s, ScaleEventKind::Join);
                    self.open_shard(core, pool, s);
                    need -= 1;
                    acted = true;
                }
            }
            for s in range.clone() {
                if need == 0 {
                    break;
                }
                if self.pools[pool].lifecycle[s - range.start] == Lifecycle::Off {
                    self.launch(core, pool, s, now);
                    need -= 1;
                    acted = true;
                }
            }
        } else {
            let mut staying_now = staying;
            for s in range.clone().rev() {
                if staying_now == desired {
                    break;
                }
                let local = s - range.start;
                let still_routable = if pool == 0 {
                    core.accepting[range.clone()].iter().filter(|&&a| a).count() > 1
                } else {
                    range
                        .clone()
                        .filter(|&i| self.inner.open[i] && !core.dead[i])
                        .count()
                        > 1
                };
                if self.pools[pool].lifecycle[local] == Lifecycle::Active && still_routable {
                    self.retire(core, pool, s, now);
                    staying_now -= 1;
                    acted = true;
                }
            }
        }
        if acted {
            self.pools[pool].last_action_s = now;
        }
    }
}

impl DecodeController for DisaggAutoscaler<'_> {
    fn on_arrival(&mut self, core: &mut DecodeCore<'_>, r: usize, now: f64) {
        self.inner.on_arrival(core, r, now);
    }

    fn on_control(&mut self, core: &mut DecodeCore<'_>, now: f64) {
        // Finish due warm-ups so a shard can join and receive work
        // decided at the same tick.
        for pool in 0..2 {
            let range = self.pools[pool].range.clone();
            for s in range {
                let local = s - self.pools[pool].range.start;
                if let Lifecycle::Warming { ready_s } = self.pools[pool].lifecycle[local] {
                    if ready_s <= now {
                        self.pools[pool].lifecycle[local] = Lifecycle::Active;
                        self.pools[pool].record(now, s, ScaleEventKind::Join);
                        self.open_shard(core, pool, s);
                    }
                }
            }
        }
        self.inner.on_control(core, now);
        if self.done_ticking || now + 1e-9 < self.next_eval_s {
            return;
        }
        if core.completed() + core.abandoned == core.trace.len() {
            self.done_ticking = true;
            return;
        }
        self.evaluate_pool(core, 0, now);
        self.evaluate_pool(core, 1, now);
        self.next_eval_s = now + self.cfg.eval_interval_s;
        core.schedule_control(self.next_eval_s);
    }

    fn after_step(&mut self, core: &mut DecodeCore<'_>, shard: usize, now: f64) {
        self.inner.after_step(core, shard, now);
        let pool = usize::from(shard >= self.pools[1].range.start);
        self.maybe_finish_retire(core, pool, shard, now);
    }

    fn on_shard_up(&mut self, core: &mut DecodeCore<'_>, shard: usize, now: f64) {
        self.inner.on_shard_up(core, shard, now);
    }
}

/// [`simulate_disaggregated`] with runtime pool membership: each pool
/// scales independently through the shared [`ScalePolicy`] semantics —
/// the prefill pool against trace arrivals and its own backlog, the
/// decode pool against the handoff stream. Scale-down drains (residents
/// finish in place; the waiting queue moves to pool survivors).
///
/// Pinning BOTH pools (`min == initial == pool size`,
/// [`ScalePolicy::Pinned`]) schedules no evaluation ticks at all, so the
/// run reproduces [`simulate_disaggregated`] bit-for-bit.
///
/// # Panics
///
/// Panics on the [`simulate_disaggregated`] input errors or a malformed
/// [`DisaggAutoscaleConfig`], and asserts conservation (every request
/// completes).
#[allow(clippy::too_many_arguments)]
pub fn simulate_disagg_autoscale(
    prefill_shards: &[AcceleratorDesign],
    decode_shards: &[AcceleratorDesign],
    trace: &[DecodeRequest],
    prefixes: &[Option<PrefixGroup>],
    policy: SchedulingPolicy,
    dispatch: DispatchPolicy,
    scheduler: DecodeScheduler,
    cfg: &DecodeConfig,
    dcfg: &DisaggConfig,
    acfg: &DisaggAutoscaleConfig,
) -> DisaggAutoscaleReport {
    let designs = combined_fleet(prefill_shards, decode_shards, trace, prefixes, dcfg);
    let n_prefill = prefill_shards.len();
    acfg.validate(n_prefill, decode_shards.len());
    let accepting: Vec<bool> = (0..designs.len())
        .map(|s| s < acfg.prefill.initial_shards)
        .collect();
    let mut core = DecodeCore::new(&designs, trace, policy, dispatch, scheduler, cfg, accepting);
    let inner = DisaggController::new(
        designs.len(),
        n_prefill,
        acfg.decode.initial_shards,
        prefixes,
        trace.len(),
        dcfg,
    );
    let pinned = matches!(acfg.prefill.policy, ScalePolicy::Pinned)
        && matches!(acfg.decode.policy, ScalePolicy::Pinned);
    let mut ctl = DisaggAutoscaler::new(inner, acfg, n_prefill, designs.len());
    if pinned {
        // No evaluation ticks: the event stream is simulate_disaggregated's.
        let mut plain = DisaggController::new(
            designs.len(),
            n_prefill,
            acfg.decode.initial_shards,
            prefixes,
            trace.len(),
            dcfg,
        );
        core.run(&mut plain);
        ctl.inner = plain;
    } else {
        core.schedule_control(acfg.eval_interval_s);
        core.run(&mut ctl);
    }
    let decode = core.into_report();
    assert_eq!(
        decode.fleet.completed,
        trace.len(),
        "request never completed (conservation bug in the disagg autoscaler)"
    );
    let makespan = decode.fleet.makespan_s;
    // Close the books on shards still committed at the end of the run.
    let mut totals = [0.0f64; 2];
    for (total, p) in totals.iter_mut().zip(ctl.pools.iter()) {
        *total = p.shard_seconds;
        for local in 0..p.range.len() {
            if p.lifecycle[local] != Lifecycle::Off {
                *total += (makespan - p.on_since[local]).max(0.0);
            }
        }
    }
    let mut scale_events: Vec<ScaleEvent> = ctl.pools[0].events.clone();
    scale_events.extend(ctl.pools[1].events.iter().cloned());
    scale_events.sort_by(|a, b| a.time_s.total_cmp(&b.time_s));
    let [peak_prefill, peak_decode] = [ctl.pools[0].peak_on, ctl.pools[1].peak_on];
    DisaggAutoscaleReport {
        disagg: ctl.inner.into_report(decode),
        prefill_shard_seconds: totals[0],
        decode_shard_seconds: totals[1],
        peak_prefill_shards: peak_prefill,
        peak_decode_shards: peak_decode,
        scale_events,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::homogeneous_fleet;
    use crate::spec::FpgaSpec;
    use lat_model::config::ModelConfig;
    use lat_model::graph::AttentionMode;
    use lat_workloads::datasets::DatasetSpec;
    use lat_workloads::prefix::PrefixProfile;

    fn tiny_design(s_avg: usize) -> AcceleratorDesign {
        AcceleratorDesign::new(
            &ModelConfig::tiny(),
            AttentionMode::paper_sparse(),
            FpgaSpec::alveo_u280(),
            s_avg,
        )
    }

    fn trace(n: usize, rate: f64, seed: u64) -> Vec<DecodeRequest> {
        let spec = DatasetSpec::rte();
        crate::decode::decode_trace(&spec, &spec.decode_output(), 0.0, rate, n, seed)
    }

    fn run(
        n_prefill: usize,
        n_decode: usize,
        trace: &[DecodeRequest],
        prefixes: &[Option<PrefixGroup>],
        dcfg: &DisaggConfig,
    ) -> DisaggReport {
        let fleet = homogeneous_fleet(&tiny_design(64), n_prefill.max(n_decode));
        simulate_disaggregated(
            &fleet[..n_prefill],
            &fleet[..n_decode],
            trace,
            prefixes,
            SchedulingPolicy::LengthAware,
            DispatchPolicy::JoinShortestQueue,
            DecodeScheduler::Continuous,
            &DecodeConfig::default(),
            dcfg,
        )
    }

    fn cheap() -> DisaggConfig {
        DisaggConfig {
            transfer: KvTransfer::Copy {
                base_s: 1e-5,
                per_token_s: 1e-8,
            },
            prefix_cache_capacity: 0,
        }
    }

    #[test]
    fn every_request_completes_and_multi_token_requests_transfer_once() {
        let t = trace(24, 300.0, 5);
        let r = run(2, 2, &t, &[], &cheap());
        assert_eq!(r.decode.fleet.completed, 24);
        assert_eq!(
            r.decode.generated_tokens,
            t.iter().map(|q| q.output_len as u64).sum::<u64>()
        );
        let multi = t.iter().filter(|q| q.output_len > 1).count();
        assert_eq!(r.transfers, multi, "one handoff per multi-token request");
        assert!(r.transfer_time_s > 0.0);
        // Prefill iterations stay in the prefill pool; completions of
        // handed-off requests land in the decode pool.
        assert!(r.decode_pool.completed >= multi);
        assert!(r.transferred_tokens >= multi as u64);
    }

    #[test]
    fn infinite_transfer_never_hands_off() {
        let t = trace(12, 200.0, 9);
        let dcfg = DisaggConfig {
            transfer: KvTransfer::Copy {
                base_s: f64::INFINITY,
                per_token_s: 0.0,
            },
            prefix_cache_capacity: 0,
        };
        let r = run(2, 2, &t, &[], &dcfg);
        assert_eq!(r.transfers, 0);
        assert_eq!(r.transfer_time_s, 0.0);
        assert_eq!(r.decode_pool.iterations, 0, "decode pool never stepped");
        assert_eq!(r.decode.fleet.completed, 12);
    }

    #[test]
    fn reprefill_transfer_pays_re_prefills_instead_of_wire_time() {
        let t = trace(10, 250.0, 13);
        let dcfg = DisaggConfig {
            transfer: KvTransfer::Reprefill,
            prefix_cache_capacity: 0,
        };
        let r = run(1, 1, &t, &[], &dcfg);
        assert_eq!(r.decode.fleet.completed, 10);
        assert_eq!(r.transfer_time_s, 0.0, "re-prefill moves no KV bytes");
        let multi = t.iter().filter(|q| q.output_len > 1).count();
        assert_eq!(r.transfers, multi);
        // Every handed-off request re-prefilled on the decode shard.
        let re_prefills: u32 = r.decode.requests.iter().map(|q| q.re_prefills).sum();
        assert_eq!(re_prefills as usize, multi);
        // The KV-copy variant never re-prefills.
        let copy = run(1, 1, &t, &[], &cheap());
        assert_eq!(
            copy.decode
                .requests
                .iter()
                .map(|q| q.re_prefills)
                .sum::<u32>(),
            0
        );
    }

    #[test]
    fn prefix_cache_hits_save_tokens_and_speed_up_prefill() {
        let t = trace(40, 400.0, 21);
        let profile = PrefixProfile {
            num_groups: 2,
            prefix_len: 48,
            grouped_fraction: 1.0,
        };
        let prefixes = profile.assign(t.len(), 21);
        let mut dcfg = cheap();
        dcfg.prefix_cache_capacity = 2;
        let cached = run(2, 2, &t, &prefixes, &dcfg);
        let uncached = run(2, 2, &t, &[], &cheap());
        assert!(cached.prefix.hits >= 30, "2 groups, 40 grouped requests");
        assert_eq!(cached.prefix.misses, 2, "one cold miss per group");
        assert_eq!(cached.prefix.evictions, 0);
        assert!(cached.prefix.tokens_saved > 0);
        assert_eq!(cached.decode.fleet.completed, 40);
        // Skipping cached prefixes strictly reduces prefill work, so the
        // run can only get faster.
        assert!(cached.decode.fleet.makespan_s < uncached.decode.fleet.makespan_s);
        assert!(cached.decode.ttft_p95_s <= uncached.decode.ttft_p95_s);
    }

    #[test]
    fn zero_capacity_cache_is_bit_identical_to_no_cache() {
        let t = trace(20, 300.0, 33);
        let profile = PrefixProfile {
            num_groups: 3,
            prefix_len: 32,
            grouped_fraction: 0.8,
        };
        let prefixes = profile.assign(t.len(), 33);
        let mut dcfg = cheap();
        dcfg.prefix_cache_capacity = 0;
        let with_groups = run(2, 1, &t, &prefixes, &dcfg);
        let without = run(2, 1, &t, &[], &cheap());
        assert_eq!(with_groups.decode, without.decode);
        assert_eq!(with_groups.transfers, without.transfers);
        assert_eq!(with_groups.prefix.hits, 0);
        assert_eq!(with_groups.prefix.tokens_saved, 0);
    }

    #[test]
    fn deterministic_for_identical_inputs() {
        let t = trace(30, 500.0, 42);
        let profile = PrefixProfile {
            num_groups: 4,
            prefix_len: 24,
            grouped_fraction: 0.6,
        };
        let prefixes = profile.assign(t.len(), 42);
        let mut dcfg = cheap();
        dcfg.prefix_cache_capacity = 2;
        let go = || run(2, 2, &t, &prefixes, &dcfg);
        assert_eq!(go(), go());
    }

    #[test]
    fn streaming_mode_matches_exact_counters() {
        let t = trace(25, 350.0, 7);
        let fleet = homogeneous_fleet(&tiny_design(64), 2);
        let go = |mode| {
            simulate_disaggregated_mode(
                &fleet,
                &fleet,
                &t,
                &[],
                SchedulingPolicy::LengthAware,
                DispatchPolicy::JoinShortestQueue,
                DecodeScheduler::Continuous,
                &DecodeConfig::default(),
                &cheap(),
                mode,
            )
        };
        let exact = go(ReportMode::Exact);
        let streaming = go(ReportMode::Streaming);
        assert_eq!(
            streaming.decode.fleet.completed,
            exact.decode.fleet.completed
        );
        assert_eq!(
            streaming.decode.generated_tokens,
            exact.decode.generated_tokens
        );
        assert_eq!(streaming.transfers, exact.transfers);
        assert_eq!(streaming.transfer_time_s, exact.transfer_time_s);
        assert_eq!(
            streaming.decode.fleet.makespan_s,
            exact.decode.fleet.makespan_s
        );
        assert!(streaming.decode.requests.is_empty());
        assert!(streaming.decode.fleet.batch_log.is_empty());
    }

    #[test]
    fn pinned_pools_reproduce_plain_disagg_bit_for_bit() {
        let t = trace(18, 280.0, 17);
        let fleet = homogeneous_fleet(&tiny_design(64), 2);
        let dcfg = cheap();
        let plain = simulate_disaggregated(
            &fleet,
            &fleet,
            &t,
            &[],
            SchedulingPolicy::LengthAware,
            DispatchPolicy::JoinShortestQueue,
            DecodeScheduler::Continuous,
            &DecodeConfig::default(),
            &dcfg,
        );
        let acfg = DisaggAutoscaleConfig {
            prefill: PoolPolicy::pinned(2),
            decode: PoolPolicy::pinned(2),
            ..DisaggAutoscaleConfig::default()
        };
        let scaled = simulate_disagg_autoscale(
            &fleet,
            &fleet,
            &t,
            &[],
            SchedulingPolicy::LengthAware,
            DispatchPolicy::JoinShortestQueue,
            DecodeScheduler::Continuous,
            &DecodeConfig::default(),
            &dcfg,
            &acfg,
        );
        assert_eq!(scaled.disagg, plain);
        assert!(scaled.scale_events.is_empty());
        assert_eq!(scaled.peak_prefill_shards, 2);
        assert_eq!(scaled.peak_decode_shards, 2);
    }

    #[test]
    fn reactive_decode_pool_scales_up_under_handoff_pressure() {
        let t = trace(200, 600.0, 3);
        let fleet = homogeneous_fleet(&tiny_design(64), 3);
        let acfg = DisaggAutoscaleConfig {
            prefill: PoolPolicy::pinned(1),
            decode: PoolPolicy {
                min_shards: 1,
                initial_shards: 1,
                policy: ScalePolicy::Reactive {
                    scale_up_depth: 0.5,
                    scale_down_depth: 0.0,
                },
            },
            eval_interval_s: 0.005,
            warmup_s: 0.002,
            cooldown_s: 0.0,
        };
        let r = simulate_disagg_autoscale(
            &fleet[..1],
            &fleet,
            &t,
            &[],
            SchedulingPolicy::LengthAware,
            DispatchPolicy::JoinShortestQueue,
            DecodeScheduler::Continuous,
            &DecodeConfig::default(),
            &cheap(),
            &acfg,
        );
        assert_eq!(r.disagg.decode.fleet.completed, 200);
        assert!(
            r.peak_decode_shards > 1,
            "handoff backlog never triggered decode-pool scale-up"
        );
        assert!(r
            .scale_events
            .iter()
            .any(|e| e.kind == ScaleEventKind::Launch));
        assert!(r.decode_shard_seconds > 0.0 && r.prefill_shard_seconds > 0.0);
    }
}
