//! HBM pseudo-channel model (Fig. 2(a): "HBM (PC0-31)").
//!
//! The Alveo U280 exposes its two HBM stacks as 32 pseudo-channels of
//! ~14.4 GB/s each (460 GB/s aggregate). A kernel only reaches the
//! aggregate figure if its buffers are spread across many channels; this
//! module models per-channel bandwidth, round-robin buffer placement and
//! the resulting transfer makespans, which the design's inter-stage
//! buffering relies on (§4.1 stores top-k results back to HBM across
//! channels).

use serde::{Deserialize, Serialize};

/// The HBM subsystem: pseudo-channel count and per-channel bandwidth.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HbmModel {
    /// Number of pseudo-channels (32 on the U280).
    pub channels: u32,
    /// Bytes per clock cycle each channel sustains.
    pub bytes_per_cycle_per_channel: f64,
}

impl HbmModel {
    /// The U280 HBM at a 200 MHz kernel clock: 460 GB/s aggregate over 32
    /// pseudo-channels ⇒ 2300 B/cycle total, 71.875 B/cycle per channel.
    pub fn u280() -> Self {
        Self {
            channels: 32,
            bytes_per_cycle_per_channel: 2300.0 / 32.0,
        }
    }

    /// Aggregate bytes per cycle when `used` channels are active.
    ///
    /// # Panics
    ///
    /// Panics if `used == 0` or `used > self.channels`.
    pub fn aggregate_bytes_per_cycle(&self, used: u32) -> f64 {
        assert!(
            used > 0 && used <= self.channels,
            "bad channel count {used}"
        );
        self.bytes_per_cycle_per_channel * used as f64
    }

    /// Cycles to move `bytes` using `used` channels with an ideal split.
    pub fn transfer_cycles(&self, bytes: u64, used: u32) -> u64 {
        if bytes == 0 {
            return 0;
        }
        (bytes as f64 / self.aggregate_bytes_per_cycle(used)).ceil() as u64
    }

    /// Round-robin placement of whole buffers onto channels: buffer `i`
    /// goes to channel `i % channels`. Returns per-channel total bytes.
    pub fn place_round_robin(&self, buffers: &[u64]) -> Vec<u64> {
        let mut per_channel = vec![0u64; self.channels as usize];
        for (i, &b) in buffers.iter().enumerate() {
            per_channel[i % self.channels as usize] += b;
        }
        per_channel
    }

    /// Makespan (cycles) of transferring a set of whole buffers placed
    /// round-robin: the busiest channel bounds the transfer.
    pub fn round_robin_makespan(&self, buffers: &[u64]) -> u64 {
        let per_channel = self.place_round_robin(buffers);
        per_channel
            .into_iter()
            .map(|bytes| (bytes as f64 / self.bytes_per_cycle_per_channel).ceil() as u64)
            .max()
            .unwrap_or(0)
    }

    /// Efficiency of a round-robin placement versus the ideal byte-level
    /// stripe, in `(0, 1]`.
    pub fn round_robin_efficiency(&self, buffers: &[u64]) -> f64 {
        let total: u64 = buffers.iter().sum();
        if total == 0 {
            return 1.0;
        }
        let ideal = self.transfer_cycles(total, self.channels);
        let actual = self.round_robin_makespan(buffers);
        ideal as f64 / actual.max(1) as f64
    }
}

impl Default for HbmModel {
    fn default() -> Self {
        Self::u280()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u280_aggregate_bandwidth() {
        let h = HbmModel::u280();
        assert!((h.aggregate_bytes_per_cycle(32) - 2300.0).abs() < 1e-9);
        assert!((h.aggregate_bytes_per_cycle(1) - 71.875).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "bad channel count")]
    fn zero_channels_rejected() {
        let _ = HbmModel::u280().aggregate_bytes_per_cycle(0);
    }

    #[test]
    fn single_channel_is_32x_slower() {
        let h = HbmModel::u280();
        let full = h.transfer_cycles(2_300_000, 32);
        let single = h.transfer_cycles(2_300_000, 1);
        assert_eq!(full, 1000);
        assert_eq!(single, 32_000);
    }

    #[test]
    fn round_robin_places_cyclically() {
        let h = HbmModel {
            channels: 4,
            bytes_per_cycle_per_channel: 10.0,
        };
        let per = h.place_round_robin(&[1, 2, 3, 4, 5]);
        assert_eq!(per, vec![1 + 5, 2, 3, 4]);
    }

    #[test]
    fn balanced_buffers_reach_full_efficiency() {
        let h = HbmModel::u280();
        let buffers = vec![71_875u64; 32]; // one equal buffer per channel
        assert!((h.round_robin_efficiency(&buffers) - 1.0).abs() < 1e-3);
    }

    #[test]
    fn one_giant_buffer_is_inefficient() {
        // A single unsplit buffer uses one channel only: ~1/32 efficiency.
        let h = HbmModel::u280();
        let eff = h.round_robin_efficiency(&[10_000_000]);
        assert!(eff < 0.05, "efficiency {eff}");
    }

    #[test]
    fn makespan_bounded_by_busiest_channel() {
        let h = HbmModel {
            channels: 2,
            bytes_per_cycle_per_channel: 100.0,
        };
        // Channel 0 gets 1000+3000, channel 1 gets 2000.
        assert_eq!(h.round_robin_makespan(&[1000, 2000, 3000]), 40);
    }

    #[test]
    fn zero_bytes_zero_cycles() {
        let h = HbmModel::u280();
        assert_eq!(h.transfer_cycles(0, 32), 0);
        assert_eq!(h.round_robin_makespan(&[]), 0);
        assert_eq!(h.round_robin_efficiency(&[]), 1.0);
    }
}
