//! The assembled accelerator design: stage allocation × chip spec × model.
//!
//! `AcceleratorDesign` is the simulator's top level. Construction runs
//! Algorithm 1 (via `lat-core`) at the workload's average sequence length
//! and balances the chip's DSP lanes across operators; `run_batch` then
//! schedules a concrete batch through the coarse pipeline and reports
//! throughput, utilization and energy.
//!
//! ## Timing model
//!
//! Per stage and sequence, the simulator charges
//! `max(compute_cycles, memory_cycles)` — computation and HBM traffic are
//! overlapped by the double buffers and prefetching of §4.1, so the slower
//! of the two bounds the stage.
//!
//! - *Compute*: the Algorithm-1 stage latency (slowest operator at its
//!   allocated parallelism; LUT pre-selection fabric modeled separately).
//! - *Memory*: weights streamed from HBM once per layer and amortized over
//!   the batch, activations in/out of the stage, and the top-k index/value
//!   spill between Stage 1 and Stage 2.

use crate::report::FpgaRunReport;
use crate::spec::FpgaSpec;
use lat_core::pipeline::{schedule_batch, Schedule, SchedulingPolicy, StageTiming};
use lat_core::stage_alloc::{allocate_stages, ResourceModel, StageAllocation};
use lat_model::config::ModelConfig;
use lat_model::graph::{AttentionMode, OpKind, OperatorGraph};

/// A fully-placed accelerator design for one model configuration.
#[derive(Debug, Clone)]
pub struct AcceleratorDesign {
    cfg: ModelConfig,
    mode: AttentionMode,
    spec: FpgaSpec,
    graph: OperatorGraph,
    alloc: StageAllocation,
    s_avg: usize,
}

impl AcceleratorDesign {
    /// Builds the design: operator graph → Algorithm 1 stage allocation at
    /// `s_avg` → proportional DSP balancing to the full chip.
    pub fn new(cfg: &ModelConfig, mode: AttentionMode, spec: FpgaSpec, s_avg: usize) -> Self {
        Self::with_modes(cfg, mode, mode, spec, s_avg)
    }

    /// Builds a design whose *silicon* (stage allocation and parallelism)
    /// is sized for `alloc_mode` but which *executes* `run_mode`.
    ///
    /// This models ablations like "the same chip as the sparse co-design,
    /// forced to run dense attention" (the Fig. 7b FPGA baseline: dense
    /// `O(n²)` scores pushed through attention units sized for `O(n·k)`).
    pub fn with_modes(
        cfg: &ModelConfig,
        run_mode: AttentionMode,
        alloc_mode: AttentionMode,
        spec: FpgaSpec,
        s_avg: usize,
    ) -> Self {
        let res = ResourceModel {
            dsp_total: spec.dsp_total,
            ..ResourceModel::default()
        };
        Self::with_resources(cfg, run_mode, alloc_mode, spec, s_avg, res)
    }

    /// Fully-parameterized constructor: explicit [`ResourceModel`] for
    /// design-space exploration (PE granularity, per-stage budgets, …).
    pub fn with_resources(
        cfg: &ModelConfig,
        run_mode: AttentionMode,
        alloc_mode: AttentionMode,
        spec: FpgaSpec,
        s_avg: usize,
        res: ResourceModel,
    ) -> Self {
        let graph = OperatorGraph::encoder(cfg);
        let mut alloc = allocate_stages(&graph, s_avg, alloc_mode, res);
        alloc.balance_to_budget(&graph, s_avg, alloc_mode);
        Self {
            cfg: cfg.clone(),
            mode: run_mode,
            spec,
            graph,
            alloc,
            s_avg,
        }
    }

    /// The model configuration this design was built for.
    pub fn config(&self) -> &ModelConfig {
        &self.cfg
    }

    /// The attention mode (dense baseline vs the paper's sparse design).
    pub fn mode(&self) -> AttentionMode {
        self.mode
    }

    /// The stage allocation in use.
    pub fn allocation(&self) -> &StageAllocation {
        &self.alloc
    }

    /// The chip specification.
    pub fn spec(&self) -> &FpgaSpec {
        &self.spec
    }

    /// The average sequence length the allocation was tuned for.
    pub fn tuned_length(&self) -> usize {
        self.s_avg
    }

    /// Compute cycles of stage `stage` for one sequence of `len` tokens.
    pub fn stage_compute_cycles(&self, stage: usize, len: usize) -> u64 {
        self.alloc.stages()[stage].latency_cycles(
            &self.graph,
            len,
            self.mode,
            self.alloc.resource_model(),
        )
    }

    /// Compute cycles attributable to the self-attention operators only
    /// (for the Fig. 7b attention-throughput comparison).
    ///
    /// Measurement protocol: during an attention-only run the non-attention
    /// operators of a stage are idle, so the attention units are replicated
    /// (`R(G_k)` of §4.2) to use the stage's full DSP allocation; the LUT
    /// pre-selection fabric and elementwise units keep their fixed
    /// parallelism.
    pub fn stage_attention_cycles(&self, stage: usize, len: usize) -> u64 {
        let st = &self.alloc.stages()[stage];
        let res = self.alloc.resource_model();
        // DSP lanes the attention operators own within this stage.
        let attn_dsp: u32 = st
            .ops
            .iter()
            .zip(&st.parallelism)
            .filter(|(k, _)| {
                k.is_attention() && lat_core::stage_alloc::ResourceModel::uses_dsp(**k)
            })
            .map(|(_, &n)| n * res.dsp_per_instance)
            .sum();
        let replication = st.dsp.checked_div(attn_dsp).unwrap_or(1).max(1);
        st.ops
            .iter()
            .zip(&st.parallelism)
            .filter(|(k, _)| k.is_attention())
            .map(|(&kind, &n)| {
                let single = lat_core::stage_alloc::Stage {
                    ops: vec![kind],
                    parallelism: vec![n * replication],
                    dsp: 0,
                };
                single.latency_cycles(&self.graph, len, self.mode, res)
            })
            .max()
            .unwrap_or(0)
    }

    /// HBM cycles of stage `stage` for one sequence of `len` tokens, with
    /// weights amortized over `batch` sequences.
    pub fn stage_memory_cycles(&self, stage: usize, len: usize, batch: usize) -> u64 {
        let d = self.cfg.hidden_dim as u64;
        let f = self.cfg.ffn_dim as u64;
        let st = &self.alloc.stages()[stage];
        let mut bytes = 0u64;
        // Weight streaming (8-bit weights), once per layer, shared by batch.
        let mut weight_bytes = 0u64;
        for &kind in &st.ops {
            weight_bytes += match kind {
                OpKind::QkvLinear => 3 * d * d,
                OpKind::OutLinear => d * d,
                OpKind::Ffn1 => d * f,
                OpKind::Ffn2 => f * d,
                _ => 0,
            };
        }
        bytes += weight_bytes / batch.max(1) as u64;
        // Activations in and out of the stage (8-bit).
        bytes += 2 * len as u64 * d;
        // Top-k spill to / reload from HBM (index u16 + value u16 per pair).
        let k = self.mode.attended(len) as u64;
        let has_scores = st.ops.contains(&OpKind::AttnScores);
        let has_apply = st.ops.contains(&OpKind::AttnApply);
        if matches!(self.mode, AttentionMode::Sparse { .. }) && (has_scores || has_apply) {
            bytes += len as u64 * k * 4;
        }
        crate::kernels::hbm_transfer_cycles(bytes, self.spec.hbm_bytes_per_cycle())
    }

    /// Full stage time: compute and memory overlap, slower one wins.
    pub fn stage_cycles(&self, stage: usize, len: usize, batch: usize) -> u64 {
        self.stage_compute_cycles(stage, len)
            .max(self.stage_memory_cycles(stage, len, batch))
    }

    /// Per-operator latency breakdown of every stage at sequence length
    /// `len` — which unit actually bounds each stage, and by how much.
    pub fn latency_breakdown(&self, len: usize, batch: usize) -> Vec<StageBreakdown> {
        let res = self.alloc.resource_model();
        self.alloc
            .stages()
            .iter()
            .enumerate()
            .map(|(stage, st)| {
                let ops = st
                    .ops
                    .iter()
                    .zip(&st.parallelism)
                    .map(|(&kind, &n)| {
                        let single = lat_core::stage_alloc::Stage {
                            ops: vec![kind],
                            parallelism: vec![n],
                            dsp: 0,
                        };
                        let cycles = single.latency_cycles(&self.graph, len, self.mode, res);
                        OpLatency {
                            kind,
                            parallelism: n,
                            cycles,
                        }
                    })
                    .collect();
                StageBreakdown {
                    stage,
                    ops,
                    compute_cycles: self.stage_compute_cycles(stage, len),
                    memory_cycles: self.stage_memory_cycles(stage, len, batch),
                }
            })
            .collect()
    }

    /// A [`StageTiming`] view of this design for external schedulers
    /// (e.g. release-time scheduling), with weight traffic amortized over
    /// `batch` sequences.
    pub fn timing(&self, batch: usize) -> impl StageTiming + '_ {
        DesignTiming {
            design: self,
            batch,
            attention_only: false,
        }
    }

    /// Schedules `lengths` through the design under `policy` and returns
    /// the raw schedule (cycle-level).
    pub fn schedule(&self, lengths: &[usize], policy: SchedulingPolicy) -> Schedule {
        let timing = DesignTiming {
            design: self,
            batch: lengths.len(),
            attention_only: false,
        };
        schedule_batch(lengths, self.cfg.layers, &timing, policy)
    }

    /// Simulates a batch end-to-end and reports throughput/energy.
    pub fn run_batch(&self, lengths: &[usize], policy: SchedulingPolicy) -> FpgaRunReport {
        let schedule = self.schedule(lengths, policy);
        self.report_from_schedule(lengths, policy, &schedule)
    }

    /// Simulates only the self-attention portion of the workload — the
    /// Fig. 7b measurement (attention operators at their allocated
    /// parallelism, same pipeline structure).
    pub fn run_batch_attention_only(
        &self,
        lengths: &[usize],
        policy: SchedulingPolicy,
    ) -> FpgaRunReport {
        let timing = DesignTiming {
            design: self,
            batch: lengths.len(),
            attention_only: true,
        };
        let schedule = schedule_batch(lengths, self.cfg.layers, &timing, policy);
        let mut report = self.report_from_schedule(lengths, policy, &schedule);
        // Ops accounting restricted to attention operators.
        let layers = self.cfg.layers as u64;
        report.actual_ops = lengths
            .iter()
            .map(|&l| self.graph.attention_flops(l, self.mode))
            .sum::<u64>()
            * layers;
        let max_len = lengths.iter().copied().max().unwrap_or(0);
        report.padded_dense_ops = self.graph.attention_flops(max_len, AttentionMode::Dense)
            * lengths.len() as u64
            * layers;
        report
    }

    fn report_from_schedule(
        &self,
        lengths: &[usize],
        policy: SchedulingPolicy,
        schedule: &Schedule,
    ) -> FpgaRunReport {
        let seconds = self.spec.cycles_to_seconds(schedule.makespan());
        let layers = self.cfg.layers as u64;
        let actual_ops = lengths
            .iter()
            .map(|&l| self.graph.total_flops(l, self.mode))
            .sum::<u64>()
            * layers;
        let max_len = lengths.iter().copied().max().unwrap_or(0);
        let padded_dense_ops =
            self.graph.total_flops_dense(max_len) * lengths.len() as u64 * layers;
        let stage_utilization: Vec<f64> = (0..schedule.num_stages())
            .map(|k| schedule.utilization(k))
            .collect();
        let mean_util = if stage_utilization.is_empty() {
            0.0
        } else {
            stage_utilization.iter().sum::<f64>() / stage_utilization.len() as f64
        };
        let active_dsp = (self.alloc.total_dsp() as f64 * mean_util) as u32;
        let energy_j = self.spec.power_w(active_dsp) * seconds;
        FpgaRunReport {
            policy: policy.to_string(),
            makespan_cycles: schedule.makespan(),
            seconds,
            sequences: lengths.len(),
            tokens: lengths.iter().map(|&l| l as u64).sum(),
            actual_ops,
            padded_dense_ops,
            stage_utilization,
            energy_j,
        }
    }
}

/// Latency contribution of one operator inside a stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpLatency {
    /// The operator.
    pub kind: OpKind,
    /// Its allocated parallelism `N(v)`.
    pub parallelism: u32,
    /// Its standalone cycle count at the probed length.
    pub cycles: u64,
}

/// Per-stage latency breakdown (see
/// [`AcceleratorDesign::latency_breakdown`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageBreakdown {
    /// Stage index.
    pub stage: usize,
    /// Per-operator contributions.
    pub ops: Vec<OpLatency>,
    /// The stage's compute bound (max over operators).
    pub compute_cycles: u64,
    /// The stage's HBM bound.
    pub memory_cycles: u64,
}

impl StageBreakdown {
    /// The operator that bounds this stage's compute time.
    pub fn bottleneck_op(&self) -> Option<&OpLatency> {
        self.ops.iter().max_by_key(|o| o.cycles)
    }
}

/// Adapter exposing the design's stage times to the `lat-core` scheduler.
struct DesignTiming<'a> {
    design: &'a AcceleratorDesign,
    batch: usize,
    attention_only: bool,
}

impl StageTiming for DesignTiming<'_> {
    fn num_stages(&self) -> usize {
        self.design.alloc.num_stages()
    }

    fn stage_cycles(&self, stage: usize, len: usize) -> u64 {
        if self.attention_only {
            self.design.stage_attention_cycles(stage, len)
        } else {
            self.design.stage_cycles(stage, len, self.batch)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_design() -> AcceleratorDesign {
        AcceleratorDesign::new(
            &ModelConfig::bert_base(),
            AttentionMode::paper_sparse(),
            FpgaSpec::alveo_u280(),
            177,
        )
    }

    fn baseline_design() -> AcceleratorDesign {
        AcceleratorDesign::new(
            &ModelConfig::bert_base(),
            AttentionMode::Dense,
            FpgaSpec::alveo_u280(),
            177,
        )
    }

    const FIG5_BATCH: [usize; 5] = [140, 100, 82, 78, 72];

    #[test]
    fn design_uses_most_of_the_chip() {
        let d = paper_design();
        let used = d.allocation().total_dsp();
        assert!(
            used as f64 > 0.9 * d.spec().dsp_total as f64,
            "only {used} DSP"
        );
        assert!(used <= d.spec().dsp_total + 6 * 16);
    }

    #[test]
    fn stage_cycles_monotone_in_length() {
        let d = paper_design();
        for stage in 0..d.allocation().num_stages() {
            assert!(d.stage_cycles(stage, 200, 16) > d.stage_cycles(stage, 50, 16));
        }
    }

    #[test]
    fn memory_amortization_helps() {
        let d = paper_design();
        let small_batch = d.stage_memory_cycles(0, 128, 1);
        let big_batch = d.stage_memory_cycles(0, 128, 16);
        assert!(big_batch < small_batch);
    }

    #[test]
    fn run_batch_produces_consistent_report() {
        let d = paper_design();
        let r = d.run_batch(&FIG5_BATCH, SchedulingPolicy::LengthAware);
        assert_eq!(r.sequences, 5);
        assert_eq!(r.tokens, 140 + 100 + 82 + 78 + 72);
        assert!(r.seconds > 0.0);
        assert!(r.energy_j > 0.0);
        assert!(r
            .stage_utilization
            .iter()
            .all(|&u| (0.0..=1.0).contains(&u)));
        // Equivalent ops exceed actual ops (padding + sparsity credit).
        assert!(r.padded_dense_ops > r.actual_ops);
    }

    #[test]
    fn length_aware_faster_than_padded_on_fpga() {
        let d = paper_design();
        let adaptive = d.run_batch(&FIG5_BATCH, SchedulingPolicy::LengthAware);
        let padded = d.run_batch(&FIG5_BATCH, SchedulingPolicy::PadToMax);
        assert!(adaptive.seconds < padded.seconds);
    }

    #[test]
    fn sparse_design_beats_dense_baseline() {
        // The full co-design (sparse + length-aware) vs the FPGA baseline
        // (dense + padded): the paper reports ~3.1× end-to-end.
        let ours = paper_design();
        let base = baseline_design();
        let batch: Vec<usize> = (0..16).map(|i| 100 + 20 * i).collect();
        let t_ours = ours
            .run_batch(&batch, SchedulingPolicy::LengthAware)
            .seconds;
        let t_base = base.run_batch(&batch, SchedulingPolicy::PadToMax).seconds;
        let speedup = t_base / t_ours;
        assert!(
            speedup > 1.5,
            "co-design speedup over FPGA baseline only {speedup:.2}"
        );
    }

    #[test]
    fn attention_only_run_is_faster_than_full() {
        let d = paper_design();
        let full = d.run_batch(&FIG5_BATCH, SchedulingPolicy::LengthAware);
        let attn = d.run_batch_attention_only(&FIG5_BATCH, SchedulingPolicy::LengthAware);
        assert!(attn.seconds < full.seconds);
        assert!(attn.actual_ops < full.actual_ops);
    }

    #[test]
    fn equivalent_throughput_in_plausible_band() {
        // The paper reports ≈3.6 TOPS equivalent on high-padding workloads.
        // SQuAD-like batch: avg ≈177, max ≈821.
        let d = paper_design();
        let batch = [
            821, 400, 250, 200, 180, 170, 160, 150, 140, 130, 120, 110, 100, 90, 80, 70,
        ];
        let r = d.run_batch(&batch, SchedulingPolicy::LengthAware);
        let teq = r.equivalent_gops() / 1000.0;
        assert!(
            (1.0..10.0).contains(&teq),
            "equivalent throughput {teq:.2} TOPS out of band"
        );
    }

    #[test]
    fn energy_efficiency_band() {
        let d = paper_design();
        let batch = [
            821, 400, 250, 200, 180, 170, 160, 150, 140, 130, 120, 110, 100, 90, 80, 70,
        ];
        let r = d.run_batch(&batch, SchedulingPolicy::LengthAware);
        let eff = r.equivalent_gop_per_j();
        assert!((30.0..300.0).contains(&eff), "GOP/J {eff:.1} out of band");
    }

    #[test]
    fn latency_breakdown_consistent_with_stage_cycles() {
        let d = paper_design();
        let breakdown = d.latency_breakdown(177, 16);
        assert_eq!(breakdown.len(), d.allocation().num_stages());
        for b in &breakdown {
            // The stage's compute bound equals its slowest operator.
            let max_op = b.bottleneck_op().expect("non-empty stage").cycles;
            assert_eq!(b.compute_cycles, max_op, "stage {}", b.stage);
            assert_eq!(b.compute_cycles, d.stage_compute_cycles(b.stage, 177));
            assert_eq!(b.memory_cycles, d.stage_memory_cycles(b.stage, 177, 16));
            // Every operator appears with its allocated parallelism.
            let expect_ops = &d.allocation().stages()[b.stage].ops;
            assert_eq!(b.ops.len(), expect_ops.len());
        }
    }

    #[test]
    fn tiny_model_also_simulates() {
        let d = AcceleratorDesign::new(
            &ModelConfig::tiny(),
            AttentionMode::paper_sparse(),
            FpgaSpec::alveo_u280(),
            64,
        );
        let r = d.run_batch(&[64, 32, 16], SchedulingPolicy::LengthAware);
        assert!(r.seconds > 0.0);
    }
}
