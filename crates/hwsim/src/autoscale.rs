//! Runtime autoscaling over the fleet engine: shard join/retire driven by
//! pluggable policies under nonstationary load.
//!
//! The encoder fleet ([`crate::fleet`]) and decode engine
//! ([`crate::decode`]) simulate a *fixed* shard count, which wastes
//! shard-seconds in the trough of a diurnal load curve and blows latency
//! SLOs at its peak. This module drives the same event-driven core
//! (`FleetCore`) with a controller that changes fleet
//! membership at runtime:
//!
//! - [`ScalePolicy::Pinned`] — never scales; with `min == max` shards this
//!   reproduces [`simulate_fleet`](crate::fleet::simulate_fleet) **bit-for-bit** (it is literally the
//!   same code path), which `tests/autoscale_props.rs` pins.
//! - [`ScalePolicy::Reactive`] — queue-depth threshold with hysteresis:
//!   scale up one shard when mean waiting depth per accepting shard
//!   crosses `scale_up_depth`, down when it falls below
//!   `scale_down_depth`.
//! - [`ScalePolicy::UtilizationTarget`] — hold the fleet's busy fraction
//!   over the last evaluation window inside `[low, high]`.
//! - [`ScalePolicy::Scheduled`] — a time-of-day table of shard counts
//!   (applied at evaluation ticks).
//!
//! **Scale-up** pays a configurable warm-up delay (weight streaming into a
//! cold shard's HBM) before the shard joins dispatch; a warming shard is
//! paid for (shard-seconds) but never admits work. **Scale-down** follows
//! the decode engine's eviction-vs-drain split: [`RetirePolicy::Drain`]
//! stops routing to the shard and lets it finish its queued work before
//! retiring; [`RetirePolicy::Evict`] re-routes the queued (not yet
//! dispatched) requests to the surviving shards immediately — like decode
//! preemption, evicted work loses its place and re-queues, but is never
//! dropped. In both cases an in-flight batch always completes. If load
//! re-spikes while a shard is still draining, scale-up *recalls* it —
//! it rejoins dispatch immediately (weights still resident, no warm-up;
//! the event log shows a bare `Join`) instead of cold-launching a
//! replacement.
//!
//! The [`AutoscaleReport`] extends the [`FleetReport`] with the cost side
//! of the trade: shard-seconds (the cost proxy a deployment bills by), the
//! scaling-event log, SLO attainment overall and per workload phase, and
//! mean/peak active shards — enough to sweep a cost × p95 frontier, which
//! the `ablate_autoscale` bin does under a 4× diurnal swing.
//!
//! ## Predictive scaling
//!
//! The feedback policies only react *after* a backlog forms, so every
//! up-ramp eats a queueing spike plus a warm-up delay before relief
//! arrives. [`ScalePolicy::Predictive`] instead scales on a *forecast*:
//! a [`RateForecaster`] turns the observed arrival stream into a
//! windowed-EWMA rate estimate, optionally sharpened by a least-squares
//! diurnal-harmonic fit at a known period, and the policy provisions
//! `ceil(forecast(now + horizon) / shard_capacity)` shards — launching
//! capacity one warm-up *ahead* of the demand it predicts. The estimator
//! consumes only `(simulation time, cumulative arrivals)` pairs — no wall
//! clock, no RNG — so predictive runs stay bit-reproducible (pinned by
//! the determinism properties in `tests/autoscale_props.rs` and
//! `tests/decode_autoscale_props.rs`).
//!
//! ## Decode autoscaling
//!
//! [`simulate_decode_autoscale`] applies the same policy machinery to the
//! generative-decode engine ([`crate::decode`]), where scale-down is
//! harder: a retiring shard holds *KV-resident* sequences mid-generation,
//! not just queued work. [`DecodeScaleDown::Drain`] lets residents decode
//! to completion while the shard rejects new admissions (its waiting
//! queue re-routes to survivors immediately);
//! [`DecodeScaleDown::Migrate`] additionally evicts the residents at the
//! next iteration boundary and re-routes them, paying one re-prefill of
//! each evicted sequence's *grown* context on re-admission — the decode
//! engine's preemption machinery applied to scale-down. Either way no
//! request is ever dropped, and a pinned `min == max` decode autoscaler
//! reproduces [`crate::decode::simulate_decode`] bit-for-bit (same
//! `DecodeCore` code path, zero control events).
//!
//! # Example
//!
//! The containment pin, runnable: a pinned autoscaler holding the full
//! fleet drives the identical code path as [`simulate_fleet`](crate::fleet::simulate_fleet), so the
//! two reports agree bit-for-bit and the event log stays empty.
//!
//! ```
//! use lat_core::pipeline::SchedulingPolicy;
//! use lat_hwsim::accelerator::AcceleratorDesign;
//! use lat_hwsim::autoscale::{simulate_autoscale, AutoscaleConfig, ScalePolicy};
//! use lat_hwsim::fleet::{
//!     homogeneous_fleet, poisson_trace, simulate_fleet, BatcherConfig, DispatchPolicy,
//! };
//! use lat_hwsim::spec::FpgaSpec;
//! use lat_model::config::ModelConfig;
//! use lat_model::graph::AttentionMode;
//! use lat_workloads::datasets::DatasetSpec;
//!
//! let design = AcceleratorDesign::new(
//!     &ModelConfig::tiny(),
//!     AttentionMode::paper_sparse(),
//!     FpgaSpec::alveo_u280(),
//!     64,
//! );
//! let fleet = homogeneous_fleet(&design, 2);
//! let trace = poisson_trace(&DatasetSpec::rte(), 600.0, 12, 7);
//! let plain = simulate_fleet(
//!     &fleet,
//!     &trace,
//!     SchedulingPolicy::LengthAware,
//!     DispatchPolicy::JoinShortestQueue,
//!     &BatcherConfig::default(),
//! );
//! let pinned = simulate_autoscale(
//!     &fleet,
//!     &trace,
//!     SchedulingPolicy::LengthAware,
//!     DispatchPolicy::JoinShortestQueue,
//!     &BatcherConfig::default(),
//!     &AutoscaleConfig {
//!         min_shards: 2,
//!         initial_shards: 2,
//!         policy: ScalePolicy::Pinned,
//!         ..AutoscaleConfig::default()
//!     },
//! );
//! assert_eq!(pinned.fleet, plain);
//! assert!(pinned.scale_events.is_empty());
//! ```

use crate::accelerator::AcceleratorDesign;
use crate::decode::{
    DecodeConfig, DecodeController, DecodeCore, DecodeReport, DecodeRequest, DecodeScheduler,
    NullDecodeController,
};
use crate::fleet::{
    BatcherConfig, DispatchPolicy, FleetController, FleetCore, FleetReport, NullController, Request,
};
use lat_core::pipeline::SchedulingPolicy;
use lat_tensor::stats::percentile;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One entry of a [`ScalePolicy::Scheduled`] table: hold `shards` shards
/// from `start_s` until the next entry's start.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SchedulePhase {
    /// Time the phase begins, in seconds since simulation start.
    pub start_s: f64,
    /// Shard count to hold during the phase.
    pub shards: usize,
}

/// How the controller decides the target shard count at each evaluation
/// tick.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ScalePolicy {
    /// Never scale: the fleet stays at `initial_shards`. With
    /// `min_shards == max shards` this is [`simulate_fleet`](crate::fleet::simulate_fleet) bit-for-bit.
    Pinned,
    /// Queue-depth threshold with hysteresis: scale up by one shard when
    /// the mean waiting depth per accepting shard exceeds
    /// `scale_up_depth`, down by one when it falls below
    /// `scale_down_depth` (`scale_up_depth > scale_down_depth` — the gap
    /// is the hysteresis band that stops flapping).
    Reactive {
        /// Mean waiting requests per accepting shard that triggers +1.
        scale_up_depth: f64,
        /// Mean waiting requests per accepting shard that triggers −1.
        scale_down_depth: f64,
    },
    /// Hold the fleet's busy fraction over the last evaluation window
    /// inside `[low, high]`: above `high` scale up, below `low` scale
    /// down.
    UtilizationTarget {
        /// Busy fraction below which a shard is retired.
        low: f64,
        /// Busy fraction above which a shard is launched.
        high: f64,
    },
    /// Time-of-day table of shard counts, applied at evaluation ticks;
    /// before the first entry's start the fleet stays at
    /// `initial_shards`.
    Scheduled(Vec<SchedulePhase>),
    /// Model-based scaling on a *forecast* of the arrival rate rather
    /// than the observed backlog: provision
    /// `ceil(forecast(now + horizon_s) / shard_capacity)` shards, where
    /// the forecast comes from a [`RateForecaster`] (windowed EWMA,
    /// optionally a diurnal-harmonic fit at a known period). Not subject
    /// to the cooldown — the whole point is to act *before* the backlog
    /// forms.
    Predictive {
        /// Sustainable per-shard throughput (requests/second) that maps
        /// the forecast rate to a shard count.
        shard_capacity: f64,
        /// Forecast lead time; `warmup_s + eval_interval_s` makes the
        /// launched shard warm exactly when the predicted load lands.
        horizon_s: f64,
        /// EWMA smoothing factor in `(0, 1]` (1 = last window only).
        alpha: f64,
        /// Known diurnal period enabling the harmonic fit; `None` keeps
        /// the estimator a pure EWMA.
        period_s: Option<f64>,
    },
}

impl ScalePolicy {
    /// Panics unless the policy is well-formed for a fleet scaling
    /// between `min_shards` and `max_shards` shards. Shared by the
    /// request-level ([`AutoscaleConfig`]) and decode
    /// ([`DecodeAutoscaleConfig`]) configurations.
    pub(crate) fn validate(&self, min_shards: usize, max_shards: usize) {
        match self {
            ScalePolicy::Pinned => {}
            ScalePolicy::Reactive {
                scale_up_depth,
                scale_down_depth,
            } => assert!(
                scale_up_depth > scale_down_depth && *scale_down_depth >= 0.0,
                "reactive thresholds need scale_up_depth > scale_down_depth >= 0"
            ),
            ScalePolicy::UtilizationTarget { low, high } => assert!(
                high > low && *low >= 0.0,
                "utilization band needs high > low >= 0"
            ),
            ScalePolicy::Scheduled(table) => {
                assert!(
                    !table.is_empty(),
                    "scheduled table needs at least one phase"
                );
                assert!(
                    table.windows(2).all(|w| w[0].start_s < w[1].start_s),
                    "scheduled table must be sorted by start time"
                );
                assert!(
                    table
                        .iter()
                        .all(|p| (min_shards..=max_shards).contains(&p.shards)),
                    "scheduled shard counts outside [min_shards, fleet size]"
                );
            }
            ScalePolicy::Predictive {
                shard_capacity,
                horizon_s,
                alpha,
                period_s,
            } => {
                assert!(
                    *shard_capacity > 0.0 && shard_capacity.is_finite(),
                    "predictive shard_capacity must be positive and finite"
                );
                assert!(
                    *horizon_s >= 0.0 && horizon_s.is_finite(),
                    "predictive horizon must be non-negative and finite"
                );
                assert!(
                    *alpha > 0.0 && *alpha <= 1.0,
                    "predictive alpha outside (0, 1]"
                );
                if let Some(p) = period_s {
                    assert!(
                        *p > 0.0 && p.is_finite(),
                        "predictive period must be positive and finite"
                    );
                }
            }
        }
    }

    /// Whether the policy is a ±1 feedback loop subject to the cooldown.
    pub(crate) fn is_feedback(&self) -> bool {
        matches!(
            self,
            ScalePolicy::Reactive { .. } | ScalePolicy::UtilizationTarget { .. }
        )
    }
}

impl fmt::Display for ScalePolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScalePolicy::Pinned => write!(f, "pinned"),
            ScalePolicy::Reactive { .. } => write!(f, "reactive"),
            ScalePolicy::UtilizationTarget { .. } => write!(f, "utilization"),
            ScalePolicy::Scheduled(_) => write!(f, "scheduled"),
            ScalePolicy::Predictive { .. } => write!(f, "predictive"),
        }
    }
}

/// Windowed arrival-rate estimator behind [`ScalePolicy::Predictive`]: an
/// EWMA over per-window observed rates, optionally sharpened by a
/// least-squares diurnal-harmonic fit
/// `r(t) ≈ c₀ + c₁·sin(ωt) + c₂·cos(ωt)` at a known period.
///
/// Observations are `(simulation time, cumulative arrivals)` pairs — the
/// shared, RNG-stream-free observation path both autoscalers expose. The
/// estimator never reads a wall clock, so forecast-driven runs are as
/// bit-reproducible as reactive ones.
#[derive(Debug, Clone)]
pub struct RateForecaster {
    alpha: f64,
    period_s: Option<f64>,
    last_t: f64,
    last_count: usize,
    ewma: Option<f64>,
    /// Windows folded into the harmonic normal equations.
    n_obs: usize,
    /// Mid-time of the earliest / latest harmonic observation: the fit is
    /// trusted only once the observations span a full period.
    first_mid_t: f64,
    last_mid_t: f64,
    /// Normal equations Σxxᵀ·c = Σx·r over the basis [1, sin ωt, cos ωt].
    xtx: [[f64; 3]; 3],
    xty: [f64; 3],
}

/// Harmonic observations needed before the fit outranks the EWMA (three
/// would determine the coefficients exactly; demanding more suppresses
/// noise-chasing on short histories).
const FORECAST_MIN_OBS: usize = 8;

impl RateForecaster {
    /// # Panics
    ///
    /// Panics if `alpha` is outside `(0, 1]` or `period_s` is not
    /// positive and finite.
    pub fn new(alpha: f64, period_s: Option<f64>) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha outside (0, 1]");
        if let Some(p) = period_s {
            assert!(p > 0.0 && p.is_finite(), "period must be positive/finite");
        }
        Self {
            alpha,
            period_s,
            last_t: 0.0,
            last_count: 0,
            ewma: None,
            n_obs: 0,
            first_mid_t: f64::INFINITY,
            last_mid_t: f64::NEG_INFINITY,
            xtx: [[0.0; 3]; 3],
            xty: [0.0; 3],
        }
    }

    /// Feeds one observation: by `now`, `total_arrivals` requests have
    /// arrived since the start of the run. The window since the previous
    /// call becomes one rate sample; a zero-arrival window is a valid
    /// sample (rate 0 — it cannot NaN the estimate), and a zero-length
    /// window is folded into the next one.
    pub fn observe(&mut self, now: f64, total_arrivals: usize) {
        let dt = now - self.last_t;
        if dt <= 1e-12 {
            return; // degenerate window: keep the arrivals for the next one
        }
        let arrived = total_arrivals.saturating_sub(self.last_count);
        let rate = arrived as f64 / dt;
        self.last_t = now;
        self.last_count = total_arrivals;
        self.ewma = Some(match self.ewma {
            Some(e) => self.alpha * rate + (1.0 - self.alpha) * e,
            None => rate,
        });
        if let Some(p) = self.period_s {
            // Attribute the window's mean rate to its midpoint.
            let t_mid = now - dt / 2.0;
            let omega = std::f64::consts::TAU / p;
            let x = [1.0, (omega * t_mid).sin(), (omega * t_mid).cos()];
            for i in 0..3 {
                for j in 0..3 {
                    self.xtx[i][j] += x[i] * x[j];
                }
                self.xty[i] += x[i] * rate;
            }
            self.n_obs += 1;
            self.first_mid_t = self.first_mid_t.min(t_mid);
            self.last_mid_t = self.last_mid_t.max(t_mid);
        }
    }

    /// Current smoothed rate estimate (0 before the first window closes).
    pub fn rate_estimate(&self) -> f64 {
        self.ewma.unwrap_or(0.0)
    }

    /// Forecast arrival rate at time `t` (typically `now + horizon`): the
    /// harmonic fit once a full period of observations exists, the EWMA
    /// before that (a flat extrapolation). Never negative, never NaN.
    pub fn forecast(&self, t: f64) -> f64 {
        if let Some(p) = self.period_s {
            if self.n_obs >= FORECAST_MIN_OBS && self.last_mid_t - self.first_mid_t >= p {
                if let Some(c) = solve3(&self.xtx, &self.xty) {
                    let omega = std::f64::consts::TAU / p;
                    let r = c[0] + c[1] * (omega * t).sin() + c[2] * (omega * t).cos();
                    if r.is_finite() {
                        return r.max(0.0);
                    }
                }
            }
        }
        self.rate_estimate()
    }
}

/// Solves the 3×3 system `a·x = b` by Gaussian elimination with partial
/// pivoting; `None` when (near-)singular — e.g. every observation at the
/// same diurnal phase.
fn solve3(a: &[[f64; 3]; 3], b: &[f64; 3]) -> Option<[f64; 3]> {
    let mut m = [[0.0f64; 4]; 3];
    for i in 0..3 {
        m[i][..3].copy_from_slice(&a[i]);
        m[i][3] = b[i];
    }
    for col in 0..3 {
        let pivot = (col..3).max_by(|&i, &j| m[i][col].abs().total_cmp(&m[j][col].abs()))?;
        if m[pivot][col].abs() < 1e-9 {
            return None;
        }
        m.swap(col, pivot);
        for row in col + 1..3 {
            let f = m[row][col] / m[col][col];
            let pivot_row = m[col];
            for (k, &p) in pivot_row.iter().enumerate().skip(col) {
                m[row][k] -= f * p;
            }
        }
    }
    let mut x = [0.0f64; 3];
    for i in (0..3).rev() {
        let mut acc = m[i][3];
        for j in i + 1..3 {
            acc -= m[i][j] * x[j];
        }
        x[i] = acc / m[i][i];
    }
    Some(x)
}

/// One evaluation tick's observed inputs to [`PolicyEngine::desired`]:
/// engine-agnostic numbers both the fleet and decode autoscalers can
/// produce. All of them are simulation-state reads — no RNG, no clock.
pub(crate) struct Observation {
    /// Shards committed going forward (active + warming, not retiring).
    pub(crate) staying: usize,
    /// The engine's backlog metric, in requests. The encoder fleet counts
    /// requests waiting in queues; the decode engine counts waiting +
    /// KV-resident requests (slot-pool pressure) — a held slot is as much
    /// a capacity commitment as a queued request, and counting only the
    /// queue would read a fully-occupied-but-unqueued fleet as idle and
    /// flap it down.
    pub(crate) waiting: usize,
    /// Shards currently accepting routed work.
    pub(crate) accepting: usize,
    /// Paid (committed) shards right now.
    pub(crate) paid: usize,
    /// Fleet busy time actually elapsed by now.
    pub(crate) busy_elapsed: f64,
    /// Trace arrivals observed by now.
    pub(crate) arrivals: usize,
}

/// Policy evaluation shared by the request-level and decode autoscalers:
/// one source of truth for what each [`ScalePolicy`] does with the
/// observed state, so the two engines cannot drift apart in policy
/// semantics.
pub(crate) struct PolicyEngine {
    policy: ScalePolicy,
    initial_shards: usize,
    eval_interval_s: f64,
    /// Total busy time at the previous tick (utilization window).
    busy_snapshot: f64,
    /// Present only for [`ScalePolicy::Predictive`].
    forecaster: Option<RateForecaster>,
}

impl PolicyEngine {
    pub(crate) fn new(policy: &ScalePolicy, initial_shards: usize, eval_interval_s: f64) -> Self {
        let forecaster = match policy {
            ScalePolicy::Predictive {
                alpha, period_s, ..
            } => Some(RateForecaster::new(*alpha, *period_s)),
            _ => None,
        };
        Self {
            policy: policy.clone(),
            initial_shards,
            eval_interval_s,
            busy_snapshot: 0.0,
            forecaster,
        }
    }

    /// The policy's target committed-shard count at `now` (unclamped),
    /// relative to the shards committed going forward for the feedback
    /// policies, absolute for scheduled/predictive. Also advances the
    /// utilization window and the rate estimator — call exactly once per
    /// evaluation tick.
    pub(crate) fn desired(&mut self, now: f64, obs: &Observation) -> usize {
        if let Some(f) = &mut self.forecaster {
            f.observe(now, obs.arrivals);
        }
        let target = match &self.policy {
            ScalePolicy::Pinned => obs.staying,
            ScalePolicy::Reactive {
                scale_up_depth,
                scale_down_depth,
            } => {
                let depth = obs.waiting as f64 / obs.accepting.max(1) as f64;
                if depth > *scale_up_depth {
                    obs.staying + 1
                } else if depth < *scale_down_depth {
                    obs.staying.saturating_sub(1)
                } else {
                    obs.staying
                }
            }
            ScalePolicy::UtilizationTarget { low, high } => {
                // Busy fraction over the last window, normalized by the
                // *paid* fleet (retiring shards still serve).
                let util = (obs.busy_elapsed - self.busy_snapshot)
                    / (self.eval_interval_s * obs.paid.max(1) as f64);
                if util > *high {
                    obs.staying + 1
                } else if util < *low {
                    obs.staying.saturating_sub(1)
                } else {
                    obs.staying
                }
            }
            ScalePolicy::Scheduled(table) => table
                .iter()
                .take_while(|p| p.start_s <= now)
                .last()
                .map_or(self.initial_shards, |p| p.shards),
            ScalePolicy::Predictive {
                shard_capacity,
                horizon_s,
                ..
            } => {
                let f = self.forecaster.as_ref().expect("predictive forecaster");
                (f.forecast(now + horizon_s) / shard_capacity).ceil() as usize
            }
        };
        // The utilization window resets every tick, acted on or not.
        self.busy_snapshot = obs.busy_elapsed;
        target
    }
}

/// What happens to a retiring shard's waiting queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RetirePolicy {
    /// The shard stops accepting new work but serves its queue to empty
    /// before retiring (slow, graceful).
    Drain,
    /// The shard's waiting requests are re-routed to surviving shards
    /// immediately (the decode engine's preemption move applied to
    /// scale-down); the shard retires as soon as its in-flight batch
    /// completes. Evicted requests re-queue — they are never dropped.
    Evict,
}

impl fmt::Display for RetirePolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RetirePolicy::Drain => write!(f, "drain"),
            RetirePolicy::Evict => write!(f, "evict"),
        }
    }
}

/// Parameters of the autoscaling layer. The maximum shard count is the
/// length of the design slice handed to [`simulate_autoscale`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AutoscaleConfig {
    /// Floor on committed (active + warming) shards; never retires below.
    pub min_shards: usize,
    /// Shards active at `t = 0` (already warm).
    pub initial_shards: usize,
    /// Scaling decision rule.
    pub policy: ScalePolicy,
    /// Eviction-vs-drain semantics of scale-down.
    pub retire: RetirePolicy,
    /// Controller sampling period in seconds.
    pub eval_interval_s: f64,
    /// Weight-streaming delay between launching a shard and it joining
    /// dispatch; the shard is paid for but admits no work while warming.
    pub warmup_s: f64,
    /// Minimum time between scaling actions of the feedback policies
    /// (reactive / utilization-target); scheduled tables ignore it.
    pub cooldown_s: f64,
    /// End-to-end latency SLO used for attainment reporting.
    pub slo_latency_s: f64,
    /// Ascending arrival-time boundaries splitting the trace into
    /// reporting phases (empty = one phase). Purely observational.
    pub phase_bounds_s: Vec<f64>,
}

impl Default for AutoscaleConfig {
    fn default() -> Self {
        Self {
            min_shards: 1,
            initial_shards: 1,
            policy: ScalePolicy::Reactive {
                scale_up_depth: 12.0,
                scale_down_depth: 2.0,
            },
            retire: RetirePolicy::Drain,
            eval_interval_s: 0.2,
            warmup_s: 0.3,
            cooldown_s: 0.4,
            slo_latency_s: 0.25,
            phase_bounds_s: Vec::new(),
        }
    }
}

impl AutoscaleConfig {
    /// Panics unless the configuration is well-formed for a fleet of
    /// `max_shards` designs.
    pub fn validate(&self, max_shards: usize) {
        assert!(self.min_shards >= 1, "min_shards must be >= 1");
        assert!(
            self.min_shards <= max_shards,
            "min_shards exceeds the fleet size"
        );
        assert!(
            (self.min_shards..=max_shards).contains(&self.initial_shards),
            "initial_shards outside [min_shards, fleet size]"
        );
        assert!(self.eval_interval_s > 0.0, "eval interval must be positive");
        assert!(self.warmup_s >= 0.0, "negative warm-up");
        assert!(self.cooldown_s >= 0.0, "negative cooldown");
        assert!(self.slo_latency_s > 0.0, "SLO latency must be positive");
        assert!(
            self.phase_bounds_s.windows(2).all(|w| w[0] < w[1])
                && self
                    .phase_bounds_s
                    .iter()
                    .all(|b| b.is_finite() && *b > 0.0),
            "phase bounds must be ascending, positive and finite"
        );
        self.policy.validate(self.min_shards, max_shards);
    }
}

/// What a [`ScaleEvent`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScaleEventKind {
    /// A cold shard started warming up (paid from here on).
    Launch,
    /// A warmed shard joined dispatch.
    Join,
    /// A shard stopped accepting work and began draining/evicting.
    RetireStart,
    /// A retiring shard went idle and left the paid fleet.
    Retired,
    /// The failure layer crashed the shard; it left the paid fleet
    /// immediately (crashed capacity is not billed) and cannot be
    /// relaunched until it recovers.
    Failed,
    /// The failure layer revived the shard; it is launchable again but
    /// rejoins only through the normal launch/warm-up path.
    Recovered,
}

impl fmt::Display for ScaleEventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScaleEventKind::Launch => write!(f, "launch"),
            ScaleEventKind::Join => write!(f, "join"),
            ScaleEventKind::RetireStart => write!(f, "retire-start"),
            ScaleEventKind::Retired => write!(f, "retired"),
            ScaleEventKind::Failed => write!(f, "failed"),
            ScaleEventKind::Recovered => write!(f, "recovered"),
        }
    }
}

/// One entry of the scaling-event log.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScaleEvent {
    /// Event time in seconds.
    pub time_s: f64,
    /// Shard the event concerns.
    pub shard: usize,
    /// What happened.
    pub kind: ScaleEventKind,
    /// Committed (active + warming + retiring) shards after the event.
    pub on_after: usize,
}

/// SLO attainment over one reporting phase of the trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhaseSlo {
    /// Phase start (arrival-time bucket), inclusive.
    pub start_s: f64,
    /// Phase end, exclusive (`f64::INFINITY` for the last phase).
    pub end_s: f64,
    /// Requests that arrived in the phase.
    pub requests: usize,
    /// Fraction of the phase's requests inside the latency SLO (1 when
    /// the phase is empty).
    pub slo_attainment: f64,
    /// 95th-percentile latency of the phase's requests (0 when empty).
    pub p95_latency_s: f64,
}

/// Result of an autoscaling simulation: the fleet-level report plus the
/// cost/SLO view the scaling trade-off is judged by.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AutoscaleReport {
    /// Fleet-level view (latency percentiles, throughput, per-shard
    /// stats, batch log). Shards that never joined show zero work.
    pub fleet: FleetReport,
    /// Σ over shards of paid time (launch → retirement, warm-up
    /// included; still-on shards are charged to the makespan) — the cost
    /// proxy autoscaling tries to shrink.
    pub shard_seconds: f64,
    /// Time-averaged committed shard count over the makespan.
    pub mean_active_shards: f64,
    /// Peak committed shard count.
    pub peak_active_shards: usize,
    /// Every scaling action in time order (empty for a pinned policy).
    pub scale_events: Vec<ScaleEvent>,
    /// Fraction of all requests inside `slo_latency_s`.
    pub slo_attainment: f64,
    /// Per-phase SLO attainment along `phase_bounds_s`.
    pub phases: Vec<PhaseSlo>,
}

/// Lifecycle of one shard under the autoscaler.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum Lifecycle {
    /// Cold: not paid, not dispatched to.
    Off,
    /// Launched, streaming weights; paid but not yet dispatched to.
    Warming {
        /// Time the shard finishes warming and joins dispatch.
        ready_s: f64,
    },
    /// In the dispatch set.
    Active,
    /// Out of the dispatch set, finishing residual work.
    Retiring,
}

/// The policy-driven [`FleetController`]. `pub(crate)` so the failure
/// layer ([`crate::failure`]) can wrap it inside its fault injector.
pub(crate) struct Autoscaler<'a> {
    cfg: &'a AutoscaleConfig,
    max_shards: usize,
    lifecycle: Vec<Lifecycle>,
    /// Time each non-[`Lifecycle::Off`] shard started being paid for.
    on_since: Vec<f64>,
    shard_seconds: f64,
    pub(crate) events: Vec<ScaleEvent>,
    next_eval_s: f64,
    last_action_s: f64,
    engine: PolicyEngine,
    /// Committed (non-Off) shards right now.
    on_count: usize,
    pub(crate) peak_on: usize,
    on_integral: f64,
    last_on_change_s: f64,
    done_ticking: bool,
    /// Shards currently crashed by the failure layer: never launch
    /// targets until their [`ScaleEventKind::Recovered`] event.
    failed: Vec<bool>,
}

impl<'a> Autoscaler<'a> {
    pub(crate) fn new(cfg: &'a AutoscaleConfig, max_shards: usize) -> Self {
        let lifecycle = (0..max_shards)
            .map(|s| {
                if s < cfg.initial_shards {
                    Lifecycle::Active
                } else {
                    Lifecycle::Off
                }
            })
            .collect();
        Self {
            cfg,
            max_shards,
            lifecycle,
            on_since: vec![0.0; max_shards],
            shard_seconds: 0.0,
            events: Vec::new(),
            next_eval_s: cfg.eval_interval_s,
            last_action_s: f64::NEG_INFINITY,
            engine: PolicyEngine::new(&cfg.policy, cfg.initial_shards, cfg.eval_interval_s),
            on_count: cfg.initial_shards,
            peak_on: cfg.initial_shards,
            on_integral: 0.0,
            last_on_change_s: 0.0,
            done_ticking: false,
            failed: vec![false; max_shards],
        }
    }

    /// Closes the cost books at `makespan`: Σ paid shard-seconds
    /// (still-on shards charged to the makespan), time-averaged committed
    /// shard count, and the committed peak. Shared by
    /// [`simulate_autoscale`] and the failure layer's autoscaled entry
    /// point so the two can never drift on billing arithmetic.
    pub(crate) fn close_books(&self, makespan: f64) -> (f64, f64, usize) {
        let mut shard_seconds = self.shard_seconds;
        for s in 0..self.max_shards {
            if self.lifecycle[s] != Lifecycle::Off {
                shard_seconds += (makespan - self.on_since[s]).max(0.0);
            }
        }
        let end = makespan.max(self.last_on_change_s).max(1e-12);
        let on_integral = self.on_integral + self.on_count as f64 * (end - self.last_on_change_s);
        (shard_seconds, on_integral / end, self.peak_on)
    }

    /// Advances the committed-shard integral and applies `delta`.
    fn change_on_count(&mut self, now: f64, delta: isize) {
        self.on_integral += self.on_count as f64 * (now - self.last_on_change_s);
        self.last_on_change_s = now;
        self.on_count = (self.on_count as isize + delta) as usize;
        self.peak_on = self.peak_on.max(self.on_count);
    }

    fn record(&mut self, now: f64, shard: usize, kind: ScaleEventKind) {
        self.events.push(ScaleEvent {
            time_s: now,
            shard,
            kind,
            on_after: self.on_count,
        });
    }

    fn accepting_count(&self, core: &FleetCore<'_>) -> usize {
        core.accepting.iter().filter(|&&a| a).count()
    }

    /// Shards committed *going forward* — active or warming, but not
    /// retiring (those leave as soon as they drain). Scaling decisions
    /// compare targets against this count, so in-progress drains can't
    /// stack further retires and push the surviving fleet below
    /// `min_shards`.
    fn staying_count(&self) -> usize {
        self.lifecycle
            .iter()
            .filter(|l| matches!(l, Lifecycle::Active | Lifecycle::Warming { .. }))
            .count()
    }

    /// Fleet busy time actually *elapsed* by `t`: `busy_time_s` charges a
    /// batch's whole service at dispatch, so clip off the in-flight
    /// batch's not-yet-elapsed tail. Window deltas of this integral are
    /// exact even when service times span many evaluation windows.
    fn busy_elapsed(&self, core: &FleetCore<'_>, t: f64) -> f64 {
        core.state
            .iter()
            .map(|st| {
                st.busy_time_s
                    - if st.busy {
                        (st.busy_until_s - t).max(0.0)
                    } else {
                        0.0
                    }
            })
            .sum()
    }

    /// Starts paying for shard `s`; it joins dispatch after the warm-up.
    fn launch(&mut self, core: &mut FleetCore<'_>, s: usize, now: f64) {
        self.change_on_count(now, 1);
        self.on_since[s] = now;
        self.record(now, s, ScaleEventKind::Launch);
        if self.cfg.warmup_s <= 0.0 {
            self.lifecycle[s] = Lifecycle::Active;
            core.accepting[s] = true;
            self.record(now, s, ScaleEventKind::Join);
        } else {
            let ready_s = now + self.cfg.warmup_s;
            self.lifecycle[s] = Lifecycle::Warming { ready_s };
            core.schedule_control(ready_s);
        }
    }

    /// Removes shard `s` from dispatch; its queue drains or evicts per the
    /// retire policy, and it leaves the paid fleet once idle.
    fn retire(&mut self, core: &mut FleetCore<'_>, s: usize, now: f64) {
        self.lifecycle[s] = Lifecycle::Retiring;
        core.accepting[s] = false;
        self.record(now, s, ScaleEventKind::RetireStart);
        if self.cfg.retire == RetirePolicy::Evict {
            core.state[s].tick(now);
            let evicted: Vec<usize> = core.state[s].queue.drain(..).collect();
            core.state[s].window_scheduled_for = None;
            let mut touched = Vec::new();
            for r in evicted {
                // At least one shard keeps accepting during a retire (the
                // evaluate() guard), so eviction never parks.
                let s2 = core.admit(r, now).expect("survivor accepts evicted work");
                if !touched.contains(&s2) {
                    touched.push(s2);
                }
            }
            for s2 in touched {
                core.try_dispatch(s2, now);
            }
        }
        self.maybe_finish_retire(core, s, now);
    }

    /// Completes a retirement once the shard is idle with an empty queue.
    fn maybe_finish_retire(&mut self, core: &mut FleetCore<'_>, s: usize, now: f64) {
        if self.lifecycle[s] == Lifecycle::Retiring
            && !core.state[s].busy
            && core.state[s].queue.is_empty()
        {
            self.lifecycle[s] = Lifecycle::Off;
            self.change_on_count(now, -1);
            self.shard_seconds += now - self.on_since[s];
            self.record(now, s, ScaleEventKind::Retired);
        }
    }

    /// One evaluation tick: decide a target and launch/recall/retire
    /// towards it.
    fn evaluate(&mut self, core: &mut FleetCore<'_>, now: f64) {
        let staying = self.staying_count();
        let obs = Observation {
            staying,
            waiting: core.state.iter().map(|st| st.queue.len()).sum(),
            accepting: self.accepting_count(core),
            paid: self.on_count,
            busy_elapsed: self.busy_elapsed(core, now),
            arrivals: core.arrivals_seen,
        };
        let desired = self
            .engine
            .desired(now, &obs)
            .clamp(self.cfg.min_shards, self.max_shards);
        if desired == staying {
            return;
        }
        if self.cfg.policy.is_feedback() && now - self.last_action_s < self.cfg.cooldown_s {
            return;
        }
        let mut acted = false;
        if desired > staying {
            let mut need = desired - staying;
            // Recall retiring shards first: they are still warm (weights
            // resident), so rejoining dispatch is free — no warm-up, no
            // fresh Launch; the event log shows a bare Join.
            for s in (0..self.max_shards).rev() {
                if need == 0 {
                    break;
                }
                if self.lifecycle[s] == Lifecycle::Retiring {
                    self.lifecycle[s] = Lifecycle::Active;
                    core.accepting[s] = true;
                    self.record(now, s, ScaleEventKind::Join);
                    need -= 1;
                    acted = true;
                }
            }
            for s in 0..self.max_shards {
                if need == 0 {
                    break;
                }
                if self.lifecycle[s] == Lifecycle::Off && !self.failed[s] {
                    self.launch(core, s, now);
                    need -= 1;
                    acted = true;
                }
            }
        } else {
            // desired >= min_shards (clamped) and each retire moves one
            // shard out of `staying`, so the surviving fleet never drops
            // below the floor even while earlier drains are in flight.
            let mut staying_now = staying;
            for s in (0..self.max_shards).rev() {
                if staying_now == desired {
                    break;
                }
                // Retire only active shards, and never the last accepting
                // one — a warming shard is not yet a routing target.
                if self.lifecycle[s] == Lifecycle::Active && self.accepting_count(core) > 1 {
                    self.retire(core, s, now);
                    staying_now -= 1;
                    acted = true;
                }
            }
        }
        if acted {
            self.last_action_s = now;
        }
    }
}

impl FleetController for Autoscaler<'_> {
    fn on_control(&mut self, core: &mut FleetCore<'_>, now: f64) {
        // Finish any due warm-ups first, so a shard can join and receive
        // work decided at the very same tick.
        for s in 0..self.max_shards {
            if let Lifecycle::Warming { ready_s } = self.lifecycle[s] {
                if ready_s <= now {
                    self.lifecycle[s] = Lifecycle::Active;
                    core.accepting[s] = true;
                    self.record(now, s, ScaleEventKind::Join);
                }
            }
        }
        if self.done_ticking || now + 1e-9 < self.next_eval_s {
            return;
        }
        if core.completed() + core.abandoned == core.trace.len() {
            // Work is done (completed or given up on by the client
            // layer): stop the tick chain so the heap can drain.
            self.done_ticking = true;
            return;
        }
        self.evaluate(core, now);
        self.next_eval_s = now + self.cfg.eval_interval_s;
        core.schedule_control(self.next_eval_s);
    }

    fn after_completion(&mut self, core: &mut FleetCore<'_>, shard: usize, now: f64) {
        self.maybe_finish_retire(core, shard, now);
    }

    fn on_shard_down(&mut self, _core: &mut FleetCore<'_>, s: usize, now: f64) {
        // Crashed capacity stops billing immediately, whatever lifecycle
        // stage it was in (a crash mid-warm-up or mid-retire also lands
        // here; the pending warm-up control event finds no Warming state
        // and is a no-op).
        if self.lifecycle[s] != Lifecycle::Off {
            self.change_on_count(now, -1);
            self.shard_seconds += now - self.on_since[s];
            self.lifecycle[s] = Lifecycle::Off;
        }
        self.failed[s] = true;
        self.record(now, s, ScaleEventKind::Failed);
    }

    fn on_shard_up(&mut self, _core: &mut FleetCore<'_>, s: usize, now: f64) {
        // Deliberately does NOT set `accepting`: a recovered shard is
        // cold, so it rejoins through the policy's normal launch +
        // warm-up path at the next evaluation that wants capacity.
        self.failed[s] = false;
        self.record(now, s, ScaleEventKind::Recovered);
    }
}

/// Simulates `trace` over a fleet of up to `shards.len()` shards whose
/// membership the autoscaling controller drives at runtime; batching,
/// dispatch and the cost model are exactly [`simulate_fleet`](crate::fleet::simulate_fleet)'s.
///
/// Every request completes exactly once — scaling events re-route or delay
/// work but never drop it.
///
/// # Panics
///
/// Panics on the [`simulate_fleet`](crate::fleet::simulate_fleet) input errors or a malformed
/// [`AutoscaleConfig`] (see [`AutoscaleConfig::validate`]).
pub fn simulate_autoscale(
    shards: &[AcceleratorDesign],
    trace: &[Request],
    policy: SchedulingPolicy,
    dispatch: DispatchPolicy,
    batcher: &BatcherConfig,
    cfg: &AutoscaleConfig,
) -> AutoscaleReport {
    assert!(!shards.is_empty(), "fleet needs at least one shard");
    cfg.validate(shards.len());
    let accepting: Vec<bool> = (0..shards.len()).map(|s| s < cfg.initial_shards).collect();
    let mut core = FleetCore::new(shards, trace, policy, dispatch, batcher, accepting);
    let mut ctl = Autoscaler::new(cfg, shards.len());
    if matches!(cfg.policy, ScalePolicy::Pinned) {
        // No control events at all: the event stream is simulate_fleet's,
        // which is what makes the min==max pin bit-for-bit.
        core.run(&mut NullController);
    } else {
        core.schedule_control(cfg.eval_interval_s);
        core.run(&mut ctl);
    }

    let latencies: Vec<f64> = core
        .completion_s
        .iter()
        .zip(trace)
        .map(|(&c, req)| c - req.arrival_s)
        .collect();
    let fleet = core.into_report();
    let makespan = fleet.makespan_s;

    // Close the books on shards still committed at the end of the run.
    let (shard_seconds, mean_active_shards, peak_active_shards) = ctl.close_books(makespan);

    let in_slo = |lat: f64| lat <= cfg.slo_latency_s;
    let slo_attainment =
        latencies.iter().filter(|&&l| in_slo(l)).count() as f64 / latencies.len() as f64;
    let mut edges = vec![0.0];
    edges.extend(cfg.phase_bounds_s.iter().copied());
    edges.push(f64::INFINITY);
    let phases = edges
        .windows(2)
        .map(|w| {
            let phase_lat: Vec<f64> = trace
                .iter()
                .zip(&latencies)
                .filter(|(r, _)| r.arrival_s >= w[0] && r.arrival_s < w[1])
                .map(|(_, &l)| l)
                .collect();
            PhaseSlo {
                start_s: w[0],
                end_s: w[1],
                requests: phase_lat.len(),
                slo_attainment: if phase_lat.is_empty() {
                    1.0
                } else {
                    phase_lat.iter().filter(|&&l| in_slo(l)).count() as f64 / phase_lat.len() as f64
                },
                p95_latency_s: percentile(&phase_lat, 0.95).unwrap_or(0.0),
            }
        })
        .collect();

    AutoscaleReport {
        fleet,
        shard_seconds,
        mean_active_shards,
        peak_active_shards,
        scale_events: ctl.events,
        slo_attainment,
        phases,
    }
}

// ────────────────────────── decode autoscaling ──────────────────────────

/// What happens to a retiring decode shard's KV-resident sequences.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DecodeScaleDown {
    /// The shard stops accepting routed work and hands its *waiting*
    /// queue to the survivors, but its residents keep decoding to
    /// completion in place; the shard retires when the last resident
    /// finishes (slow, no re-prefill cost).
    Drain,
    /// Residents are evicted at the next iteration boundary and re-routed
    /// to surviving shards, where each re-prefills its *grown* context on
    /// re-admission — the decode engine's preemption machinery applied to
    /// scale-down. The shard retires as soon as its in-flight iteration
    /// completes (fast, pays one re-prefill per evicted resident).
    Migrate,
}

impl fmt::Display for DecodeScaleDown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeScaleDown::Drain => write!(f, "drain"),
            DecodeScaleDown::Migrate => write!(f, "migrate"),
        }
    }
}

/// Parameters of the decode autoscaling layer; the maximum shard count is
/// the length of the design slice handed to [`simulate_decode_autoscale`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecodeAutoscaleConfig {
    /// Floor on committed (active + warming) shards; never retires below.
    pub min_shards: usize,
    /// Shards active at `t = 0` (already warm).
    pub initial_shards: usize,
    /// Scaling decision rule (shared with the request-level autoscaler).
    pub policy: ScalePolicy,
    /// What scale-down does with a retiring shard's KV residents.
    pub scale_down: DecodeScaleDown,
    /// Controller sampling period in seconds.
    pub eval_interval_s: f64,
    /// Weight-streaming delay between launching a shard and it joining
    /// dispatch; the shard is paid for but admits no work while warming.
    pub warmup_s: f64,
    /// Minimum time between scaling actions of the feedback policies
    /// (reactive / utilization-target); scheduled and predictive policies
    /// ignore it.
    pub cooldown_s: f64,
    /// Time-to-first-token SLO used for attainment reporting (the
    /// user-facing latency target of generative serving).
    pub slo_ttft_s: f64,
    /// Ascending arrival-time boundaries splitting the trace into
    /// reporting phases (empty = one phase). Purely observational.
    pub phase_bounds_s: Vec<f64>,
}

impl Default for DecodeAutoscaleConfig {
    fn default() -> Self {
        Self {
            min_shards: 1,
            initial_shards: 1,
            policy: ScalePolicy::Reactive {
                scale_up_depth: 8.0,
                scale_down_depth: 1.0,
            },
            scale_down: DecodeScaleDown::Drain,
            eval_interval_s: 0.2,
            warmup_s: 0.3,
            cooldown_s: 0.4,
            slo_ttft_s: 0.25,
            phase_bounds_s: Vec::new(),
        }
    }
}

impl DecodeAutoscaleConfig {
    /// Panics unless the configuration is well-formed for a fleet of
    /// `max_shards` designs.
    pub fn validate(&self, max_shards: usize) {
        assert!(self.min_shards >= 1, "min_shards must be >= 1");
        assert!(
            self.min_shards <= max_shards,
            "min_shards exceeds the fleet size"
        );
        assert!(
            (self.min_shards..=max_shards).contains(&self.initial_shards),
            "initial_shards outside [min_shards, fleet size]"
        );
        assert!(self.eval_interval_s > 0.0, "eval interval must be positive");
        assert!(self.warmup_s >= 0.0, "negative warm-up");
        assert!(self.cooldown_s >= 0.0, "negative cooldown");
        assert!(self.slo_ttft_s > 0.0, "TTFT SLO must be positive");
        assert!(
            self.phase_bounds_s.windows(2).all(|w| w[0] < w[1])
                && self
                    .phase_bounds_s
                    .iter()
                    .all(|b| b.is_finite() && *b > 0.0),
            "phase bounds must be ascending, positive and finite"
        );
        self.policy.validate(self.min_shards, max_shards);
    }
}

/// TTFT SLO attainment over one reporting phase of a decode trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DecodePhaseSlo {
    /// Phase start (arrival-time bucket), inclusive.
    pub start_s: f64,
    /// Phase end, exclusive (`f64::INFINITY` for the last phase).
    pub end_s: f64,
    /// Requests that arrived in the phase.
    pub requests: usize,
    /// Fraction of the phase's requests whose TTFT met the SLO (1 when
    /// the phase is empty).
    pub slo_attainment: f64,
    /// 95th-percentile TTFT of the phase's requests (0 when empty).
    pub p95_ttft_s: f64,
}

/// Result of a decode autoscaling simulation: the full [`DecodeReport`]
/// (TTFT/ITL percentiles, token goodput, slot utilization, per-request
/// outcomes) plus the cost/SLO view and the KV-migration accounting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecodeAutoscaleReport {
    /// Decode-engine view; under a pinned `min == max` policy this is
    /// [`crate::decode::simulate_decode`]'s report bit-for-bit.
    pub decode: DecodeReport,
    /// Σ over shards of paid time (launch → retirement, warm-up included;
    /// still-on shards are charged to the makespan).
    pub shard_seconds: f64,
    /// Time-averaged committed shard count over the makespan.
    pub mean_active_shards: f64,
    /// Peak committed shard count.
    pub peak_active_shards: usize,
    /// Every scaling action in time order (empty for a pinned policy).
    pub scale_events: Vec<ScaleEvent>,
    /// Fraction of all requests whose TTFT met `slo_ttft_s`.
    pub slo_attainment: f64,
    /// Per-phase TTFT SLO attainment along `phase_bounds_s`.
    pub phases: Vec<DecodePhaseSlo>,
    /// KV residents evicted by scale-down ([`DecodeScaleDown::Migrate`]).
    pub migrations: usize,
    /// Context re-prefill passes actually priced (one per preemption or
    /// migration whose re-admission ran) — the cost migrating KV state
    /// adds on top of drain.
    pub re_prefills: usize,
}

/// The policy-driven `DecodeController`.
struct DecodeAutoscaler<'a> {
    cfg: &'a DecodeAutoscaleConfig,
    max_shards: usize,
    lifecycle: Vec<Lifecycle>,
    /// Time each non-[`Lifecycle::Off`] shard started being paid for.
    on_since: Vec<f64>,
    shard_seconds: f64,
    events: Vec<ScaleEvent>,
    next_eval_s: f64,
    last_action_s: f64,
    engine: PolicyEngine,
    /// Committed (non-Off) shards right now.
    on_count: usize,
    peak_on: usize,
    on_integral: f64,
    last_on_change_s: f64,
    done_ticking: bool,
    /// Residents evicted by Migrate scale-downs.
    migrations: usize,
}

impl<'a> DecodeAutoscaler<'a> {
    fn new(cfg: &'a DecodeAutoscaleConfig, max_shards: usize) -> Self {
        let lifecycle = (0..max_shards)
            .map(|s| {
                if s < cfg.initial_shards {
                    Lifecycle::Active
                } else {
                    Lifecycle::Off
                }
            })
            .collect();
        Self {
            cfg,
            max_shards,
            lifecycle,
            on_since: vec![0.0; max_shards],
            shard_seconds: 0.0,
            events: Vec::new(),
            next_eval_s: cfg.eval_interval_s,
            last_action_s: f64::NEG_INFINITY,
            engine: PolicyEngine::new(&cfg.policy, cfg.initial_shards, cfg.eval_interval_s),
            on_count: cfg.initial_shards,
            peak_on: cfg.initial_shards,
            on_integral: 0.0,
            last_on_change_s: 0.0,
            done_ticking: false,
            migrations: 0,
        }
    }

    /// Advances the committed-shard integral and applies `delta`.
    fn change_on_count(&mut self, now: f64, delta: isize) {
        self.on_integral += self.on_count as f64 * (now - self.last_on_change_s);
        self.last_on_change_s = now;
        self.on_count = (self.on_count as isize + delta) as usize;
        self.peak_on = self.peak_on.max(self.on_count);
    }

    fn record(&mut self, now: f64, shard: usize, kind: ScaleEventKind) {
        self.events.push(ScaleEvent {
            time_s: now,
            shard,
            kind,
            on_after: self.on_count,
        });
    }

    fn accepting_count(&self, core: &DecodeCore<'_>) -> usize {
        core.accepting.iter().filter(|&&a| a).count()
    }

    /// Shards committed *going forward* — active or warming, but not
    /// retiring (see [`Autoscaler::staying_count`]).
    fn staying_count(&self) -> usize {
        self.lifecycle
            .iter()
            .filter(|l| matches!(l, Lifecycle::Active | Lifecycle::Warming { .. }))
            .count()
    }

    /// Fleet busy time actually *elapsed* by `t`: iterations charge their
    /// whole duration at launch, so clip off the in-flight iteration's
    /// not-yet-elapsed tail.
    fn busy_elapsed(&self, core: &DecodeCore<'_>, t: f64) -> f64 {
        core.shards
            .iter()
            .map(|sh| {
                sh.busy_time_s
                    - if sh.stepping {
                        (sh.busy_until_s - t).max(0.0)
                    } else {
                        0.0
                    }
            })
            .sum()
    }

    /// Starts paying for shard `s`; it joins dispatch after the warm-up.
    fn launch(&mut self, core: &mut DecodeCore<'_>, s: usize, now: f64) {
        self.change_on_count(now, 1);
        self.on_since[s] = now;
        self.record(now, s, ScaleEventKind::Launch);
        if self.cfg.warmup_s <= 0.0 {
            self.lifecycle[s] = Lifecycle::Active;
            core.accepting[s] = true;
            self.record(now, s, ScaleEventKind::Join);
        } else {
            let ready_s = now + self.cfg.warmup_s;
            self.lifecycle[s] = Lifecycle::Warming { ready_s };
            core.schedule_control(ready_s);
        }
    }

    /// Evicts shard `s`'s *unfinished* residents back into the accepting
    /// shards' queues (the Migrate move, i.e. the shared
    /// [`crate::decode::KvTransfer::Reprefill`] primitive); each
    /// re-prefills its grown context on re-admission.
    fn evict_residents(
        &mut self,
        core: &mut DecodeCore<'_>,
        s: usize,
        now: f64,
        touched: &mut Vec<usize>,
    ) {
        self.migrations += core.evict_unfinished(s, now, touched);
    }

    /// Removes shard `s` from dispatch. Both scale-down modes hand the
    /// waiting queue to the survivors immediately (a retiring shard
    /// admits nothing new into its slots); Migrate additionally evicts
    /// the residents — at once if the shard is idle, else at the next
    /// iteration boundary ([`DecodeController::after_step`]).
    fn retire(&mut self, core: &mut DecodeCore<'_>, s: usize, now: f64) {
        self.lifecycle[s] = Lifecycle::Retiring;
        core.accepting[s] = false;
        self.record(now, s, ScaleEventKind::RetireStart);
        core.shards[s].tick(now);
        let waiting: Vec<usize> = core.shards[s].queue.drain(..).collect();
        let mut touched = Vec::new();
        for r in waiting {
            let s2 = core.route_request(r, now);
            if !touched.contains(&s2) {
                touched.push(s2);
            }
        }
        if self.cfg.scale_down == DecodeScaleDown::Migrate && !core.shards[s].stepping {
            self.evict_residents(core, s, now, &mut touched);
        }
        for s2 in touched {
            core.start_iteration(s2, now);
        }
        self.maybe_finish_retire(core, s, now);
    }

    /// Completes a retirement once the shard is idle with no residents
    /// and an empty queue.
    fn maybe_finish_retire(&mut self, core: &mut DecodeCore<'_>, s: usize, now: f64) {
        if self.lifecycle[s] == Lifecycle::Retiring
            && !core.shards[s].stepping
            && core.shards[s].resident.is_empty()
            && core.shards[s].queue.is_empty()
        {
            self.lifecycle[s] = Lifecycle::Off;
            self.change_on_count(now, -1);
            self.shard_seconds += now - self.on_since[s];
            self.record(now, s, ScaleEventKind::Retired);
        }
    }

    /// One evaluation tick: decide a target and launch/recall/retire
    /// towards it (mirrors [`Autoscaler::evaluate`] on the decode core).
    fn evaluate(&mut self, core: &mut DecodeCore<'_>, now: f64) {
        let staying = self.staying_count();
        let obs = Observation {
            staying,
            // Slot-pool pressure, not just the queue: a KV resident holds
            // capacity exactly like a waiting request, so reactive
            // thresholds here are in units of in-system requests per
            // accepting shard (compare against the slot count).
            waiting: core
                .shards
                .iter()
                .map(|sh| sh.queue.len() + sh.resident.len())
                .sum(),
            accepting: self.accepting_count(core),
            paid: self.on_count,
            busy_elapsed: self.busy_elapsed(core, now),
            arrivals: core.arrivals_seen,
        };
        let desired = self
            .engine
            .desired(now, &obs)
            .clamp(self.cfg.min_shards, self.max_shards);
        if desired == staying {
            return;
        }
        if self.cfg.policy.is_feedback() && now - self.last_action_s < self.cfg.cooldown_s {
            return;
        }
        let mut acted = false;
        if desired > staying {
            let mut need = desired - staying;
            // Recall retiring shards first: weights (and any draining
            // residents) are still in place, so rejoining is free.
            for s in (0..self.max_shards).rev() {
                if need == 0 {
                    break;
                }
                if self.lifecycle[s] == Lifecycle::Retiring {
                    self.lifecycle[s] = Lifecycle::Active;
                    core.accepting[s] = true;
                    self.record(now, s, ScaleEventKind::Join);
                    need -= 1;
                    acted = true;
                }
            }
            for s in 0..self.max_shards {
                if need == 0 {
                    break;
                }
                if self.lifecycle[s] == Lifecycle::Off {
                    self.launch(core, s, now);
                    need -= 1;
                    acted = true;
                }
            }
        } else {
            let mut staying_now = staying;
            for s in (0..self.max_shards).rev() {
                if staying_now == desired {
                    break;
                }
                // Retire only active shards, and never the last accepting
                // one — a warming shard is not yet a routing target.
                if self.lifecycle[s] == Lifecycle::Active && self.accepting_count(core) > 1 {
                    self.retire(core, s, now);
                    staying_now -= 1;
                    acted = true;
                }
            }
        }
        if acted {
            self.last_action_s = now;
        }
    }
}

impl DecodeController for DecodeAutoscaler<'_> {
    fn on_control(&mut self, core: &mut DecodeCore<'_>, now: f64) {
        // Finish any due warm-ups first, so a shard can join and receive
        // work decided at the very same tick.
        for s in 0..self.max_shards {
            if let Lifecycle::Warming { ready_s } = self.lifecycle[s] {
                if ready_s <= now {
                    self.lifecycle[s] = Lifecycle::Active;
                    core.accepting[s] = true;
                    self.record(now, s, ScaleEventKind::Join);
                }
            }
        }
        if self.done_ticking || now + 1e-9 < self.next_eval_s {
            return;
        }
        if core.completed() + core.abandoned == core.trace.len() {
            // Work is done (completed or given up on by the client
            // layer): stop the tick chain so the heap can drain.
            self.done_ticking = true;
            return;
        }
        self.evaluate(core, now);
        self.next_eval_s = now + self.cfg.eval_interval_s;
        core.schedule_control(self.next_eval_s);
    }

    fn after_step(&mut self, core: &mut DecodeCore<'_>, shard: usize, now: f64) {
        if self.lifecycle[shard] != Lifecycle::Retiring {
            return;
        }
        if self.cfg.scale_down == DecodeScaleDown::Migrate
            && !core.shards[shard].resident.is_empty()
        {
            // The in-flight iteration completed: hand the survivors the
            // still-unfinished residents.
            let mut touched = Vec::new();
            self.evict_residents(core, shard, now, &mut touched);
            for s2 in touched {
                core.start_iteration(s2, now);
            }
        }
        self.maybe_finish_retire(core, shard, now);
    }
}

/// Simulates a decode `trace` over a fleet of up to `shards.len()` shards
/// whose membership the autoscaling controller drives at runtime;
/// scheduling, admission and the iteration cost model are exactly
/// [`crate::decode::simulate_decode`]'s.
///
/// Every request completes exactly once and generates exactly its
/// `output_len` tokens — scale-down drains or migrates KV residents but
/// never drops one.
///
/// # Panics
///
/// Panics on the [`crate::decode::simulate_decode`] input errors or a
/// malformed [`DecodeAutoscaleConfig`].
pub fn simulate_decode_autoscale(
    shards: &[AcceleratorDesign],
    trace: &[DecodeRequest],
    policy: SchedulingPolicy,
    dispatch: DispatchPolicy,
    scheduler: DecodeScheduler,
    decode_cfg: &DecodeConfig,
    cfg: &DecodeAutoscaleConfig,
) -> DecodeAutoscaleReport {
    assert!(!shards.is_empty(), "fleet needs at least one shard");
    cfg.validate(shards.len());
    let accepting: Vec<bool> = (0..shards.len()).map(|s| s < cfg.initial_shards).collect();
    let mut core = DecodeCore::new(
        shards, trace, policy, dispatch, scheduler, decode_cfg, accepting,
    );
    let mut ctl = DecodeAutoscaler::new(cfg, shards.len());
    if matches!(cfg.policy, ScalePolicy::Pinned) {
        // No control events at all: the event stream is simulate_decode's,
        // which is what makes the min==max pin bit-for-bit.
        core.run(&mut NullDecodeController);
    } else {
        core.schedule_control(cfg.eval_interval_s);
        core.run(&mut ctl);
    }
    let decode = core.into_report();
    let makespan = decode.fleet.makespan_s;

    // Close the books on shards still committed at the end of the run.
    let mut shard_seconds = ctl.shard_seconds;
    for s in 0..shards.len() {
        if ctl.lifecycle[s] != Lifecycle::Off {
            shard_seconds += (makespan - ctl.on_since[s]).max(0.0);
        }
    }
    let end = makespan.max(ctl.last_on_change_s).max(1e-12);
    let on_integral = ctl.on_integral + ctl.on_count as f64 * (end - ctl.last_on_change_s);

    let in_slo = |t: f64| t <= cfg.slo_ttft_s;
    let ttfts: Vec<f64> = decode.requests.iter().map(|r| r.ttft_s).collect();
    let slo_attainment = ttfts.iter().filter(|&&t| in_slo(t)).count() as f64 / ttfts.len() as f64;
    let mut edges = vec![0.0];
    edges.extend(cfg.phase_bounds_s.iter().copied());
    edges.push(f64::INFINITY);
    let phases = edges
        .windows(2)
        .map(|w| {
            let phase_ttft: Vec<f64> = trace
                .iter()
                .zip(&ttfts)
                .filter(|(r, _)| r.arrival_s >= w[0] && r.arrival_s < w[1])
                .map(|(_, &t)| t)
                .collect();
            DecodePhaseSlo {
                start_s: w[0],
                end_s: w[1],
                requests: phase_ttft.len(),
                slo_attainment: if phase_ttft.is_empty() {
                    1.0
                } else {
                    phase_ttft.iter().filter(|&&t| in_slo(t)).count() as f64
                        / phase_ttft.len() as f64
                },
                p95_ttft_s: percentile(&phase_ttft, 0.95).unwrap_or(0.0),
            }
        })
        .collect();
    let re_prefills = decode.requests.iter().map(|r| r.re_prefills as usize).sum();

    DecodeAutoscaleReport {
        decode,
        shard_seconds,
        mean_active_shards: on_integral / end,
        peak_active_shards: ctl.peak_on,
        scale_events: ctl.events,
        slo_attainment,
        phases,
        migrations: ctl.migrations,
        re_prefills,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::{
        homogeneous_fleet, nonstationary_poisson_trace, poisson_trace, simulate_fleet, RatePhase,
        RateProfile,
    };
    use crate::spec::FpgaSpec;
    use lat_model::config::ModelConfig;
    use lat_model::graph::AttentionMode;
    use lat_workloads::datasets::DatasetSpec;

    fn tiny_design(s_avg: usize) -> AcceleratorDesign {
        AcceleratorDesign::new(
            &ModelConfig::tiny(),
            AttentionMode::paper_sparse(),
            FpgaSpec::alveo_u280(),
            s_avg,
        )
    }

    fn reactive_cfg(min: usize, initial: usize) -> AutoscaleConfig {
        AutoscaleConfig {
            min_shards: min,
            initial_shards: initial,
            policy: ScalePolicy::Reactive {
                scale_up_depth: 6.0,
                scale_down_depth: 1.0,
            },
            eval_interval_s: 0.05,
            warmup_s: 0.1,
            cooldown_s: 0.0,
            ..AutoscaleConfig::default()
        }
    }

    /// A two-phase burst profile: quiet, then far past 1-shard capacity.
    fn burst_profile() -> RateProfile {
        RateProfile::Piecewise(vec![
            RatePhase {
                duration_s: 1.0,
                rate: 30.0,
            },
            RatePhase {
                duration_s: 2.0,
                rate: 2500.0,
            },
        ])
    }

    #[test]
    fn pinned_full_fleet_reproduces_simulate_fleet_bit_for_bit() {
        let fleet = homogeneous_fleet(&tiny_design(64), 3);
        let trace = poisson_trace(&DatasetSpec::rte(), 500.0, 90, 42);
        let batcher = BatcherConfig::default();
        let auto = simulate_autoscale(
            &fleet,
            &trace,
            SchedulingPolicy::LengthAware,
            DispatchPolicy::JoinShortestQueue,
            &batcher,
            &AutoscaleConfig {
                min_shards: 3,
                initial_shards: 3,
                policy: ScalePolicy::Pinned,
                ..AutoscaleConfig::default()
            },
        );
        let fixed = simulate_fleet(
            &fleet,
            &trace,
            SchedulingPolicy::LengthAware,
            DispatchPolicy::JoinShortestQueue,
            &batcher,
        );
        assert_eq!(auto.fleet, fixed);
        assert!(auto.scale_events.is_empty());
        assert_eq!(auto.peak_active_shards, 3);
        let expect = 3.0 * fixed.makespan_s;
        assert!((auto.shard_seconds - expect).abs() < 1e-9);
    }

    #[test]
    fn reactive_scales_up_under_burst_and_back_down() {
        let fleet = homogeneous_fleet(&tiny_design(64), 4);
        let trace = nonstationary_poisson_trace(&DatasetSpec::mrpc(), &burst_profile(), 400, 7);
        let r = simulate_autoscale(
            &fleet,
            &trace,
            SchedulingPolicy::LengthAware,
            DispatchPolicy::JoinShortestQueue,
            &BatcherConfig::default(),
            &reactive_cfg(1, 1),
        );
        assert_eq!(r.fleet.completed, 400);
        assert!(r.peak_active_shards > 1, "never scaled up under the burst");
        assert!(
            r.scale_events
                .iter()
                .any(|e| e.kind == ScaleEventKind::Join),
            "no shard ever joined"
        );
        assert!(
            r.scale_events
                .iter()
                .any(|e| e.kind == ScaleEventKind::Retired),
            "never scaled back down after the burst"
        );
        assert!(r.mean_active_shards < r.peak_active_shards as f64);
        assert!(r.shard_seconds < 4.0 * r.fleet.makespan_s);
    }

    #[test]
    fn warming_shards_admit_no_work_before_join() {
        let fleet = homogeneous_fleet(&tiny_design(64), 4);
        let trace = nonstationary_poisson_trace(&DatasetSpec::mrpc(), &burst_profile(), 400, 11);
        let r = simulate_autoscale(
            &fleet,
            &trace,
            SchedulingPolicy::LengthAware,
            DispatchPolicy::JoinShortestQueue,
            &BatcherConfig::default(),
            &reactive_cfg(1, 1),
        );
        // Every batch on a launched shard starts at/after that shard's
        // join; shard 0 (initial) is exempt.
        for e in r
            .scale_events
            .iter()
            .filter(|e| e.kind == ScaleEventKind::Join)
        {
            let launch = r
                .scale_events
                .iter()
                .find(|l| l.shard == e.shard && l.kind == ScaleEventKind::Launch)
                .expect("join without launch");
            assert!(e.time_s - launch.time_s >= 0.1 - 1e-9, "warm-up skipped");
        }
        for b in &r.fleet.batch_log {
            if b.shard == 0 {
                continue;
            }
            let join = r
                .scale_events
                .iter()
                .filter(|e| e.shard == b.shard && e.kind == ScaleEventKind::Join)
                .map(|e| e.time_s)
                .next()
                .expect("batch on a shard that never joined");
            assert!(
                b.start_s >= join - 1e-9,
                "shard {} ran a batch at {} before joining at {}",
                b.shard,
                b.start_s,
                join
            );
        }
    }

    #[test]
    fn evict_reroutes_queued_work_and_conserves_requests() {
        let fleet = homogeneous_fleet(&tiny_design(64), 4);
        let trace = nonstationary_poisson_trace(&DatasetSpec::mrpc(), &burst_profile(), 500, 3);
        for retire in [RetirePolicy::Drain, RetirePolicy::Evict] {
            let r = simulate_autoscale(
                &fleet,
                &trace,
                SchedulingPolicy::LengthAware,
                DispatchPolicy::JoinShortestQueue,
                &BatcherConfig::default(),
                &AutoscaleConfig {
                    retire,
                    ..reactive_cfg(1, 4)
                },
            );
            assert_eq!(r.fleet.completed, 500, "{retire}");
            assert_eq!(
                r.fleet.shards.iter().map(|s| s.completed).sum::<usize>(),
                500,
                "{retire}"
            );
            // No batch on a shard after it retired (until a relaunch).
            for b in &r.fleet.batch_log {
                let mut allowed = true;
                for e in r.scale_events.iter().filter(|e| e.shard == b.shard) {
                    if e.time_s > b.start_s + 1e-12 {
                        break;
                    }
                    match e.kind {
                        ScaleEventKind::Retired | ScaleEventKind::Failed => allowed = false,
                        ScaleEventKind::Launch | ScaleEventKind::Join => allowed = true,
                        ScaleEventKind::RetireStart | ScaleEventKind::Recovered => {}
                    }
                }
                assert!(allowed, "{retire}: batch on retired shard {}", b.shard);
            }
        }
    }

    #[test]
    fn scheduled_policy_follows_the_table() {
        let fleet = homogeneous_fleet(&tiny_design(64), 3);
        let trace = poisson_trace(&DatasetSpec::mrpc(), 120.0, 360, 5);
        let r = simulate_autoscale(
            &fleet,
            &trace,
            SchedulingPolicy::LengthAware,
            DispatchPolicy::JoinShortestQueue,
            &BatcherConfig::default(),
            &AutoscaleConfig {
                min_shards: 1,
                initial_shards: 1,
                policy: ScalePolicy::Scheduled(vec![
                    SchedulePhase {
                        start_s: 0.5,
                        shards: 3,
                    },
                    SchedulePhase {
                        start_s: 1.5,
                        shards: 1,
                    },
                ]),
                eval_interval_s: 0.1,
                warmup_s: 0.05,
                ..AutoscaleConfig::default()
            },
        );
        assert_eq!(r.fleet.completed, 360);
        let launches = r
            .scale_events
            .iter()
            .filter(|e| e.kind == ScaleEventKind::Launch)
            .count();
        let retires = r
            .scale_events
            .iter()
            .filter(|e| e.kind == ScaleEventKind::RetireStart)
            .count();
        assert_eq!(launches, 2, "table never scaled to 3");
        assert!(retires >= 2, "table never scaled back to 1");
        assert_eq!(r.peak_active_shards, 3);
    }

    #[test]
    fn slo_and_phase_accounting_consistent() {
        let fleet = homogeneous_fleet(&tiny_design(64), 2);
        let trace = poisson_trace(&DatasetSpec::rte(), 200.0, 120, 9);
        let r = simulate_autoscale(
            &fleet,
            &trace,
            SchedulingPolicy::LengthAware,
            DispatchPolicy::JoinShortestQueue,
            &BatcherConfig::default(),
            &AutoscaleConfig {
                min_shards: 2,
                initial_shards: 2,
                policy: ScalePolicy::Pinned,
                slo_latency_s: 10.0, // generous: everything attains
                phase_bounds_s: vec![0.2, 0.4],
                ..AutoscaleConfig::default()
            },
        );
        assert_eq!(r.slo_attainment, 1.0);
        assert_eq!(r.phases.len(), 3);
        assert_eq!(r.phases.iter().map(|p| p.requests).sum::<usize>(), 120);
        assert!(r.phases.iter().all(|p| p.slo_attainment == 1.0));
        assert_eq!(r.phases[0].start_s, 0.0);
        assert_eq!(r.phases[2].end_s, f64::INFINITY);
    }

    #[test]
    fn utilization_target_scales_up_under_saturation() {
        // A tiny shard sustains ~78k seq/s, so saturate with a 200k seq/s
        // stream and tick fast enough to observe the busy window.
        let fleet = homogeneous_fleet(&tiny_design(64), 3);
        let trace = poisson_trace(&DatasetSpec::mrpc(), 200_000.0, 2000, 13);
        let r = simulate_autoscale(
            &fleet,
            &trace,
            SchedulingPolicy::LengthAware,
            DispatchPolicy::JoinShortestQueue,
            &BatcherConfig::default(),
            &AutoscaleConfig {
                min_shards: 1,
                initial_shards: 1,
                policy: ScalePolicy::UtilizationTarget {
                    low: 0.3,
                    high: 0.85,
                },
                eval_interval_s: 0.002,
                warmup_s: 0.002,
                cooldown_s: 0.0,
                ..AutoscaleConfig::default()
            },
        );
        assert_eq!(r.fleet.completed, 2000);
        assert_eq!(r.peak_active_shards, 3, "saturation never filled the fleet");
    }

    #[test]
    fn deterministic_for_identical_inputs() {
        let fleet = homogeneous_fleet(&tiny_design(64), 4);
        let trace = nonstationary_poisson_trace(&DatasetSpec::rte(), &burst_profile(), 300, 21);
        let go = || {
            simulate_autoscale(
                &fleet,
                &trace,
                SchedulingPolicy::LengthAware,
                DispatchPolicy::JoinShortestQueue,
                &BatcherConfig::default(),
                &reactive_cfg(1, 2),
            )
        };
        assert_eq!(go(), go());
    }

    #[test]
    #[should_panic(expected = "initial_shards outside")]
    fn initial_below_min_rejected() {
        let fleet = homogeneous_fleet(&tiny_design(64), 2);
        let trace = poisson_trace(&DatasetSpec::rte(), 100.0, 10, 1);
        let _ = simulate_autoscale(
            &fleet,
            &trace,
            SchedulingPolicy::LengthAware,
            DispatchPolicy::JoinShortestQueue,
            &BatcherConfig::default(),
            &AutoscaleConfig {
                min_shards: 2,
                initial_shards: 1,
                ..AutoscaleConfig::default()
            },
        );
    }

    // ───────────────────── rate forecaster ─────────────────────

    /// Feeds the forecaster the expected cumulative arrivals of `profile`
    /// sampled every `window_s` up to `horizon_s`.
    fn feed_profile(f: &mut RateForecaster, profile: &RateProfile, window_s: f64, horizon_s: f64) {
        let mut t = window_s;
        while t <= horizon_s + 1e-9 {
            f.observe(t, profile.cumulative(t).round() as usize);
            t += window_s;
        }
    }

    #[test]
    fn forecaster_converges_on_piecewise_profile() {
        // 2 s at 50/s then 400/s: after three seconds in the second
        // phase the EWMA must have converged to the new rate.
        let profile = RateProfile::Piecewise(vec![
            RatePhase {
                duration_s: 2.0,
                rate: 50.0,
            },
            RatePhase {
                duration_s: 10.0,
                rate: 400.0,
            },
        ]);
        let mut f = RateForecaster::new(0.3, None);
        feed_profile(&mut f, &profile, 0.1, 5.0);
        let est = f.rate_estimate();
        assert!(
            (est - 400.0).abs() / 400.0 < 0.1,
            "EWMA {est} not within 10% of 400"
        );
        // Without a period the forecast is the flat EWMA extrapolation.
        assert_eq!(f.forecast(9.0), est);
    }

    #[test]
    fn forecaster_harmonic_fit_tracks_diurnal_profile() {
        let profile = RateProfile::Diurnal {
            mean_rate: 100.0,
            swing: 4.0,
            period_s: 8.0,
        };
        let mut f = RateForecaster::new(0.3, Some(8.0));
        feed_profile(&mut f, &profile, 0.1, 16.0); // two full periods
        for &t in &[17.0, 18.5, 20.0, 22.0, 23.5] {
            let predicted = f.forecast(t);
            let truth = profile.rate_at(t);
            assert!(
                (predicted - truth).abs() / truth < 0.1,
                "forecast({t}) = {predicted} not within 10% of {truth}"
            );
        }
    }

    #[test]
    fn forecaster_harmonic_needs_a_full_period_of_history() {
        // Half a period of data: the fit must NOT be trusted yet — the
        // forecast falls back to the EWMA instead of extrapolating a
        // sinusoid through an under-determined history.
        let profile = RateProfile::Diurnal {
            mean_rate: 100.0,
            swing: 4.0,
            period_s: 8.0,
        };
        let mut f = RateForecaster::new(0.3, Some(8.0));
        feed_profile(&mut f, &profile, 0.1, 3.0);
        assert_eq!(f.forecast(100.0), f.rate_estimate());
    }

    #[test]
    fn forecaster_zero_arrival_windows_do_not_nan() {
        let mut f = RateForecaster::new(0.5, Some(4.0));
        for i in 1..=20 {
            f.observe(i as f64 * 0.5, 0); // dead air
        }
        assert_eq!(f.rate_estimate(), 0.0);
        let fc = f.forecast(30.0);
        assert!(fc.is_finite() && fc >= 0.0, "forecast {fc} not finite/≥0");
        // A zero-length window is folded into the next one, not divided
        // by zero.
        f.observe(10.0, 40);
        f.observe(10.0, 45);
        f.observe(10.5, 50);
        assert!(f.rate_estimate().is_finite());
        assert!(f.forecast(11.0).is_finite());
    }

    #[test]
    fn predictive_policy_scales_the_fleet_to_the_forecast() {
        // Demand ramps 40 → 150 seq/s against a declared 60 seq/s shard
        // capacity: the predictive fleet must provision ≥ 3 shards at the
        // peak and fall back towards 1 in the quiet tail, with every
        // request served.
        let fleet = homogeneous_fleet(&tiny_design(64), 4);
        let profile = RateProfile::Piecewise(vec![
            RatePhase {
                duration_s: 1.0,
                rate: 40.0,
            },
            RatePhase {
                duration_s: 2.0,
                rate: 150.0,
            },
            RatePhase {
                duration_s: 2.0,
                rate: 40.0,
            },
        ]);
        let trace = nonstationary_poisson_trace(&DatasetSpec::mrpc(), &profile, 400, 5);
        let r = simulate_autoscale(
            &fleet,
            &trace,
            SchedulingPolicy::LengthAware,
            DispatchPolicy::JoinShortestQueue,
            &BatcherConfig::default(),
            &AutoscaleConfig {
                min_shards: 1,
                initial_shards: 1,
                policy: ScalePolicy::Predictive {
                    shard_capacity: 60.0,
                    horizon_s: 0.15,
                    alpha: 0.5,
                    period_s: None,
                },
                eval_interval_s: 0.05,
                warmup_s: 0.1,
                cooldown_s: 0.0,
                ..AutoscaleConfig::default()
            },
        );
        assert_eq!(r.fleet.completed, 400);
        assert!(
            r.peak_active_shards >= 3,
            "forecast never provisioned the ramp: peak {}",
            r.peak_active_shards
        );
        assert!(
            r.scale_events
                .iter()
                .any(|e| e.kind == ScaleEventKind::Retired),
            "never scaled back down after the ramp"
        );
    }

    // ───────────────────── decode autoscaling ─────────────────────

    use crate::decode::{nonstationary_decode_trace, simulate_decode};

    /// Trickle → saturating burst → trickle. A tiny 4-slot shard sustains
    /// ~48k decode seq/s, so the 200k/s burst phase dumps a backlog that
    /// takes tens of milliseconds to drain — visible across many 2 ms
    /// controller ticks.
    fn decode_burst_trace(n: usize, seed: u64) -> Vec<DecodeRequest> {
        let spec = DatasetSpec::mrpc();
        nonstationary_decode_trace(
            &spec,
            &spec.decode_output(),
            0.1,
            &RateProfile::Piecewise(vec![
                RatePhase {
                    duration_s: 0.1,
                    rate: 1000.0,
                },
                RatePhase {
                    duration_s: 0.005,
                    rate: 200_000.0,
                },
                RatePhase {
                    duration_s: 1.0,
                    rate: 1000.0,
                },
            ]),
            n,
            seed,
        )
    }

    fn decode_reactive_cfg(min: usize, initial: usize) -> DecodeAutoscaleConfig {
        DecodeAutoscaleConfig {
            min_shards: min,
            initial_shards: initial,
            policy: ScalePolicy::Reactive {
                scale_up_depth: 4.0,
                scale_down_depth: 0.5,
            },
            eval_interval_s: 0.002,
            warmup_s: 0.004,
            cooldown_s: 0.0,
            ..DecodeAutoscaleConfig::default()
        }
    }

    fn run_decode_auto(
        trace: &[DecodeRequest],
        fleet: &[AcceleratorDesign],
        cfg: &DecodeAutoscaleConfig,
        scheduler: DecodeScheduler,
    ) -> DecodeAutoscaleReport {
        simulate_decode_autoscale(
            fleet,
            trace,
            SchedulingPolicy::LengthAware,
            DispatchPolicy::JoinShortestQueue,
            scheduler,
            &DecodeConfig {
                max_slots: 4,
                ttft_deadline_s: 0.25,
            },
            cfg,
        )
    }

    #[test]
    fn pinned_decode_full_fleet_reproduces_simulate_decode_bit_for_bit() {
        let fleet = homogeneous_fleet(&tiny_design(64), 3);
        let trace = decode_burst_trace(400, 42);
        let decode_cfg = DecodeConfig {
            max_slots: 4,
            ttft_deadline_s: 0.25,
        };
        let auto = simulate_decode_autoscale(
            &fleet,
            &trace,
            SchedulingPolicy::LengthAware,
            DispatchPolicy::JoinShortestQueue,
            DecodeScheduler::ContinuousPreempt,
            &decode_cfg,
            &DecodeAutoscaleConfig {
                min_shards: 3,
                initial_shards: 3,
                policy: ScalePolicy::Pinned,
                ..DecodeAutoscaleConfig::default()
            },
        );
        let fixed = simulate_decode(
            &fleet,
            &trace,
            SchedulingPolicy::LengthAware,
            DispatchPolicy::JoinShortestQueue,
            DecodeScheduler::ContinuousPreempt,
            &decode_cfg,
        );
        assert_eq!(auto.decode, fixed);
        assert!(auto.scale_events.is_empty());
        assert_eq!(auto.migrations, 0);
        assert_eq!(auto.peak_active_shards, 3);
        let expect = 3.0 * fixed.fleet.makespan_s;
        assert!((auto.shard_seconds - expect).abs() < 1e-9);
    }

    #[test]
    fn decode_reactive_scales_up_under_burst_and_back_down() {
        let fleet = homogeneous_fleet(&tiny_design(64), 4);
        let trace = decode_burst_trace(1400, 7);
        for scale_down in [DecodeScaleDown::Drain, DecodeScaleDown::Migrate] {
            let r = run_decode_auto(
                &trace,
                &fleet,
                &DecodeAutoscaleConfig {
                    scale_down,
                    ..decode_reactive_cfg(1, 1)
                },
                DecodeScheduler::Continuous,
            );
            assert_eq!(r.decode.fleet.completed, 1400, "{scale_down}");
            assert_eq!(
                r.decode.generated_tokens,
                trace.iter().map(|q| q.output_len as u64).sum::<u64>(),
                "{scale_down}"
            );
            assert!(
                r.peak_active_shards > 1,
                "{scale_down}: never scaled up under the burst"
            );
            assert!(
                r.scale_events
                    .iter()
                    .any(|e| e.kind == ScaleEventKind::Retired),
                "{scale_down}: never scaled back down"
            );
            assert!(r.mean_active_shards < r.peak_active_shards as f64);
        }
    }

    #[test]
    fn decode_migrate_re_prefills_evicted_residents_exactly_once() {
        // Start wide and schedule down to 1 shard mid-burst: residents
        // are mid-generation on the retiring shards, so Migrate must
        // evict them and every eviction must be matched by exactly one
        // re-prefill on a survivor. Continuous scheduling keeps deadline
        // preemptions out of the count.
        let fleet = homogeneous_fleet(&tiny_design(64), 3);
        let trace = decode_burst_trace(800, 11);
        let cfg = DecodeAutoscaleConfig {
            min_shards: 1,
            initial_shards: 3,
            policy: ScalePolicy::Scheduled(vec![SchedulePhase {
                start_s: 0.104, // mid-burst backlog: residents in flight
                shards: 1,
            }]),
            scale_down: DecodeScaleDown::Migrate,
            eval_interval_s: 0.002,
            warmup_s: 0.004,
            cooldown_s: 0.0,
            ..DecodeAutoscaleConfig::default()
        };
        let r = run_decode_auto(&trace, &fleet, &cfg, DecodeScheduler::Continuous);
        assert_eq!(r.decode.fleet.completed, 800);
        assert!(r.migrations > 0, "scale-down never caught a resident");
        assert_eq!(
            r.re_prefills, r.migrations,
            "every migrated resident re-prefills exactly once"
        );
        assert_eq!(r.decode.preemptions, 0, "continuous never preempts");
        // Token conservation survives the migrations.
        for (req, out) in trace.iter().zip(&r.decode.requests) {
            assert_eq!(out.tokens, req.output_len);
        }
        // The per-request split agrees with the totals.
        let per_req: usize = r
            .decode
            .requests
            .iter()
            .map(|q| q.re_prefills as usize)
            .sum();
        assert_eq!(per_req, r.re_prefills);
    }

    #[test]
    fn decode_migrate_releases_finished_static_residents_without_re_prefill() {
        // Static scheduling pads finished sequences in their slots until
        // the whole batch drains. A Migrate scale-down that catches such
        // a batch must evict (and re-prefill) only the residents still
        // generating — the finished ones are released, not migrated.
        // Shard 1 holds {out=1 (finished after one iteration), out=200
        // (mid-generation)} when the scheduled retire lands.
        let fleet = homogeneous_fleet(&tiny_design(64), 2);
        let mk = |output_len: usize| DecodeRequest {
            arrival_s: 0.0,
            prefill_len: 64,
            output_len,
            priority: crate::decode::Priority::Normal,
        };
        // JSQ routes in order: s0, s1, s0, s1.
        let trace = vec![mk(1), mk(1), mk(200), mk(200)];
        let r = simulate_decode_autoscale(
            &fleet,
            &trace,
            SchedulingPolicy::LengthAware,
            DispatchPolicy::JoinShortestQueue,
            DecodeScheduler::Static,
            &DecodeConfig {
                max_slots: 2,
                ttft_deadline_s: 0.25,
            },
            &DecodeAutoscaleConfig {
                min_shards: 1,
                initial_shards: 2,
                policy: ScalePolicy::Scheduled(vec![SchedulePhase {
                    start_s: 1e-4, // lands mid-batch, after the out=1 members finished
                    shards: 1,
                }]),
                scale_down: DecodeScaleDown::Migrate,
                eval_interval_s: 1e-4,
                warmup_s: 0.001,
                cooldown_s: 0.0,
                ..DecodeAutoscaleConfig::default()
            },
        );
        assert_eq!(r.decode.fleet.completed, 4);
        assert_eq!(r.decode.generated_tokens, 402);
        // Only the unfinished resident of the retired shard migrates; its
        // finished batch-mate is released with no phantom re-prefill.
        assert_eq!(r.migrations, 1, "finished padded resident was migrated");
        assert_eq!(r.re_prefills, 1);
        assert_eq!(
            r.decode.requests[1].re_prefills, 0,
            "finished request re-priced"
        );
        assert_eq!(
            r.decode.requests[3].re_prefills, 1,
            "live resident not re-prefilled"
        );
    }

    #[test]
    fn decode_drain_retires_without_re_prefills() {
        let fleet = homogeneous_fleet(&tiny_design(64), 3);
        let trace = decode_burst_trace(800, 13);
        let cfg = DecodeAutoscaleConfig {
            min_shards: 1,
            initial_shards: 3,
            policy: ScalePolicy::Scheduled(vec![SchedulePhase {
                start_s: 0.104,
                shards: 1,
            }]),
            scale_down: DecodeScaleDown::Drain,
            eval_interval_s: 0.002,
            warmup_s: 0.004,
            cooldown_s: 0.0,
            ..DecodeAutoscaleConfig::default()
        };
        let r = run_decode_auto(&trace, &fleet, &cfg, DecodeScheduler::Continuous);
        assert_eq!(r.decode.fleet.completed, 800);
        assert_eq!(r.migrations, 0, "drain never evicts");
        assert_eq!(r.re_prefills, 0, "drain pays no re-prefill");
        assert!(
            r.scale_events
                .iter()
                .any(|e| e.kind == ScaleEventKind::Retired),
            "the table scale-down never completed"
        );
        // Drained shards must not run an iteration after retiring.
        for b in &r.decode.fleet.batch_log {
            let mut allowed = true;
            for e in r.scale_events.iter().filter(|e| e.shard == b.shard) {
                if e.time_s > b.start_s + 1e-12 {
                    break;
                }
                match e.kind {
                    ScaleEventKind::Retired | ScaleEventKind::Failed => allowed = false,
                    ScaleEventKind::Launch | ScaleEventKind::Join => allowed = true,
                    ScaleEventKind::RetireStart | ScaleEventKind::Recovered => {}
                }
            }
            assert!(allowed, "iteration on retired shard {}", b.shard);
        }
    }

    #[test]
    fn decode_warmup_never_admits_work_to_a_cold_shard() {
        let fleet = homogeneous_fleet(&tiny_design(64), 4);
        let trace = decode_burst_trace(1400, 17);
        let r = run_decode_auto(
            &trace,
            &fleet,
            &decode_reactive_cfg(1, 1),
            DecodeScheduler::Continuous,
        );
        for e in r
            .scale_events
            .iter()
            .filter(|e| e.kind == ScaleEventKind::Join)
        {
            let launch = r
                .scale_events
                .iter()
                .find(|l| l.shard == e.shard && l.kind == ScaleEventKind::Launch)
                .expect("join without launch");
            assert!(e.time_s - launch.time_s >= 0.004 - 1e-9, "warm-up skipped");
        }
        for b in &r.decode.fleet.batch_log {
            if b.shard == 0 {
                continue;
            }
            let join = r
                .scale_events
                .iter()
                .filter(|e| e.shard == b.shard && e.kind == ScaleEventKind::Join)
                .map(|e| e.time_s)
                .next()
                .expect("iteration on a shard that never joined");
            assert!(
                b.start_s >= join - 1e-9,
                "shard {} ran an iteration at {} before joining at {}",
                b.shard,
                b.start_s,
                join
            );
        }
    }

    #[test]
    fn decode_predictive_autoscale_is_deterministic() {
        // Predictive scaling consumes only the simulation-time arrival
        // stream — re-running the identical inputs must be bit-identical
        // (the satellite pin: no wall-clock reads in the estimator).
        let fleet = homogeneous_fleet(&tiny_design(64), 4);
        let trace = decode_burst_trace(600, 21);
        let cfg = DecodeAutoscaleConfig {
            min_shards: 1,
            initial_shards: 1,
            policy: ScalePolicy::Predictive {
                shard_capacity: 2000.0,
                horizon_s: 0.006,
                alpha: 0.4,
                period_s: Some(0.5),
            },
            scale_down: DecodeScaleDown::Migrate,
            eval_interval_s: 0.002,
            warmup_s: 0.004,
            cooldown_s: 0.0,
            ..DecodeAutoscaleConfig::default()
        };
        let go = || run_decode_auto(&trace, &fleet, &cfg, DecodeScheduler::ContinuousPreempt);
        assert_eq!(go(), go());
    }

    #[test]
    #[should_panic(expected = "initial_shards outside")]
    fn decode_initial_below_min_rejected() {
        let fleet = homogeneous_fleet(&tiny_design(64), 2);
        let trace = decode_burst_trace(10, 1);
        let _ = run_decode_auto(
            &trace,
            &fleet,
            &DecodeAutoscaleConfig {
                min_shards: 2,
                initial_shards: 1,
                ..DecodeAutoscaleConfig::default()
            },
            DecodeScheduler::Continuous,
        );
    }

    #[test]
    #[should_panic(expected = "predictive alpha")]
    fn predictive_zero_alpha_rejected() {
        let fleet = homogeneous_fleet(&tiny_design(64), 2);
        let trace = poisson_trace(&DatasetSpec::rte(), 100.0, 10, 1);
        let _ = simulate_autoscale(
            &fleet,
            &trace,
            SchedulingPolicy::LengthAware,
            DispatchPolicy::JoinShortestQueue,
            &BatcherConfig::default(),
            &AutoscaleConfig {
                policy: ScalePolicy::Predictive {
                    shard_capacity: 50.0,
                    horizon_s: 0.1,
                    alpha: 0.0,
                    period_s: None,
                },
                ..AutoscaleConfig::default()
            },
        );
    }

    #[test]
    #[should_panic(expected = "scale_up_depth > scale_down_depth")]
    fn inverted_hysteresis_rejected() {
        let fleet = homogeneous_fleet(&tiny_design(64), 2);
        let trace = poisson_trace(&DatasetSpec::rte(), 100.0, 10, 1);
        let _ = simulate_autoscale(
            &fleet,
            &trace,
            SchedulingPolicy::LengthAware,
            DispatchPolicy::JoinShortestQueue,
            &BatcherConfig::default(),
            &AutoscaleConfig {
                policy: ScalePolicy::Reactive {
                    scale_up_depth: 1.0,
                    scale_down_depth: 4.0,
                },
                ..AutoscaleConfig::default()
            },
        );
    }
}
