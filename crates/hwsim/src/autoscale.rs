//! Runtime autoscaling over the fleet engine: shard join/retire driven by
//! pluggable policies under nonstationary load.
//!
//! The encoder fleet ([`crate::fleet`]) and decode engine
//! ([`crate::decode`]) simulate a *fixed* shard count, which wastes
//! shard-seconds in the trough of a diurnal load curve and blows latency
//! SLOs at its peak. This module drives the same event-driven core
//! ([`crate::fleet::FleetCore`]) with a controller that changes fleet
//! membership at runtime:
//!
//! - [`ScalePolicy::Pinned`] — never scales; with `min == max` shards this
//!   reproduces [`simulate_fleet`] **bit-for-bit** (it is literally the
//!   same code path), which `tests/autoscale_props.rs` pins.
//! - [`ScalePolicy::Reactive`] — queue-depth threshold with hysteresis:
//!   scale up one shard when mean waiting depth per accepting shard
//!   crosses `scale_up_depth`, down when it falls below
//!   `scale_down_depth`.
//! - [`ScalePolicy::UtilizationTarget`] — hold the fleet's busy fraction
//!   over the last evaluation window inside `[low, high]`.
//! - [`ScalePolicy::Scheduled`] — a time-of-day table of shard counts
//!   (applied at evaluation ticks).
//!
//! **Scale-up** pays a configurable warm-up delay (weight streaming into a
//! cold shard's HBM) before the shard joins dispatch; a warming shard is
//! paid for (shard-seconds) but never admits work. **Scale-down** follows
//! the decode engine's eviction-vs-drain split: [`RetirePolicy::Drain`]
//! stops routing to the shard and lets it finish its queued work before
//! retiring; [`RetirePolicy::Evict`] re-routes the queued (not yet
//! dispatched) requests to the surviving shards immediately — like decode
//! preemption, evicted work loses its place and re-queues, but is never
//! dropped. In both cases an in-flight batch always completes. If load
//! re-spikes while a shard is still draining, scale-up *recalls* it —
//! it rejoins dispatch immediately (weights still resident, no warm-up;
//! the event log shows a bare `Join`) instead of cold-launching a
//! replacement.
//!
//! The [`AutoscaleReport`] extends the [`FleetReport`] with the cost side
//! of the trade: shard-seconds (the cost proxy a deployment bills by), the
//! scaling-event log, SLO attainment overall and per workload phase, and
//! mean/peak active shards — enough to sweep a cost × p95 frontier, which
//! the `ablate_autoscale` bin does under a 4× diurnal swing.

use crate::accelerator::AcceleratorDesign;
use crate::fleet::{
    BatcherConfig, DispatchPolicy, FleetController, FleetCore, FleetReport, NullController, Request,
};
use lat_core::pipeline::SchedulingPolicy;
use lat_tensor::stats::percentile;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One entry of a [`ScalePolicy::Scheduled`] table: hold `shards` shards
/// from `start_s` until the next entry's start.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SchedulePhase {
    /// Time the phase begins, in seconds since simulation start.
    pub start_s: f64,
    /// Shard count to hold during the phase.
    pub shards: usize,
}

/// How the controller decides the target shard count at each evaluation
/// tick.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ScalePolicy {
    /// Never scale: the fleet stays at `initial_shards`. With
    /// `min_shards == max shards` this is [`simulate_fleet`] bit-for-bit.
    Pinned,
    /// Queue-depth threshold with hysteresis: scale up by one shard when
    /// the mean waiting depth per accepting shard exceeds
    /// `scale_up_depth`, down by one when it falls below
    /// `scale_down_depth` (`scale_up_depth > scale_down_depth` — the gap
    /// is the hysteresis band that stops flapping).
    Reactive {
        /// Mean waiting requests per accepting shard that triggers +1.
        scale_up_depth: f64,
        /// Mean waiting requests per accepting shard that triggers −1.
        scale_down_depth: f64,
    },
    /// Hold the fleet's busy fraction over the last evaluation window
    /// inside `[low, high]`: above `high` scale up, below `low` scale
    /// down.
    UtilizationTarget {
        /// Busy fraction below which a shard is retired.
        low: f64,
        /// Busy fraction above which a shard is launched.
        high: f64,
    },
    /// Time-of-day table of shard counts, applied at evaluation ticks;
    /// before the first entry's start the fleet stays at
    /// `initial_shards`.
    Scheduled(Vec<SchedulePhase>),
}

impl fmt::Display for ScalePolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScalePolicy::Pinned => write!(f, "pinned"),
            ScalePolicy::Reactive { .. } => write!(f, "reactive"),
            ScalePolicy::UtilizationTarget { .. } => write!(f, "utilization"),
            ScalePolicy::Scheduled(_) => write!(f, "scheduled"),
        }
    }
}

/// What happens to a retiring shard's waiting queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RetirePolicy {
    /// The shard stops accepting new work but serves its queue to empty
    /// before retiring (slow, graceful).
    Drain,
    /// The shard's waiting requests are re-routed to surviving shards
    /// immediately (the decode engine's preemption move applied to
    /// scale-down); the shard retires as soon as its in-flight batch
    /// completes. Evicted requests re-queue — they are never dropped.
    Evict,
}

impl fmt::Display for RetirePolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RetirePolicy::Drain => write!(f, "drain"),
            RetirePolicy::Evict => write!(f, "evict"),
        }
    }
}

/// Parameters of the autoscaling layer. The maximum shard count is the
/// length of the design slice handed to [`simulate_autoscale`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AutoscaleConfig {
    /// Floor on committed (active + warming) shards; never retires below.
    pub min_shards: usize,
    /// Shards active at `t = 0` (already warm).
    pub initial_shards: usize,
    /// Scaling decision rule.
    pub policy: ScalePolicy,
    /// Eviction-vs-drain semantics of scale-down.
    pub retire: RetirePolicy,
    /// Controller sampling period in seconds.
    pub eval_interval_s: f64,
    /// Weight-streaming delay between launching a shard and it joining
    /// dispatch; the shard is paid for but admits no work while warming.
    pub warmup_s: f64,
    /// Minimum time between scaling actions of the feedback policies
    /// (reactive / utilization-target); scheduled tables ignore it.
    pub cooldown_s: f64,
    /// End-to-end latency SLO used for attainment reporting.
    pub slo_latency_s: f64,
    /// Ascending arrival-time boundaries splitting the trace into
    /// reporting phases (empty = one phase). Purely observational.
    pub phase_bounds_s: Vec<f64>,
}

impl Default for AutoscaleConfig {
    fn default() -> Self {
        Self {
            min_shards: 1,
            initial_shards: 1,
            policy: ScalePolicy::Reactive {
                scale_up_depth: 12.0,
                scale_down_depth: 2.0,
            },
            retire: RetirePolicy::Drain,
            eval_interval_s: 0.2,
            warmup_s: 0.3,
            cooldown_s: 0.4,
            slo_latency_s: 0.25,
            phase_bounds_s: Vec::new(),
        }
    }
}

impl AutoscaleConfig {
    /// Panics unless the configuration is well-formed for a fleet of
    /// `max_shards` designs.
    pub fn validate(&self, max_shards: usize) {
        assert!(self.min_shards >= 1, "min_shards must be >= 1");
        assert!(
            self.min_shards <= max_shards,
            "min_shards exceeds the fleet size"
        );
        assert!(
            (self.min_shards..=max_shards).contains(&self.initial_shards),
            "initial_shards outside [min_shards, fleet size]"
        );
        assert!(self.eval_interval_s > 0.0, "eval interval must be positive");
        assert!(self.warmup_s >= 0.0, "negative warm-up");
        assert!(self.cooldown_s >= 0.0, "negative cooldown");
        assert!(self.slo_latency_s > 0.0, "SLO latency must be positive");
        assert!(
            self.phase_bounds_s.windows(2).all(|w| w[0] < w[1])
                && self
                    .phase_bounds_s
                    .iter()
                    .all(|b| b.is_finite() && *b > 0.0),
            "phase bounds must be ascending, positive and finite"
        );
        match &self.policy {
            ScalePolicy::Pinned => {}
            ScalePolicy::Reactive {
                scale_up_depth,
                scale_down_depth,
            } => assert!(
                scale_up_depth > scale_down_depth && *scale_down_depth >= 0.0,
                "reactive thresholds need scale_up_depth > scale_down_depth >= 0"
            ),
            ScalePolicy::UtilizationTarget { low, high } => assert!(
                high > low && *low >= 0.0,
                "utilization band needs high > low >= 0"
            ),
            ScalePolicy::Scheduled(table) => {
                assert!(
                    !table.is_empty(),
                    "scheduled table needs at least one phase"
                );
                assert!(
                    table.windows(2).all(|w| w[0].start_s < w[1].start_s),
                    "scheduled table must be sorted by start time"
                );
                assert!(
                    table
                        .iter()
                        .all(|p| (self.min_shards..=max_shards).contains(&p.shards)),
                    "scheduled shard counts outside [min_shards, fleet size]"
                );
            }
        }
    }
}

/// What a [`ScaleEvent`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScaleEventKind {
    /// A cold shard started warming up (paid from here on).
    Launch,
    /// A warmed shard joined dispatch.
    Join,
    /// A shard stopped accepting work and began draining/evicting.
    RetireStart,
    /// A retiring shard went idle and left the paid fleet.
    Retired,
}

impl fmt::Display for ScaleEventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScaleEventKind::Launch => write!(f, "launch"),
            ScaleEventKind::Join => write!(f, "join"),
            ScaleEventKind::RetireStart => write!(f, "retire-start"),
            ScaleEventKind::Retired => write!(f, "retired"),
        }
    }
}

/// One entry of the scaling-event log.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScaleEvent {
    /// Event time in seconds.
    pub time_s: f64,
    /// Shard the event concerns.
    pub shard: usize,
    /// What happened.
    pub kind: ScaleEventKind,
    /// Committed (active + warming + retiring) shards after the event.
    pub on_after: usize,
}

/// SLO attainment over one reporting phase of the trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhaseSlo {
    /// Phase start (arrival-time bucket), inclusive.
    pub start_s: f64,
    /// Phase end, exclusive (`f64::INFINITY` for the last phase).
    pub end_s: f64,
    /// Requests that arrived in the phase.
    pub requests: usize,
    /// Fraction of the phase's requests inside the latency SLO (1 when
    /// the phase is empty).
    pub slo_attainment: f64,
    /// 95th-percentile latency of the phase's requests (0 when empty).
    pub p95_latency_s: f64,
}

/// Result of an autoscaling simulation: the fleet-level report plus the
/// cost/SLO view the scaling trade-off is judged by.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AutoscaleReport {
    /// Fleet-level view (latency percentiles, throughput, per-shard
    /// stats, batch log). Shards that never joined show zero work.
    pub fleet: FleetReport,
    /// Σ over shards of paid time (launch → retirement, warm-up
    /// included; still-on shards are charged to the makespan) — the cost
    /// proxy autoscaling tries to shrink.
    pub shard_seconds: f64,
    /// Time-averaged committed shard count over the makespan.
    pub mean_active_shards: f64,
    /// Peak committed shard count.
    pub peak_active_shards: usize,
    /// Every scaling action in time order (empty for a pinned policy).
    pub scale_events: Vec<ScaleEvent>,
    /// Fraction of all requests inside `slo_latency_s`.
    pub slo_attainment: f64,
    /// Per-phase SLO attainment along `phase_bounds_s`.
    pub phases: Vec<PhaseSlo>,
}

/// Lifecycle of one shard under the autoscaler.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Lifecycle {
    /// Cold: not paid, not dispatched to.
    Off,
    /// Launched, streaming weights; paid but not yet dispatched to.
    Warming {
        /// Time the shard finishes warming and joins dispatch.
        ready_s: f64,
    },
    /// In the dispatch set.
    Active,
    /// Out of the dispatch set, finishing residual work.
    Retiring,
}

/// The policy-driven [`FleetController`].
struct Autoscaler<'a> {
    cfg: &'a AutoscaleConfig,
    max_shards: usize,
    lifecycle: Vec<Lifecycle>,
    /// Time each non-[`Lifecycle::Off`] shard started being paid for.
    on_since: Vec<f64>,
    shard_seconds: f64,
    events: Vec<ScaleEvent>,
    next_eval_s: f64,
    last_action_s: f64,
    /// Total busy time at the previous tick (utilization window).
    busy_snapshot: f64,
    /// Committed (non-Off) shards right now.
    on_count: usize,
    peak_on: usize,
    on_integral: f64,
    last_on_change_s: f64,
    done_ticking: bool,
}

impl<'a> Autoscaler<'a> {
    fn new(cfg: &'a AutoscaleConfig, max_shards: usize) -> Self {
        let lifecycle = (0..max_shards)
            .map(|s| {
                if s < cfg.initial_shards {
                    Lifecycle::Active
                } else {
                    Lifecycle::Off
                }
            })
            .collect();
        Self {
            cfg,
            max_shards,
            lifecycle,
            on_since: vec![0.0; max_shards],
            shard_seconds: 0.0,
            events: Vec::new(),
            next_eval_s: cfg.eval_interval_s,
            last_action_s: f64::NEG_INFINITY,
            busy_snapshot: 0.0,
            on_count: cfg.initial_shards,
            peak_on: cfg.initial_shards,
            on_integral: 0.0,
            last_on_change_s: 0.0,
            done_ticking: false,
        }
    }

    /// Advances the committed-shard integral and applies `delta`.
    fn change_on_count(&mut self, now: f64, delta: isize) {
        self.on_integral += self.on_count as f64 * (now - self.last_on_change_s);
        self.last_on_change_s = now;
        self.on_count = (self.on_count as isize + delta) as usize;
        self.peak_on = self.peak_on.max(self.on_count);
    }

    fn record(&mut self, now: f64, shard: usize, kind: ScaleEventKind) {
        self.events.push(ScaleEvent {
            time_s: now,
            shard,
            kind,
            on_after: self.on_count,
        });
    }

    fn accepting_count(&self, core: &FleetCore<'_>) -> usize {
        core.accepting.iter().filter(|&&a| a).count()
    }

    /// Shards committed *going forward* — active or warming, but not
    /// retiring (those leave as soon as they drain). Scaling decisions
    /// compare targets against this count, so in-progress drains can't
    /// stack further retires and push the surviving fleet below
    /// `min_shards`.
    fn staying_count(&self) -> usize {
        self.lifecycle
            .iter()
            .filter(|l| matches!(l, Lifecycle::Active | Lifecycle::Warming { .. }))
            .count()
    }

    /// Fleet busy time actually *elapsed* by `t`: `busy_time_s` charges a
    /// batch's whole service at dispatch, so clip off the in-flight
    /// batch's not-yet-elapsed tail. Window deltas of this integral are
    /// exact even when service times span many evaluation windows.
    fn busy_elapsed(&self, core: &FleetCore<'_>, t: f64) -> f64 {
        core.state
            .iter()
            .map(|st| {
                st.busy_time_s
                    - if st.busy {
                        (st.busy_until_s - t).max(0.0)
                    } else {
                        0.0
                    }
            })
            .sum()
    }

    /// Starts paying for shard `s`; it joins dispatch after the warm-up.
    fn launch(&mut self, core: &mut FleetCore<'_>, s: usize, now: f64) {
        self.change_on_count(now, 1);
        self.on_since[s] = now;
        self.record(now, s, ScaleEventKind::Launch);
        if self.cfg.warmup_s <= 0.0 {
            self.lifecycle[s] = Lifecycle::Active;
            core.accepting[s] = true;
            self.record(now, s, ScaleEventKind::Join);
        } else {
            let ready_s = now + self.cfg.warmup_s;
            self.lifecycle[s] = Lifecycle::Warming { ready_s };
            core.schedule_control(ready_s);
        }
    }

    /// Removes shard `s` from dispatch; its queue drains or evicts per the
    /// retire policy, and it leaves the paid fleet once idle.
    fn retire(&mut self, core: &mut FleetCore<'_>, s: usize, now: f64) {
        self.lifecycle[s] = Lifecycle::Retiring;
        core.accepting[s] = false;
        self.record(now, s, ScaleEventKind::RetireStart);
        if self.cfg.retire == RetirePolicy::Evict {
            core.state[s].tick(now);
            let evicted: Vec<usize> = core.state[s].queue.drain(..).collect();
            core.state[s].window_scheduled_for = None;
            let mut touched = Vec::new();
            for r in evicted {
                let s2 = core.admit(r, now);
                if !touched.contains(&s2) {
                    touched.push(s2);
                }
            }
            for s2 in touched {
                core.try_dispatch(s2, now);
            }
        }
        self.maybe_finish_retire(core, s, now);
    }

    /// Completes a retirement once the shard is idle with an empty queue.
    fn maybe_finish_retire(&mut self, core: &mut FleetCore<'_>, s: usize, now: f64) {
        if self.lifecycle[s] == Lifecycle::Retiring
            && !core.state[s].busy
            && core.state[s].queue.is_empty()
        {
            self.lifecycle[s] = Lifecycle::Off;
            self.change_on_count(now, -1);
            self.shard_seconds += now - self.on_since[s];
            self.record(now, s, ScaleEventKind::Retired);
        }
    }

    /// The policy's target committed-shard count at `now`, relative to
    /// the shards committed going forward (`staying`, not counting
    /// in-progress drains).
    fn desired_on(&self, core: &FleetCore<'_>, now: f64) -> usize {
        let staying = self.staying_count();
        match &self.cfg.policy {
            ScalePolicy::Pinned => staying,
            ScalePolicy::Reactive {
                scale_up_depth,
                scale_down_depth,
            } => {
                let waiting: usize = core.state.iter().map(|st| st.queue.len()).sum();
                let depth = waiting as f64 / self.accepting_count(core).max(1) as f64;
                if depth > *scale_up_depth {
                    staying + 1
                } else if depth < *scale_down_depth {
                    staying.saturating_sub(1)
                } else {
                    staying
                }
            }
            ScalePolicy::UtilizationTarget { low, high } => {
                // Busy fraction over the last window, normalized by the
                // *paid* fleet (retiring shards still serve).
                let busy = self.busy_elapsed(core, now);
                let util = (busy - self.busy_snapshot)
                    / (self.cfg.eval_interval_s * self.on_count.max(1) as f64);
                if util > *high {
                    staying + 1
                } else if util < *low {
                    staying.saturating_sub(1)
                } else {
                    staying
                }
            }
            ScalePolicy::Scheduled(table) => table
                .iter()
                .take_while(|p| p.start_s <= now)
                .last()
                .map_or(self.cfg.initial_shards, |p| p.shards),
        }
    }

    /// One evaluation tick: decide a target and launch/recall/retire
    /// towards it.
    fn evaluate(&mut self, core: &mut FleetCore<'_>, now: f64) {
        let desired = self
            .desired_on(core, now)
            .clamp(self.cfg.min_shards, self.max_shards);
        // The utilization window resets every tick, acted on or not.
        self.busy_snapshot = self.busy_elapsed(core, now);
        let staying = self.staying_count();
        if desired == staying {
            return;
        }
        let feedback = matches!(
            self.cfg.policy,
            ScalePolicy::Reactive { .. } | ScalePolicy::UtilizationTarget { .. }
        );
        if feedback && now - self.last_action_s < self.cfg.cooldown_s {
            return;
        }
        let mut acted = false;
        if desired > staying {
            let mut need = desired - staying;
            // Recall retiring shards first: they are still warm (weights
            // resident), so rejoining dispatch is free — no warm-up, no
            // fresh Launch; the event log shows a bare Join.
            for s in (0..self.max_shards).rev() {
                if need == 0 {
                    break;
                }
                if self.lifecycle[s] == Lifecycle::Retiring {
                    self.lifecycle[s] = Lifecycle::Active;
                    core.accepting[s] = true;
                    self.record(now, s, ScaleEventKind::Join);
                    need -= 1;
                    acted = true;
                }
            }
            for s in 0..self.max_shards {
                if need == 0 {
                    break;
                }
                if self.lifecycle[s] == Lifecycle::Off {
                    self.launch(core, s, now);
                    need -= 1;
                    acted = true;
                }
            }
        } else {
            // desired >= min_shards (clamped) and each retire moves one
            // shard out of `staying`, so the surviving fleet never drops
            // below the floor even while earlier drains are in flight.
            let mut staying_now = staying;
            for s in (0..self.max_shards).rev() {
                if staying_now == desired {
                    break;
                }
                // Retire only active shards, and never the last accepting
                // one — a warming shard is not yet a routing target.
                if self.lifecycle[s] == Lifecycle::Active && self.accepting_count(core) > 1 {
                    self.retire(core, s, now);
                    staying_now -= 1;
                    acted = true;
                }
            }
        }
        if acted {
            self.last_action_s = now;
        }
    }
}

impl FleetController for Autoscaler<'_> {
    fn on_control(&mut self, core: &mut FleetCore<'_>, now: f64) {
        // Finish any due warm-ups first, so a shard can join and receive
        // work decided at the very same tick.
        for s in 0..self.max_shards {
            if let Lifecycle::Warming { ready_s } = self.lifecycle[s] {
                if ready_s <= now {
                    self.lifecycle[s] = Lifecycle::Active;
                    core.accepting[s] = true;
                    self.record(now, s, ScaleEventKind::Join);
                }
            }
        }
        if self.done_ticking || now + 1e-9 < self.next_eval_s {
            return;
        }
        if core.completed() == core.trace.len() {
            // Work is done: stop the tick chain so the heap can drain.
            self.done_ticking = true;
            return;
        }
        self.evaluate(core, now);
        self.next_eval_s = now + self.cfg.eval_interval_s;
        core.schedule_control(self.next_eval_s);
    }

    fn after_completion(&mut self, core: &mut FleetCore<'_>, shard: usize, now: f64) {
        self.maybe_finish_retire(core, shard, now);
    }
}

/// Simulates `trace` over a fleet of up to `shards.len()` shards whose
/// membership the autoscaling controller drives at runtime; batching,
/// dispatch and the cost model are exactly [`simulate_fleet`]'s.
///
/// Every request completes exactly once — scaling events re-route or delay
/// work but never drop it.
///
/// # Panics
///
/// Panics on the [`simulate_fleet`] input errors or a malformed
/// [`AutoscaleConfig`] (see [`AutoscaleConfig::validate`]).
pub fn simulate_autoscale(
    shards: &[AcceleratorDesign],
    trace: &[Request],
    policy: SchedulingPolicy,
    dispatch: DispatchPolicy,
    batcher: &BatcherConfig,
    cfg: &AutoscaleConfig,
) -> AutoscaleReport {
    assert!(!shards.is_empty(), "fleet needs at least one shard");
    cfg.validate(shards.len());
    let accepting: Vec<bool> = (0..shards.len()).map(|s| s < cfg.initial_shards).collect();
    let mut core = FleetCore::new(shards, trace, policy, dispatch, batcher, accepting);
    let mut ctl = Autoscaler::new(cfg, shards.len());
    if matches!(cfg.policy, ScalePolicy::Pinned) {
        // No control events at all: the event stream is simulate_fleet's,
        // which is what makes the min==max pin bit-for-bit.
        core.run(&mut NullController);
    } else {
        core.schedule_control(cfg.eval_interval_s);
        core.run(&mut ctl);
    }

    let latencies: Vec<f64> = core
        .completion_s
        .iter()
        .zip(trace)
        .map(|(&c, req)| c - req.arrival_s)
        .collect();
    let fleet = core.into_report();
    let makespan = fleet.makespan_s;

    // Close the books on shards still committed at the end of the run.
    let mut shard_seconds = ctl.shard_seconds;
    for s in 0..shards.len() {
        if ctl.lifecycle[s] != Lifecycle::Off {
            shard_seconds += (makespan - ctl.on_since[s]).max(0.0);
        }
    }
    let end = makespan.max(ctl.last_on_change_s).max(1e-12);
    let on_integral = ctl.on_integral + ctl.on_count as f64 * (end - ctl.last_on_change_s);

    let in_slo = |lat: f64| lat <= cfg.slo_latency_s;
    let slo_attainment =
        latencies.iter().filter(|&&l| in_slo(l)).count() as f64 / latencies.len() as f64;
    let mut edges = vec![0.0];
    edges.extend(cfg.phase_bounds_s.iter().copied());
    edges.push(f64::INFINITY);
    let phases = edges
        .windows(2)
        .map(|w| {
            let phase_lat: Vec<f64> = trace
                .iter()
                .zip(&latencies)
                .filter(|(r, _)| r.arrival_s >= w[0] && r.arrival_s < w[1])
                .map(|(_, &l)| l)
                .collect();
            PhaseSlo {
                start_s: w[0],
                end_s: w[1],
                requests: phase_lat.len(),
                slo_attainment: if phase_lat.is_empty() {
                    1.0
                } else {
                    phase_lat.iter().filter(|&&l| in_slo(l)).count() as f64 / phase_lat.len() as f64
                },
                p95_latency_s: percentile(&phase_lat, 0.95).unwrap_or(0.0),
            }
        })
        .collect();

    AutoscaleReport {
        fleet,
        shard_seconds,
        mean_active_shards: on_integral / end,
        peak_active_shards: ctl.peak_on,
        scale_events: ctl.events,
        slo_attainment,
        phases,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::{
        homogeneous_fleet, nonstationary_poisson_trace, poisson_trace, simulate_fleet, RatePhase,
        RateProfile,
    };
    use crate::spec::FpgaSpec;
    use lat_model::config::ModelConfig;
    use lat_model::graph::AttentionMode;
    use lat_workloads::datasets::DatasetSpec;

    fn tiny_design(s_avg: usize) -> AcceleratorDesign {
        AcceleratorDesign::new(
            &ModelConfig::tiny(),
            AttentionMode::paper_sparse(),
            FpgaSpec::alveo_u280(),
            s_avg,
        )
    }

    fn reactive_cfg(min: usize, initial: usize) -> AutoscaleConfig {
        AutoscaleConfig {
            min_shards: min,
            initial_shards: initial,
            policy: ScalePolicy::Reactive {
                scale_up_depth: 6.0,
                scale_down_depth: 1.0,
            },
            eval_interval_s: 0.05,
            warmup_s: 0.1,
            cooldown_s: 0.0,
            ..AutoscaleConfig::default()
        }
    }

    /// A two-phase burst profile: quiet, then far past 1-shard capacity.
    fn burst_profile() -> RateProfile {
        RateProfile::Piecewise(vec![
            RatePhase {
                duration_s: 1.0,
                rate: 30.0,
            },
            RatePhase {
                duration_s: 2.0,
                rate: 2500.0,
            },
        ])
    }

    #[test]
    fn pinned_full_fleet_reproduces_simulate_fleet_bit_for_bit() {
        let fleet = homogeneous_fleet(&tiny_design(64), 3);
        let trace = poisson_trace(&DatasetSpec::rte(), 500.0, 90, 42);
        let batcher = BatcherConfig::default();
        let auto = simulate_autoscale(
            &fleet,
            &trace,
            SchedulingPolicy::LengthAware,
            DispatchPolicy::JoinShortestQueue,
            &batcher,
            &AutoscaleConfig {
                min_shards: 3,
                initial_shards: 3,
                policy: ScalePolicy::Pinned,
                ..AutoscaleConfig::default()
            },
        );
        let fixed = simulate_fleet(
            &fleet,
            &trace,
            SchedulingPolicy::LengthAware,
            DispatchPolicy::JoinShortestQueue,
            &batcher,
        );
        assert_eq!(auto.fleet, fixed);
        assert!(auto.scale_events.is_empty());
        assert_eq!(auto.peak_active_shards, 3);
        let expect = 3.0 * fixed.makespan_s;
        assert!((auto.shard_seconds - expect).abs() < 1e-9);
    }

    #[test]
    fn reactive_scales_up_under_burst_and_back_down() {
        let fleet = homogeneous_fleet(&tiny_design(64), 4);
        let trace = nonstationary_poisson_trace(&DatasetSpec::mrpc(), &burst_profile(), 400, 7);
        let r = simulate_autoscale(
            &fleet,
            &trace,
            SchedulingPolicy::LengthAware,
            DispatchPolicy::JoinShortestQueue,
            &BatcherConfig::default(),
            &reactive_cfg(1, 1),
        );
        assert_eq!(r.fleet.completed, 400);
        assert!(r.peak_active_shards > 1, "never scaled up under the burst");
        assert!(
            r.scale_events
                .iter()
                .any(|e| e.kind == ScaleEventKind::Join),
            "no shard ever joined"
        );
        assert!(
            r.scale_events
                .iter()
                .any(|e| e.kind == ScaleEventKind::Retired),
            "never scaled back down after the burst"
        );
        assert!(r.mean_active_shards < r.peak_active_shards as f64);
        assert!(r.shard_seconds < 4.0 * r.fleet.makespan_s);
    }

    #[test]
    fn warming_shards_admit_no_work_before_join() {
        let fleet = homogeneous_fleet(&tiny_design(64), 4);
        let trace = nonstationary_poisson_trace(&DatasetSpec::mrpc(), &burst_profile(), 400, 11);
        let r = simulate_autoscale(
            &fleet,
            &trace,
            SchedulingPolicy::LengthAware,
            DispatchPolicy::JoinShortestQueue,
            &BatcherConfig::default(),
            &reactive_cfg(1, 1),
        );
        // Every batch on a launched shard starts at/after that shard's
        // join; shard 0 (initial) is exempt.
        for e in r
            .scale_events
            .iter()
            .filter(|e| e.kind == ScaleEventKind::Join)
        {
            let launch = r
                .scale_events
                .iter()
                .find(|l| l.shard == e.shard && l.kind == ScaleEventKind::Launch)
                .expect("join without launch");
            assert!(e.time_s - launch.time_s >= 0.1 - 1e-9, "warm-up skipped");
        }
        for b in &r.fleet.batch_log {
            if b.shard == 0 {
                continue;
            }
            let join = r
                .scale_events
                .iter()
                .filter(|e| e.shard == b.shard && e.kind == ScaleEventKind::Join)
                .map(|e| e.time_s)
                .next()
                .expect("batch on a shard that never joined");
            assert!(
                b.start_s >= join - 1e-9,
                "shard {} ran a batch at {} before joining at {}",
                b.shard,
                b.start_s,
                join
            );
        }
    }

    #[test]
    fn evict_reroutes_queued_work_and_conserves_requests() {
        let fleet = homogeneous_fleet(&tiny_design(64), 4);
        let trace = nonstationary_poisson_trace(&DatasetSpec::mrpc(), &burst_profile(), 500, 3);
        for retire in [RetirePolicy::Drain, RetirePolicy::Evict] {
            let r = simulate_autoscale(
                &fleet,
                &trace,
                SchedulingPolicy::LengthAware,
                DispatchPolicy::JoinShortestQueue,
                &BatcherConfig::default(),
                &AutoscaleConfig {
                    retire,
                    ..reactive_cfg(1, 4)
                },
            );
            assert_eq!(r.fleet.completed, 500, "{retire}");
            assert_eq!(
                r.fleet.shards.iter().map(|s| s.completed).sum::<usize>(),
                500,
                "{retire}"
            );
            // No batch on a shard after it retired (until a relaunch).
            for b in &r.fleet.batch_log {
                let mut allowed = true;
                for e in r.scale_events.iter().filter(|e| e.shard == b.shard) {
                    if e.time_s > b.start_s + 1e-12 {
                        break;
                    }
                    match e.kind {
                        ScaleEventKind::Retired => allowed = false,
                        ScaleEventKind::Launch | ScaleEventKind::Join => allowed = true,
                        ScaleEventKind::RetireStart => {}
                    }
                }
                assert!(allowed, "{retire}: batch on retired shard {}", b.shard);
            }
        }
    }

    #[test]
    fn scheduled_policy_follows_the_table() {
        let fleet = homogeneous_fleet(&tiny_design(64), 3);
        let trace = poisson_trace(&DatasetSpec::mrpc(), 120.0, 360, 5);
        let r = simulate_autoscale(
            &fleet,
            &trace,
            SchedulingPolicy::LengthAware,
            DispatchPolicy::JoinShortestQueue,
            &BatcherConfig::default(),
            &AutoscaleConfig {
                min_shards: 1,
                initial_shards: 1,
                policy: ScalePolicy::Scheduled(vec![
                    SchedulePhase {
                        start_s: 0.5,
                        shards: 3,
                    },
                    SchedulePhase {
                        start_s: 1.5,
                        shards: 1,
                    },
                ]),
                eval_interval_s: 0.1,
                warmup_s: 0.05,
                ..AutoscaleConfig::default()
            },
        );
        assert_eq!(r.fleet.completed, 360);
        let launches = r
            .scale_events
            .iter()
            .filter(|e| e.kind == ScaleEventKind::Launch)
            .count();
        let retires = r
            .scale_events
            .iter()
            .filter(|e| e.kind == ScaleEventKind::RetireStart)
            .count();
        assert_eq!(launches, 2, "table never scaled to 3");
        assert!(retires >= 2, "table never scaled back to 1");
        assert_eq!(r.peak_active_shards, 3);
    }

    #[test]
    fn slo_and_phase_accounting_consistent() {
        let fleet = homogeneous_fleet(&tiny_design(64), 2);
        let trace = poisson_trace(&DatasetSpec::rte(), 200.0, 120, 9);
        let r = simulate_autoscale(
            &fleet,
            &trace,
            SchedulingPolicy::LengthAware,
            DispatchPolicy::JoinShortestQueue,
            &BatcherConfig::default(),
            &AutoscaleConfig {
                min_shards: 2,
                initial_shards: 2,
                policy: ScalePolicy::Pinned,
                slo_latency_s: 10.0, // generous: everything attains
                phase_bounds_s: vec![0.2, 0.4],
                ..AutoscaleConfig::default()
            },
        );
        assert_eq!(r.slo_attainment, 1.0);
        assert_eq!(r.phases.len(), 3);
        assert_eq!(r.phases.iter().map(|p| p.requests).sum::<usize>(), 120);
        assert!(r.phases.iter().all(|p| p.slo_attainment == 1.0));
        assert_eq!(r.phases[0].start_s, 0.0);
        assert_eq!(r.phases[2].end_s, f64::INFINITY);
    }

    #[test]
    fn utilization_target_scales_up_under_saturation() {
        // A tiny shard sustains ~78k seq/s, so saturate with a 200k seq/s
        // stream and tick fast enough to observe the busy window.
        let fleet = homogeneous_fleet(&tiny_design(64), 3);
        let trace = poisson_trace(&DatasetSpec::mrpc(), 200_000.0, 2000, 13);
        let r = simulate_autoscale(
            &fleet,
            &trace,
            SchedulingPolicy::LengthAware,
            DispatchPolicy::JoinShortestQueue,
            &BatcherConfig::default(),
            &AutoscaleConfig {
                min_shards: 1,
                initial_shards: 1,
                policy: ScalePolicy::UtilizationTarget {
                    low: 0.3,
                    high: 0.85,
                },
                eval_interval_s: 0.002,
                warmup_s: 0.002,
                cooldown_s: 0.0,
                ..AutoscaleConfig::default()
            },
        );
        assert_eq!(r.fleet.completed, 2000);
        assert_eq!(r.peak_active_shards, 3, "saturation never filled the fleet");
    }

    #[test]
    fn deterministic_for_identical_inputs() {
        let fleet = homogeneous_fleet(&tiny_design(64), 4);
        let trace = nonstationary_poisson_trace(&DatasetSpec::rte(), &burst_profile(), 300, 21);
        let go = || {
            simulate_autoscale(
                &fleet,
                &trace,
                SchedulingPolicy::LengthAware,
                DispatchPolicy::JoinShortestQueue,
                &BatcherConfig::default(),
                &reactive_cfg(1, 2),
            )
        };
        assert_eq!(go(), go());
    }

    #[test]
    #[should_panic(expected = "initial_shards outside")]
    fn initial_below_min_rejected() {
        let fleet = homogeneous_fleet(&tiny_design(64), 2);
        let trace = poisson_trace(&DatasetSpec::rte(), 100.0, 10, 1);
        let _ = simulate_autoscale(
            &fleet,
            &trace,
            SchedulingPolicy::LengthAware,
            DispatchPolicy::JoinShortestQueue,
            &BatcherConfig::default(),
            &AutoscaleConfig {
                min_shards: 2,
                initial_shards: 1,
                ..AutoscaleConfig::default()
            },
        );
    }

    #[test]
    #[should_panic(expected = "scale_up_depth > scale_down_depth")]
    fn inverted_hysteresis_rejected() {
        let fleet = homogeneous_fleet(&tiny_design(64), 2);
        let trace = poisson_trace(&DatasetSpec::rte(), 100.0, 10, 1);
        let _ = simulate_autoscale(
            &fleet,
            &trace,
            SchedulingPolicy::LengthAware,
            DispatchPolicy::JoinShortestQueue,
            &BatcherConfig::default(),
            &AutoscaleConfig {
                policy: ScalePolicy::Reactive {
                    scale_up_depth: 1.0,
                    scale_down_depth: 4.0,
                },
                ..AutoscaleConfig::default()
            },
        );
    }
}
