//! # lat-hwsim
//!
//! Cycle-approximate simulator of the paper's FPGA accelerator (§4, Fig. 2).
//!
//! The original system is an Alveo U280 design written in Vivado HLS; this
//! crate substitutes a calibrated performance/energy model with the same
//! resource envelope (see DESIGN.md's substitution table):
//!
//! - [`spec::FpgaSpec`] — the chip: 200 MHz clock, 3000 DSP slices in SLR0,
//!   460 GB/s HBM, 35 MB of on-chip memory, and a simple static+dynamic
//!   power model.
//! - [`kernels`] — cycle models of the individual hardware units: the tiled
//!   MM unit, the bits-selector + LUT distance unit, the II=1 merge-sort
//!   top-k unit, and the fused attention kernel.
//! - [`accelerator::AcceleratorDesign`] — glues a model configuration, an
//!   Algorithm-1 stage allocation and the chip spec into per-stage timing
//!   (compute/memory overlap per §4.1's prefetching), and runs whole
//!   batches through the length-aware pipeline to produce a
//!   [`report::FpgaRunReport`].
//! - [`energy`] — energy and GOP/J accounting used by Table 2.
//! - [`fleet`] — event-driven multi-shard serving simulator (round-robin /
//!   join-shortest-queue / length-binned dispatch over N designs), plus
//!   stationary and nonstationary (piecewise / diurnal) Poisson trace
//!   generators; [`serving`] is its 1-shard special case.
//! - [`decode`] — generative (multi-step) serving on the fleet machinery:
//!   static vs continuous (iteration-level) batching and deadline-driven
//!   preemption, with TTFT / inter-token-latency / goodput reporting.
//! - [`autoscale`] — runtime shard join/retire over the fleet engine:
//!   reactive / utilization-target / scheduled policies, warm-up delays,
//!   drain-vs-evict scale-down, and cost (shard-seconds) × SLO reporting.
//! - [`failure`] — deterministic fault injection over both engines: shard
//!   crashes and stragglers from a declarative [`failure::FaultPlan`],
//!   client timeout/retry/deadline semantics, and pre/during/post-incident
//!   SLO, goodput and scale-event reporting.
//! - [`disagg`] — disaggregated prefill/decode serving on the decode
//!   engine: independent pools joined by a priced
//!   [`decode::KvTransfer`] handoff, a deterministic shared-prefix
//!   cache, and per-pool autoscaling.
//!
//! # Example
//!
//! ```
//! use lat_hwsim::accelerator::AcceleratorDesign;
//! use lat_hwsim::spec::FpgaSpec;
//! use lat_core::pipeline::SchedulingPolicy;
//! use lat_model::config::ModelConfig;
//! use lat_model::graph::AttentionMode;
//!
//! let design = AcceleratorDesign::new(
//!     &ModelConfig::bert_base(),
//!     AttentionMode::paper_sparse(),
//!     FpgaSpec::alveo_u280(),
//!     177, // average sequence length used for stage allocation
//! );
//! let report = design.run_batch(&[140, 100, 82, 78, 72], SchedulingPolicy::LengthAware);
//! assert!(report.seconds > 0.0);
//! assert!(report.stage_utilization.iter().all(|&u| u <= 1.0));
//! ```

#![warn(missing_docs)]

pub mod accelerator;
pub mod autoscale;
pub mod decode;
pub mod disagg;
pub mod dse;
pub mod energy;
pub mod failure;
pub mod fleet;
pub mod hbm;
pub mod kernels;
pub mod report;
pub mod roofline;
pub mod serving;
pub mod spec;
pub mod statemachine;
pub mod substage;
