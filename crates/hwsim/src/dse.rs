//! Design-space exploration (§5.2: "We exploit the design space to
//! maximize the hardware throughput and CTC ratio for the hardware
//! design").
//!
//! The explorable knobs are the [`ResourceModel`] parameters — PE
//! granularity (DSPs per parallel instance), the per-stage DSP budget that
//! controls how Algorithm 1 cuts the operator chain — and the sequence
//! length the allocation is tuned at. Every candidate design is evaluated
//! by simulating the reference workload end-to-end; the result is the full
//! sweep plus the latency-optimal point.

use crate::accelerator::AcceleratorDesign;
use crate::spec::FpgaSpec;
use lat_core::pipeline::SchedulingPolicy;
use lat_core::stage_alloc::ResourceModel;
use lat_model::config::ModelConfig;
use lat_model::graph::AttentionMode;
use serde::{Deserialize, Serialize};

/// The candidate grid to sweep.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DseGrid {
    /// Candidate DSPs per parallel instance (PE granularity).
    pub dsp_per_instance: Vec<u32>,
    /// Candidate per-stage DSP budgets for the partitioning phase.
    pub stage_budgets: Vec<u32>,
    /// Candidate tuning lengths for the allocation.
    pub tuning_lengths: Vec<usize>,
}

impl Default for DseGrid {
    fn default() -> Self {
        Self {
            dsp_per_instance: vec![8, 16, 32],
            stage_budgets: vec![600, 1000, 1500],
            tuning_lengths: vec![68, 177, 256],
        }
    }
}

/// One evaluated design point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DsePoint {
    /// DSPs per instance used.
    pub dsp_per_instance: u32,
    /// Per-stage DSP budget used during partitioning.
    pub stage_budget: u32,
    /// Length the allocation was tuned at.
    pub tuning_length: usize,
    /// Number of coarse stages the partition produced.
    pub num_stages: usize,
    /// Mean batch latency on the reference workload, in seconds.
    pub seconds: f64,
    /// Mean stage utilization.
    pub utilization: f64,
}

/// Sweeps the grid, simulating every candidate on `workload` (a set of
/// batches of true lengths) and returning all points sorted by latency
/// (best first).
pub fn explore(
    cfg: &ModelConfig,
    mode: AttentionMode,
    spec: &FpgaSpec,
    workload: &[Vec<usize>],
    grid: &DseGrid,
) -> Vec<DsePoint> {
    let mut points = Vec::new();
    for &dpi in &grid.dsp_per_instance {
        for &budget in &grid.stage_budgets {
            for &tune in &grid.tuning_lengths {
                let res = ResourceModel {
                    dsp_per_instance: dpi,
                    dsp_budget_per_stage: budget,
                    dsp_total: spec.dsp_total,
                    ..ResourceModel::default()
                };
                let design =
                    AcceleratorDesign::with_resources(cfg, mode, mode, spec.clone(), tune, res);
                let mut seconds = 0.0;
                let mut util = 0.0;
                for batch in workload {
                    let r = design.run_batch(batch, SchedulingPolicy::LengthAware);
                    seconds += r.seconds;
                    util += r.mean_utilization();
                }
                let n = workload.len().max(1) as f64;
                points.push(DsePoint {
                    dsp_per_instance: dpi,
                    stage_budget: budget,
                    tuning_length: tune,
                    num_stages: design.allocation().num_stages(),
                    seconds: seconds / n,
                    utilization: util / n,
                });
            }
        }
    }
    points.sort_by(|a, b| a.seconds.total_cmp(&b.seconds));
    points
}

/// Convenience: the latency-optimal point of [`explore`].
///
/// # Panics
///
/// Panics if the grid is empty.
pub fn best(
    cfg: &ModelConfig,
    mode: AttentionMode,
    spec: &FpgaSpec,
    workload: &[Vec<usize>],
    grid: &DseGrid,
) -> DsePoint {
    explore(cfg, mode, spec, workload, grid)
        .into_iter()
        .next()
        .expect("non-empty DSE grid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use lat_tensor::rng::SplitMix64;
    use lat_workloads::datasets::DatasetSpec;

    fn workload() -> Vec<Vec<usize>> {
        let mut rng = SplitMix64::new(91);
        DatasetSpec::rte().sample_batches(&mut rng, 16, 2)
    }

    #[test]
    fn explore_covers_the_grid() {
        let grid = DseGrid {
            dsp_per_instance: vec![16, 32],
            stage_budgets: vec![800, 1200],
            tuning_lengths: vec![68],
        };
        let points = explore(
            &ModelConfig::bert_base(),
            AttentionMode::paper_sparse(),
            &FpgaSpec::alveo_u280(),
            &workload(),
            &grid,
        );
        assert_eq!(points.len(), 4);
        // Sorted best-first.
        for w in points.windows(2) {
            assert!(w[0].seconds <= w[1].seconds);
        }
    }

    #[test]
    fn best_is_minimum() {
        let grid = DseGrid {
            dsp_per_instance: vec![8, 16],
            stage_budgets: vec![1000],
            tuning_lengths: vec![68, 177],
        };
        let cfg = ModelConfig::bert_base();
        let all = explore(
            &cfg,
            AttentionMode::paper_sparse(),
            &FpgaSpec::alveo_u280(),
            &workload(),
            &grid,
        );
        let b = best(
            &cfg,
            AttentionMode::paper_sparse(),
            &FpgaSpec::alveo_u280(),
            &workload(),
            &grid,
        );
        assert_eq!(b, all[0]);
    }

    #[test]
    fn all_points_are_valid_designs() {
        let grid = DseGrid::default();
        let points = explore(
            &ModelConfig::bert_base(),
            AttentionMode::paper_sparse(),
            &FpgaSpec::alveo_u280(),
            &workload()[..1],
            &grid,
        );
        for p in &points {
            assert!(p.seconds > 0.0);
            assert!(p.num_stages >= 1);
            assert!((0.0..=1.0).contains(&p.utilization));
        }
    }

    #[test]
    fn tuning_at_workload_average_is_competitive() {
        // Tuning the allocation at the workload's own average length
        // should be at least as good as tuning far away from it.
        let cfg = ModelConfig::bert_base();
        let spec = FpgaSpec::alveo_u280();
        let wl = workload(); // RTE, avg 68
        let grid_near = DseGrid {
            dsp_per_instance: vec![16],
            stage_budgets: vec![1000],
            tuning_lengths: vec![68],
        };
        let grid_far = DseGrid {
            dsp_per_instance: vec![16],
            stage_budgets: vec![1000],
            tuning_lengths: vec![821],
        };
        let near = best(&cfg, AttentionMode::paper_sparse(), &spec, &wl, &grid_near);
        let far = best(&cfg, AttentionMode::paper_sparse(), &spec, &wl, &grid_far);
        assert!(
            near.seconds <= far.seconds * 1.05,
            "near {:.4} vs far {:.4}",
            near.seconds,
            far.seconds
        );
    }
}
