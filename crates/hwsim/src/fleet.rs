//! Event-driven multi-accelerator fleet simulator.
//!
//! Where [`crate::serving`] models one accelerator, this module simulates a
//! *fleet* of N [`AcceleratorDesign`] shards (homogeneous or heterogeneous)
//! fed by a single arrival stream through a pluggable [`DispatchPolicy`].
//! Each shard runs its own batcher which closes a batch at the **earlier**
//! of the batching-window expiry and the batch-cap fill — the cap-fill path
//! is the fix for the batch-window stall the old serial batcher had (a full
//! batch used to idle until the window elapsed).
//!
//! The engine is a classic discrete-event simulation: a priority queue of
//! arrival / window-close / batch-completion events ordered by time with
//! deterministic tie-breaking, so every run is bit-reproducible for a given
//! trace. [`crate::serving::simulate_serving`] is reimplemented as the
//! 1-shard special case of this engine.

use crate::accelerator::AcceleratorDesign;
use lat_core::pipeline::SchedulingPolicy;
use lat_tensor::rng::SplitMix64;
use lat_tensor::stats::percentile;
use lat_workloads::datasets::LengthSampler;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};
use std::fmt;

/// One serving request in an arrival trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// Arrival time in seconds since simulation start.
    pub arrival_s: f64,
    /// Sequence length in tokens.
    pub len: usize,
}

/// Shared Poisson trace builder: one exponential gap draw per request from
/// the primary RNG stream, then `payload` turns `(rng, arrival_time)` into
/// the request record, drawing any per-request fields it needs from the
/// same stream.
///
/// Both [`poisson_trace`] and [`crate::decode::decode_trace`] are thin
/// wrappers over this function, so their arrival processes are one piece of
/// code and cannot drift apart: generators that draw the same per-request
/// fields from the primary stream emit bit-identical arrival times for the
/// same `(rate, n, seed)`.
///
/// # Panics
///
/// Panics if `arrival_rate <= 0` or `num_requests == 0`.
pub fn poisson_process<T>(
    arrival_rate: f64,
    num_requests: usize,
    seed: u64,
    mut payload: impl FnMut(&mut SplitMix64, f64) -> T,
) -> Vec<T> {
    assert!(arrival_rate > 0.0, "arrival rate must be positive");
    assert!(num_requests > 0, "num_requests must be >= 1");
    let mut rng = SplitMix64::new(seed);
    let mut trace = Vec::with_capacity(num_requests);
    let mut t = 0.0f64;
    for _ in 0..num_requests {
        let u = rng.next_f64().max(1e-12);
        t += -u.ln() / arrival_rate;
        trace.push(payload(&mut rng, t));
    }
    trace
}

/// Generates a Poisson arrival trace (exponential inter-arrival times) with
/// lengths drawn from `sampler`.
///
/// The RNG call order (one `next_f64` for the gap, then one length sample
/// per request) is the serving simulator's historical stream, so traces are
/// stable across the serial→fleet refactor.
///
/// # Panics
///
/// Panics if `arrival_rate <= 0` or `num_requests == 0`.
pub fn poisson_trace<S: LengthSampler + ?Sized>(
    sampler: &S,
    arrival_rate: f64,
    num_requests: usize,
    seed: u64,
) -> Vec<Request> {
    poisson_process(arrival_rate, num_requests, seed, |rng, t| Request {
        arrival_s: t,
        len: sampler.sample_length(rng),
    })
}

/// Per-shard batcher parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatcherConfig {
    /// Maximum time a batch waits after its first queued request. The batch
    /// dispatches earlier if the cap fills or, when the shard is busy past
    /// the window, as soon as the shard frees up.
    pub batch_window_s: f64,
    /// Maximum sequences per batch.
    pub max_batch: usize,
}

impl Default for BatcherConfig {
    fn default() -> Self {
        Self {
            batch_window_s: 0.05,
            max_batch: 16,
        }
    }
}

/// How arriving requests are routed to shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DispatchPolicy {
    /// Cycle through shards in order, ignoring state.
    RoundRobin,
    /// Send to the shard with the fewest waiting + in-flight requests
    /// (lowest index breaks ties).
    JoinShortestQueue,
    /// Route by length: the shard whose tuned `s_avg` is the smallest one
    /// `>=` the request length (or the largest-tuned shard for over-long
    /// requests); join-shortest-queue among equally-tuned shards. Keeps
    /// short traffic off shards sized for long sequences and vice versa.
    LengthBinned,
}

impl DispatchPolicy {
    /// All dispatch policies, for sweeps.
    pub const ALL: [DispatchPolicy; 3] = [
        DispatchPolicy::RoundRobin,
        DispatchPolicy::JoinShortestQueue,
        DispatchPolicy::LengthBinned,
    ];
}

impl fmt::Display for DispatchPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DispatchPolicy::RoundRobin => write!(f, "round-robin"),
            DispatchPolicy::JoinShortestQueue => write!(f, "join-shortest-queue"),
            DispatchPolicy::LengthBinned => write!(f, "length-binned"),
        }
    }
}

/// One executed batch (diagnostics / regression tests).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BatchRecord {
    /// Shard that executed the batch.
    pub shard: usize,
    /// Dispatch time in seconds.
    pub start_s: f64,
    /// Completion time in seconds.
    pub completion_s: f64,
    /// Sequences in the batch.
    pub size: usize,
}

/// Per-shard slice of a [`FleetReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardReport {
    /// Shard index within the fleet.
    pub shard: usize,
    /// The `s_avg` the shard's stage allocation was tuned for.
    pub tuned_length: usize,
    /// Requests completed on this shard.
    pub completed: usize,
    /// Batches executed.
    pub batches: usize,
    /// Mean formed batch size (0 if the shard never ran).
    pub mean_batch_size: f64,
    /// Busy time / fleet makespan.
    pub utilization: f64,
    /// Time-averaged number of waiting requests.
    pub mean_queue_depth: f64,
    /// Peak number of waiting requests.
    pub max_queue_depth: usize,
}

/// Result of a fleet simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetReport {
    /// Requests completed (always the trace length — conservation).
    pub completed: usize,
    /// Mean end-to-end latency (arrival → batch completion) in seconds.
    pub mean_latency_s: f64,
    /// Median latency.
    pub p50_latency_s: f64,
    /// 95th-percentile latency.
    pub p95_latency_s: f64,
    /// 99th-percentile latency.
    pub p99_latency_s: f64,
    /// Sustained throughput in sequences/second.
    pub throughput_seq_s: f64,
    /// Last batch completion time.
    pub makespan_s: f64,
    /// Mean formed batch size across the fleet.
    pub mean_batch_size: f64,
    /// Per-shard statistics.
    pub shards: Vec<ShardReport>,
    /// Every executed batch in dispatch order.
    pub batch_log: Vec<BatchRecord>,
}

/// Builds `n` clones of `design` — the homogeneous scaling fleet.
pub fn homogeneous_fleet(design: &AcceleratorDesign, n: usize) -> Vec<AcceleratorDesign> {
    assert!(n > 0, "fleet needs at least one shard");
    vec![design.clone(); n]
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum EventKind {
    /// Request index arrives and is routed to a shard.
    Arrival(usize),
    /// Shard finishes its in-flight batch.
    Completion(usize),
    /// Shard's batching window for head request expires.
    WindowClose { shard: usize, head: usize },
}

/// Heap entry shared by the fleet and decode engines; ordered by time, then
/// kind rank (arrivals before completions/step-ends before window closes,
/// so same-instant arrivals join the closing batch exactly as the serial
/// simulator admitted them), then insertion order. The kind payload never
/// participates in the ordering.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Event<K> {
    pub(crate) time: f64,
    pub(crate) rank: u8,
    pub(crate) seq: u64,
    pub(crate) kind: K,
}

impl<K> PartialEq for Event<K> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.rank == other.rank && self.seq == other.seq
    }
}

impl<K> Eq for Event<K> {}

impl<K> PartialOrd for Event<K> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<K> Ord for Event<K> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we pop the earliest event.
        let fwd = self
            .time
            .partial_cmp(&other.time)
            .expect("finite event times")
            .then(self.rank.cmp(&other.rank))
            .then(self.seq.cmp(&other.seq));
        fwd.reverse()
    }
}

/// Pushes an event and bumps the insertion-order tie-breaker.
pub(crate) fn push_event<K>(
    heap: &mut BinaryHeap<Event<K>>,
    seq: &mut u64,
    time: f64,
    rank: u8,
    kind: K,
) {
    heap.push(Event {
        time,
        rank,
        seq: *seq,
        kind,
    });
    *seq += 1;
}

struct ShardState {
    queue: VecDeque<usize>,
    busy: bool,
    inflight: usize,
    busy_time_s: f64,
    completed: usize,
    batch_sizes: Vec<usize>,
    queue_integral: f64,
    max_queue_depth: usize,
    last_event_s: f64,
    /// Head request a window-close event is already scheduled for
    /// (request indices are unique, so this dedup is safe for the run).
    window_scheduled_for: Option<usize>,
}

impl ShardState {
    fn new() -> Self {
        Self {
            queue: VecDeque::new(),
            busy: false,
            inflight: 0,
            busy_time_s: 0.0,
            completed: 0,
            batch_sizes: Vec::new(),
            queue_integral: 0.0,
            max_queue_depth: 0,
            last_event_s: 0.0,
            window_scheduled_for: None,
        }
    }

    /// Waiting + in-flight requests — the load metric JSQ balances.
    fn load(&self) -> usize {
        self.queue.len() + self.inflight
    }

    /// Advances the queue-depth integral to `now` (call before mutating).
    fn tick(&mut self, now: f64) {
        self.queue_integral += self.queue.len() as f64 * (now - self.last_event_s);
        self.last_event_s = now;
    }
}

/// Simulates `trace` over a fleet of `shards`, each batching with `cfg` and
/// executing under `policy`, requests routed by `dispatch`.
///
/// Every request completes exactly once; the returned latencies are
/// arrival → completion of the batch containing the request.
///
/// # Panics
///
/// Panics if `shards` or `trace` is empty, `cfg.max_batch == 0`,
/// `cfg.batch_window_s < 0`, or the trace is unsorted / non-finite.
pub fn simulate_fleet(
    shards: &[AcceleratorDesign],
    trace: &[Request],
    policy: SchedulingPolicy,
    dispatch: DispatchPolicy,
    cfg: &BatcherConfig,
) -> FleetReport {
    assert!(!shards.is_empty(), "fleet needs at least one shard");
    assert!(!trace.is_empty(), "empty arrival trace");
    assert!(cfg.max_batch > 0, "max_batch must be >= 1");
    assert!(cfg.batch_window_s >= 0.0, "negative batch window");
    assert!(
        trace
            .iter()
            .all(|r| r.arrival_s.is_finite() && r.arrival_s >= 0.0),
        "arrival times must be finite and non-negative"
    );
    assert!(
        trace.windows(2).all(|w| w[0].arrival_s <= w[1].arrival_s),
        "trace must be sorted by arrival time"
    );

    let push = push_event::<EventKind>;

    let mut state: Vec<ShardState> = (0..shards.len()).map(|_| ShardState::new()).collect();
    let mut heap: BinaryHeap<Event<EventKind>> = BinaryHeap::with_capacity(trace.len() * 2);
    let mut seq = 0u64;
    for (r, req) in trace.iter().enumerate() {
        push(&mut heap, &mut seq, req.arrival_s, 0, EventKind::Arrival(r));
    }

    let mut completion_s = vec![f64::NAN; trace.len()];
    let mut batch_log = Vec::new();
    let mut rr_next = 0usize;

    // Dispatches the shard's next batch if one is ready (shard idle AND
    // cap full or window expired); otherwise schedules the window close.
    let try_dispatch = |s: usize,
                        now: f64,
                        state: &mut [ShardState],
                        heap: &mut BinaryHeap<Event<EventKind>>,
                        seq: &mut u64,
                        completion_s: &mut [f64],
                        batch_log: &mut Vec<BatchRecord>| {
        let st = &mut state[s];
        if st.busy || st.queue.is_empty() {
            return;
        }
        let head = *st.queue.front().expect("non-empty queue");
        let window_close = trace[head].arrival_s + cfg.batch_window_s;
        if st.queue.len() >= cfg.max_batch || now >= window_close {
            let take = cfg.max_batch.min(st.queue.len());
            let lengths: Vec<usize> = st.queue.iter().take(take).map(|&r| trace[r].len).collect();
            let service = shards[s].run_batch(&lengths, policy).seconds;
            let completion = now + service;
            for _ in 0..take {
                let r = st.queue.pop_front().expect("counted above");
                completion_s[r] = completion;
            }
            st.busy = true;
            st.inflight = take;
            st.busy_time_s += service;
            st.completed += take;
            st.batch_sizes.push(take);
            st.window_scheduled_for = None;
            batch_log.push(BatchRecord {
                shard: s,
                start_s: now,
                completion_s: completion,
                size: take,
            });
            push(heap, seq, completion, 1, EventKind::Completion(s));
        } else if st.window_scheduled_for != Some(head) {
            st.window_scheduled_for = Some(head);
            push(
                heap,
                seq,
                window_close,
                2,
                EventKind::WindowClose { shard: s, head },
            );
        }
    };

    while let Some(ev) = heap.pop() {
        match ev.kind {
            EventKind::Arrival(r) => {
                // Admit ALL same-instant arrivals before any dispatch
                // decision, so a zero (or exactly-elapsed) window can't
                // split a simultaneous burst that the serial batcher would
                // have admitted into one batch. Arrival events are pushed
                // in trace order, so ties are contiguous in pop order.
                let mut touched = Vec::new();
                let admit = |r: usize, state: &mut [ShardState], rr_next: &mut usize| {
                    let s = route(
                        dispatch,
                        shards,
                        &|i| state[i].load(),
                        trace[r].len,
                        rr_next,
                    );
                    state[s].tick(ev.time);
                    state[s].queue.push_back(r);
                    state[s].max_queue_depth = state[s].max_queue_depth.max(state[s].queue.len());
                    s
                };
                touched.push(admit(r, &mut state, &mut rr_next));
                while let Some(next) = heap.peek() {
                    match next.kind {
                        EventKind::Arrival(r2) if next.time == ev.time => {
                            heap.pop();
                            let s = admit(r2, &mut state, &mut rr_next);
                            if !touched.contains(&s) {
                                touched.push(s);
                            }
                        }
                        _ => break,
                    }
                }
                for s in touched {
                    try_dispatch(
                        s,
                        ev.time,
                        &mut state,
                        &mut heap,
                        &mut seq,
                        &mut completion_s,
                        &mut batch_log,
                    );
                }
            }
            EventKind::Completion(s) => {
                state[s].tick(ev.time);
                state[s].busy = false;
                state[s].inflight = 0;
                try_dispatch(
                    s,
                    ev.time,
                    &mut state,
                    &mut heap,
                    &mut seq,
                    &mut completion_s,
                    &mut batch_log,
                );
            }
            EventKind::WindowClose { shard: s, head } => {
                // Stale if the head batch already dispatched (cap fill or a
                // busy shard draining past the window).
                if !state[s].busy && state[s].queue.front() == Some(&head) {
                    state[s].tick(ev.time);
                    try_dispatch(
                        s,
                        ev.time,
                        &mut state,
                        &mut heap,
                        &mut seq,
                        &mut completion_s,
                        &mut batch_log,
                    );
                }
            }
        }
    }

    let makespan = batch_log
        .iter()
        .map(|b| b.completion_s)
        .fold(0.0f64, f64::max);
    let latencies: Vec<f64> = completion_s
        .iter()
        .zip(trace)
        .map(|(&c, req)| {
            assert!(c.is_finite(), "request never completed");
            c - req.arrival_s
        })
        .collect();
    let pct = |p: f64| percentile(&latencies, p).expect("non-empty latencies");
    let shard_reports = state
        .iter()
        .enumerate()
        .map(|(i, st)| ShardReport {
            shard: i,
            tuned_length: shards[i].tuned_length(),
            completed: st.completed,
            batches: st.batch_sizes.len(),
            mean_batch_size: if st.batch_sizes.is_empty() {
                0.0
            } else {
                st.completed as f64 / st.batch_sizes.len() as f64
            },
            utilization: st.busy_time_s / makespan.max(1e-12),
            mean_queue_depth: st.queue_integral / makespan.max(1e-12),
            max_queue_depth: st.max_queue_depth,
        })
        .collect();
    FleetReport {
        completed: latencies.len(),
        mean_latency_s: latencies.iter().sum::<f64>() / latencies.len() as f64,
        p50_latency_s: pct(0.50),
        p95_latency_s: pct(0.95),
        p99_latency_s: pct(0.99),
        throughput_seq_s: latencies.len() as f64 / makespan.max(1e-12),
        makespan_s: makespan,
        mean_batch_size: latencies.len() as f64 / batch_log.len() as f64,
        shards: shard_reports,
        batch_log,
    }
}

/// Picks the destination shard for a request of length `len` — shared by
/// the encoder fleet and the decode engine, which only differ in how they
/// measure per-shard load (`load(i)` = waiting + in-flight requests).
pub(crate) fn route(
    dispatch: DispatchPolicy,
    shards: &[AcceleratorDesign],
    load: &dyn Fn(usize) -> usize,
    len: usize,
    rr_next: &mut usize,
) -> usize {
    match dispatch {
        DispatchPolicy::RoundRobin => {
            let s = *rr_next % shards.len();
            *rr_next += 1;
            s
        }
        DispatchPolicy::JoinShortestQueue => least_loaded(load, 0..shards.len()),
        DispatchPolicy::LengthBinned => {
            let target = shards
                .iter()
                .map(|d| d.tuned_length())
                .filter(|&t| t >= len)
                .min()
                .unwrap_or_else(|| {
                    shards
                        .iter()
                        .map(|d| d.tuned_length())
                        .max()
                        .expect("non-empty fleet")
                });
            least_loaded(
                load,
                (0..shards.len()).filter(|&i| shards[i].tuned_length() == target),
            )
        }
    }
}

fn least_loaded(load: &dyn Fn(usize) -> usize, candidates: impl Iterator<Item = usize>) -> usize {
    candidates
        .min_by_key(|&i| (load(i), i))
        .expect("at least one candidate shard")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::FpgaSpec;
    use lat_model::config::ModelConfig;
    use lat_model::graph::AttentionMode;
    use lat_workloads::datasets::DatasetSpec;

    fn tiny_design(s_avg: usize) -> AcceleratorDesign {
        AcceleratorDesign::new(
            &ModelConfig::tiny(),
            AttentionMode::paper_sparse(),
            FpgaSpec::alveo_u280(),
            s_avg,
        )
    }

    fn burst(n: usize, at: f64, len: usize) -> Vec<Request> {
        vec![Request { arrival_s: at, len }; n]
    }

    #[test]
    fn cap_fill_dispatches_at_arrival_not_window_close() {
        // The stall bug: 2×max_batch simultaneous arrivals must start the
        // first batch at the arrival instant, not batch_window_s later.
        let fleet = homogeneous_fleet(&tiny_design(64), 1);
        let cfg = BatcherConfig {
            batch_window_s: 0.5,
            max_batch: 8,
        };
        let trace = burst(16, 0.25, 64);
        let r = simulate_fleet(
            &fleet,
            &trace,
            SchedulingPolicy::LengthAware,
            DispatchPolicy::JoinShortestQueue,
            &cfg,
        );
        assert_eq!(r.batch_log.len(), 2);
        assert_eq!(r.batch_log[0].size, 8);
        assert_eq!(
            r.batch_log[0].start_s, 0.25,
            "full batch stalled until the window closed"
        );
        // The second batch is also already full: it starts the moment the
        // shard frees up.
        assert_eq!(r.batch_log[1].start_s, r.batch_log[0].completion_s);
        assert_eq!(r.completed, 16);
    }

    #[test]
    fn zero_window_keeps_simultaneous_burst_in_one_batch() {
        // With batch_window_s = 0 the dispatch condition is met the moment
        // the first arrival lands; same-instant arrivals must still be
        // admitted into that batch, not split into singletons.
        let fleet = homogeneous_fleet(&tiny_design(64), 1);
        let cfg = BatcherConfig {
            batch_window_s: 0.0,
            max_batch: 16,
        };
        let trace = burst(6, 0.5, 64);
        let r = simulate_fleet(
            &fleet,
            &trace,
            SchedulingPolicy::LengthAware,
            DispatchPolicy::JoinShortestQueue,
            &cfg,
        );
        assert_eq!(r.batch_log.len(), 1, "burst split: {:?}", r.batch_log);
        assert_eq!(r.batch_log[0].size, 6);
        assert_eq!(r.batch_log[0].start_s, 0.5);
    }

    #[test]
    fn under_cap_batch_waits_for_window() {
        let fleet = homogeneous_fleet(&tiny_design(64), 1);
        let cfg = BatcherConfig {
            batch_window_s: 0.2,
            max_batch: 8,
        };
        let trace = burst(3, 1.0, 64);
        let r = simulate_fleet(
            &fleet,
            &trace,
            SchedulingPolicy::LengthAware,
            DispatchPolicy::JoinShortestQueue,
            &cfg,
        );
        assert_eq!(r.batch_log.len(), 1);
        assert_eq!(r.batch_log[0].size, 3);
        assert!((r.batch_log[0].start_s - 1.2).abs() < 1e-12);
    }

    #[test]
    fn conservation_across_policies_and_shard_counts() {
        let base = tiny_design(64);
        let trace = poisson_trace(&DatasetSpec::rte(), 200.0, 60, 42);
        for n in [1usize, 2, 3, 4] {
            let fleet = homogeneous_fleet(&base, n);
            for dispatch in DispatchPolicy::ALL {
                let r = simulate_fleet(
                    &fleet,
                    &trace,
                    SchedulingPolicy::LengthAware,
                    dispatch,
                    &BatcherConfig::default(),
                );
                assert_eq!(r.completed, 60, "{n} shards, {dispatch}");
                assert_eq!(
                    r.shards.iter().map(|s| s.completed).sum::<usize>(),
                    60,
                    "{n} shards, {dispatch}"
                );
                assert_eq!(r.batch_log.iter().map(|b| b.size).sum::<usize>(), 60);
                assert!(r
                    .shards
                    .iter()
                    .all(|s| (0.0..=1.0).contains(&s.utilization)));
            }
        }
    }

    #[test]
    fn round_robin_cycles_shards() {
        let fleet = homogeneous_fleet(&tiny_design(64), 3);
        let trace = burst(6, 0.0, 64);
        let r = simulate_fleet(
            &fleet,
            &trace,
            SchedulingPolicy::LengthAware,
            DispatchPolicy::RoundRobin,
            &BatcherConfig {
                batch_window_s: 0.0,
                max_batch: 16,
            },
        );
        // 6 requests over 3 shards → every shard saw exactly 2.
        for s in &r.shards {
            assert_eq!(s.completed, 2, "shard {}", s.shard);
        }
    }

    #[test]
    fn length_binned_routes_by_tuned_length() {
        // Shards tuned for 64 and 256; short traffic must land on the
        // short-tuned shard, long traffic on the long-tuned one.
        let fleet = vec![tiny_design(64), tiny_design(256)];
        let mut trace = burst(4, 0.0, 32);
        trace.extend(burst(4, 0.0, 200));
        let r = simulate_fleet(
            &fleet,
            &trace,
            SchedulingPolicy::LengthAware,
            DispatchPolicy::LengthBinned,
            &BatcherConfig::default(),
        );
        assert_eq!(r.shards[0].completed, 4);
        assert_eq!(r.shards[1].completed, 4);
    }

    #[test]
    fn overlong_requests_go_to_largest_shard() {
        let fleet = vec![tiny_design(64), tiny_design(128)];
        let trace = burst(3, 0.0, 500);
        let r = simulate_fleet(
            &fleet,
            &trace,
            SchedulingPolicy::LengthAware,
            DispatchPolicy::LengthBinned,
            &BatcherConfig::default(),
        );
        assert_eq!(r.shards[0].completed, 0);
        assert_eq!(r.shards[1].completed, 3);
    }

    #[test]
    fn jsq_balances_a_heavy_burst() {
        let fleet = homogeneous_fleet(&tiny_design(64), 4);
        let trace = burst(32, 0.0, 64);
        let r = simulate_fleet(
            &fleet,
            &trace,
            SchedulingPolicy::LengthAware,
            DispatchPolicy::JoinShortestQueue,
            &BatcherConfig {
                batch_window_s: 0.05,
                max_batch: 8,
            },
        );
        // 32 simultaneous requests, cap 8, 4 shards → one full batch each.
        for s in &r.shards {
            assert_eq!(s.completed, 8, "shard {}", s.shard);
            assert_eq!(s.batches, 1, "shard {}", s.shard);
        }
        // All four batches start at t=0: no shard stalls on the window.
        assert!(r.batch_log.iter().all(|b| b.start_s == 0.0));
    }

    #[test]
    fn more_shards_scale_throughput_under_saturation() {
        // Saturating load: 256 simultaneous requests (16 full cap-16
        // batches of work). Every batch dispatches on cap fill, so the
        // makespan is pure service time and must shrink with shard count.
        let base = tiny_design(64);
        let mut rng = lat_tensor::rng::SplitMix64::new(7);
        let trace: Vec<Request> = DatasetSpec::mrpc()
            .sample_batch(&mut rng, 256)
            .into_iter()
            .map(|len| Request {
                arrival_s: 0.0,
                len,
            })
            .collect();
        let mut last = 0.0;
        for n in [1usize, 2, 4] {
            let r = simulate_fleet(
                &homogeneous_fleet(&base, n),
                &trace,
                SchedulingPolicy::LengthAware,
                DispatchPolicy::JoinShortestQueue,
                &BatcherConfig::default(),
            );
            assert_eq!(r.completed, 256);
            assert!(
                r.throughput_seq_s > last * 1.5,
                "{n} shards: {} !> 1.5 × {last}",
                r.throughput_seq_s
            );
            last = r.throughput_seq_s;
        }
    }

    #[test]
    fn report_percentiles_ordered_and_shards_labeled() {
        let fleet = vec![tiny_design(64), tiny_design(128)];
        let trace = poisson_trace(&DatasetSpec::mrpc(), 300.0, 80, 9);
        let r = simulate_fleet(
            &fleet,
            &trace,
            SchedulingPolicy::LengthAware,
            DispatchPolicy::LengthBinned,
            &BatcherConfig::default(),
        );
        assert!(r.p50_latency_s <= r.p95_latency_s);
        assert!(r.p95_latency_s <= r.p99_latency_s);
        assert_eq!(r.shards[0].tuned_length, 64);
        assert_eq!(r.shards[1].tuned_length, 128);
        assert!(r.makespan_s > 0.0);
        assert!(r.mean_batch_size >= 1.0);
    }

    #[test]
    fn deterministic_for_identical_inputs() {
        let fleet = homogeneous_fleet(&tiny_design(64), 3);
        let trace = poisson_trace(&DatasetSpec::rte(), 400.0, 90, 1234);
        let run = || {
            simulate_fleet(
                &fleet,
                &trace,
                SchedulingPolicy::LengthAware,
                DispatchPolicy::JoinShortestQueue,
                &BatcherConfig::default(),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "sorted by arrival")]
    fn unsorted_trace_rejected() {
        let fleet = homogeneous_fleet(&tiny_design(64), 1);
        let trace = vec![
            Request {
                arrival_s: 1.0,
                len: 64,
            },
            Request {
                arrival_s: 0.5,
                len: 64,
            },
        ];
        let _ = simulate_fleet(
            &fleet,
            &trace,
            SchedulingPolicy::LengthAware,
            DispatchPolicy::RoundRobin,
            &BatcherConfig::default(),
        );
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn empty_fleet_rejected() {
        let _ = simulate_fleet(
            &[],
            &burst(1, 0.0, 64),
            SchedulingPolicy::LengthAware,
            DispatchPolicy::RoundRobin,
            &BatcherConfig::default(),
        );
    }

    #[test]
    fn poisson_trace_is_sorted_and_deterministic() {
        let a = poisson_trace(&DatasetSpec::squad_v1(), 50.0, 64, 5);
        let b = poisson_trace(&DatasetSpec::squad_v1(), 50.0, 64, 5);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0].arrival_s <= w[1].arrival_s));
        assert!(a.iter().all(|r| r.arrival_s > 0.0));
    }
}
