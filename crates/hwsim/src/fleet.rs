//! Event-driven multi-accelerator fleet simulator.
//!
//! Where [`crate::serving`] models one accelerator, this module simulates a
//! *fleet* of N [`AcceleratorDesign`] shards (homogeneous or heterogeneous)
//! fed by a single arrival stream through a pluggable [`DispatchPolicy`].
//! Each shard runs its own batcher which closes a batch at the **earlier**
//! of the batching-window expiry and the batch-cap fill — the cap-fill path
//! is the fix for the batch-window stall the old serial batcher had (a full
//! batch used to idle until the window elapsed).
//!
//! The engine is a classic discrete-event simulation: a priority queue of
//! arrival / window-close / batch-completion events ordered by time with
//! deterministic tie-breaking, so every run is bit-reproducible for a given
//! trace. [`crate::serving::simulate_serving`] is reimplemented as the
//! 1-shard special case of this engine.
//!
//! # Example
//!
//! A short Poisson burst through a two-shard fleet under
//! join-shortest-queue dispatch:
//!
//! ```
//! use lat_core::pipeline::SchedulingPolicy;
//! use lat_hwsim::accelerator::AcceleratorDesign;
//! use lat_hwsim::fleet::{
//!     homogeneous_fleet, poisson_trace, simulate_fleet, BatcherConfig, DispatchPolicy,
//! };
//! use lat_hwsim::spec::FpgaSpec;
//! use lat_model::config::ModelConfig;
//! use lat_model::graph::AttentionMode;
//! use lat_workloads::datasets::DatasetSpec;
//!
//! let design = AcceleratorDesign::new(
//!     &ModelConfig::tiny(),
//!     AttentionMode::paper_sparse(),
//!     FpgaSpec::alveo_u280(),
//!     64,
//! );
//! let trace = poisson_trace(&DatasetSpec::rte(), 400.0, 8, 11);
//! let report = simulate_fleet(
//!     &homogeneous_fleet(&design, 2),
//!     &trace,
//!     SchedulingPolicy::LengthAware,
//!     DispatchPolicy::JoinShortestQueue,
//!     &BatcherConfig::default(),
//! );
//! // Conservation: every request completes exactly once.
//! assert_eq!(report.completed, 8);
//! assert!(report.p95_latency_s >= report.p50_latency_s);
//! ```

use crate::accelerator::AcceleratorDesign;
use lat_core::pipeline::SchedulingPolicy;
use lat_core::sketch::QuantileSketch;
pub use lat_core::sketch::ReportMode;
use lat_tensor::rng::SplitMix64;
use lat_tensor::stats::percentiles;
use lat_workloads::datasets::LengthSampler;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};
use std::fmt;

/// One serving request in an arrival trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// Arrival time in seconds since simulation start.
    pub arrival_s: f64,
    /// Sequence length in tokens.
    pub len: usize,
}

/// Shared Poisson trace builder: one exponential gap draw per request from
/// the primary RNG stream, then `payload` turns `(rng, arrival_time)` into
/// the request record, drawing any per-request fields it needs from the
/// same stream.
///
/// Both [`poisson_trace`] and [`crate::decode::decode_trace`] are thin
/// wrappers over this function, so their arrival processes are one piece of
/// code and cannot drift apart: generators that draw the same per-request
/// fields from the primary stream emit bit-identical arrival times for the
/// same `(rate, n, seed)`.
///
/// # Panics
///
/// Panics if `arrival_rate <= 0` or `num_requests == 0`.
pub fn poisson_process<T>(
    arrival_rate: f64,
    num_requests: usize,
    seed: u64,
    mut payload: impl FnMut(&mut SplitMix64, f64) -> T,
) -> Vec<T> {
    assert!(arrival_rate > 0.0, "arrival rate must be positive");
    assert!(num_requests > 0, "num_requests must be >= 1");
    let mut rng = SplitMix64::new(seed);
    let mut trace = Vec::with_capacity(num_requests);
    let mut t = 0.0f64;
    for _ in 0..num_requests {
        let u = rng.next_f64().max(1e-12);
        t += -u.ln() / arrival_rate;
        trace.push(payload(&mut rng, t));
    }
    trace
}

/// Generates a Poisson arrival trace (exponential inter-arrival times) with
/// lengths drawn from `sampler`.
///
/// The RNG call order (one `next_f64` for the gap, then one length sample
/// per request) is the serving simulator's historical stream, so traces are
/// stable across the serial→fleet refactor.
///
/// # Panics
///
/// Panics if `arrival_rate <= 0` or `num_requests == 0`.
pub fn poisson_trace<S: LengthSampler + ?Sized>(
    sampler: &S,
    arrival_rate: f64,
    num_requests: usize,
    seed: u64,
) -> Vec<Request> {
    poisson_process(arrival_rate, num_requests, seed, |rng, t| Request {
        arrival_s: t,
        len: sampler.sample_length(rng),
    })
}

/// Phase of a piecewise-constant [`RateProfile`]: `rate` requests/second
/// held for `duration_s`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RatePhase {
    /// Phase length in seconds.
    pub duration_s: f64,
    /// Arrival rate during the phase in requests/second.
    pub rate: f64,
}

/// Time-varying arrival-rate profile for nonstationary Poisson traces.
///
/// Nonstationary arrivals are generated by *time-rescaling*: unit-rate
/// exponential gaps from the primary RNG stream accumulate into a unit-rate
/// arrival process, which is mapped through the inverse cumulative rate
/// `Λ⁻¹`. The draw order (one gap per request, then the payload's
/// per-request fields) is exactly the stationary generators', so the
/// nonstationary trace builders share arrival streams the same way
/// [`poisson_trace`] and [`crate::decode::decode_trace`] do.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RateProfile {
    /// Fixed rate — the stationary law. (Arrival *times* differ from
    /// [`poisson_trace`] only in floating-point rounding; use that
    /// function when bit-compatibility with existing stationary traces
    /// matters.)
    Constant(f64),
    /// Piecewise-constant rate; the last phase's rate extends past its
    /// end indefinitely, so any number of requests can be generated.
    Piecewise(Vec<RatePhase>),
    /// Sinusoidal "diurnal" rate `mean_rate · (1 + a·sin(2πt/period_s))`,
    /// with the amplitude `a` chosen so the peak:trough rate ratio is
    /// `swing`.
    Diurnal {
        /// Time-averaged arrival rate in requests/second.
        mean_rate: f64,
        /// Peak-to-trough rate ratio (`>= 1`; `1` degenerates to constant).
        swing: f64,
        /// Period of one rate cycle in seconds.
        period_s: f64,
    },
    /// Flash-crowd burst: `base_rate` everywhere except the window
    /// `[start_s, start_s + duration_s)`, where the rate steps to
    /// `burst_rate`. The diurnal law models slow swings an autoscaler can
    /// track; a flash crowd is a step — the incident-scenario profile the
    /// failure layer ([`crate::failure`]) stresses recovery with.
    Burst {
        /// Rate outside the burst window, requests/second.
        base_rate: f64,
        /// Rate inside the burst window, requests/second.
        burst_rate: f64,
        /// Burst onset in seconds.
        start_s: f64,
        /// Burst length in seconds.
        duration_s: f64,
    },
}

impl RateProfile {
    /// Sinusoid amplitude giving a peak:trough rate ratio of `swing`.
    fn diurnal_amplitude(swing: f64) -> f64 {
        (swing - 1.0) / (swing + 1.0)
    }

    /// Instantaneous arrival rate at time `t`.
    pub fn rate_at(&self, t: f64) -> f64 {
        match self {
            RateProfile::Constant(r) => *r,
            RateProfile::Piecewise(phases) => {
                let mut start = 0.0;
                for p in phases {
                    if t < start + p.duration_s {
                        return p.rate;
                    }
                    start += p.duration_s;
                }
                phases.last().expect("non-empty phases").rate
            }
            RateProfile::Diurnal {
                mean_rate,
                swing,
                period_s,
            } => {
                let a = Self::diurnal_amplitude(*swing);
                mean_rate * (1.0 + a * (2.0 * std::f64::consts::PI * t / period_s).sin())
            }
            RateProfile::Burst {
                base_rate,
                burst_rate,
                start_s,
                duration_s,
            } => {
                if t >= *start_s && t < *start_s + *duration_s {
                    *burst_rate
                } else {
                    *base_rate
                }
            }
        }
    }

    /// Cumulative expected arrivals `Λ(t) = ∫₀ᵗ rate(u) du`.
    pub fn cumulative(&self, t: f64) -> f64 {
        match self {
            RateProfile::Constant(r) => r * t,
            RateProfile::Piecewise(phases) => {
                let mut area = 0.0;
                let mut start = 0.0;
                for p in phases {
                    let end = start + p.duration_s;
                    if t <= end {
                        return area + p.rate * (t - start);
                    }
                    area += p.rate * p.duration_s;
                    start = end;
                }
                area + phases.last().expect("non-empty phases").rate * (t - start)
            }
            RateProfile::Diurnal {
                mean_rate,
                swing,
                period_s,
            } => {
                let a = Self::diurnal_amplitude(*swing);
                let omega = 2.0 * std::f64::consts::PI / period_s;
                mean_rate * (t + a / omega * (1.0 - (omega * t).cos()))
            }
            RateProfile::Burst {
                base_rate,
                burst_rate,
                start_s,
                duration_s,
            } => {
                // Base rate everywhere plus the burst surcharge over the
                // overlap of [0, t] with the burst window.
                let overlap = (t.min(start_s + duration_s) - start_s).clamp(0.0, *duration_s);
                base_rate * (t - overlap) + burst_rate * overlap
            }
        }
    }

    /// Inverse cumulative `Λ⁻¹(area)`: the time at which `area` expected
    /// arrivals have accumulated.
    fn invert(&self, area: f64) -> f64 {
        match self {
            RateProfile::Constant(r) => area / r,
            RateProfile::Piecewise(phases) => {
                let mut acc = 0.0;
                let mut start = 0.0;
                for p in phases {
                    let phase_area = p.rate * p.duration_s;
                    if area <= acc + phase_area {
                        return start + (area - acc) / p.rate;
                    }
                    acc += phase_area;
                    start += p.duration_s;
                }
                start + (area - acc) / phases.last().expect("non-empty phases").rate
            }
            RateProfile::Diurnal {
                mean_rate, swing, ..
            } => {
                // Λ is strictly increasing (the rate is positive
                // everywhere), so a bracketed bisection converges past f64
                // resolution and is bit-deterministic.
                let a = Self::diurnal_amplitude(*swing);
                let mut lo = 0.0f64;
                let mut hi = area / (mean_rate * (1.0 - a).max(1e-12)) + 1.0;
                while self.cumulative(hi) < area {
                    hi *= 2.0;
                }
                for _ in 0..200 {
                    let mid = 0.5 * (lo + hi);
                    if self.cumulative(mid) < area {
                        lo = mid;
                    } else {
                        hi = mid;
                    }
                }
                0.5 * (lo + hi)
            }
            RateProfile::Burst {
                base_rate,
                burst_rate,
                start_s,
                duration_s,
            } => {
                // Piecewise-linear Λ: pre-burst, burst, post-burst.
                let pre_area = base_rate * start_s;
                let burst_area = pre_area + burst_rate * duration_s;
                if area <= pre_area {
                    area / base_rate
                } else if area <= burst_area {
                    start_s + (area - pre_area) / burst_rate
                } else {
                    start_s + duration_s + (area - burst_area) / base_rate
                }
            }
        }
    }

    /// Panics unless the profile is well-formed (positive rates, positive
    /// finite durations/periods, finite `swing >= 1`).
    pub fn validate(&self) {
        match self {
            RateProfile::Constant(r) => assert!(*r > 0.0, "arrival rate must be positive"),
            RateProfile::Piecewise(phases) => {
                assert!(
                    !phases.is_empty(),
                    "piecewise profile needs at least one phase"
                );
                for p in phases {
                    assert!(p.rate > 0.0, "arrival rate must be positive");
                    assert!(
                        p.duration_s > 0.0 && p.duration_s.is_finite(),
                        "phase duration must be positive and finite"
                    );
                }
            }
            RateProfile::Diurnal {
                mean_rate,
                swing,
                period_s,
            } => {
                assert!(*mean_rate > 0.0, "arrival rate must be positive");
                assert!(
                    *swing >= 1.0 && swing.is_finite(),
                    "swing must be finite and >= 1"
                );
                assert!(
                    *period_s > 0.0 && period_s.is_finite(),
                    "period must be positive and finite"
                );
            }
            RateProfile::Burst {
                base_rate,
                burst_rate,
                start_s,
                duration_s,
            } => {
                assert!(*base_rate > 0.0, "arrival rate must be positive");
                assert!(*burst_rate > 0.0, "arrival rate must be positive");
                assert!(
                    *start_s >= 0.0 && start_s.is_finite(),
                    "burst start must be non-negative and finite"
                );
                assert!(
                    *duration_s > 0.0 && duration_s.is_finite(),
                    "burst duration must be positive and finite"
                );
            }
        }
    }
}

/// Nonstationary sibling of [`poisson_process`]: arrival times follow the
/// time-varying rate of `profile` by time-rescaling a unit-rate process.
///
/// The RNG stream structure is identical to [`poisson_process`] (one gap
/// draw, then the payload's draws, per request), so generators that share a
/// payload shape emit bit-identical arrival streams for the same
/// `(profile, n, seed)` — the nonstationary analogue of the
/// `poisson_trace`/`decode_trace` pinning.
///
/// # Panics
///
/// Panics if the profile is malformed (see [`RateProfile::validate`]) or
/// `num_requests == 0`.
pub fn nonstationary_poisson_process<T>(
    profile: &RateProfile,
    num_requests: usize,
    seed: u64,
    mut payload: impl FnMut(&mut SplitMix64, f64) -> T,
) -> Vec<T> {
    profile.validate();
    assert!(num_requests > 0, "num_requests must be >= 1");
    let mut rng = SplitMix64::new(seed);
    let mut trace = Vec::with_capacity(num_requests);
    let mut area = 0.0f64;
    let mut prev_t = 0.0f64;
    for _ in 0..num_requests {
        let u = rng.next_f64().max(1e-12);
        area += -u.ln();
        // Clamp to monotone: the numeric inversion is exact to f64
        // resolution but the simulators *require* sorted traces.
        let t = profile.invert(area).max(prev_t);
        prev_t = t;
        trace.push(payload(&mut rng, t));
    }
    trace
}

/// Generates a nonstationary Poisson arrival trace with lengths drawn from
/// `sampler` — [`poisson_trace`] under a time-varying [`RateProfile`].
///
/// # Panics
///
/// Panics if the profile is malformed or `num_requests == 0`.
pub fn nonstationary_poisson_trace<S: LengthSampler + ?Sized>(
    sampler: &S,
    profile: &RateProfile,
    num_requests: usize,
    seed: u64,
) -> Vec<Request> {
    nonstationary_poisson_process(profile, num_requests, seed, |rng, t| Request {
        arrival_s: t,
        len: sampler.sample_length(rng),
    })
}

/// Per-shard batcher parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatcherConfig {
    /// Maximum time a batch waits after its first queued request. The batch
    /// dispatches earlier if the cap fills or, when the shard is busy past
    /// the window, as soon as the shard frees up.
    pub batch_window_s: f64,
    /// Maximum sequences per batch.
    pub max_batch: usize,
}

impl Default for BatcherConfig {
    fn default() -> Self {
        Self {
            batch_window_s: 0.05,
            max_batch: 16,
        }
    }
}

/// How arriving requests are routed to shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DispatchPolicy {
    /// Cycle through shards in order, ignoring state.
    RoundRobin,
    /// Send to the shard with the fewest waiting + in-flight requests
    /// (lowest index breaks ties).
    JoinShortestQueue,
    /// Route by length: the shard whose tuned `s_avg` is the smallest one
    /// `>=` the request length (or the largest-tuned shard for over-long
    /// requests); join-shortest-queue among equally-tuned shards. Keeps
    /// short traffic off shards sized for long sequences and vice versa.
    LengthBinned,
}

impl DispatchPolicy {
    /// All dispatch policies, for sweeps.
    pub const ALL: [DispatchPolicy; 3] = [
        DispatchPolicy::RoundRobin,
        DispatchPolicy::JoinShortestQueue,
        DispatchPolicy::LengthBinned,
    ];
}

impl fmt::Display for DispatchPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DispatchPolicy::RoundRobin => write!(f, "round-robin"),
            DispatchPolicy::JoinShortestQueue => write!(f, "join-shortest-queue"),
            DispatchPolicy::LengthBinned => write!(f, "length-binned"),
        }
    }
}

/// One executed batch (diagnostics / regression tests).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BatchRecord {
    /// Shard that executed the batch.
    pub shard: usize,
    /// Dispatch time in seconds.
    pub start_s: f64,
    /// Completion time in seconds.
    pub completion_s: f64,
    /// Sequences in the batch.
    pub size: usize,
}

/// Per-shard slice of a [`FleetReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardReport {
    /// Shard index within the fleet.
    pub shard: usize,
    /// The `s_avg` the shard's stage allocation was tuned for.
    pub tuned_length: usize,
    /// Requests completed on this shard.
    pub completed: usize,
    /// Batches executed.
    pub batches: usize,
    /// Mean formed batch size (0 if the shard never ran).
    pub mean_batch_size: f64,
    /// Busy time / fleet makespan.
    pub utilization: f64,
    /// Time-averaged number of waiting requests.
    pub mean_queue_depth: f64,
    /// Peak number of waiting requests.
    pub max_queue_depth: usize,
}

/// Result of a fleet simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetReport {
    /// Requests completed. Always the trace length for the healthy
    /// fixed-membership fleet (conservation, asserted by
    /// [`simulate_fleet`]); under the failure layer, timed-out or
    /// outage-stranded requests are absent and accounted through client
    /// dispositions instead.
    pub completed: usize,
    /// Mean end-to-end latency (arrival → batch completion) in seconds.
    pub mean_latency_s: f64,
    /// Median latency.
    pub p50_latency_s: f64,
    /// 95th-percentile latency.
    pub p95_latency_s: f64,
    /// 99th-percentile latency.
    pub p99_latency_s: f64,
    /// Sustained throughput in sequences/second.
    pub throughput_seq_s: f64,
    /// Last batch completion time.
    pub makespan_s: f64,
    /// Mean formed batch size across the fleet.
    pub mean_batch_size: f64,
    /// Per-shard statistics.
    pub shards: Vec<ShardReport>,
    /// Every executed batch in dispatch order.
    pub batch_log: Vec<BatchRecord>,
}

/// Builds `n` clones of `design` — the homogeneous scaling fleet.
pub fn homogeneous_fleet(design: &AcceleratorDesign, n: usize) -> Vec<AcceleratorDesign> {
    assert!(n > 0, "fleet needs at least one shard");
    vec![design.clone(); n]
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum EventKind {
    /// Request index arrives and is routed to a shard.
    Arrival(usize),
    /// Shard finishes its in-flight batch. `epoch` pins the event to the
    /// shard state it was scheduled against; a crash or a mid-flight
    /// re-price bumps the shard epoch and the stale completion is ignored
    /// when it pops.
    Completion { shard: usize, epoch: u64 },
    /// Shard's batching window for head request expires.
    WindowClose { shard: usize, head: usize },
    /// Controller callback ([`FleetController::on_control`]); lowest
    /// same-instant priority so arrivals/completions/window closes settle
    /// first. [`simulate_fleet`] never schedules one.
    Control,
}

/// Heap entry shared by the fleet and decode engines; ordered by time, then
/// kind rank (arrivals before completions/step-ends before window closes,
/// so same-instant arrivals join the closing batch exactly as the serial
/// simulator admitted them), then insertion order. The kind payload never
/// participates in the ordering.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Event<K> {
    pub(crate) time: f64,
    pub(crate) rank: u8,
    pub(crate) seq: u64,
    pub(crate) kind: K,
}

impl<K> PartialEq for Event<K> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.rank == other.rank && self.seq == other.seq
    }
}

impl<K> Eq for Event<K> {}

impl<K> PartialOrd for Event<K> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<K> Ord for Event<K> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we pop the earliest event.
        let fwd = self
            .time
            .total_cmp(&other.time)
            .then(self.rank.cmp(&other.rank))
            .then(self.seq.cmp(&other.seq));
        fwd.reverse()
    }
}

/// Pushes an event and bumps the insertion-order tie-breaker.
pub(crate) fn push_event<K>(
    heap: &mut BinaryHeap<Event<K>>,
    seq: &mut u64,
    time: f64,
    rank: u8,
    kind: K,
) {
    heap.push(Event {
        time,
        rank,
        seq: *seq,
        kind,
    });
    *seq += 1;
}

pub(crate) struct ShardState {
    pub(crate) queue: VecDeque<usize>,
    pub(crate) busy: bool,
    /// Request indices of the in-flight batch (empty while idle). The
    /// failure layer needs the members, not just the count, to re-route a
    /// crashed shard's batch.
    pub(crate) inflight: Vec<usize>,
    /// Bumped whenever scheduled completion events become invalid (crash,
    /// straggler re-price); stale [`EventKind::Completion`] events carry
    /// the old epoch and are dropped.
    pub(crate) epoch: u64,
    pub(crate) busy_time_s: f64,
    /// Completion time of the in-flight batch (stale once `busy` drops).
    /// Lets a controller clip `busy_time_s`'s charge-at-dispatch lump to
    /// "busy time elapsed by `t`": `busy_time_s - (busy_until_s - t)`
    /// while busy.
    pub(crate) busy_until_s: f64,
    pub(crate) completed: usize,
    /// Batches executed (crash-rolled-back batches excluded). Counters,
    /// not a `Vec<usize>` of sizes: the per-batch list grew with the run
    /// and the report only ever needed the count and the sum.
    pub(crate) batches: usize,
    /// Σ sizes of the executed batches.
    pub(crate) batch_size_sum: usize,
    pub(crate) queue_integral: f64,
    pub(crate) max_queue_depth: usize,
    pub(crate) last_event_s: f64,
    /// Head request a window-close event is already scheduled for
    /// (request indices are unique, so this dedup is safe for the run).
    pub(crate) window_scheduled_for: Option<usize>,
}

impl ShardState {
    fn new() -> Self {
        Self {
            queue: VecDeque::new(),
            busy: false,
            inflight: Vec::new(),
            epoch: 0,
            busy_time_s: 0.0,
            busy_until_s: 0.0,
            completed: 0,
            batches: 0,
            batch_size_sum: 0,
            queue_integral: 0.0,
            max_queue_depth: 0,
            last_event_s: 0.0,
            window_scheduled_for: None,
        }
    }

    /// Waiting + in-flight requests — the load metric JSQ balances.
    pub(crate) fn load(&self) -> usize {
        self.queue.len() + self.inflight.len()
    }

    /// Advances the queue-depth integral to `now` (call before mutating).
    pub(crate) fn tick(&mut self, now: f64) {
        self.queue_integral += self.queue.len() as f64 * (now - self.last_event_s);
        self.last_event_s = now;
    }
}

/// Hooks a controller drives the engine through;
/// [`simulate_fleet`] runs with the no-op [`NullController`], the
/// autoscaler ([`crate::autoscale`]) with a policy-driven one.
pub(crate) trait FleetController {
    /// A control event scheduled via [`FleetCore::schedule_control`] fired.
    fn on_control(&mut self, _core: &mut FleetCore<'_>, _now: f64) {}
    /// A shard finished a batch (called after its queue re-dispatched).
    fn after_completion(&mut self, _core: &mut FleetCore<'_>, _shard: usize, _now: f64) {}
    /// The failure layer crashed `shard` (already marked dead and not
    /// accepting; its orphaned work is re-admitted by the caller). Lets an
    /// autoscaling controller close the shard's cost books and stop
    /// counting it as capacity.
    fn on_shard_down(&mut self, _core: &mut FleetCore<'_>, _shard: usize, _now: f64) {}
    /// The failure layer revived `shard`. The default is a plain rejoin:
    /// the shard starts accepting routed work immediately. An autoscaling
    /// controller overrides this to put the shard back through its normal
    /// launch/warm-up path instead.
    fn on_shard_up(&mut self, core: &mut FleetCore<'_>, shard: usize, _now: f64) {
        core.accepting[shard] = true;
    }
}

/// Controller that never intervenes — the fixed-membership fleet.
pub(crate) struct NullController;

impl FleetController for NullController {}

/// The fleet engine's mutable core, shared by [`simulate_fleet`] (fixed
/// membership, no control events) and
/// [`crate::autoscale::simulate_autoscale`] (runtime shard join/retire):
/// per-shard queues, the event heap, and dispatch bookkeeping.
///
/// `accepting[s]` gates *routing only* — a shard that stops accepting
/// still drains its own queue through the normal window/cap machinery,
/// which is exactly the drain-on-retire semantics the autoscaler needs.
pub(crate) struct FleetCore<'a> {
    pub(crate) shards: &'a [AcceleratorDesign],
    pub(crate) trace: &'a [Request],
    policy: SchedulingPolicy,
    dispatch: DispatchPolicy,
    cfg: &'a BatcherConfig,
    pub(crate) state: Vec<ShardState>,
    pub(crate) accepting: Vec<bool>,
    /// Crashed shards ([`FleetCore::crash_shard`]): routing skips them and
    /// `try_dispatch` refuses to launch batches on them until revived.
    pub(crate) dead: Vec<bool>,
    /// Per-shard service-time multiplier (1.0 = healthy). Applied at
    /// dispatch; [`FleetCore::set_slowdown`] also re-prices an in-flight
    /// batch. Multiplying by exactly 1.0 is an IEEE identity, so healthy
    /// runs stay bit-identical to the pre-failure-layer engine.
    pub(crate) slowdown: Vec<f64>,
    /// Requests that arrived while no shard was accepting (total outage).
    /// The failure layer re-admits them when capacity returns; the
    /// fixed-membership engines never park (they always accept).
    pub(crate) parked: Vec<usize>,
    /// Requests permanently given up on by a client layer (timed out with
    /// an exhausted retry budget). Termination and conservation checks
    /// count `completed() + abandoned` against the trace length.
    pub(crate) abandoned: usize,
    heap: BinaryHeap<Event<EventKind>>,
    seq: u64,
    rr_next: usize,
    pub(crate) completion_s: Vec<f64>,
    /// Trace arrivals processed so far — the RNG-free, wall-clock-free
    /// observation stream predictive scaling policies consume (re-routed
    /// work is not re-counted).
    pub(crate) arrivals_seen: usize,
    batch_log: Vec<BatchRecord>,
    /// Report construction mode. Under [`ReportMode::Streaming`] the
    /// per-batch log is never grown and completed latencies feed
    /// `lat_sketch` at their completion events instead of being sorted at
    /// report time, so memory stays bounded for million-request traces.
    mode: ReportMode,
    /// Streaming latency sketch (fed only under [`ReportMode::Streaming`]).
    lat_sketch: QuantileSketch,
    /// Running max of valid completion-event times — the streaming
    /// replacement for folding over the batch log.
    stream_makespan_s: f64,
    /// Events popped off the heap (all modes; cheap counter for
    /// events/second scaling benches).
    pub(crate) events_processed: u64,
    /// Peak event-heap population — the dominant transient allocation of
    /// a run, tracked engine-side because the workspace forbids a
    /// counting global allocator (`unsafe_code = "forbid"`).
    pub(crate) peak_heap_events: usize,
}

impl<'a> FleetCore<'a> {
    /// Validates the inputs and seeds the heap with every arrival.
    ///
    /// # Panics
    ///
    /// Panics if `shards` or `trace` is empty, `cfg.max_batch == 0`,
    /// `cfg.batch_window_s < 0`, the trace is unsorted / non-finite, or
    /// `accepting` has the wrong length / no accepting shard.
    pub(crate) fn new(
        shards: &'a [AcceleratorDesign],
        trace: &'a [Request],
        policy: SchedulingPolicy,
        dispatch: DispatchPolicy,
        cfg: &'a BatcherConfig,
        accepting: Vec<bool>,
    ) -> Self {
        assert!(!shards.is_empty(), "fleet needs at least one shard");
        assert!(!trace.is_empty(), "empty arrival trace");
        assert!(cfg.max_batch > 0, "max_batch must be >= 1");
        assert!(cfg.batch_window_s >= 0.0, "negative batch window");
        assert!(
            trace
                .iter()
                .all(|r| r.arrival_s.is_finite() && r.arrival_s >= 0.0),
            "arrival times must be finite and non-negative"
        );
        assert!(
            trace.windows(2).all(|w| w[0].arrival_s <= w[1].arrival_s),
            "trace must be sorted by arrival time"
        );
        assert_eq!(accepting.len(), shards.len(), "accepting mask length");
        assert!(
            accepting.iter().any(|&a| a),
            "at least one shard must accept work"
        );

        let mut heap: BinaryHeap<Event<EventKind>> = BinaryHeap::with_capacity(trace.len() * 2);
        let mut seq = 0u64;
        for (r, req) in trace.iter().enumerate() {
            push_event(&mut heap, &mut seq, req.arrival_s, 0, EventKind::Arrival(r));
        }
        Self {
            shards,
            trace,
            policy,
            dispatch,
            cfg,
            state: (0..shards.len()).map(|_| ShardState::new()).collect(),
            accepting,
            dead: vec![false; shards.len()],
            slowdown: vec![1.0; shards.len()],
            parked: Vec::new(),
            abandoned: 0,
            heap,
            seq,
            rr_next: 0,
            completion_s: vec![f64::NAN; trace.len()],
            arrivals_seen: 0,
            batch_log: Vec::new(),
            mode: ReportMode::Exact,
            lat_sketch: QuantileSketch::p50_p95_p99(),
            stream_makespan_s: 0.0,
            events_processed: 0,
            peak_heap_events: 0,
        }
    }

    /// Switches the report mode. Call before [`FleetCore::run`]: under
    /// [`ReportMode::Streaming`] the batch log is suppressed from the
    /// start, and latencies stream into the sketch as completions pop.
    pub(crate) fn set_mode(&mut self, mode: ReportMode) {
        self.mode = mode;
    }

    /// Schedules a [`FleetController::on_control`] callback at `time`.
    pub(crate) fn schedule_control(&mut self, time: f64) {
        push_event(&mut self.heap, &mut self.seq, time, 3, EventKind::Control);
    }

    /// Requests completed so far across the fleet.
    pub(crate) fn completed(&self) -> usize {
        self.state.iter().map(|st| st.completed).sum()
    }

    /// Routes request `r` among accepting shards and queues it; returns
    /// the destination shard, or `None` if no shard is accepting (total
    /// outage), in which case the request is parked until the failure
    /// layer re-admits it.
    pub(crate) fn admit(&mut self, r: usize, now: f64) -> Option<usize> {
        if !self.accepting.iter().any(|&a| a) {
            self.parked.push(r);
            return None;
        }
        let s = {
            let accepting = &self.accepting;
            let state = &self.state;
            let mut rr = self.rr_next;
            let s = route(
                self.dispatch,
                self.shards,
                &|i| accepting[i],
                &|i| state[i].load(),
                self.trace[r].len,
                &mut rr,
            );
            self.rr_next = rr;
            s
        };
        self.state[s].tick(now);
        self.state[s].queue.push_back(r);
        self.state[s].max_queue_depth =
            self.state[s].max_queue_depth.max(self.state[s].queue.len());
        Some(s)
    }

    /// Dispatches the shard's next batch if one is ready (shard idle AND
    /// cap full or window expired); otherwise schedules the window close.
    pub(crate) fn try_dispatch(&mut self, s: usize, now: f64) {
        if self.dead[s] || self.state[s].busy || self.state[s].queue.is_empty() {
            return;
        }
        let head = *self.state[s].queue.front().expect("non-empty queue");
        let window_close = self.trace[head].arrival_s + self.cfg.batch_window_s;
        if self.state[s].queue.len() >= self.cfg.max_batch || now >= window_close {
            let st = &mut self.state[s];
            let take = self.cfg.max_batch.min(st.queue.len());
            let lengths: Vec<usize> = st
                .queue
                .iter()
                .take(take)
                .map(|&r| self.trace[r].len)
                .collect();
            let service =
                self.shards[s].run_batch(&lengths, self.policy).seconds * self.slowdown[s];
            let completion = now + service;
            for _ in 0..take {
                let r = st.queue.pop_front().expect("counted above");
                self.completion_s[r] = completion;
                st.inflight.push(r);
            }
            st.busy = true;
            st.busy_time_s += service;
            st.busy_until_s = completion;
            st.completed += take;
            st.batches += 1;
            st.batch_size_sum += take;
            st.window_scheduled_for = None;
            let epoch = st.epoch;
            if self.mode == ReportMode::Exact {
                self.batch_log.push(BatchRecord {
                    shard: s,
                    start_s: now,
                    completion_s: completion,
                    size: take,
                });
            }
            push_event(
                &mut self.heap,
                &mut self.seq,
                completion,
                1,
                EventKind::Completion { shard: s, epoch },
            );
        } else if self.state[s].window_scheduled_for != Some(head) {
            self.state[s].window_scheduled_for = Some(head);
            push_event(
                &mut self.heap,
                &mut self.seq,
                window_close,
                2,
                EventKind::WindowClose { shard: s, head },
            );
        }
    }

    /// Crashes shard `s` at `now`: marks it dead and non-accepting, drains
    /// its queue, and — if a batch was in flight — unwinds the
    /// charge-at-dispatch bookkeeping (completion times back to NaN,
    /// `completed`/`busy_time_s`/batch log rolled back) and bumps the
    /// shard epoch so the scheduled completion event is dropped. Returns
    /// every orphaned request (queued + in-flight) for the caller to
    /// re-admit elsewhere.
    ///
    /// # Panics
    ///
    /// Panics if the shard is already dead.
    pub(crate) fn crash_shard(&mut self, s: usize, now: f64) -> Vec<usize> {
        assert!(!self.dead[s], "shard crashed twice");
        self.dead[s] = true;
        self.accepting[s] = false;
        self.state[s].tick(now);
        let mut orphans: Vec<usize> = self.state[s].queue.drain(..).collect();
        self.state[s].window_scheduled_for = None;
        if self.state[s].busy {
            let st = &mut self.state[s];
            st.busy = false;
            st.epoch += 1;
            let take = st.inflight.len();
            st.completed -= take;
            // Un-charge the whole batch, then hold the charge-at-dispatch
            // invariant for the executed prefix: work a crash destroys
            // never counts as busy time.
            st.busy_time_s -= (st.busy_until_s - now).max(0.0);
            st.busy_until_s = now;
            st.batches -= 1;
            st.batch_size_sum -= take;
            let inflight: Vec<usize> = st.inflight.drain(..).collect();
            for &r in &inflight {
                self.completion_s[r] = f64::NAN;
            }
            if self.mode == ReportMode::Exact {
                let idx = self
                    .batch_log
                    .iter()
                    .rposition(|b| b.shard == s)
                    .expect("busy shard has a batch record");
                self.batch_log.remove(idx);
            }
            orphans.extend(inflight);
        }
        orphans
    }

    /// Brings a crashed shard back. Routing eligibility is the
    /// controller's call ([`FleetController::on_shard_up`]), not this
    /// method's: a plain fleet rejoins immediately, an autoscaled one
    /// relaunches through warm-up.
    pub(crate) fn revive_shard(&mut self, s: usize) {
        assert!(self.dead[s], "revived a live shard");
        self.dead[s] = false;
    }

    /// Sets shard `s`'s service-time multiplier (straggler ×`factor`,
    /// recovery back to 1.0). An in-flight batch is re-priced on the fly:
    /// its unexecuted remainder is scaled by `factor / old`, the shard
    /// epoch bumps so the stale completion event is dropped, and a new one
    /// is scheduled at the re-priced completion time.
    pub(crate) fn set_slowdown(&mut self, s: usize, factor: f64, now: f64) {
        assert!(
            factor > 0.0 && factor.is_finite(),
            "slowdown factor must be positive and finite"
        );
        let old = self.slowdown[s];
        self.slowdown[s] = factor;
        if factor == old || !self.state[s].busy {
            return;
        }
        let completion;
        let epoch;
        {
            let st = &mut self.state[s];
            let remaining = (st.busy_until_s - now).max(0.0);
            let new_remaining = remaining * (factor / old);
            st.busy_time_s += new_remaining - remaining;
            st.busy_until_s = now + new_remaining;
            st.epoch += 1;
            completion = st.busy_until_s;
            epoch = st.epoch;
        }
        for i in 0..self.state[s].inflight.len() {
            let r = self.state[s].inflight[i];
            self.completion_s[r] = completion;
        }
        if self.mode == ReportMode::Exact {
            if let Some(rec) = self.batch_log.iter_mut().rev().find(|b| b.shard == s) {
                rec.completion_s = completion;
            }
        }
        push_event(
            &mut self.heap,
            &mut self.seq,
            completion,
            1,
            EventKind::Completion { shard: s, epoch },
        );
    }

    /// Schedules an arrival event for request `r` at `time` — the re-entry
    /// path for client retries. The event is indistinguishable from a
    /// trace arrival when it pops, so it re-counts in `arrivals_seen`
    /// (a retry *is* offered load, and forecasters should see it).
    pub(crate) fn schedule_arrival(&mut self, r: usize, time: f64) {
        push_event(
            &mut self.heap,
            &mut self.seq,
            time,
            0,
            EventKind::Arrival(r),
        );
    }

    /// Removes request `r` from wherever it is waiting (parked or queued)
    /// so a client layer can retry or abandon it. Returns `false` if the
    /// request is not waiting — already dispatched (its completion time is
    /// finite under charge-at-dispatch) or never admitted.
    pub(crate) fn cancel_waiting(&mut self, r: usize, now: f64) -> bool {
        if let Some(i) = self.parked.iter().position(|&x| x == r) {
            self.parked.remove(i);
            return true;
        }
        for s in 0..self.state.len() {
            if let Some(i) = self.state[s].queue.iter().position(|&x| x == r) {
                self.state[s].tick(now);
                self.state[s].queue.remove(i);
                // The head (and so the window-close time) may have
                // changed; let try_dispatch reschedule for the new head.
                self.state[s].window_scheduled_for = None;
                self.try_dispatch(s, now);
                return true;
            }
        }
        false
    }

    /// Runs the event loop to completion, calling `ctl`'s hooks.
    pub(crate) fn run<C: FleetController>(&mut self, ctl: &mut C) {
        loop {
            self.peak_heap_events = self.peak_heap_events.max(self.heap.len());
            let Some(ev) = self.heap.pop() else { break };
            self.events_processed += 1;
            let now = ev.time;
            match ev.kind {
                EventKind::Arrival(r) => {
                    // Admit ALL same-instant arrivals before any dispatch
                    // decision, so a zero (or exactly-elapsed) window can't
                    // split a simultaneous burst that the serial batcher
                    // would have admitted into one batch. Arrival events
                    // are pushed in trace order, so ties are contiguous in
                    // pop order.
                    self.arrivals_seen += 1;
                    let mut touched = Vec::new();
                    if let Some(s) = self.admit(r, now) {
                        touched.push(s);
                    }
                    while let Some(next) = self.heap.peek() {
                        match next.kind {
                            EventKind::Arrival(r2) if next.time == now => {
                                self.heap.pop();
                                self.events_processed += 1;
                                self.arrivals_seen += 1;
                                if let Some(s) = self.admit(r2, now) {
                                    if !touched.contains(&s) {
                                        touched.push(s);
                                    }
                                }
                            }
                            _ => break,
                        }
                    }
                    for s in touched {
                        self.try_dispatch(s, now);
                    }
                }
                EventKind::Completion { shard: s, epoch } => {
                    // Stale if the shard crashed or was re-priced after
                    // this event was scheduled.
                    if epoch != self.state[s].epoch {
                        continue;
                    }
                    self.state[s].tick(now);
                    self.state[s].busy = false;
                    if self.mode == ReportMode::Streaming {
                        // Crash rollbacks never reach this point (stale
                        // epoch), so each completed request streams into
                        // the sketch exactly once, with the same latency
                        // value the exact path reads from `completion_s`.
                        for &r in &self.state[s].inflight {
                            self.lat_sketch.observe(now - self.trace[r].arrival_s);
                        }
                        self.stream_makespan_s = self.stream_makespan_s.max(now);
                    }
                    self.state[s].inflight.clear();
                    self.try_dispatch(s, now);
                    ctl.after_completion(self, s, now);
                }
                EventKind::WindowClose { shard: s, head } => {
                    // Stale if the head batch already dispatched (cap fill
                    // or a busy shard draining past the window).
                    if !self.state[s].busy && self.state[s].queue.front() == Some(&head) {
                        self.state[s].tick(now);
                        self.try_dispatch(s, now);
                    }
                }
                EventKind::Control => ctl.on_control(self, now),
            }
        }
    }

    /// Assembles the [`FleetReport`] after the heap drained.
    ///
    /// Requests that never completed (timed out, lost to an unrecovered
    /// outage) are simply absent from the latency population: the report
    /// is well-defined all the way down to zero completions, with zeroed
    /// NaN-free percentiles. Conservation (`completed == trace.len()`) is
    /// the *caller's* invariant — [`simulate_fleet`] asserts it because a
    /// fixed healthy fleet must complete everything; the failure layer
    /// accounts for the shortfall through client dispositions instead.
    pub(crate) fn into_report(self) -> FleetReport {
        let makespan = match self.mode {
            ReportMode::Exact => self
                .batch_log
                .iter()
                .map(|b| b.completion_s)
                .fold(0.0f64, f64::max),
            // Every surviving batch's completion event pops valid exactly
            // once at its final (post-re-price) time, so the running max
            // equals the batch-log fold bit-for-bit.
            ReportMode::Streaming => self.stream_makespan_s,
        };
        // Batch counts and sizes come from the per-shard counters, not
        // from the completed-latency population: a request the client
        // timed out on after dispatch is the client's accounting problem,
        // not a smaller batch.
        let total_batches: usize = self.state.iter().map(|st| st.batches).sum();
        let total_batch_size: usize = self.state.iter().map(|st| st.batch_size_sum).sum();
        let (completed, mean_latency, lat_pcts) = match self.mode {
            ReportMode::Exact => {
                let latencies: Vec<f64> = self
                    .completion_s
                    .iter()
                    .zip(self.trace)
                    .filter(|(c, _)| c.is_finite())
                    .map(|(&c, req)| c - req.arrival_s)
                    .collect();
                // One sort for all three percentiles (bit-identical to
                // per-call `percentile`, which re-sorted the sample each
                // time).
                let pcts =
                    percentiles(&latencies, &[0.50, 0.95, 0.99]).unwrap_or_else(|| vec![0.0; 3]);
                let mean = if latencies.is_empty() {
                    0.0
                } else {
                    latencies.iter().sum::<f64>() / latencies.len() as f64
                };
                (latencies.len(), mean, pcts)
            }
            ReportMode::Streaming => {
                let n = self.lat_sketch.count() as usize;
                if n == 0 {
                    (0, 0.0, vec![0.0; 3])
                } else {
                    (n, self.lat_sketch.mean(), self.lat_sketch.quantiles())
                }
            }
        };
        let shard_reports = self
            .state
            .iter()
            .enumerate()
            .map(|(i, st)| ShardReport {
                shard: i,
                tuned_length: self.shards[i].tuned_length(),
                completed: st.completed,
                batches: st.batches,
                mean_batch_size: if st.batches == 0 {
                    0.0
                } else {
                    st.batch_size_sum as f64 / st.batches as f64
                },
                utilization: st.busy_time_s / makespan.max(1e-12),
                mean_queue_depth: st.queue_integral / makespan.max(1e-12),
                max_queue_depth: st.max_queue_depth,
            })
            .collect();
        FleetReport {
            completed,
            mean_latency_s: mean_latency,
            p50_latency_s: lat_pcts[0],
            p95_latency_s: lat_pcts[1],
            p99_latency_s: lat_pcts[2],
            throughput_seq_s: completed as f64 / makespan.max(1e-12),
            makespan_s: makespan,
            mean_batch_size: if total_batches == 0 {
                0.0
            } else {
                total_batch_size as f64 / total_batches as f64
            },
            shards: shard_reports,
            batch_log: self.batch_log,
        }
    }
}

/// Simulates `trace` over a fleet of `shards`, each batching with `cfg` and
/// executing under `policy`, requests routed by `dispatch`.
///
/// Every request completes exactly once; the returned latencies are
/// arrival → completion of the batch containing the request.
///
/// # Panics
///
/// Panics if `shards` or `trace` is empty, `cfg.max_batch == 0`,
/// `cfg.batch_window_s < 0`, or the trace is unsorted / non-finite.
pub fn simulate_fleet(
    shards: &[AcceleratorDesign],
    trace: &[Request],
    policy: SchedulingPolicy,
    dispatch: DispatchPolicy,
    cfg: &BatcherConfig,
) -> FleetReport {
    simulate_fleet_mode(shards, trace, policy, dispatch, cfg, ReportMode::Exact)
}

/// [`simulate_fleet`] with an explicit [`ReportMode`].
///
/// `Exact` is [`simulate_fleet`] verbatim. `Streaming` runs the identical
/// event sequence but never grows the batch log and feeds each completed
/// latency into a P² sketch as its completion event pops, so a
/// million-request trace runs in bounded memory: the report's percentiles
/// are sketch estimates (within the ε the property suites pin), its
/// `batch_log` is empty, and everything else — makespan, throughput,
/// batch-size means, per-shard stats — is bit-identical to `Exact`.
///
/// # Panics
///
/// Same input panics as [`simulate_fleet`], plus the same conservation
/// assert (every request completes exactly once).
pub fn simulate_fleet_mode(
    shards: &[AcceleratorDesign],
    trace: &[Request],
    policy: SchedulingPolicy,
    dispatch: DispatchPolicy,
    cfg: &BatcherConfig,
    mode: ReportMode,
) -> FleetReport {
    simulate_fleet_instrumented(shards, trace, policy, dispatch, cfg, mode).0
}

/// Engine-side run-size counters for scaling benches. Kept out of
/// [`FleetReport`] so exact-mode reports stay bit-identical across PRs;
/// the workspace forbids `unsafe` code, so a counting global allocator is
/// off the table and peak memory is tracked structurally instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FleetRunStats {
    /// Events popped off the heap (arrivals, completions, window closes,
    /// control callbacks).
    pub events_processed: u64,
    /// Peak event-heap population — the dominant transient allocation.
    pub peak_heap_events: usize,
    /// Per-request latency samples retained at report time (0 under
    /// [`ReportMode::Streaming`]).
    pub retained_latency_samples: usize,
    /// Batch records retained in the report's log (0 under
    /// [`ReportMode::Streaming`]).
    pub retained_batch_records: usize,
}

impl FleetRunStats {
    /// Rough peak-allocation proxy in bytes: the event heap's peak plus
    /// the retained report populations. Deterministic (no allocator
    /// introspection), so scaling trajectories can compare it PR-over-PR.
    pub fn peak_tracked_bytes(&self) -> u64 {
        let event = std::mem::size_of::<Event<EventKind>>() as u64;
        let f64s = std::mem::size_of::<f64>() as u64;
        let rec = std::mem::size_of::<BatchRecord>() as u64;
        self.peak_heap_events as u64 * event
            + self.retained_latency_samples as u64 * f64s
            + self.retained_batch_records as u64 * rec
    }
}

/// [`simulate_fleet_mode`] returning the run-size counters alongside the
/// report — the entry point the million-request smoke bench records.
///
/// # Panics
///
/// Same panics as [`simulate_fleet_mode`].
pub fn simulate_fleet_instrumented(
    shards: &[AcceleratorDesign],
    trace: &[Request],
    policy: SchedulingPolicy,
    dispatch: DispatchPolicy,
    cfg: &BatcherConfig,
    mode: ReportMode,
) -> (FleetReport, FleetRunStats) {
    let mut core = FleetCore::new(
        shards,
        trace,
        policy,
        dispatch,
        cfg,
        vec![true; shards.len()],
    );
    core.set_mode(mode);
    core.run(&mut NullController);
    let events_processed = core.events_processed;
    let peak_heap_events = core.peak_heap_events;
    let report = core.into_report();
    assert_eq!(
        report.completed,
        trace.len(),
        "request never completed (conservation bug in the healthy fleet)"
    );
    let stats = FleetRunStats {
        events_processed,
        peak_heap_events,
        retained_latency_samples: match mode {
            ReportMode::Exact => report.completed,
            ReportMode::Streaming => 0,
        },
        retained_batch_records: report.batch_log.len(),
    };
    (report, stats)
}

/// Picks the destination shard for a request of length `len` — shared by
/// the encoder fleet, the autoscaler, and the decode engine, which only
/// differ in how they measure per-shard load (`load(i)` = waiting +
/// in-flight requests) and in which shards accept routed work
/// (`accepting(i)`; the fixed-membership engines accept everywhere).
pub(crate) fn route(
    dispatch: DispatchPolicy,
    shards: &[AcceleratorDesign],
    accepting: &dyn Fn(usize) -> bool,
    load: &dyn Fn(usize) -> usize,
    len: usize,
    rr_next: &mut usize,
) -> usize {
    match dispatch {
        DispatchPolicy::RoundRobin => loop {
            let s = *rr_next % shards.len();
            *rr_next += 1;
            if accepting(s) {
                return s;
            }
        },
        DispatchPolicy::JoinShortestQueue => {
            least_loaded(load, (0..shards.len()).filter(|&i| accepting(i)))
        }
        DispatchPolicy::LengthBinned => {
            let target = (0..shards.len())
                .filter(|&i| accepting(i))
                .map(|i| shards[i].tuned_length())
                .filter(|&t| t >= len)
                .min()
                .unwrap_or_else(|| {
                    (0..shards.len())
                        .filter(|&i| accepting(i))
                        .map(|i| shards[i].tuned_length())
                        .max()
                        .expect("at least one accepting shard")
                });
            least_loaded(
                load,
                (0..shards.len()).filter(|&i| accepting(i) && shards[i].tuned_length() == target),
            )
        }
    }
}

fn least_loaded(load: &dyn Fn(usize) -> usize, candidates: impl Iterator<Item = usize>) -> usize {
    candidates
        .min_by_key(|&i| (load(i), i))
        .expect("at least one candidate shard")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::FpgaSpec;
    use lat_model::config::ModelConfig;
    use lat_model::graph::AttentionMode;
    use lat_workloads::datasets::DatasetSpec;

    fn tiny_design(s_avg: usize) -> AcceleratorDesign {
        AcceleratorDesign::new(
            &ModelConfig::tiny(),
            AttentionMode::paper_sparse(),
            FpgaSpec::alveo_u280(),
            s_avg,
        )
    }

    fn burst(n: usize, at: f64, len: usize) -> Vec<Request> {
        vec![Request { arrival_s: at, len }; n]
    }

    #[test]
    fn cap_fill_dispatches_at_arrival_not_window_close() {
        // The stall bug: 2×max_batch simultaneous arrivals must start the
        // first batch at the arrival instant, not batch_window_s later.
        let fleet = homogeneous_fleet(&tiny_design(64), 1);
        let cfg = BatcherConfig {
            batch_window_s: 0.5,
            max_batch: 8,
        };
        let trace = burst(16, 0.25, 64);
        let r = simulate_fleet(
            &fleet,
            &trace,
            SchedulingPolicy::LengthAware,
            DispatchPolicy::JoinShortestQueue,
            &cfg,
        );
        assert_eq!(r.batch_log.len(), 2);
        assert_eq!(r.batch_log[0].size, 8);
        assert_eq!(
            r.batch_log[0].start_s, 0.25,
            "full batch stalled until the window closed"
        );
        // The second batch is also already full: it starts the moment the
        // shard frees up.
        assert_eq!(r.batch_log[1].start_s, r.batch_log[0].completion_s);
        assert_eq!(r.completed, 16);
    }

    #[test]
    fn zero_window_keeps_simultaneous_burst_in_one_batch() {
        // With batch_window_s = 0 the dispatch condition is met the moment
        // the first arrival lands; same-instant arrivals must still be
        // admitted into that batch, not split into singletons.
        let fleet = homogeneous_fleet(&tiny_design(64), 1);
        let cfg = BatcherConfig {
            batch_window_s: 0.0,
            max_batch: 16,
        };
        let trace = burst(6, 0.5, 64);
        let r = simulate_fleet(
            &fleet,
            &trace,
            SchedulingPolicy::LengthAware,
            DispatchPolicy::JoinShortestQueue,
            &cfg,
        );
        assert_eq!(r.batch_log.len(), 1, "burst split: {:?}", r.batch_log);
        assert_eq!(r.batch_log[0].size, 6);
        assert_eq!(r.batch_log[0].start_s, 0.5);
    }

    #[test]
    fn under_cap_batch_waits_for_window() {
        let fleet = homogeneous_fleet(&tiny_design(64), 1);
        let cfg = BatcherConfig {
            batch_window_s: 0.2,
            max_batch: 8,
        };
        let trace = burst(3, 1.0, 64);
        let r = simulate_fleet(
            &fleet,
            &trace,
            SchedulingPolicy::LengthAware,
            DispatchPolicy::JoinShortestQueue,
            &cfg,
        );
        assert_eq!(r.batch_log.len(), 1);
        assert_eq!(r.batch_log[0].size, 3);
        assert!((r.batch_log[0].start_s - 1.2).abs() < 1e-12);
    }

    #[test]
    fn conservation_across_policies_and_shard_counts() {
        let base = tiny_design(64);
        let trace = poisson_trace(&DatasetSpec::rte(), 200.0, 60, 42);
        for n in [1usize, 2, 3, 4] {
            let fleet = homogeneous_fleet(&base, n);
            for dispatch in DispatchPolicy::ALL {
                let r = simulate_fleet(
                    &fleet,
                    &trace,
                    SchedulingPolicy::LengthAware,
                    dispatch,
                    &BatcherConfig::default(),
                );
                assert_eq!(r.completed, 60, "{n} shards, {dispatch}");
                assert_eq!(
                    r.shards.iter().map(|s| s.completed).sum::<usize>(),
                    60,
                    "{n} shards, {dispatch}"
                );
                assert_eq!(r.batch_log.iter().map(|b| b.size).sum::<usize>(), 60);
                assert!(r
                    .shards
                    .iter()
                    .all(|s| (0.0..=1.0).contains(&s.utilization)));
            }
        }
    }

    #[test]
    fn round_robin_cycles_shards() {
        let fleet = homogeneous_fleet(&tiny_design(64), 3);
        let trace = burst(6, 0.0, 64);
        let r = simulate_fleet(
            &fleet,
            &trace,
            SchedulingPolicy::LengthAware,
            DispatchPolicy::RoundRobin,
            &BatcherConfig {
                batch_window_s: 0.0,
                max_batch: 16,
            },
        );
        // 6 requests over 3 shards → every shard saw exactly 2.
        for s in &r.shards {
            assert_eq!(s.completed, 2, "shard {}", s.shard);
        }
    }

    #[test]
    fn length_binned_routes_by_tuned_length() {
        // Shards tuned for 64 and 256; short traffic must land on the
        // short-tuned shard, long traffic on the long-tuned one.
        let fleet = vec![tiny_design(64), tiny_design(256)];
        let mut trace = burst(4, 0.0, 32);
        trace.extend(burst(4, 0.0, 200));
        let r = simulate_fleet(
            &fleet,
            &trace,
            SchedulingPolicy::LengthAware,
            DispatchPolicy::LengthBinned,
            &BatcherConfig::default(),
        );
        assert_eq!(r.shards[0].completed, 4);
        assert_eq!(r.shards[1].completed, 4);
    }

    #[test]
    fn overlong_requests_go_to_largest_shard() {
        let fleet = vec![tiny_design(64), tiny_design(128)];
        let trace = burst(3, 0.0, 500);
        let r = simulate_fleet(
            &fleet,
            &trace,
            SchedulingPolicy::LengthAware,
            DispatchPolicy::LengthBinned,
            &BatcherConfig::default(),
        );
        assert_eq!(r.shards[0].completed, 0);
        assert_eq!(r.shards[1].completed, 3);
    }

    #[test]
    fn jsq_balances_a_heavy_burst() {
        let fleet = homogeneous_fleet(&tiny_design(64), 4);
        let trace = burst(32, 0.0, 64);
        let r = simulate_fleet(
            &fleet,
            &trace,
            SchedulingPolicy::LengthAware,
            DispatchPolicy::JoinShortestQueue,
            &BatcherConfig {
                batch_window_s: 0.05,
                max_batch: 8,
            },
        );
        // 32 simultaneous requests, cap 8, 4 shards → one full batch each.
        for s in &r.shards {
            assert_eq!(s.completed, 8, "shard {}", s.shard);
            assert_eq!(s.batches, 1, "shard {}", s.shard);
        }
        // All four batches start at t=0: no shard stalls on the window.
        assert!(r.batch_log.iter().all(|b| b.start_s == 0.0));
    }

    #[test]
    fn more_shards_scale_throughput_under_saturation() {
        // Saturating load: 256 simultaneous requests (16 full cap-16
        // batches of work). Every batch dispatches on cap fill, so the
        // makespan is pure service time and must shrink with shard count.
        let base = tiny_design(64);
        let mut rng = lat_tensor::rng::SplitMix64::new(7);
        let trace: Vec<Request> = DatasetSpec::mrpc()
            .sample_batch(&mut rng, 256)
            .into_iter()
            .map(|len| Request {
                arrival_s: 0.0,
                len,
            })
            .collect();
        let mut last = 0.0;
        for n in [1usize, 2, 4] {
            let r = simulate_fleet(
                &homogeneous_fleet(&base, n),
                &trace,
                SchedulingPolicy::LengthAware,
                DispatchPolicy::JoinShortestQueue,
                &BatcherConfig::default(),
            );
            assert_eq!(r.completed, 256);
            assert!(
                r.throughput_seq_s > last * 1.5,
                "{n} shards: {} !> 1.5 × {last}",
                r.throughput_seq_s
            );
            last = r.throughput_seq_s;
        }
    }

    #[test]
    fn report_percentiles_ordered_and_shards_labeled() {
        let fleet = vec![tiny_design(64), tiny_design(128)];
        let trace = poisson_trace(&DatasetSpec::mrpc(), 300.0, 80, 9);
        let r = simulate_fleet(
            &fleet,
            &trace,
            SchedulingPolicy::LengthAware,
            DispatchPolicy::LengthBinned,
            &BatcherConfig::default(),
        );
        assert!(r.p50_latency_s <= r.p95_latency_s);
        assert!(r.p95_latency_s <= r.p99_latency_s);
        assert_eq!(r.shards[0].tuned_length, 64);
        assert_eq!(r.shards[1].tuned_length, 128);
        assert!(r.makespan_s > 0.0);
        assert!(r.mean_batch_size >= 1.0);
    }

    #[test]
    fn deterministic_for_identical_inputs() {
        let fleet = homogeneous_fleet(&tiny_design(64), 3);
        let trace = poisson_trace(&DatasetSpec::rte(), 400.0, 90, 1234);
        let run = || {
            simulate_fleet(
                &fleet,
                &trace,
                SchedulingPolicy::LengthAware,
                DispatchPolicy::JoinShortestQueue,
                &BatcherConfig::default(),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "sorted by arrival")]
    fn unsorted_trace_rejected() {
        let fleet = homogeneous_fleet(&tiny_design(64), 1);
        let trace = vec![
            Request {
                arrival_s: 1.0,
                len: 64,
            },
            Request {
                arrival_s: 0.5,
                len: 64,
            },
        ];
        let _ = simulate_fleet(
            &fleet,
            &trace,
            SchedulingPolicy::LengthAware,
            DispatchPolicy::RoundRobin,
            &BatcherConfig::default(),
        );
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn empty_fleet_rejected() {
        let _ = simulate_fleet(
            &[],
            &burst(1, 0.0, 64),
            SchedulingPolicy::LengthAware,
            DispatchPolicy::RoundRobin,
            &BatcherConfig::default(),
        );
    }

    #[test]
    fn poisson_trace_is_sorted_and_deterministic() {
        let a = poisson_trace(&DatasetSpec::squad_v1(), 50.0, 64, 5);
        let b = poisson_trace(&DatasetSpec::squad_v1(), 50.0, 64, 5);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0].arrival_s <= w[1].arrival_s));
        assert!(a.iter().all(|r| r.arrival_s > 0.0));
    }

    #[test]
    fn constant_profile_matches_stationary_law() {
        // Same seed, same rate: time-rescaling through a constant profile
        // reproduces the stationary trace up to floating-point rounding
        // (per-gap division vs. divided cumulative sum).
        let profile = RateProfile::Constant(80.0);
        let a = poisson_trace(&DatasetSpec::rte(), 80.0, 64, 11);
        let b = nonstationary_poisson_trace(&DatasetSpec::rte(), &profile, 64, 11);
        for (x, y) in a.iter().zip(&b) {
            assert!((x.arrival_s - y.arrival_s).abs() < 1e-9, "{x:?} vs {y:?}");
            assert_eq!(x.len, y.len, "length stream drifted");
        }
    }

    #[test]
    fn piecewise_profile_concentrates_arrivals_in_fast_phases() {
        // 1 s at 10/s then 1 s at 1000/s: nearly all of a 200-request
        // trace must land in the second phase's window.
        let profile = RateProfile::Piecewise(vec![
            RatePhase {
                duration_s: 1.0,
                rate: 10.0,
            },
            RatePhase {
                duration_s: 1.0,
                rate: 1000.0,
            },
        ]);
        let trace = nonstationary_poisson_trace(&DatasetSpec::rte(), &profile, 200, 3);
        assert!(trace.windows(2).all(|w| w[0].arrival_s <= w[1].arrival_s));
        let early = trace.iter().filter(|r| r.arrival_s < 1.0).count();
        let late = trace.iter().filter(|r| r.arrival_s >= 1.0).count();
        assert!(early < 30, "phase-1 arrivals: {early}");
        assert!(late > 170, "phase-2 arrivals: {late}");
    }

    #[test]
    fn diurnal_cumulative_inverts_exactly() {
        let profile = RateProfile::Diurnal {
            mean_rate: 100.0,
            swing: 4.0,
            period_s: 8.0,
        };
        for &t in &[0.1, 0.5, 2.0, 7.9, 8.0, 13.7, 40.0] {
            let area = profile.cumulative(t);
            let back = profile.invert(area);
            assert!((back - t).abs() < 1e-6, "t {t} → Λ {area} → {back}");
        }
        // Peak:trough rate ratio is the configured swing.
        let peak = profile.rate_at(2.0); // sin peak of an 8 s period
        let trough = profile.rate_at(6.0);
        assert!((peak / trough - 4.0).abs() < 1e-9, "{peak}/{trough}");
    }

    #[test]
    fn diurnal_trace_is_sorted_and_tracks_the_rate() {
        let profile = RateProfile::Diurnal {
            mean_rate: 200.0,
            swing: 4.0,
            period_s: 4.0,
        };
        let trace = nonstationary_poisson_trace(&DatasetSpec::mrpc(), &profile, 800, 17);
        assert!(trace.windows(2).all(|w| w[0].arrival_s <= w[1].arrival_s));
        // First half-period (high rate) holds more arrivals than the
        // second (low rate) within the first full cycle.
        let high = trace.iter().filter(|r| r.arrival_s < 2.0).count();
        let low = trace
            .iter()
            .filter(|r| r.arrival_s >= 2.0 && r.arrival_s < 4.0)
            .count();
        assert!(high > low, "high-phase {high} !> low-phase {low}");
    }

    #[test]
    fn nonstationary_trace_is_deterministic() {
        let profile = RateProfile::Diurnal {
            mean_rate: 50.0,
            swing: 3.0,
            period_s: 5.0,
        };
        let a = nonstationary_poisson_trace(&DatasetSpec::rte(), &profile, 64, 9);
        let b = nonstationary_poisson_trace(&DatasetSpec::rte(), &profile, 64, 9);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "swing must be finite")]
    fn diurnal_swing_below_one_rejected() {
        let profile = RateProfile::Diurnal {
            mean_rate: 10.0,
            swing: 0.5,
            period_s: 1.0,
        };
        let _ = nonstationary_poisson_trace(&DatasetSpec::rte(), &profile, 4, 0);
    }

    #[test]
    #[should_panic(expected = "at least one phase")]
    fn empty_piecewise_profile_rejected() {
        let profile = RateProfile::Piecewise(Vec::new());
        let _ = nonstationary_poisson_trace(&DatasetSpec::rte(), &profile, 4, 0);
    }

    #[test]
    fn burst_cumulative_inverts_exactly() {
        let profile = RateProfile::Burst {
            base_rate: 20.0,
            burst_rate: 300.0,
            start_s: 2.0,
            duration_s: 1.5,
        };
        for &t in &[0.0, 0.5, 2.0, 2.7, 3.5, 4.0, 10.0] {
            let area = profile.cumulative(t);
            let back = profile.invert(area);
            assert!((back - t).abs() < 1e-9, "t {t} → Λ {area} → {back}");
        }
        assert_eq!(profile.rate_at(1.9), 20.0);
        assert_eq!(profile.rate_at(2.0), 300.0);
        assert_eq!(profile.rate_at(3.4), 300.0);
        assert_eq!(profile.rate_at(3.5), 20.0);
    }

    #[test]
    fn burst_trace_concentrates_arrivals_in_window() {
        // 20/s baseline with a 300/s flash crowd over [2.0, 3.5): the
        // burst window must hold the bulk of a 300-request trace.
        let profile = RateProfile::Burst {
            base_rate: 20.0,
            burst_rate: 300.0,
            start_s: 2.0,
            duration_s: 1.5,
        };
        let trace = nonstationary_poisson_trace(&DatasetSpec::rte(), &profile, 300, 21);
        assert!(trace.windows(2).all(|w| w[0].arrival_s <= w[1].arrival_s));
        let in_window = trace
            .iter()
            .filter(|r| r.arrival_s >= 2.0 && r.arrival_s < 3.5)
            .count();
        assert!(in_window > 200, "burst-window arrivals: {in_window}");
        let before = trace.iter().filter(|r| r.arrival_s < 2.0).count();
        assert!(before < 80, "pre-burst arrivals: {before}");
    }

    #[test]
    #[should_panic(expected = "burst duration must be positive")]
    fn burst_zero_duration_rejected() {
        let profile = RateProfile::Burst {
            base_rate: 10.0,
            burst_rate: 100.0,
            start_s: 1.0,
            duration_s: 0.0,
        };
        let _ = nonstationary_poisson_trace(&DatasetSpec::rte(), &profile, 4, 0);
    }

    #[test]
    fn zero_completion_report_is_valid_and_nan_free() {
        // Regression for the `fleet.rs:828` panic: a core whose heap never
        // ran (a total-outage stand-in) must yield a well-defined empty
        // report, not `expect("non-empty latencies")`.
        let fleet = homogeneous_fleet(&tiny_design(64), 2);
        let trace = burst(5, 0.0, 64);
        let cfg = BatcherConfig::default();
        let core = FleetCore::new(
            &fleet,
            &trace,
            SchedulingPolicy::LengthAware,
            DispatchPolicy::JoinShortestQueue,
            &cfg,
            vec![true; 2],
        );
        let r = core.into_report();
        assert_eq!(r.completed, 0);
        assert_eq!(r.mean_latency_s, 0.0);
        assert_eq!(r.p50_latency_s, 0.0);
        assert_eq!(r.p95_latency_s, 0.0);
        assert_eq!(r.p99_latency_s, 0.0);
        assert_eq!(r.mean_batch_size, 0.0, "0/0 batch-size NaN regression");
        assert!(r.throughput_seq_s.is_finite());
        assert!(r.shards.iter().all(|s| s.mean_batch_size == 0.0));
    }
}
