//! Online serving simulation: the "prolonged turnaround time" scenario the
//! paper's introduction motivates.
//!
//! Requests with dataset-distributed lengths arrive as a Poisson process;
//! the server forms batches (up to a size cap, waiting at most a batching
//! window) and executes each batch on the accelerator design, serially.
//! The report gives end-to-end request latency percentiles and sustained
//! throughput — the quantities a deployment actually cares about, and
//! where the length-aware pipeline's higher batch throughput turns into
//! lower tail latency.

use crate::accelerator::AcceleratorDesign;
use lat_core::pipeline::SchedulingPolicy;
use lat_tensor::rng::SplitMix64;
use lat_workloads::datasets::DatasetSpec;
use serde::{Deserialize, Serialize};

/// Parameters of the serving simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServingConfig {
    /// Mean request arrival rate in sequences/second (Poisson).
    pub arrival_rate: f64,
    /// Maximum time the batcher waits after the first queued request.
    pub batch_window_s: f64,
    /// Maximum sequences per batch.
    pub max_batch: usize,
    /// Number of requests to simulate.
    pub num_requests: usize,
}

impl Default for ServingConfig {
    fn default() -> Self {
        Self {
            arrival_rate: 20.0,
            batch_window_s: 0.05,
            max_batch: 16,
            num_requests: 400,
        }
    }
}

/// Result of a serving simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServingReport {
    /// Requests completed.
    pub completed: usize,
    /// Mean end-to-end latency (arrival → batch completion) in seconds.
    pub mean_latency_s: f64,
    /// Median latency.
    pub p50_latency_s: f64,
    /// 95th-percentile latency.
    pub p95_latency_s: f64,
    /// 99th-percentile latency.
    pub p99_latency_s: f64,
    /// Sustained throughput in sequences/second.
    pub throughput_seq_s: f64,
    /// Mean formed batch size.
    pub mean_batch_size: f64,
}

/// Simulates serving `cfg.num_requests` requests with lengths from
/// `dataset` on `design` under `policy`.
///
/// # Panics
///
/// Panics if `cfg.arrival_rate <= 0`, `cfg.max_batch == 0` or
/// `cfg.num_requests == 0`.
pub fn simulate_serving(
    design: &AcceleratorDesign,
    dataset: &DatasetSpec,
    policy: SchedulingPolicy,
    cfg: &ServingConfig,
    seed: u64,
) -> ServingReport {
    assert!(cfg.arrival_rate > 0.0, "arrival rate must be positive");
    assert!(cfg.max_batch > 0, "max_batch must be >= 1");
    assert!(cfg.num_requests > 0, "num_requests must be >= 1");

    let mut rng = SplitMix64::new(seed);
    // Pre-generate arrivals (Poisson ⇒ exponential inter-arrival).
    let mut arrivals = Vec::with_capacity(cfg.num_requests);
    let mut t = 0.0f64;
    for _ in 0..cfg.num_requests {
        let u = rng.next_f64().max(1e-12);
        t += -u.ln() / cfg.arrival_rate;
        arrivals.push((t, dataset.sample_length(&mut rng)));
    }

    let mut latencies = Vec::with_capacity(cfg.num_requests);
    let mut batch_sizes = Vec::new();
    let mut server_free = 0.0f64;
    let mut i = 0usize;
    let mut last_completion = 0.0f64;

    while i < arrivals.len() {
        let (first_arrival, _) = arrivals[i];
        // The batch closes when the window elapses after the first request
        // (or the cap fills), but never before the server is free — later
        // arrivals join while the server is busy.
        let close_time = (first_arrival + cfg.batch_window_s).max(server_free);
        let mut j = i;
        while j < arrivals.len() && j - i < cfg.max_batch && arrivals[j].0 <= close_time {
            j += 1;
        }
        let batch: Vec<usize> = arrivals[i..j].iter().map(|&(_, len)| len).collect();
        let start = close_time.max(arrivals[j - 1].0);
        let service = design.run_batch(&batch, policy).seconds;
        let completion = start + service;
        for &(arrival, _) in &arrivals[i..j] {
            latencies.push(completion - arrival);
        }
        batch_sizes.push(batch.len());
        server_free = completion;
        last_completion = completion;
        i = j;
    }

    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let pct = |p: f64| -> f64 {
        let idx = ((latencies.len() as f64 - 1.0) * p).round() as usize;
        latencies[idx]
    };
    ServingReport {
        completed: latencies.len(),
        mean_latency_s: latencies.iter().sum::<f64>() / latencies.len() as f64,
        p50_latency_s: pct(0.50),
        p95_latency_s: pct(0.95),
        p99_latency_s: pct(0.99),
        throughput_seq_s: latencies.len() as f64 / last_completion.max(1e-12),
        mean_batch_size: batch_sizes.iter().sum::<usize>() as f64 / batch_sizes.len() as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::FpgaSpec;
    use lat_model::config::ModelConfig;
    use lat_model::graph::AttentionMode;

    fn design() -> AcceleratorDesign {
        AcceleratorDesign::new(
            &ModelConfig::bert_base(),
            AttentionMode::paper_sparse(),
            FpgaSpec::alveo_u280(),
            68,
        )
    }

    fn run(rate: f64, policy: SchedulingPolicy) -> ServingReport {
        let cfg = ServingConfig {
            arrival_rate: rate,
            num_requests: 200,
            ..ServingConfig::default()
        };
        simulate_serving(&design(), &DatasetSpec::rte(), policy, &cfg, 7)
    }

    #[test]
    fn all_requests_complete() {
        let r = run(20.0, SchedulingPolicy::LengthAware);
        assert_eq!(r.completed, 200);
        assert!(r.mean_latency_s > 0.0);
    }

    #[test]
    fn percentiles_are_ordered() {
        let r = run(30.0, SchedulingPolicy::LengthAware);
        assert!(r.p50_latency_s <= r.p95_latency_s);
        assert!(r.p95_latency_s <= r.p99_latency_s);
        assert!(r.mean_latency_s <= r.p99_latency_s);
    }

    #[test]
    fn higher_load_raises_latency() {
        let light = run(5.0, SchedulingPolicy::LengthAware);
        let heavy = run(120.0, SchedulingPolicy::LengthAware);
        assert!(
            heavy.p95_latency_s > light.p95_latency_s,
            "heavy p95 {} !> light p95 {}",
            heavy.p95_latency_s,
            light.p95_latency_s
        );
        assert!(heavy.mean_batch_size >= light.mean_batch_size);
    }

    #[test]
    fn length_aware_serves_lower_tail_latency_under_load() {
        // The deployment-level payoff of the co-design: at the same load
        // the adaptive schedule completes batches faster, cutting tails.
        let adaptive = run(80.0, SchedulingPolicy::LengthAware);
        let padded = run(80.0, SchedulingPolicy::PadToMax);
        assert!(
            adaptive.p95_latency_s < padded.p95_latency_s,
            "adaptive p95 {} !< padded p95 {}",
            adaptive.p95_latency_s,
            padded.p95_latency_s
        );
    }

    #[test]
    fn throughput_bounded_by_offered_load() {
        let r = run(20.0, SchedulingPolicy::LengthAware);
        assert!(
            r.throughput_seq_s <= 20.0 * 1.2,
            "throughput {}",
            r.throughput_seq_s
        );
        assert!(r.throughput_seq_s > 0.0);
    }

    #[test]
    #[should_panic(expected = "arrival rate")]
    fn zero_rate_rejected() {
        let cfg = ServingConfig {
            arrival_rate: 0.0,
            ..ServingConfig::default()
        };
        let _ = simulate_serving(
            &design(),
            &DatasetSpec::rte(),
            SchedulingPolicy::LengthAware,
            &cfg,
            1,
        );
    }

    #[test]
    fn deterministic_for_seed() {
        let a = run(40.0, SchedulingPolicy::LengthAware);
        let b = run(40.0, SchedulingPolicy::LengthAware);
        assert_eq!(a, b);
    }
}
