//! Online serving simulation: the "prolonged turnaround time" scenario the
//! paper's introduction motivates.
//!
//! Requests with dataset-distributed lengths arrive as a Poisson process;
//! the server forms batches (up to a size cap, waiting at most a batching
//! window — whichever closes first) and executes each batch on the
//! accelerator design. The report gives end-to-end request latency
//! percentiles and sustained throughput — the quantities a deployment
//! actually cares about, and where the length-aware pipeline's higher batch
//! throughput turns into lower tail latency.
//!
//! Since the fleet refactor this module is a thin veneer: the simulation is
//! the 1-shard case of [`crate::fleet::simulate_fleet`], which also fixed
//! the old serial batcher's stall (a batch that filled `max_batch` early
//! used to wait out the full window anyway).

use crate::accelerator::AcceleratorDesign;
use crate::fleet::{poisson_trace, simulate_fleet, BatcherConfig, DispatchPolicy, FleetReport};
use lat_core::pipeline::SchedulingPolicy;
use lat_workloads::datasets::DatasetSpec;
use serde::{Deserialize, Serialize};

/// Parameters of the serving simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServingConfig {
    /// Mean request arrival rate in sequences/second (Poisson).
    pub arrival_rate: f64,
    /// Maximum time the batcher waits after the first queued request; a
    /// batch that fills `max_batch` earlier dispatches immediately.
    pub batch_window_s: f64,
    /// Maximum sequences per batch.
    pub max_batch: usize,
    /// Number of requests to simulate.
    pub num_requests: usize,
}

impl Default for ServingConfig {
    fn default() -> Self {
        Self {
            arrival_rate: 20.0,
            batch_window_s: 0.05,
            max_batch: 16,
            num_requests: 400,
        }
    }
}

/// Result of a serving simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServingReport {
    /// Requests completed.
    pub completed: usize,
    /// Mean end-to-end latency (arrival → batch completion) in seconds.
    pub mean_latency_s: f64,
    /// Median latency.
    pub p50_latency_s: f64,
    /// 95th-percentile latency.
    pub p95_latency_s: f64,
    /// 99th-percentile latency.
    pub p99_latency_s: f64,
    /// Sustained throughput in sequences/second.
    pub throughput_seq_s: f64,
    /// Mean formed batch size.
    pub mean_batch_size: f64,
}

impl From<FleetReport> for ServingReport {
    fn from(r: FleetReport) -> Self {
        Self {
            completed: r.completed,
            mean_latency_s: r.mean_latency_s,
            p50_latency_s: r.p50_latency_s,
            p95_latency_s: r.p95_latency_s,
            p99_latency_s: r.p99_latency_s,
            throughput_seq_s: r.throughput_seq_s,
            mean_batch_size: r.mean_batch_size,
        }
    }
}

/// Simulates serving `cfg.num_requests` requests with lengths from
/// `dataset` on `design` under `policy` — the 1-shard case of
/// [`simulate_fleet`].
///
/// # Panics
///
/// Panics if `cfg.arrival_rate <= 0`, `cfg.max_batch == 0` or
/// `cfg.num_requests == 0`.
pub fn simulate_serving(
    design: &AcceleratorDesign,
    dataset: &DatasetSpec,
    policy: SchedulingPolicy,
    cfg: &ServingConfig,
    seed: u64,
) -> ServingReport {
    let trace = poisson_trace(dataset, cfg.arrival_rate, cfg.num_requests, seed);
    simulate_fleet(
        std::slice::from_ref(design),
        &trace,
        policy,
        DispatchPolicy::JoinShortestQueue,
        &BatcherConfig {
            batch_window_s: cfg.batch_window_s,
            max_batch: cfg.max_batch,
        },
    )
    .into()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::Request;
    use crate::spec::FpgaSpec;
    use lat_model::config::ModelConfig;
    use lat_model::graph::AttentionMode;

    fn design() -> AcceleratorDesign {
        AcceleratorDesign::new(
            &ModelConfig::bert_base(),
            AttentionMode::paper_sparse(),
            FpgaSpec::alveo_u280(),
            68,
        )
    }

    fn run(rate: f64, policy: SchedulingPolicy) -> ServingReport {
        let cfg = ServingConfig {
            arrival_rate: rate,
            num_requests: 200,
            ..ServingConfig::default()
        };
        simulate_serving(&design(), &DatasetSpec::rte(), policy, &cfg, 7)
    }

    #[test]
    fn all_requests_complete() {
        let r = run(20.0, SchedulingPolicy::LengthAware);
        assert_eq!(r.completed, 200);
        assert!(r.mean_latency_s > 0.0);
    }

    #[test]
    fn percentiles_are_ordered() {
        let r = run(30.0, SchedulingPolicy::LengthAware);
        assert!(r.p50_latency_s <= r.p95_latency_s);
        assert!(r.p95_latency_s <= r.p99_latency_s);
        assert!(r.mean_latency_s <= r.p99_latency_s);
    }

    #[test]
    fn higher_load_raises_latency() {
        let light = run(5.0, SchedulingPolicy::LengthAware);
        let heavy = run(120.0, SchedulingPolicy::LengthAware);
        assert!(
            heavy.p95_latency_s > light.p95_latency_s,
            "heavy p95 {} !> light p95 {}",
            heavy.p95_latency_s,
            light.p95_latency_s
        );
        assert!(heavy.mean_batch_size >= light.mean_batch_size);
    }

    #[test]
    fn length_aware_serves_lower_tail_latency_under_load() {
        // The deployment-level payoff of the co-design: at the same load
        // the adaptive schedule completes batches faster, cutting tails.
        let adaptive = run(80.0, SchedulingPolicy::LengthAware);
        let padded = run(80.0, SchedulingPolicy::PadToMax);
        assert!(
            adaptive.p95_latency_s < padded.p95_latency_s,
            "adaptive p95 {} !< padded p95 {}",
            adaptive.p95_latency_s,
            padded.p95_latency_s
        );
    }

    #[test]
    fn throughput_bounded_by_offered_load() {
        let r = run(20.0, SchedulingPolicy::LengthAware);
        assert!(
            r.throughput_seq_s <= 20.0 * 1.2,
            "throughput {}",
            r.throughput_seq_s
        );
        assert!(r.throughput_seq_s > 0.0);
    }

    #[test]
    #[should_panic(expected = "arrival rate")]
    fn zero_rate_rejected() {
        let cfg = ServingConfig {
            arrival_rate: 0.0,
            ..ServingConfig::default()
        };
        let _ = simulate_serving(
            &design(),
            &DatasetSpec::rte(),
            SchedulingPolicy::LengthAware,
            &cfg,
            1,
        );
    }

    #[test]
    fn deterministic_for_seed() {
        let a = run(40.0, SchedulingPolicy::LengthAware);
        let b = run(40.0, SchedulingPolicy::LengthAware);
        assert_eq!(a, b);
    }

    #[test]
    fn full_batch_dispatches_at_arrival_time_not_window_close() {
        // Regression for the batch-window stall: a burst of 2×max_batch
        // simultaneous arrivals must start its first batch at the arrival
        // time. The serving entry point only generates Poisson traffic, so
        // the burst is driven through the 1-shard fleet engine serving now
        // wraps.
        let d = design();
        let cfg = BatcherConfig {
            batch_window_s: 0.5,
            max_batch: 16,
        };
        let trace: Vec<Request> = (0..32)
            .map(|_| Request {
                arrival_s: 1.0,
                len: 68,
            })
            .collect();
        let r = simulate_fleet(
            std::slice::from_ref(&d),
            &trace,
            SchedulingPolicy::LengthAware,
            DispatchPolicy::JoinShortestQueue,
            &cfg,
        );
        assert_eq!(r.batch_log[0].size, 16);
        assert_eq!(
            r.batch_log[0].start_s, 1.0,
            "first full batch must not wait out the 0.5 s window"
        );
        // End-to-end: the fastest requests therefore see pure service time,
        // strictly below the window the old batcher always added.
        assert!(r.p50_latency_s < cfg.batch_window_s);
    }

    #[test]
    fn poisson_cap_fill_dispatches_before_window_close() {
        // Stall regression under Poisson traffic (not just a hand-built
        // burst): at 800 seq/s the cap (16) fills long before the 50 ms
        // window, so the first batch must start at the cap-filling
        // arrival's time — the old batcher stalled it to window close.
        let cfg = ServingConfig {
            arrival_rate: 800.0,
            num_requests: 64,
            ..ServingConfig::default()
        };
        let trace = poisson_trace(&DatasetSpec::rte(), cfg.arrival_rate, cfg.num_requests, 7);
        let cap_fill = trace[cfg.max_batch - 1].arrival_s;
        assert!(
            cap_fill < trace[0].arrival_s + cfg.batch_window_s,
            "test premise: cap fills inside the window ({cap_fill})"
        );
        let r = simulate_fleet(
            std::slice::from_ref(&design()),
            &trace,
            SchedulingPolicy::LengthAware,
            DispatchPolicy::JoinShortestQueue,
            &BatcherConfig {
                batch_window_s: cfg.batch_window_s,
                max_batch: cfg.max_batch,
            },
        );
        assert_eq!(r.batch_log[0].size, cfg.max_batch);
        assert_eq!(
            r.batch_log[0].start_s, cap_fill,
            "first batch stalled past the cap-filling arrival"
        );
    }
}
