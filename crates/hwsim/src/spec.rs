//! FPGA chip specification (resource + power envelope).

use serde::{Deserialize, Serialize};

/// Resource and power envelope of the target FPGA.
///
/// The default is the paper's platform: Xilinx Alveo U280 with the design
/// constrained to SLR0 (the only SLR wired to the HBM stacks), at the
/// 200 MHz the paper reports as the attainable design frequency.
///
/// # Example
///
/// ```
/// use lat_hwsim::spec::FpgaSpec;
///
/// let u280 = FpgaSpec::alveo_u280();
/// assert_eq!(u280.dsp_total, 3000);
/// // Peak 8-bit fixed-point throughput: 2 ops/MAC × 3000 DSP × 200 MHz.
/// assert!((u280.peak_ops_per_s() - 1.2e12).abs() < 1e9);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FpgaSpec {
    /// Human-readable platform name.
    pub name: String,
    /// Design clock in Hz.
    pub clock_hz: u64,
    /// DSP slices available to the design.
    pub dsp_total: u32,
    /// Peak HBM bandwidth in bytes/s.
    pub hbm_bytes_per_s: f64,
    /// On-chip memory capacity in bytes (BRAM + URAM).
    pub onchip_bytes: u64,
    /// Static (always-on) power in watts.
    pub static_power_w: f64,
    /// Dynamic power per active DSP slice in watts.
    pub dynamic_power_per_dsp_w: f64,
}

impl FpgaSpec {
    /// The paper's platform: Alveo U280, SLR0-constrained, 200 MHz.
    pub fn alveo_u280() -> Self {
        Self {
            name: "Alveo U280 (SLR0)".to_string(),
            clock_hz: 200_000_000,
            dsp_total: 3000,
            hbm_bytes_per_s: 460e9,
            onchip_bytes: 35 * 1024 * 1024,
            // Calibrated so a fully active design draws ≈35 W, matching the
            // ~102 GOP/J at ~3.6 TOPS-equivalent the paper reports.
            static_power_w: 10.0,
            dynamic_power_per_dsp_w: 0.00833,
        }
    }

    /// Peak 8-bit fixed-point throughput in ops/s (1 DSP = 1 MAC = 2 ops
    /// per cycle).
    pub fn peak_ops_per_s(&self) -> f64 {
        2.0 * self.dsp_total as f64 * self.clock_hz as f64
    }

    /// HBM bytes transferable per clock cycle.
    pub fn hbm_bytes_per_cycle(&self) -> f64 {
        self.hbm_bytes_per_s / self.clock_hz as f64
    }

    /// Converts a cycle count to seconds at the design clock.
    pub fn cycles_to_seconds(&self, cycles: u64) -> f64 {
        cycles as f64 / self.clock_hz as f64
    }

    /// Board power when `active_dsp` DSP slices are switching.
    pub fn power_w(&self, active_dsp: u32) -> f64 {
        self.static_power_w + self.dynamic_power_per_dsp_w * active_dsp as f64
    }
}

impl Default for FpgaSpec {
    fn default() -> Self {
        Self::alveo_u280()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u280_matches_paper_constants() {
        let s = FpgaSpec::alveo_u280();
        assert_eq!(s.clock_hz, 200_000_000);
        assert_eq!(s.dsp_total, 3000);
        assert!((s.hbm_bytes_per_s - 460e9).abs() < 1.0);
        assert_eq!(s.onchip_bytes, 35 * 1024 * 1024);
    }

    #[test]
    fn peak_is_1_2_tops() {
        let s = FpgaSpec::alveo_u280();
        assert!((s.peak_ops_per_s() - 1.2e12).abs() / 1.2e12 < 1e-9);
    }

    #[test]
    fn hbm_bytes_per_cycle() {
        let s = FpgaSpec::alveo_u280();
        assert!((s.hbm_bytes_per_cycle() - 2300.0).abs() < 1.0);
    }

    #[test]
    fn cycles_to_seconds_roundtrip() {
        let s = FpgaSpec::alveo_u280();
        assert!((s.cycles_to_seconds(200_000_000) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn full_chip_power_near_35w() {
        let s = FpgaSpec::alveo_u280();
        let p = s.power_w(s.dsp_total);
        assert!((30.0..40.0).contains(&p), "power {p}");
    }

    #[test]
    fn idle_power_is_static_only() {
        let s = FpgaSpec::alveo_u280();
        assert_eq!(s.power_w(0), s.static_power_w);
    }
}
