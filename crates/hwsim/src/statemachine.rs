//! The Fig. 2(b) state machine, as a discrete-event simulation.
//!
//! Each coarse stage is driven by a state machine with `Idle` and
//! `Working` states (`State_MM`, `State_Atten`, `State_FF` in the figure).
//! This module simulates the machines event-by-event for a batch and
//! produces:
//!
//! - the full transition trace (for inspection and the schedule-trace
//!   example);
//! - per-stage busy/idle accounting that must agree *exactly* with the
//!   analytic flow-shop schedule of `lat_core::pipeline` (cross-validated
//!   in tests — two independent implementations of the same semantics);
//! - double-buffer occupancy between adjacent stages, including the
//!   high-water mark used to check the design against the chip's on-chip
//!   memory capacity.

use lat_core::pipeline::{schedule_batch, Schedule, SchedulingPolicy, StageTiming};
use serde::{Deserialize, Serialize};

/// The state of one stage's machine at a point in time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StageState {
    /// No sequence occupies the stage.
    Idle,
    /// The stage is processing `(seq, layer)`.
    Working {
        /// Sequence index in the sorted batch.
        seq: usize,
        /// Encoder layer index.
        layer: usize,
    },
}

/// One state transition of one stage machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Transition {
    /// Cycle at which the transition happens.
    pub cycle: u64,
    /// Which stage's machine transitioned.
    pub stage: usize,
    /// The state entered.
    pub into: StageState,
}

/// Result of a state-machine simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StateMachineTrace {
    /// All transitions, sorted by cycle then stage.
    pub transitions: Vec<Transition>,
    /// Total makespan in cycles.
    pub makespan: u64,
    /// Busy cycles per stage.
    pub busy: Vec<u64>,
    /// High-water mark of inter-stage buffer occupancy, in *tokens*
    /// (multiply by bytes/token for a capacity check).
    pub buffer_high_water_tokens: u64,
}

impl StateMachineTrace {
    /// Idle fraction of stage `stage` over the makespan.
    pub fn idle_fraction(&self, stage: usize) -> f64 {
        if self.makespan == 0 {
            return 0.0;
        }
        1.0 - self.busy[stage] as f64 / self.makespan as f64
    }

    /// Number of `Working` periods of stage `stage`.
    pub fn activations(&self, stage: usize) -> usize {
        self.transitions
            .iter()
            .filter(|t| t.stage == stage && matches!(t.into, StageState::Working { .. }))
            .count()
    }
}

/// Simulates the per-stage state machines for a batch under `policy`.
///
/// Internally derives the event times from the same flow-shop recurrence
/// the analytic scheduler uses, then replays them as explicit state
/// transitions with buffer accounting — the exact agreement between the
/// two is a test invariant.
pub fn simulate<T: StageTiming>(
    lengths: &[usize],
    layers: usize,
    timing: &T,
    policy: SchedulingPolicy,
) -> StateMachineTrace {
    let schedule = schedule_batch(lengths, layers, timing, policy);
    trace_from_schedule(&schedule, lengths)
}

/// Builds the transition trace and buffer accounting from a schedule.
pub fn trace_from_schedule(schedule: &Schedule, lengths: &[usize]) -> StateMachineTrace {
    let stages = schedule.num_stages();
    let mut transitions = Vec::new();
    let mut busy = vec![0u64; stages];

    for e in schedule.entries() {
        transitions.push(Transition {
            cycle: e.start,
            stage: e.stage,
            into: StageState::Working {
                seq: e.seq,
                layer: e.layer,
            },
        });
        transitions.push(Transition {
            cycle: e.end,
            stage: e.stage,
            into: StageState::Idle,
        });
        busy[e.stage] += e.end - e.start;
    }
    transitions.sort_by_key(|t| (t.cycle, t.stage));

    // Double-buffer occupancy: a sequence's activation occupies the buffer
    // between stage k and k+1 from the end of its stage-k interval until
    // the end of its stage-(k+1) interval. Track the token high-water mark
    // over all buffers.
    let mut sorted_lens: Vec<usize> = lengths.to_vec();
    sorted_lens.sort_unstable_by(|a, b| b.cmp(a));
    let mut events: Vec<(u64, i64)> = Vec::new();
    for e in schedule.entries() {
        if e.stage + 1 < stages {
            let tokens = sorted_lens.get(e.seq).copied().unwrap_or(0) as i64;
            // Occupy from producer end…
            events.push((e.end, tokens));
            // …until the consumer (same seq/layer, next stage) finishes.
            if let Some(consumer) = schedule
                .entries()
                .iter()
                .find(|c| c.seq == e.seq && c.layer == e.layer && c.stage == e.stage + 1)
            {
                events.push((consumer.end, -tokens));
            }
        }
    }
    events.sort_unstable();
    let mut occupancy = 0i64;
    let mut high_water = 0i64;
    for (_, delta) in events {
        occupancy += delta;
        high_water = high_water.max(occupancy);
    }

    StateMachineTrace {
        transitions,
        makespan: schedule.makespan(),
        busy,
        buffer_high_water_tokens: high_water.max(0) as u64,
    }
}

/// Bytes of on-chip double-buffer capacity a design needs for activations
/// of hidden width `hidden_dim` at 8-bit precision, given the buffer
/// high-water mark in tokens (×2 for double buffering).
pub fn buffer_bytes(high_water_tokens: u64, hidden_dim: usize) -> u64 {
    2 * high_water_tokens * hidden_dim as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use lat_core::pipeline::LinearStageTiming;

    fn setup() -> (Vec<usize>, LinearStageTiming) {
        (
            vec![140, 100, 82, 78, 72],
            LinearStageTiming::new(vec![10.0, 12.0, 9.0], vec![0, 0, 0]),
        )
    }

    #[test]
    fn trace_agrees_with_analytic_schedule() {
        let (lengths, timing) = setup();
        for policy in [
            SchedulingPolicy::LengthAware,
            SchedulingPolicy::PadToMax,
            SchedulingPolicy::MicroBatch { size: 2 },
        ] {
            let schedule = schedule_batch(&lengths, 2, &timing, policy);
            let trace = simulate(&lengths, 2, &timing, policy);
            assert_eq!(trace.makespan, schedule.makespan(), "{policy}");
            for k in 0..3 {
                assert_eq!(trace.busy[k], schedule.stage_busy(k), "{policy} stage {k}");
            }
        }
    }

    #[test]
    fn transitions_alternate_working_idle() {
        let (lengths, timing) = setup();
        let trace = simulate(&lengths, 1, &timing, SchedulingPolicy::LengthAware);
        for stage in 0..3 {
            let mine: Vec<&Transition> = trace
                .transitions
                .iter()
                .filter(|t| t.stage == stage)
                .collect();
            // Equal numbers of entries and exits.
            let (mut working, mut idle) = (0, 0);
            for t in &mine {
                match t.into {
                    StageState::Working { .. } => working += 1,
                    StageState::Idle => idle += 1,
                }
            }
            assert_eq!(working, idle);
            assert_eq!(working, 5); // one activation per sequence per layer
        }
    }

    #[test]
    fn activations_count_jobs() {
        let (lengths, timing) = setup();
        let trace = simulate(&lengths, 3, &timing, SchedulingPolicy::LengthAware);
        for stage in 0..3 {
            assert_eq!(trace.activations(stage), 5 * 3);
        }
    }

    #[test]
    fn bottleneck_idle_fraction_is_fill_drain_only() {
        let (lengths, timing) = setup();
        let trace = simulate(&lengths, 4, &timing, SchedulingPolicy::LengthAware);
        // Stage 1 (12 cyc/token) is the bottleneck: idle only during
        // pipeline fill and drain.
        assert!(
            trace.idle_fraction(1) < 0.15,
            "bottleneck idle {:.3}",
            trace.idle_fraction(1)
        );
    }

    #[test]
    fn buffer_high_water_positive_and_bounded() {
        let (lengths, timing) = setup();
        let trace = simulate(&lengths, 2, &timing, SchedulingPolicy::LengthAware);
        let hw = trace.buffer_high_water_tokens;
        assert!(hw > 0);
        // Never more than the whole batch resident in buffers at once,
        // across both inter-stage boundaries.
        let total: u64 = lengths.iter().map(|&l| l as u64).sum();
        assert!(hw <= 2 * total, "high water {hw} vs total {total}");
    }

    #[test]
    fn buffer_bytes_formula() {
        assert_eq!(buffer_bytes(100, 768), 2 * 100 * 768);
    }

    #[test]
    fn buffers_fit_on_chip_for_paper_workloads() {
        // BERT-base activations at 8-bit through the double buffers must
        // fit in the U280's 35 MB for a 16-sequence SQuAD batch.
        let timing = LinearStageTiming::new(vec![2400.0, 2450.0, 2420.0], vec![0, 0, 0]);
        let lengths = vec![
            821, 400, 250, 200, 180, 170, 160, 150, 140, 130, 120, 110, 100, 90, 80, 70,
        ];
        let trace = simulate(&lengths, 12, &timing, SchedulingPolicy::LengthAware);
        let bytes = buffer_bytes(trace.buffer_high_water_tokens, 768);
        assert!(
            bytes < 35 * 1024 * 1024,
            "buffers need {bytes} bytes, exceeding on-chip capacity"
        );
    }
}
