//! Energy accounting for Table 2 (throughput / energy-efficiency
//! comparison).
//!
//! Only the "Ours FPGA" row of Table 2 is *measured* (from the simulator);
//! the GPU/ASIC comparators are the published numbers quoted by the paper,
//! collected here as constants so the table harness reproduces the exact
//! comparison.

use serde::{Deserialize, Serialize};

/// One row of Table 2.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EfficiencyRow {
    /// Work / platform label.
    pub work: String,
    /// Throughput in GOPS.
    pub throughput_gops: f64,
    /// Energy efficiency in GOP/J (`None` where the paper reports N/A).
    pub gop_per_j: Option<f64>,
    /// Average accuracy drop in percentage points.
    pub accuracy_drop_pct: Option<f64>,
    /// Whether the number is measured by this repository (true) or quoted
    /// from the literature (false).
    pub measured: bool,
}

/// The literature rows of Table 2, as printed in the paper.
pub fn literature_rows() -> Vec<EfficiencyRow> {
    vec![
        EfficiencyRow {
            work: "GPU RTX 6000".into(),
            throughput_gops: 1380.0,
            gop_per_j: Some(8.0),
            accuracy_drop_pct: Some(1.8),
            measured: false,
        },
        EfficiencyRow {
            work: "GPU V100: E.T.".into(),
            throughput_gops: 7550.0,
            gop_per_j: Some(25.0),
            accuracy_drop_pct: Some(2.1),
            measured: false,
        },
        EfficiencyRow {
            work: "FPGA design [37]".into(),
            throughput_gops: 76.0,
            gop_per_j: None,
            accuracy_drop_pct: Some(3.8),
            measured: false,
        },
        EfficiencyRow {
            work: "ASIC: A3".into(),
            throughput_gops: 221.0,
            gop_per_j: Some(269.0),
            accuracy_drop_pct: Some(1.6),
            measured: false,
        },
        EfficiencyRow {
            work: "ASIC: SpAtten".into(),
            throughput_gops: 360.0,
            gop_per_j: Some(382.0),
            accuracy_drop_pct: Some(1.1),
            measured: false,
        },
    ]
}

/// Builds the "Ours FPGA" row from simulator measurements.
pub fn ours_row(throughput_gops: f64, gop_per_j: f64, accuracy_drop_pct: f64) -> EfficiencyRow {
    EfficiencyRow {
        work: "Ours FPGA".into(),
        throughput_gops,
        gop_per_j: Some(gop_per_j),
        accuracy_drop_pct: Some(accuracy_drop_pct),
        measured: true,
    }
}

/// Energy in joules for a run at `power_w` lasting `seconds`.
pub fn energy_j(power_w: f64, seconds: f64) -> f64 {
    power_w * seconds
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literature_matches_paper_table2() {
        let rows = literature_rows();
        assert_eq!(rows.len(), 5);
        let gpu = &rows[0];
        assert_eq!(gpu.throughput_gops, 1380.0);
        assert_eq!(gpu.gop_per_j, Some(8.0));
        let spatten = rows.iter().find(|r| r.work.contains("SpAtten")).unwrap();
        assert_eq!(spatten.gop_per_j, Some(382.0));
        assert!(rows.iter().all(|r| !r.measured));
    }

    #[test]
    fn fpga37_has_no_energy_number() {
        let rows = literature_rows();
        let fpga37 = rows.iter().find(|r| r.work.contains("[37]")).unwrap();
        assert_eq!(fpga37.gop_per_j, None);
    }

    #[test]
    fn ours_row_is_measured() {
        let r = ours_row(3600.0, 102.0, 1.8);
        assert!(r.measured);
        assert_eq!(r.gop_per_j, Some(102.0));
    }

    #[test]
    fn energy_product() {
        assert_eq!(energy_j(35.0, 2.0), 70.0);
    }
}
