//! Criterion bench: quantization and LUT score computation (the At-Sel
//! unit's software model) at the paper's bit-widths.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lat_core::topk::{top_k_heap, top_k_merge_network};
use lat_tensor::lut::ProductLut;
use lat_tensor::quant::{BitWidth, QuantizedMatrix};
use lat_tensor::rng::SplitMix64;
use std::hint::black_box;
use std::time::Duration;

fn bench_quantize(c: &mut Criterion) {
    let mut group = c.benchmark_group("quantize");
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(300));
    group.sample_size(20);

    let mut rng = SplitMix64::new(1);
    let m = rng.gaussian_matrix(256, 64, 1.0);
    for bits in BitWidth::all() {
        group.bench_with_input(
            BenchmarkId::new("quantize_256x64", bits.to_string()),
            &bits,
            |b, &bits| b.iter(|| QuantizedMatrix::quantize(black_box(&m), bits)),
        );
    }
    group.finish();
}

fn bench_lut_scores(c: &mut Criterion) {
    let mut group = c.benchmark_group("lut_scores");
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(300));
    group.sample_size(10);

    let mut rng = SplitMix64::new(2);
    let q_m = rng.gaussian_matrix(128, 64, 1.0);
    let k_m = rng.gaussian_matrix(128, 64, 1.0);
    for bits in [BitWidth::One, BitWidth::Four] {
        let q = QuantizedMatrix::quantize(&q_m, bits);
        let k = QuantizedMatrix::quantize(&k_m, bits);
        let lut = ProductLut::new(bits);
        group.bench_with_input(
            BenchmarkId::new("scores_128x128x64", bits.to_string()),
            &bits,
            |b, _| b.iter(|| lut.score_matrix(black_box(&q), &k).expect("scores")),
        );
    }
    group.finish();
}

fn bench_topk(c: &mut Criterion) {
    let mut group = c.benchmark_group("topk");
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(300));
    group.sample_size(30);

    let mut rng = SplitMix64::new(3);
    for &n in &[128usize, 512, 1024] {
        let scores: Vec<i32> = (0..n).map(|_| rng.next_u64() as i32 % 1000).collect();
        group.bench_with_input(BenchmarkId::new("heap_k30", n), &n, |b, _| {
            b.iter(|| top_k_heap(black_box(&scores), 30))
        });
        group.bench_with_input(BenchmarkId::new("merge_network_k30", n), &n, |b, _| {
            b.iter(|| top_k_merge_network(black_box(&scores), 30))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_quantize, bench_lut_scores, bench_topk);
criterion_main!(benches);
