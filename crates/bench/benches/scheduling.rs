//! Criterion bench: Algorithm 1 stage allocation and the length-aware
//! pipeline scheduler (the costs a host would pay per batch at runtime).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lat_core::pipeline::{schedule_batch, LinearStageTiming, SchedulingPolicy};
use lat_core::stage_alloc::{allocate_stages, ResourceModel};
use lat_model::config::ModelConfig;
use lat_model::graph::{AttentionMode, OperatorGraph};
use lat_tensor::rng::SplitMix64;
use lat_workloads::datasets::DatasetSpec;
use std::hint::black_box;
use std::time::Duration;

fn bench_stage_allocation(c: &mut Criterion) {
    let mut group = c.benchmark_group("stage_allocation");
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(300));

    let graph = OperatorGraph::encoder(&ModelConfig::bert_base());
    group.bench_function("algorithm1_bert_base", |b| {
        b.iter(|| {
            let mut alloc = allocate_stages(
                black_box(&graph),
                177,
                AttentionMode::paper_sparse(),
                ResourceModel::default(),
            );
            alloc.balance_to_budget(&graph, 177, AttentionMode::paper_sparse());
            alloc
        })
    });
    group.finish();
}

fn bench_pipeline_scheduling(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline_scheduling");
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(300));

    let timing = LinearStageTiming::new(vec![10.0, 12.0, 9.0], vec![0, 0, 0]);
    let mut rng = SplitMix64::new(4);
    let dataset = DatasetSpec::squad_v1();
    for &batch_size in &[16usize, 64, 256] {
        let lengths = dataset.sample_batch(&mut rng, batch_size);
        for policy in [
            SchedulingPolicy::LengthAware,
            SchedulingPolicy::PadToMax,
            SchedulingPolicy::MicroBatch { size: 4 },
        ] {
            group.bench_with_input(
                BenchmarkId::new(policy.to_string(), batch_size),
                &lengths,
                |b, lengths| b.iter(|| schedule_batch(black_box(lengths), 12, &timing, policy)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_stage_allocation, bench_pipeline_scheduling);
criterion_main!(benches);
