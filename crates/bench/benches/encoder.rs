//! Criterion bench: full encoder forward pass with dense vs sparse
//! attention (tiny configuration — the software reference path, not the
//! simulated hardware).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lat_core::sparse::{SparseAttention, SparseAttentionConfig};
use lat_model::attention::DenseAttention;
use lat_model::config::ModelConfig;
use lat_model::encoder::Encoder;
use lat_tensor::rng::SplitMix64;
use std::hint::black_box;
use std::time::Duration;

fn bench_encoder(c: &mut Criterion) {
    let mut group = c.benchmark_group("encoder_forward");
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_millis(300));
    group.sample_size(10);

    let cfg = ModelConfig::tiny();
    let mut rng = SplitMix64::new(5);
    let enc = Encoder::random(&cfg, &mut rng);
    for &n in &[32usize, 128] {
        let x = rng.gaussian_matrix(n, cfg.hidden_dim, 1.0);
        group.bench_with_input(BenchmarkId::new("dense", n), &n, |b, _| {
            b.iter(|| {
                enc.forward(black_box(&x), &DenseAttention)
                    .expect("forward")
            })
        });
        let sparse = SparseAttention::new(SparseAttentionConfig::paper_default().with_k(16));
        group.bench_with_input(BenchmarkId::new("sparse_k16", n), &n, |b, _| {
            b.iter(|| enc.forward(black_box(&x), &sparse).expect("forward"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_encoder);
criterion_main!(benches);
