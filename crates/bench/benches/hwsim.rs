//! Criterion bench: throughput of the FPGA accelerator *simulator* itself
//! (how fast whole batches can be evaluated analytically — relevant for
//! design-space exploration loops).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lat_core::pipeline::SchedulingPolicy;
use lat_hwsim::accelerator::AcceleratorDesign;
use lat_hwsim::spec::FpgaSpec;
use lat_model::config::ModelConfig;
use lat_model::graph::AttentionMode;
use lat_tensor::rng::SplitMix64;
use lat_workloads::datasets::DatasetSpec;
use std::hint::black_box;
use std::time::Duration;

fn bench_design_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("hwsim");
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(300));

    group.bench_function("design_construction", |b| {
        b.iter(|| {
            AcceleratorDesign::new(
                black_box(&ModelConfig::bert_base()),
                AttentionMode::paper_sparse(),
                FpgaSpec::alveo_u280(),
                177,
            )
        })
    });

    let design = AcceleratorDesign::new(
        &ModelConfig::bert_base(),
        AttentionMode::paper_sparse(),
        FpgaSpec::alveo_u280(),
        177,
    );
    let mut rng = SplitMix64::new(6);
    for &batch_size in &[16usize, 64] {
        let batch = DatasetSpec::squad_v1().sample_batch(&mut rng, batch_size);
        group.bench_with_input(
            BenchmarkId::new("run_batch", batch_size),
            &batch,
            |b, batch| b.iter(|| design.run_batch(black_box(batch), SchedulingPolicy::LengthAware)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_design_construction);
criterion_main!(benches);
