//! Criterion bench: DAG scheduling and the HBM channel model (host-side
//! analysis costs).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lat_core::dag::TaskDag;
use lat_hwsim::hbm::HbmModel;
use lat_model::config::ModelConfig;
use lat_model::graph::AttentionMode;
use std::hint::black_box;
use std::time::Duration;

fn bench_dag(c: &mut Criterion) {
    let mut group = c.benchmark_group("dag");
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(300));

    let dag = TaskDag::encoder_multihead(
        &ModelConfig::bert_base(),
        177,
        AttentionMode::paper_sparse(),
    );
    group.bench_function("multihead_priorities", |b| {
        b.iter(|| black_box(&dag).priorities())
    });
    for units in [2usize, 12] {
        group.bench_with_input(BenchmarkId::new("list_schedule", units), &units, |b, &u| {
            b.iter(|| black_box(&dag).list_schedule(u))
        });
    }
    group.finish();
}

fn bench_hbm(c: &mut Criterion) {
    let mut group = c.benchmark_group("hbm");
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(300));

    let model = HbmModel::u280();
    let buffers: Vec<u64> = (0..512).map(|i| 1000 + (i * 37) % 5000).collect();
    group.bench_function("round_robin_makespan_512", |b| {
        b.iter(|| model.round_robin_makespan(black_box(&buffers)))
    });
    group.finish();
}

criterion_group!(benches, bench_dag, bench_hbm);
criterion_main!(benches);
