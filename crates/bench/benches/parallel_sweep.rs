//! Criterion bench: the tensor-kernel and report-path rewrites of the
//! parallel-sweep PR, each against the code shape it replaced.
//!
//! - `dot/unrolled_768` vs `dot/scalar_768` — the four-accumulator
//!   unroll breaks the FP-add latency chain a single-accumulator dot
//!   serializes on (the win `Matrix::matmul_transposed` inherits).
//! - `percentiles/sort_once` vs `percentiles/three_sorts` — the report
//!   builders' p50/p95/p99 triple from one sort instead of three.
//! - `sweep/serial_6_cells` vs `sweep/pool4_6_cells` — a six-cell fleet
//!   sweep through `Scheduler::serial()` and `Scheduler::new(4)`; equal
//!   results by construction, wall-time scales with host cores.

use criterion::{criterion_group, criterion_main, Criterion};
use lat_core::pipeline::SchedulingPolicy;
use lat_core::pool::Scheduler;
use lat_hwsim::accelerator::AcceleratorDesign;
use lat_hwsim::fleet::{homogeneous_fleet, poisson_trace, BatcherConfig, DispatchPolicy};
use lat_hwsim::spec::FpgaSpec;
use lat_model::config::ModelConfig;
use lat_model::graph::AttentionMode;
use lat_tensor::rng::SplitMix64;
use lat_tensor::{dot_unrolled, stats};
use lat_workloads::datasets::DatasetSpec;
use std::hint::black_box;
use std::time::Duration;

/// The single-accumulator dot the unrolled kernel replaced, kept here as
/// the bench baseline.
fn dot_scalar(a: &[f32], b: &[f32]) -> f32 {
    let mut acc = 0.0f32;
    for (&x, &y) in a.iter().zip(b) {
        acc += x * y;
    }
    acc
}

fn bench_dot(c: &mut Criterion) {
    let mut group = c.benchmark_group("dot");
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(300));
    group.sample_size(30);

    let mut rng = SplitMix64::new(11);
    let a: Vec<f32> = (0..768).map(|_| rng.next_f32() - 0.5).collect();
    let b: Vec<f32> = (0..768).map(|_| rng.next_f32() - 0.5).collect();
    group.bench_function("scalar_768", |bench| {
        bench.iter(|| dot_scalar(black_box(&a), black_box(&b)))
    });
    group.bench_function("unrolled_768", |bench| {
        bench.iter(|| dot_unrolled(black_box(&a), black_box(&b)))
    });
    group.finish();
}

fn bench_percentiles(c: &mut Criterion) {
    let mut group = c.benchmark_group("percentiles");
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(300));
    group.sample_size(20);

    let mut rng = SplitMix64::new(12);
    let xs: Vec<f64> = (0..20_000).map(|_| rng.next_f64()).collect();
    let ps = [0.50, 0.95, 0.99];
    group.bench_function("three_sorts", |bench| {
        bench.iter(|| ps.map(|p| stats::percentile(black_box(&xs), p).expect("non-empty")))
    });
    group.bench_function("sort_once", |bench| {
        bench.iter(|| stats::percentiles(black_box(&xs), &ps).expect("non-empty"))
    });
    group.finish();
}

fn bench_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("sweep");
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_millis(300));
    group.sample_size(10);

    let design = AcceleratorDesign::new(
        &ModelConfig::tiny(),
        AttentionMode::paper_sparse(),
        FpgaSpec::alveo_u280(),
        64,
    );
    let fleet = homogeneous_fleet(&design, 2);
    let mix = DatasetSpec::mrpc();
    let cells: Vec<(f64, DispatchPolicy)> = [120.0f64, 400.0]
        .iter()
        .flat_map(|&rate| DispatchPolicy::ALL.iter().map(move |&d| (rate, d)))
        .collect();
    let run = |sched: &Scheduler| {
        sched.par_map_indexed(&cells, |&(rate, d)| {
            let trace = poisson_trace(&mix, rate, 120, 0xDAC2_2022);
            lat_hwsim::fleet::simulate_fleet(
                &fleet,
                &trace,
                SchedulingPolicy::LengthAware,
                d,
                &BatcherConfig::default(),
            )
            .completed
        })
    };
    let serial = Scheduler::serial();
    let pool4 = Scheduler::new(4);
    assert_eq!(run(&serial), run(&pool4), "sweep must be worker-invariant");
    group.bench_function("serial_6_cells", |bench| bench.iter(|| run(&serial)));
    group.bench_function("pool4_6_cells", |bench| bench.iter(|| run(&pool4)));
    group.finish();
}

criterion_group!(benches, bench_dot, bench_percentiles, bench_sweep);
criterion_main!(benches);
