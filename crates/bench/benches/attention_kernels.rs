//! Criterion bench: dense vs sparse attention kernels across sequence
//! lengths (the software-side complexity crossover behind Fig. 7b).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lat_core::fused::{fused_attention_row, unfused_attention_row};
use lat_core::sparse::{SparseAttention, SparseAttentionConfig};
use lat_model::attention::{AttentionOp, DenseAttention};
use lat_tensor::rng::SplitMix64;
use std::hint::black_box;
use std::time::Duration;

fn bench_attention(c: &mut Criterion) {
    let mut group = c.benchmark_group("attention");
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(300));
    group.sample_size(10);

    for &n in &[64usize, 128, 256, 512] {
        let d = 64;
        let mut rng = SplitMix64::new(n as u64);
        let q = rng.gaussian_matrix(n, d, 1.0);
        let k = rng.gaussian_matrix(n, d, 1.0);
        let v = rng.gaussian_matrix(n, d, 1.0);

        group.bench_with_input(BenchmarkId::new("dense", n), &n, |b, _| {
            b.iter(|| {
                DenseAttention
                    .attend(black_box(&q), &k, &v)
                    .expect("attend")
            })
        });
        let sparse = SparseAttention::new(SparseAttentionConfig::paper_default());
        group.bench_with_input(BenchmarkId::new("sparse_k30_1bit", n), &n, |b, _| {
            b.iter(|| sparse.attend(black_box(&q), &k, &v).expect("attend"))
        });
    }
    group.finish();
}

fn bench_fused_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("fused_kernel");
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(300));
    group.sample_size(20);

    let d = 64;
    let k = 30;
    let mut rng = SplitMix64::new(9);
    let ks = rng.gaussian_matrix(k, d, 1.0);
    let q: Vec<f32> = (0..d).map(|_| rng.next_gaussian()).collect();
    let mask = vec![false; k];

    group.bench_function("fused", |b| {
        b.iter(|| fused_attention_row(black_box(&q), &ks, &mask, 1).expect("fused"))
    });
    group.bench_function("unfused", |b| {
        b.iter(|| unfused_attention_row(black_box(&q), &ks, &mask, 1).expect("unfused"))
    });
    group.finish();
}

criterion_group!(benches, bench_attention, bench_fused_kernel);
criterion_main!(benches);
