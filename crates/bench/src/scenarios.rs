//! The evaluation scenarios of §5.2: model × dataset combinations, with
//! deterministic batch sampling shared by every figure harness.

use lat_model::config::ModelConfig;
use lat_tensor::rng::SplitMix64;
use lat_workloads::datasets::{DatasetSpec, MixedWorkload};

/// The paper's batch size for hardware evaluation.
pub const BATCH_SIZE: usize = 16;

/// Default number of batches each harness averages over.
pub const DEFAULT_BATCHES: usize = 8;

/// Root seed for all figure harnesses (printed by each binary).
pub const HARNESS_SEED: u64 = 0xDAC2_2022;

/// The harness seed, overridable through the `HARNESS_SEED` environment
/// variable (decimal or `0x`-prefixed hex). CI sweeps a small seed matrix
/// over the isolated property suites with this hook so the determinism
/// pins aren't single-seed artifacts; unset, it falls back to
/// [`HARNESS_SEED`].
///
/// # Panics
///
/// Panics if the variable is set but does not parse as a `u64` — a
/// misconfigured CI matrix should fail loudly, not silently test the
/// default seed.
pub fn harness_seed() -> u64 {
    match std::env::var("HARNESS_SEED") {
        Ok(s) => {
            let s = s.trim();
            let parsed = match s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
                Some(hex) => u64::from_str_radix(hex, 16),
                None => s.parse(),
            };
            parsed.unwrap_or_else(|_| panic!("HARNESS_SEED {s:?} is not a u64"))
        }
        Err(_) => HARNESS_SEED,
    }
}

/// Shard counts swept by `ablate_fleet`'s homogeneous scaling table.
pub const FLEET_SHARD_COUNTS: [usize; 3] = [1, 2, 4];

/// Saturating arrival rate (seq/s) for the fleet scaling table — far above
/// a single BERT-base shard's ~64 seq/s capacity, so added shards are the
/// bottleneck relief and throughput must scale with the fleet.
pub const FLEET_SATURATING_RATE: f64 = 600.0;

/// Arrival-rate sweep for the fleet dispatch-policy table (light load up
/// to just past the heterogeneous fleet's saturation knee).
pub const FLEET_DISPATCH_RATES: [f64; 3] = [60.0, 120.0, 200.0];

/// Stage-allocation tunings of the heterogeneous length-binned fleet: one
/// shard sized at the MRPC maximum (86, the short bin) and three at the
/// SQuAD maximum (821, the long bin). The 1:3 split matches the
/// cost-weighted demand of [`fleet_mix`] (long requests carry most tokens).
pub const FLEET_BIN_TUNINGS: [usize; 4] = [86, 821, 821, 821];

/// Requests per fleet simulation point.
pub const FLEET_REQUESTS: usize = 320;

/// The traffic mix the fleet ablation serves: the equal-weight Table 1
/// dataset mix (multi-tenant serving with three length profiles).
pub fn fleet_mix() -> MixedWorkload {
    MixedWorkload::paper_mix()
}

/// Concurrent sequences (KV-cache slots) per shard in the decode ablation.
pub const DECODE_SLOTS: usize = 16;

/// Requests per decode simulation point.
pub const DECODE_REQUESTS: usize = 160;

/// Fraction of high-priority (latency-sensitive) decode requests.
pub const DECODE_HIGH_FRACTION: f64 = 0.15;

/// Time-to-first-token deadline of the high-priority class, driving
/// preemption under `ContinuousPreempt` — far below the queueing delay a
/// saturated shard imposes, so deadline misses actually occur.
pub const DECODE_TTFT_DEADLINE_S: f64 = 0.05;

/// Shard counts swept by the decode ablation.
pub const DECODE_SHARD_COUNTS: [usize; 2] = [1, 2];

/// Saturating request rate (seq/s) per decode table — each request holds a
/// slot for its whole multi-step service, so per-shard capacity is far
/// below the encoder fleet's.
pub const DECODE_SATURATING_RATE: f64 = 60.0;

/// Arrival-rate sweep for the decode priority table (moderate load up to
/// the saturating rate).
pub const DECODE_RATES: [f64; 2] = [15.0, 60.0];

/// Prefill traffic mix of the decode ablation: the Table 1 mix; output
/// lengths come from its mirrored decode profile
/// (`decode_mix().decode_output()`), whose `max/avg` skew is what strands
/// a static batch's slots on straggler outputs.
pub fn decode_mix() -> MixedWorkload {
    MixedWorkload::paper_mix()
}

/// Largest fleet the autoscale ablation may commit (the fixed-max
/// baseline's size).
pub const AUTOSCALE_MAX_SHARDS: usize = 4;

/// Smallest fleet the autoscaler may shrink to (the fixed-min baseline's
/// size).
pub const AUTOSCALE_MIN_SHARDS: usize = 1;

/// Time-averaged arrival rate (seq/s) of the diurnal workload — between
/// one BERT-base shard's ~68 seq/s capacity and the 4-shard fleet's, so
/// neither fixed extreme is right all day.
pub const AUTOSCALE_MEAN_RATE: f64 = 100.0;

/// Peak:trough arrival-rate ratio of the diurnal swing. At 4× the peak
/// (160 seq/s) needs ≥ 3 shards while the trough (40 seq/s) fits in one.
pub const AUTOSCALE_SWING: f64 = 4.0;

/// Period of one diurnal cycle in (simulated) seconds.
pub const AUTOSCALE_PERIOD_S: f64 = 8.0;

/// Requests per autoscale simulation point (~2 diurnal cycles at the mean
/// rate).
pub const AUTOSCALE_REQUESTS: usize = 1600;

/// Weight-streaming warm-up a launched shard pays before joining dispatch.
pub const AUTOSCALE_WARMUP_S: f64 = 0.3;

/// Autoscale controller sampling period.
pub const AUTOSCALE_EVAL_INTERVAL_S: f64 = 0.1;

/// Minimum time between feedback-policy scaling actions.
pub const AUTOSCALE_COOLDOWN_S: f64 = 0.2;

/// End-to-end latency SLO the autoscale ablation reports attainment
/// against.
pub const AUTOSCALE_SLO_LATENCY_S: f64 = 0.5;

/// Reactive scale-up threshold: mean waiting requests per accepting shard.
pub const AUTOSCALE_UP_DEPTH: f64 = 8.0;

/// Reactive scale-down threshold (hysteresis partner of
/// [`AUTOSCALE_UP_DEPTH`]).
pub const AUTOSCALE_DOWN_DEPTH: f64 = 2.0;

/// Headline-claim tolerance: reactive autoscaling's p95 may exceed the
/// fixed-max fleet's by at most this factor.
pub const AUTOSCALE_P95_TOLERANCE: f64 = 2.0;

/// Headline-claim margin: reactive autoscaling must spend at most this
/// fraction of the fixed-max fleet's shard-seconds.
pub const AUTOSCALE_COST_MARGIN: f64 = 0.8;

/// Prompt mix served by the autoscale ablation (the Table 1 mix, matching
/// the fleet ablation).
pub fn autoscale_mix() -> MixedWorkload {
    MixedWorkload::paper_mix()
}

/// Largest decode fleet the decode-autoscale ablation may commit (the
/// fixed-max baseline's size).
pub const DECODE_AUTOSCALE_MAX_SHARDS: usize = 4;

/// Smallest decode fleet the autoscaler may shrink to.
pub const DECODE_AUTOSCALE_MIN_SHARDS: usize = 1;

/// Concurrent sequences (KV-cache slots) per decode-autoscale shard —
/// deliberately tighter than [`DECODE_SLOTS`] so the slot pool, not just
/// iteration compute, is what scaling provisions: at the diurnal peak the
/// fixed-max fleet runs its slots ~95% occupied and arrivals queue for a
/// free slot.
pub const DECODE_AUTOSCALE_SLOTS: usize = 8;

/// Sustainable decode throughput of one BERT-base shard on the paper mix
/// with [`DECODE_AUTOSCALE_SLOTS`] slots (measured at saturation: ~17.9
/// seq/s) — the capacity oracle the predictive policy maps forecasts
/// through, declared slightly conservative.
pub const DECODE_AUTOSCALE_SHARD_CAPACITY: f64 = 17.5;

/// Time-averaged decode arrival rate (seq/s) of the diurnal workload —
/// between one shard's ~17.9 seq/s and the 4-shard fleet's ~72, so
/// neither fixed extreme is right all day.
pub const DECODE_AUTOSCALE_MEAN_RATE: f64 = 42.0;

/// Peak:trough arrival-rate ratio of the decode diurnal swing. At 4× the
/// peak (67.2 seq/s) keeps even the 4-shard fleet's slot pools ~95%
/// occupied while the trough (16.8 seq/s) fits in one shard.
pub const DECODE_AUTOSCALE_SWING: f64 = 4.0;

/// Period of one decode diurnal cycle in (simulated) seconds — long
/// enough that the warm-up is a small fraction of a ramp.
pub const DECODE_AUTOSCALE_PERIOD_S: f64 = 30.0;

/// Requests per decode-autoscale simulation point (~3 diurnal cycles at
/// the mean rate, so the harmonic forecaster sees a full cycle before the
/// later ramps it is judged on).
pub const DECODE_AUTOSCALE_REQUESTS: usize = 3600;

/// Weight-streaming warm-up a launched decode shard pays before admitting
/// residents.
pub const DECODE_AUTOSCALE_WARMUP_S: f64 = 0.25;

/// Decode autoscale controller sampling period.
pub const DECODE_AUTOSCALE_EVAL_INTERVAL_S: f64 = 0.1;

/// Minimum time between feedback-policy scaling actions.
pub const DECODE_AUTOSCALE_COOLDOWN_S: f64 = 0.15;

/// Time-to-first-token SLO the decode-autoscale ablation reports
/// attainment against.
pub const DECODE_AUTOSCALE_SLO_TTFT_S: f64 = 0.5;

/// Reactive scale-up threshold: mean in-system decode requests (waiting +
/// KV-resident — slot-pool pressure) per accepting shard; just under the
/// slot count, so the scaler fires when the pool is nearly held rather
/// than after requests already queue.
pub const DECODE_AUTOSCALE_UP_DEPTH: f64 = DECODE_AUTOSCALE_SLOTS as f64 - 0.5;

/// Reactive scale-down threshold (hysteresis partner of
/// [`DECODE_AUTOSCALE_UP_DEPTH`]): scale in only when shards run their
/// slot pools well under capacity.
pub const DECODE_AUTOSCALE_DOWN_DEPTH: f64 = 3.5;

/// EWMA smoothing factor of the predictive policy's rate estimator.
pub const DECODE_AUTOSCALE_ALPHA: f64 = 0.3;

/// Headline-claim tolerance: an autoscaled decode fleet's p95 TTFT may
/// exceed the fixed-max fleet's by at most this factor.
pub const DECODE_AUTOSCALE_P95_TOLERANCE: f64 = 2.0;

/// Headline-claim margin: an autoscaled decode fleet must spend at most
/// this fraction of the fixed-max fleet's shard-seconds.
pub const DECODE_AUTOSCALE_COST_MARGIN: f64 = 0.8;

/// Prompt mix served by the decode-autoscale ablation (outputs mirror it
/// via `decode_output()`, matching the decode ablation).
pub fn decode_autoscale_mix() -> MixedWorkload {
    MixedWorkload::paper_mix()
}

/// Largest fleet of the failure ablation (the healthy capacity a
/// mid-peak crash subtracts one shard from).
pub const FAILURE_MAX_SHARDS: usize = 4;

/// Autoscaler floor of the failure ablation.
pub const FAILURE_MIN_SHARDS: usize = 1;

/// Arrival rate (seq/s) outside the flash-crowd window — comfortably
/// inside two shards' capacity, well over one's.
pub const FAILURE_BASE_RATE: f64 = 100.0;

/// Flash-crowd rate (seq/s): needs all [`FAILURE_MAX_SHARDS`] shards
/// (3 × ~68 seq/s < 240 < 4 × ~68), so the mid-peak crash puts the
/// surviving fleet under water for the incident's duration.
pub const FAILURE_BURST_RATE: f64 = 240.0;

/// Flash-crowd onset in seconds.
pub const FAILURE_BURST_START_S: f64 = 3.0;

/// Flash-crowd length in seconds — the burst subsides at the crash's
/// recovery instant, so the incident (flash crowd + mid-peak crash) has
/// one well-defined end to judge recovery after.
pub const FAILURE_BURST_DURATION_S: f64 = 2.5;

/// Shard-crash instant — inside the burst window (mid-peak).
pub const FAILURE_CRASH_S: f64 = 4.0;

/// Crash-recovery instant; the shard then rejoins through the normal
/// launch + warm-up path, so capacity returns one warm-up later.
pub const FAILURE_RECOVER_S: f64 = 5.5;

/// Requests per failure simulation point (~10.4 s horizon at the base
/// rate plus the burst surcharge — several seconds of post-incident
/// cruise to judge recovery against).
pub const FAILURE_REQUESTS: usize = 1600;

/// End-to-end latency SLO of the failure ablation (matches the
/// autoscale ablation's).
pub const FAILURE_SLO_LATENCY_S: f64 = AUTOSCALE_SLO_LATENCY_S;

/// Warm-up of a (re)launched shard in the failure ablation (matches the
/// autoscale ablation's — recovery claims are phrased "within one
/// warm-up of the recovery instant").
pub const FAILURE_WARMUP_S: f64 = AUTOSCALE_WARMUP_S;

/// Headline-claim tolerance: post-incident SLO attainment (arrivals
/// after recovery + one warm-up) must come within this much of the
/// pre-incident level.
pub const FAILURE_RECOVERY_TOLERANCE: f64 = 0.05;

/// Per-attempt client patience — generously above the SLO, so a timeout
/// marks a genuinely stuck request (crash-stranded or incident-buried),
/// not an ordinary SLO miss.
pub const FAILURE_TIMEOUT_S: f64 = 1.0;

/// Client retry budget after the first attempt.
pub const FAILURE_MAX_RETRIES: u32 = 3;

/// Base client backoff before the first retry (doubles per attempt).
pub const FAILURE_BACKOFF_S: f64 = 0.05;

/// End-to-end client deadline from the original arrival — wide enough
/// for the full retry ladder ([`FAILURE_TIMEOUT_S`] ×
/// ([`FAILURE_MAX_RETRIES`] + 1) plus backoffs).
pub const FAILURE_DEADLINE_S: f64 = 10.0;

/// Per-shard sustainable rate on the mix — the predictive policy's
/// capacity oracle (same figure the autoscale ablation's time-of-day
/// table uses).
pub const FAILURE_SHARD_CAPACITY: f64 = 68.0;

/// Straggler slow-down factor of the decode migrate-vs-drain
/// comparison — deep enough that draining residents in place on the
/// slow shard is clearly worse than evicting and re-prefilling them on
/// the survivors.
pub const FAILURE_STRAGGLER_SLOWDOWN: f64 = 25.0;

/// Decode fleet size of the migrate-vs-drain comparison.
pub const FAILURE_DECODE_SHARDS: usize = 3;

/// Output length of the migrate-vs-drain decode requests — long
/// generations, so the straggler's residents are large and live (the
/// regime where migrate's re-prefill cost pays for itself).
pub const FAILURE_DECODE_OUTPUT: usize = 64;

/// Prefill length of the migrate-vs-drain decode requests.
pub const FAILURE_DECODE_PREFILL: usize = 128;

/// Requests of the migrate-vs-drain comparison.
pub const FAILURE_DECODE_REQUESTS: usize = 24;

/// Arrival gap of the migrate-vs-drain comparison's steady trace.
pub const FAILURE_DECODE_GAP_S: f64 = 0.01;

/// Straggler window of the migrate-vs-drain comparison (opens once
/// residents are seated, closes long after every victim finished).
pub const FAILURE_STRAGGLER_WINDOW_S: (f64, f64) = (0.05, 60.0);

/// TTFT SLO the decode failure runs report attainment against.
pub const FAILURE_DECODE_SLO_TTFT_S: f64 = 0.5;

/// Prompt mix served by the failure ablation (the Table 1 mix, matching
/// the fleet and autoscale ablations).
pub fn failure_mix() -> MixedWorkload {
    MixedWorkload::paper_mix()
}

/// Prefill-pool width of the disaggregated-serving ablation.
pub const DISAGG_PREFILL_SHARDS: usize = 2;

/// Decode-pool width of the disaggregated-serving ablation; the
/// colocated baseline serves the combined width, so both arms spend the
/// same hardware.
pub const DISAGG_DECODE_SHARDS: usize = 2;

/// Fleet width of the colocated baseline — by construction the two
/// pools combined, so the comparison is iso-hardware.
pub const DISAGG_COLOCATED_SHARDS: usize = DISAGG_PREFILL_SHARDS + DISAGG_DECODE_SHARDS;

/// Requests per disaggregation cell.
pub const DISAGG_REQUESTS: usize = 240;

/// Offered load of the disaggregation cells (sequences/s) — just past
/// the colocated baseline's saturation knee (~56 seq/s on this
/// workload), where decode-slot contention visibly taxes its prompt
/// queue, yet low enough that the full-price 2-shard prefill pool
/// (~64 seq/s) still clears its backlog before the run ends.
pub const DISAGG_RATE: f64 = 68.0;

/// Decode slots per shard in the disaggregation cells.
pub const DISAGG_SLOTS: usize = 16;

/// Distinct shared prefixes (system prompts) in circulation.
pub const DISAGG_PREFIX_GROUPS: usize = 4;

/// Shared-prefix length in tokens — most of an average SQuAD prompt, so
/// a warm cache hit skips the bulk of prefill.
pub const DISAGG_PREFIX_LEN: usize = 128;

/// Fraction of requests that carry some shared prefix.
pub const DISAGG_GROUPED_FRACTION: f64 = 0.9;

/// Prefix-cache capacity (entries) of the warm-cache cells — every
/// group fits, so the only misses are compulsory.
pub const DISAGG_CACHE_CAPACITY: usize = DISAGG_PREFIX_GROUPS;

/// NVLink-class KV interconnect: fixed handshake cost per handoff.
pub const DISAGG_CHEAP_BASE_S: f64 = 2e-5;

/// NVLink-class per-context-token copy cost.
pub const DISAGG_CHEAP_PER_TOKEN_S: f64 = 5e-8;

/// Congested-Ethernet-class handshake cost — comparable to a whole
/// request's service time, so each handoff stalls the decode pool.
pub const DISAGG_COSTLY_BASE_S: f64 = 8e-2;

/// Congested-Ethernet-class per-context-token copy cost.
pub const DISAGG_COSTLY_PER_TOKEN_S: f64 = 5e-4;

/// Prompt distribution of the disaggregation cells: SQuAD's long
/// prompts make the workload prefill-heavy, the regime disaggregation
/// targets.
pub fn disagg_prompts() -> DatasetSpec {
    DatasetSpec::squad_v1()
}

/// Output distribution of the disaggregation cells: short continuations
/// (QA-style answers), keeping prefill the dominant cost.
pub fn disagg_outputs() -> DatasetSpec {
    DatasetSpec {
        name: "short continuation".into(),
        min_len: 1,
        avg_len: 24,
        max_len: 96,
    }
}

/// One model × dataset evaluation point.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// The model under evaluation.
    pub model: ModelConfig,
    /// The dataset providing the length distribution.
    pub dataset: DatasetSpec,
}

impl Scenario {
    /// Display label, e.g. `BERT-base / SQuAD v1.1`.
    pub fn label(&self) -> String {
        format!("{} / {}", self.model.name, self.dataset.name)
    }

    /// The four hardware-evaluation scenarios of Fig. 7: BERT-base on
    /// SQuAD v1.1 / RTE / MRPC and BERT-large on SQuAD v1.1.
    pub fn hardware_eval() -> Vec<Scenario> {
        vec![
            Scenario {
                model: ModelConfig::bert_base(),
                dataset: DatasetSpec::squad_v1(),
            },
            Scenario {
                model: ModelConfig::bert_base(),
                dataset: DatasetSpec::rte(),
            },
            Scenario {
                model: ModelConfig::bert_base(),
                dataset: DatasetSpec::mrpc(),
            },
            Scenario {
                model: ModelConfig::bert_large(),
                dataset: DatasetSpec::squad_v1(),
            },
        ]
    }

    /// The ten accuracy-evaluation combinations of Fig. 6 (four models ×
    /// three datasets, BERT-large only on SQuAD).
    pub fn accuracy_eval() -> Vec<Scenario> {
        let mut out = Vec::new();
        for model in [
            ModelConfig::bert_base(),
            ModelConfig::bert_large(),
            ModelConfig::distilbert(),
            ModelConfig::roberta(),
        ] {
            for dataset in DatasetSpec::paper_datasets() {
                if model.name == "BERT-large" && dataset.name != "SQuAD v1.1" {
                    continue;
                }
                out.push(Scenario {
                    model: model.clone(),
                    dataset,
                });
            }
        }
        out
    }

    /// Samples `n_batches` deterministic batches of [`BATCH_SIZE`] lengths.
    pub fn sample_batches(&self, n_batches: usize) -> Vec<Vec<usize>> {
        let mut rng = SplitMix64::new(HARNESS_SEED ^ hash_label(&self.label()));
        self.dataset.sample_batches(&mut rng, BATCH_SIZE, n_batches)
    }
}

fn hash_label(s: &str) -> u64 {
    s.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x1000_0000_01b3)
    })
}

/// Geometric mean of strictly positive values; 0 if empty.
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = xs.iter().map(|&x| x.max(1e-300).ln()).sum();
    (log_sum / xs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disagg_constants_consistent() {
        // Iso-hardware comparison: the colocated baseline spends exactly
        // the two pools' combined width.
        assert_eq!(
            DISAGG_COLOCATED_SHARDS,
            DISAGG_PREFILL_SHARDS + DISAGG_DECODE_SHARDS
        );
        // The warm cache holds every circulating group, so after the
        // compulsory misses the hit rate equals the grouped fraction.
        const { assert!(DISAGG_CACHE_CAPACITY >= DISAGG_PREFIX_GROUPS) };
        assert!((0.0..=1.0).contains(&DISAGG_GROUPED_FRACTION));
        // A hit skips the bulk — but never all — of an average prompt.
        let prompts = disagg_prompts();
        assert!(DISAGG_PREFIX_LEN < prompts.avg_len);
        assert!(2 * DISAGG_PREFIX_LEN > prompts.avg_len);
        // Outputs stay short relative to prompts: the workload is
        // prefill-dominant, the regime disaggregation targets.
        let outputs = disagg_outputs();
        assert!(outputs.min_len <= outputs.avg_len && outputs.avg_len <= outputs.max_len);
        assert!(4 * outputs.avg_len < prompts.avg_len + prompts.avg_len / 2);
        // The two interconnect classes sit on opposite sides of the
        // crossover: orders of magnitude apart on both cost axes.
        const { assert!(DISAGG_CHEAP_BASE_S * 100.0 <= DISAGG_COSTLY_BASE_S) };
        const { assert!(DISAGG_CHEAP_PER_TOKEN_S * 100.0 <= DISAGG_COSTLY_PER_TOKEN_S) };
    }

    #[test]
    fn hardware_eval_has_four_scenarios() {
        let s = Scenario::hardware_eval();
        assert_eq!(s.len(), 4);
        assert!(s[3].label().contains("BERT-large"));
    }

    #[test]
    fn accuracy_eval_has_ten_combos() {
        assert_eq!(Scenario::accuracy_eval().len(), 10);
    }

    #[test]
    fn batches_are_deterministic_and_sized() {
        let sc = &Scenario::hardware_eval()[0];
        let a = sc.sample_batches(3);
        let b = sc.sample_batches(3);
        assert_eq!(a, b);
        assert!(a.iter().all(|batch| batch.len() == BATCH_SIZE));
    }

    #[test]
    fn different_scenarios_get_different_batches() {
        let s = Scenario::hardware_eval();
        assert_ne!(s[0].sample_batches(1), s[1].sample_batches(1));
    }

    #[test]
    fn fleet_constants_consistent() {
        assert_eq!(FLEET_SHARD_COUNTS, [1, 2, 4]);
        // Bin tunings cover the mix's extremes: the short bin is the MRPC
        // max, the long bin the SQuAD max.
        assert_eq!(FLEET_BIN_TUNINGS[0], DatasetSpec::mrpc().max_len);
        assert!(FLEET_BIN_TUNINGS[1..]
            .iter()
            .all(|&t| t == DatasetSpec::squad_v1().max_len));
        // Cap-divisible request count: saturating runs end on full batches.
        assert_eq!(FLEET_REQUESTS % BATCH_SIZE, 0);
        assert!(fleet_mix().components().len() == 3);
    }

    #[test]
    fn decode_constants_consistent() {
        assert!((0.0..1.0).contains(&DECODE_HIGH_FRACTION) && DECODE_HIGH_FRACTION > 0.0);
        // The priority sweep ends at the saturating point the goodput and
        // preemption claims are asserted at.
        assert_eq!(DECODE_RATES[DECODE_RATES.len() - 1], DECODE_SATURATING_RATE);
        // The output profile mirrors the prompt mix's length statistics
        // (1-token floor), preserving the paper's max/avg skew.
        let out = decode_mix().decode_output();
        assert_eq!(out.components().len(), 3);
        assert_eq!(out.expected_avg(), decode_mix().expected_avg());
    }

    #[test]
    fn autoscale_constants_consistent() {
        const {
            assert!(AUTOSCALE_MIN_SHARDS >= 1 && AUTOSCALE_MIN_SHARDS < AUTOSCALE_MAX_SHARDS);
            assert!(AUTOSCALE_SWING > 1.0);
            assert!(AUTOSCALE_UP_DEPTH > AUTOSCALE_DOWN_DEPTH);
            assert!(AUTOSCALE_P95_TOLERANCE >= 1.0);
        }
        // The trough must fit the min fleet and the peak must overwhelm
        // it, or the diurnal claim is vacuous: one BERT-base shard
        // sustains ~68 seq/s on the mix.
        let amp = (AUTOSCALE_SWING - 1.0) / (AUTOSCALE_SWING + 1.0);
        let trough = AUTOSCALE_MEAN_RATE * (1.0 - amp);
        let peak = AUTOSCALE_MEAN_RATE * (1.0 + amp);
        assert!(
            trough < 68.0,
            "trough {trough} saturates even the min fleet"
        );
        assert!(peak > 68.0, "peak {peak} never stresses the min fleet");
        assert!((peak / trough - AUTOSCALE_SWING).abs() < 1e-9);
        // ~2 full diurnal cycles of traffic.
        let duration = AUTOSCALE_REQUESTS as f64 / AUTOSCALE_MEAN_RATE;
        assert!(duration >= 2.0 * AUTOSCALE_PERIOD_S);
        assert!((0.0..1.0).contains(&AUTOSCALE_COST_MARGIN));
        assert_eq!(autoscale_mix().components().len(), 3);
    }

    #[test]
    fn decode_autoscale_constants_consistent() {
        const {
            assert!(
                DECODE_AUTOSCALE_MIN_SHARDS >= 1
                    && DECODE_AUTOSCALE_MIN_SHARDS < DECODE_AUTOSCALE_MAX_SHARDS
            );
            assert!(DECODE_AUTOSCALE_SWING > 1.0);
            assert!(DECODE_AUTOSCALE_UP_DEPTH > DECODE_AUTOSCALE_DOWN_DEPTH);
            assert!(DECODE_AUTOSCALE_P95_TOLERANCE >= 1.0);
            assert!(DECODE_AUTOSCALE_ALPHA > 0.0 && DECODE_AUTOSCALE_ALPHA <= 1.0);
            // The warm-up must be small against a quarter-period ramp, or
            // no policy can keep up by construction.
            assert!(DECODE_AUTOSCALE_WARMUP_S < DECODE_AUTOSCALE_PERIOD_S / 4.0);
        }
        // The trough must fit the min fleet, the peak must overwhelm it
        // but fit the max fleet — otherwise the diurnal claim is vacuous.
        let amp = (DECODE_AUTOSCALE_SWING - 1.0) / (DECODE_AUTOSCALE_SWING + 1.0);
        let trough = DECODE_AUTOSCALE_MEAN_RATE * (1.0 - amp);
        let peak = DECODE_AUTOSCALE_MEAN_RATE * (1.0 + amp);
        assert!(
            trough < DECODE_AUTOSCALE_SHARD_CAPACITY,
            "trough {trough} saturates even the min fleet"
        );
        assert!(
            peak > DECODE_AUTOSCALE_SHARD_CAPACITY,
            "peak {peak} never stresses the min fleet"
        );
        assert!(
            peak < DECODE_AUTOSCALE_SHARD_CAPACITY * DECODE_AUTOSCALE_MAX_SHARDS as f64,
            "peak {peak} overwhelms even the max fleet"
        );
        // ≥ 2.5 diurnal cycles: the harmonic forecaster needs a full
        // cycle of history before the ramps it is judged on.
        let duration = DECODE_AUTOSCALE_REQUESTS as f64 / DECODE_AUTOSCALE_MEAN_RATE;
        assert!(duration >= 2.5 * DECODE_AUTOSCALE_PERIOD_S);
        assert!((0.0..1.0).contains(&DECODE_AUTOSCALE_COST_MARGIN));
        assert_eq!(decode_autoscale_mix().components().len(), 3);
    }

    #[test]
    fn failure_constants_consistent() {
        const {
            assert!(FAILURE_MIN_SHARDS >= 1 && FAILURE_MIN_SHARDS < FAILURE_MAX_SHARDS);
            assert!(FAILURE_BURST_RATE > FAILURE_BASE_RATE);
            // The crash lands inside the burst window (mid-peak), the
            // recovery strictly after it.
            assert!(FAILURE_CRASH_S >= FAILURE_BURST_START_S);
            assert!(FAILURE_CRASH_S < FAILURE_BURST_START_S + FAILURE_BURST_DURATION_S);
            assert!(FAILURE_RECOVER_S > FAILURE_CRASH_S);
            #[allow(clippy::manual_range_contains)] // not const-callable
            {
                assert!(FAILURE_RECOVERY_TOLERANCE > 0.0 && FAILURE_RECOVERY_TOLERANCE < 1.0);
            }
            // A timeout marks a stuck request, not an ordinary SLO miss.
            assert!(FAILURE_TIMEOUT_S > FAILURE_SLO_LATENCY_S);
            assert!(FAILURE_STRAGGLER_SLOWDOWN > 1.0);
            assert!(FAILURE_STRAGGLER_WINDOW_S.0 < FAILURE_STRAGGLER_WINDOW_S.1);
            assert!(FAILURE_DECODE_SHARDS >= 2 && FAILURE_DECODE_OUTPUT > 1);
        }
        // The burst needs every shard and a crash puts the survivors
        // under water — otherwise "mid-peak crash" stresses nothing.
        assert!(
            FAILURE_BURST_RATE < FAILURE_SHARD_CAPACITY * FAILURE_MAX_SHARDS as f64,
            "burst overwhelms even the healthy max fleet"
        );
        assert!(
            FAILURE_BURST_RATE > FAILURE_SHARD_CAPACITY * (FAILURE_MAX_SHARDS - 1) as f64,
            "burst fits the crashed fleet — the incident is painless"
        );
        assert!(
            FAILURE_BASE_RATE > FAILURE_SHARD_CAPACITY * FAILURE_MIN_SHARDS as f64,
            "base load fits the min fleet — the autoscaler never has to act"
        );
        // The deadline fits the full retry ladder (timeouts + doubled
        // backoffs), so `attempt_bound()` is set by max_retries.
        let ladder: f64 = (0..=FAILURE_MAX_RETRIES)
            .map(|a| FAILURE_TIMEOUT_S + FAILURE_BACKOFF_S * f64::powi(2.0, a as i32))
            .sum();
        assert!(
            FAILURE_DEADLINE_S > ladder,
            "deadline truncates the retry ladder"
        );
        // The trace horizon leaves post-incident cruise: expected end =
        // (requests − burst surcharge) / base rate.
        let horizon = (FAILURE_REQUESTS as f64
            - (FAILURE_BURST_RATE - FAILURE_BASE_RATE) * FAILURE_BURST_DURATION_S)
            / FAILURE_BASE_RATE;
        assert!(
            FAILURE_RECOVER_S + FAILURE_WARMUP_S + 2.0 < horizon,
            "no post-recovery arrivals left to judge recovery on"
        );
        assert_eq!(failure_mix().components().len(), 3);
    }

    #[test]
    fn harness_seed_env_override_consistent() {
        // With no ambient override the function is the const; with one it
        // must at least parse (the CI seed matrix relies on this hook).
        match std::env::var("HARNESS_SEED") {
            Err(_) => assert_eq!(harness_seed(), HARNESS_SEED),
            Ok(_) => {
                let _ = harness_seed();
            }
        }
    }

    #[test]
    fn geomean_basics() {
        assert_eq!(geomean(&[]), 0.0);
        assert!((geomean(&[4.0]) - 4.0).abs() < 1e-12);
        assert!((geomean(&[1.0, 100.0]) - 10.0).abs() < 1e-9);
    }
}
